// Healthcare scenario: the motivation from the paper's introduction
// and §IV-A — hospitals cannot share patient records, but a study
// needs a model over a specific cohort: "learning the relation between
// age range ... with the chance of getting a specific kind of cancer
// does not require all value ranges about all patients in a hospital;
// just those with age e.g., between 20 and 50".
//
// Four hospitals hold (age, biomarker -> risk score) data with very
// different patient populations: a pediatric clinic, two general
// hospitals, and a geriatric center. The query asks for the 20-50 age
// cohort with mid-range biomarker values; the query-driven mechanism
// must pick the general hospitals and train only on their matching
// clusters.
//
// Run: go run ./examples/healthcare
package main

import (
	"fmt"
	"log"
	"math"

	"qens/internal/dataset"
	"qens/internal/federation"
	"qens/internal/geometry"
	"qens/internal/ml"
	"qens/internal/query"
	"qens/internal/rng"
	"qens/internal/selection"
)

// hospital generates a synthetic patient registry: risk rises with age
// and biomarker level, plus site-specific noise.
func hospital(name string, ageLo, ageHi float64, n int, seed uint64) *dataset.Dataset {
	src := rng.New(seed)
	d := dataset.MustNew([]string{"age", "biomarker", "risk"}, "risk")
	for i := 0; i < n; i++ {
		age := src.Uniform(ageLo, ageHi)
		marker := math.Abs(src.Normal(3+age/20, 1.2))
		risk := 0.4*age + 6*marker + src.Normal(0, 3)
		d.MustAppend([]float64{age, marker, risk})
	}
	return d
}

func main() {
	registries := []*dataset.Dataset{
		hospital("pediatric", 0, 16, 900, 1),
		hospital("general-a", 18, 70, 900, 2),
		hospital("general-b", 25, 85, 900, 3),
		hospital("geriatric", 65, 100, 900, 4),
	}
	names := []string{"pediatric", "general-a", "general-b", "geriatric"}

	fleet, err := federation.NewSimulatedFleet(registries, federation.Config{
		Spec:        ml.PaperLR(2), // two features: age, biomarker
		ClusterK:    5,
		LocalEpochs: 8,
		Seed:        9,
	}, federation.FleetOptions{})
	if err != nil {
		log.Fatal(err)
	}

	// The cohort query: ages 20-50, biomarker 2-7, any risk value.
	cohort, err := query.New("cohort-20-50", geometry.MustRect(
		[]float64{20, 2, -1e3},
		[]float64{50, 7, 1e3},
	))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cohort query: age 20-50, biomarker 2-7\n\n")

	summaries, err := fleet.Leader.Summaries()
	if err != nil {
		log.Fatal(err)
	}
	// ε = 0.7: with one unconstrained dimension (risk always overlaps
	// fully) a binding threshold must demand real age+biomarker
	// overlap too.
	ranks, err := selection.RankNodes(cohort, summaries, 0.7)
	if err != nil {
		log.Fatal(err)
	}
	selection.SortByRank(ranks)
	fmt.Println("hospital ranking for the cohort:")
	for _, r := range ranks {
		idx := 0
		fmt.Sscanf(r.NodeID, "node-%d", &idx)
		fmt.Printf("  %-10s rank=%.3f  matching records: %d of %d\n",
			names[idx], r.Rank, r.SupportingSamples, r.TotalSamples)
	}

	res, err := fleet.Execute(cohort, selection.QueryDriven{Epsilon: 0.7, TopL: 2}, federation.WeightedAveraging)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nengaged hospitals: ")
	for _, p := range res.Participants {
		idx := 0
		fmt.Sscanf(p.NodeID, "node-%d", &idx)
		fmt.Printf("%s ", names[idx])
	}
	fmt.Printf("\ncohort model trained on %d records (%.1f%% of all hospital data), no raw data shared\n",
		res.Stats.SamplesUsed, 100*res.Stats.DataFraction())

	if mse, n, ok := federation.EvaluateResult(res, fleet.Test); ok {
		fmt.Printf("held-out cohort MSE: %.2f over %d patients\n", mse, n)
	}
	fmt.Printf("predicted risk for (age=35, biomarker=4.5): %.1f\n",
		res.Ensemble.Predict([]float64{35, 4.5}))
}
