// Quickstart: the smallest end-to-end use of the library.
//
// It builds a simulated fleet of 6 edge nodes over the synthetic
// air-quality corpus, issues one analytics query (a rectangle over the
// TEMP x PM2.5 space), lets the query-driven mechanism rank and select
// participants, trains the federated model over their supporting
// clusters only, and prints the ranking and the aggregated
// predictions.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"qens/internal/dataset"
	"qens/internal/federation"
	"qens/internal/ml"
	"qens/internal/query"
	"qens/internal/rng"
	"qens/internal/selection"
)

func main() {
	// 1. Per-node datasets: 6 heterogeneous sites, TEMP -> PM2.5.
	data, err := dataset.PaperNodeDatasets(dataset.Config{
		Nodes: 6, SamplesPerNode: 800, Seed: 42, Heterogeneity: 0.8, FlipFraction: 0.2,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 2. A fleet: every node quantizes its data into K=5 clusters and
	//    advertises only the cluster bounding boxes to the leader.
	fleet, err := federation.NewSimulatedFleet(data, federation.Config{
		Spec:        ml.PaperLR(1), // Table III linear regression
		ClusterK:    5,
		LocalEpochs: 5,
		Seed:        7,
	}, federation.FleetOptions{})
	if err != nil {
		log.Fatal(err)
	}

	// 3. One analytics query over the global data space.
	space, err := fleet.Space()
	if err != nil {
		log.Fatal(err)
	}
	q, err := query.Uniform(space, rng.New(3))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query %s over %v\n\n", q.ID, q.Bounds)

	// 4. Inspect the ranking the leader computes (Eqs. 2-4).
	summaries, err := fleet.Leader.Summaries()
	if err != nil {
		log.Fatal(err)
	}
	ranks, err := selection.RankNodes(q, summaries, 0.6)
	if err != nil {
		log.Fatal(err)
	}
	selection.SortByRank(ranks)
	fmt.Println("node ranking (Eq. 4):")
	for _, r := range ranks {
		fmt.Printf("  %-8s rank=%.3f potential=%.3f supporting=%d/%d clusters (%d of %d samples)\n",
			r.NodeID, r.Rank, r.Potential, len(r.Supporting), len(r.Overlaps),
			r.SupportingSamples, r.TotalSamples)
	}

	// 5. Execute the query: top-2 nodes train on supporting clusters,
	//    predictions aggregate with ranking weights (Eq. 7).
	res, err := fleet.Execute(q, selection.QueryDriven{Epsilon: 0.6, TopL: 2}, federation.WeightedAveraging)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nselected: ")
	for _, p := range res.Participants {
		fmt.Printf("%s (λ-weighting rank %.3f) ", p.NodeID, p.Rank)
	}
	fmt.Printf("\ntrained on %d of %d federation samples (%.1f%%) in %s\n",
		res.Stats.SamplesUsed, res.Stats.SamplesAllNodes,
		100*res.Stats.DataFraction(), res.Stats.TrainTime)

	// 6. Score the global model on held-out data inside the query.
	if mse, n, ok := federation.EvaluateResult(res, fleet.Test); ok {
		fmt.Printf("test MSE over the query subspace: %.2f (%d samples)\n", mse, n)
	}

	// 7. Predict PM2.5 at the query's center temperature.
	center := q.Bounds.Center()
	fmt.Printf("predicted PM2.5 at TEMP=%.1f°C: %.1f µg/m³\n",
		center[0], res.Ensemble.Predict([]float64{center[0]}))
}
