// Network scenario: the same federation running over real TCP
// sockets. Five participant daemons are started on loopback ports
// (exactly what `qensd` does on separate machines), the leader dials
// them with the transport client, and a query-driven round executes
// end-to-end: cluster summaries up, model parameters down, trained
// parameters back — never raw data.
//
// The example also demonstrates the paper's communication claim: the
// byte counts show that selection costs only the one-off summary
// exchange (a few hundred bytes per node), independent of dataset
// size.
//
// Run: go run ./examples/network
package main

import (
	"fmt"
	"log"

	"qens/internal/dataset"
	"qens/internal/federation"
	"qens/internal/ml"
	"qens/internal/query"
	"qens/internal/rng"
	"qens/internal/selection"
	"qens/internal/transport"
)

func main() {
	data, err := dataset.PaperNodeDatasets(dataset.Config{
		Nodes: 5, SamplesPerNode: 800, Seed: 21, Heterogeneity: 0.8, FlipFraction: 0.2,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Start one daemon per node on an ephemeral loopback port.
	var clients []federation.Client
	var leaderData *dataset.Dataset
	root := rng.New(99)
	for i, d := range data {
		// Hold out 20% per node for scoring on the leader side.
		train, _ := d.Split(0.2, root.Split())
		if i == 0 {
			leaderData = train
		}
		node, err := federation.NewNode(fmt.Sprintf("edge-%d", i), train, 5, root.Split())
		if err != nil {
			log.Fatal(err)
		}
		srv, err := transport.Serve(node, "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		client, err := transport.Dial(srv.Addr(), transport.DialOptions{})
		if err != nil {
			log.Fatal(err)
		}
		defer client.Close()
		fmt.Printf("daemon %s listening on %s\n", client.ID(), srv.Addr())
		clients = append(clients, client)
	}

	leader, err := federation.NewLeader(federation.Config{
		Spec: ml.PaperLR(1), ClusterK: 5, LocalEpochs: 6, Seed: 4,
	}, leaderData, clients)
	if err != nil {
		log.Fatal(err)
	}

	// One-off advertisement round: only cluster rectangles cross the
	// network.
	summaries, err := leader.Summaries()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncollected %d cluster summaries (K=%d each) — the only pre-query communication\n",
		len(summaries), summaries[0].K())

	bounds := summaries[0].Clusters[0].Bounds.Clone()
	for _, s := range summaries {
		for _, c := range s.Clusters {
			bounds = bounds.Union(c.Bounds)
		}
	}
	q, err := query.Uniform(bounds, rng.New(17))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("executing %s over %v\n", q.ID, q.Bounds)

	res, err := leader.Execute(q, selection.QueryDriven{Epsilon: 0.6, TopL: 2}, federation.WeightedAveraging)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nselected over TCP: ")
	for _, p := range res.Participants {
		fmt.Printf("%s ", p.NodeID)
	}
	fmt.Printf("\nmodel bytes up/down: %d / %d (raw data bytes moved: 0)\n",
		res.Stats.BytesUp, res.Stats.BytesDown)
	fmt.Printf("federated model ready; prediction at query center: %.1f\n",
		res.Ensemble.Predict(q.Bounds.Center()[:1]))
}
