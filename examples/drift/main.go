// Drift scenario: the paper's motivating failure mode, made visible.
//
// A single model travels node to node, training incrementally (no
// aggregation). Along the naive path it visits every node — including
// one whose pollution/temperature relation is sign-flipped relative to
// the rest. Watch the query-subspace loss: it falls while the model
// visits compatible nodes and jumps when it reaches the incompatible
// one ("models are more likely to forget what they have learned from
// previous participants when they move to new participants with
// different data distributions", §I). The query-driven path visits
// only the nodes and clusters the ranking approves and never takes
// the hit.
//
// Run: go run ./examples/drift
package main

import (
	"fmt"
	"log"
	"strings"

	"qens/internal/experiments"
)

func main() {
	res, err := experiments.Drift(experiments.Options{
		Seed:           5,
		Nodes:          8,
		SamplesPerNode: 800,
		Queries:        25,
		Heterogeneity:  1,
		FlipFraction:   0.25,
		TopL:           3,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("sequential training for query %s\n\n", res.QueryID)
	fmt.Println("naive path (every node, whole datasets):")
	prev := 0.0
	for i, id := range res.NaivePath {
		marker := ""
		if i > 0 && res.NaiveLoss[i] > prev*1.5 {
			marker = "   <-- forgetting jump: incompatible data"
		}
		fmt.Printf("  %-8s %s %.1f%s\n", id, bar(res.NaiveLoss[i], res.NaiveLoss), res.NaiveLoss[i], marker)
		prev = res.NaiveLoss[i]
	}
	fmt.Println("\nquery-driven path (ranked nodes, supporting clusters only):")
	for i, id := range res.QueryDrivenPath {
		fmt.Printf("  %-8s %s %.1f\n", id, bar(res.QueryDrivenLoss[i], res.NaiveLoss), res.QueryDrivenLoss[i])
	}

	fmt.Printf("\nmean loss along the path: query-driven %.1f vs naive %.1f\n",
		mean(res.QueryDrivenLoss), mean(res.NaiveLoss))
	fmt.Printf("largest single-visit regression on the naive path: +%.1f\n", res.MaxNaiveRegression())
	fmt.Println("\nnote the order dependence: the naive trajectory is only ever one")
	fmt.Println("incompatible visit away from losing what it has learned, while the")
	fmt.Println("query-driven path never trains on data the ranking did not approve.")
}

func mean(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}

// bar renders a loss as a proportional ASCII bar against the worst
// naive loss.
func bar(v float64, reference []float64) string {
	worst := 0.0
	for _, r := range reference {
		if r > worst {
			worst = r
		}
	}
	if worst <= 0 {
		return ""
	}
	n := int(40 * v / worst)
	if n > 40 {
		n = 40
	}
	return strings.Repeat("#", n) + strings.Repeat(".", 40-n)
}
