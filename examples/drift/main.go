// Drift scenario, streaming edition: autonomous drift response with
// no operator in the loop.
//
// One node of a simulated fleet ingests a continuous stream of rows.
// While the stream matches the node's historical distribution, the
// incremental requantization path absorbs mini-batches quietly: the
// codebook tracks the data and the advertisement epoch bumps only on
// material movement. Then the stream's distribution shifts — a regime
// change the node's EWMA drift detector sees as rising reconstruction
// error and a skewed assignment distribution. The node escalates to a
// full re-quantization *on its own* (nobody sends SIGHUP), and the
// fresh advertisement is *pushed* to the subscribed leader the moment
// it exists, so the leader's registry — and every ranking computed
// from it — reflects the new data space without a TTL pull.
//
// The example asserts the whole pipeline end to end and exits
// non-zero if any stage fails to fire.
//
// Run: go run ./examples/drift
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"time"

	"qens/internal/dataset"
	"qens/internal/federation"
	"qens/internal/ml"
	"qens/internal/rng"
)

const (
	seed      = 5
	nodes     = 6
	samples   = 800
	batchSize = 32
	// driftShift displaces every feature by this fraction of its range
	// once the regime changes; 0.75 is far outside the 5% jitter the
	// stationary stream carries.
	driftShift = 0.75
)

func main() {
	data, err := dataset.PaperNodeDatasets(dataset.Config{
		Nodes: nodes, SamplesPerNode: samples, Seed: seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	fleet, err := federation.NewSimulatedFleet(data, federation.Config{
		Spec: ml.PaperLR(data[0].Dims() - 1), ClusterK: 5, LocalEpochs: 3, Seed: seed,
	}, federation.FleetOptions{})
	if err != nil {
		log.Fatal(err)
	}
	leader := fleet.Leader

	// Seed the registry snapshot (the roster pushes land on), then
	// subscribe: from here on the leader learns about node movement
	// from the nodes themselves.
	if _, err := leader.Summaries(); err != nil {
		log.Fatal(err)
	}
	subscribed, err := leader.StartPush(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	defer leader.StopPush()
	fmt.Printf("leader subscribed to summary pushes from %d/%d nodes\n", subscribed, nodes)

	node := fleet.Nodes[0]
	if err := node.EnableIngest(federation.IngestConfig{BatchSize: batchSize}); err != nil {
		log.Fatal(err)
	}

	snap0, ok := leader.Registry().Current()
	if !ok {
		log.Fatal("registry has no snapshot after Summaries")
	}
	epoch0 := snap0.NodeSummaryEpoch(node.ID())
	pulls0 := pullRefreshes(leader)

	gen := newStream(data[0].Rows(), rng.New(99))

	// Phase 1 — stationary stream: rows statistically resembling the
	// node's shard. The detector should stay calm (no escalation).
	for i := 0; i < 40; i++ {
		if err := node.Ingest(gen.batch(batchSize, 0)); err != nil {
			log.Fatal(err)
		}
	}
	st, _ := node.IngestStats()
	fmt.Printf("stationary phase: %d mini-batches absorbed incrementally, err EWMA %.2f, escalations %d\n",
		st.Batches, st.ErrEWMA, st.Escalations)
	if st.Escalations != 0 {
		log.Fatalf("FAIL: stationary stream escalated %d times (detector too jumpy)", st.Escalations)
	}
	if st.IncrementalRequants == 0 {
		log.Fatal("FAIL: no incremental requantizations ran")
	}

	// Phase 2 — regime change: every feature shifts by driftShift of
	// its range. Feed until the detector escalates (bounded).
	var escalated bool
	for i := 0; i < 200; i++ {
		if err := node.Ingest(gen.batch(batchSize, driftShift)); err != nil {
			log.Fatal(err)
		}
		if st, _ = node.IngestStats(); st.Escalations > 0 {
			escalated = true
			fmt.Printf("drift phase: detector escalated after %d drifted batches (err EWMA %.2f, assign EWMA %.2f)\n",
				i+1, st.ErrEWMA, st.AssignEWMA)
			break
		}
	}
	if !escalated {
		log.Fatal("FAIL: drift detector never escalated to a full re-quantization")
	}

	// The escalation bumped the node's epoch, which fired the push
	// subscription. Delivery is asynchronous — the handler hands the
	// summary off to the leader's applier goroutine so it can never
	// block a connection reader — so wait (bounded) for the registry to
	// apply it. No TTL pull is involved either way.
	deadline := time.Now().Add(10 * time.Second)
	regStats := leader.Registry().Stats()
	snap1, _ := leader.Registry().Current()
	epoch1 := snap1.NodeSummaryEpoch(node.ID())
	for (regStats.PushApplied == 0 || epoch1 <= epoch0) && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
		regStats = leader.Registry().Stats()
		snap1, _ = leader.Registry().Current()
		epoch1 = snap1.NodeSummaryEpoch(node.ID())
	}
	fmt.Printf("registry: %s advertisement epoch %d -> %d, %d pushes applied (%d bytes), pull refreshes %d -> %d\n",
		node.ID(), epoch0, epoch1, regStats.PushApplied, regStats.PushBytes, pulls0, pullRefreshes(leader))

	switch {
	case regStats.PushApplied == 0:
		log.Fatal("FAIL: no summary push reached the registry")
	case epoch1 <= epoch0:
		log.Fatalf("FAIL: registry still holds a stale advertisement (epoch %d)", epoch1)
	case pullRefreshes(leader) != pulls0:
		log.Fatal("FAIL: the fresh summary arrived by pull, not push")
	}

	// The re-quantized codebook should now cover the shifted region:
	// the advertised bounds moved with the stream.
	sum := node.Summary()
	lo := math.Inf(1)
	for _, c := range sum.Clusters {
		lo = math.Min(lo, c.Bounds.Min[0])
	}
	fmt.Printf("post-drift advertisement: %d clusters, dim-0 lower bound %.2f (stream shifted +%.2f of range)\n",
		len(sum.Clusters), lo, driftShift)

	fmt.Println("\nOK: drift detected, re-quantized and pushed — no SIGHUP, no TTL pull.")
}

// pullRefreshes counts registry refreshes served by the pull path.
func pullRefreshes(l *federation.Leader) int64 {
	st := l.Registry().Stats()
	return st.FullRefreshes + st.DeltaRefreshes
}

// stream draws synthetic rows from seed rows plus per-column Gaussian
// jitter at 5% of the column range; a non-zero shift displaces every
// feature by shift×range (the regime change).
type stream struct {
	src  *rng.Source
	rows [][]float64
	span []float64
}

func newStream(rows [][]float64, src *rng.Source) *stream {
	dims := len(rows[0])
	lo := make([]float64, dims)
	hi := make([]float64, dims)
	for d := range lo {
		lo[d], hi[d] = math.Inf(1), math.Inf(-1)
	}
	for _, row := range rows {
		for d, v := range row {
			lo[d] = math.Min(lo[d], v)
			hi[d] = math.Max(hi[d], v)
		}
	}
	span := make([]float64, dims)
	for d := range span {
		span[d] = hi[d] - lo[d]
		if span[d] <= 0 {
			span[d] = 1e-9
		}
	}
	return &stream{src: src, rows: rows, span: span}
}

func (s *stream) batch(n int, shift float64) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		base := s.rows[s.src.Intn(len(s.rows))]
		row := make([]float64, len(base))
		for d, v := range base {
			row[d] = v + s.src.Normal(0, 0.05*s.span[d]) + shift*s.span[d]
		}
		out[i] = row
	}
	return out
}
