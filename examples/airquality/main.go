// Air-quality scenario: the paper's full experimental setting — 10
// edge nodes holding multi-site air-quality data, the §II
// heterogeneity pre-test, and a head-to-head of all four selection
// mechanisms (GT, Random, query-driven Averaging, query-driven
// Weighted) over a stream of analytics queries.
//
// Run: go run ./examples/airquality
package main

import (
	"fmt"
	"log"

	"qens/internal/dataset"
	"qens/internal/federation"
	"qens/internal/ml"
	"qens/internal/query"
	"qens/internal/rng"
	"qens/internal/selection"
)

func main() {
	const (
		nodes   = 10 // the paper's N
		k       = 5  // the paper's K
		topL    = 3
		epsilon = 0.6
		queries = 15
	)

	data, err := dataset.PaperNodeDatasets(dataset.Config{
		Nodes: nodes, SamplesPerNode: 1000, Seed: 11, Heterogeneity: 0.9, FlipFraction: 0.2,
	})
	if err != nil {
		log.Fatal(err)
	}
	fleet, err := federation.NewSimulatedFleet(data, federation.Config{
		Spec: ml.PaperLR(1), ClusterK: k, LocalEpochs: 5, Seed: 2,
	}, federation.FleetOptions{})
	if err != nil {
		log.Fatal(err)
	}

	// The §II pre-test: is node selection even needed here?
	pre, err := fleet.Leader.PreTest(0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pre-test: participants are %s (loss dispersion %.1fx)\n", pre.Regime, pre.Dispersion)
	if pre.Regime == selection.RegimeHomogeneous {
		fmt.Println("-> random selection would suffice; continuing anyway for the comparison")
	} else {
		fmt.Println("-> a node selection mechanism is required (the Table II situation)")
	}

	space, err := fleet.Space()
	if err != nil {
		log.Fatal(err)
	}
	workload, err := query.Workload(query.WorkloadConfig{Space: space, Count: queries}, rng.New(5))
	if err != nil {
		log.Fatal(err)
	}

	arms := []struct {
		name string
		sel  selection.Selector
		agg  federation.Aggregation
	}{
		{"game-theory", selection.GameTheory{L: topL}, federation.ModelAveraging},
		{"random", selection.Random{L: topL}, federation.ModelAveraging},
		{"qd-averaging", selection.QueryDriven{Epsilon: epsilon, TopL: topL}, federation.ModelAveraging},
		{"qd-weighted", selection.QueryDriven{Epsilon: epsilon, TopL: topL}, federation.WeightedAveraging},
	}
	fmt.Printf("\naverage loss over %d queries (Fig. 7 protocol):\n", queries)
	for _, arm := range arms {
		total, count := 0.0, 0
		samplesUsed, samplesAll := 0, 0
		for _, q := range workload {
			res, err := fleet.Execute(q, arm.sel, arm.agg)
			if err != nil {
				continue // no node supports this query under this policy
			}
			if mse, _, ok := federation.EvaluateResult(res, fleet.Test); ok {
				total += mse
				count++
				samplesUsed += res.Stats.SamplesUsed
				samplesAll += res.Stats.SamplesAllNodes
			}
		}
		if count == 0 {
			fmt.Printf("  %-14s (no evaluable queries)\n", arm.name)
			continue
		}
		fmt.Printf("  %-14s loss=%-10.2f data-used=%4.1f%%  (%d/%d queries)\n",
			arm.name, total/float64(count),
			100*float64(samplesUsed)/float64(samplesAll), count, queries)
	}
	fmt.Println("\nexpected shape (paper Fig. 7): qd-weighted <= qd-averaging < game-theory < random")
}
