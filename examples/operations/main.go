// Operations scenario: running a QENS federation as a long-lived
// service. This example strings together the operational machinery the
// library adds around the paper's mechanism:
//
//   - the Adaptive selector (§II decision procedure: pre-test once,
//     then commit to random or query-driven selection);
//   - the query-result reuse cache (focused workloads answered from
//     recently built models);
//   - the JSONL audit log (who was selected, what it cost);
//   - ensemble uncertainty (PredictWithSpread) as a serving-time
//     quality signal.
//
// Run: go run ./examples/operations
package main

import (
	"bytes"
	"fmt"
	"log"

	"qens/internal/dataset"
	"qens/internal/federation"
	"qens/internal/geometry"
	"qens/internal/ml"
	"qens/internal/query"
	"qens/internal/rng"
	"qens/internal/selection"
)

func main() {
	data, err := dataset.PaperNodeDatasets(dataset.Config{
		Nodes: 8, SamplesPerNode: 900, Seed: 31, Heterogeneity: 0.9, FlipFraction: 0.25,
	})
	if err != nil {
		log.Fatal(err)
	}
	fleet, err := federation.NewSimulatedFleet(data, federation.Config{
		Spec: ml.PaperLR(1), ClusterK: 5, LocalEpochs: 5, Seed: 13,
	}, federation.FleetOptions{})
	if err != nil {
		log.Fatal(err)
	}

	// A focused workload, as a deployed analytics service would see.
	space, err := fleet.Space()
	if err != nil {
		log.Fatal(err)
	}
	workload, err := query.Workload(query.WorkloadConfig{
		Space: space, Count: 12, DriftPeriod: 6, FocusSpread: 0.04,
	}, rng.New(2))
	if err != nil {
		log.Fatal(err)
	}

	adaptive := &selection.Adaptive{Epsilon: 0.6, TopL: 3}
	cache, err := federation.NewReuseCache(0.5, 8)
	if err != nil {
		log.Fatal(err)
	}
	var auditBuf bytes.Buffer
	audit := federation.NewAuditLog(&auditBuf)

	hits := 0
	for _, q := range workload {
		res, reused, err := fleet.Leader.ExecuteWithReuse(cache, q, adaptive, federation.WeightedAveraging)
		if err != nil {
			fmt.Printf("%-8s no participants (%v)\n", q.ID, err)
			continue
		}
		if reused {
			hits++
		}
		if !reused {
			if err := audit.Record(res); err != nil {
				log.Fatal(err)
			}
		}
		pred, spread := res.Ensemble.PredictWithSpread(q.Bounds.Center()[:1])
		tag := "fresh "
		if reused {
			tag = "cached"
		}
		fmt.Printf("%-8s %s  PM2.5=%.1f ± %.1f  (%d nodes, %.1f%% of data)\n",
			q.ID, tag, pred, spread, len(res.Participants), 100*res.Stats.DataFraction())
	}

	regime, _ := adaptive.Regime()
	fmt.Printf("\npre-test committed to the %s branch (regime: %s)\n",
		map[selection.Regime]string{
			selection.RegimeHomogeneous:   "random",
			selection.RegimeHeterogeneous: "query-driven",
		}[regime], regime)
	fmt.Printf("cache served %d of %d queries\n", hits, len(workload))

	records, err := federation.ReadAuditLog(&auditBuf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("audit log holds %d records; replaying the logged workload...\n", len(records))
	ids := make([]string, len(records))
	rects := make([]geometry.Rect, len(records))
	for i, r := range records {
		ids[i] = r.QueryID + "-replay"
		rects[i] = r.Bounds
	}
	replayed, err := query.Replay(ids, rects)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replay reconstructed %d executable queries from the audit trail\n", len(replayed))
}
