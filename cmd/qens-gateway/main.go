// Command qens-gateway serves the federation as an online HTTP/JSON
// API: POST /v1/query executes a query against the fleet through a
// bounded worker pool with admission control, request coalescing and
// per-query deadlines; GET /v1/stats and /metrics expose the serving
// telemetry.
//
// Simulated fleet (self-contained, no daemons needed):
//
//	qens-gateway -addr :8080 -nodes 6 -samples 500
//
// Remote fleet of qensd daemons:
//
//	qens-gateway -addr :8080 -addrs 127.0.0.1:7001,127.0.0.1:7002
//
// Sharded topology — the gateway becomes the root coordinator over
// qens-region daemons, routing each query to the overlapping regions
// and aggregating cross-region results:
//
//	qens-gateway -addr :8080 -region-addrs 127.0.0.1:7101,127.0.0.1:7102
//
// Shutdown is graceful: SIGINT/SIGTERM stops admission (503 on new
// queries), drains in-flight work, then closes the listener and
// flushes the trace file.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"qens/internal/dataset"
	"qens/internal/federation"
	"qens/internal/fleet"
	"qens/internal/gateway"
	"qens/internal/ml"
	"qens/internal/region"
	"qens/internal/selection"
	"qens/internal/telemetry"
	"qens/internal/transport"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:8080", "HTTP listen address")
		addrs       = flag.String("addrs", "", "comma-separated qensd daemon addresses (remote fleet; empty runs a simulated fleet)")
		regionAddrs = flag.String("region-addrs", "", "comma-separated qens-region daemon addresses (sharded topology; mutually exclusive with -addrs)")
		nodes       = flag.Int("nodes", 6, "simulated fleet size")
		samples     = flag.Int("samples", 500, "samples per simulated node")
		k           = flag.Int("k", 5, "per-node k-means clusters")
		epochs      = flag.Int("epochs", 5, "local epochs per supporting cluster")
		seed        = flag.Uint64("seed", 1, "simulation / leader seed")
		model       = flag.String("model", "lr", "model family: lr or nn")

		workers     = flag.Int("workers", 4, "worker pool size (concurrent queries on the fleet)")
		queueDepth  = flag.Int("queue", 64, "admission queue depth (overflow returns 429)")
		timeout     = flag.Duration("timeout", 30*time.Second, "default per-query execution budget")
		coalesceIoU = flag.Float64("coalesce-iou", 0.95, "IoU threshold for coalescing in-flight queries (<0 disables)")
		reuseIoU    = flag.Float64("reuse-iou", 0.9, "IoU threshold for the result reuse cache (0 disables)")
		reuseCap    = flag.Int("reuse-cap", 32, "reuse cache capacity")
		epsilon     = flag.Float64("epsilon", 0.6, "default query-driven support threshold")
		topL        = flag.Int("topl", 3, "default query-driven top-l")

		approxErr      = flag.Float64("approx-err", 0, "approximate answering: max predicted error for serving a query from the model cache (0 disables the tier in both topologies; requires -reuse-iou)")
		approxCoverage = flag.Float64("approx-coverage", 0.25, "minimum cached-rectangle coverage of the query before an approximate answer is considered (training rectangles single-leader, root cache entries sharded)")
		approxProbe    = flag.Int("approx-probe", 8, "ground-truth probe cadence: every Nth cache-servable query still trains fresh to score the cached answer")
		banditOn       = flag.Bool("bandit", false, "enable the selector-config bandit behind selector \"auto\"")
		banditExplore  = flag.Float64("bandit-explore", 0.1, "bandit epsilon-greedy exploration rate")

		summaryTTL     = flag.Duration("summary-ttl", 0, "summary registry snapshot TTL; after this age the next query refetches the fleet advertisement (0 caches until invalidated)")
		summaryDelta   = flag.Bool("summary-delta", false, "refresh fleet summaries via per-node epoch-conditional deltas instead of full re-fetch (bytes proportional to churn)")
		summaryRefresh = flag.Duration("summary-refresh", 0, "background summary refresh interval; re-fetches fleet advertisements off the query path (0 disables)")
		summaryPush    = flag.Bool("summary-push", true, "subscribe to server-push summary deltas from push-capable nodes; nodes that decline (v1 or pre-push) stay on TTL pull")

		dialTimeout  = flag.Duration("dial-timeout", 2*time.Minute, "remote client dial/request timeout")
		wireProto    = flag.Int("wire-proto", transport.WireProtoV2, "maximum wire protocol to negotiate with qensd daemons (1 = JSON, 2 = binary multiplexed)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown budget")
		tracePath    = flag.String("trace", "", "write per-query spans as JSONL to this file")
	)
	flag.Parse()

	// Tracing is always on: retained spans back GET /v1/trace/{id} and
	// /v1/traces even without a file sink. -trace additionally streams
	// every span to disk as JSONL.
	var traceFile *os.File
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fatal("trace file: %v", err)
		}
		traceFile = f
	}
	tracer := telemetry.NewTracer(traceFile) // nil sink = memory-only
	tracer.SetRetention(4096)
	telemetry.SetDefaultTracer(tracer)
	if traceFile != nil {
		defer func() {
			if err := tracer.Flush(); err != nil {
				fmt.Fprintf(os.Stderr, "qens-gateway: trace flush: %v\n", err)
			}
			traceFile.Close()
			fmt.Printf("qens-gateway: trace written to %s\n", *tracePath)
		}()
	}

	if *addrs != "" && *regionAddrs != "" {
		fatal("-addrs and -region-addrs are mutually exclusive")
	}

	cfg := gateway.ServerConfig{
		Workers:        *workers,
		QueueDepth:     *queueDepth,
		DefaultTimeout: *timeout,
		CoalesceIoU:    *coalesceIoU,
		DefaultEpsilon: *epsilon,
		DefaultTopL:    *topL,
		Tracer:         tracer,
	}
	if *banditOn {
		bandit, err := selection.NewConfigBandit(selection.DefaultConfigArms(*epsilon),
			selection.BanditConfig{Explore: *banditExplore, Seed: *seed})
		if err != nil {
			fatal("%v", err)
		}
		cfg.Bandit = bandit
		fmt.Printf("qens-gateway: config bandit on (%d arms, explore %.2f); submit with selector \"auto\"\n",
			len(selection.DefaultConfigArms(*epsilon)), *banditExplore)
	}
	var fleetSize int
	if *regionAddrs != "" {
		// The root's approximate tier reuses -approx-err as the master
		// switch but is driven purely by coverage: the root never sees
		// training rectangles, so cached query bounds stand in.
		rootCoverage := 0.0
		if *approxErr > 0 {
			rootCoverage = *approxCoverage
		}
		router, transportStats, cleanup, err := buildRouter(*regionAddrs, *epochs, *seed, *model, *dialTimeout, *wireProto, *reuseIoU, *reuseCap, rootCoverage)
		if err != nil {
			fatal("%v", err)
		}
		defer cleanup()
		cfg.Router = router
		cfg.TransportStats = transportStats
		ids, err := router.NodeIDs(context.Background())
		if err != nil {
			fatal("fleet roster: %v", err)
		}
		fleetSize = len(ids)
	} else {
		leader, transportStats, wireStatus, cleanup, err := buildLeader(*addrs, *nodes, *samples, *k, *epochs, *seed, *model, *dialTimeout, *summaryTTL, *summaryDelta, *wireProto)
		if err != nil {
			fatal("%v", err)
		}
		defer cleanup()

		if *summaryRefresh > 0 {
			leader.Registry().StartRefresh(*summaryRefresh)
			defer leader.Registry().Stop()
			fmt.Printf("qens-gateway: refreshing fleet summaries every %v\n", *summaryRefresh)
		}
		if *summaryPush {
			subCtx, cancel := context.WithTimeout(context.Background(), *dialTimeout)
			n, perr := leader.StartPush(subCtx)
			cancel()
			if perr != nil {
				fmt.Fprintf(os.Stderr, "qens-gateway: summary push: %v\n", perr)
			}
			fmt.Printf("qens-gateway: summary push from %d/%d nodes (rest on TTL pull)\n",
				n, len(leader.NodeIDs()))
		}
		if *approxErr > 0 && *reuseIoU <= 0 {
			fatal("-approx-err requires the reuse cache (-reuse-iou > 0)")
		}
		if *reuseIoU > 0 {
			cache, err := federation.NewAdaptiveCache(*reuseIoU, *reuseCap, federation.ApproxConfig{
				MaxPredictedError: *approxErr,
				MinCoverage:       *approxCoverage,
				ProbeEvery:        *approxProbe,
			})
			if err != nil {
				fatal("%v", err)
			}
			cfg.Cache = cache
			if *approxErr > 0 {
				fmt.Printf("qens-gateway: approximate answering on (err<=%.2f, coverage>=%.2f, probe 1/%d)\n",
					*approxErr, *approxCoverage, *approxProbe)
			}
		}
		cfg.Leader = leader
		cfg.TransportStats = transportStats
		cfg.WireStatus = wireStatus
		fleetSize = len(leader.NodeIDs())
	}

	gw, err := gateway.NewServer(cfg)
	if err != nil {
		fatal("%v", err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal("listen %s: %v", *addr, err)
	}
	httpSrv := &http.Server{Handler: gw.Handler(), ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = httpSrv.Serve(ln) }() // returns ErrServerClosed on Shutdown

	if cfg.Router != nil {
		fmt.Printf("qens-gateway: root over %d regions / %d nodes on http://%s (POST /v1/query, GET /v1/stats, /metrics)\n",
			len(cfg.Router.Regions()), fleetSize, ln.Addr())
	} else {
		fmt.Printf("qens-gateway: serving %d nodes on http://%s (POST /v1/query, GET /v1/stats, /metrics)\n",
			fleetSize, ln.Addr())
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	stop()

	fmt.Println("qens-gateway: draining (new queries get 503)")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := gw.Drain(drainCtx); err != nil {
		fmt.Fprintf(os.Stderr, "qens-gateway: drain: %v\n", err)
	}
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		fmt.Fprintf(os.Stderr, "qens-gateway: http shutdown: %v\n", err)
	}
	fmt.Println("qens-gateway: stopped")
}

// buildRouter dials every qens-region daemon and wires the root
// coordinator over them. Result reuse lives in the router itself
// (epoch-fenced per region), not in the gateway's single-leader
// cache, so -reuse-iou/-reuse-cap feed the router config here.
func buildRouter(regionAddrs string, epochs int, seed uint64, model string, dialTimeout time.Duration, wireProto int, reuseIoU float64, reuseCap int, approxCoverage float64) (*region.Router, func() any, func(), error) {
	var remotes []*transport.RegionClient
	var services []region.Service
	closeAll := func() {
		for _, rc := range remotes {
			rc.Close()
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), dialTimeout)
	defer cancel()
	for _, a := range strings.Split(regionAddrs, ",") {
		a = strings.TrimSpace(a)
		if a == "" {
			continue
		}
		rc, err := transport.DialRegion(ctx, a, transport.DialOptions{Timeout: dialTimeout, MaxProto: wireProto})
		if err != nil {
			closeAll()
			return nil, nil, nil, err
		}
		fmt.Printf("qens-gateway: connected to %s (%s, wire v%d)\n", rc.ID(), a, rc.Client().Proto())
		remotes = append(remotes, rc)
		services = append(services, rc)
	}
	router, err := region.NewRouter(region.Config{
		Spec: specFor(model, 1), LocalEpochs: epochs, Seed: seed,
		ReuseIoU: reuseIoU, ReuseCap: reuseCap, ApproxCoverage: approxCoverage,
	}, services)
	if err != nil {
		closeAll()
		return nil, nil, nil, err
	}
	stats := func() any {
		out := make([]fleet.WireStatus, 0, len(remotes))
		for _, rc := range remotes {
			c := rc.Client()
			sent, recv := c.BytesMoved()
			out = append(out, fleet.WireStatus{
				NodeID: c.ID(), Addr: c.Addr(), Proto: c.Proto(),
				InflightRPCs: c.InflightRPCs(), BytesOut: sent, BytesIn: recv,
			})
		}
		return out
	}
	return router, stats, closeAll, nil
}

// buildLeader wires either a simulated in-process fleet or a roster of
// remote qensd daemons. For a remote fleet it also returns the
// /v1/stats transport hook reporting each connection's negotiated wire
// protocol, in-flight RPC count and byte counters, plus the typed
// per-node wire status merged into GET /v1/fleet.
func buildLeader(addrs string, nodes, samples, k, epochs int, seed uint64, model string, dialTimeout, summaryTTL time.Duration, summaryDelta bool, wireProto int) (*federation.Leader, func() any, func() []fleet.WireStatus, func(), error) {
	if addrs != "" {
		var remotes []*transport.Client
		var clients []federation.Client
		closeAll := func() {
			for _, c := range remotes {
				c.Close()
			}
		}
		for _, a := range strings.Split(addrs, ",") {
			a = strings.TrimSpace(a)
			if a == "" {
				continue
			}
			c, err := transport.Dial(a, transport.DialOptions{Timeout: dialTimeout, MaxProto: wireProto})
			if err != nil {
				closeAll()
				return nil, nil, nil, nil, fmt.Errorf("dial %s: %w", a, err)
			}
			fmt.Printf("qens-gateway: connected to %s (%s, wire v%d)\n", c.ID(), a, c.Proto())
			remotes = append(remotes, c)
			clients = append(clients, c)
		}
		leader, err := federation.NewLeader(federation.Config{
			Spec: specFor(model, 1), ClusterK: k, LocalEpochs: epochs, Seed: seed,
			SummaryTTL: summaryTTL, SummaryDelta: summaryDelta,
		}, nil, clients)
		if err != nil {
			closeAll()
			return nil, nil, nil, nil, err
		}
		wires := func() []fleet.WireStatus {
			out := make([]fleet.WireStatus, 0, len(remotes))
			for _, c := range remotes {
				sent, recv := c.BytesMoved()
				out = append(out, fleet.WireStatus{
					NodeID: c.ID(), Addr: c.Addr(), Proto: c.Proto(),
					InflightRPCs: c.InflightRPCs(), BytesOut: sent, BytesIn: recv,
				})
			}
			return out
		}
		stats := func() any { return wires() }
		return leader, stats, wires, closeAll, nil
	}

	data, err := dataset.PaperNodeDatasets(dataset.Config{
		Nodes: nodes, SamplesPerNode: samples, Seed: seed,
	})
	if err != nil {
		return nil, nil, nil, nil, err
	}
	sim, err := federation.NewSimulatedFleet(data, federation.Config{
		Spec: specFor(model, data[0].Dims()-1), ClusterK: k, LocalEpochs: epochs, Seed: seed,
		SummaryTTL: summaryTTL, SummaryDelta: summaryDelta,
	}, federation.FleetOptions{})
	if err != nil {
		return nil, nil, nil, nil, err
	}
	return sim.Leader, nil, nil, func() {}, nil
}

func specFor(model string, inputDim int) ml.Spec {
	if model == "nn" {
		return ml.PaperNN(inputDim)
	}
	return ml.PaperLR(inputDim)
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "qens-gateway: "+format+"\n", args...)
	os.Exit(1)
}
