package main

import (
	"fmt"

	"qens/internal/experiments"
)

// runReport regenerates every experiment and prints one markdown
// document (the evidence behind EXPERIMENTS.md).
func runReport(opts experiments.Options) error {
	out, err := experiments.Report(opts)
	if err != nil {
		return err
	}
	fmt.Print(out)
	return nil
}
