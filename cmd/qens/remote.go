package main

import (
	"fmt"
	"strings"
	"time"

	"qens/internal/experiments"
	"qens/internal/federation"
	"qens/internal/geometry"
	"qens/internal/ml"
	"qens/internal/query"
	"qens/internal/rng"
	"qens/internal/selection"
	"qens/internal/transport"
)

// runRemote drives a federation of live qensd daemons: it dials every
// address, collects cluster summaries, draws a query workload over the
// advertised space, and compares query-driven selection against random
// selection. Scoring happens on the nodes themselves (the leader holds
// no data): each query trains a FedAvg global model via ExecuteRounds
// and every node reports its in-query loss, pooled by sample count.
func runRemote(addrs []string, wireProto int, opts experiments.Options) error {
	opts = opts.WithDefaults()
	if len(addrs) == 0 {
		return fmt.Errorf("qens: remote mode needs -addrs")
	}
	var clients []federation.Client
	for _, addr := range addrs {
		c, err := transport.Dial(strings.TrimSpace(addr),
			transport.DialOptions{Timeout: 2 * time.Minute, MaxProto: wireProto})
		if err != nil {
			return fmt.Errorf("qens: dial %s: %w", addr, err)
		}
		defer c.Close()
		fmt.Printf("connected to %s (%s, wire v%d)\n", c.ID(), addr, c.Proto())
		clients = append(clients, c)
	}

	spec := ml.PaperLR(1)
	if opts.Model == ml.KindNN {
		spec = ml.PaperNN(1)
	}
	leader, err := federation.NewLeader(federation.Config{
		Spec:        spec,
		ClusterK:    opts.ClusterK,
		LocalEpochs: opts.LocalEpochs,
		Seed:        opts.Seed,
	}, nil, clients)
	if err != nil {
		return err
	}
	summaries, err := leader.Summaries()
	if err != nil {
		return err
	}
	var space geometry.Rect
	first := true
	for _, s := range summaries {
		for _, c := range s.Clusters {
			if first {
				space = c.Bounds.Clone()
				first = false
				continue
			}
			space = space.Union(c.Bounds)
		}
	}
	nq := opts.Queries
	if nq > 20 {
		nq = 20
	}
	workload, err := query.Workload(query.WorkloadConfig{Space: space, Count: nq}, rng.New(opts.Seed+2))
	if err != nil {
		return err
	}

	arms := []struct {
		name string
		sel  selection.Selector
	}{
		{"query-driven", selection.QueryDriven{Epsilon: opts.Epsilon, TopL: opts.TopL}},
		{"random", selection.Random{L: opts.TopL}},
	}
	fmt.Printf("\nrunning %d queries against %d remote nodes:\n", nq, len(clients))
	for _, arm := range arms {
		total, samples, executed := 0.0, 0, 0
		for _, q := range workload {
			res, err := leader.ExecuteRounds(q, arm.sel, 2)
			if err != nil {
				continue
			}
			mse, n, err := leader.EvaluateGlobal(res.GlobalParams, q.Bounds)
			if err != nil {
				return err
			}
			if n == 0 {
				continue
			}
			total += mse
			samples += n
			executed++
		}
		if executed == 0 {
			fmt.Printf("  %-14s (no evaluable queries)\n", arm.name)
			continue
		}
		fmt.Printf("  %-14s loss=%-12.2f (%d queries, %d scored samples)\n",
			arm.name, total/float64(executed), executed, samples)
	}
	return nil
}
