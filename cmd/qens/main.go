// Command qens is the experiment runner: it regenerates every table
// and figure of the paper plus the ablation sweeps, on the synthetic
// air-quality corpus.
//
// Usage:
//
//	qens [flags] <experiment>
//
// Experiments: table1 table2 fig6 fig7 fig8 fig9 pretest
// ablation-k ablation-eps ablation-l ablation-psi ablation-agg all
//
// Flags scale the run; the defaults are the paper's setting (10 nodes,
// 2000 samples per node, K=5, 200 queries). Use -quick for a reduced
// sanity-check run.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"qens/internal/experiments"
	"qens/internal/selection"
	"qens/internal/telemetry"
)

func main() {
	var (
		seed        = flag.Uint64("seed", 1, "experiment seed")
		nodes       = flag.Int("nodes", 0, "edge nodes (default 10)")
		samples     = flag.Int("samples", 0, "samples per node (default 2000)")
		queries     = flag.Int("queries", 0, "workload size (default 200; figs 8-9 cap at 20)")
		clusterK    = flag.Int("k", 0, "clusters per node (default 5)")
		epsilon     = flag.Float64("eps", 0, "support threshold ε (default 0.6)")
		topL        = flag.Int("l", 0, "top-ℓ participants (default 3)")
		localEpochs = flag.Int("epochs", 0, "local epochs E per cluster (default 5)")
		model       = flag.String("model", "", "model: linear or nn (default linear)")
		quick       = flag.Bool("quick", false, "reduced scale for a fast sanity run")
		addrs       = flag.String("addrs", "", "comma-separated qensd addresses for the remote experiment")
		wireProto   = flag.Int("wire-proto", 2, "maximum wire protocol to negotiate with qensd daemons (1 = JSON, 2 = binary multiplexed)")
		metricsAddr = flag.String("metrics-addr", "", "observability sidecar address serving /metrics, /healthz and /debug/pprof (e.g. :9091; empty disables)")
		tracePath   = flag.String("trace", "", "write a JSONL span trace of every executed query to this file")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		usage()
	}

	if *metricsAddr != "" {
		obs, err := telemetry.ServeHTTP(*metricsAddr, telemetry.Default(), func() map[string]any {
			return map[string]any{"role": "leader", "experiment": flag.Arg(0)}
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "qens: %v\n", err)
			os.Exit(1)
		}
		defer obs.Close()
		fmt.Printf("observability on http://%s (/metrics /healthz /debug/pprof)\n", obs.Addr())
	}
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "qens: trace: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		tracer := telemetry.NewTracer(f)
		tracer.SetRetention(100_000)
		telemetry.SetDefaultTracer(tracer)
		defer func() {
			if err := tracer.Flush(); err != nil {
				fmt.Fprintf(os.Stderr, "qens: trace flush: %v\n", err)
			}
			if sum, err := experiments.SummarizeTraceSpans(tracer.Spans()); err == nil {
				fmt.Printf("\ntrace written to %s\n%s", *tracePath, sum)
			}
		}()
	}

	opts := experiments.Options{
		Seed:           *seed,
		Nodes:          *nodes,
		SamplesPerNode: *samples,
		Queries:        *queries,
		ClusterK:       *clusterK,
		Epsilon:        *epsilon,
		TopL:           *topL,
		LocalEpochs:    *localEpochs,
		Model:          *model,
	}
	if *quick {
		if opts.Nodes == 0 {
			opts.Nodes = 6
		}
		if opts.SamplesPerNode == 0 {
			opts.SamplesPerNode = 500
		}
		if opts.Queries == 0 {
			opts.Queries = 20
		}
	}

	name := flag.Arg(0)
	start := time.Now()
	if name == "remote" {
		if err := runRemote(strings.Split(*addrs, ","), *wireProto, opts); err != nil {
			fmt.Fprintf(os.Stderr, "qens: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("\n[remote completed in %s]\n", time.Since(start).Round(time.Millisecond))
		return
	}
	if err := run(name, opts); err != nil {
		fmt.Fprintf(os.Stderr, "qens: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("\n[%s completed in %s]\n", name, time.Since(start).Round(time.Millisecond))
}

func run(name string, opts experiments.Options) error {
	switch name {
	case "table1":
		return show(experiments.TableI(opts))
	case "table2":
		return show(experiments.TableII(opts))
	case "fig6":
		return show(experiments.Figure6(opts))
	case "fig7":
		return show(experiments.Figure7(opts))
	case "fig8":
		return show(experiments.Figure8(opts))
	case "fig9":
		return show(experiments.Figure9(opts))
	case "pretest":
		return runPreTest(opts)
	case "drift":
		o := opts
		if o.Heterogeneity == 0 {
			o.Heterogeneity = 1
		}
		if o.FlipFraction == 0 {
			o.FlipFraction = 0.3
		}
		return show(experiments.Drift(o))
	case "ablation-k":
		return show(experiments.AblationK(opts, nil))
	case "ablation-eps":
		return show(experiments.AblationEpsilon(opts, nil))
	case "ablation-l":
		return show(experiments.AblationTopL(opts, nil))
	case "ablation-psi":
		return show(experiments.AblationPsi(opts, nil))
	case "ablation-agg":
		return show(experiments.AblationAggregation(opts))
	case "sweep":
		return show(experiments.HeterogeneitySweep(opts, nil))
	case "comm":
		return show(experiments.CommunicationCost(opts))
	case "multifeature":
		return show(experiments.MultiFeature(opts, nil))
	case "reuse":
		return show(experiments.Reuse(opts))
	case "temporal":
		return show(experiments.Temporal(opts))
	case "explain":
		return runExplain(opts)
	case "report":
		return runReport(opts)
	case "robustness":
		return show(experiments.NoiseRobustness(opts, nil))
	case "ablation-quantizer":
		return show(experiments.QuantizerAblation(opts))
	case "adaptive":
		return show(experiments.Adaptive(opts))
	case "all":
		for _, n := range []string{"table1", "table2", "fig6", "fig7", "fig8", "fig9", "drift",
			"ablation-k", "ablation-eps", "ablation-l", "ablation-psi", "ablation-agg"} {
			fmt.Printf("=== %s ===\n", n)
			if err := run(n, opts); err != nil {
				return fmt.Errorf("%s: %w", n, err)
			}
			fmt.Println()
		}
		return nil
	default:
		usage()
		return nil
	}
}

// show prints any experiment result that knows how to render itself.
func show[T fmt.Stringer](res T, err error) error {
	if err != nil {
		return err
	}
	fmt.Print(res.String())
	return nil
}

// runExplain prints the leader's ranking view for the first workload
// query.
func runExplain(opts experiments.Options) error {
	env, err := experiments.NewEnvironment(opts)
	if err != nil {
		return err
	}
	summaries, err := env.Fleet.Leader.Summaries()
	if err != nil {
		return err
	}
	out, err := selection.Explain(env.Queries[0], summaries, opts.WithDefaults().Epsilon)
	if err != nil {
		return err
	}
	fmt.Print(out)
	return nil
}

// runPreTest runs the §II heterogeneity pre-test on both corpus
// regimes.
func runPreTest(opts experiments.Options) error {
	for _, regime := range []struct {
		name          string
		heterogeneity float64
		flip          float64
	}{
		{"homogeneous", 0.02, -1},
		{"heterogeneous", 1, 0.3},
	} {
		o := opts
		o.Heterogeneity = regime.heterogeneity
		o.FlipFraction = regime.flip
		if o.FlipFraction < 0 {
			o.FlipFraction = 0
		}
		env, err := experiments.NewEnvironment(o)
		if err != nil {
			return err
		}
		res, err := env.Fleet.Leader.PreTest(0)
		if err != nil {
			return err
		}
		fmt.Printf("%s corpus -> classified %s (loss dispersion %.2fx)\n",
			regime.name, res.Regime, res.Dispersion)
	}
	return nil
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: qens [flags] <experiment>

experiments:
  table1        Table I  — all-node vs random loss, homogeneous nodes
  table2        Table II — all-node vs random loss, heterogeneous nodes
  fig6          Fig. 6   — query space vs node data spaces
  fig7          Fig. 7   — average loss: GT, Random, Averaging, Weighted
  fig8          Fig. 8   — training time w/ and w/o the query-driven mechanism
  fig9          Fig. 9   — % of data needed per query w/ and w/o the mechanism
  pretest       §II heterogeneity pre-test on both corpus regimes
  drift         model forgetting under sequential training, query-driven vs naive path
  ablation-k    sweep clusters per node K
  ablation-eps  sweep support threshold ε
  ablation-l    sweep participant budget ℓ
  ablation-psi  sweep rank threshold ψ (Eq. 5)
  ablation-agg  prediction averaging vs weighted vs parameter FedAvg
  sweep         loss advantage of the mechanism as heterogeneity rises
  comm          per-query communication bytes vs GT and centralized shipping
  multifeature  full pipeline over a 4-dimensional feature space
  reuse         query-result caching under a focused workload ([5]-style)
  temporal      train-on-past / test-on-future prequential evaluation
  explain       print the full Eq. 2-4 ranking for one query
  report        run everything and emit one markdown report
  robustness    behaviour under corrupted-label (broken-sensor) nodes
  ablation-quantizer  k-means vs equi-width grid synopses
  adaptive      the §II decision procedure (pre-test -> mechanism) end-to-end
  remote        drive live qensd daemons (-addrs host:port,host:port)
  all           run everything

run 'qens -h' for flags`)
	os.Exit(2)
}
