package main

import (
	"testing"

	"qens/internal/experiments"
)

// tinyOpts keeps CLI-path integration runs fast.
func tinyOpts() experiments.Options {
	return experiments.Options{
		Seed: 3, Nodes: 4, SamplesPerNode: 200, Queries: 6,
		ClusterK: 4, Epsilon: 0.6, TopL: 2, LocalEpochs: 2,
	}
}

// TestRunExperiments drives the CLI dispatcher end to end for every
// simulated experiment (printing to stdout is fine under go test).
func TestRunExperiments(t *testing.T) {
	for _, name := range []string{
		"table1", "table2", "fig6", "fig7", "fig8", "fig9",
		"pretest", "drift", "sweep", "comm", "reuse", "temporal",
		"multifeature", "robustness", "explain",
		"ablation-k", "ablation-eps", "ablation-l", "ablation-psi",
		"ablation-agg", "ablation-quantizer", "adaptive",
	} {
		opts := tinyOpts()
		if name == "drift" {
			opts.Heterogeneity = 1
			opts.FlipFraction = 0.3
			opts.Queries = 15
		}
		if err := run(name, opts); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}
