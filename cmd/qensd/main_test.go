package main

import (
	"path/filepath"
	"testing"

	"qens/internal/dataset"
)

func TestLoadDataMutuallyExclusive(t *testing.T) {
	if _, _, err := loadData("file.csv", 0, 10, 100, 1); err == nil {
		t.Fatal("accepted both -data and -synthetic")
	}
	if _, _, err := loadData("", -1, 10, 100, 1); err == nil {
		t.Fatal("accepted neither source")
	}
}

func TestLoadDataSynthetic(t *testing.T) {
	d, id, err := loadData("", 2, 4, 120, 7)
	if err != nil {
		t.Fatal(err)
	}
	if id != "node-2" || d.Len() != 120 || d.Dims() != 2 {
		t.Fatalf("shard %s: %d rows, %d dims", id, d.Len(), d.Dims())
	}
	if _, _, err := loadData("", 9, 4, 120, 7); err == nil {
		t.Fatal("accepted out-of-range shard")
	}
}

func TestLoadDataCSV(t *testing.T) {
	src := dataset.MustNew([]string{"x", "y"}, "y")
	src.MustAppend([]float64{1, 2})
	path := filepath.Join(t.TempDir(), "edge-7.csv")
	if err := src.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	d, id, err := loadData(path, -1, 0, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if id != "edge-7" || d.Len() != 1 {
		t.Fatalf("loaded %s with %d rows", id, d.Len())
	}
	if _, _, err := loadData(filepath.Join(t.TempDir(), "missing.csv"), -1, 0, 0, 1); err == nil {
		t.Fatal("loaded missing file")
	}
}

func TestTrimExt(t *testing.T) {
	cases := map[string]string{
		"data/node-00.csv": "node-00",
		"plain":            "plain",
		"a/b/c.tar.gz":     "c.tar",
		".hidden":          ".hidden",
	}
	for in, want := range cases {
		if got := trimExt(in); got != want {
			t.Errorf("trimExt(%q) = %q, want %q", in, got, want)
		}
	}
}
