package main

import (
	"context"
	"fmt"
	"math"
	"os"
	"time"

	"qens/internal/dataset"
	"qens/internal/federation"
	"qens/internal/rng"
)

// ingestSim drives the daemon's simulated streaming ingestion: rows
// statistically resembling the node's shard arrive at a fixed rate and
// flow through Node.Ingest — the same buffered mini-batch path real
// ingestion would use — so incremental requantization, epoch bumps and
// summary pushes all exercise end to end from a lone qensd. After the
// configured drift delay the generator shifts every feature by a
// fraction of its observed range, which the node's drift detector
// should eventually escalate into a full re-quantization without any
// operator SIGHUP.
type ingestSim struct {
	node  ingestNode
	src   *rng.Source
	rows  [][]float64 // seed rows (borrowed views of the base shard)
	lo    []float64   // per-column min over the seed shard
	span  []float64   // per-column range (>= tiny epsilon)
	rate  float64     // rows per second
	drift time.Duration
	shift float64
}

// ingestNode is the slice of federation.Node the simulator needs
// (seam for tests).
type ingestNode interface {
	Ingest(rows [][]float64) error
}

func newIngestSim(node ingestNode, data *dataset.Dataset, seed uint64, rate float64, drift time.Duration, shift float64) *ingestSim {
	rows := data.Rows()
	dims := data.Dims()
	lo := make([]float64, dims)
	hi := make([]float64, dims)
	for d := 0; d < dims; d++ {
		lo[d], hi[d] = math.Inf(1), math.Inf(-1)
	}
	for _, row := range rows {
		for d, v := range row {
			lo[d] = math.Min(lo[d], v)
			hi[d] = math.Max(hi[d], v)
		}
	}
	span := make([]float64, dims)
	for d := 0; d < dims; d++ {
		span[d] = hi[d] - lo[d]
		if span[d] <= 0 {
			span[d] = 1e-9
		}
	}
	return &ingestSim{
		node: node, src: rng.New(seed ^ 0x1ce57), rows: rows,
		lo: lo, span: span, rate: rate, drift: drift, shift: shift,
	}
}

// run feeds rows until ctx is done, batching per tick so high rates do
// not spin the scheduler. A 50ms tick keeps per-call batches small
// enough that the ingest buffer (not this loop) controls batching.
func (s *ingestSim) run(ctx context.Context) {
	const tick = 50 * time.Millisecond
	perTick := s.rate * tick.Seconds()
	start := time.Now()
	carry := 0.0
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		carry += perTick
		n := int(carry)
		if n == 0 {
			continue
		}
		carry -= float64(n)
		drifted := s.drift > 0 && time.Since(start) >= s.drift
		batch := make([][]float64, n)
		for i := range batch {
			batch[i] = s.sample(drifted)
		}
		if err := s.node.Ingest(batch); err != nil {
			fmt.Fprintf(os.Stderr, "qensd: ingest: %v\n", err)
			return
		}
	}
}

// sample draws one synthetic row: a seed row plus per-column Gaussian
// jitter at 5% of the column range; drifted rows are additionally
// displaced by shift×range, a regime change the EWMA detector sees as
// rising reconstruction error and a skewed assignment distribution.
func (s *ingestSim) sample(drifted bool) []float64 {
	base := s.rows[s.src.Intn(len(s.rows))]
	row := make([]float64, len(base))
	for d, v := range base {
		row[d] = v + s.src.Normal(0, 0.05*s.span[d])
		if drifted {
			row[d] += s.shift * s.span[d]
		}
	}
	return row
}

var _ ingestNode = (*federation.Node)(nil)
