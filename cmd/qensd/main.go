// Command qensd runs one participant edge node as a TCP daemon. The
// leader (cmd/qens or any program using internal/federation over
// internal/transport) connects to it, fetches its cluster summary, and
// drives per-query training rounds. Raw data never leaves the daemon.
//
// Usage:
//
//	qensd -addr :7001 -id node-0 -data data/node-00.csv -k 5
//
// or with a self-generated synthetic shard (no CSV needed):
//
//	qensd -addr :7001 -synthetic 0 -nodes 10 -samples 2000 -seed 1
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"qens/internal/dataset"
	"qens/internal/federation"
	"qens/internal/rng"
	"qens/internal/telemetry"
	"qens/internal/transport"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:7001", "listen address")
		id           = flag.String("id", "", "node id (defaults to node-<synthetic> or the data file name)")
		dataPath     = flag.String("data", "", "CSV file with this node's local data")
		k            = flag.Int("k", 5, "k-means clusters (paper: 5)")
		seed         = flag.Uint64("seed", 1, "node RNG seed")
		synthetic    = flag.Int("synthetic", -1, "generate the i-th synthetic shard instead of loading a CSV")
		nodes        = flag.Int("nodes", 10, "total synthetic shards (with -synthetic)")
		samples      = flag.Int("samples", 2000, "samples per synthetic shard (with -synthetic)")
		metricsAddr  = flag.String("metrics-addr", "", "observability sidecar address serving /metrics, /healthz and /debug/pprof (e.g. :9090; empty disables)")
		tracePath    = flag.String("trace", "", "write per-RPC spans as JSONL to this file (flushed on shutdown)")
		drainTimeout = flag.Duration("drain-timeout", 15*time.Second, "graceful shutdown budget before in-flight RPCs are aborted")
		trainConc    = flag.Int("train-concurrency", 0, "max concurrent training/evaluation jobs (0 = GOMAXPROCS); excess requests queue")
		wireProto    = flag.Int("wire-proto", transport.WireProtoV2, "maximum wire protocol to negotiate (1 = JSON, 2 = binary multiplexed)")

		ingestRate  = flag.Float64("ingest-rate", 0, "simulated streaming ingestion rate in rows/sec (0 disables); rows flow through the incremental requantization path and push summary deltas to subscribed leaders")
		ingestBatch = flag.Int("ingest-batch", 0, "ingest mini-batch size (0 = default)")
		driftAfter  = flag.Duration("ingest-drift-after", 0, "after this delay, simulated rows shift distribution so the drift detector escalates to a full re-quantization (0 = no drift)")
		driftShift  = flag.Float64("ingest-drift-shift", 0.5, "drift displacement as a fraction of each feature's range (with -ingest-drift-after)")
	)
	flag.Parse()

	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fatal("trace file: %v", err)
		}
		tracer := telemetry.NewTracer(f)
		tracer.SetRetention(4096)
		telemetry.SetDefaultTracer(tracer)
		defer func() {
			if err := tracer.Flush(); err != nil {
				fmt.Fprintf(os.Stderr, "qensd: trace flush: %v\n", err)
			}
			f.Close()
			fmt.Printf("qensd: trace written to %s\n", *tracePath)
		}()
	}

	data, nodeID, err := loadData(*dataPath, *synthetic, *nodes, *samples, *seed)
	if err != nil {
		fatal("%v", err)
	}
	if *id != "" {
		nodeID = *id
	}

	node, err := federation.NewNode(nodeID, data, *k, rng.New(*seed),
		federation.WithTrainConcurrency(*trainConc))
	if err != nil {
		fatal("build node: %v", err)
	}
	if *ingestRate > 0 {
		if err := node.EnableIngest(federation.IngestConfig{BatchSize: *ingestBatch}); err != nil {
			fatal("enable ingest: %v", err)
		}
	}
	srv, err := transport.Serve(node, *addr, transport.WithMaxWireProto(*wireProto))
	if err != nil {
		fatal("%v", err)
	}
	fmt.Printf("qensd: node %s serving %d samples (K=%d, train-concurrency=%d, wire<=v%d) on %s\n",
		nodeID, data.Len(), *k, node.Engine().Parallelism(), srv.MaxWireProto(), srv.Addr())

	if *metricsAddr != "" {
		obs, err := telemetry.ServeHTTP(*metricsAddr, telemetry.Default(), healthFunc(srv, node, nodeID, data.Len(), *k))
		if err != nil {
			fatal("%v", err)
		}
		defer obs.Close()
		fmt.Printf("qensd: observability on http://%s (/metrics /healthz /debug/pprof)\n", obs.Addr())
	}

	// SIGHUP requantizes the node in place: the k-means synopsis is
	// rebuilt over the current local data and the advertisement epoch
	// bumps, so the next RPC response tells the leader its cached
	// summaries drifted.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	defer signal.Stop(hup)
	go func() {
		for range hup {
			if err := srv.Requantize(); err != nil {
				fmt.Fprintf(os.Stderr, "qensd: requantize: %v\n", err)
				continue
			}
			fmt.Printf("qensd: requantized, advertisement epoch now %d\n", srv.SummaryEpoch())
		}
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *ingestRate > 0 {
		sim := newIngestSim(node, data, *seed, *ingestRate, *driftAfter, *driftShift)
		go sim.run(ctx)
		fmt.Printf("qensd: simulated ingest at %.1f rows/s (drift after %v, shift %.2f)\n",
			*ingestRate, *driftAfter, *driftShift)
	}

	<-ctx.Done()
	stop()

	fmt.Println("qensd: draining (no new connections; waiting for in-flight RPCs)")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		fmt.Fprintf(os.Stderr, "qensd: shutdown: %v\n", err)
	}
	fmt.Println("qensd: stopped")
}

// healthFunc builds the /healthz document for a running daemon:
// node identity, shard size, K, the age of the last training round,
// push-mode counters and (when ingestion is enabled) the streaming
// ingest/drift block.
func healthFunc(srv *transport.Server, node *federation.Node, nodeID string, shardSize, k int) telemetry.HealthFunc {
	return func() map[string]any {
		v1, v2 := srv.WireConns()
		doc := map[string]any{
			"node":             nodeID,
			"addr":             srv.Addr(),
			"shard_size":       shardSize,
			"k":                k,
			"summary_epoch":    srv.SummaryEpoch(),
			"train_slots":      srv.TrainSlots(),
			"train_inflight":   srv.TrainInflight(),
			"wire_proto_max":   srv.MaxWireProto(),
			"wire_conns_v1":    v1,
			"wire_conns_v2":    v2,
			"push_subscribers": srv.PushSubscribers(),
			"pushes_sent":      srv.PushesSent(),
		}
		if st, ok := node.IngestStats(); ok {
			doc["ingest"] = st
		}
		if age, ok := srv.LastTrainAge(); ok {
			doc["last_round_age_s"] = age.Seconds()
		} else {
			doc["last_round_age_s"] = nil
		}
		return doc
	}
}

// loadData resolves the node's dataset from a CSV or the synthetic
// corpus.
func loadData(path string, shard, nodes, samples int, seed uint64) (*dataset.Dataset, string, error) {
	switch {
	case path != "" && shard >= 0:
		return nil, "", fmt.Errorf("qensd: -data and -synthetic are mutually exclusive")
	case path != "":
		d, err := dataset.LoadFile(path)
		if err != nil {
			return nil, "", fmt.Errorf("qensd: load %s: %w", path, err)
		}
		return d, trimExt(path), nil
	case shard >= 0:
		if shard >= nodes {
			return nil, "", fmt.Errorf("qensd: shard %d out of range (%d nodes)", shard, nodes)
		}
		sets, err := dataset.PaperNodeDatasets(dataset.Config{
			Nodes: nodes, SamplesPerNode: samples, Seed: seed,
		})
		if err != nil {
			return nil, "", fmt.Errorf("qensd: generate shard: %w", err)
		}
		return sets[shard], fmt.Sprintf("node-%d", shard), nil
	default:
		return nil, "", fmt.Errorf("qensd: need -data or -synthetic")
	}
}

func trimExt(path string) string {
	base := path
	if i := lastIndexByte(base, '/'); i >= 0 {
		base = base[i+1:]
	}
	if i := lastIndexByte(base, '.'); i > 0 {
		base = base[:i]
	}
	return base
}

func lastIndexByte(s string, b byte) int {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == b {
			return i
		}
	}
	return -1
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "qensd: "+format+"\n", args...)
	os.Exit(1)
}
