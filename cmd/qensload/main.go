// Command qensload is a closed-loop load generator for qens-gateway:
// N client goroutines each keep exactly one query outstanding against
// POST /v1/query, drawing bounds from a workload generated over the
// gateway's advertised data space (GET /v1/stats). It reports
// throughput, latency percentiles and the server-side coalescing /
// reuse counters.
//
//	qensload -url http://127.0.0.1:8080 -clients 8 -requests 200
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"qens/internal/geometry"
	"qens/internal/query"
	"qens/internal/rng"
)

func main() {
	var (
		baseURL   = flag.String("url", "http://127.0.0.1:8080", "gateway base URL")
		clients   = flag.Int("clients", 8, "concurrent closed-loop clients")
		requests  = flag.Int("requests", 100, "total requests to issue")
		distinct  = flag.Int("distinct", 12, "distinct query rectangles in the workload")
		selector  = flag.String("selector", "query-driven", "selector to request")
		epsilon   = flag.Float64("epsilon", 0.6, "query-driven epsilon")
		topL      = flag.Int("topl", 2, "query-driven top-l / baseline l")
		timeoutMS = flag.Int64("timeout-ms", 30000, "per-query budget sent to the gateway")
		seed      = flag.Uint64("seed", 7, "workload seed")
		waitUp    = flag.Duration("wait", 10*time.Second, "how long to wait for the gateway to come up")
	)
	flag.Parse()

	space, err := fetchSpace(*baseURL, *waitUp)
	if err != nil {
		fatal("%v", err)
	}
	workload, err := query.Workload(query.WorkloadConfig{
		Space: space, Count: *distinct,
	}, rng.New(*seed))
	if err != nil {
		fatal("workload: %v", err)
	}
	fmt.Printf("qensload: %d clients, %d requests, %d distinct queries over space %v\n",
		*clients, *requests, *distinct, space)

	var (
		next      atomic.Int64
		mu        sync.Mutex
		latencies []time.Duration

		ok, shed, unsupported, failed atomic.Int64
	)
	httpc := &http.Client{Timeout: time.Duration(*timeoutMS)*time.Millisecond + 10*time.Second}
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= *requests {
					return
				}
				q := workload[i%len(workload)]
				body, _ := json.Marshal(map[string]any{
					"bounds":     q.Bounds,
					"selector":   *selector,
					"epsilon":    *epsilon,
					"top_l":      *topL,
					"l":          *topL,
					"timeout_ms": *timeoutMS,
				})
				t0 := time.Now()
				status, errMsg := post(httpc, *baseURL+"/v1/query", body)
				lat := time.Since(t0)
				switch {
				case status == http.StatusOK:
					ok.Add(1)
					mu.Lock()
					latencies = append(latencies, lat)
					mu.Unlock()
				case status == http.StatusTooManyRequests:
					shed.Add(1)
				case status == http.StatusUnprocessableEntity:
					// No node supports this rectangle — a workload
					// property, not a serving failure.
					unsupported.Add(1)
				default:
					failed.Add(1)
					if failed.Load() <= 5 {
						fmt.Fprintf(os.Stderr, "qensload: request %d: status %d: %s\n", i, status, errMsg)
					}
				}
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)

	fmt.Printf("\nqensload: %d ok, %d shed (429), %d unsupported (422), %d failed in %v (%.1f q/s)\n",
		ok.Load(), shed.Load(), unsupported.Load(), failed.Load(), wall.Round(time.Millisecond),
		float64(ok.Load())/wall.Seconds())
	if len(latencies) > 0 {
		sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
		fmt.Printf("latency  p50=%v  p95=%v  p99=%v  max=%v\n",
			pct(latencies, 0.50), pct(latencies, 0.95), pct(latencies, 0.99),
			latencies[len(latencies)-1].Round(time.Millisecond))
	}
	if doc, err := getStats(*baseURL); err == nil {
		reuseHits := "n/a"
		if doc.Reuse != nil {
			reuseHits = strconv.Itoa(doc.Reuse.Hits)
		}
		fmt.Printf("server   admitted=%v coalesced=%v rejected=%v reuse_hits=%v\n",
			doc.Scheduler.Admitted, doc.Scheduler.Coalesced, doc.Scheduler.RejectedFull, reuseHits)
		if doc.Reuse != nil {
			fmt.Printf("cache    misses=%d evictions=%d size=%d\n",
				doc.Reuse.Misses, doc.Reuse.Evictions, doc.Reuse.Size)
			if doc.Reuse.ApproxOn {
				fmt.Printf("approx   hits=%d probes=%d (queries answered without training RPCs)\n",
					doc.Reuse.ApproxHits, doc.Reuse.Probes)
			}
		}
		// The server-side rolling window covers only the last minute, so
		// it reflects this run (server-observed, excludes queue-admission
		// shaping and client overhead) next to our closed-loop numbers.
		w := doc.Latency.Window
		if w.Count > 0 {
			fmt.Printf("server   last %.0fs: n=%d p50=%.1fms p95=%.1fms p99=%.1fms max=%.1fms\n",
				w.WindowS, w.Count, w.P50MS, w.P95MS, w.P99MS, w.MaxMS)
		}
		// Against a sharded topology, show how the root distributed the
		// workload's rectangles across regions: "routed" counts each
		// region's participation in fanned-out queries, so the sum
		// exceeds the query count whenever rectangles span shards.
		if rt := doc.Router; rt != nil && len(rt.Regions) > 0 {
			fmt.Printf("routing  %d queries, %d spanning fan-outs, %d no-route rejects, %d regions pruned\n",
				rt.Queries, rt.Spanning, rt.NoRoute, rt.RegionsPruned)
			var fanouts int64
			for _, reg := range rt.Regions {
				fanouts += reg.Routed
			}
			for _, reg := range rt.Regions {
				share := 0.0
				if fanouts > 0 {
					share = 100 * float64(reg.Routed) / float64(fanouts)
				}
				fmt.Printf("routing  %-12s %d nodes  routed=%d (%.1f%% of fan-outs)\n",
					reg.RegionID, reg.Nodes, reg.Routed, share)
			}
		}
		// Planner index/prune and delta-refresh volume: top-level
		// registry in single-leader mode, summed per-region registries
		// against a sharded topology.
		var reg registryBlock
		if doc.Registry != nil {
			reg = *doc.Registry
		} else if doc.Router != nil {
			for _, rg := range doc.Router.Regions {
				if rg.Registry != nil {
					reg.add(*rg.Registry)
				}
			}
		}
		if reg.IndexedPlans+reg.BrutePlans > 0 {
			prunedPct := 0.0
			if reg.NodesRanked > 0 {
				prunedPct = 100 * float64(reg.NodesPruned) / float64(reg.NodesRanked)
			}
			fmt.Printf("planner  indexed=%d brute=%d  pruned=%d/%d nodes (%.1f%% per-query mean)\n",
				reg.IndexedPlans, reg.BrutePlans, reg.NodesPruned, reg.NodesRanked, prunedPct)
		}
		if reg.DeltaRefreshes > 0 {
			deltaPct := 0.0
			if reg.FullBytes > 0 {
				deltaPct = 100 * float64(reg.DeltaBytes) / float64(reg.FullBytes)
			}
			fmt.Printf("refresh  delta=%d full=%d  bytes delta=%d vs full=%d (%.1f%%)\n",
				reg.DeltaRefreshes, reg.FullRefreshes, reg.DeltaBytes, reg.FullBytes, deltaPct)
		}
		// Push-mode freshness: applied node pushes vs pull refreshes,
		// with the stale/unknown drops that the epoch fencing rejected.
		if reg.PushApplied+reg.PushDroppedStale+reg.PushDroppedUnknown > 0 {
			pulls := reg.DeltaRefreshes + reg.FullRefreshes
			fmt.Printf("push     applied=%d (%d bytes)  dropped stale=%d unknown=%d  pull refreshes=%d\n",
				reg.PushApplied, reg.PushBytes, reg.PushDroppedStale, reg.PushDroppedUnknown, pulls)
		}
	}
	if failed.Load() > 0 {
		os.Exit(1)
	}
}

func pct(sorted []time.Duration, q float64) time.Duration {
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx].Round(time.Millisecond)
}

// post issues one query; it returns the status code and, for non-200s,
// the server's error string.
func post(c *http.Client, url string, body []byte) (int, string) {
	resp, err := c.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, err.Error()
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	if resp.StatusCode == http.StatusOK {
		return resp.StatusCode, ""
	}
	var doc struct {
		Error string `json:"error"`
	}
	_ = json.Unmarshal(raw, &doc)
	return resp.StatusCode, doc.Error
}

// registryBlock is the slice of registry.Stats qensload renders:
// planner index/prune counters and delta-vs-full refresh volume.
type registryBlock struct {
	IndexedPlans   int64 `json:"indexed_plans"`
	BrutePlans     int64 `json:"brute_plans"`
	NodesRanked    int64 `json:"nodes_ranked"`
	NodesPruned    int64 `json:"nodes_pruned"`
	DeltaRefreshes int64 `json:"delta_refreshes"`
	FullRefreshes  int64 `json:"full_refreshes"`
	DeltaBytes     int64 `json:"delta_refresh_bytes"`
	FullBytes      int64 `json:"full_refresh_bytes"`

	PushApplied        int64 `json:"push_applied"`
	PushDroppedStale   int64 `json:"push_dropped_stale"`
	PushDroppedUnknown int64 `json:"push_dropped_unknown"`
	PushBytes          int64 `json:"push_bytes"`
}

// add folds another registry block in (router mode sums per-region
// registries into one fleet view).
func (r *registryBlock) add(o registryBlock) {
	r.IndexedPlans += o.IndexedPlans
	r.BrutePlans += o.BrutePlans
	r.NodesRanked += o.NodesRanked
	r.NodesPruned += o.NodesPruned
	r.DeltaRefreshes += o.DeltaRefreshes
	r.FullRefreshes += o.FullRefreshes
	r.DeltaBytes += o.DeltaBytes
	r.FullBytes += o.FullBytes
	r.PushApplied += o.PushApplied
	r.PushDroppedStale += o.PushDroppedStale
	r.PushDroppedUnknown += o.PushDroppedUnknown
	r.PushBytes += o.PushBytes
}

// statsDoc is the part of /v1/stats qensload consumes.
type statsDoc struct {
	Scheduler struct {
		Admitted     int64 `json:"admitted"`
		Coalesced    int64 `json:"coalesced"`
		RejectedFull int64 `json:"rejected_queue_full"`
	} `json:"scheduler"`
	Reuse *struct {
		Hits       int   `json:"hits"`
		Misses     int   `json:"misses"`
		Evictions  int64 `json:"evictions"`
		Size       int   `json:"size"`
		ApproxOn   bool  `json:"approx_enabled"`
		ApproxHits int64 `json:"approx_hits"`
		Probes     int64 `json:"probes"`
	} `json:"reuse_cache"`
	Registry *registryBlock `json:"registry"`
	Router   *struct {
		Queries       int64 `json:"queries"`
		Spanning      int64 `json:"spanning_fanouts"`
		NoRoute       int64 `json:"no_route_rejects"`
		RegionsPruned int64 `json:"regions_pruned"`
		Regions       []struct {
			RegionID string         `json:"region_id"`
			Nodes    int            `json:"nodes"`
			Routed   int64          `json:"routed"`
			Registry *registryBlock `json:"registry"`
		} `json:"regions"`
	} `json:"router"`
	Latency struct {
		Window struct {
			WindowS float64 `json:"window_s"`
			Count   int64   `json:"count"`
			P50MS   float64 `json:"p50_ms"`
			P95MS   float64 `json:"p95_ms"`
			P99MS   float64 `json:"p99_ms"`
			MaxMS   float64 `json:"max_ms"`
		} `json:"window"`
	} `json:"latency"`
	Space *geometry.Rect `json:"space"`
}

// fetchSpace polls /v1/stats until the gateway is reachable and
// returns the advertised global data space.
func fetchSpace(baseURL string, wait time.Duration) (geometry.Rect, error) {
	deadline := time.Now().Add(wait)
	var lastErr error
	for {
		doc, err := getStats(baseURL)
		if err == nil {
			if doc.Space == nil {
				return geometry.Rect{}, fmt.Errorf("gateway %s advertises no data space", baseURL)
			}
			return *doc.Space, nil
		}
		lastErr = err
		if time.Now().After(deadline) {
			return geometry.Rect{}, fmt.Errorf("gateway %s not reachable after %v: %w", baseURL, wait, lastErr)
		}
		time.Sleep(200 * time.Millisecond)
	}
}

func getStats(baseURL string) (*statsDoc, error) {
	resp, err := http.Get(baseURL + "/v1/stats")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("/v1/stats status %d", resp.StatusCode)
	}
	var doc statsDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return nil, err
	}
	return &doc, nil
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "qensload: "+format+"\n", args...)
	os.Exit(1)
}
