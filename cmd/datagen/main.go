// Command datagen generates the synthetic Beijing-style multi-site
// air-quality corpus as one CSV file per edge node, for use with the
// qensd daemon and external tooling.
//
// Usage:
//
//	datagen -out data/ -nodes 10 -samples 2000 -seed 1 -heterogeneity 0.6 -flip 0.2
//	datagen -out data/ -paper        # reduced 2-column (TEMP, PM2.5) node files
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"qens/internal/dataset"
)

func main() {
	var (
		out           = flag.String("out", "data", "output directory for node CSV files")
		nodes         = flag.Int("nodes", 10, "number of edge nodes (paper: 10)")
		samples       = flag.Int("samples", 2000, "samples per node")
		seed          = flag.Uint64("seed", 1, "corpus seed")
		heterogeneity = flag.Float64("heterogeneity", 0.6, "site distribution shift in [0,1]")
		flip          = flag.Float64("flip", 0.2, "fraction of sites with sign-flipped regression")
		paper         = flag.Bool("paper", false, "emit the paper's reduced 2-column (TEMP, PM2.5) node datasets")
		describe      = flag.Bool("describe", false, "print per-column summary statistics for each node")
	)
	flag.Parse()

	cfg := dataset.Config{
		Nodes:          *nodes,
		SamplesPerNode: *samples,
		Seed:           *seed,
		Heterogeneity:  *heterogeneity,
		FlipFraction:   *flip,
	}
	var (
		sets []*dataset.Dataset
		err  error
	)
	if *paper {
		sets, err = dataset.PaperNodeDatasets(cfg)
	} else {
		sets, err = dataset.SyntheticAirQuality(cfg)
	}
	if err != nil {
		fatal("generate corpus: %v", err)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal("create output dir: %v", err)
	}
	for i, d := range sets {
		name := fmt.Sprintf("node-%02d.csv", i)
		if i < len(dataset.SiteNames) {
			name = fmt.Sprintf("node-%02d-%s.csv", i, dataset.SiteNames[i])
		}
		path := filepath.Join(*out, name)
		if err := d.SaveFile(path); err != nil {
			fatal("write %s: %v", path, err)
		}
		fmt.Printf("wrote %s (%d samples, %d columns)\n", path, d.Len(), d.Dims())
		if *describe {
			stats, err := d.DescribeString()
			if err != nil {
				fatal("describe %s: %v", path, err)
			}
			fmt.Print(stats)
		}
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "datagen: "+format+"\n", args...)
	os.Exit(1)
}
