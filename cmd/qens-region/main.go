// Command qens-region runs one regional leader as a TCP daemon: a
// federation.Leader over its spatial shard of the fleet, exposed
// through the region RPC family (region.info/plan/train/stats) for a
// root coordinator (qens-gateway -region-addrs) to drive.
//
// Every qens-region process derives the SAME fleet layout from the
// shared flags: it regenerates the full synthetic corpus, splits and
// seeds every node exactly like federation.NewSimulatedFleet (two
// root RNG draws per node, in roster order), computes the spatial
// partition over all node summaries, and then serves only its own
// shard. Processes started with identical -nodes/-samples/-seed/-k
// and consecutive -region indices therefore agree on membership
// without any coordination traffic — and the resulting sharded
// topology reproduces the single-leader simulated fleet bit-exactly.
//
//	qens-region -addr :7101 -region 0 -regions 2 -nodes 8 -samples 500
//	qens-region -addr :7102 -region 1 -regions 2 -nodes 8 -samples 500
//	qens-gateway -addr :8080 -region-addrs 127.0.0.1:7101,127.0.0.1:7102
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"qens/internal/cluster"
	"qens/internal/dataset"
	"qens/internal/federation"
	"qens/internal/ml"
	"qens/internal/region"
	"qens/internal/rng"
	"qens/internal/telemetry"
	"qens/internal/transport"
)

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:7101", "listen address")
		idx     = flag.Int("region", -1, "this region's index in the partition (0-based)")
		regions = flag.Int("regions", 2, "total regions in the topology")
		nodes   = flag.Int("nodes", 8, "total fleet size (across all regions)")
		samples = flag.Int("samples", 500, "samples per node")
		k       = flag.Int("k", 5, "per-node k-means clusters")
		epochs  = flag.Int("epochs", 5, "local epochs per supporting cluster")
		seed    = flag.Uint64("seed", 1, "fleet seed (must match every region and the root)")
		model   = flag.String("model", "lr", "model family: lr or nn")

		summaryDelta = flag.Bool("summary-delta", false, "refresh shard summaries via per-node epoch-conditional deltas instead of full re-fetch")

		wireProto    = flag.Int("wire-proto", transport.WireProtoV2, "maximum wire protocol to negotiate (1 = JSON, 2 = binary multiplexed)")
		drainTimeout = flag.Duration("drain-timeout", 15*time.Second, "graceful shutdown budget before in-flight RPCs are aborted")
		tracePath    = flag.String("trace", "", "write per-RPC spans as JSONL to this file (flushed on shutdown)")
	)
	flag.Parse()

	if *idx < 0 || *idx >= *regions {
		fatal("-region %d out of range (need 0 <= region < %d)", *idx, *regions)
	}

	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fatal("trace file: %v", err)
		}
		tracer := telemetry.NewTracer(f)
		tracer.SetRetention(4096)
		telemetry.SetDefaultTracer(tracer)
		defer func() {
			if err := tracer.Flush(); err != nil {
				fmt.Fprintf(os.Stderr, "qens-region: trace flush: %v\n", err)
			}
			f.Close()
			fmt.Printf("qens-region: trace written to %s\n", *tracePath)
		}()
	}

	lead, members, err := buildRegion(*idx, *regions, *nodes, *samples, *k, *epochs, *seed, *model, *summaryDelta)
	if err != nil {
		fatal("%v", err)
	}

	srv, err := transport.ServeRegion(lead, *addr, transport.WithMaxWireProto(*wireProto))
	if err != nil {
		fatal("%v", err)
	}
	fmt.Printf("qens-region: %s serving shard {%s} of %d nodes (K=%d, wire<=v%d) on %s\n",
		lead.ID(), strings.Join(members, ", "), *nodes, *k, srv.MaxWireProto(), srv.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	stop()

	fmt.Println("qens-region: draining (no new connections; waiting for in-flight RPCs)")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		fmt.Fprintf(os.Stderr, "qens-region: shutdown: %v\n", err)
	}
	fmt.Println("qens-region: stopped")
}

// buildRegion reconstructs the deterministic fleet layout and returns
// the regional leader for shard idx plus its member ids. The node
// construction loop mirrors federation.NewSimulatedFleet draw for
// draw — split RNG then node RNG, in roster order — so the shard's
// nodes are bit-identical to the ones a single simulated leader (or
// any sibling qens-region process) would build from the same flags.
func buildRegion(idx, regions, nodes, samples, k, epochs int, seed uint64, model string, summaryDelta bool) (*region.Leader, []string, error) {
	data, err := dataset.PaperNodeDatasets(dataset.Config{
		Nodes: nodes, SamplesPerNode: samples, Seed: seed,
	})
	if err != nil {
		return nil, nil, err
	}

	root := rng.New(seed)
	all := make([]*federation.Node, len(data))
	summaries := make([]cluster.NodeSummary, len(data))
	rosterIndex := make(map[string]int, len(data))
	for i, d := range data {
		train, _ := d.Split(0.2, root.Split()) // held-out fraction matches the simulated fleet
		node, err := federation.NewNode(fmt.Sprintf("node-%d", i), train, k, root.Split())
		if err != nil {
			return nil, nil, err
		}
		all[i] = node
		summaries[i] = node.Summary()
		rosterIndex[node.ID()] = i
	}

	shards, err := region.Partition(summaries, regions)
	if err != nil {
		return nil, nil, err
	}
	shard := shards[idx]
	clients := make([]federation.Client, 0, len(shard))
	members := make([]string, 0, len(shard))
	for _, n := range shard {
		clients = append(clients, federation.LocalClient{Node: all[n]})
		members = append(members, all[n].ID())
	}

	fed, err := federation.NewLeader(federation.Config{
		Spec: specFor(model, data[0].Dims()-1), ClusterK: k, LocalEpochs: epochs, Seed: seed,
		SummaryDelta: summaryDelta,
	}, nil, clients)
	if err != nil {
		return nil, nil, err
	}
	lead, err := region.NewLeader(fmt.Sprintf("region-%d", idx), fed, rosterIndex)
	if err != nil {
		return nil, nil, err
	}
	return lead, members, nil
}

func specFor(model string, inputDim int) ml.Spec {
	if model == "nn" {
		return ml.PaperNN(inputDim)
	}
	return ml.PaperLR(inputDim)
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "qens-region: "+format+"\n", args...)
	os.Exit(1)
}
