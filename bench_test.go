// Package qens holds the repository-level benchmark harness: one
// benchmark per paper table and figure (regenerating the reported
// quantity and exporting it via b.ReportMetric), the ablation benches
// for the design choices DESIGN.md calls out, and micro-benchmarks for
// the hot kernels (overlap rate, ranking, k-means, model training,
// aggregation, transport).
//
// Run everything with:
//
//	go test -bench=. -benchmem
package qens

import (
	"context"
	"fmt"
	"testing"
	"time"

	"qens/internal/cluster"
	"qens/internal/dataset"
	"qens/internal/experiments"
	"qens/internal/federation"
	"qens/internal/geometry"
	"qens/internal/ml"
	"qens/internal/query"
	"qens/internal/rng"
	"qens/internal/selection"
	"qens/internal/telemetry"
	"qens/internal/transport"
)

// benchOpts is the shared scale for the experiment benches: large
// enough for the paper's qualitative shapes, small enough to iterate.
func benchOpts() experiments.Options {
	return experiments.Options{
		Seed:           1,
		Nodes:          8,
		SamplesPerNode: 800,
		Queries:        15,
		ClusterK:       5,
		Epsilon:        0.6,
		TopL:           3,
		LocalEpochs:    5,
	}
}

// BenchmarkTableI regenerates Table I: expected loss of all-node vs
// random selection on homogeneous participants (paper: 24.45 vs 24.70,
// i.e. a ratio of ~1).
func BenchmarkTableI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.TableI(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.AllNodeLoss, "allnode-loss")
		b.ReportMetric(res.RandomLoss, "random-loss")
		b.ReportMetric(res.RandomLoss/res.AllNodeLoss, "random/allnode")
	}
}

// BenchmarkTableII regenerates Table II: the same comparison on
// heterogeneous participants (paper: 9.70 vs 178.10 — random collapses).
func BenchmarkTableII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.TableII(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.AllNodeLoss, "allnode-loss")
		b.ReportMetric(res.RandomLoss, "random-loss")
		b.ReportMetric(res.RandomLoss/res.AllNodeLoss, "random/allnode")
	}
}

// BenchmarkFigure6 regenerates the Fig. 6 needed-vs-available data
// contrast and reports the mean needed fraction over the three
// plotted nodes.
func BenchmarkFigure6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure6(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		needed, total := 0, 0
		for _, n := range res.Nodes {
			needed += n.NeededSamples
			total += n.TotalSamples
		}
		b.ReportMetric(100*float64(needed)/float64(total), "needed-%")
	}
}

// BenchmarkFigure7LR regenerates Fig. 7 for the LR model: average loss
// of GT, Random and the two query-driven aggregations. Expected shape:
// weighted <= averaging < gt < random.
func BenchmarkFigure7LR(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure7(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		for _, m := range experiments.Figure7Mechanisms {
			b.ReportMetric(res.Losses[m], m+"-loss")
		}
	}
}

// BenchmarkFigure7NN regenerates Fig. 7 for the NN model (Table III:
// 64 relu units) at a reduced scale — NN training dominates runtime.
func BenchmarkFigure7NN(b *testing.B) {
	opts := benchOpts()
	opts.Model = ml.KindNN
	opts.Nodes = 5
	opts.SamplesPerNode = 400
	opts.Queries = 6
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure7(opts)
		if err != nil {
			b.Fatal(err)
		}
		for _, m := range experiments.Figure7Mechanisms {
			b.ReportMetric(res.Losses[m], m+"-loss")
		}
	}
}

// BenchmarkFigure8 regenerates Fig. 8: per-query training time with
// the query-driven mechanism vs whole-node training, reporting the
// wall-clock speedup and the deterministic data reduction behind it.
func BenchmarkFigure8(b *testing.B) {
	opts := benchOpts()
	opts.SamplesPerNode = 2000 // timing needs real work to be meaningful
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure8(opts)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Speedup(), "time-speedup")
		b.ReportMetric(res.DataReduction(), "data-reduction")
	}
}

// BenchmarkFigure9 regenerates Fig. 9: the fraction of federation data
// each query needs, with vs without the query-driven mechanism.
func BenchmarkFigure9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure9(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		qd, whole := res.MeanFractions()
		b.ReportMetric(100*qd, "query-driven-%")
		b.ReportMetric(100*whole, "whole-data-%")
	}
}

// BenchmarkAblationK sweeps clusters-per-node, validating the §IV-A
// Remark that K=1 destroys data selectivity.
func BenchmarkAblationK(b *testing.B) {
	opts := benchOpts()
	opts.Queries = 8
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationK(opts, []int{1, 5, 10})
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range res.Points {
			b.ReportMetric(100*p.DataFraction, p.Setting+"-data-%")
		}
	}
}

// BenchmarkAblationEpsilon sweeps the ε support threshold.
func BenchmarkAblationEpsilon(b *testing.B) {
	opts := benchOpts()
	opts.Queries = 8
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationEpsilon(opts, []float64{0.3, 0.6, 0.8})
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range res.Points {
			b.ReportMetric(p.Loss, p.Setting+"-loss")
		}
	}
}

// BenchmarkAblationTopL sweeps the participant budget ℓ.
func BenchmarkAblationTopL(b *testing.B) {
	opts := benchOpts()
	opts.Queries = 8
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationTopL(opts, []int{1, 3, 5})
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range res.Points {
			b.ReportMetric(p.Loss, p.Setting+"-loss")
		}
	}
}

// BenchmarkAblationAggregation compares prediction-space aggregation
// (the paper's Eqs. 6-7) against parameter-space FedAvg.
func BenchmarkAblationAggregation(b *testing.B) {
	opts := benchOpts()
	opts.Queries = 8
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationAggregation(opts)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range res.Points {
			b.ReportMetric(p.Loss, p.Setting+"-loss")
		}
	}
}

// BenchmarkDrift regenerates the model-forgetting experiment behind
// the paper's motivation: final query-subspace loss of a model trained
// sequentially along the query-driven path vs visiting every node.
func BenchmarkDrift(b *testing.B) {
	opts := benchOpts()
	opts.Heterogeneity = 1
	opts.FlipFraction = 0.3
	for i := 0; i < b.N; i++ {
		res, err := experiments.Drift(opts)
		if err != nil {
			b.Fatal(err)
		}
		qd, naive := res.FinalLosses()
		b.ReportMetric(qd, "query-driven-loss")
		b.ReportMetric(naive, "naive-loss")
		b.ReportMetric(res.MaxNaiveRegression(), "forgetting-jump")
	}
}

// BenchmarkHeterogeneitySweep traces the mechanism's advantage over
// random selection across corpus heterogeneity levels.
func BenchmarkHeterogeneitySweep(b *testing.B) {
	opts := benchOpts()
	opts.Queries = 8
	for i := 0; i < b.N; i++ {
		res, err := experiments.HeterogeneitySweep(opts, []float64{0.02, 0.5, 1.0})
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range res.Points {
			b.ReportMetric(p.Advantage, fmt.Sprintf("h=%.2f-advantage", p.Heterogeneity))
		}
	}
}

// BenchmarkCommunicationCost regenerates the O(1)-communication
// accounting: per-query bytes for query-driven vs GT vs centralized.
func BenchmarkCommunicationCost(b *testing.B) {
	opts := benchOpts()
	opts.Queries = 10
	for i := 0; i < b.N; i++ {
		res, err := experiments.CommunicationCost(opts)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range res.Points {
			b.ReportMetric(float64(p.PerQueryBytes), p.Mechanism+"-B/query")
		}
	}
}

// BenchmarkMultiFeature validates the pipeline in a 4-dimensional
// joint space (the paper evaluates in 2-d; Eqs. 2-4 are d-generic).
func BenchmarkMultiFeature(b *testing.B) {
	opts := benchOpts()
	opts.Queries = 10
	for i := 0; i < b.N; i++ {
		res, err := experiments.MultiFeature(opts, nil)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Losses["weighted"], "weighted-loss")
		b.ReportMetric(res.Losses["random"], "random-loss")
		b.ReportMetric(100*res.DataFraction, "data-%")
	}
}

// BenchmarkReuse regenerates the query-reuse extension: hit rate and
// training-time savings of caching per-query models under a focused
// workload.
func BenchmarkReuse(b *testing.B) {
	opts := benchOpts()
	opts.Queries = 15
	for i := 0; i < b.N; i++ {
		res, err := experiments.Reuse(opts)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*res.HitRate, "hit-%")
		b.ReportMetric(float64(res.TimeWithoutCache)/float64(maxInt64(1, int64(res.TimeWithCache))), "time-saving-x")
	}
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// BenchmarkNoiseRobustness regenerates the broken-sensor sweep: loss
// of query-driven vs random selection with corrupted-label nodes.
func BenchmarkNoiseRobustness(b *testing.B) {
	opts := benchOpts()
	opts.Queries = 10
	for i := 0; i < b.N; i++ {
		res, err := experiments.NoiseRobustness(opts, []float64{0, 0.25})
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range res.Points {
			b.ReportMetric(p.QueryDrivenLoss, fmt.Sprintf("qd@%.0f%%-loss", 100*p.CorruptFraction))
			b.ReportMetric(p.RandomLoss, fmt.Sprintf("rnd@%.0f%%-loss", 100*p.CorruptFraction))
		}
	}
}

// BenchmarkQuantizerAblation regenerates the k-means vs grid synopsis
// comparison.
func BenchmarkQuantizerAblation(b *testing.B) {
	opts := benchOpts()
	opts.Queries = 10
	for i := 0; i < b.N; i++ {
		res, err := experiments.QuantizerAblation(opts)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range res.Points {
			b.ReportMetric(p.Loss, p.Quantizer+"-loss")
			b.ReportMetric(100*p.DataFraction, p.Quantizer+"-data-%")
		}
	}
}

// ---- micro-benchmarks for the hot kernels ----

// BenchmarkOverlapRate measures Eq. 2 on a 11-dimensional rectangle
// pair (the full air-quality schema).
func BenchmarkOverlapRate(b *testing.B) {
	src := rng.New(1)
	d := 11
	min1, max1 := make([]float64, d), make([]float64, d)
	min2, max2 := make([]float64, d), make([]float64, d)
	for i := 0; i < d; i++ {
		a, c := src.Uniform(0, 100), src.Uniform(0, 100)
		min1[i], max1[i] = minf(a, c), maxf(a, c)
		a, c = src.Uniform(0, 100), src.Uniform(0, 100)
		min2[i], max2[i] = minf(a, c), maxf(a, c)
	}
	q := geometry.MustRect(min1, max1)
	k := geometry.MustRect(min2, max2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		geometry.OverlapRate(q, k)
	}
}

// BenchmarkRankNodes measures the leader's full ranking pass for 100
// nodes x 5 clusters — the per-query selection cost the paper claims
// is negligible.
func BenchmarkRankNodes(b *testing.B) {
	src := rng.New(2)
	summaries := make([]cluster.NodeSummary, 100)
	for n := range summaries {
		s := cluster.NodeSummary{NodeID: fmt.Sprintf("node-%d", n), TotalSamples: 500}
		for c := 0; c < 5; c++ {
			lo := src.Uniform(0, 90)
			s.Clusters = append(s.Clusters, cluster.Summary{
				Bounds: geometry.MustRect([]float64{lo, lo}, []float64{lo + 10, lo + 10}),
				Size:   100,
			})
		}
		summaries[n] = s
	}
	q, err := query.New("q", geometry.MustRect([]float64{20, 20}, []float64{60, 60}))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := selection.RankNodes(q, summaries, 0.6); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRankNodesIndexed contrasts R-tree-indexed ranking against
// the exhaustive scan at 1000 nodes x 5 clusters — the scale where the
// leader-side index pays off.
func BenchmarkRankNodesIndexed(b *testing.B) {
	src := rng.New(11)
	summaries := make([]cluster.NodeSummary, 1000)
	for n := range summaries {
		s := cluster.NodeSummary{NodeID: fmt.Sprintf("node-%04d", n), TotalSamples: 250}
		for c := 0; c < 5; c++ {
			x, y := src.Uniform(0, 950), src.Uniform(0, 950)
			s.Clusters = append(s.Clusters, cluster.Summary{
				Bounds: geometry.MustRect([]float64{x, y}, []float64{x + 10, y + 10}),
				Size:   50,
			})
		}
		summaries[n] = s
	}
	ix, err := selection.BuildIndex(summaries)
	if err != nil {
		b.Fatal(err)
	}
	q, err := query.New("q", geometry.MustRect([]float64{100, 100}, []float64{180, 180}))
	if err != nil {
		b.Fatal(err)
	}
	b.Run("indexed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ix.RankNodes(q, 0.6); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("linear", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := selection.RankNodes(q, summaries, 0.6); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkKMeans measures the node-side quantization of 2000 samples
// into K=5 (the paper's per-node setting).
func BenchmarkKMeans(b *testing.B) {
	src := rng.New(3)
	points := make([][]float64, 2000)
	for i := range points {
		points[i] = []float64{src.Uniform(0, 100), src.Uniform(0, 300)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cluster.KMeans(points, cluster.Config{K: 5}, rng.New(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLinearTrainEpoch measures one PartialFit epoch of the
// Table III LR model over a 500-sample cluster.
func BenchmarkLinearTrainEpoch(b *testing.B) {
	x, y := benchBatch(500, 4)
	m := ml.PaperLR(1).MustNew()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.PartialFit(x, y, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNNTrainEpoch measures one PartialFit epoch of the Table III
// NN (64 relu units) over a 500-sample cluster.
func BenchmarkNNTrainEpoch(b *testing.B) {
	x, y := benchBatch(500, 5)
	m := ml.PaperNN(1).MustNew()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.PartialFit(x, y, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEnsemblePredict measures the leader-side aggregated
// prediction (Eq. 7) over a 3-model ensemble.
func BenchmarkEnsemblePredict(b *testing.B) {
	x, y := benchBatch(300, 6)
	var params []ml.Params
	for i := 0; i < 3; i++ {
		spec := ml.PaperLR(1)
		spec.Seed = uint64(i)
		m := spec.MustNew()
		if err := m.PartialFit(x, y, 5); err != nil {
			b.Fatal(err)
		}
		params = append(params, m.Params())
	}
	e, err := federation.NewEnsemble(ml.PaperLR(1), params, []float64{3, 2, 1}, federation.WeightedAveraging)
	if err != nil {
		b.Fatal(err)
	}
	in := []float64{12}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Predict(in)
	}
}

// BenchmarkWorkloadGeneration measures drawing the paper's 200-query
// dynamic workload.
func BenchmarkWorkloadGeneration(b *testing.B) {
	space := geometry.MustRect([]float64{0, 0}, []float64{100, 300})
	cfg := query.WorkloadConfig{Space: space, Count: 200, DriftPeriod: 20}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := query.Workload(cfg, rng.New(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTransportSummary measures one summary round-trip over a
// real loopback TCP connection — the per-node selection communication.
func BenchmarkTransportSummary(b *testing.B) {
	d := dataset.MustNew([]string{"x", "y"}, "y")
	src := rng.New(7)
	for i := 0; i < 500; i++ {
		v := src.Uniform(0, 100)
		d.MustAppend([]float64{v, 2 * v})
	}
	node, err := federation.NewNode("bench", d, 5, rng.New(8))
	if err != nil {
		b.Fatal(err)
	}
	srv, err := transport.Serve(node, "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	client, err := transport.Dial(srv.Addr(), transport.DialOptions{Timeout: 10 * time.Second})
	if err != nil {
		b.Fatal(err)
	}
	defer client.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.Summary(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHistogramObserve measures the telemetry hot path: one
// lock-free histogram observation. Instrumentation rides every RPC and
// training round, so this must stay well under 100ns/op.
func BenchmarkHistogramObserve(b *testing.B) {
	var h telemetry.Histogram
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i%1000) + 0.5)
	}
	if h.Count() != int64(b.N) {
		b.Fatalf("count = %d, want %d", h.Count(), b.N)
	}
}

// BenchmarkHistogramObserveParallel exercises the contended case — many
// goroutines feeding one latency histogram, the shape of a busy daemon.
func BenchmarkHistogramObserveParallel(b *testing.B) {
	var h telemetry.Histogram
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		v := 0.5
		for pb.Next() {
			h.Observe(v)
			v += 0.25
			if v > 1000 {
				v = 0.5
			}
		}
	})
}

// BenchmarkCounterAdd measures a pre-resolved labeled counter
// increment — a single atomic add once the series handle is held.
func BenchmarkCounterAdd(b *testing.B) {
	var reg telemetry.Registry
	c := reg.Counter("bench_ops_total", telemetry.Label{Key: "node", Value: "bench"})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
	if c.Value() != int64(b.N) {
		b.Fatalf("count = %d, want %d", c.Value(), b.N)
	}
}

// BenchmarkCounterLookupAdd includes the registry lookup, the cost paid
// by call sites that do not cache the series handle.
func BenchmarkCounterLookupAdd(b *testing.B) {
	var reg telemetry.Registry
	node := telemetry.Label{Key: "node", Value: "bench"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reg.Counter("bench_ops_total", node).Inc()
	}
}

// benchBatch builds a simple y = 2x + 1 batch.
func benchBatch(n int, seed uint64) ([][]float64, []float64) {
	src := rng.New(seed)
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := range x {
		v := src.Uniform(0, 50)
		x[i] = []float64{v}
		y[i] = 2*v + 1 + src.Normal(0, 0.5)
	}
	return x, y
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
