# qens build/verify harness. `make check` is the tier-1 gate referenced
# by ROADMAP.md: formatting, vet, build, and the race-enabled test run.
# `make ci` is what the GitHub Actions workflow runs: the full check
# plus a live gateway load-smoke against a tiny simulated fleet.

GO ?= go

.PHONY: all check ci loadsmoke fuzz fmt fmt-check vet build test race bench bench-train bench-wire bench-telemetry bench-shard bench-ingest bench-reuse bench-paper clean

all: check

check: fmt-check vet build race

ci: check loadsmoke

# End-to-end serving smoke: boots qens-gateway, drives it with
# qensload, then asserts a clean SIGTERM drain and trace flush.
loadsmoke:
	sh scripts/loadsmoke.sh

# Short fuzz campaigns over the wire-facing parsers.
fuzz:
	$(GO) test -fuzz FuzzReadWorkload -fuzztime 30s ./internal/query/
	$(GO) test -run '^$$' -fuzz FuzzWireV2 -fuzztime 30s ./internal/transport/
	$(GO) test -run '^$$' -fuzz FuzzWirePush -fuzztime 30s ./internal/transport/
	$(GO) test -run '^$$' -fuzz FuzzRTreePrune -fuzztime 30s ./internal/geometry/

fmt:
	gofmt -w .

# gofmt -l prints offending files; fail loudly when any exist.
fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Planner microbenchmarks (BenchmarkPlan, fleet size x dims) rendered
# as BENCH_plan.json; fails if the query-driven fast path allocates.
# Override the per-case budget with BENCHTIME=100ms for a quick smoke.
bench:
	sh scripts/bench_plan.sh

# Node training-engine microbenchmarks (BenchmarkNodeTrain, view vs
# copy data paths) rendered as BENCH_train.json; fails if the LR
# per-cluster data plane allocates or the engine path loses its >=2x
# edge over the copy path at 10k samples.
bench-train:
	sh scripts/bench_train.sh

# Wire-protocol microbenchmarks (BenchmarkWireEncode/Decode/RPC, v1
# JSON vs v2 binary) rendered as BENCH_wire.json; fails if the v2
# encode path allocates, loses its >=2x encode / >=3x encode+decode /
# >=2x wire-size edge, or pipelined RPCs drop below 1.5x serialized v1.
bench-wire:
	sh scripts/bench_wire.sh

# Rolling-window telemetry microbenchmarks (BenchmarkRollingObserve /
# BenchmarkRollingStats) rendered as BENCH_telemetry.json; fails if the
# rolling Observe hot path allocates or the memoized merged read
# exceeds 200ns/op.
bench-telemetry:
	sh scripts/bench_telemetry.sh

# Sharded-topology serving benchmark (BenchmarkShardServe, single
# leader vs 2-region root coordinator over the same fleet) rendered as
# BENCH_shard.json; fails if the 2-region topology serves less than
# 1.6x the single-leader throughput.
bench-shard:
	sh scripts/bench_shard.sh

# Streaming-ingestion benchmarks (BenchmarkRequantize10k incremental
# vs full Lloyd at 10k samples / 1% batches; push vs pull wire bytes
# per epoch bump) rendered as BENCH_ingest.json; fails if incremental
# requantization is not >=3x faster or push is not below pull.
bench-ingest:
	sh scripts/bench_ingest.sh

# Adaptive-serving replay benchmark (BenchmarkReuseReplay, exact-only
# reuse cache vs the approximate model-answer tier over the same
# contained-heavy workload) rendered as BENCH_reuse.json; fails if the
# approx tier cuts federated training executions by less than 30% or
# lets served-answer MSE past 2x the exact-only replay.
bench-reuse:
	sh scripts/bench_reuse.sh

# Paper-figure macro benchmarks (Tables I-II, Figures 6-9); these
# train real fleets and take minutes.
bench-paper:
	$(GO) test -bench=. -benchmem -run '^$$' .

clean:
	$(GO) clean -testcache
