# qens build/verify harness. `make check` is the tier-1 gate referenced
# by ROADMAP.md: formatting, vet, build, and the race-enabled test run.

GO ?= go

.PHONY: all check fmt fmt-check vet build test race bench clean

all: check

check: fmt-check vet build race

fmt:
	gofmt -w .

# gofmt -l prints offending files; fail loudly when any exist.
fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run '^$$' .

clean:
	$(GO) clean -testcache
