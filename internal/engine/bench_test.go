package engine

import (
	"context"
	"fmt"
	"testing"

	"qens/internal/cluster"
	"qens/internal/dataset"
	"qens/internal/ml"
	"qens/internal/rng"
	"qens/internal/telemetry"
)

// benchState holds a quantized shard plus the model spec for one grid
// point of BenchmarkNodeTrain.
type benchState struct {
	data  *dataset.Dataset
	quant *cluster.Quantization
	spec  ml.Spec
	all   []int // every cluster index, the "train on all supporting clusters" request
}

// buildBenchState synthesizes an n-sample, 3-feature shard and
// quantizes it into k clusters.
func buildBenchState(b *testing.B, model string, k, n int) *benchState {
	b.Helper()
	d := dataset.MustNew([]string{"x0", "x1", "x2", "y"}, "y")
	src := rng.New(42)
	for i := 0; i < n; i++ {
		x0 := src.Uniform(0, 100)
		x1 := src.Uniform(-50, 50)
		x2 := src.Uniform(0, 10)
		y := 3*x0 - 2*x1 + 5*x2 + src.Normal(0, 4)
		d.MustAppend([]float64{x0, x1, x2, y})
	}
	quant, err := cluster.Quantize(d, cluster.Config{K: k}, rng.New(7))
	if err != nil {
		b.Fatal(err)
	}
	var spec ml.Spec
	switch model {
	case "lr":
		spec = ml.PaperLR(3)
	case "nn":
		spec = ml.PaperNN(3)
	default:
		b.Fatalf("unknown model %q", model)
	}
	all := make([]int, k)
	for i := range all {
		all[i] = i
	}
	return &benchState{data: d, quant: quant, spec: spec, all: all}
}

// initialParams builds the "global model" payload a leader would ship.
func (s *benchState) initialParams(b *testing.B) ml.Params {
	b.Helper()
	sp := s.spec
	sp.Seed = 99
	m, err := sp.New()
	if err != nil {
		b.Fatal(err)
	}
	return m.Params()
}

// legacyTrain reproduces the pre-engine request path: build a fresh
// model, materialize every supporting cluster into a copied dataset,
// split it into [][]float64, and PartialFit — the copy baseline the
// view path is measured against.
func legacyTrain(spec ml.Spec, seed uint64, params ml.Params, quant *cluster.Quantization, clusters []int, epochs int) (ml.Params, error) {
	spec.Seed = seed
	model, err := spec.New()
	if err != nil {
		return ml.Params{}, err
	}
	if len(params.Values) > 0 {
		if err := model.SetParams(params); err != nil {
			return ml.Params{}, err
		}
	}
	for _, c := range clusters {
		cd, err := quant.ClusterData(c)
		if err != nil {
			return ml.Params{}, err
		}
		if cd.Len() == 0 {
			continue
		}
		x, y := cd.XY()
		if err := model.PartialFit(x, y, epochs); err != nil {
			return ml.Params{}, err
		}
	}
	return model.Params(), nil
}

// BenchmarkNodeTrain measures one full local training round (the
// node-side cost of a leader Train RPC) across model family x cluster
// count x shard size, on two paths:
//
//   - view: the engine path — pooled model (Reinit), zero-copy
//     cluster views staged into pooled flat buffers, PartialFitBatch.
//   - copy: the pre-engine path — fresh model, materialized cluster
//     datasets, [][]float64 PartialFit.
//
// Both paths perform bit-identical training arithmetic (see
// TestEngineTrainGoldenEquivalence), so the delta is pure data-plane
// overhead. scripts/bench_train.sh renders these as BENCH_train.json
// and fails if the view path is not >=2x the copy path's throughput
// on the LR grid at 10k samples.
func BenchmarkNodeTrain(b *testing.B) {
	ctx := context.Background()
	for _, model := range []string{"lr", "nn"} {
		for _, k := range []int{4, 16} {
			for _, n := range []int{1000, 10000} {
				state := buildBenchState(b, model, k, n)
				params := state.initialParams(b)

				b.Run(fmt.Sprintf("path=view/model=%s/clusters=%d/samples=%d", model, k, n), func(b *testing.B) {
					e := New(Config{NodeID: "bench", Parallelism: 1, Registry: &telemetry.Registry{}},
						state.data, state.quant)
					job := TrainJob{Spec: state.spec, Seed: 1, Params: params, Clusters: state.all, Epochs: 1}
					if _, err := e.Train(ctx, job); err != nil { // warm pool + buffers
						b.Fatal(err)
					}
					b.ReportAllocs()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						if _, err := e.Train(ctx, job); err != nil {
							b.Fatal(err)
						}
					}
				})

				b.Run(fmt.Sprintf("path=copy/model=%s/clusters=%d/samples=%d", model, k, n), func(b *testing.B) {
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						if _, err := legacyTrain(state.spec, 1, params, state.quant, state.all, 1); err != nil {
							b.Fatal(err)
						}
					}
				})
			}
		}
	}
}

// BenchmarkNodeTrainClusterAccess isolates the per-cluster data plane
// of the LR training loop at steady state: zero-copy view -> flat
// staging buffers -> PartialFitBatch on a warmed model. This is the
// allocation contract the engine refactor exists to provide;
// scripts/bench_train.sh fails the build if it reports a nonzero
// allocs/op.
func BenchmarkNodeTrainClusterAccess(b *testing.B) {
	ctx := context.Background()
	state := buildBenchState(b, "lr", 8, 10000)
	spec := state.spec
	spec.Seed = 1
	model, err := spec.New()
	if err != nil {
		b.Fatal(err)
	}
	var bufX, bufY []float64
	// Warm the scratch: one pass over every cluster grows the model's
	// internal buffers and the staging slices to their high-water mark.
	for _, c := range state.all {
		view, err := state.quant.ClusterView(c)
		if err != nil {
			b.Fatal(err)
		}
		bufX, bufY = view.XYInto(bufX[:0], bufY[:0])
		if err := model.PartialFitBatch(ctx, bufX, bufY, 1); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := state.all[i%len(state.all)]
		view, err := state.quant.ClusterView(c)
		if err != nil {
			b.Fatal(err)
		}
		bufX, bufY = view.XYInto(bufX[:0], bufY[:0])
		if err := model.PartialFitBatch(ctx, bufX, bufY, 1); err != nil {
			b.Fatal(err)
		}
	}
}
