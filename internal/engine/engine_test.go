package engine

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"qens/internal/cluster"
	"qens/internal/dataset"
	"qens/internal/ml"
	"qens/internal/rng"
	"qens/internal/telemetry"
)

// testState builds a small quantized shard for engine tests.
func testState(t testing.TB, n, k int) (*dataset.Dataset, *cluster.Quantization) {
	t.Helper()
	d := dataset.MustNew([]string{"x0", "x1", "y"}, "y")
	src := rng.New(13)
	for i := 0; i < n; i++ {
		x0 := src.Uniform(0, 10)
		x1 := src.Uniform(-5, 5)
		d.MustAppend([]float64{x0, x1, 2*x0 - x1 + src.Normal(0, 1)})
	}
	quant, err := cluster.Quantize(d, cluster.Config{K: k}, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	return d, quant
}

func testEngine(t testing.TB, parallelism int) *Engine {
	t.Helper()
	d, q := testState(t, 400, 4)
	return New(Config{NodeID: "test", Parallelism: parallelism, Registry: &telemetry.Registry{}}, d, q)
}

// TestEngineInflightBound verifies the admission semaphore: with
// Parallelism=2 and 8 concurrent Train jobs, the observed in-flight
// count never exceeds 2 and every job still completes.
func TestEngineInflightBound(t *testing.T) {
	e := testEngine(t, 2)
	job := TrainJob{Spec: ml.PaperLR(2), Seed: 1, Clusters: []int{0, 1, 2, 3}, Epochs: 2}

	var maxSeen atomic.Int64
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // sampler
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if n := e.Inflight(); n > maxSeen.Load() {
				maxSeen.Store(n)
			}
		}
	}()

	var jobs sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		jobs.Add(1)
		go func(seed uint64) {
			defer jobs.Done()
			j := job
			j.Seed = seed
			if _, err := e.Train(context.Background(), j); err != nil {
				errs <- err
			}
		}(uint64(i + 1))
	}
	jobs.Wait()
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := maxSeen.Load(); got > 2 {
		t.Fatalf("in-flight reached %d with Parallelism=2", got)
	}
	if e.Inflight() != 0 {
		t.Fatalf("in-flight %d after all jobs drained", e.Inflight())
	}
}

// TestEngineQueuedJobHonorsContext verifies a job canceled while
// queued for a slot surfaces the context error without executing.
func TestEngineQueuedJobHonorsContext(t *testing.T) {
	e := testEngine(t, 1)

	// Occupy the only slot.
	release, _, err := e.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, err = e.Train(ctx, TrainJob{Spec: ml.PaperLR(2), Seed: 1, Epochs: 1})
	if err == nil || ctx.Err() == nil {
		t.Fatalf("queued train returned %v before slot freed", err)
	}
}

// TestEnginePoolReuseBitExact verifies that a pooled, previously-used
// model produces bit-identical results to a cold engine: two identical
// Train calls on one engine (second hits the pool) must match the
// second call on a fresh engine (always a miss).
func TestEnginePoolReuseBitExact(t *testing.T) {
	d, q := testState(t, 300, 4)
	mk := func() *Engine {
		return New(Config{NodeID: "t", Parallelism: 1, Registry: &telemetry.Registry{}}, d, q)
	}
	job := TrainJob{Spec: ml.PaperNN(2), Seed: 21, Clusters: []int{0, 1, 2, 3}, Epochs: 1}

	warm := mk()
	if _, err := warm.Train(context.Background(), job); err != nil { // populate pool
		t.Fatal(err)
	}
	got, err := warm.Train(context.Background(), job) // pool hit: Reinit path
	if err != nil {
		t.Fatal(err)
	}
	want, err := mk().Train(context.Background(), job) // pool miss: Spec.New path
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Params.Values) != len(want.Params.Values) {
		t.Fatalf("param lengths %d vs %d", len(got.Params.Values), len(want.Params.Values))
	}
	for i := range want.Params.Values {
		if got.Params.Values[i] != want.Params.Values[i] {
			t.Fatalf("param %d: pooled %v != fresh %v", i, got.Params.Values[i], want.Params.Values[i])
		}
	}
}

// TestEngineMutateEpochAndPinning verifies Mutate bumps the epoch and
// that a job which pinned the old snapshot is unaffected by a
// concurrent mutation.
func TestEngineMutateEpochAndPinning(t *testing.T) {
	e := testEngine(t, 1)
	if e.Epoch() != 1 {
		t.Fatalf("initial epoch %d", e.Epoch())
	}
	old := e.Current()
	oldLen := old.Data.Len()

	err := e.Mutate(func(cur *Snapshot) (*dataset.Dataset, *cluster.Quantization, error) {
		d2, err := cur.Data.CopyAppend([][]float64{{1, 2, 3}})
		if err != nil {
			return nil, nil, err
		}
		q2, err := cluster.Quantize(d2, cluster.Config{K: 4}, rng.New(9))
		if err != nil {
			return nil, nil, err
		}
		return d2, q2, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if e.Epoch() != 2 {
		t.Fatalf("epoch after mutate %d, want 2", e.Epoch())
	}
	// The pinned snapshot is untouched.
	if old.Epoch != 1 || old.Data.Len() != oldLen {
		t.Fatalf("pinned snapshot changed: epoch=%d len=%d", old.Epoch, old.Data.Len())
	}
	if e.Current().Data.Len() != oldLen+1 {
		t.Fatalf("new snapshot len %d, want %d", e.Current().Data.Len(), oldLen+1)
	}

	// A train result reports the epoch it pinned.
	res, err := e.Train(context.Background(), TrainJob{Spec: ml.PaperLR(2), Seed: 1, Epochs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Epoch != 2 {
		t.Fatalf("train epoch %d, want 2", res.Epoch)
	}
}

// TestEngineTrainValidation covers the request validation edges.
func TestEngineTrainValidation(t *testing.T) {
	e := testEngine(t, 1)
	if _, err := e.Train(context.Background(), TrainJob{Spec: ml.PaperLR(2), Epochs: 0}); err == nil {
		t.Fatal("epochs=0 accepted")
	}
	if _, err := e.Train(context.Background(), TrainJob{Spec: ml.PaperLR(2), Epochs: 1, Clusters: []int{99}}); err == nil {
		t.Fatal("out-of-range cluster accepted")
	}
}
