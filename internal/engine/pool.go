package engine

import (
	"sync"

	"qens/internal/ml"
)

// modelPool recycles model instances per spec fingerprint. Building a
// model allocates its full weight/optimizer/scratch arena; at the
// paper's NN size (64 hidden units) that is tens of kilobytes per
// request, and under the query gateway a node sees one build per
// training round. Reusing an arena via ml.Model.Reinit is bit-exact
// with a fresh build — the same RNG draws happen in the same order —
// so pooling changes performance, never results.
type modelPool struct {
	mu   sync.Mutex
	free map[string][]ml.Model
	// capPerKey bounds retained instances per fingerprint; beyond it
	// returned models are dropped for GC (a node rarely needs more
	// live models than its parallelism).
	capPerKey int
}

func (p *modelPool) init(parallelism int) {
	p.free = make(map[string][]ml.Model)
	p.capPerKey = parallelism + 1
}

// get returns a model initialized exactly as spec.New would with the
// given seed, with params loaded when non-empty. reused reports
// whether an arena was recycled.
func (p *modelPool) get(spec ml.Spec, seed uint64, params ml.Params) (m ml.Model, reused bool, err error) {
	key := spec.Fingerprint()
	p.mu.Lock()
	if list := p.free[key]; len(list) > 0 {
		m = list[len(list)-1]
		p.free[key] = list[:len(list)-1]
		reused = true
	}
	p.mu.Unlock()
	if m != nil {
		if err := m.Reinit(seed, params); err != nil {
			return nil, true, err
		}
		return m, true, nil
	}
	spec.Seed = seed
	m, err = spec.New()
	if err != nil {
		return nil, false, err
	}
	if len(params.Values) > 0 {
		if err := m.SetParams(params); err != nil {
			return nil, false, err
		}
	}
	return m, false, nil
}

// put returns a model to the pool for later Reinit.
func (p *modelPool) put(spec ml.Spec, m ml.Model) {
	if m == nil {
		return
	}
	key := spec.Fingerprint()
	p.mu.Lock()
	if len(p.free[key]) < p.capPerKey {
		p.free[key] = append(p.free[key], m)
	}
	p.mu.Unlock()
}

// acquireModel is the engine-level wrapper recording pool hit/miss
// metrics; the returned put func recycles the instance.
func (e *Engine) acquireModel(spec ml.Spec, seed uint64, params ml.Params) (ml.Model, func(), error) {
	m, reused, err := e.pool.get(spec, seed, params)
	if err != nil {
		return nil, nil, err
	}
	if reused {
		e.metrics.poolHits.Inc()
	} else {
		e.metrics.poolMisses.Inc()
	}
	return m, func() { e.pool.put(spec, m) }, nil
}
