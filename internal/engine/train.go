package engine

import (
	"context"
	"fmt"
	"time"

	"qens/internal/geometry"
	"qens/internal/ml"
)

// TrainJob describes one local training round (the §IV-B participant
// step): load the global params into a model seeded with Seed, then
// run Epochs passes over each listed supporting cluster in turn (each
// cluster acting as a mini-batch per the §IV-A Remark), or over the
// whole local dataset when Clusters is nil.
type TrainJob struct {
	Spec     ml.Spec
	Seed     uint64
	Params   ml.Params
	Clusters []int
	Epochs   int
}

// Phases is the engine-side wall-clock decomposition of one job,
// captured as plain values on the hot path (no allocation) so remote
// callers can reassemble a cross-process trace. Fields not applicable
// to a job kind stay zero.
type Phases struct {
	// QueuedAt is when the job entered the admission queue.
	QueuedAt time.Time
	// Queue is the time spent waiting for an engine slot.
	Queue time.Duration
	// Stage is the cumulative data-staging time: cluster view
	// resolution plus XYInto copies (Train) or the subspace filter
	// scan (Evaluate).
	Stage time.Duration
	// Fit is the cumulative model-compute time: PartialFitBatch
	// (Train) or the batched predict loop (Evaluate).
	Fit time.Duration
	// Done is when the job finished.
	Done time.Time
}

// TrainResult carries the updated params and accounting for one round.
type TrainResult struct {
	Params       ml.Params
	SamplesUsed  int
	TotalSamples int
	// Epoch is the snapshot epoch the round trained against — the
	// drift signal echoed to the leader.
	Epoch uint64
	// Phases decomposes the round's wall time (queue/stage/fit).
	Phases Phases
}

// Train executes one training round: queue for a slot, pin the
// current snapshot, check a pooled model out, and stream each
// requested cluster through flat staging buffers into the model's
// zero-copy fit path. ctx is honored while queued, between clusters
// and at every mini-batch boundary inside the fit.
//
// The arithmetic is bit-exact with the pre-engine path (materialize
// cluster → [][]float64 → PartialFit): views deliver the same values
// in the same order, and PartialFitBatch performs the same FLOPs as
// PartialFit.
func (e *Engine) Train(ctx context.Context, job TrainJob) (TrainResult, error) {
	if job.Epochs < 1 {
		return TrainResult{}, fmt.Errorf("engine: local epochs %d < 1", job.Epochs)
	}
	queuedAt := time.Now()
	release, wait, err := e.acquire(ctx)
	if err != nil {
		return TrainResult{}, err
	}
	defer release()
	phases := Phases{QueuedAt: queuedAt, Queue: wait}

	snap := e.Current() // pinned: mutations after this line are invisible
	model, putModel, err := e.acquireModel(job.Spec, job.Seed, job.Params)
	if err != nil {
		return TrainResult{}, err
	}
	defer putModel()
	bufs := e.getBuffers()
	defer e.putBuffers(bufs)

	used := 0
	if len(job.Clusters) == 0 {
		view := snap.Data.View()
		stageStart := time.Now()
		x, y := view.XYInto(bufs.X[:0], bufs.Y[:0])
		bufs.X, bufs.Y = x, y
		fitStart := time.Now()
		phases.Stage += fitStart.Sub(stageStart)
		if err := model.PartialFitBatch(ctx, x, y, job.Epochs); err != nil {
			return TrainResult{}, err
		}
		phases.Fit += time.Since(fitStart)
		used = view.Len()
	} else {
		for _, c := range job.Clusters {
			if err := ctx.Err(); err != nil {
				return TrainResult{}, err
			}
			stageStart := time.Now()
			view, err := snap.Quant.ClusterView(c)
			if err != nil {
				return TrainResult{}, err
			}
			if view.Len() == 0 {
				phases.Stage += time.Since(stageStart)
				continue
			}
			x, y := view.XYInto(bufs.X[:0], bufs.Y[:0])
			bufs.X, bufs.Y = x, y
			start := time.Now()
			phases.Stage += start.Sub(stageStart)
			if err := model.PartialFitBatch(ctx, x, y, job.Epochs); err != nil {
				return TrainResult{}, fmt.Errorf("cluster %d: %w", c, err)
			}
			fit := time.Since(start)
			phases.Fit += fit
			e.metrics.clusterMS.ObserveDuration(fit)
			used += view.Len()
		}
		if used == 0 {
			return TrainResult{}, fmt.Errorf("no data in requested clusters %v", job.Clusters)
		}
	}
	phases.Done = time.Now()
	return TrainResult{
		Params:       model.Params(),
		SamplesUsed:  used,
		TotalSamples: snap.Data.Len(),
		Epoch:        snap.Epoch,
		Phases:       phases,
	}, nil
}

// EvalJob describes one scoring pass: run the model described by
// Spec/Seed/Params over the snapshot's local data (optionally
// restricted to Bounds) and report the MSE.
type EvalJob struct {
	Spec   ml.Spec
	Seed   uint64
	Params ml.Params
	Bounds *geometry.Rect
}

// EvalResult carries the local loss.
type EvalResult struct {
	MSE     float64
	Samples int
	// Epoch is the snapshot epoch the score was computed against.
	Epoch uint64
	// Phases decomposes the job's wall time (queue/stage/fit).
	Phases Phases
}

// Evaluate executes one scoring job under the same admission
// discipline as Train. The evaluation subspace is selected with a
// zero-copy rectangle filter (cancellable for huge nodes), and
// predictions stream through pooled flat buffers in mini-batches so
// arbitrarily large evaluations are ctx-responsive and allocation-free
// at steady state.
func (e *Engine) Evaluate(ctx context.Context, job EvalJob) (EvalResult, error) {
	queuedAt := time.Now()
	release, wait, err := e.acquire(ctx)
	if err != nil {
		return EvalResult{}, err
	}
	defer release()
	phases := Phases{QueuedAt: queuedAt, Queue: wait}

	snap := e.Current()
	// Build the model before filtering, mirroring the pre-engine
	// order: the seed is consumed even when the subspace is empty, so
	// seeded workload replays stay aligned.
	model, putModel, err := e.acquireModel(job.Spec, job.Seed, job.Params)
	if err != nil {
		return EvalResult{}, err
	}
	defer putModel()

	stageStart := time.Now()
	view := snap.Data.View()
	if job.Bounds != nil {
		view, err = snap.Data.FilterInRectContext(ctx, *job.Bounds)
		if err != nil {
			return EvalResult{}, err
		}
	}
	phases.Stage = time.Since(stageStart)
	n := view.Len()
	if n == 0 {
		phases.Done = time.Now()
		return EvalResult{Samples: 0, Epoch: snap.Epoch, Phases: phases}, nil
	}
	bufs := e.getBuffers()
	defer e.putBuffers(bufs)
	// Pre-size the staging buffers on the pooled struct so the grown
	// capacity survives into the next job (ForEachBatch reuses
	// capacity but cannot write the slice headers back).
	batch := e.cfg.EvalBatch
	if cap(bufs.X) < batch*view.FeatureDims() {
		bufs.X = make([]float64, batch*view.FeatureDims())
	}
	if cap(bufs.Y) < batch {
		bufs.Y = make([]float64, batch)
	}
	if cap(bufs.Pred) < batch {
		bufs.Pred = make([]float64, batch)
	}
	sse := 0.0
	fitStart := time.Now()
	err = view.ForEachBatch(ctx, e.cfg.EvalBatch, bufs.X, bufs.Y, func(x, y []float64) error {
		pred := bufs.Pred[:len(y)]
		model.PredictFlat(x, pred)
		for i, yi := range y {
			d := yi - pred[i]
			sse += d * d
		}
		return nil
	})
	if err != nil {
		return EvalResult{}, err
	}
	phases.Fit = time.Since(fitStart)
	phases.Done = time.Now()
	return EvalResult{MSE: sse / float64(n), Samples: n, Epoch: snap.Epoch, Phases: phases}, nil
}
