// Package engine is the node-side training engine: it owns a
// participant's data/quantization state and executes Train/Evaluate
// jobs against it under an explicit concurrency bound.
//
// The engine exists to make three guarantees that the pre-refactor
// Node could not:
//
//   - Bounded concurrency. Every job passes through a semaphore sized
//     by Config.Parallelism, so a burst of leader requests queues
//     instead of oversubscribing the node's cores. Queue wait and
//     in-flight counts are exported as metrics.
//
//   - Race-free mutation. Data state lives in an epoch-pinned
//     Snapshot behind an atomic pointer. Jobs pin the snapshot once at
//     admission and never observe a mutation mid-flight; AddSamples /
//     Requantize build a fresh snapshot copy-on-write and swap it in
//     under the mutate lock. A training round that raced an append
//     used to be a data race — now it deterministically sees either
//     the old epoch or the new one, never a torn mix.
//
//   - Allocation-free steady state. Models are pooled per spec
//     fingerprint and re-initialized in place (ml.Model.Reinit), and
//     cluster data reaches the trainer through zero-copy views
//     (dataset.View.XYInto into pooled flat buffers + PartialFitBatch)
//     instead of materialized [][]float64 copies.
package engine

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"qens/internal/cluster"
	"qens/internal/dataset"
	"qens/internal/telemetry"
)

// Snapshot is one immutable generation of a node's local state: the
// dataset, its quantization, and the advertisement epoch they belong
// to. Jobs pin a snapshot at admission; mutators never modify a
// published snapshot, they publish a successor.
type Snapshot struct {
	// Data is the node's local dataset at this epoch. Its rows are
	// never mutated in place after publication (mutators go through
	// Dataset.CopyAppend), so concurrent readers are safe.
	Data *dataset.Dataset
	// Quant is the cluster synopsis over Data.
	Quant *cluster.Quantization
	// Epoch is the advertisement version: 1 for the initial state,
	// bumped by every successful Mutate.
	Epoch uint64
}

// Config parameterizes an Engine.
type Config struct {
	// NodeID labels the engine's metrics.
	NodeID string
	// Parallelism bounds concurrently executing jobs (Train and
	// Evaluate both count). Zero means runtime.GOMAXPROCS(0).
	Parallelism int
	// Registry receives the engine's metrics; nil means
	// telemetry.Default().
	Registry *telemetry.Registry
	// EvalBatch is the mini-batch size used when streaming evaluation
	// data through pooled buffers. Zero means 512.
	EvalBatch int
}

// Engine executes training and evaluation jobs over epoch-pinned
// snapshots with bounded concurrency and pooled working memory.
type Engine struct {
	cfg  Config
	sem  chan struct{}
	snap atomic.Pointer[Snapshot]

	// mutateMu serializes state mutation (Mutate); job execution never
	// takes it.
	mutateMu sync.Mutex

	// watchMu guards watchers, the epoch-bump callbacks registered via
	// OnEpochBump (the transport server's push notifier, in-process
	// leader subscriptions).
	watchMu  sync.Mutex
	watchers []epochWatcher
	watchSeq uint64

	pool    modelPool
	buffers sync.Pool // *Buffers

	inflight atomic.Int64
	metrics  engineMetrics
}

// engineMetrics holds the engine's metric handles, resolved once so
// the per-job hot path is pure atomics.
type engineMetrics struct {
	inflight   *telemetry.Gauge
	queueMS    *telemetry.Histogram
	clusterMS  *telemetry.Histogram
	jobsTotal  *telemetry.Counter
	epochGauge *telemetry.Gauge
	poolHits   *telemetry.Counter
	poolMisses *telemetry.Counter
}

// New builds an engine around the initial state. The initial epoch is
// 1, matching the pre-engine Node convention.
func New(cfg Config, data *dataset.Dataset, quant *cluster.Quantization) *Engine {
	if cfg.Parallelism < 1 {
		cfg.Parallelism = runtime.GOMAXPROCS(0)
	}
	if cfg.EvalBatch < 1 {
		cfg.EvalBatch = 512
	}
	reg := cfg.Registry
	if reg == nil {
		reg = telemetry.Default()
	}
	node := telemetry.L("node", cfg.NodeID)
	reg.SetHelp("qens_node_train_inflight", "Jobs currently executing inside the node training engine.")
	reg.SetHelp("qens_node_train_queue_ms", "Time jobs spent queued for an engine slot (ms).")
	reg.SetHelp("qens_node_train_cluster_ms", "Per-supporting-cluster local training time (ms).")
	reg.SetHelp("qens_node_snapshot_epoch", "Current epoch of the node's data snapshot.")
	reg.SetHelp("qens_node_model_pool_total", "Model pool lookups by result (hit: arena reuse, miss: fresh build).")
	e := &Engine{
		cfg: cfg,
		sem: make(chan struct{}, cfg.Parallelism),
		metrics: engineMetrics{
			inflight:   reg.Gauge("qens_node_train_inflight", node...),
			queueMS:    reg.Histogram("qens_node_train_queue_ms", node...),
			clusterMS:  reg.Histogram("qens_node_train_cluster_ms", node...),
			jobsTotal:  reg.Counter("qens_node_engine_jobs_total", node...),
			epochGauge: reg.Gauge("qens_node_snapshot_epoch", node...),
			poolHits: reg.Counter("qens_node_model_pool_total",
				telemetry.Label{Key: "node", Value: cfg.NodeID}, telemetry.Label{Key: "result", Value: "hit"}),
			poolMisses: reg.Counter("qens_node_model_pool_total",
				telemetry.Label{Key: "node", Value: cfg.NodeID}, telemetry.Label{Key: "result", Value: "miss"}),
		},
	}
	e.pool.init(cfg.Parallelism)
	e.buffers.New = func() any { return &Buffers{} }
	e.snap.Store(&Snapshot{Data: data, Quant: quant, Epoch: 1})
	e.metrics.epochGauge.Set(1)
	return e
}

// Parallelism returns the engine's concurrency bound.
func (e *Engine) Parallelism() int { return e.cfg.Parallelism }

// Inflight returns the number of jobs currently executing (post-queue).
func (e *Engine) Inflight() int64 { return e.inflight.Load() }

// Current returns the live snapshot. The returned value is immutable;
// callers may hold it as long as they like (epoch pinning).
func (e *Engine) Current() *Snapshot { return e.snap.Load() }

// Epoch returns the live snapshot's epoch.
func (e *Engine) Epoch() uint64 { return e.Current().Epoch }

// Mutate publishes a new snapshot built by fn from the current one,
// bumping the epoch. Mutations are serialized with each other but
// never block — and are never blocked by — executing jobs: in-flight
// jobs keep the snapshot they pinned at admission. fn must not modify
// cur or any row reachable from it; it builds fresh state (typically
// via Dataset.CopyAppend and a fresh Quantize) and returns it.
func (e *Engine) Mutate(fn func(cur *Snapshot) (*dataset.Dataset, *cluster.Quantization, error)) error {
	return e.MutateEpoch(func(cur *Snapshot) (*dataset.Dataset, *cluster.Quantization, bool, error) {
		data, quant, err := fn(cur)
		return data, quant, true, err
	})
}

// MutateEpoch is Mutate with control over the advertisement epoch: fn
// additionally returns bump=false to publish the successor snapshot
// under the *current* epoch. Readers still pin the fresher data, but
// nothing downstream (summary deltas, registry invalidation, push
// notifications) treats the node as changed — the incremental ingest
// path uses this for immaterial centroid/bound movement so a trickle of
// samples does not stampede the leader with re-advertisements.
func (e *Engine) MutateEpoch(fn func(cur *Snapshot) (*dataset.Dataset, *cluster.Quantization, bool, error)) error {
	e.mutateMu.Lock()
	cur := e.Current()
	data, quant, bump, err := fn(cur)
	if err != nil {
		e.mutateMu.Unlock()
		return err
	}
	epoch := cur.Epoch
	if bump {
		epoch++
	}
	next := &Snapshot{Data: data, Quant: quant, Epoch: epoch}
	e.snap.Store(next)
	e.metrics.epochGauge.Set(float64(next.Epoch))
	var watchers []epochWatcher
	if bump {
		e.watchMu.Lock()
		watchers = append(watchers, e.watchers...)
		e.watchMu.Unlock()
	}
	e.mutateMu.Unlock()
	// Notify outside mutateMu so a slow watcher (an in-process registry
	// patch, a push write) never blocks the next mutation. Watchers that
	// read state must re-load Current; the epoch argument is a floor.
	for _, w := range watchers {
		w.fn(epoch)
	}
	return nil
}

// epochWatcher is one registered epoch-bump callback, identity-tagged
// so OnEpochBump's unsubscribe can remove exactly this registration.
type epochWatcher struct {
	id uint64
	fn func(uint64)
}

// OnEpochBump registers fn to run after every snapshot publication that
// bumped the epoch — the seam the transport server's push notifier and
// in-process leader subscriptions hang off. fn runs on the mutating
// goroutine after the snapshot is visible; it should hand off quickly.
// The returned func removes the registration (idempotent) — callers
// with a lifetime shorter than the engine (a transport server cycling
// through Serve/Shutdown) must call it or their closure keeps firing.
func (e *Engine) OnEpochBump(fn func(epoch uint64)) (unsubscribe func()) {
	e.watchMu.Lock()
	e.watchSeq++
	id := e.watchSeq
	e.watchers = append(e.watchers, epochWatcher{id: id, fn: fn})
	e.watchMu.Unlock()
	return func() {
		e.watchMu.Lock()
		for i := range e.watchers {
			if e.watchers[i].id == id {
				e.watchers = append(e.watchers[:i], e.watchers[i+1:]...)
				break
			}
		}
		e.watchMu.Unlock()
	}
}

// acquire claims an execution slot, waiting in the admission queue
// until one frees or ctx is done. It returns the release function and
// the time spent queued (the same value qens_node_train_queue_ms
// observes, surfaced so jobs can attribute it in their phase report).
func (e *Engine) acquire(ctx context.Context) (release func(), wait time.Duration, err error) {
	start := time.Now()
	select {
	case e.sem <- struct{}{}:
	default:
		// Slow path: queue for a slot or give up with the context.
		select {
		case e.sem <- struct{}{}:
		case <-ctx.Done():
			return nil, 0, fmt.Errorf("engine: queued for train slot: %w", ctx.Err())
		}
	}
	wait = time.Since(start)
	e.metrics.queueMS.ObserveDuration(wait)
	e.metrics.inflight.Set(float64(e.inflight.Add(1)))
	e.metrics.jobsTotal.Inc()
	var once sync.Once
	return func() {
		once.Do(func() {
			e.metrics.inflight.Set(float64(e.inflight.Add(-1)))
			<-e.sem
		})
	}, wait, nil
}

// Buffers is the pooled per-job working memory: flat feature/target
// staging for XYInto and a prediction buffer for evaluation. Slices
// only ever grow, so a warmed pool makes the data-staging path
// allocation-free.
type Buffers struct {
	X    []float64
	Y    []float64
	Pred []float64
}

// getBuffers checks a buffer set out of the pool.
func (e *Engine) getBuffers() *Buffers { return e.buffers.Get().(*Buffers) }

// putBuffers returns a buffer set, keeping the grown capacity.
func (e *Engine) putBuffers(b *Buffers) {
	e.buffers.Put(b)
}
