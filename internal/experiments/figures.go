package experiments

import (
	"fmt"
	"strings"
	"time"

	"qens/internal/federation"
	"qens/internal/selection"
)

// Figure7Result is the paper's headline comparison: average loss of
// the four mechanisms over the query workload.
type Figure7Result struct {
	Model string
	// Losses maps mechanism name -> mean per-query test MSE.
	Losses map[string]float64
	// Executed maps mechanism name -> evaluable query count.
	Executed map[string]int
}

// Figure7Mechanisms is the fixed output order.
var Figure7Mechanisms = []string{"gt", "random", "averaging", "weighted"}

// String renders the comparison.
func (r Figure7Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 7 — average loss per mechanism (%s)\n", strings.ToUpper(r.Model))
	for _, m := range Figure7Mechanisms {
		fmt.Fprintf(&b, "%-10s %.2f  (%d queries)\n", m, r.Losses[m], r.Executed[m])
	}
	return b.String()
}

// Figure7 reproduces Fig. 7: GT [7] and Random [6] baselines against
// the query-driven mechanism under Model Averaging (Eq. 6) and
// Weighted Averaging (Eq. 7). Expected shape: weighted <= averaging
// < gt < random on heterogeneous data.
func Figure7(opts Options) (*Figure7Result, error) {
	opts = opts.WithDefaults()
	env, err := NewEnvironment(opts)
	if err != nil {
		return nil, err
	}
	res := &Figure7Result{
		Model:    opts.Model,
		Losses:   map[string]float64{},
		Executed: map[string]int{},
	}
	arms := []struct {
		name string
		sel  selection.Selector
		agg  federation.Aggregation
	}{
		{"gt", selection.GameTheory{L: opts.TopL}, federation.ModelAveraging},
		{"random", selection.Random{L: opts.TopL}, federation.ModelAveraging},
		{"averaging", selection.QueryDriven{Epsilon: opts.Epsilon, TopL: opts.TopL}, federation.ModelAveraging},
		{"weighted", selection.QueryDriven{Epsilon: opts.Epsilon, TopL: opts.TopL}, federation.WeightedAveraging},
	}
	for _, arm := range arms {
		loss, n, err := env.meanLoss(arm.sel, arm.agg)
		if err != nil {
			return nil, fmt.Errorf("experiments: figure 7 arm %s: %w", arm.name, err)
		}
		res.Losses[arm.name] = loss
		res.Executed[arm.name] = n
	}
	return res, nil
}

// Figure8Point is one query's timing pair.
type Figure8Point struct {
	QueryID string
	// QueryDriven is the summed node training time when training
	// only on supporting clusters.
	QueryDriven time.Duration
	// WholeData is the same nodes trained on their full datasets
	// ("without taking into account the query").
	WholeData time.Duration
	// SamplesQueryDriven / SamplesWhole are the corresponding
	// training-set sizes — the deterministic quantity behind the
	// timing gap (timing itself is wall-clock and scale-dependent).
	SamplesQueryDriven int
	SamplesWhole       int
}

// Figure8Result is the paper's Fig. 8 series (20 sequential queries).
type Figure8Result struct {
	Points []Figure8Point
}

// String renders the two series.
func (r Figure8Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 8 — training time per query (query-driven vs whole data)\n")
	var sumQD, sumWD time.Duration
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%-8s query-driven=%-12s whole-data=%s\n", p.QueryID, p.QueryDriven, p.WholeData)
		sumQD += p.QueryDriven
		sumWD += p.WholeData
	}
	if len(r.Points) > 0 {
		fmt.Fprintf(&b, "mean     query-driven=%-12s whole-data=%s\n",
			sumQD/time.Duration(len(r.Points)), sumWD/time.Duration(len(r.Points)))
	}
	return b.String()
}

// Speedup returns mean(whole)/mean(query-driven) in wall-clock terms.
func (r Figure8Result) Speedup() float64 {
	var qd, wd time.Duration
	for _, p := range r.Points {
		qd += p.QueryDriven
		wd += p.WholeData
	}
	if qd == 0 {
		return 0
	}
	return float64(wd) / float64(qd)
}

// DataReduction returns sum(whole samples)/sum(query-driven samples),
// the deterministic driver of the Fig. 8 timing gap.
func (r Figure8Result) DataReduction() float64 {
	qd, wd := 0, 0
	for _, p := range r.Points {
		qd += p.SamplesQueryDriven
		wd += p.SamplesWhole
	}
	if qd == 0 {
		return 0
	}
	return float64(wd) / float64(qd)
}

// Figure8 reproduces Fig. 8: for a stream of sequential queries, the
// per-query model-building time with the query-driven mechanism
// (selected nodes train only their supporting clusters) against
// training the same selected nodes on their whole datasets.
func Figure8(opts Options) (*Figure8Result, error) {
	opts = opts.WithDefaults()
	if opts.Queries > 20 {
		opts.Queries = 20 // the paper plots 20 sequential queries
	}
	env, err := NewEnvironment(opts)
	if err != nil {
		return nil, err
	}
	sel := selection.QueryDriven{Epsilon: opts.Epsilon, TopL: opts.TopL}
	out := &Figure8Result{}
	for _, q := range env.Queries {
		res, err := env.Fleet.Execute(q, sel, federation.ModelAveraging)
		if err != nil {
			continue
		}
		point := Figure8Point{
			QueryID:            q.ID,
			QueryDriven:        res.Stats.TrainTime,
			SamplesQueryDriven: res.Stats.SamplesUsed,
		}
		// Re-train the same participants without data selectivity.
		var whole time.Duration
		wholeSamples := 0
		ok := true
		for _, p := range res.Participants {
			node := findNode(env.Fleet, p.NodeID)
			if node == nil {
				ok = false
				break
			}
			resp, err := node.Train(federation.TrainRequest{
				Spec:        env.Fleet.Leader.Config().Spec,
				LocalEpochs: opts.LocalEpochs,
			})
			if err != nil {
				ok = false
				break
			}
			whole += resp.TrainTime
			wholeSamples += resp.SamplesUsed
		}
		if !ok {
			continue
		}
		point.WholeData = whole
		point.SamplesWhole = wholeSamples
		out.Points = append(out.Points, point)
	}
	if len(out.Points) == 0 {
		return nil, fmt.Errorf("experiments: figure 8 produced no points")
	}
	return out, nil
}

// Figure9Point is one query's data-usage pair.
type Figure9Point struct {
	QueryID string
	// QueryDrivenFraction is samples trained on / total samples
	// across all nodes, with query-driven selectivity.
	QueryDrivenFraction float64
	// WholeDataFraction is the fraction used when the selected
	// participants train on their entire datasets.
	WholeDataFraction float64
}

// Figure9Result is the Fig. 9 series.
type Figure9Result struct {
	Points []Figure9Point
}

// String renders the two bar series.
func (r Figure9Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 9 — % of all-node data needed per query\n")
	var sq, sw float64
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%-8s query-driven=%5.1f%%  whole-data=%5.1f%%\n",
			p.QueryID, 100*p.QueryDrivenFraction, 100*p.WholeDataFraction)
		sq += p.QueryDrivenFraction
		sw += p.WholeDataFraction
	}
	if len(r.Points) > 0 {
		n := float64(len(r.Points))
		fmt.Fprintf(&b, "mean     query-driven=%5.1f%%  whole-data=%5.1f%%\n", 100*sq/n, 100*sw/n)
	}
	return b.String()
}

// MeanFractions returns the average of both series.
func (r Figure9Result) MeanFractions() (queryDriven, whole float64) {
	if len(r.Points) == 0 {
		return 0, 0
	}
	for _, p := range r.Points {
		queryDriven += p.QueryDrivenFraction
		whole += p.WholeDataFraction
	}
	n := float64(len(r.Points))
	return queryDriven / n, whole / n
}

// Figure9 reproduces Fig. 9: the percentage of the federation's data
// each query actually needs under the query-driven mechanism vs
// training the selected participants on everything.
func Figure9(opts Options) (*Figure9Result, error) {
	opts = opts.WithDefaults()
	if opts.Queries > 20 {
		opts.Queries = 20
	}
	env, err := NewEnvironment(opts)
	if err != nil {
		return nil, err
	}
	sel := selection.QueryDriven{Epsilon: opts.Epsilon, TopL: opts.TopL}
	out := &Figure9Result{}
	for _, q := range env.Queries {
		res, err := env.Fleet.Execute(q, sel, federation.ModelAveraging)
		if err != nil {
			continue
		}
		total := float64(res.Stats.SamplesAllNodes)
		if total == 0 {
			continue
		}
		out.Points = append(out.Points, Figure9Point{
			QueryID:             q.ID,
			QueryDrivenFraction: float64(res.Stats.SamplesUsed) / total,
			WholeDataFraction:   float64(res.Stats.SamplesSelectedNodes) / total,
		})
	}
	if len(out.Points) == 0 {
		return nil, fmt.Errorf("experiments: figure 9 produced no points")
	}
	return out, nil
}

// findNode resolves an in-process node by id.
func findNode(fleet *federation.Fleet, id string) *federation.Node {
	for _, n := range fleet.Nodes {
		if n.ID() == id {
			return n
		}
	}
	return nil
}
