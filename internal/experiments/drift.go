package experiments

import (
	"fmt"
	"strings"

	"qens/internal/federation"
	"qens/internal/ml"
	"qens/internal/selection"
)

// The model-drift / catastrophic-forgetting experiment behind the
// paper's motivation (§I): "distributed learning models are more
// likely to forget what they have learned from previous participants
// when they move to new participants with different data
// distributions", and the selection mechanism exists "to reduce the
// model drift and model forgetting chances that could happen due to
// training the model on irrelevant data."
//
// One model travels node-to-node sequentially (pure incremental
// training, no aggregation). Along the query-driven path it visits
// only the selected nodes' supporting clusters; along the naive path
// it visits every node's whole dataset. After each visit the loss on
// the query's held-out subspace is recorded: visiting an irrelevant
// (e.g. sign-flipped) node drags the naive trajectory up — that jump
// is the drift the mechanism avoids.

// DriftResult holds both trajectories for one query.
type DriftResult struct {
	QueryID string
	// QueryDrivenPath / NaivePath list visited node ids in order.
	QueryDrivenPath []string
	NaivePath       []string
	// QueryDrivenLoss / NaiveLoss record the query-subspace test
	// loss after each visit.
	QueryDrivenLoss []float64
	NaiveLoss       []float64
}

// String renders the two trajectories.
func (r DriftResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Model drift under sequential training (query %s)\n", r.QueryID)
	b.WriteString("query-driven path:\n")
	for i, id := range r.QueryDrivenPath {
		fmt.Fprintf(&b, "  after %-8s loss=%.2f\n", id, r.QueryDrivenLoss[i])
	}
	b.WriteString("naive all-node path:\n")
	for i, id := range r.NaivePath {
		fmt.Fprintf(&b, "  after %-8s loss=%.2f\n", id, r.NaiveLoss[i])
	}
	return b.String()
}

// FinalLosses returns the last loss of each trajectory.
func (r DriftResult) FinalLosses() (queryDriven, naive float64) {
	return r.QueryDrivenLoss[len(r.QueryDrivenLoss)-1], r.NaiveLoss[len(r.NaiveLoss)-1]
}

// MaxNaiveRegression returns the largest single-visit loss increase on
// the naive path — the forgetting jump caused by an irrelevant node.
func (r DriftResult) MaxNaiveRegression() float64 {
	worst := 0.0
	for i := 1; i < len(r.NaiveLoss); i++ {
		if d := r.NaiveLoss[i] - r.NaiveLoss[i-1]; d > worst {
			worst = d
		}
	}
	return worst
}

// Drift runs the experiment on the first workload query that is
// supported by at least two nodes and covered by test data.
func Drift(opts Options) (*DriftResult, error) {
	opts = opts.WithDefaults()
	env, err := NewEnvironment(opts)
	if err != nil {
		return nil, err
	}
	summaries, err := env.Fleet.Leader.Summaries()
	if err != nil {
		return nil, err
	}
	spec := env.Fleet.Leader.Config().Spec

	for _, q := range env.Queries {
		test := env.Fleet.Test.FilterInRect(q.Bounds)
		if test.Len() < 10 {
			continue
		}
		ranks, err := selection.RankNodes(q, summaries, opts.Epsilon)
		if err != nil {
			return nil, err
		}
		selection.SortByRank(ranks)
		var chosen []selection.NodeRank
		for _, r := range ranks {
			if r.Rank > 0 {
				chosen = append(chosen, r)
			}
		}
		if len(chosen) < 2 {
			continue
		}
		if len(chosen) > opts.TopL {
			chosen = chosen[:opts.TopL]
		}

		out := &DriftResult{QueryID: q.ID}
		tx, ty := test.XY()
		evalLoss := func(p ml.Params) (float64, error) {
			m, err := spec.New()
			if err != nil {
				return 0, err
			}
			if err := m.SetParams(p); err != nil {
				return 0, err
			}
			return ml.MSE(ty, m.PredictBatch(tx)), nil
		}

		// Query-driven path: ranked nodes, supporting clusters only.
		model, err := spec.New()
		if err != nil {
			return nil, err
		}
		current := model.Params()
		for _, r := range chosen {
			node := findNode(env.Fleet, r.NodeID)
			if node == nil {
				return nil, fmt.Errorf("experiments: node %s not found", r.NodeID)
			}
			resp, err := node.Train(federation.TrainRequest{
				Spec: spec, Params: current,
				Clusters: r.Supporting, LocalEpochs: opts.LocalEpochs,
			})
			if err != nil {
				return nil, err
			}
			current = resp.Params
			loss, err := evalLoss(current)
			if err != nil {
				return nil, err
			}
			out.QueryDrivenPath = append(out.QueryDrivenPath, r.NodeID)
			out.QueryDrivenLoss = append(out.QueryDrivenLoss, loss)
		}

		// Naive path: every node in roster order, whole datasets.
		model2, err := spec.New()
		if err != nil {
			return nil, err
		}
		current = model2.Params()
		for _, node := range env.Fleet.Nodes {
			resp, err := node.Train(federation.TrainRequest{
				Spec: spec, Params: current, LocalEpochs: opts.LocalEpochs,
			})
			if err != nil {
				return nil, err
			}
			current = resp.Params
			loss, err := evalLoss(current)
			if err != nil {
				return nil, err
			}
			out.NaivePath = append(out.NaivePath, node.ID())
			out.NaiveLoss = append(out.NaiveLoss, loss)
		}
		return out, nil
	}
	return nil, fmt.Errorf("experiments: no query suitable for the drift experiment")
}
