package experiments

import "testing"

// TestPaperScaleShapes runs the headline experiments at (reduced)
// paper scale and asserts every shape EXPERIMENTS.md records. It is
// the regression guard for the reproduction as a whole; skip with
// -short.
func TestPaperScaleShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale run skipped in -short mode")
	}
	opts := Options{
		Seed:           1,
		Nodes:          10,
		SamplesPerNode: 1500,
		Queries:        25,
		ClusterK:       5,
		Epsilon:        0.6,
		TopL:           3,
		LocalEpochs:    5,
	}

	t1, err := TableI(opts)
	if err != nil {
		t.Fatal(err)
	}
	if ratio := t1.RandomLoss / t1.AllNodeLoss; ratio > 2 || ratio < 0.5 {
		t.Errorf("Table I shape broken: ratio %v", ratio)
	}

	t2, err := TableII(opts)
	if err != nil {
		t.Fatal(err)
	}
	if t2.RandomLoss < t2.AllNodeLoss*1.3 {
		t.Errorf("Table II shape broken: %v vs %v", t2.RandomLoss, t2.AllNodeLoss)
	}

	f7, err := Figure7(opts)
	if err != nil {
		t.Fatal(err)
	}
	if f7.Losses["weighted"] >= f7.Losses["gt"] || f7.Losses["averaging"] >= f7.Losses["gt"] {
		t.Errorf("Fig 7 shape broken: query-driven arms not below GT: %v", f7.Losses)
	}
	if f7.Losses["gt"] >= f7.Losses["random"]*1.5 {
		t.Errorf("Fig 7 shape broken: GT %v not competitive with random %v", f7.Losses["gt"], f7.Losses["random"])
	}

	f8, err := Figure8(opts)
	if err != nil {
		t.Fatal(err)
	}
	if f8.DataReduction() <= 1.2 {
		t.Errorf("Fig 8 shape broken: data reduction %v", f8.DataReduction())
	}

	f9, err := Figure9(opts)
	if err != nil {
		t.Fatal(err)
	}
	qd, whole := f9.MeanFractions()
	if qd >= whole || qd > 0.35 {
		t.Errorf("Fig 9 shape broken: %v vs %v", qd, whole)
	}
}
