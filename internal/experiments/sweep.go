package experiments

import (
	"fmt"
	"strings"

	"qens/internal/federation"
	"qens/internal/selection"
)

// Heterogeneity sweep: where does node selection matter? The §II
// narrative says random selection suffices on homogeneous data
// (Table I) and fails on heterogeneous data (Table II); this
// experiment traces the transition by sweeping the corpus
// heterogeneity knob and recording the loss of random selection
// relative to the query-driven mechanism at each point.

// SweepPoint is one heterogeneity setting's outcome.
type SweepPoint struct {
	Heterogeneity float64
	// QueryDrivenLoss and RandomLoss are mean per-query test MSEs.
	QueryDrivenLoss float64
	RandomLoss      float64
	// Advantage is RandomLoss / QueryDrivenLoss — how much the
	// mechanism buys at this heterogeneity level.
	Advantage float64
	// Regime is the §II pre-test classification at this level.
	Regime string
}

// SweepResult is the full trace.
type SweepResult struct {
	Points []SweepPoint
}

// String renders the trace.
func (r SweepResult) String() string {
	var b strings.Builder
	b.WriteString("Heterogeneity sweep — when does selection matter?\n")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "h=%.2f  query-driven=%-10.2f random=%-10.2f advantage=%5.2fx  pretest=%s\n",
			p.Heterogeneity, p.QueryDrivenLoss, p.RandomLoss, p.Advantage, p.Regime)
	}
	return b.String()
}

// HeterogeneitySweep runs the trace over the given heterogeneity
// levels (defaults to 0.02, 0.25, 0.5, 0.75, 1.0).
func HeterogeneitySweep(opts Options, levels []float64) (*SweepResult, error) {
	opts = opts.WithDefaults()
	if len(levels) == 0 {
		levels = []float64{0.02, 0.25, 0.5, 0.75, 1.0}
	}
	out := &SweepResult{}
	for _, h := range levels {
		if h < 0 || h > 1 {
			return nil, fmt.Errorf("experiments: heterogeneity %v outside [0,1]", h)
		}
		o := opts
		o.Heterogeneity = h
		if h > 0.5 {
			o.FlipFraction = 0.2
		} else {
			o.FlipFraction = 0
		}
		env, err := NewEnvironment(o)
		if err != nil {
			return nil, err
		}
		qd, _, err := env.meanLoss(
			selection.QueryDriven{Epsilon: o.Epsilon, TopL: o.TopL},
			federation.WeightedAveraging)
		if err != nil {
			return nil, fmt.Errorf("experiments: sweep h=%v query-driven arm: %w", h, err)
		}
		rnd, _, err := env.meanLoss(selection.Random{L: o.TopL}, federation.ModelAveraging)
		if err != nil {
			return nil, fmt.Errorf("experiments: sweep h=%v random arm: %w", h, err)
		}
		pre, err := env.Fleet.Leader.PreTest(0)
		if err != nil {
			return nil, err
		}
		adv := 0.0
		if qd > 0 {
			adv = rnd / qd
		}
		out.Points = append(out.Points, SweepPoint{
			Heterogeneity:   h,
			QueryDrivenLoss: qd,
			RandomLoss:      rnd,
			Advantage:       adv,
			Regime:          pre.Regime.String(),
		})
	}
	return out, nil
}
