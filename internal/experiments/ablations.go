package experiments

import (
	"fmt"
	"strings"

	"qens/internal/federation"
	"qens/internal/selection"
)

// Ablations for the design choices DESIGN.md calls out: the number of
// clusters K per node (the §IV-A Remark argues K=1 degrades to
// whole-node training), the ε support threshold, the top-ℓ width, and
// ψ-threshold selection vs top-ℓ.

// AblationPoint is one setting's outcome.
type AblationPoint struct {
	// Setting is the swept parameter value, formatted.
	Setting string
	// Loss is the mean per-query test MSE.
	Loss float64
	// DataFraction is the mean fraction of federation data used.
	DataFraction float64
	// Executed counts evaluable queries.
	Executed int
}

// AblationResult is a sweep over one parameter.
type AblationResult struct {
	Parameter string
	Points    []AblationPoint
}

// String renders the sweep.
func (r AblationResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation over %s\n", r.Parameter)
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%-12s loss=%-10.2f data=%5.1f%%  (%d queries)\n",
			p.Setting, p.Loss, 100*p.DataFraction, p.Executed)
	}
	return b.String()
}

// sweepQueryDriven executes the whole workload under one query-driven
// configuration and reports mean loss + data fraction.
func sweepQueryDriven(env *Environment, sel selection.QueryDriven) (AblationPoint, error) {
	total, frac := 0.0, 0.0
	executed := 0
	for _, q := range env.Queries {
		res, err := env.Fleet.Execute(q, sel, federation.WeightedAveraging)
		if err != nil {
			continue
		}
		mse, _, ok := federation.EvaluateResult(res, env.Fleet.Test)
		if !ok {
			continue
		}
		total += mse
		frac += res.Stats.DataFraction()
		executed++
	}
	if executed == 0 {
		return AblationPoint{}, fmt.Errorf("experiments: no evaluable query in sweep")
	}
	return AblationPoint{
		Loss:         total / float64(executed),
		DataFraction: frac / float64(executed),
		Executed:     executed,
	}, nil
}

// AblationK sweeps the per-node cluster count. K=1 is the degenerate
// case the paper's Remark warns about: the single cluster's rectangle
// covers the whole node, so data selectivity vanishes.
func AblationK(opts Options, ks []int) (*AblationResult, error) {
	opts = opts.WithDefaults()
	if len(ks) == 0 {
		ks = []int{1, 2, 5, 10}
	}
	out := &AblationResult{Parameter: "K (clusters per node)"}
	for _, k := range ks {
		o := opts
		o.ClusterK = k
		env, err := NewEnvironment(o)
		if err != nil {
			return nil, err
		}
		p, err := sweepQueryDriven(env, selection.QueryDriven{Epsilon: o.Epsilon, TopL: o.TopL})
		if err != nil {
			return nil, fmt.Errorf("experiments: K=%d: %w", k, err)
		}
		p.Setting = fmt.Sprintf("K=%d", k)
		out.Points = append(out.Points, p)
	}
	return out, nil
}

// AblationEpsilon sweeps the ε support threshold over one shared
// environment.
func AblationEpsilon(opts Options, epsilons []float64) (*AblationResult, error) {
	opts = opts.WithDefaults()
	if len(epsilons) == 0 {
		epsilons = []float64{0.1, 0.2, 0.3, 0.5, 0.7}
	}
	env, err := NewEnvironment(opts)
	if err != nil {
		return nil, err
	}
	out := &AblationResult{Parameter: "epsilon (support threshold)"}
	for _, eps := range epsilons {
		p, err := sweepQueryDriven(env, selection.QueryDriven{Epsilon: eps, TopL: opts.TopL})
		if err != nil {
			return nil, fmt.Errorf("experiments: ε=%v: %w", eps, err)
		}
		p.Setting = fmt.Sprintf("ε=%.2f", eps)
		out.Points = append(out.Points, p)
	}
	return out, nil
}

// AblationTopL sweeps the ℓ participant budget over one shared
// environment.
func AblationTopL(opts Options, ls []int) (*AblationResult, error) {
	opts = opts.WithDefaults()
	if len(ls) == 0 {
		ls = []int{1, 2, 3, 5, 10}
	}
	env, err := NewEnvironment(opts)
	if err != nil {
		return nil, err
	}
	out := &AblationResult{Parameter: "ℓ (top-ℓ participants)"}
	for _, l := range ls {
		p, err := sweepQueryDriven(env, selection.QueryDriven{Epsilon: opts.Epsilon, TopL: l})
		if err != nil {
			return nil, fmt.Errorf("experiments: ℓ=%d: %w", l, err)
		}
		p.Setting = fmt.Sprintf("ℓ=%d", l)
		out.Points = append(out.Points, p)
	}
	return out, nil
}

// AblationPsi sweeps the ψ rank threshold (Eq. 5) as the alternative
// to top-ℓ selection.
func AblationPsi(opts Options, psis []float64) (*AblationResult, error) {
	opts = opts.WithDefaults()
	if len(psis) == 0 {
		psis = []float64{0.05, 0.1, 0.25, 0.5}
	}
	env, err := NewEnvironment(opts)
	if err != nil {
		return nil, err
	}
	out := &AblationResult{Parameter: "ψ (rank threshold, Eq. 5)"}
	for _, psi := range psis {
		p, err := sweepQueryDriven(env, selection.QueryDriven{Epsilon: opts.Epsilon, Psi: psi})
		if err != nil {
			return nil, fmt.Errorf("experiments: ψ=%v: %w", psi, err)
		}
		p.Setting = fmt.Sprintf("ψ=%.2f", psi)
		out.Points = append(out.Points, p)
	}
	return out, nil
}

// AblationAggregation compares the paper's prediction-space
// aggregations against parameter-space FedAvg on one environment.
func AblationAggregation(opts Options) (*AblationResult, error) {
	opts = opts.WithDefaults()
	env, err := NewEnvironment(opts)
	if err != nil {
		return nil, err
	}
	sel := selection.QueryDriven{Epsilon: opts.Epsilon, TopL: opts.TopL}
	out := &AblationResult{Parameter: "aggregation rule"}

	for _, agg := range []federation.Aggregation{federation.ModelAveraging, federation.WeightedAveraging} {
		loss, n, err := env.meanLoss(sel, agg)
		if err != nil {
			return nil, err
		}
		out.Points = append(out.Points, AblationPoint{Setting: agg.String(), Loss: loss, Executed: n})
	}

	// FedAvg arm: average parameters instead of predictions.
	spec := env.Fleet.Leader.Config().Spec
	total, executed := 0.0, 0
	for _, q := range env.Queries {
		res, err := env.Fleet.Execute(q, sel, federation.ModelAveraging)
		if err != nil {
			continue
		}
		weights := make([]float64, len(res.Participants))
		for i, p := range res.Participants {
			weights[i] = p.Rank
		}
		avg, err := federation.FedAvgParams(res.LocalParams, weights)
		if err != nil {
			continue
		}
		model, err := spec.New()
		if err != nil {
			return nil, err
		}
		if err := model.SetParams(avg); err != nil {
			continue
		}
		sub := env.Fleet.Test.FilterInRect(q.Bounds)
		if sub.Len() == 0 {
			continue
		}
		x, y := sub.XY()
		pred := model.PredictBatch(x)
		mse := 0.0
		for i := range y {
			d := y[i] - pred[i]
			mse += d * d
		}
		total += mse / float64(len(y))
		executed++
	}
	if executed > 0 {
		out.Points = append(out.Points, AblationPoint{
			Setting: "fedavg", Loss: total / float64(executed), Executed: executed,
		})
	}
	return out, nil
}
