package experiments

import (
	"strings"
	"testing"
)

func TestMultiFeature(t *testing.T) {
	opts := quickOpts()
	opts.Queries = 15
	res, err := MultiFeature(opts, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Dims != 4 {
		t.Fatalf("dims %d, want 4", res.Dims)
	}
	if res.Executed == 0 {
		t.Fatal("no queries executed")
	}
	if res.Losses["weighted"] <= 0 || res.Losses["random"] <= 0 {
		t.Fatalf("losses %+v", res.Losses)
	}
	// The mechanism's advantage must survive in higher dimensions.
	if res.Losses["weighted"] >= res.Losses["random"] {
		t.Fatalf("weighted %v not below random %v in 4-d",
			res.Losses["weighted"], res.Losses["random"])
	}
	// Data selectivity must remain real.
	if res.DataFraction <= 0 || res.DataFraction >= 0.9 {
		t.Fatalf("data fraction %v", res.DataFraction)
	}
	if !strings.Contains(res.String(), "Multi-feature") {
		t.Fatal("rendering broken")
	}
}

func TestMultiFeatureCustomColumns(t *testing.T) {
	opts := quickOpts()
	opts.Queries = 10
	res, err := MultiFeature(opts, []string{"TEMP", "PRES", "PM2.5"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Dims != 3 {
		t.Fatalf("dims %d", res.Dims)
	}
}

func TestMultiFeatureRequiresTarget(t *testing.T) {
	if _, err := MultiFeature(quickOpts(), []string{"TEMP", "PRES"}); err == nil {
		t.Fatal("accepted columns without the target")
	}
}

func TestFigure7NN(t *testing.T) {
	opts := quickOpts()
	opts.Model = "nn"
	opts.Nodes = 4
	opts.SamplesPerNode = 250
	opts.Queries = 5
	opts.LocalEpochs = 3
	res, err := Figure7(opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range Figure7Mechanisms {
		if res.Executed[m] == 0 {
			t.Fatalf("NN arm %s executed no queries", m)
		}
	}
	// The headline ordering must hold for the NN too.
	if res.Losses["weighted"] >= res.Losses["random"] {
		t.Fatalf("NN weighted %v not below random %v", res.Losses["weighted"], res.Losses["random"])
	}
}
