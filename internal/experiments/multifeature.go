package experiments

import (
	"fmt"
	"strings"

	"qens/internal/dataset"
	"qens/internal/federation"
	"qens/internal/ml"
	"qens/internal/query"
	"qens/internal/rng"
	"qens/internal/selection"
)

// Multi-feature extension: the paper's experiments project each node
// onto "one important feature and labels" (§V-A) to keep model
// behaviour easy to track, but the mechanism itself is defined for
// arbitrary d (Eqs. 2-4 average over all dimensions). This experiment
// runs the full pipeline over a wider feature set of the synthetic
// air-quality schema, validating that ranking, selectivity and the
// loss ordering survive in higher-dimensional joint spaces.

// DefaultMultiFeatureColumns is the default projection: three weather
// drivers plus the PM2.5 target — a 4-dimensional joint space.
var DefaultMultiFeatureColumns = []string{"TEMP", "DEWP", "WSPM", "PM2.5"}

// MultiFeatureResult compares mechanisms on the wider space.
type MultiFeatureResult struct {
	Columns []string
	Dims    int
	// Losses maps mechanism -> mean per-query test MSE.
	Losses map[string]float64
	// DataFraction is the query-driven mean fraction of federation
	// data used.
	DataFraction float64
	// Executed counts evaluable queries (query-driven arm).
	Executed int
}

// String renders the comparison.
func (r MultiFeatureResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Multi-feature pipeline over %v (d=%d joint space, %d queries)\n",
		r.Columns, r.Dims, r.Executed)
	for _, m := range []string{"random", "weighted"} {
		fmt.Fprintf(&b, "%-10s loss=%.2f\n", m, r.Losses[m])
	}
	fmt.Fprintf(&b, "query-driven data use: %.1f%%\n", 100*r.DataFraction)
	return b.String()
}

// MultiFeature runs the comparison over the given columns (the last
// entry must include the PM2.5 target; nil uses the default set).
func MultiFeature(opts Options, columns []string) (*MultiFeatureResult, error) {
	opts = opts.WithDefaults()
	if len(columns) == 0 {
		columns = DefaultMultiFeatureColumns
	}
	hasTarget := false
	for _, c := range columns {
		if c == dataset.AirQualityTarget {
			hasTarget = true
		}
	}
	if !hasTarget {
		return nil, fmt.Errorf("experiments: multi-feature columns %v lack the %s target", columns, dataset.AirQualityTarget)
	}

	full, err := dataset.SyntheticAirQuality(opts.datasetConfig())
	if err != nil {
		return nil, err
	}
	data := make([]*dataset.Dataset, len(full))
	for i, d := range full {
		p, err := d.Project(columns, dataset.AirQualityTarget)
		if err != nil {
			return nil, err
		}
		data[i] = p
	}
	inputDim := len(columns) - 1
	spec := ml.PaperLR(inputDim)
	if opts.Model == ml.KindNN {
		spec = ml.PaperNN(inputDim)
	}
	fleet, err := federation.NewSimulatedFleet(data, federation.Config{
		Spec:        spec,
		ClusterK:    opts.ClusterK,
		LocalEpochs: opts.LocalEpochs,
		Seed:        opts.Seed + 1,
	}, federation.FleetOptions{})
	if err != nil {
		return nil, err
	}
	space, err := fleet.Space()
	if err != nil {
		return nil, err
	}
	queries, err := query.Workload(query.WorkloadConfig{
		Space: space,
		Count: opts.Queries,
		// Wider per-dimension queries: in high d a narrow rectangle
		// in every dimension covers almost no data.
		MinWidthFraction: 0.3,
		MaxWidthFraction: 0.7,
	}, rng.New(opts.Seed+2))
	if err != nil {
		return nil, err
	}

	res := &MultiFeatureResult{
		Columns: columns,
		Dims:    len(columns),
		Losses:  map[string]float64{},
	}
	// ε for d dims: a cluster matching all but one dimension scores
	// (d-1)/d under Eq. 2; demanding slightly more than that keeps
	// the threshold binding in any dimensionality.
	eps := (float64(len(columns)) - 0.5) / float64(len(columns))

	sel := selection.QueryDriven{Epsilon: eps, TopL: opts.TopL}
	sumLoss, sumFrac, executed := 0.0, 0.0, 0
	for _, q := range queries {
		r, err := fleet.Execute(q, sel, federation.WeightedAveraging)
		if err != nil {
			continue
		}
		mse, _, ok := federation.EvaluateResult(r, fleet.Test)
		if !ok {
			continue
		}
		sumLoss += mse
		sumFrac += r.Stats.DataFraction()
		executed++
	}
	if executed == 0 {
		return nil, fmt.Errorf("experiments: no evaluable multi-feature query (ε=%.2f)", eps)
	}
	res.Losses["weighted"] = sumLoss / float64(executed)
	res.DataFraction = sumFrac / float64(executed)
	res.Executed = executed

	rndLoss, rndN := 0.0, 0
	ctxSel := selection.Random{L: opts.TopL}
	for _, q := range queries {
		r, err := fleet.Execute(q, ctxSel, federation.ModelAveraging)
		if err != nil {
			continue
		}
		mse, _, ok := federation.EvaluateResult(r, fleet.Test)
		if !ok {
			continue
		}
		rndLoss += mse
		rndN++
	}
	if rndN == 0 {
		return nil, fmt.Errorf("experiments: random arm executed no multi-feature query")
	}
	res.Losses["random"] = rndLoss / float64(rndN)
	return res, nil
}
