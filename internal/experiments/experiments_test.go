package experiments

import (
	"strings"
	"testing"
)

// quickOpts keeps the federated runs fast while preserving the
// qualitative shape of the paper's results.
func quickOpts() Options {
	return Options{
		Seed:           7,
		Nodes:          6,
		SamplesPerNode: 400,
		Queries:        12,
		ClusterK:       5,
		Epsilon:        0.6,
		TopL:           2,
		LocalEpochs:    4,
	}
}

func TestNewEnvironment(t *testing.T) {
	env, err := NewEnvironment(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(env.Queries) != 12 {
		t.Fatalf("%d queries", len(env.Queries))
	}
	if len(env.Fleet.Nodes) != 6 {
		t.Fatalf("%d nodes", len(env.Fleet.Nodes))
	}
	if env.Fleet.Test.Len() == 0 {
		t.Fatal("no test data")
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.WithDefaults()
	if o.Nodes != 10 || o.SamplesPerNode != 2000 || o.Queries != 200 || o.ClusterK != 5 {
		t.Fatalf("paper defaults wrong: %+v", o)
	}
	if o.Model != "linear" {
		t.Fatalf("default model %s", o.Model)
	}
}

func TestBadModel(t *testing.T) {
	o := quickOpts()
	o.Model = "forest"
	if _, err := NewEnvironment(o); err == nil {
		t.Fatal("accepted unknown model")
	}
}

func TestTableI(t *testing.T) {
	res, err := TableI(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.Regime != "homogeneous" {
		t.Fatalf("regime %s", res.Regime)
	}
	// Homogeneous regime: random selection must be competitive with
	// all-node selection (paper: 24.45 vs 24.70).
	ratio := res.RandomLoss / res.AllNodeLoss
	if ratio > 2.5 || ratio < 0.4 {
		t.Fatalf("homogeneous losses diverge: all=%v random=%v", res.AllNodeLoss, res.RandomLoss)
	}
	if !strings.Contains(res.String(), "All-node") {
		t.Fatal("table rendering broken")
	}
}

func TestTableII(t *testing.T) {
	res, err := TableII(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.Regime != "heterogeneous" {
		t.Fatalf("regime %s", res.Regime)
	}
	// Heterogeneous regime: random selection must be clearly worse
	// (paper: 178.10 vs 9.70 — an ~18x blowup; we require >1.5x).
	if res.RandomLoss < res.AllNodeLoss*1.5 {
		t.Fatalf("heterogeneous regime not visible: all=%v random=%v", res.AllNodeLoss, res.RandomLoss)
	}
}

func TestFigure6(t *testing.T) {
	res, err := Figure6(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Nodes) != 3 {
		t.Fatalf("%d nodes, want 3", len(res.Nodes))
	}
	for _, n := range res.Nodes {
		if len(n.Clusters) != 5 {
			t.Fatalf("node %s has %d clusters", n.NodeID, len(n.Clusters))
		}
		if n.NeededSamples > n.TotalSamples {
			t.Fatalf("node %s needs more than it has", n.NodeID)
		}
		// Supporting flags must be consistent with overlaps.
		for _, c := range n.Clusters {
			if c.Supporting && c.Overlap < 0.6 {
				t.Fatalf("supporting cluster with overlap %v < ε", c.Overlap)
			}
			if !c.Supporting && c.Overlap >= 0.6 {
				t.Fatalf("non-supporting cluster with overlap %v >= ε", c.Overlap)
			}
		}
	}
	if !strings.Contains(res.String(), "Figure 6") {
		t.Fatal("rendering broken")
	}
}

func TestFigure7Shape(t *testing.T) {
	res, err := Figure7(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range Figure7Mechanisms {
		if _, ok := res.Losses[m]; !ok {
			t.Fatalf("missing mechanism %s", m)
		}
		if res.Executed[m] == 0 {
			t.Fatalf("mechanism %s executed no queries", m)
		}
	}
	// The paper's headline shape: the query-driven arms beat random.
	if res.Losses["weighted"] >= res.Losses["random"] {
		t.Fatalf("weighted %v not better than random %v", res.Losses["weighted"], res.Losses["random"])
	}
	if res.Losses["averaging"] >= res.Losses["random"] {
		t.Fatalf("averaging %v not better than random %v", res.Losses["averaging"], res.Losses["random"])
	}
	if !strings.Contains(res.String(), "Figure 7") {
		t.Fatal("rendering broken")
	}
}

func TestFigure8Shape(t *testing.T) {
	res, err := Figure8(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) == 0 {
		t.Fatal("no points")
	}
	// Query-driven training touches strictly less data; that is the
	// deterministic quantity behind the paper's timing gap. Wall-clock
	// speedup at this toy scale is overhead-dominated, so the timing
	// itself is only checked for sanity here; the bench regenerates
	// the figure at paper scale.
	if r := res.DataReduction(); r <= 1 {
		t.Fatalf("data reduction %v, want > 1", r)
	}
	for _, p := range res.Points {
		if p.QueryDriven <= 0 || p.WholeData <= 0 {
			t.Fatalf("query %s has non-positive timings", p.QueryID)
		}
		if p.SamplesQueryDriven > p.SamplesWhole {
			t.Fatalf("query %s trained on more data than the whole-data arm", p.QueryID)
		}
	}
	if !strings.Contains(res.String(), "Figure 8") {
		t.Fatal("rendering broken")
	}
}

func TestFigure9Shape(t *testing.T) {
	res, err := Figure9(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	qd, whole := res.MeanFractions()
	if qd <= 0 || whole <= 0 {
		t.Fatalf("fractions %v/%v", qd, whole)
	}
	if qd >= whole {
		t.Fatalf("query-driven fraction %v not below whole-data %v", qd, whole)
	}
	if whole > 1.0001 {
		t.Fatalf("whole-data fraction %v above 1", whole)
	}
	for _, p := range res.Points {
		if p.QueryDrivenFraction > p.WholeDataFraction+1e-9 {
			t.Fatalf("query %s uses more data than whole-data arm", p.QueryID)
		}
	}
	if !strings.Contains(res.String(), "Figure 9") {
		t.Fatal("rendering broken")
	}
}

func TestAblationK(t *testing.T) {
	opts := quickOpts()
	opts.Queries = 8
	res, err := AblationK(opts, []int{1, 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("%d points", len(res.Points))
	}
	// The §IV-A Remark: K=1 gives one whole-node cluster, so data
	// selectivity vanishes — K=5 must use less data.
	if res.Points[1].DataFraction >= res.Points[0].DataFraction {
		t.Fatalf("K=5 data %v not below K=1 %v",
			res.Points[1].DataFraction, res.Points[0].DataFraction)
	}
}

func TestAblationEpsilon(t *testing.T) {
	opts := quickOpts()
	opts.Queries = 8
	res, err := AblationEpsilon(opts, []float64{0.1, 0.6})
	if err != nil {
		t.Fatal(err)
	}
	// A stricter ε admits fewer clusters, so data usage must not rise.
	if res.Points[1].DataFraction > res.Points[0].DataFraction+1e-9 {
		t.Fatalf("ε=0.6 uses more data (%v) than ε=0.1 (%v)",
			res.Points[1].DataFraction, res.Points[0].DataFraction)
	}
}

func TestAblationTopL(t *testing.T) {
	opts := quickOpts()
	opts.Queries = 8
	res, err := AblationTopL(opts, []int{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("%d points", len(res.Points))
	}
	// More participants -> more data used.
	if res.Points[1].DataFraction < res.Points[0].DataFraction {
		t.Fatalf("ℓ=3 uses less data than ℓ=1")
	}
}

func TestAblationPsi(t *testing.T) {
	opts := quickOpts()
	opts.Queries = 8
	res, err := AblationPsi(opts, []float64{0.05, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("%d points", len(res.Points))
	}
	if !strings.Contains(res.String(), "Ablation") {
		t.Fatal("rendering broken")
	}
}

func TestAblationAggregation(t *testing.T) {
	opts := quickOpts()
	opts.Queries = 8
	res, err := AblationAggregation(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) < 2 {
		t.Fatalf("%d points", len(res.Points))
	}
	names := map[string]bool{}
	for _, p := range res.Points {
		names[p.Setting] = true
	}
	if !names["averaging"] || !names["weighted"] {
		t.Fatalf("missing paper aggregations: %v", names)
	}
}
