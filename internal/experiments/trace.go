package experiments

import (
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"qens/internal/telemetry"
)

// Trace consumption: the observability layer (internal/telemetry)
// exports per-query spans as JSONL; this file turns a span stream into
// the per-phase latency report the experiment harness appends to its
// output — per-span-name count, total and mean plus the trace count,
// so a `qens -trace run.jsonl fig8` run shows where the wall-clock
// went (selection vs train vs aggregation).

// TraceSummary aggregates a span stream by span name.
type TraceSummary struct {
	// Traces is the number of distinct trace IDs (≈ executed queries).
	Traces int
	// Spans is the total number of spans.
	Spans int
	// Errors is the number of spans that recorded an error.
	Errors int
	// ByName aggregates per span name.
	ByName map[string]SpanAggregate
}

// SpanAggregate is the per-name aggregate of a trace summary.
type SpanAggregate struct {
	Count int
	Total time.Duration
	Max   time.Duration
}

// Mean returns the average span duration.
func (a SpanAggregate) Mean() time.Duration {
	if a.Count == 0 {
		return 0
	}
	return a.Total / time.Duration(a.Count)
}

// SummarizeTraceSpans aggregates already-parsed spans.
func SummarizeTraceSpans(spans []telemetry.Span) (*TraceSummary, error) {
	s := &TraceSummary{ByName: map[string]SpanAggregate{}}
	traces := map[string]bool{}
	for _, sp := range spans {
		if sp.TraceID == "" || sp.Name == "" {
			return nil, fmt.Errorf("experiments: malformed span (trace=%q name=%q)", sp.TraceID, sp.Name)
		}
		traces[sp.TraceID] = true
		s.Spans++
		if sp.Error != "" {
			s.Errors++
		}
		agg := s.ByName[sp.Name]
		agg.Count++
		d := time.Duration(sp.DurationMS * float64(time.Millisecond))
		agg.Total += d
		if d > agg.Max {
			agg.Max = d
		}
		s.ByName[sp.Name] = agg
	}
	s.Traces = len(traces)
	return s, nil
}

// SummarizeTrace parses a JSONL span stream and aggregates it.
func SummarizeTrace(r io.Reader) (*TraceSummary, error) {
	spans, err := telemetry.ReadJSONL(r)
	if err != nil {
		return nil, fmt.Errorf("experiments: parse trace: %w", err)
	}
	return SummarizeTraceSpans(spans)
}

// SummarizeTraceFile aggregates the JSONL trace at path.
func SummarizeTraceFile(path string) (*TraceSummary, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("experiments: open trace: %w", err)
	}
	defer f.Close()
	return SummarizeTrace(f)
}

// String renders the summary as an aligned table, span names sorted by
// total time descending.
func (s *TraceSummary) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "trace summary: %d traces, %d spans, %d errors\n", s.Traces, s.Spans, s.Errors)
	names := make([]string, 0, len(s.ByName))
	for n := range s.ByName {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		if s.ByName[names[i]].Total != s.ByName[names[j]].Total {
			return s.ByName[names[i]].Total > s.ByName[names[j]].Total
		}
		return names[i] < names[j]
	})
	fmt.Fprintf(&b, "  %-14s %8s %12s %12s %12s\n", "span", "count", "total", "mean", "max")
	for _, n := range names {
		a := s.ByName[n]
		fmt.Fprintf(&b, "  %-14s %8d %12s %12s %12s\n",
			n, a.Count, a.Total.Round(time.Microsecond),
			a.Mean().Round(time.Microsecond), a.Max.Round(time.Microsecond))
	}
	return b.String()
}
