package experiments

import (
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"qens/internal/telemetry"
)

// Trace consumption: the observability layer (internal/telemetry)
// exports per-query spans as JSONL; this file turns a span stream into
// the per-phase latency report the experiment harness appends to its
// output — per-span-name count, total and mean plus the trace count,
// so a `qens -trace run.jsonl fig8` run shows where the wall-clock
// went (selection vs train vs aggregation).

// TraceSummary aggregates a span stream by span name.
type TraceSummary struct {
	// Traces is the number of distinct trace IDs (≈ executed queries).
	Traces int
	// Spans is the total number of spans.
	Spans int
	// Errors is the number of spans that recorded an error.
	Errors int
	// Procs is the number of distinct processes contributing spans
	// (leader plus node engines whose phase spans were piggybacked
	// back); 1 means the stream is leader-only.
	Procs int
	// ByName aggregates per span name.
	ByName map[string]SpanAggregate
	// ByCategory is the critical-path decomposition summed across every
	// assemblable trace (see telemetry.CriticalPath): milliseconds of
	// root wall time attributed to queue, plan, rpc, wire, train,
	// aggregate, or other. Empty when no trace in the stream had a root.
	ByCategory map[string]float64
	// CriticalMS is the total critical-path time (the sum of
	// ByCategory).
	CriticalMS float64
}

// SpanAggregate is the per-name aggregate of a trace summary.
type SpanAggregate struct {
	Count int
	Total time.Duration
	Max   time.Duration
}

// Mean returns the average span duration.
func (a SpanAggregate) Mean() time.Duration {
	if a.Count == 0 {
		return 0
	}
	return a.Total / time.Duration(a.Count)
}

// SummarizeTraceSpans aggregates already-parsed spans.
func SummarizeTraceSpans(spans []telemetry.Span) (*TraceSummary, error) {
	s := &TraceSummary{ByName: map[string]SpanAggregate{}, ByCategory: map[string]float64{}}
	traces := map[string]bool{}
	procs := map[string]bool{}
	for _, sp := range spans {
		if sp.TraceID == "" || sp.Name == "" {
			return nil, fmt.Errorf("experiments: malformed span (trace=%q name=%q)", sp.TraceID, sp.Name)
		}
		traces[sp.TraceID] = true
		if p := sp.Attrs["proc"]; p != "" {
			procs[p] = true
		} else {
			procs["leader"] = true
		}
		s.Spans++
		if sp.Error != "" {
			s.Errors++
		}
		agg := s.ByName[sp.Name]
		agg.Count++
		d := time.Duration(sp.DurationMS * float64(time.Millisecond))
		agg.Total += d
		if d > agg.Max {
			agg.Max = d
		}
		s.ByName[sp.Name] = agg
	}
	s.Traces = len(traces)
	s.Procs = len(procs)
	// Cross-process critical-path rollup: assemble each trace and sum
	// its per-category attribution. Traces that cannot be assembled
	// (rootless fragments from a partial stream) are skipped — the
	// per-name table above still covers them.
	for id := range traces {
		tree, err := telemetry.AssembleTrace(spans, id)
		if err != nil {
			continue
		}
		for cat, ms := range tree.CriticalPath().ByCategory {
			s.ByCategory[cat] += ms
			s.CriticalMS += ms
		}
	}
	return s, nil
}

// SummarizeTrace parses a JSONL span stream and aggregates it.
func SummarizeTrace(r io.Reader) (*TraceSummary, error) {
	spans, err := telemetry.ReadJSONL(r)
	if err != nil {
		return nil, fmt.Errorf("experiments: parse trace: %w", err)
	}
	return SummarizeTraceSpans(spans)
}

// SummarizeTraceFile aggregates the JSONL trace at path.
func SummarizeTraceFile(path string) (*TraceSummary, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("experiments: open trace: %w", err)
	}
	defer f.Close()
	return SummarizeTrace(f)
}

// String renders the summary as an aligned table, span names sorted by
// total time descending, followed by the cross-process critical-path
// rollup when any trace could be assembled.
func (s *TraceSummary) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "trace summary: %d traces, %d spans, %d errors, %d processes\n",
		s.Traces, s.Spans, s.Errors, s.Procs)
	names := make([]string, 0, len(s.ByName))
	for n := range s.ByName {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		if s.ByName[names[i]].Total != s.ByName[names[j]].Total {
			return s.ByName[names[i]].Total > s.ByName[names[j]].Total
		}
		return names[i] < names[j]
	})
	fmt.Fprintf(&b, "  %-14s %8s %12s %12s %12s\n", "span", "count", "total", "mean", "max")
	for _, n := range names {
		a := s.ByName[n]
		fmt.Fprintf(&b, "  %-14s %8d %12s %12s %12s\n",
			n, a.Count, a.Total.Round(time.Microsecond),
			a.Mean().Round(time.Microsecond), a.Max.Round(time.Microsecond))
	}
	if s.CriticalMS > 0 {
		cats := make([]string, 0, len(s.ByCategory))
		for c := range s.ByCategory {
			cats = append(cats, c)
		}
		sort.Slice(cats, func(i, j int) bool {
			if s.ByCategory[cats[i]] != s.ByCategory[cats[j]] {
				return s.ByCategory[cats[i]] > s.ByCategory[cats[j]]
			}
			return cats[i] < cats[j]
		})
		fmt.Fprintf(&b, "critical path: %.3fms across %d traces\n", s.CriticalMS, s.Traces)
		for _, c := range cats {
			ms := s.ByCategory[c]
			fmt.Fprintf(&b, "  %-14s %11.3fms %6.1f%%\n", c, ms, 100*ms/s.CriticalMS)
		}
	}
	return b.String()
}
