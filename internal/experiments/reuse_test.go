package experiments

import (
	"strings"
	"testing"
)

func TestReuse(t *testing.T) {
	opts := quickOpts()
	opts.Queries = 18
	res, err := Reuse(opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Queries == 0 {
		t.Fatal("no queries executed")
	}
	// A focused workload must produce real reuse.
	if res.HitRate <= 0 {
		t.Fatalf("hit rate %v, want > 0", res.HitRate)
	}
	if res.HitRate >= 1 {
		t.Fatalf("hit rate %v — the first query of each focus region must miss", res.HitRate)
	}
	// Reuse must cut training time (skipped rounds cost nothing).
	if res.TimeWithCache >= res.TimeWithoutCache {
		t.Fatalf("cache did not save time: %v vs %v", res.TimeWithCache, res.TimeWithoutCache)
	}
	// The accuracy cost of answering from a neighbour's model must be
	// bounded (not orders of magnitude).
	if res.LossWithCache > res.LossWithoutCache*5+100 {
		t.Fatalf("cached loss %v blew up vs fresh %v", res.LossWithCache, res.LossWithoutCache)
	}
	if !strings.Contains(res.String(), "hit rate") {
		t.Fatal("rendering broken")
	}
}

func TestReuseDeterministic(t *testing.T) {
	opts := quickOpts()
	opts.Queries = 12
	a, err := Reuse(opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Reuse(opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.HitRate != b.HitRate || a.Queries != b.Queries {
		t.Fatalf("reuse not deterministic: %+v vs %+v", a, b)
	}
}
