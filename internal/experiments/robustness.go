package experiments

import (
	"fmt"
	"math"
	"strings"

	"qens/internal/dataset"
	"qens/internal/federation"
	"qens/internal/query"
	"qens/internal/rng"
	"qens/internal/selection"
)

// Sensor-noise robustness: a fraction of nodes have broken sensors —
// their labels are uniform noise over the plausible range while their
// feature ranges still look normal. One might hope the mechanism has a
// structural defence: it clusters the *joint* (x, y) space, so a
// noisy node's clusters could overlap typical queries poorly. The
// measurement below shows the defence is only partial — k-means slices
// the noise into label-range slabs that can still satisfy ε — yet the
// query-driven arms retain their loss advantage over random selection,
// because matching on the clean nodes dominates the outcome. The
// CorruptSelected column makes the selection behaviour inspectable
// rather than assumed.

// RobustnessPoint is one corruption level's outcome.
type RobustnessPoint struct {
	CorruptFraction float64
	QueryDrivenLoss float64
	RandomLoss      float64
	// CorruptSelected is how often (fraction of selection slots) the
	// query-driven mechanism picked a corrupted node.
	CorruptSelected float64
}

// RobustnessResult is the corruption sweep.
type RobustnessResult struct {
	Points []RobustnessPoint
}

// String renders the sweep.
func (r RobustnessResult) String() string {
	var b strings.Builder
	b.WriteString("Sensor-noise robustness (corrupted-label nodes)\n")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "corrupt=%.0f%%  query-driven=%-10.2f random=%-10.2f corrupted picked %4.1f%% of slots\n",
			100*p.CorruptFraction, p.QueryDrivenLoss, p.RandomLoss, 100*p.CorruptSelected)
	}
	return b.String()
}

// NoiseRobustness sweeps the corrupted-node fraction (defaults 0,
// 0.2, 0.4).
func NoiseRobustness(opts Options, fractions []float64) (*RobustnessResult, error) {
	opts = opts.WithDefaults()
	if len(fractions) == 0 {
		fractions = []float64{0, 0.2, 0.4}
	}
	out := &RobustnessResult{}
	for _, frac := range fractions {
		if frac < 0 || frac > 1 {
			return nil, fmt.Errorf("experiments: corrupt fraction %v outside [0,1]", frac)
		}
		point, err := robustnessPoint(opts, frac)
		if err != nil {
			return nil, fmt.Errorf("experiments: robustness at %v: %w", frac, err)
		}
		out.Points = append(out.Points, *point)
	}
	return out, nil
}

func robustnessPoint(opts Options, frac float64) (*RobustnessPoint, error) {
	data, err := dataset.PaperNodeDatasets(opts.datasetConfig())
	if err != nil {
		return nil, err
	}
	nCorrupt := int(math.Round(frac * float64(len(data))))
	corrupted := map[string]bool{}
	noise := rng.New(opts.Seed + 77)
	for i := len(data) - nCorrupt; i < len(data); i++ {
		c, err := data[i].CorruptTarget(noise)
		if err != nil {
			return nil, err
		}
		data[i] = c
		corrupted[fmt.Sprintf("node-%d", i)] = true
	}
	spec, err := opts.modelSpec()
	if err != nil {
		return nil, err
	}
	fleet, err := federation.NewSimulatedFleet(data, federation.Config{
		Spec: spec, ClusterK: opts.ClusterK, LocalEpochs: opts.LocalEpochs, Seed: opts.Seed + 1,
	}, federation.FleetOptions{})
	if err != nil {
		return nil, err
	}
	// Score only against clean nodes' held-out data: the corrupted
	// labels are meaningless as ground truth. Rebuild the test set
	// directly from the clean source datasets.
	cleanTest := data[0].Empty()
	testSrc := rng.New(opts.Seed + 78)
	for i, d := range data {
		if corrupted[fmt.Sprintf("node-%d", i)] {
			continue
		}
		_, held := d.Split(0.2, testSrc.Split())
		if err := cleanTest.Merge(held); err != nil {
			return nil, err
		}
	}
	space, err := fleet.Space()
	if err != nil {
		return nil, err
	}
	workload, err := query.Workload(query.WorkloadConfig{Space: space, Count: opts.Queries}, rng.New(opts.Seed+2))
	if err != nil {
		return nil, err
	}

	point := &RobustnessPoint{CorruptFraction: frac}
	sel := selection.QueryDriven{Epsilon: opts.Epsilon, TopL: opts.TopL}
	qdReport, err := federation.RunWorkload(fleet.Leader, workload, sel, federation.WeightedAveraging, cleanTest)
	if err != nil {
		return nil, err
	}
	point.QueryDrivenLoss = qdReport.MeanMSE
	slots, corruptSlots := 0, 0
	for _, o := range qdReport.Outcomes {
		if o.Result == nil {
			continue
		}
		for _, p := range o.Result.Participants {
			slots++
			if corrupted[p.NodeID] {
				corruptSlots++
			}
		}
	}
	if slots > 0 {
		point.CorruptSelected = float64(corruptSlots) / float64(slots)
	}

	rndReport, err := federation.RunWorkload(fleet.Leader, workload, selection.Random{L: opts.TopL}, federation.ModelAveraging, cleanTest)
	if err != nil {
		return nil, err
	}
	point.RandomLoss = rndReport.MeanMSE
	return point, nil
}
