package experiments

import (
	"strings"
	"testing"
)

func TestAdaptiveExperiment(t *testing.T) {
	opts := quickOpts()
	opts.Queries = 12
	res, err := Adaptive(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Arms) != 2 {
		t.Fatalf("%d arms", len(res.Arms))
	}
	homo, hetero := res.Arms[0], res.Arms[1]
	// The §II decision: random on homogeneous fleets, query-driven on
	// heterogeneous ones.
	if homo.Branch != "random" {
		t.Fatalf("homogeneous branch %q, want random", homo.Branch)
	}
	if hetero.Branch != "query-driven" {
		t.Fatalf("heterogeneous branch %q, want query-driven", hetero.Branch)
	}
	// On the heterogeneous corpus the adaptive loss must track the
	// query-driven arm, far from the random arm.
	if hetero.AdaptiveLoss >= hetero.RandomLoss {
		t.Fatalf("adaptive %v not below random %v on heterogeneous corpus",
			hetero.AdaptiveLoss, hetero.RandomLoss)
	}
	if !strings.Contains(res.String(), "Adaptive") {
		t.Fatal("rendering broken")
	}
}
