package experiments

import (
	"fmt"
	"strings"

	"qens/internal/federation"
	"qens/internal/selection"
)

// TableResult is the shared shape of Tables I and II: the expected
// loss of an all-node federation vs a random-ℓ federation.
type TableResult struct {
	// Regime labels the data landscape ("homogeneous" for Table I,
	// "heterogeneous" for Table II).
	Regime string
	// Model is the model family evaluated (the paper reports LR).
	Model string
	// AllNodeLoss is the mean per-query loss with every node
	// participating.
	AllNodeLoss float64
	// RandomLoss is the mean per-query loss with ℓ random nodes.
	RandomLoss float64
	// QueriesExecuted counts evaluable queries behind each mean.
	QueriesExecuted int
}

// String renders the paper's two-column table row.
func (r TableResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table (%s regime, %d queries)\n", r.Regime, r.QueriesExecuted)
	fmt.Fprintf(&b, "%-8s %-20s %-20s\n", "Model", "All-node selection", "Random selection")
	fmt.Fprintf(&b, "%-8s %-20.2f %-20.2f\n", strings.ToUpper(r.Model), r.AllNodeLoss, r.RandomLoss)
	return b.String()
}

// TableI reproduces the homogeneous-regime comparison (paper: 24.45 vs
// 24.70 — near-identical losses because all nodes share data
// patterns, so random selection is as good as using everyone).
func TableI(opts Options) (*TableResult, error) {
	opts = opts.WithDefaults()
	opts.Heterogeneity = 0.02
	opts.FlipFraction = -1 // sentinel: no flips
	return runTable(opts, "homogeneous")
}

// TableII reproduces the heterogeneous-regime comparison (paper: 9.70
// vs 178.10 — random selection collapses because it can draw nodes
// whose data contradicts the query's subspace).
func TableII(opts Options) (*TableResult, error) {
	opts = opts.WithDefaults()
	opts.Heterogeneity = 1
	opts.FlipFraction = 0.3
	return runTable(opts, "heterogeneous")
}

func runTable(opts Options, regime string) (*TableResult, error) {
	if opts.FlipFraction < 0 {
		opts.FlipFraction = 0
	}
	env, err := NewEnvironment(opts)
	if err != nil {
		return nil, err
	}
	allLoss, nAll, err := env.meanLoss(selection.AllNodes{}, federation.ModelAveraging)
	if err != nil {
		return nil, fmt.Errorf("experiments: all-node arm: %w", err)
	}
	// The paper's random arm draws a small participant subset; ℓ = 1
	// mirrors "selecting a participant... randomly" in §II.
	randLoss, nRand, err := env.meanLoss(selection.Random{L: 1}, federation.ModelAveraging)
	if err != nil {
		return nil, fmt.Errorf("experiments: random arm: %w", err)
	}
	n := nAll
	if nRand < n {
		n = nRand
	}
	return &TableResult{
		Regime:          regime,
		Model:           opts.Model,
		AllNodeLoss:     allLoss,
		RandomLoss:      randLoss,
		QueriesExecuted: n,
	}, nil
}
