package experiments

import (
	"fmt"
	"strings"

	"qens/internal/dataset"
	"qens/internal/federation"
	"qens/internal/geometry"
	"qens/internal/ml"
	"qens/internal/query"
	"qens/internal/rng"
	"qens/internal/selection"
)

// Temporal (prequential) evaluation: the corpus is hourly sensor data,
// so the realistic protocol trains on the past and scores on the
// future — a shuffled split leaks future hours into training and
// flatters every mechanism equally. This experiment rebuilds the fleet
// with per-node temporal splits and re-runs the query-driven vs random
// comparison; the mechanism's advantage must survive the harder
// protocol.

// TemporalResult compares mechanisms under the time-ordered protocol.
type TemporalResult struct {
	// Losses maps mechanism -> mean per-query future-data MSE.
	Losses map[string]float64
	// Executed maps mechanism -> evaluable query count.
	Executed map[string]int
}

// String renders the comparison.
func (r TemporalResult) String() string {
	var b strings.Builder
	b.WriteString("Temporal (train-on-past, test-on-future) evaluation\n")
	for _, m := range []string{"random", "weighted"} {
		fmt.Fprintf(&b, "%-10s loss=%.2f (%d queries)\n", m, r.Losses[m], r.Executed[m])
	}
	return b.String()
}

// Temporal runs the experiment.
func Temporal(opts Options) (*TemporalResult, error) {
	opts = opts.WithDefaults()
	data, err := dataset.PaperNodeDatasets(opts.datasetConfig())
	if err != nil {
		return nil, err
	}
	// Per-node temporal split: past 80% trains, future 20% tests.
	trains := make([]*dataset.Dataset, len(data))
	test := data[0].Empty()
	for i, d := range data {
		past, future := d.SplitTemporal(0.2)
		trains[i] = past
		if err := test.Merge(future); err != nil {
			return nil, err
		}
	}
	spec := ml.PaperLR(1)
	if opts.Model == ml.KindNN {
		spec = ml.PaperNN(1)
	}
	root := rng.New(opts.Seed + 3)
	nodes := make([]federation.Client, len(trains))
	for i, d := range trains {
		n, err := federation.NewNode(fmt.Sprintf("node-%d", i), d, opts.ClusterK, root.Split())
		if err != nil {
			return nil, err
		}
		nodes[i] = federation.LocalClient{Node: n}
	}
	leader, err := federation.NewLeader(federation.Config{
		Spec: spec, ClusterK: opts.ClusterK, LocalEpochs: opts.LocalEpochs, Seed: opts.Seed + 4,
	}, trains[0], nodes)
	if err != nil {
		return nil, err
	}
	summaries, err := leader.Summaries()
	if err != nil {
		return nil, err
	}
	var bounds []geometry.Rect
	for _, s := range summaries {
		node := s.Clusters[0].Bounds.Clone()
		for _, c := range s.Clusters[1:] {
			node = node.Union(c.Bounds)
		}
		bounds = append(bounds, node)
	}
	space, err := query.GlobalSpace(bounds)
	if err != nil {
		return nil, err
	}
	workload, err := query.Workload(query.WorkloadConfig{Space: space, Count: opts.Queries}, rng.New(opts.Seed+5))
	if err != nil {
		return nil, err
	}

	res := &TemporalResult{Losses: map[string]float64{}, Executed: map[string]int{}}
	arms := []struct {
		name string
		sel  selection.Selector
		agg  federation.Aggregation
	}{
		{"random", selection.Random{L: opts.TopL}, federation.ModelAveraging},
		{"weighted", selection.QueryDriven{Epsilon: opts.Epsilon, TopL: opts.TopL}, federation.WeightedAveraging},
	}
	for _, arm := range arms {
		total, executed := 0.0, 0
		for _, q := range workload {
			r, err := leader.Execute(q, arm.sel, arm.agg)
			if err != nil {
				continue
			}
			mse, _, ok := federation.EvaluateResult(r, test)
			if !ok {
				continue
			}
			total += mse
			executed++
		}
		if executed == 0 {
			return nil, fmt.Errorf("experiments: temporal arm %s executed no queries", arm.name)
		}
		res.Losses[arm.name] = total / float64(executed)
		res.Executed[arm.name] = executed
	}
	return res, nil
}
