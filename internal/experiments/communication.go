package experiments

import (
	"fmt"
	"strings"

	"qens/internal/federation"
	"qens/internal/query"
	"qens/internal/selection"
)

// Communication-cost experiment, quantifying §III-C's claim that the
// mechanism needs only O(1) communication per node: nodes ship K
// cluster rectangles once, and per query only model parameters move.
// Three alternatives are accounted:
//
//   - query-driven: one-off summaries + per-query parameter exchange
//     with the ℓ selected nodes;
//   - game-theory [7]: additionally needs a pre-test round per query
//     (warm-up parameters to every node, a loss back from each);
//   - centralized: the non-federated strawman that ships every node's
//     in-query raw samples to the leader.
type CommPoint struct {
	Mechanism string
	// SetupBytes is one-off communication before any query.
	SetupBytes int64
	// PerQueryBytes is the mean per-query communication.
	PerQueryBytes int64
}

// CommResult is the accounting table.
type CommResult struct {
	Points []CommPoint
	// Queries is the number of queries averaged over.
	Queries int
}

// String renders the table.
func (r CommResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Communication cost (mean over %d queries)\n", r.Queries)
	fmt.Fprintf(&b, "%-14s %14s %16s\n", "mechanism", "setup bytes", "per-query bytes")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%-14s %14d %16d\n", p.Mechanism, p.SetupBytes, p.PerQueryBytes)
	}
	return b.String()
}

// CommunicationCost runs the accounting over the workload.
func CommunicationCost(opts Options) (*CommResult, error) {
	opts = opts.WithDefaults()
	env, err := NewEnvironment(opts)
	if err != nil {
		return nil, err
	}
	summaries, err := env.Fleet.Leader.Summaries()
	if err != nil {
		return nil, err
	}
	// One-off summary exchange: bounds (2d) + centroid (d) + size,
	// 8 bytes a float, per cluster per node.
	var summaryBytes int64
	for _, s := range summaries {
		for _, c := range s.Clusters {
			summaryBytes += int64(8 * (3*c.Bounds.Dims() + 1))
		}
	}

	sel := selection.QueryDriven{Epsilon: opts.Epsilon, TopL: opts.TopL}
	var qdBytes, gtBytes, rawBytes int64
	executed := 0
	var paramBytes int64
	for _, q := range env.Queries {
		res, err := env.Fleet.Execute(q, sel, federation.ModelAveraging)
		if err != nil {
			continue
		}
		executed++
		qdBytes += res.Stats.BytesUp + res.Stats.BytesDown
		if paramBytes == 0 && len(res.LocalParams) > 0 {
			paramBytes = int64(8 * len(res.LocalParams[0].Values))
		}
		// GT: pre-test ships the warm-up model to every node and a
		// float64 loss back, then trains ℓ nodes on whole data.
		gtBytes += int64(len(summaries))*(paramBytes+8) + 2*int64(opts.TopL)*paramBytes
		// Centralized strawman: every in-query raw sample crosses
		// the network (dims columns x 8 bytes).
		est, err := query.EstimateSelectivity(q, summaries)
		if err != nil {
			return nil, err
		}
		rawBytes += int64(est.Samples * float64(8*q.Dims()))
	}
	if executed == 0 {
		return nil, fmt.Errorf("experiments: no query executed for communication accounting")
	}
	n := int64(executed)
	return &CommResult{
		Queries: executed,
		Points: []CommPoint{
			{Mechanism: "query-driven", SetupBytes: summaryBytes, PerQueryBytes: qdBytes / n},
			{Mechanism: "game-theory", SetupBytes: 0, PerQueryBytes: gtBytes / n},
			{Mechanism: "centralized", SetupBytes: 0, PerQueryBytes: rawBytes / n},
		},
	}, nil
}
