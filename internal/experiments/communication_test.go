package experiments

import (
	"strings"
	"testing"
)

func TestCommunicationCost(t *testing.T) {
	res, err := CommunicationCost(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 3 || res.Queries == 0 {
		t.Fatalf("result %+v", res)
	}
	byName := map[string]CommPoint{}
	for _, p := range res.Points {
		byName[p.Mechanism] = p
	}
	qd, gt, raw := byName["query-driven"], byName["game-theory"], byName["centralized"]
	// The O(1) claim: query-driven setup exists but is tiny, and its
	// per-query traffic is below GT (which adds a pre-test round over
	// all nodes) and far below shipping raw data.
	if qd.SetupBytes <= 0 {
		t.Fatal("query-driven setup bytes missing")
	}
	if qd.PerQueryBytes >= gt.PerQueryBytes {
		t.Fatalf("query-driven per-query %d not below GT %d", qd.PerQueryBytes, gt.PerQueryBytes)
	}
	if qd.PerQueryBytes >= raw.PerQueryBytes {
		t.Fatalf("query-driven per-query %d not below centralized %d", qd.PerQueryBytes, raw.PerQueryBytes)
	}
	// Setup is amortized: it should be smaller than a handful of
	// centralized queries.
	if qd.SetupBytes > 3*raw.PerQueryBytes {
		t.Fatalf("summary exchange %d suspiciously large vs raw %d", qd.SetupBytes, raw.PerQueryBytes)
	}
	if !strings.Contains(res.String(), "Communication") {
		t.Fatal("rendering broken")
	}
}
