package experiments

import (
	"strings"
	"testing"
)

func TestNoiseRobustness(t *testing.T) {
	opts := quickOpts()
	opts.Queries = 12
	res, err := NoiseRobustness(opts, []float64{0, 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("%d points", len(res.Points))
	}
	clean, noisy := res.Points[0], res.Points[1]
	if clean.CorruptFraction != 0 || noisy.CorruptFraction != 0.3 {
		t.Fatalf("fractions %v/%v", clean.CorruptFraction, noisy.CorruptFraction)
	}
	// At zero corruption nothing corrupted can be selected.
	if clean.CorruptSelected != 0 {
		t.Fatalf("clean run selected corrupted nodes: %v", clean.CorruptSelected)
	}
	// Under corruption, the query-driven mechanism must stay ahead of
	// random selection (which samples corrupted nodes at their base
	// rate).
	if noisy.QueryDrivenLoss >= noisy.RandomLoss {
		t.Fatalf("query-driven %v not below random %v under noise",
			noisy.QueryDrivenLoss, noisy.RandomLoss)
	}
	// The selection behaviour is reported, not assumed: the measured
	// rate must be a valid fraction, and the experiment must not
	// pretend corrupted nodes are never picked (k-means slabs can
	// satisfy ε — see the package comment).
	if noisy.CorruptSelected < 0 || noisy.CorruptSelected > 1 {
		t.Fatalf("corrupt-selected fraction %v out of range", noisy.CorruptSelected)
	}
	if !strings.Contains(res.String(), "robustness") {
		t.Fatal("rendering broken")
	}
}

func TestNoiseRobustnessValidation(t *testing.T) {
	if _, err := NoiseRobustness(quickOpts(), []float64{1.5}); err == nil {
		t.Fatal("accepted fraction > 1")
	}
}
