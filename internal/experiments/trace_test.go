package experiments

import (
	"bytes"
	"errors"
	"os"
	"strings"
	"testing"
	"time"

	"qens/internal/telemetry"
)

// traceFixture produces a JSONL stream with two traces: one healthy
// query (selection + 2 trains + aggregation) and one with a failed
// train span.
func traceFixture(t *testing.T) *bytes.Buffer {
	t.Helper()
	var buf bytes.Buffer
	tr := telemetry.NewTracer(&buf)

	q1 := tr.StartTrace("query")
	q1.Child("selection").End(nil)
	for i := 0; i < 2; i++ {
		sp := q1.Child("train")
		sp.SetAttr("node", "node-0")
		sp.End(nil)
	}
	q1.Child("aggregation").End(nil)
	q1.End(nil)

	q2 := tr.StartTrace("query")
	q2.Child("selection").End(nil)
	failed := q2.Child("train")
	failed.End(errTest)
	q2.End(errTest)
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	return &buf
}

var errTest = errors.New("simulated edge outage")

func TestSummarizeTrace(t *testing.T) {
	sum, err := SummarizeTrace(traceFixture(t))
	if err != nil {
		t.Fatal(err)
	}
	if sum.Traces != 2 {
		t.Fatalf("traces = %d, want 2", sum.Traces)
	}
	if sum.Spans != 8 {
		t.Fatalf("spans = %d, want 8", sum.Spans)
	}
	if sum.Errors != 2 {
		t.Fatalf("errors = %d, want 2 (failed train + failed query)", sum.Errors)
	}
	for name, wantCount := range map[string]int{
		"query": 2, "selection": 2, "train": 3, "aggregation": 1,
	} {
		agg, ok := sum.ByName[name]
		if !ok || agg.Count != wantCount {
			t.Fatalf("ByName[%q] = %+v, want count %d", name, agg, wantCount)
		}
		if agg.Total < 0 || agg.Max < 0 {
			t.Fatalf("ByName[%q] has negative durations: %+v", name, agg)
		}
	}
}

func TestSummarizeTraceRejectsMalformed(t *testing.T) {
	if _, err := SummarizeTraceSpans([]telemetry.Span{{Name: "x"}}); err == nil {
		t.Fatal("accepted a span without a trace id")
	}
	if _, err := SummarizeTraceSpans([]telemetry.Span{{TraceID: "t"}}); err == nil {
		t.Fatal("accepted a span without a name")
	}
}

func TestSpanAggregateMean(t *testing.T) {
	if got := (SpanAggregate{}).Mean(); got != 0 {
		t.Fatalf("empty mean = %v", got)
	}
	a := SpanAggregate{Count: 4, Total: 2 * time.Second}
	if got := a.Mean(); got != 500*time.Millisecond {
		t.Fatalf("mean = %v", got)
	}
}

func TestTraceSummaryString(t *testing.T) {
	sum, err := SummarizeTrace(traceFixture(t))
	if err != nil {
		t.Fatal(err)
	}
	out := sum.String()
	if !strings.Contains(out, "2 traces, 8 spans, 2 errors") {
		t.Fatalf("header missing from %q", out)
	}
	for _, name := range []string{"query", "selection", "train", "aggregation"} {
		if !strings.Contains(out, name) {
			t.Fatalf("table missing %q:\n%s", name, out)
		}
	}
}

func TestSummarizeTraceFile(t *testing.T) {
	path := t.TempDir() + "/run.jsonl"
	if err := os.WriteFile(path, traceFixture(t).Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	sum, err := SummarizeTraceFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Traces != 2 || sum.Spans != 8 {
		t.Fatalf("file summary = %+v", sum)
	}
	if _, err := SummarizeTraceFile(path + ".missing"); err == nil {
		t.Fatal("missing file did not error")
	}
}
