package experiments

import (
	"fmt"
	"strings"
	"time"

	"qens/internal/federation"
	"qens/internal/query"
	"qens/internal/rng"
	"qens/internal/selection"
)

// Query-reuse experiment (extension, after the paper's reference [5]):
// under a focused dynamic workload — queries that dwell in a region
// before drifting — how often can a cached per-query model answer the
// next query, and what does that save?

// ReuseResult summarizes the with-cache run against the no-cache
// baseline on the same workload.
type ReuseResult struct {
	Queries int
	// HitRate is cache hits / executed queries.
	HitRate float64
	// TimeWithCache / TimeWithoutCache are total wall-clock training
	// times.
	TimeWithCache    time.Duration
	TimeWithoutCache time.Duration
	// LossWithCache / LossWithoutCache are mean per-query test MSEs;
	// reuse trades a little accuracy (an old model answers a nearby
	// query) for large time savings.
	LossWithCache    float64
	LossWithoutCache float64
}

// String renders the comparison.
func (r ReuseResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Query reuse over %d focused queries\n", r.Queries)
	fmt.Fprintf(&b, "hit rate        %.1f%%\n", 100*r.HitRate)
	fmt.Fprintf(&b, "train time      with cache %-12s without %s\n", r.TimeWithCache, r.TimeWithoutCache)
	fmt.Fprintf(&b, "mean loss       with cache %-12.2f without %.2f\n", r.LossWithCache, r.LossWithoutCache)
	return b.String()
}

// Reuse runs the experiment. MinIoU 0.5 serves a query whenever a
// cached query covers at least half of its (union) extent.
func Reuse(opts Options) (*ReuseResult, error) {
	opts = opts.WithDefaults()
	env, err := NewEnvironment(opts)
	if err != nil {
		return nil, err
	}
	space, err := env.Fleet.Space()
	if err != nil {
		return nil, err
	}
	// A focused workload: the generator dwells on a region for a
	// stretch of queries before jumping (the [18] dynamic pattern).
	workload, err := query.Workload(query.WorkloadConfig{
		Space:       space,
		Count:       opts.Queries,
		DriftPeriod: maxInt(2, opts.Queries/3),
		FocusSpread: 0.03,
	}, rng.New(opts.Seed+9))
	if err != nil {
		return nil, err
	}
	sel := selection.QueryDriven{Epsilon: opts.Epsilon, TopL: opts.TopL}
	cache, err := federation.NewReuseCache(0.5, 16)
	if err != nil {
		return nil, err
	}

	out := &ReuseResult{}
	hits := 0
	lossCached, lossFresh := 0.0, 0.0
	scoredCached, scoredFresh := 0, 0
	for _, q := range workload {
		res, reused, err := env.Fleet.Leader.ExecuteWithReuse(cache, q, sel, federation.WeightedAveraging)
		if err != nil {
			continue
		}
		out.Queries++
		if reused {
			hits++
		} else {
			out.TimeWithCache += res.Stats.TrainTime
		}
		// Score the served model on THIS query's test subspace.
		served := *res
		served.Query = q
		if mse, _, ok := federation.EvaluateResult(&served, env.Fleet.Test); ok {
			lossCached += mse
			scoredCached++
		}

		// Baseline: always train fresh.
		fresh, err := env.Fleet.Execute(q, sel, federation.WeightedAveraging)
		if err != nil {
			continue
		}
		out.TimeWithoutCache += fresh.Stats.TrainTime
		if mse, _, ok := federation.EvaluateResult(fresh, env.Fleet.Test); ok {
			lossFresh += mse
			scoredFresh++
		}
	}
	if out.Queries == 0 || scoredCached == 0 || scoredFresh == 0 {
		return nil, fmt.Errorf("experiments: reuse run produced no evaluable queries")
	}
	out.HitRate = float64(hits) / float64(out.Queries)
	out.LossWithCache = lossCached / float64(scoredCached)
	out.LossWithoutCache = lossFresh / float64(scoredFresh)
	return out, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
