package experiments

import (
	"strings"
	"testing"
)

func TestQuantizerAblation(t *testing.T) {
	opts := quickOpts()
	opts.Queries = 12
	res, err := QuantizerAblation(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("%d points", len(res.Points))
	}
	byName := map[string]QuantizerPoint{}
	for _, p := range res.Points {
		if p.Executed == 0 {
			t.Fatalf("%s executed no queries", p.Quantizer)
		}
		if p.MeanClusters <= 0 {
			t.Fatalf("%s advertised no clusters", p.Quantizer)
		}
		if p.DataFraction <= 0 || p.DataFraction >= 1 {
			t.Fatalf("%s data fraction %v", p.Quantizer, p.DataFraction)
		}
		byName[p.Quantizer] = p
	}
	if _, ok := byName["kmeans"]; !ok {
		t.Fatal("missing kmeans arm")
	}
	if _, ok := byName["grid"]; !ok {
		t.Fatal("missing grid arm")
	}
	// Both synopses must produce usable federations; neither arm may
	// be catastrophically broken relative to the other.
	k, g := byName["kmeans"].Loss, byName["grid"].Loss
	if k > g*20 || g > k*20 {
		t.Fatalf("quantizer losses wildly apart: kmeans=%v grid=%v", k, g)
	}
	if !strings.Contains(res.String(), "Quantizer") {
		t.Fatal("rendering broken")
	}
}
