package experiments

import (
	"fmt"
	"strings"

	"qens/internal/federation"
	"qens/internal/selection"
)

// Adaptive-selector experiment: §II prescribes a decision procedure —
// pre-test the federation, use cheap Random selection when nodes are
// homogeneous, the query-driven mechanism when they are not.
// selection.Adaptive encodes it; this experiment verifies the
// procedure end-to-end on both corpus regimes: the classifier must
// pick the right branch, and the adaptive loss must track the branch
// it picked (not the other one).

// AdaptiveArm is one regime's outcome.
type AdaptiveArm struct {
	Corpus string
	// Branch is the mechanism the adaptive selector committed to.
	Branch string
	// AdaptiveLoss / RandomLoss / QueryDrivenLoss are mean
	// per-query test MSEs of the three selectors on this corpus.
	AdaptiveLoss    float64
	RandomLoss      float64
	QueryDrivenLoss float64
}

// AdaptiveResult covers both regimes.
type AdaptiveResult struct {
	Arms []AdaptiveArm
}

// String renders the comparison.
func (r AdaptiveResult) String() string {
	var b strings.Builder
	b.WriteString("Adaptive selection (§II decision procedure end-to-end)\n")
	for _, a := range r.Arms {
		fmt.Fprintf(&b, "%-14s branch=%-13s adaptive=%-10.2f random=%-10.2f query-driven=%.2f\n",
			a.Corpus, a.Branch, a.AdaptiveLoss, a.RandomLoss, a.QueryDrivenLoss)
	}
	return b.String()
}

// Adaptive runs the experiment on a homogeneous and a heterogeneous
// corpus.
func Adaptive(opts Options) (*AdaptiveResult, error) {
	opts = opts.WithDefaults()
	out := &AdaptiveResult{}
	for _, regime := range []struct {
		name          string
		heterogeneity float64
		flip          float64
	}{
		{"homogeneous", 0.02, 0},
		{"heterogeneous", 1, 0.3},
	} {
		o := opts
		o.Heterogeneity = regime.heterogeneity
		o.FlipFraction = regime.flip
		env, err := NewEnvironment(o)
		if err != nil {
			return nil, err
		}
		arm := AdaptiveArm{Corpus: regime.name}

		adaptive := &selection.Adaptive{Epsilon: o.Epsilon, TopL: o.TopL}
		loss, _, err := env.meanLoss(adaptive, federation.WeightedAveraging)
		if err != nil {
			return nil, fmt.Errorf("experiments: adaptive arm on %s: %w", regime.name, err)
		}
		arm.AdaptiveLoss = loss
		if r, ok := adaptive.Regime(); ok {
			if r == selection.RegimeHomogeneous {
				arm.Branch = "random"
			} else {
				arm.Branch = "query-driven"
			}
		}

		if arm.RandomLoss, _, err = env.meanLoss(selection.Random{L: o.TopL}, federation.ModelAveraging); err != nil {
			return nil, err
		}
		qd := selection.QueryDriven{Epsilon: o.Epsilon, TopL: o.TopL}
		if arm.QueryDrivenLoss, _, err = env.meanLoss(qd, federation.WeightedAveraging); err != nil {
			return nil, err
		}
		out.Arms = append(out.Arms, arm)
	}
	return out, nil
}
