package experiments

import (
	"strings"
	"testing"
)

func TestHeterogeneitySweep(t *testing.T) {
	opts := quickOpts()
	opts.Queries = 10
	res, err := HeterogeneitySweep(opts, []float64{0.02, 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("%d points", len(res.Points))
	}
	low, high := res.Points[0], res.Points[1]
	// The §II narrative: the mechanism's advantage over random grows
	// with heterogeneity.
	if high.Advantage <= low.Advantage {
		t.Fatalf("advantage did not grow: %v at h=0.02 vs %v at h=1", low.Advantage, high.Advantage)
	}
	// The pre-test must track the regimes.
	if low.Regime != "homogeneous" {
		t.Fatalf("low-heterogeneity regime %s", low.Regime)
	}
	if high.Regime != "heterogeneous" {
		t.Fatalf("high-heterogeneity regime %s", high.Regime)
	}
	if !strings.Contains(res.String(), "sweep") {
		t.Fatal("rendering broken")
	}
}

func TestHeterogeneitySweepValidation(t *testing.T) {
	if _, err := HeterogeneitySweep(quickOpts(), []float64{2}); err == nil {
		t.Fatal("accepted out-of-range level")
	}
}

func TestHeterogeneitySweepDefaults(t *testing.T) {
	opts := quickOpts()
	opts.Nodes = 4
	opts.SamplesPerNode = 200
	opts.Queries = 5
	res, err := HeterogeneitySweep(opts, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 5 {
		t.Fatalf("default sweep has %d points", len(res.Points))
	}
}

func TestTemporal(t *testing.T) {
	opts := quickOpts()
	opts.Queries = 15
	res, err := Temporal(opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Executed["weighted"] == 0 || res.Executed["random"] == 0 {
		t.Fatalf("executed %+v", res.Executed)
	}
	// The mechanism's advantage must survive the time-ordered split.
	if res.Losses["weighted"] >= res.Losses["random"] {
		t.Fatalf("temporal: weighted %v not below random %v",
			res.Losses["weighted"], res.Losses["random"])
	}
	if !strings.Contains(res.String(), "Temporal") {
		t.Fatal("rendering broken")
	}
}

func TestReport(t *testing.T) {
	opts := quickOpts()
	opts.Queries = 8
	out, err := Report(opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"# QENS reproduction report",
		"Table I", "Table II",
		"Figure 7", "Figure 8", "Figure 9",
		"drift", "sweep", "Communication", "reuse", "Temporal",
		"Ablation: K", "Ablation: aggregation",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q", want)
		}
	}
}
