package experiments

import (
	"fmt"
	"strings"

	"qens/internal/cluster"
	"qens/internal/dataset"
	"qens/internal/federation"
	"qens/internal/query"
	"qens/internal/rng"
	"qens/internal/selection"
)

// Quantizer ablation: the paper quantizes node data spaces with
// k-means "e.g." — leaving the synopsis open. This experiment swaps in
// the classic equi-width grid and compares loss and data selectivity
// at matched synopsis sizes, quantifying what the data-adaptive
// clustering actually buys.

// QuantizerPoint is one synopsis family's outcome.
type QuantizerPoint struct {
	Quantizer string
	// MeanClusters is the average advertised clusters per node (the
	// grid drops empty cells, so it can be below the nominal size).
	MeanClusters float64
	Loss         float64
	DataFraction float64
	Executed     int
}

// QuantizerResult compares the synopsis families.
type QuantizerResult struct {
	Points []QuantizerPoint
}

// String renders the comparison.
func (r QuantizerResult) String() string {
	var b strings.Builder
	b.WriteString("Quantizer ablation — k-means vs equi-width grid synopses\n")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%-8s clusters/node=%.1f loss=%-10.2f data=%5.1f%%  (%d queries)\n",
			p.Quantizer, p.MeanClusters, p.Loss, 100*p.DataFraction, p.Executed)
	}
	return b.String()
}

// QuantizerAblation runs both synopsis families on the same corpus and
// workload.
func QuantizerAblation(opts Options) (*QuantizerResult, error) {
	opts = opts.WithDefaults()
	data, err := dataset.PaperNodeDatasets(opts.datasetConfig())
	if err != nil {
		return nil, err
	}
	spec, err := opts.modelSpec()
	if err != nil {
		return nil, err
	}

	out := &QuantizerResult{}
	for _, family := range []string{"kmeans", "grid"} {
		root := rng.New(opts.Seed + 11)
		test := data[0].Empty()
		clients := make([]federation.Client, len(data))
		totalClusters := 0
		for i, d := range data {
			train, held := d.Split(0.2, root.Split())
			if err := test.Merge(held); err != nil {
				return nil, err
			}
			var node *federation.Node
			switch family {
			case "kmeans":
				node, err = federation.NewNode(fmt.Sprintf("node-%d", i), train, opts.ClusterK, root.Split())
			case "grid":
				// ceil(sqrt(K)) buckets per dim gives up to ~K cells
				// in 2-D, matching the k-means synopsis size.
				buckets := 1
				for buckets*buckets < opts.ClusterK {
					buckets++
				}
				var quant *cluster.Quantization
				quant, err = cluster.GridQuantize(train, buckets)
				if err == nil {
					node, err = federation.NewNodeFromQuantization(fmt.Sprintf("node-%d", i), quant, root.Split())
				}
			}
			if err != nil {
				return nil, fmt.Errorf("experiments: %s node %d: %w", family, i, err)
			}
			totalClusters += node.Summary().K()
			clients[i] = federation.LocalClient{Node: node}
		}
		leader, err := federation.NewLeader(federation.Config{
			Spec: spec, ClusterK: opts.ClusterK, LocalEpochs: opts.LocalEpochs, Seed: opts.Seed + 12,
		}, nil, clients)
		if err != nil {
			return nil, err
		}
		summaries, err := leader.Summaries()
		if err != nil {
			return nil, err
		}
		space, err := summariesSpace(summaries)
		if err != nil {
			return nil, err
		}
		workload, err := query.Workload(query.WorkloadConfig{Space: space, Count: opts.Queries}, rng.New(opts.Seed+13))
		if err != nil {
			return nil, err
		}
		sel := selection.QueryDriven{Epsilon: opts.Epsilon, TopL: opts.TopL}
		report, err := federation.RunWorkload(leader, workload, sel, federation.WeightedAveraging, test)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s arm: %w", family, err)
		}
		out.Points = append(out.Points, QuantizerPoint{
			Quantizer:    family,
			MeanClusters: float64(totalClusters) / float64(len(data)),
			Loss:         report.MeanMSE,
			DataFraction: report.MeanDataFraction,
			Executed:     report.Scored,
		})
	}
	return out, nil
}
