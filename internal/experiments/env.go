// Package experiments reproduces every table and figure of the
// paper's evaluation (§V) on the synthetic air-quality corpus:
// Tables I/II (all-node vs random loss under homogeneous and
// heterogeneous data), Fig. 6 (query vs node data spaces), Fig. 7
// (average loss of GT / Random / Averaging / Weighted), Fig. 8
// (training time with and without query-driven selectivity) and
// Fig. 9 (fraction of data used per query), plus the K/ε/ℓ ablations
// referenced in DESIGN.md. Each experiment is a pure function from an
// Options value to a structured result with a textual rendering, so
// the CLI, the benches and the tests all share one implementation.
package experiments

import (
	"fmt"

	"qens/internal/cluster"
	"qens/internal/dataset"
	"qens/internal/federation"
	"qens/internal/geometry"
	"qens/internal/ml"
	"qens/internal/query"
	"qens/internal/rng"
	"qens/internal/selection"
)

// Options scales an experiment. The zero value is filled with the
// paper's settings (10 nodes, 2000 samples, K=5, 200 queries); tests
// and quick runs shrink it.
type Options struct {
	// Seed drives every stochastic choice.
	Seed uint64
	// Nodes is the number of edge nodes (paper: 10).
	Nodes int
	// SamplesPerNode is the per-node dataset size (default 2000).
	SamplesPerNode int
	// Queries is the workload length (paper: 200 for Fig. 7, 20 for
	// Figs. 8-9).
	Queries int
	// ClusterK is the per-node k-means K (paper: 5).
	ClusterK int
	// Epsilon is the ε supporting-cluster threshold (default 0.6:
	// with the paper's 2-D node data spaces, Eq. 2 gives h = 0.5 to a
	// cluster that overlaps in only one of the two dimensions, so a
	// binding threshold must exceed 0.5; the paper does not state its
	// own ε).
	Epsilon float64
	// TopL is the ℓ of top-ℓ selection (default 3).
	TopL int
	// LocalEpochs is the paper's E local rounds (default 5).
	LocalEpochs int
	// Model selects "linear" or "nn" (default "linear").
	Model string
	// Heterogeneity in [0,1] controls site divergence (default the
	// corpus default 0.6); Tables I/II override it.
	Heterogeneity float64
	// FlipFraction is the share of sign-flipped sites (default per
	// corpus default when heterogeneity is high).
	FlipFraction float64
}

// WithDefaults fills unset fields with the paper-scale values.
func (o Options) WithDefaults() Options {
	if o.Nodes == 0 {
		o.Nodes = 10
	}
	if o.SamplesPerNode == 0 {
		o.SamplesPerNode = 2000
	}
	if o.Queries == 0 {
		o.Queries = 200
	}
	if o.ClusterK == 0 {
		o.ClusterK = 5
	}
	if o.Epsilon == 0 {
		o.Epsilon = 0.6
	}
	if o.TopL == 0 {
		o.TopL = 3
	}
	if o.LocalEpochs == 0 {
		o.LocalEpochs = 5
	}
	if o.Model == "" {
		o.Model = ml.KindLinear
	}
	if o.Heterogeneity == 0 {
		o.Heterogeneity = 0.6
	}
	if o.FlipFraction == 0 && o.Heterogeneity > 0.5 {
		o.FlipFraction = 0.2
	}
	return o
}

// datasetConfig maps the options onto the synthetic corpus generator.
func (o Options) datasetConfig() dataset.Config {
	return dataset.Config{
		Nodes:          o.Nodes,
		SamplesPerNode: o.SamplesPerNode,
		Seed:           o.Seed,
		Heterogeneity:  o.Heterogeneity,
		FlipFraction:   o.FlipFraction,
	}
}

// modelSpec builds the Table III spec for the chosen model over the
// paper's 1-feature node datasets.
func (o Options) modelSpec() (ml.Spec, error) {
	switch o.Model {
	case ml.KindLinear:
		return ml.PaperLR(1), nil
	case ml.KindNN:
		return ml.PaperNN(1), nil
	default:
		return ml.Spec{}, fmt.Errorf("experiments: unknown model %q", o.Model)
	}
}

// Environment is a ready-to-run simulated edge deployment: the fleet
// plus a deterministic query workload over its global data space.
type Environment struct {
	Opts    Options
	Fleet   *federation.Fleet
	Queries []query.Query
}

// NewEnvironment generates the corpus, builds the fleet and draws the
// query workload.
func NewEnvironment(opts Options) (*Environment, error) {
	opts = opts.WithDefaults()
	spec, err := opts.modelSpec()
	if err != nil {
		return nil, err
	}
	data, err := dataset.PaperNodeDatasets(opts.datasetConfig())
	if err != nil {
		return nil, err
	}
	cfg := federation.Config{
		Spec:        spec,
		ClusterK:    opts.ClusterK,
		LocalEpochs: opts.LocalEpochs,
		Seed:        opts.Seed + 1,
	}
	fleet, err := federation.NewSimulatedFleet(data, cfg, federation.FleetOptions{})
	if err != nil {
		return nil, err
	}
	space, err := fleet.Space()
	if err != nil {
		return nil, err
	}
	queries, err := query.Workload(query.WorkloadConfig{
		Space: space,
		Count: opts.Queries,
	}, rng.New(opts.Seed+2))
	if err != nil {
		return nil, err
	}
	return &Environment{Opts: opts, Fleet: fleet, Queries: queries}, nil
}

// meanLoss executes every query with the given selector/aggregation
// and averages the per-query test MSE over the query subspace; queries
// with no test data or no candidate nodes are skipped (and counted).
func (e *Environment) meanLoss(sel selection.Selector, agg federation.Aggregation) (mean float64, executed int, err error) {
	total := 0.0
	for _, q := range e.Queries {
		res, execErr := e.Fleet.Execute(q, sel, agg)
		if execErr != nil {
			continue // e.g. no node supports this query
		}
		mse, _, ok := federation.EvaluateResult(res, e.Fleet.Test)
		if !ok {
			continue
		}
		total += mse
		executed++
	}
	if executed == 0 {
		return 0, 0, fmt.Errorf("experiments: no query produced an evaluable result")
	}
	return total / float64(executed), executed, nil
}

// summariesSpace computes the global data space implied by a set of
// node advertisements.
func summariesSpace(summaries []cluster.NodeSummary) (geometry.Rect, error) {
	bounds := make([]geometry.Rect, 0, len(summaries))
	for _, s := range summaries {
		node := s.Clusters[0].Bounds.Clone()
		for _, c := range s.Clusters[1:] {
			node = node.Union(c.Bounds)
		}
		bounds = append(bounds, node)
	}
	return query.GlobalSpace(bounds)
}
