package experiments

import (
	"fmt"
	"strings"
	"time"
)

// Report runs the complete reproduction — every paper table and
// figure, the drift/sweep/communication/reuse extensions and the
// ablations — and assembles one markdown document, so a single command
// regenerates the evidence behind EXPERIMENTS.md at any scale.
func Report(opts Options) (string, error) {
	opts = opts.WithDefaults()
	var b strings.Builder
	start := time.Now()
	fmt.Fprintf(&b, "# QENS reproduction report\n\n")
	fmt.Fprintf(&b, "Configuration: %d nodes x %d samples, %d queries, K=%d, ε=%.2f, ℓ=%d, E=%d, model=%s, seed=%d.\n\n",
		opts.Nodes, opts.SamplesPerNode, opts.Queries, opts.ClusterK,
		opts.Epsilon, opts.TopL, opts.LocalEpochs, opts.Model, opts.Seed)

	type section struct {
		title string
		run   func() (fmt.Stringer, error)
	}
	sections := []section{
		{"Table I — homogeneous participants", func() (fmt.Stringer, error) { return TableI(opts) }},
		{"Table II — heterogeneous participants", func() (fmt.Stringer, error) { return TableII(opts) }},
		{"Figure 6 — query vs node data spaces", func() (fmt.Stringer, error) { return Figure6(opts) }},
		{"Figure 7 — mechanism comparison", func() (fmt.Stringer, error) { return Figure7(opts) }},
		{"Figure 8 — training time", func() (fmt.Stringer, error) { return Figure8(opts) }},
		{"Figure 9 — data fraction", func() (fmt.Stringer, error) { return Figure9(opts) }},
		{"Model drift under sequential training", func() (fmt.Stringer, error) {
			o := opts
			o.Heterogeneity = 1
			o.FlipFraction = 0.3
			return Drift(o)
		}},
		{"Heterogeneity sweep", func() (fmt.Stringer, error) { return HeterogeneitySweep(opts, nil) }},
		{"Communication cost", func() (fmt.Stringer, error) { return CommunicationCost(opts) }},
		{"Query reuse", func() (fmt.Stringer, error) { return Reuse(opts) }},
		{"Temporal protocol", func() (fmt.Stringer, error) { return Temporal(opts) }},
		{"Multi-feature pipeline", func() (fmt.Stringer, error) { return MultiFeature(opts, nil) }},
		{"Ablation: K", func() (fmt.Stringer, error) { return AblationK(opts, nil) }},
		{"Ablation: ε", func() (fmt.Stringer, error) { return AblationEpsilon(opts, nil) }},
		{"Ablation: ℓ", func() (fmt.Stringer, error) { return AblationTopL(opts, nil) }},
		{"Ablation: ψ", func() (fmt.Stringer, error) { return AblationPsi(opts, nil) }},
		{"Ablation: aggregation", func() (fmt.Stringer, error) { return AblationAggregation(opts) }},
	}
	for _, s := range sections {
		res, err := s.run()
		if err != nil {
			return "", fmt.Errorf("experiments: report section %q: %w", s.title, err)
		}
		fmt.Fprintf(&b, "## %s\n\n```\n%s```\n\n", s.title, res.String())
	}
	fmt.Fprintf(&b, "Generated in %s.\n", time.Since(start).Round(time.Millisecond))
	return b.String(), nil
}
