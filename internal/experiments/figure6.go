package experiments

import (
	"fmt"
	"strings"

	"qens/internal/geometry"
	"qens/internal/selection"
)

// Figure6Cluster describes one cluster's relation to the query.
type Figure6Cluster struct {
	Bounds     geometry.Rect
	Size       int
	Overlap    float64
	Supporting bool
}

// Figure6Node is one node's view in the Fig. 6 rendering.
type Figure6Node struct {
	NodeID string
	Bounds geometry.Rect
	// Clusters are the node's K quantization cells.
	Clusters []Figure6Cluster
	// NeededSamples counts samples in supporting clusters (Fig. 6b,
	// "the actual data required by the query").
	NeededSamples int
	// TotalSamples is the node's whole dataset (Fig. 6a).
	TotalSamples int
}

// Figure6Result contrasts a query's data requirements against the
// available data spaces of a few nodes.
type Figure6Result struct {
	Query geometry.Rect
	Nodes []Figure6Node
}

// String renders the per-node needed-vs-available contrast.
func (r Figure6Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 6 — query %v projected onto node data spaces\n", r.Query)
	for _, n := range r.Nodes {
		fmt.Fprintf(&b, "%s: needs %d of %d samples (%.1f%%) across %d/%d supporting clusters\n",
			n.NodeID, n.NeededSamples, n.TotalSamples,
			100*float64(n.NeededSamples)/float64(max(1, n.TotalSamples)),
			countSupporting(n.Clusters), len(n.Clusters))
		for i, c := range n.Clusters {
			marker := " "
			if c.Supporting {
				marker = "*"
			}
			fmt.Fprintf(&b, "  %s cluster %d: %v  h=%.3f size=%d\n", marker, i, c.Bounds, c.Overlap, c.Size)
		}
	}
	return b.String()
}

func countSupporting(cs []Figure6Cluster) int {
	n := 0
	for _, c := range cs {
		if c.Supporting {
			n++
		}
	}
	return n
}

// Figure6 reproduces the Fig. 6 contrast for the first query of the
// workload over the first three nodes (the paper plots 3 nodes).
func Figure6(opts Options) (*Figure6Result, error) {
	opts = opts.WithDefaults()
	if opts.Queries < 1 {
		opts.Queries = 1
	}
	env, err := NewEnvironment(opts)
	if err != nil {
		return nil, err
	}
	q := env.Queries[0]
	summaries, err := env.Fleet.Leader.Summaries()
	if err != nil {
		return nil, err
	}
	ranks, err := selection.RankNodes(q, summaries, opts.Epsilon)
	if err != nil {
		return nil, err
	}
	nNodes := 3
	if nNodes > len(summaries) {
		nNodes = len(summaries)
	}
	out := &Figure6Result{Query: q.Bounds}
	for i := 0; i < nNodes; i++ {
		s := summaries[i]
		r := ranks[i]
		node := Figure6Node{NodeID: s.NodeID, TotalSamples: s.TotalSamples}
		bounds := s.Clusters[0].Bounds.Clone()
		supporting := map[int]bool{}
		for _, k := range r.Supporting {
			supporting[k] = true
		}
		for k, c := range s.Clusters {
			bounds = bounds.Union(c.Bounds)
			fc := Figure6Cluster{
				Bounds:     c.Bounds,
				Size:       c.Size,
				Overlap:    r.Overlaps[k],
				Supporting: supporting[k],
			}
			if fc.Supporting {
				node.NeededSamples += c.Size
			}
			node.Clusters = append(node.Clusters, fc)
		}
		node.Bounds = bounds
		out.Nodes = append(out.Nodes, node)
	}
	return out, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
