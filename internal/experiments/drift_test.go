package experiments

import (
	"strings"
	"testing"
)

func driftOpts() Options {
	o := quickOpts()
	o.Heterogeneity = 1
	o.FlipFraction = 0.3 // guarantee an adversarial node on the naive path
	o.Queries = 20       // more chances to find a suitable query
	return o
}

func TestDrift(t *testing.T) {
	res, err := Drift(driftOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.QueryDrivenPath) < 2 {
		t.Fatalf("query-driven path too short: %v", res.QueryDrivenPath)
	}
	if len(res.NaivePath) != 6 { // all nodes
		t.Fatalf("naive path visited %d nodes, want 6", len(res.NaivePath))
	}
	if len(res.QueryDrivenLoss) != len(res.QueryDrivenPath) ||
		len(res.NaiveLoss) != len(res.NaivePath) {
		t.Fatal("loss/path length mismatch")
	}
	// The motivating claim: training on irrelevant data drags the
	// final model down relative to the query-driven path.
	qd, naive := res.FinalLosses()
	if qd >= naive {
		t.Fatalf("query-driven final loss %v not below naive %v", qd, naive)
	}
	if !strings.Contains(res.String(), "drift") {
		t.Fatal("rendering broken")
	}
}

func TestDriftNaiveRegression(t *testing.T) {
	res, err := Drift(driftOpts())
	if err != nil {
		t.Fatal(err)
	}
	// With sign-flipped nodes on the naive path there must be at
	// least one visit that increases the loss (the forgetting jump).
	if res.MaxNaiveRegression() <= 0 {
		t.Fatalf("no forgetting jump on the naive path: %v", res.NaiveLoss)
	}
}

func TestDriftDeterministic(t *testing.T) {
	a, err := Drift(driftOpts())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Drift(driftOpts())
	if err != nil {
		t.Fatal(err)
	}
	if a.QueryID != b.QueryID || len(a.NaiveLoss) != len(b.NaiveLoss) {
		t.Fatal("drift experiment not deterministic")
	}
}
