package dataset

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// ColumnStats summarizes one column.
type ColumnStats struct {
	Name   string
	Min    float64
	Max    float64
	Mean   float64
	StdDev float64
	// Quartiles holds the 25th/50th/75th percentiles.
	Quartiles [3]float64
}

// Describe computes per-column summary statistics, in column order.
func (d *Dataset) Describe() ([]ColumnStats, error) {
	if d.Len() == 0 {
		return nil, ErrEmpty
	}
	out := make([]ColumnStats, len(d.columns))
	n := float64(d.Len())
	for j, name := range d.columns {
		vals := make([]float64, d.Len())
		sum := 0.0
		for i, row := range d.rows {
			vals[i] = row[j]
			sum += row[j]
		}
		sort.Float64s(vals)
		mean := sum / n
		sq := 0.0
		for _, v := range vals {
			dv := v - mean
			sq += dv * dv
		}
		out[j] = ColumnStats{
			Name:   name,
			Min:    vals[0],
			Max:    vals[len(vals)-1],
			Mean:   mean,
			StdDev: math.Sqrt(sq / n),
			Quartiles: [3]float64{
				percentile(vals, 0.25),
				percentile(vals, 0.50),
				percentile(vals, 0.75),
			},
		}
	}
	return out, nil
}

// percentile interpolates the p-quantile of sorted values.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := p * float64(len(sorted)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[len(sorted)-1]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// DescribeString renders Describe as an aligned table.
func (d *Dataset) DescribeString() (string, error) {
	stats, err := d.Describe()
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %10s %10s %10s %10s %10s %10s %10s\n",
		"column", "min", "p25", "median", "p75", "max", "mean", "stddev")
	for _, s := range stats {
		name := s.Name
		if name == d.TargetName() {
			name += "*"
		}
		fmt.Fprintf(&b, "%-12s %10.3f %10.3f %10.3f %10.3f %10.3f %10.3f %10.3f\n",
			name, s.Min, s.Quartiles[0], s.Quartiles[1], s.Quartiles[2], s.Max, s.Mean, s.StdDev)
	}
	return b.String(), nil
}
