package dataset

import (
	"math"
	"testing"

	"qens/internal/geometry"
	"qens/internal/rng"
)

func twoColDataset(t *testing.T, rows [][]float64) *Dataset {
	t.Helper()
	d := MustNew([]string{"x", "y"}, "y")
	for _, r := range rows {
		d.MustAppend(r)
	}
	return d
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, "y"); err == nil {
		t.Fatal("accepted no columns")
	}
	if _, err := New([]string{"x", "y"}, "z"); err == nil {
		t.Fatal("accepted unknown target")
	}
	if _, err := New([]string{"x", "x"}, "x"); err == nil {
		t.Fatal("accepted duplicate columns")
	}
	d, err := New([]string{"a", "b", "c"}, "b")
	if err != nil {
		t.Fatal(err)
	}
	if d.TargetIndex() != 1 || d.TargetName() != "b" || d.Dims() != 3 {
		t.Fatalf("schema wrong: %v", d)
	}
}

func TestAppendValidation(t *testing.T) {
	d := MustNew([]string{"x", "y"}, "y")
	if err := d.Append([]float64{1}); err == nil {
		t.Fatal("accepted short row")
	}
	if err := d.Append([]float64{1, math.NaN()}); err == nil {
		t.Fatal("accepted NaN")
	}
	if err := d.Append([]float64{1, math.Inf(1)}); err == nil {
		t.Fatal("accepted Inf")
	}
	if err := d.Append([]float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	if d.Len() != 1 {
		t.Fatalf("Len = %d", d.Len())
	}
}

func TestAppendCopies(t *testing.T) {
	d := MustNew([]string{"x", "y"}, "y")
	row := []float64{1, 2}
	d.MustAppend(row)
	row[0] = 99
	if d.Row(0)[0] != 1 {
		t.Fatal("Append aliases caller slice")
	}
}

func TestColumnAccess(t *testing.T) {
	d := twoColDataset(t, [][]float64{{1, 10}, {2, 20}, {3, 30}})
	xs, err := d.Column("x")
	if err != nil {
		t.Fatal(err)
	}
	if xs[0] != 1 || xs[2] != 3 {
		t.Fatalf("Column x = %v", xs)
	}
	if _, err := d.Column("nope"); err == nil {
		t.Fatal("unknown column accepted")
	}
	if d.ColumnIndex("y") != 1 || d.ColumnIndex("zz") != -1 {
		t.Fatal("ColumnIndex wrong")
	}
}

func TestXY(t *testing.T) {
	d := MustNew([]string{"a", "t", "b"}, "t")
	d.MustAppend([]float64{1, 100, 2})
	d.MustAppend([]float64{3, 200, 4})
	x, y := d.XY()
	if len(x) != 2 || len(x[0]) != 2 || x[0][0] != 1 || x[0][1] != 2 {
		t.Fatalf("X = %v", x)
	}
	if y[0] != 100 || y[1] != 200 {
		t.Fatalf("Y = %v", y)
	}
	names := d.FeatureNames()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("FeatureNames = %v", names)
	}
}

func TestCloneMergeSubset(t *testing.T) {
	d := twoColDataset(t, [][]float64{{1, 10}, {2, 20}})
	c := d.Clone()
	c.Row(0)[0] = 99
	if d.Row(0)[0] != 1 {
		t.Fatal("Clone aliases rows")
	}
	other := twoColDataset(t, [][]float64{{3, 30}})
	if err := d.Merge(other); err != nil {
		t.Fatal(err)
	}
	if d.Len() != 3 {
		t.Fatalf("merged Len = %d", d.Len())
	}
	diff := MustNew([]string{"x", "z"}, "z")
	if err := d.Merge(diff); err == nil {
		t.Fatal("merged different schema")
	}
	sub := d.Subset([]int{2, 0})
	if sub.Len() != 2 || sub.Row(0)[0] != 3 || sub.Row(1)[0] != 1 {
		t.Fatalf("Subset wrong: %v %v", sub.Row(0), sub.Row(1))
	}
}

func TestBoundsAndFilter(t *testing.T) {
	d := twoColDataset(t, [][]float64{{1, 10}, {5, 50}, {3, 30}})
	b, ok := d.Bounds()
	if !ok {
		t.Fatal("expected bounds")
	}
	if b.Min[0] != 1 || b.Max[0] != 5 || b.Min[1] != 10 || b.Max[1] != 50 {
		t.Fatalf("Bounds = %v", b)
	}
	if _, ok := MustNew([]string{"x", "y"}, "y").Bounds(); ok {
		t.Fatal("empty dataset has bounds")
	}
	rect := geometry.MustRect([]float64{2, 0}, []float64{4, 100})
	filtered := d.FilterInRect(rect)
	if filtered.Len() != 1 || filtered.Row(0)[0] != 3 {
		t.Fatalf("FilterInRect = %v", filtered)
	}
}

func TestSplit(t *testing.T) {
	d := MustNew([]string{"x", "y"}, "y")
	for i := 0; i < 100; i++ {
		d.MustAppend([]float64{float64(i), float64(i)})
	}
	train, test := d.Split(0.2, rng.New(1))
	if train.Len() != 80 || test.Len() != 20 {
		t.Fatalf("split sizes %d/%d", train.Len(), test.Len())
	}
	// Deterministic for the same seed.
	train2, _ := d.Split(0.2, rng.New(1))
	if train2.Row(0)[0] != train.Row(0)[0] {
		t.Fatal("split not deterministic")
	}
	// Disjoint and covering.
	seen := map[float64]int{}
	for i := 0; i < train.Len(); i++ {
		seen[train.Row(i)[0]]++
	}
	for i := 0; i < test.Len(); i++ {
		seen[test.Row(i)[0]]++
	}
	if len(seen) != 100 {
		t.Fatalf("split lost rows: %d unique", len(seen))
	}
	for v, c := range seen {
		if c != 1 {
			t.Fatalf("row %v appears %d times", v, c)
		}
	}
}

func TestSplitPanicsOnBadFraction(t *testing.T) {
	d := twoColDataset(t, [][]float64{{1, 1}})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	d.Split(1.0, rng.New(1))
}

func TestSample(t *testing.T) {
	d := MustNew([]string{"x", "y"}, "y")
	for i := 0; i < 50; i++ {
		d.MustAppend([]float64{float64(i), 0})
	}
	s := d.Sample(10, rng.New(2))
	if s.Len() != 10 {
		t.Fatalf("Sample len %d", s.Len())
	}
	all := d.Sample(500, rng.New(2))
	if all.Len() != 50 {
		t.Fatalf("oversample len %d", all.Len())
	}
}

func TestProject(t *testing.T) {
	d := MustNew([]string{"a", "b", "c"}, "c")
	d.MustAppend([]float64{1, 2, 3})
	p, err := d.Project([]string{"c", "a"}, "c")
	if err != nil {
		t.Fatal(err)
	}
	if p.Dims() != 2 || p.Row(0)[0] != 3 || p.Row(0)[1] != 1 {
		t.Fatalf("Project row = %v", p.Row(0))
	}
	if p.TargetName() != "c" {
		t.Fatalf("target = %s", p.TargetName())
	}
	if _, err := d.Project([]string{"zz"}, "zz"); err == nil {
		t.Fatal("projected unknown column")
	}
}

func TestSplitTemporal(t *testing.T) {
	d := MustNew([]string{"x", "y"}, "y")
	for i := 0; i < 10; i++ {
		d.MustAppend([]float64{float64(i), 0})
	}
	train, test := d.SplitTemporal(0.3)
	if train.Len() != 7 || test.Len() != 3 {
		t.Fatalf("split sizes %d/%d", train.Len(), test.Len())
	}
	// Order preserved: training is the prefix, test the suffix.
	if train.Row(0)[0] != 0 || train.Row(6)[0] != 6 {
		t.Fatalf("train rows reordered: %v ... %v", train.Row(0), train.Row(6))
	}
	if test.Row(0)[0] != 7 || test.Row(2)[0] != 9 {
		t.Fatalf("test rows wrong: %v ... %v", test.Row(0), test.Row(2))
	}
}

func TestSplitTemporalPanics(t *testing.T) {
	d := MustNew([]string{"x", "y"}, "y")
	d.MustAppend([]float64{1, 2})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	d.SplitTemporal(-0.1)
}
