package dataset

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadCSV hardens the codec against malformed inputs: whatever the
// bytes, ReadCSV must either return an error or a structurally valid
// dataset that round-trips.
func FuzzReadCSV(f *testing.F) {
	f.Add("x,y*\n1,2\n3,4\n")
	f.Add("x,y\n1,2\n")
	f.Add("a*,b\n-1e300,0.5\n")
	f.Add("")
	f.Add("x,y\n1\n")
	f.Add("x,y*,z*\n1,2,3\n")
	f.Fuzz(func(t *testing.T, in string) {
		d, err := ReadCSV(strings.NewReader(in))
		if err != nil {
			return // rejection is always acceptable
		}
		if d.Dims() == 0 {
			t.Fatal("accepted dataset with no columns")
		}
		if d.TargetIndex() < 0 || d.TargetIndex() >= d.Dims() {
			t.Fatalf("target index %d out of range", d.TargetIndex())
		}
		// Round-trip: what we write must read back equal.
		var buf bytes.Buffer
		if err := d.WriteCSV(&buf); err != nil {
			t.Fatalf("write after successful read: %v", err)
		}
		back, err := ReadCSV(&buf)
		if err != nil {
			t.Fatalf("re-read own output: %v", err)
		}
		if !d.SameSchema(back) || back.Len() != d.Len() {
			t.Fatal("round-trip changed the dataset")
		}
		for i := 0; i < d.Len(); i++ {
			for j, v := range d.Row(i) {
				if back.Row(i)[j] != v {
					t.Fatalf("round-trip changed row %d col %d", i, j)
				}
			}
		}
	})
}
