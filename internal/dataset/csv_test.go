package dataset

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestCSVRoundTrip(t *testing.T) {
	d := MustNew([]string{"TEMP", "PM2.5"}, "PM2.5")
	d.MustAppend([]float64{12.5, 80.25})
	d.MustAppend([]float64{-3, 140})

	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !d.SameSchema(got) {
		t.Fatalf("schema changed: %v vs %v", d.Columns(), got.Columns())
	}
	if got.Len() != 2 || got.Row(0)[0] != 12.5 || got.Row(1)[1] != 140 {
		t.Fatalf("rows changed: %v", got.Rows())
	}
}

func TestCSVTargetMarker(t *testing.T) {
	in := "x,y*,z\n1,2,3\n"
	d, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if d.TargetName() != "y" {
		t.Fatalf("target = %s, want y", d.TargetName())
	}
}

func TestCSVDefaultsToLastColumn(t *testing.T) {
	in := "x,y,z\n1,2,3\n"
	d, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if d.TargetName() != "z" {
		t.Fatalf("target = %s, want z", d.TargetName())
	}
}

func TestCSVErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"double target", "x*,y*\n1,2\n"},
		{"short row", "x,y\n1\n"},
		{"non numeric", "x,y\n1,abc\n"},
		{"nan", "x,y\n1,NaN\n"},
	}
	for _, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c.in)); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestSaveLoadFile(t *testing.T) {
	d := MustNew([]string{"a", "b"}, "b")
	d.MustAppend([]float64{1, 2})
	path := filepath.Join(t.TempDir(), "data.csv")
	if err := d.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 1 || got.Row(0)[1] != 2 {
		t.Fatalf("loaded %v", got.Rows())
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing.csv")); err == nil {
		t.Fatal("expected error loading missing file")
	}
}
