package dataset

import (
	"math"
	"testing"
	"testing/quick"
)

func TestStandardScaler(t *testing.T) {
	x := [][]float64{{1, 10}, {2, 20}, {3, 30}}
	s, err := FitStandard(x)
	if err != nil {
		t.Fatal(err)
	}
	if s.Mean[0] != 2 || s.Mean[1] != 20 {
		t.Fatalf("means %v", s.Mean)
	}
	out := s.Transform(x)
	// Column means of the transformed data should be ~0 and the
	// population variances ~1.
	for j := 0; j < 2; j++ {
		mean, sq := 0.0, 0.0
		for i := range out {
			mean += out[i][j]
		}
		mean /= 3
		for i := range out {
			d := out[i][j] - mean
			sq += d * d
		}
		variance := sq / 3
		if math.Abs(mean) > 1e-12 || math.Abs(variance-1) > 1e-12 {
			t.Fatalf("col %d: mean %v variance %v", j, mean, variance)
		}
	}
	back := s.Inverse(out)
	for i := range x {
		for j := range x[i] {
			if math.Abs(back[i][j]-x[i][j]) > 1e-9 {
				t.Fatalf("inverse mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestStandardScalerConstantColumn(t *testing.T) {
	x := [][]float64{{5, 1}, {5, 2}}
	s, err := FitStandard(x)
	if err != nil {
		t.Fatal(err)
	}
	out := s.Transform(x)
	if out[0][0] != 0 || out[1][0] != 0 {
		t.Fatalf("constant column should map to 0: %v", out)
	}
	back := s.Inverse(out)
	if back[0][0] != 5 {
		t.Fatalf("inverse of constant column: %v", back)
	}
}

func TestStandardScalerEmpty(t *testing.T) {
	if _, err := FitStandard(nil); err == nil {
		t.Fatal("expected error on empty fit")
	}
}

func TestMinMaxScaler(t *testing.T) {
	x := [][]float64{{0, -10}, {10, 10}, {5, 0}}
	s, err := FitMinMax(x)
	if err != nil {
		t.Fatal(err)
	}
	out := s.Transform(x)
	for i := range out {
		for j := range out[i] {
			if out[i][j] < 0 || out[i][j] > 1 {
				t.Fatalf("value %v outside [0,1]", out[i][j])
			}
		}
	}
	if out[0][0] != 0 || out[1][0] != 1 || out[2][0] != 0.5 {
		t.Fatalf("minmax col0 = %v %v %v", out[0][0], out[1][0], out[2][0])
	}
	back := s.Inverse(out)
	for i := range x {
		for j := range x[i] {
			if math.Abs(back[i][j]-x[i][j]) > 1e-9 {
				t.Fatalf("inverse mismatch")
			}
		}
	}
}

func TestMinMaxConstantColumn(t *testing.T) {
	x := [][]float64{{7}, {7}}
	s, _ := FitMinMax(x)
	out := s.Transform(x)
	if out[0][0] != 0 {
		t.Fatalf("constant minmax = %v", out[0][0])
	}
}

func TestScaleVector(t *testing.T) {
	s, _ := FitStandard([][]float64{{0}, {10}})
	v := s.ScaleVector([]float64{5})
	if v[0] != 0 {
		t.Fatalf("ScaleVector = %v", v)
	}
}

func TestScaleTarget(t *testing.T) {
	y := []float64{10, 20, 30}
	scaled, inv, err := ScaleTarget(y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(scaled[0]+scaled[2]) > 1e-12 || scaled[1] != 0 {
		t.Fatalf("scaled = %v", scaled)
	}
	for i := range y {
		if math.Abs(inv(scaled[i])-y[i]) > 1e-9 {
			t.Fatalf("inverse target mismatch at %d", i)
		}
	}
	if _, _, err := ScaleTarget(nil); err == nil {
		t.Fatal("expected error for empty target")
	}
}

func TestScaleTargetConstant(t *testing.T) {
	scaled, inv, err := ScaleTarget([]float64{4, 4})
	if err != nil {
		t.Fatal(err)
	}
	if scaled[0] != 0 || inv(0) != 4 {
		t.Fatalf("constant target scaling: %v, inv(0)=%v", scaled, inv(0))
	}
}

// Property: standard scaling round-trips arbitrary finite matrices.
func TestStandardScalerRoundTrip(t *testing.T) {
	f := func(raw [4][3]float64) bool {
		x := make([][]float64, len(raw))
		for i, r := range raw {
			for _, v := range r {
				if math.IsNaN(v) || math.Abs(v) > 1e100 {
					return true
				}
			}
			x[i] = []float64{r[0], r[1], r[2]}
		}
		s, err := FitStandard(x)
		if err != nil {
			return false
		}
		back := s.Inverse(s.Transform(x))
		for i := range x {
			for j := range x[i] {
				tol := 1e-6 * math.Max(1, math.Abs(x[i][j]))
				if math.Abs(back[i][j]-x[i][j]) > tol {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
