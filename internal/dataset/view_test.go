package dataset

import (
	"context"
	"errors"
	"testing"

	"qens/internal/geometry"
)

func viewFixture(t *testing.T) *Dataset {
	t.Helper()
	d := MustNew([]string{"a", "b", "y"}, "y")
	rows := [][]float64{
		{1, 10, 100},
		{2, 20, 200},
		{3, 30, 300},
		{4, 40, 400},
		{5, 50, 500},
	}
	for _, r := range rows {
		d.MustAppend(r)
	}
	return d
}

func TestViewIdentityAndSubset(t *testing.T) {
	d := viewFixture(t)
	v := d.View()
	if v.Len() != 5 || v.Dims() != 3 || v.FeatureDims() != 2 {
		t.Fatalf("identity view shape: len=%d dims=%d fd=%d", v.Len(), v.Dims(), v.FeatureDims())
	}
	sub := d.Subset([]int{4, 0, 2})
	if sub.Len() != 3 {
		t.Fatalf("subset len %d", sub.Len())
	}
	if got := sub.Row(0)[0]; got != 5 {
		t.Fatalf("subset row order: got %v", got)
	}
	if sub.Index(1) != 0 {
		t.Fatalf("subset Index(1) = %d", sub.Index(1))
	}
	// Views must copy no row data: the view row aliases dataset storage.
	if &sub.Row(0)[0] != &d.Row(4)[0] {
		t.Fatal("view row does not alias dataset storage")
	}
}

func TestViewOfNilIsEmpty(t *testing.T) {
	d := viewFixture(t)
	if got := d.ViewOf(nil).Len(); got != 0 {
		t.Fatalf("ViewOf(nil) len = %d, want 0 (must not alias the identity view)", got)
	}
}

func TestViewXYMatchesDatasetXY(t *testing.T) {
	d := viewFixture(t)
	wantX, wantY := d.XY()
	gotX, gotY := d.View().XY()
	for i := range wantY {
		if gotY[i] != wantY[i] {
			t.Fatalf("y[%d] = %v want %v", i, gotY[i], wantY[i])
		}
		for j := range wantX[i] {
			if gotX[i][j] != wantX[i][j] {
				t.Fatalf("x[%d][%d] = %v want %v", i, j, gotX[i][j], wantX[i][j])
			}
		}
	}
}

func TestViewXYIntoReusesBuffers(t *testing.T) {
	d := viewFixture(t)
	v := d.Subset([]int{1, 3})
	x, y := v.XYInto(nil, nil)
	if len(x) != 4 || len(y) != 2 {
		t.Fatalf("flat lens %d/%d", len(x), len(y))
	}
	if x[0] != 2 || x[1] != 20 || y[0] != 200 || x[2] != 4 || y[1] != 400 {
		t.Fatalf("flat contents %v / %v", x, y)
	}
	// Re-filling with the returned buffers must not allocate.
	allocs := testing.AllocsPerRun(100, func() {
		x, y = v.XYInto(x[:0], y[:0])
	})
	if allocs != 0 {
		t.Fatalf("XYInto with warm buffers allocates %v per run", allocs)
	}
}

func TestViewForEachBatch(t *testing.T) {
	d := viewFixture(t)
	v := d.View()
	var got []float64
	var batches int
	err := v.ForEachBatch(context.Background(), 2, nil, nil, func(x, y []float64) error {
		batches++
		got = append(got, y...)
		if len(x) != len(y)*v.FeatureDims() {
			t.Fatalf("batch stride mismatch: %d x for %d y", len(x), len(y))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if batches != 3 || len(got) != 5 || got[0] != 100 || got[4] != 500 {
		t.Fatalf("batches=%d got=%v", batches, got)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err = v.ForEachBatch(ctx, 2, nil, nil, func(x, y []float64) error { return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled ForEachBatch = %v", err)
	}
}

func TestViewPinsRowsAcrossAppend(t *testing.T) {
	d := viewFixture(t)
	v := d.View()
	// Force reallocation of the outer rows slice.
	for i := 0; i < 64; i++ {
		d.MustAppend([]float64{9, 9, 9})
	}
	if v.Len() != 5 {
		t.Fatalf("view grew with parent: len %d", v.Len())
	}
	if v.Row(4)[2] != 500 {
		t.Fatalf("view row mutated: %v", v.Row(4))
	}
}

func TestFilterInRectViewAndEmptyMatch(t *testing.T) {
	d := viewFixture(t)
	rect := geometry.Rect{Min: []float64{2, 0, 0}, Max: []float64{4, 100, 1000}}
	v := d.FilterInRect(rect)
	if v.Len() != 3 {
		t.Fatalf("filter len %d", v.Len())
	}
	empty := d.FilterInRect(geometry.Rect{Min: []float64{1e6, 1e6, 1e6}, Max: []float64{2e6, 2e6, 2e6}})
	if empty.Len() != 0 {
		t.Fatalf("disjoint filter len %d, want 0", empty.Len())
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := d.FilterInRectContext(ctx, rect); !errors.Is(err, context.Canceled) {
		t.Fatal("canceled filter did not surface ctx error")
	}
}

func TestViewMaterializeAndCopyVariants(t *testing.T) {
	d := viewFixture(t)
	v := d.Subset([]int{0, 2})
	m := v.Materialize()
	if m.Len() != 2 || m.Dims() != 3 {
		t.Fatalf("materialize shape %d x %d", m.Len(), m.Dims())
	}
	// Materialized rows are copies: mutating them must not touch d.
	m.Row(0)[0] = -1
	if d.Row(0)[0] != 1 {
		t.Fatal("materialize aliases source rows")
	}
	sc := d.SubsetCopy([]int{1})
	sc.Row(0)[0] = -5
	if d.Row(1)[0] != 2 {
		t.Fatal("SubsetCopy aliases source rows")
	}
	fc := d.FilterInRectCopy(geometry.Rect{Min: []float64{1, 10, 100}, Max: []float64{1, 10, 100}})
	if fc.Len() != 1 {
		t.Fatalf("FilterInRectCopy len %d", fc.Len())
	}
}

func TestCopyAppendIsCopyOnWrite(t *testing.T) {
	d := viewFixture(t)
	v := d.View()
	d2, err := d.CopyAppend([][]float64{{6, 60, 600}})
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 5 || d2.Len() != 6 {
		t.Fatalf("lens %d/%d", d.Len(), d2.Len())
	}
	if v.Len() != 5 {
		t.Fatalf("pinned view len %d", v.Len())
	}
	// Shared storage: existing rows alias, the appended row does not
	// exist in the original.
	if &d2.Row(0)[0] != &d.Row(0)[0] {
		t.Fatal("CopyAppend deep-copied shared rows")
	}
	if _, err := d.CopyAppend([][]float64{{1, 2}}); err == nil {
		t.Fatal("CopyAppend accepted a short row")
	}
}
