// Package dataset provides the data substrate of the reproduction: the
// sample/dataset model shared by every node, a CSV codec, feature
// scaling, train/test splitting, and a synthetic generator for the
// Beijing Multi-Site Air-Quality data the paper evaluates on (see
// DESIGN.md §4 for the substitution rationale).
//
// Following the paper (§III-B), a sample ξ = (x, y) is a point in the
// joint d-dimensional data space; clustering and query boundaries
// operate over all columns, while model training splits the columns
// into inputs x (every non-target column) and the desired output y
// (the designated target column).
package dataset

import (
	"context"
	"errors"
	"fmt"
	"math"

	"qens/internal/geometry"
	"qens/internal/rng"
)

// Dataset is an in-memory table of float64 samples over named columns.
// One column is designated as the learning target. The zero value is
// not usable; construct with New.
type Dataset struct {
	columns []string
	target  int // index into columns
	rows    [][]float64
}

// Common errors returned by dataset operations.
var (
	ErrNoColumns     = errors.New("dataset: no columns")
	ErrBadTarget     = errors.New("dataset: target column out of range")
	ErrRowWidth      = errors.New("dataset: row width mismatch")
	ErrEmpty         = errors.New("dataset: empty dataset")
	ErrColumnUnknown = errors.New("dataset: unknown column")
)

// New creates an empty dataset over the given columns with the target
// column named by target.
func New(columns []string, target string) (*Dataset, error) {
	if len(columns) == 0 {
		return nil, ErrNoColumns
	}
	idx := -1
	seen := make(map[string]bool, len(columns))
	for i, c := range columns {
		if seen[c] {
			return nil, fmt.Errorf("dataset: duplicate column %q", c)
		}
		seen[c] = true
		if c == target {
			idx = i
		}
	}
	if idx < 0 {
		return nil, fmt.Errorf("%w: %q", ErrColumnUnknown, target)
	}
	cols := append([]string(nil), columns...)
	return &Dataset{columns: cols, target: idx}, nil
}

// MustNew is New that panics on error, for tests and examples.
func MustNew(columns []string, target string) *Dataset {
	d, err := New(columns, target)
	if err != nil {
		panic(err)
	}
	return d
}

// Append adds a sample row. The row is copied.
func (d *Dataset) Append(row []float64) error {
	if len(row) != len(d.columns) {
		return fmt.Errorf("%w: got %d values for %d columns", ErrRowWidth, len(row), len(d.columns))
	}
	for i, v := range row {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("dataset: non-finite value %v in column %q", v, d.columns[i])
		}
	}
	d.rows = append(d.rows, append([]float64(nil), row...))
	return nil
}

// MustAppend is Append that panics on error.
func (d *Dataset) MustAppend(row []float64) {
	if err := d.Append(row); err != nil {
		panic(err)
	}
}

// Len returns the number of samples m.
func (d *Dataset) Len() int { return len(d.rows) }

// Dims returns the number of columns (the paper's d, joint space).
func (d *Dataset) Dims() int { return len(d.columns) }

// Columns returns the column names (a copy).
func (d *Dataset) Columns() []string { return append([]string(nil), d.columns...) }

// TargetIndex returns the index of the target column.
func (d *Dataset) TargetIndex() int { return d.target }

// TargetName returns the name of the target column.
func (d *Dataset) TargetName() string { return d.columns[d.target] }

// ColumnIndex returns the index of the named column, or -1.
func (d *Dataset) ColumnIndex(name string) int {
	for i, c := range d.columns {
		if c == name {
			return i
		}
	}
	return -1
}

// Row returns sample i. The slice aliases internal storage; callers
// must not mutate it.
func (d *Dataset) Row(i int) []float64 { return d.rows[i] }

// Rows returns all samples. The outer slice is a copy, the rows alias
// internal storage.
func (d *Dataset) Rows() [][]float64 { return append([][]float64(nil), d.rows...) }

// Column returns a copy of the values of the named column.
func (d *Dataset) Column(name string) ([]float64, error) {
	idx := d.ColumnIndex(name)
	if idx < 0 {
		return nil, fmt.Errorf("%w: %q", ErrColumnUnknown, name)
	}
	out := make([]float64, len(d.rows))
	for i, r := range d.rows {
		out[i] = r[idx]
	}
	return out, nil
}

// Clone returns a deep copy of the dataset.
func (d *Dataset) Clone() *Dataset {
	out := &Dataset{columns: append([]string(nil), d.columns...), target: d.target}
	out.rows = make([][]float64, len(d.rows))
	for i, r := range d.rows {
		out.rows[i] = append([]float64(nil), r...)
	}
	return out
}

// Empty returns a dataset with the same schema and no rows.
func (d *Dataset) Empty() *Dataset {
	return &Dataset{columns: append([]string(nil), d.columns...), target: d.target}
}

// SameSchema reports whether other has identical columns and target.
func (d *Dataset) SameSchema(other *Dataset) bool {
	if other == nil || d.target != other.target || len(d.columns) != len(other.columns) {
		return false
	}
	for i, c := range d.columns {
		if other.columns[i] != c {
			return false
		}
	}
	return true
}

// Merge appends all rows of other, which must share the schema.
func (d *Dataset) Merge(other *Dataset) error {
	if !d.SameSchema(other) {
		return errors.New("dataset: merge with different schema")
	}
	for _, r := range other.rows {
		d.rows = append(d.rows, append([]float64(nil), r...))
	}
	return nil
}

// Subset returns the zero-copy view over the rows at the given
// indices (the index slice is adopted, not copied). Callers that need
// an independent, mutable dataset use SubsetCopy.
func (d *Dataset) Subset(indices []int) View {
	return d.ViewOf(indices)
}

// SubsetCopy returns a new dataset containing the rows at the given
// indices, deep-copied — the pre-view behaviour, kept for callers
// that go on to mutate the result.
func (d *Dataset) SubsetCopy(indices []int) *Dataset {
	out := d.Empty()
	out.rows = make([][]float64, 0, len(indices))
	for _, i := range indices {
		out.rows = append(out.rows, append([]float64(nil), d.rows[i]...))
	}
	return out
}

// CopyAppend returns a new dataset whose rows are d's current rows
// (storage shared — rows are never mutated in place) plus the given
// new rows, validated and copied. d itself is left untouched, which is
// what makes copy-on-write ingestion safe while concurrent readers
// hold views over the old dataset.
func (d *Dataset) CopyAppend(rows [][]float64) (*Dataset, error) {
	out := &Dataset{columns: append([]string(nil), d.columns...), target: d.target}
	out.rows = make([][]float64, len(d.rows), len(d.rows)+len(rows))
	copy(out.rows, d.rows)
	for i, r := range rows {
		if err := out.Append(r); err != nil {
			return nil, fmt.Errorf("dataset: append row %d: %w", i, err)
		}
	}
	return out, nil
}

// Bounds returns the tight bounding rectangle of all samples in the
// joint data space, and ok=false when the dataset is empty.
func (d *Dataset) Bounds() (geometry.Rect, bool) {
	return geometry.BoundingRect(d.rows)
}

// FilterInRect returns a zero-copy view over the samples falling
// inside rect (inclusive). rect must span the full joint space
// (Dims() dimensions). Only the matching index slice is allocated —
// no row data is copied. Callers that need a mutable dataset use
// FilterInRectCopy (or View.Materialize).
func (d *Dataset) FilterInRect(rect geometry.Rect) View {
	v, _ := d.FilterInRectContext(context.Background(), rect)
	return v
}

// filterCheckEvery is how many rows FilterInRectContext scans between
// context checks: rare enough to stay off the profile, frequent
// enough that filtering a multi-million-row node cancels promptly.
const filterCheckEvery = 4096

// FilterInRectContext is FilterInRect with cancellation: the context
// is checked every few thousand rows, so huge-node scans (the
// evaluation path filters the entire local shard per query) abandon
// work as soon as the query deadline expires.
func (d *Dataset) FilterInRectContext(ctx context.Context, rect geometry.Rect) (View, error) {
	indices := []int{} // non-nil: an empty match must not become the identity view
	for i, r := range d.rows {
		if i%filterCheckEvery == 0 {
			if err := ctx.Err(); err != nil {
				return View{}, err
			}
		}
		if rect.Contains(r) {
			indices = append(indices, i)
		}
	}
	return d.ViewOf(indices), nil
}

// FilterInRectCopy returns the samples falling inside rect as a
// deep-copied dataset — the pre-view behaviour.
func (d *Dataset) FilterInRectCopy(rect geometry.Rect) *Dataset {
	return d.FilterInRect(rect).Materialize()
}

// XY splits the samples into a feature matrix X (every column except
// the target) and target vector Y, both copied.
func (d *Dataset) XY() (x [][]float64, y []float64) {
	x = make([][]float64, len(d.rows))
	y = make([]float64, len(d.rows))
	for i, r := range d.rows {
		xi := make([]float64, 0, len(r)-1)
		for j, v := range r {
			if j == d.target {
				y[i] = v
				continue
			}
			xi = append(xi, v)
		}
		x[i] = xi
	}
	return x, y
}

// FeatureNames returns the non-target column names in order.
func (d *Dataset) FeatureNames() []string {
	out := make([]string, 0, len(d.columns)-1)
	for i, c := range d.columns {
		if i != d.target {
			out = append(out, c)
		}
	}
	return out
}

// Split partitions the dataset into train and test subsets with the
// given test fraction in [0, 1), shuffling with src. The split is
// deterministic for a given source.
func (d *Dataset) Split(testFraction float64, src *rng.Source) (train, test *Dataset) {
	if testFraction < 0 || testFraction >= 1 {
		panic(fmt.Sprintf("dataset: invalid test fraction %v", testFraction))
	}
	n := len(d.rows)
	perm := src.Perm(n)
	nTest := int(math.Round(float64(n) * testFraction))
	test = d.SubsetCopy(perm[:nTest])
	train = d.SubsetCopy(perm[nTest:])
	return train, test
}

// SplitTemporal splits without shuffling: the leading rows train, the
// trailing testFraction tests. This is the right split for the hourly
// sensor streams the corpus simulates — a shuffled split leaks future
// observations into training.
func (d *Dataset) SplitTemporal(testFraction float64) (train, test *Dataset) {
	if testFraction < 0 || testFraction >= 1 {
		panic(fmt.Sprintf("dataset: invalid test fraction %v", testFraction))
	}
	n := len(d.rows)
	cut := n - int(math.Round(float64(n)*testFraction))
	trainIdx := make([]int, cut)
	for i := range trainIdx {
		trainIdx[i] = i
	}
	testIdx := make([]int, n-cut)
	for i := range testIdx {
		testIdx[i] = cut + i
	}
	return d.SubsetCopy(trainIdx), d.SubsetCopy(testIdx)
}

// Shuffle returns a copy of the dataset with rows in random order.
func (d *Dataset) Shuffle(src *rng.Source) *Dataset {
	return d.SubsetCopy(src.Perm(len(d.rows)))
}

// Sample returns a uniform random subset of n rows without
// replacement; if n exceeds Len it returns a shuffled copy.
func (d *Dataset) Sample(n int, src *rng.Source) *Dataset {
	if n >= len(d.rows) {
		return d.Shuffle(src)
	}
	return d.SubsetCopy(src.SampleWithoutReplacement(len(d.rows), n))
}

// String summarizes the dataset.
func (d *Dataset) String() string {
	return fmt.Sprintf("Dataset(%d rows, %d cols, target=%s)", len(d.rows), len(d.columns), d.TargetName())
}
