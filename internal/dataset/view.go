package dataset

import (
	"context"
	"fmt"

	"qens/internal/geometry"
)

// View is a zero-copy, read-only window over a dataset: an index
// slice into the dataset's row storage. Constructing a view copies no
// sample data — only (at most) the index slice — which makes it the
// right currency for the per-query training inner loop: a node trains
// over the supporting clusters only (paper §IV, Eq. 3–4), and each
// cluster is already a materialized index slice.
//
// A View pins the row-slice header at construction time: rows later
// appended to the parent dataset are invisible to the view, and the
// view stays readable even while the parent is replaced wholesale
// (the engine's epoch-pinned snapshots rely on this). Views must
// never mutate row contents; callers that need to mutate use
// Materialize (or the *Copy dataset variants) instead.
type View struct {
	rows    [][]float64
	indices []int // nil means the identity view over all rows
	dims    int
	target  int
	schema  *Dataset
}

// View returns the zero-copy identity view over all current rows.
func (d *Dataset) View() View {
	return View{rows: d.rows, dims: len(d.columns), target: d.target, schema: d}
}

// ViewOf returns the zero-copy view over the rows at the given
// indices. The index slice is adopted, not copied; callers must not
// mutate it afterwards. Indices are validated lazily (an out-of-range
// index panics on access, like a slice index). A nil slice yields the
// empty view — the identity view is only ever built by View().
func (d *Dataset) ViewOf(indices []int) View {
	if indices == nil {
		indices = []int{}
	}
	return View{rows: d.rows, indices: indices, dims: len(d.columns), target: d.target, schema: d}
}

// Len returns the number of samples in the view.
func (v View) Len() int {
	if v.indices != nil {
		return len(v.indices)
	}
	return len(v.rows)
}

// Dims returns the number of columns (the joint-space d).
func (v View) Dims() int { return v.dims }

// FeatureDims returns the number of non-target columns.
func (v View) FeatureDims() int { return v.dims - 1 }

// TargetIndex returns the index of the target column.
func (v View) TargetIndex() int { return v.target }

// Index returns the underlying dataset row index of view position i.
func (v View) Index(i int) int {
	if v.indices != nil {
		return v.indices[i]
	}
	return i
}

// Row returns sample i of the view. The slice aliases dataset
// storage; callers must not mutate it.
func (v View) Row(i int) []float64 { return v.rows[v.Index(i)] }

// Schema returns the dataset whose schema (column names, target) the
// view was built over. The dataset's rows may have changed since; use
// the view's own accessors for data.
func (v View) Schema() *Dataset { return v.schema }

// Bounds returns the tight bounding rectangle of the viewed samples,
// and ok=false when the view is empty.
func (v View) Bounds() (geometry.Rect, bool) {
	if v.indices == nil {
		return geometry.BoundingRect(v.rows)
	}
	pts := make([][]float64, len(v.indices))
	for i, idx := range v.indices {
		pts[i] = v.rows[idx]
	}
	return geometry.BoundingRect(pts)
}

// XY splits the viewed samples into a copied feature matrix and
// target vector, mirroring Dataset.XY.
func (v View) XY() (x [][]float64, y []float64) {
	n := v.Len()
	x = make([][]float64, n)
	y = make([]float64, n)
	flat := make([]float64, n*v.FeatureDims())
	for i := 0; i < n; i++ {
		xi := flat[i*v.FeatureDims() : (i+1)*v.FeatureDims()]
		v.splitRow(v.Row(i), xi, &y[i])
		x[i] = xi
	}
	return x, y
}

// splitRow scatters one joint-space row into a feature slice and the
// target scalar.
func (v View) splitRow(row []float64, x []float64, y *float64) {
	j := 0
	for c, val := range row {
		if c == v.target {
			*y = val
			continue
		}
		x[j] = val
		j++
	}
}

// XYInto fills caller-owned flat buffers with the view's samples: x
// receives the features row-major with stride FeatureDims(), y the
// targets. Both are appended onto the given slices' zero-length
// prefixes, so passing buffers with sufficient capacity makes the
// call allocation-free; undersized buffers grow transparently. The
// returned slices are the filled prefixes.
func (v View) XYInto(x []float64, y []float64) (xs, ys []float64) {
	n := v.Len()
	fd := v.FeatureDims()
	xs = grow(x, n*fd)
	ys = grow(y, n)
	for i := 0; i < n; i++ {
		v.splitRow(v.Row(i), xs[i*fd:(i+1)*fd], &ys[i])
	}
	return xs, ys
}

// grow resizes buf to length n, reusing its capacity when possible.
func grow(buf []float64, n int) []float64 {
	if cap(buf) >= n {
		return buf[:n]
	}
	return make([]float64, n)
}

// ForEachBatch walks the view in order in chunks of at most batchSize
// samples, filling the caller-owned flat buffers and invoking fn with
// the filled prefixes (x row-major with stride FeatureDims(), y the
// targets). The context is checked before every batch, so arbitrarily
// large views stay cancellable at batch granularity. fn must not
// retain the slices across calls.
func (v View) ForEachBatch(ctx context.Context, batchSize int, x, y []float64, fn func(x, y []float64) error) error {
	if batchSize < 1 {
		return fmt.Errorf("dataset: batch size %d < 1", batchSize)
	}
	n := v.Len()
	fd := v.FeatureDims()
	x = grow(x, batchSize*fd)
	y = grow(y, batchSize)
	for start := 0; start < n; start += batchSize {
		if err := ctx.Err(); err != nil {
			return err
		}
		end := start + batchSize
		if end > n {
			end = n
		}
		m := end - start
		for i := 0; i < m; i++ {
			v.splitRow(v.Row(start+i), x[i*fd:(i+1)*fd], &y[i])
		}
		if err := fn(x[:m*fd], y[:m]); err != nil {
			return err
		}
	}
	return nil
}

// Materialize copies the viewed samples into a fresh dataset with the
// view's schema — the escape hatch for callers that need to mutate.
func (v View) Materialize() *Dataset {
	out := v.schema.Empty()
	out.rows = make([][]float64, v.Len())
	for i := range out.rows {
		out.rows[i] = append([]float64(nil), v.Row(i)...)
	}
	return out
}
