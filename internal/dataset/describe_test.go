package dataset

import (
	"math"
	"strings"
	"testing"
)

func TestDescribe(t *testing.T) {
	d := MustNew([]string{"x", "y"}, "y")
	for _, v := range []float64{1, 2, 3, 4, 5} {
		d.MustAppend([]float64{v, 10 * v})
	}
	stats, err := d.Describe()
	if err != nil {
		t.Fatal(err)
	}
	x := stats[0]
	if x.Name != "x" || x.Min != 1 || x.Max != 5 || x.Mean != 3 {
		t.Fatalf("x stats %+v", x)
	}
	if math.Abs(x.StdDev-math.Sqrt2) > 1e-12 {
		t.Fatalf("x stddev %v", x.StdDev)
	}
	if x.Quartiles[1] != 3 {
		t.Fatalf("x median %v", x.Quartiles[1])
	}
	if x.Quartiles[0] != 2 || x.Quartiles[2] != 4 {
		t.Fatalf("x quartiles %v", x.Quartiles)
	}
	y := stats[1]
	if y.Min != 10 || y.Max != 50 {
		t.Fatalf("y stats %+v", y)
	}
}

func TestDescribeEmpty(t *testing.T) {
	d := MustNew([]string{"x"}, "x")
	if _, err := d.Describe(); err == nil {
		t.Fatal("described empty dataset")
	}
}

func TestDescribeSingleRow(t *testing.T) {
	d := MustNew([]string{"x"}, "x")
	d.MustAppend([]float64{7})
	stats, err := d.Describe()
	if err != nil {
		t.Fatal(err)
	}
	s := stats[0]
	if s.Min != 7 || s.Max != 7 || s.Mean != 7 || s.StdDev != 0 {
		t.Fatalf("single-row stats %+v", s)
	}
	for _, q := range s.Quartiles {
		if q != 7 {
			t.Fatalf("single-row quartiles %v", s.Quartiles)
		}
	}
}

func TestDescribeString(t *testing.T) {
	d := MustNew([]string{"TEMP", "PM2.5"}, "PM2.5")
	d.MustAppend([]float64{10, 80})
	d.MustAppend([]float64{20, 120})
	out, err := d.DescribeString()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "TEMP") || !strings.Contains(out, "PM2.5*") {
		t.Fatalf("rendering missing columns/target marker:\n%s", out)
	}
	if !strings.Contains(out, "median") {
		t.Fatal("header missing")
	}
}

func TestPercentileInterpolation(t *testing.T) {
	sorted := []float64{0, 10}
	if got := percentile(sorted, 0.5); got != 5 {
		t.Fatalf("p50 of {0,10} = %v", got)
	}
	if got := percentile(sorted, 1.0); got != 10 {
		t.Fatalf("p100 = %v", got)
	}
	if got := percentile(sorted, 0); got != 0 {
		t.Fatalf("p0 = %v", got)
	}
}
