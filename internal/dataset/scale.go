package dataset

import (
	"errors"
	"math"
)

// Scalers normalize feature matrices before model training, mirroring
// the preprocessing the paper's Keras pipeline applies. Both scalers
// are fitted on training data only and then applied to any matrix with
// the same width, so test data never leaks into the fit.

// StandardScaler transforms each column to zero mean and unit
// variance. Columns with zero variance are left centered but unscaled.
type StandardScaler struct {
	Mean   []float64
	StdDev []float64
}

// ErrNotFitted reports use of a scaler before fitting.
var ErrNotFitted = errors.New("dataset: scaler not fitted")

// FitStandard computes column statistics from x.
func FitStandard(x [][]float64) (*StandardScaler, error) {
	if len(x) == 0 {
		return nil, ErrEmpty
	}
	d := len(x[0])
	s := &StandardScaler{Mean: make([]float64, d), StdDev: make([]float64, d)}
	for _, row := range x {
		for j, v := range row {
			s.Mean[j] += v
		}
	}
	n := float64(len(x))
	for j := range s.Mean {
		s.Mean[j] /= n
	}
	for _, row := range x {
		for j, v := range row {
			dv := v - s.Mean[j]
			s.StdDev[j] += dv * dv
		}
	}
	for j := range s.StdDev {
		s.StdDev[j] = math.Sqrt(s.StdDev[j] / n)
	}
	return s, nil
}

// Transform returns a scaled copy of x.
func (s *StandardScaler) Transform(x [][]float64) [][]float64 {
	out := make([][]float64, len(x))
	for i, row := range x {
		o := make([]float64, len(row))
		for j, v := range row {
			o[j] = v - s.Mean[j]
			if s.StdDev[j] > 0 {
				o[j] /= s.StdDev[j]
			}
		}
		out[i] = o
	}
	return out
}

// Inverse undoes the transform on a scaled copy of x.
func (s *StandardScaler) Inverse(x [][]float64) [][]float64 {
	out := make([][]float64, len(x))
	for i, row := range x {
		o := make([]float64, len(row))
		for j, v := range row {
			o[j] = v
			if s.StdDev[j] > 0 {
				o[j] *= s.StdDev[j]
			}
			o[j] += s.Mean[j]
		}
		out[i] = o
	}
	return out
}

// MinMaxScaler rescales each column into [0, 1] using the fitted
// min/max. Constant columns map to 0.
type MinMaxScaler struct {
	Min []float64
	Max []float64
}

// FitMinMax computes column ranges from x.
func FitMinMax(x [][]float64) (*MinMaxScaler, error) {
	if len(x) == 0 {
		return nil, ErrEmpty
	}
	d := len(x[0])
	s := &MinMaxScaler{Min: make([]float64, d), Max: make([]float64, d)}
	copy(s.Min, x[0])
	copy(s.Max, x[0])
	for _, row := range x[1:] {
		for j, v := range row {
			if v < s.Min[j] {
				s.Min[j] = v
			}
			if v > s.Max[j] {
				s.Max[j] = v
			}
		}
	}
	return s, nil
}

// Transform returns a rescaled copy of x.
func (s *MinMaxScaler) Transform(x [][]float64) [][]float64 {
	out := make([][]float64, len(x))
	for i, row := range x {
		o := make([]float64, len(row))
		for j, v := range row {
			span := s.Max[j] - s.Min[j]
			if span > 0 {
				o[j] = (v - s.Min[j]) / span
			}
		}
		out[i] = o
	}
	return out
}

// Inverse undoes the transform on a rescaled copy of x.
func (s *MinMaxScaler) Inverse(x [][]float64) [][]float64 {
	out := make([][]float64, len(x))
	for i, row := range x {
		o := make([]float64, len(row))
		for j, v := range row {
			o[j] = v*(s.Max[j]-s.Min[j]) + s.Min[j]
		}
		out[i] = o
	}
	return out
}

// ScaleVector applies a fitted StandardScaler to a single vector.
func (s *StandardScaler) ScaleVector(v []float64) []float64 {
	return s.Transform([][]float64{v})[0]
}

// ScaleTarget standardizes a target vector and returns the transform
// plus its inverse, used when models train on standardized labels.
func ScaleTarget(y []float64) (scaled []float64, inverse func(float64) float64, err error) {
	if len(y) == 0 {
		return nil, nil, ErrEmpty
	}
	mean, sd := 0.0, 0.0
	for _, v := range y {
		mean += v
	}
	mean /= float64(len(y))
	for _, v := range y {
		d := v - mean
		sd += d * d
	}
	sd = math.Sqrt(sd / float64(len(y)))
	scaled = make([]float64, len(y))
	for i, v := range y {
		scaled[i] = v - mean
		if sd > 0 {
			scaled[i] /= sd
		}
	}
	inverse = func(v float64) float64 {
		if sd > 0 {
			v *= sd
		}
		return v + mean
	}
	return scaled, inverse, nil
}
