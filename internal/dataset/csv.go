package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// CSV serialization. The on-disk format mirrors the UCI air-quality
// files the paper uses: a header row of column names followed by one
// numeric record per sample. The target column is recorded in the
// header by a trailing "*" marker on its name so that a round-trip
// preserves the schema (e.g. "TEMP,PRES,PM2.5*").

// WriteCSV writes the dataset to w.
func (d *Dataset) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := make([]string, len(d.columns))
	for i, c := range d.columns {
		if i == d.target {
			header[i] = c + "*"
		} else {
			header[i] = c
		}
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("dataset: write header: %w", err)
	}
	rec := make([]string, len(d.columns))
	for _, row := range d.rows {
		for j, v := range row {
			rec[j] = strconv.FormatFloat(v, 'g', -1, 64)
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("dataset: write row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV reads a dataset from r. The target column is the one whose
// header name carries a trailing "*"; if none does, the last column is
// the target (matching the layout of the UCI files, label last).
func ReadCSV(r io.Reader) (*Dataset, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: read header: %w", err)
	}
	if len(header) == 0 {
		return nil, ErrNoColumns
	}
	columns := make([]string, len(header))
	target := ""
	for i, h := range header {
		name := strings.TrimSpace(h)
		if strings.HasSuffix(name, "*") {
			name = strings.TrimSuffix(name, "*")
			if target != "" {
				return nil, fmt.Errorf("dataset: multiple target markers in header")
			}
			target = name
		}
		columns[i] = name
	}
	if target == "" {
		target = columns[len(columns)-1]
	}
	d, err := New(columns, target)
	if err != nil {
		return nil, err
	}
	row := make([]float64, len(columns))
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: line %d: %w", line, err)
		}
		if len(rec) != len(columns) {
			return nil, fmt.Errorf("dataset: line %d: %w", line, ErrRowWidth)
		}
		for j, field := range rec {
			v, err := strconv.ParseFloat(strings.TrimSpace(field), 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: line %d column %q: %w", line, columns[j], err)
			}
			row[j] = v
		}
		if err := d.Append(row); err != nil {
			return nil, fmt.Errorf("dataset: line %d: %w", line, err)
		}
	}
	return d, nil
}

// SaveFile writes the dataset to the named CSV file.
func (d *Dataset) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := d.WriteCSV(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile reads a dataset from the named CSV file.
func LoadFile(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadCSV(f)
}
