package dataset

import (
	"math"
	"testing"

	"qens/internal/rng"
)

func TestSyntheticAirQualityShape(t *testing.T) {
	cfg := Config{Nodes: 4, SamplesPerNode: 300, Seed: 1}
	nodes, err := SyntheticAirQuality(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 4 {
		t.Fatalf("got %d nodes", len(nodes))
	}
	for i, d := range nodes {
		if d.Len() != 300 {
			t.Fatalf("node %d has %d samples", i, d.Len())
		}
		if d.Dims() != len(AirQualityColumns) {
			t.Fatalf("node %d has %d columns", i, d.Dims())
		}
		if d.TargetName() != AirQualityTarget {
			t.Fatalf("node %d target %s", i, d.TargetName())
		}
	}
}

func TestSyntheticDeterminism(t *testing.T) {
	cfg := Config{Nodes: 2, SamplesPerNode: 100, Seed: 42}
	a, err := SyntheticAirQuality(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SyntheticAirQuality(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for n := range a {
		for i := 0; i < a[n].Len(); i++ {
			ra, rb := a[n].Row(i), b[n].Row(i)
			for j := range ra {
				if ra[j] != rb[j] {
					t.Fatalf("node %d row %d col %d differs", n, i, j)
				}
			}
		}
	}
	// A different seed must give different data.
	c, _ := SyntheticAirQuality(Config{Nodes: 2, SamplesPerNode: 100, Seed: 43})
	if c[0].Row(0)[0] == a[0].Row(0)[0] && c[0].Row(1)[0] == a[0].Row(1)[0] {
		t.Fatal("different seeds produced identical data")
	}
}

func TestSyntheticValidation(t *testing.T) {
	bad := []Config{
		{Nodes: -1},
		{SamplesPerNode: -5},
		{Heterogeneity: 2},
		{FlipFraction: -0.1},
	}
	for _, cfg := range bad {
		if _, err := SyntheticAirQuality(cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
}

func TestSyntheticPhysicalRanges(t *testing.T) {
	nodes, err := SyntheticAirQuality(Config{Nodes: 3, SamplesPerNode: 500, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range nodes {
		pm, _ := d.Column("PM2.5")
		rain, _ := d.Column("RAIN")
		wspm, _ := d.Column("WSPM")
		pm10, _ := d.Column("PM10")
		for i := range pm {
			if pm[i] < 1 {
				t.Fatalf("PM2.5 %v below floor", pm[i])
			}
			if rain[i] < 0 || wspm[i] < 0 {
				t.Fatalf("negative rain/wind at %d", i)
			}
			if pm10[i] < pm[i] {
				t.Fatalf("PM10 %v < PM2.5 %v", pm10[i], pm[i])
			}
		}
	}
}

// Homogeneous configs must produce nodes with near-identical ranges;
// heterogeneous configs must produce visibly shifted ranges. This is
// the property Tables I and II rest on.
func TestHomogeneousVsHeterogeneousSpread(t *testing.T) {
	spread := func(cfg Config) float64 {
		nodes, err := SyntheticAirQuality(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var means []float64
		for _, d := range nodes {
			pm, _ := d.Column("PM2.5")
			sum := 0.0
			for _, v := range pm {
				sum += v
			}
			means = append(means, sum/float64(len(pm)))
		}
		lo, hi := means[0], means[0]
		for _, m := range means[1:] {
			lo = math.Min(lo, m)
			hi = math.Max(hi, m)
		}
		return hi - lo
	}
	homo := spread(HomogeneousConfig(1))
	hetero := spread(HeterogeneousConfig(1))
	if hetero < 3*homo {
		t.Fatalf("heterogeneous spread %v not clearly larger than homogeneous %v", hetero, homo)
	}
}

// The flip fraction must actually flip the empirical TEMP->PM2.5
// regression slope on the trailing nodes (the paper's Fig. 2 scenario).
func TestFlippedRegressionSlopes(t *testing.T) {
	cfg := Config{Nodes: 5, SamplesPerNode: 1500, Seed: 3, Heterogeneity: 0.8, FlipFraction: 0.2}
	nodes, err := SyntheticAirQuality(cfg)
	if err != nil {
		t.Fatal(err)
	}
	slope := func(d *Dataset) float64 {
		temp, _ := d.Column("TEMP")
		pm, _ := d.Column("PM2.5")
		mt, mp := mean(temp), mean(pm)
		num, den := 0.0, 0.0
		for i := range temp {
			num += (temp[i] - mt) * (pm[i] - mp)
			den += (temp[i] - mt) * (temp[i] - mt)
		}
		return num / den
	}
	// First node: positive slope; last node: flipped, negative.
	if s := slope(nodes[0]); s <= 0 {
		t.Fatalf("node 0 slope %v, want positive", s)
	}
	if s := slope(nodes[4]); s >= 0 {
		t.Fatalf("node 4 slope %v, want negative (flipped)", s)
	}
}

func TestPaperNodeDatasets(t *testing.T) {
	nodes, err := PaperNodeDatasets(Config{Nodes: 3, SamplesPerNode: 100, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range nodes {
		if d.Dims() != 2 {
			t.Fatalf("paper node dataset has %d dims, want 2", d.Dims())
		}
		if d.TargetName() != "PM2.5" {
			t.Fatalf("target %s", d.TargetName())
		}
		if d.Len() != 100 {
			t.Fatalf("len %d", d.Len())
		}
	}
}

func TestConfigPresets(t *testing.T) {
	for _, cfg := range []Config{DefaultConfig(1), HomogeneousConfig(1), HeterogeneousConfig(1)} {
		if err := cfg.Validate(); err != nil {
			t.Errorf("preset invalid: %+v: %v", cfg, err)
		}
		if cfg.Nodes != 10 {
			t.Errorf("preset nodes = %d, want 10 (paper N)", cfg.Nodes)
		}
	}
}

func mean(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}

func TestCorruptTarget(t *testing.T) {
	d := MustNew([]string{"x", "y"}, "y")
	src := rng.New(60)
	for i := 0; i < 200; i++ {
		x := src.Uniform(0, 10)
		d.MustAppend([]float64{x, 3 * x})
	}
	corrupt, err := d.CorruptTarget(rng.New(61))
	if err != nil {
		t.Fatal(err)
	}
	// Features untouched.
	for i := 0; i < d.Len(); i++ {
		if corrupt.Row(i)[0] != d.Row(i)[0] {
			t.Fatal("feature column changed")
		}
	}
	// Original untouched (copy semantics).
	if d.Row(0)[1] != 3*d.Row(0)[0] {
		t.Fatal("original mutated")
	}
	// Labels decorrelated: correlation with x must collapse.
	xs, _ := corrupt.Column("x")
	ys, _ := corrupt.Column("y")
	mx, my := mean(xs), mean(ys)
	num, dx, dy := 0.0, 0.0, 0.0
	for i := range xs {
		num += (xs[i] - mx) * (ys[i] - my)
		dx += (xs[i] - mx) * (xs[i] - mx)
		dy += (ys[i] - my) * (ys[i] - my)
	}
	if corr := num / math.Sqrt(dx*dy); math.Abs(corr) > 0.3 {
		t.Fatalf("corrupted labels still correlated: %v", corr)
	}
	// Range preserved.
	lo, hi := ys[0], ys[0]
	for _, v := range ys {
		lo, hi = math.Min(lo, v), math.Max(hi, v)
	}
	if lo < -1 || hi > 31 {
		t.Fatalf("noise range [%v,%v] escapes original [0,30]", lo, hi)
	}
}

func TestCorruptTargetEmpty(t *testing.T) {
	d := MustNew([]string{"x", "y"}, "y")
	if _, err := d.CorruptTarget(rng.New(1)); err == nil {
		t.Fatal("corrupted empty dataset")
	}
}
