package dataset

import (
	"fmt"
	"math"

	"qens/internal/rng"
)

// Synthetic Beijing Multi-Site Air-Quality generator.
//
// The paper evaluates on 10 files of the UCI "Beijing Multi-Site
// Air-Quality Data" set, one file per monitoring site, one site per
// edge node. That data cannot be downloaded in this offline build, so
// this generator produces a statistically analogous corpus: hourly
// weather and pollution features with seasonal and diurnal structure,
// plus controllable *per-site distribution shift* — different value
// ranges, different pollution/temperature regression slopes, and
// optionally sign-flipped slopes (the heterogeneity the paper's §II
// motivates with its Fig. 2). The node-selection mechanism only
// observes cluster bounding boxes and data ranges, so reproducing the
// range/correlation structure preserves the experiments' behaviour.

// AirQualityColumns is the generated schema. PM2.5 is the target,
// mirroring the usual use of the UCI set; the remaining columns are
// the UCI weather/pollution features.
var AirQualityColumns = []string{
	"TEMP", "PRES", "DEWP", "RAIN", "WSPM",
	"PM10", "SO2", "NO2", "CO", "O3", "PM2.5",
}

// AirQualityTarget is the target column name.
const AirQualityTarget = "PM2.5"

// SiteNames are the 12 UCI monitoring sites; the first cfg.Nodes are
// used (the paper selects 10 of the 12 files).
var SiteNames = []string{
	"Aotizhongxin", "Changping", "Dingling", "Dongsi", "Guanyuan",
	"Gucheng", "Huairou", "Nongzhanguan", "Shunyi", "Tiantan",
	"Wanliu", "Wanshouxigong",
}

// Config controls the synthetic corpus.
type Config struct {
	// Nodes is the number of edge nodes / monitoring sites
	// (default 10, the paper's N).
	Nodes int
	// SamplesPerNode is the number of hourly samples per site
	// (default 2000).
	SamplesPerNode int
	// Seed makes the corpus reproducible.
	Seed uint64
	// Heterogeneity in [0, 1] controls how strongly site data
	// distributions diverge: 0 produces near-identical sites (the
	// Table I regime), 1 produces strongly shifted ranges and
	// slopes (the Table II regime). Default 0.6.
	Heterogeneity float64
	// FlipFraction in [0, 1] is the fraction of sites whose
	// pollution/temperature regression slope is sign-flipped, the
	// §II "negative in one participant and positive in the other"
	// scenario. Default 0.2 when Heterogeneity > 0.5, else 0.
	FlipFraction float64
}

// DefaultConfig returns the configuration used by the paper-scale
// experiments: 10 nodes, heterogeneous.
func DefaultConfig(seed uint64) Config {
	return Config{Nodes: 10, SamplesPerNode: 2000, Seed: seed, Heterogeneity: 0.6, FlipFraction: 0.2}
}

// HomogeneousConfig returns the Table I regime: all sites share data
// patterns and ranges, so any node subset trains an equivalent model.
func HomogeneousConfig(seed uint64) Config {
	return Config{Nodes: 10, SamplesPerNode: 2000, Seed: seed, Heterogeneity: 0.02, FlipFraction: 0}
}

// HeterogeneousConfig returns the Table II regime: strong distribution
// shift across sites including sign-flipped regressions.
func HeterogeneousConfig(seed uint64) Config {
	return Config{Nodes: 10, SamplesPerNode: 2000, Seed: seed, Heterogeneity: 1, FlipFraction: 0.3}
}

func (c Config) withDefaults() Config {
	if c.Nodes == 0 {
		c.Nodes = 10
	}
	if c.SamplesPerNode == 0 {
		c.SamplesPerNode = 2000
	}
	if c.Heterogeneity == 0 {
		c.Heterogeneity = 0.6
	}
	return c
}

// Validate checks the configuration.
func (c Config) Validate() error {
	c = c.withDefaults()
	if c.Nodes < 1 {
		return fmt.Errorf("dataset: config needs at least one node, got %d", c.Nodes)
	}
	if c.SamplesPerNode < 1 {
		return fmt.Errorf("dataset: config needs at least one sample per node, got %d", c.SamplesPerNode)
	}
	if c.Heterogeneity < 0 || c.Heterogeneity > 1 {
		return fmt.Errorf("dataset: heterogeneity %v outside [0,1]", c.Heterogeneity)
	}
	if c.FlipFraction < 0 || c.FlipFraction > 1 {
		return fmt.Errorf("dataset: flip fraction %v outside [0,1]", c.FlipFraction)
	}
	return nil
}

// siteProfile is the latent per-site generative state.
type siteProfile struct {
	name          string
	tempBase      float64 // long-run mean temperature, °C
	tempAmplitude float64 // seasonal swing
	pollBase      float64 // baseline PM2.5 level
	pollSlope     float64 // dPM2.5 / dTEMP, possibly negative
	windDamping   float64 // dPM2.5 / dWSPM
	noise         float64 // observation noise scale
	phase         float64 // seasonal phase offset
}

// SyntheticAirQuality generates one dataset per node over the full
// AirQualityColumns schema.
func SyntheticAirQuality(cfg Config) ([]*Dataset, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	root := rng.New(cfg.Seed)
	profiles := siteProfiles(cfg, root.Split())
	streams := root.SplitN(cfg.Nodes)

	out := make([]*Dataset, cfg.Nodes)
	for i := range out {
		d, err := generateSite(profiles[i], cfg.SamplesPerNode, streams[i])
		if err != nil {
			return nil, err
		}
		out[i] = d
	}
	return out, nil
}

// siteProfiles draws the latent site parameters. Heterogeneity widens
// every per-site deviation; FlipFraction flips the pollution slope of
// the trailing sites deterministically (so "node 9 is the adversarial
// one" is stable across runs with the same config).
func siteProfiles(cfg Config, src *rng.Source) []siteProfile {
	h := cfg.Heterogeneity
	nFlip := int(math.Round(cfg.FlipFraction * float64(cfg.Nodes)))
	profiles := make([]siteProfile, cfg.Nodes)
	for i := range profiles {
		name := fmt.Sprintf("site-%d", i)
		if i < len(SiteNames) {
			name = SiteNames[i]
		}
		p := siteProfile{
			name:          name,
			tempBase:      13 + src.Uniform(-12*h, 12*h),
			tempAmplitude: 11 + src.Uniform(-5*h, 5*h),
			pollBase:      80 + src.Uniform(-55*h, 55*h),
			pollSlope:     2.2 + src.Uniform(-1.6*h, 1.6*h),
			windDamping:   8 + src.Uniform(-5*h, 5*h),
			noise:         6 + src.Uniform(0, 10*h),
			phase:         src.Uniform(0, 2*math.Pi*h*0.25),
		}
		if p.pollBase < 10 {
			p.pollBase = 10
		}
		if i >= cfg.Nodes-nFlip {
			p.pollSlope = -p.pollSlope
			// A flipped site also lives in a shifted range so that
			// its cluster rectangles barely overlap typical queries.
			p.pollBase += 140 * h
		}
		profiles[i] = p
	}
	return profiles
}

// generateSite simulates hourly observations for one site.
func generateSite(p siteProfile, samples int, src *rng.Source) (*Dataset, error) {
	d, err := New(AirQualityColumns, AirQualityTarget)
	if err != nil {
		return nil, err
	}
	const hoursPerYear = 24 * 365
	for t := 0; t < samples; t++ {
		season := math.Sin(2*math.Pi*float64(t)/hoursPerYear + p.phase)
		diurnal := math.Sin(2 * math.Pi * float64(t) / 24)

		temp := p.tempBase + p.tempAmplitude*season + 4*diurnal + src.Normal(0, 2.5)
		pres := 1012 - 0.55*(temp-12) + src.Normal(0, 3)
		dewp := temp - src.Uniform(4, 16) + src.Normal(0, 1.5)
		rain := 0.0
		if src.Bool(0.07) {
			rain = src.Exponential(0.8)
		}
		wspm := math.Abs(src.Normal(1.8, 1.2))

		pm25 := p.pollBase + p.pollSlope*(temp-p.tempBase) -
			p.windDamping*wspm - 12*math.Min(rain, 3) + src.Normal(0, p.noise)
		if pm25 < 1 {
			pm25 = 1
		}

		pm10 := 1.25*pm25 + src.Normal(20, 8)
		if pm10 < pm25 {
			pm10 = pm25
		}
		so2 := math.Max(1, 0.12*pm25+src.Normal(8, 3))
		no2 := math.Max(1, 0.35*pm25+src.Normal(22, 6))
		co := math.Max(100, 9*pm25+src.Normal(450, 120))
		o3 := math.Max(1, 60+2.1*(temp-10)-0.25*pm25+src.Normal(0, 9))

		if err := d.Append([]float64{temp, pres, dewp, rain, wspm, pm10, so2, no2, co, o3, pm25}); err != nil {
			return nil, err
		}
	}
	return d, nil
}

// PaperNodeDatasets generates the reduced per-node datasets the
// paper's experiments actually use: "for each node, we focused on one
// important feature and labels" (§V-A). Each node dataset has exactly
// two columns, TEMP (the driving feature) and PM2.5 (the label), drawn
// from the full simulation so the per-site shift structure is intact.
func PaperNodeDatasets(cfg Config) ([]*Dataset, error) {
	full, err := SyntheticAirQuality(cfg)
	if err != nil {
		return nil, err
	}
	out := make([]*Dataset, len(full))
	for i, d := range full {
		reduced, err := d.Project([]string{"TEMP", "PM2.5"}, "PM2.5")
		if err != nil {
			return nil, err
		}
		out[i] = reduced
	}
	return out, nil
}

// CorruptTarget returns a copy of the dataset whose target column is
// replaced by uniform noise spanning the original target range —
// simulating a node with a broken or miscalibrated sensor. The feature
// columns are untouched, so the node still advertises plausible
// feature ranges; only the label signal is destroyed.
func (d *Dataset) CorruptTarget(src *rng.Source) (*Dataset, error) {
	if d.Len() == 0 {
		return nil, ErrEmpty
	}
	vals, err := d.Column(d.TargetName())
	if err != nil {
		return nil, err
	}
	lo, hi := vals[0], vals[0]
	for _, v := range vals[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi == lo {
		hi = lo + 1
	}
	out := d.Clone()
	ti := out.TargetIndex()
	for i := 0; i < out.Len(); i++ {
		out.rows[i][ti] = src.Uniform(lo, hi)
	}
	return out, nil
}

// Project returns a dataset containing only the named columns, with
// the given target. All requested columns must exist.
func (d *Dataset) Project(columns []string, target string) (*Dataset, error) {
	indices := make([]int, len(columns))
	for i, c := range columns {
		idx := d.ColumnIndex(c)
		if idx < 0 {
			return nil, fmt.Errorf("%w: %q", ErrColumnUnknown, c)
		}
		indices[i] = idx
	}
	out, err := New(columns, target)
	if err != nil {
		return nil, err
	}
	row := make([]float64, len(columns))
	for _, r := range d.rows {
		for j, idx := range indices {
			row[j] = r[idx]
		}
		if err := out.Append(row); err != nil {
			return nil, err
		}
	}
	return out, nil
}
