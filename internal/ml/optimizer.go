package ml

import "math"

// optimizer applies gradient updates to a flat parameter vector. All
// models in this package expose their parameters as one flat []float64
// so a single optimizer implementation serves both LR and the NN.
type optimizer interface {
	// step applies one update given the gradient; params and grad
	// share a length.
	step(params, grad []float64)
	// reset clears accumulated state (after SetParams replaces the
	// weights wholesale).
	reset()
	// clone returns an optimizer of the same configuration with
	// fresh state.
	clone() optimizer
	// scaleLR multiplies the learning rate (for per-epoch decay).
	scaleLR(factor float64)
	// setLR restores the learning rate to an absolute value (model
	// Reinit undoes any accumulated decay without reallocating).
	setLR(lr float64)
}

// newOptimizer builds the optimizer named by the spec.
func newOptimizer(name string, lr float64, size int) optimizer {
	switch name {
	case "momentum":
		return &momentum{lr: lr, beta: 0.9, velocity: make([]float64, size)}
	case "adam":
		return &adam{lr: lr, beta1: 0.9, beta2: 0.999, eps: 1e-8,
			m: make([]float64, size), v: make([]float64, size)}
	default:
		return &sgd{lr: lr}
	}
}

// sgd is plain stochastic gradient descent.
type sgd struct{ lr float64 }

func (o *sgd) step(params, grad []float64) {
	for i, g := range grad {
		params[i] -= o.lr * g
	}
}
func (o *sgd) reset()                 {}
func (o *sgd) clone() optimizer       { return &sgd{lr: o.lr} }
func (o *sgd) scaleLR(factor float64) { o.lr *= factor }
func (o *sgd) setLR(lr float64)       { o.lr = lr }

// momentum is SGD with classical momentum.
type momentum struct {
	lr, beta float64
	velocity []float64
}

func (o *momentum) step(params, grad []float64) {
	for i, g := range grad {
		o.velocity[i] = o.beta*o.velocity[i] + g
		params[i] -= o.lr * o.velocity[i]
	}
}

func (o *momentum) reset() {
	for i := range o.velocity {
		o.velocity[i] = 0
	}
}

func (o *momentum) clone() optimizer {
	return &momentum{lr: o.lr, beta: o.beta, velocity: make([]float64, len(o.velocity))}
}

func (o *momentum) scaleLR(factor float64) { o.lr *= factor }

func (o *momentum) setLR(lr float64) { o.lr = lr }

// adam is the Adam optimizer (Kingma & Ba 2015).
type adam struct {
	lr, beta1, beta2, eps float64
	m, v                  []float64
	t                     int
}

func (o *adam) step(params, grad []float64) {
	o.t++
	bc1 := 1 - math.Pow(o.beta1, float64(o.t))
	bc2 := 1 - math.Pow(o.beta2, float64(o.t))
	for i, g := range grad {
		o.m[i] = o.beta1*o.m[i] + (1-o.beta1)*g
		o.v[i] = o.beta2*o.v[i] + (1-o.beta2)*g*g
		mHat := o.m[i] / bc1
		vHat := o.v[i] / bc2
		params[i] -= o.lr * mHat / (math.Sqrt(vHat) + o.eps)
	}
}

func (o *adam) reset() {
	o.t = 0
	for i := range o.m {
		o.m[i] = 0
		o.v[i] = 0
	}
}

func (o *adam) clone() optimizer {
	return &adam{lr: o.lr, beta1: o.beta1, beta2: o.beta2, eps: o.eps,
		m: make([]float64, len(o.m)), v: make([]float64, len(o.v))}
}

func (o *adam) scaleLR(factor float64) { o.lr *= factor }

func (o *adam) setLR(lr float64) { o.lr = lr }

// clipGradient rescales grad in place if its L2 norm exceeds maxNorm,
// a standard guard against exploding updates on badly conditioned
// mini-batches (tiny clusters with extreme ranges occur routinely in
// the federation experiments).
func clipGradient(grad []float64, maxNorm float64) {
	norm := 0.0
	for _, g := range grad {
		norm += g * g
	}
	norm = math.Sqrt(norm)
	if norm > maxNorm && norm > 0 {
		scale := maxNorm / norm
		for i := range grad {
			grad[i] *= scale
		}
	}
}
