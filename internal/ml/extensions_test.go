package ml

import (
	"math"
	"testing"

	"qens/internal/rng"
)

func TestActivationsLearn(t *testing.T) {
	// Each nonlinearity must still fit x^2 decently.
	src := seedBatchSource(31)
	var x [][]float64
	var y []float64
	for i := 0; i < 600; i++ {
		xi := src.Uniform(-2, 2)
		x = append(x, []float64{xi})
		y = append(y, xi*xi)
	}
	for _, act := range []string{ActivationRelu, ActivationTanh, ActivationSigmoid} {
		spec := Spec{Kind: KindNN, InputDim: 1, Hidden: []int{32}, LearningRate: 0.005,
			Epochs: 120, Optimizer: "adam", Activation: act, Seed: 5}
		m := spec.MustNew()
		if err := m.Fit(x, y); err != nil {
			t.Fatalf("%s: %v", act, err)
		}
		if r2 := R2(y, m.PredictBatch(x)); r2 < 0.85 {
			t.Errorf("%s: R2 = %v, want > 0.85", act, r2)
		}
	}
}

func TestLinearActivationCannotFitSquare(t *testing.T) {
	// A purely linear "NN" must fail on x^2 — the derivative chain is
	// the identity, so depth adds nothing.
	src := seedBatchSource(32)
	var x [][]float64
	var y []float64
	for i := 0; i < 400; i++ {
		xi := src.Uniform(-2, 2)
		x = append(x, []float64{xi})
		y = append(y, xi*xi)
	}
	spec := Spec{Kind: KindNN, InputDim: 1, Hidden: []int{32}, LearningRate: 0.005,
		Epochs: 80, Optimizer: "adam", Activation: ActivationLinear, Seed: 5}
	m := spec.MustNew()
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if r2 := R2(y, m.PredictBatch(x)); r2 > 0.3 {
		t.Fatalf("linear activation fit x^2 with R2 %v — nonlinearity is leaking", r2)
	}
}

func TestUnknownActivationRejected(t *testing.T) {
	spec := Spec{Kind: KindNN, InputDim: 1, Hidden: []int{4}, Activation: "swish"}
	if _, err := spec.New(); err == nil {
		t.Fatal("accepted unknown activation")
	}
}

func TestL2ShrinksWeights(t *testing.T) {
	x, y := syntheticLinear(400, 5, 0, 0.2, 33)
	base := PaperLR(1)
	base.Seed = 9
	unreg := base.MustNew()
	if err := unreg.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	reg := base
	reg.L2 = 5 // heavy decay
	regM := reg.MustNew()
	if err := regM.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	// Compare the learned (standardized-space) weight magnitude.
	wU := unreg.Params().Values[0]
	wR := regM.Params().Values[0]
	if math.Abs(wR) >= math.Abs(wU) {
		t.Fatalf("L2 did not shrink weight: %v vs %v", wR, wU)
	}
	if _, err := (Spec{Kind: KindLinear, InputDim: 1, L2: -1}).New(); err == nil {
		t.Fatal("accepted negative L2")
	}
}

func TestEarlyStopping(t *testing.T) {
	x, y := syntheticLinear(400, 2, 1, 0.3, 34)
	spec := PaperLR(1)
	spec.Epochs = 100
	spec.Patience = 3
	m := spec.MustNew()
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	h := m.History()
	if len(h.TrainLoss) >= 100 {
		t.Fatalf("early stopping never triggered (%d epochs)", len(h.TrainLoss))
	}
	// Patience without a validation split is a config error.
	bad := PaperLR(1)
	bad.ValidationSplit = 0
	bad.Patience = 3
	if _, err := bad.New(); err == nil {
		t.Fatal("accepted patience without validation split")
	}
}

func TestStopEarlyLogic(t *testing.T) {
	if stopEarly([]float64{5, 4, 3}, 0) {
		t.Fatal("patience 0 must never stop")
	}
	if stopEarly([]float64{5, 4, 3}, 3) {
		t.Fatal("improving history must not stop")
	}
	if !stopEarly([]float64{3, 4, 5, 6}, 3) {
		t.Fatal("3 epochs without improvement should stop at patience 3")
	}
	if stopEarly([]float64{3, 4, 5}, 3) {
		t.Fatal("only 2 bad epochs, patience 3 should continue")
	}
}

func TestParamsEncodeDecode(t *testing.T) {
	x, y := syntheticLinear(200, 2, 1, 0.3, 35)
	m := PaperLR(1).MustNew()
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	data, err := EncodeParams(m.Params())
	if err != nil {
		t.Fatal(err)
	}
	p, err := DecodeParams(data)
	if err != nil {
		t.Fatal(err)
	}
	clone := PaperLR(1).MustNew()
	if err := clone.SetParams(p); err != nil {
		t.Fatal(err)
	}
	if a, b := m.Predict([]float64{7}), clone.Predict([]float64{7}); a != b {
		t.Fatalf("decoded model diverges: %v vs %v", a, b)
	}
}

func TestParamsValidate(t *testing.T) {
	good := PaperLR(2).MustNew().Params()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	goodNN := PaperNN(1).MustNew().Params()
	if err := goodNN.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Params{
		{Kind: "forest", Dims: []int{1, 1}, Values: make([]float64, 7)},
		{Kind: KindLinear, Dims: []int{1}, Values: make([]float64, 7)},
		{Kind: KindLinear, Dims: []int{0, 1}, Values: make([]float64, 6)},
		{Kind: KindLinear, Dims: []int{1, 1}, Values: make([]float64, 3)},
		{Kind: KindLinear, Dims: []int{1, 2}, Values: make([]float64, 7)},
		{Kind: KindNN, Dims: []int{1, 4, 1}, Values: make([]float64, 2)},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad params %d accepted: %+v", i, p)
		}
	}
	nan := good.Clone()
	nan.Values[0] = math.NaN()
	if err := nan.Validate(); err == nil {
		t.Fatal("accepted NaN params")
	}
	if _, err := EncodeParams(nan); err == nil {
		t.Fatal("encoded NaN params")
	}
}

func TestDecodeParamsRejectsGarbage(t *testing.T) {
	if _, err := DecodeParams([]byte("{not json")); err == nil {
		t.Fatal("accepted broken json")
	}
	if _, err := DecodeParams([]byte(`{"kind":"linear","dims":[1,1],"values":[1]}`)); err == nil {
		t.Fatal("accepted wrong value count")
	}
}

func TestNewFromParams(t *testing.T) {
	x, y := syntheticLinear(300, 3, -1, 0.2, 36)
	spec := PaperNN(1)
	spec.Epochs = 20
	trained := spec.MustNew()
	if err := trained.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	rebuilt, err := NewFromParams(trained.Params())
	if err != nil {
		t.Fatal(err)
	}
	for _, xi := range []float64{-4, 0, 9} {
		a, b := trained.Predict([]float64{xi}), rebuilt.Predict([]float64{xi})
		if math.Abs(a-b) > 1e-9 {
			t.Fatalf("rebuilt model diverges at %v", xi)
		}
	}
	if _, err := NewFromParams(Params{Kind: "x"}); err == nil {
		t.Fatal("accepted invalid params")
	}
}

func TestPatienceValidation(t *testing.T) {
	if _, err := (Spec{Kind: KindLinear, InputDim: 1, Patience: -1}).New(); err == nil {
		t.Fatal("accepted negative patience")
	}
}

// seedBatchSource is a tiny helper for test-local data generation.
func seedBatchSource(seed uint64) *rng.Source { return rng.New(seed) }

func TestLRDecayValidation(t *testing.T) {
	if _, err := (Spec{Kind: KindLinear, InputDim: 1, LRDecay: -0.5}).New(); err == nil {
		t.Fatal("accepted negative decay")
	}
	if _, err := (Spec{Kind: KindLinear, InputDim: 1, LRDecay: 1.5}).New(); err == nil {
		t.Fatal("accepted decay > 1")
	}
}

func TestLRDecayStabilizes(t *testing.T) {
	// With an aggressively high base learning rate, per-epoch decay
	// must still converge while the undecayed run oscillates more.
	x, y := syntheticLinear(400, 3, -2, 0.3, 40)
	decayed := Spec{Kind: KindLinear, InputDim: 1, LearningRate: 0.5,
		Epochs: 80, LRDecay: 0.93, Seed: 4}
	m := decayed.MustNew()
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if r2 := R2(y, m.PredictBatch(x)); r2 < 0.95 {
		t.Fatalf("decayed run R2 = %v", r2)
	}
	// And decay must actually shrink the optimizer step: final-epoch
	// train-loss wobble should be tiny.
	h := m.History().TrainLoss
	tail := h[len(h)-10:]
	lo, hi := tail[0], tail[0]
	for _, v := range tail {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi-lo > h[0]*0.05 {
		t.Fatalf("late-epoch wobble %v too large vs initial loss %v", hi-lo, h[0])
	}
}
