package ml

import (
	"math"
	"testing"

	"qens/internal/rng"
)

// syntheticLinear draws y = slope*x + intercept + noise.
func syntheticLinear(n int, slope, intercept, noise float64, seed uint64) (x [][]float64, y []float64) {
	src := rng.New(seed)
	for i := 0; i < n; i++ {
		xv := src.Uniform(-10, 30)
		x = append(x, []float64{xv})
		y = append(y, slope*xv+intercept+src.Normal(0, noise))
	}
	return x, y
}

func TestLinearLearnsLine(t *testing.T) {
	x, y := syntheticLinear(500, 2.5, -7, 0.5, 1)
	m := PaperLR(1).MustNew()
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	// Check predictions at known points.
	for _, xi := range []float64{-5, 0, 10, 25} {
		want := 2.5*xi - 7
		got := m.Predict([]float64{xi})
		if math.Abs(got-want) > 2 {
			t.Fatalf("Predict(%v) = %v, want ~%v", xi, got, want)
		}
	}
}

func TestLinearMultiFeature(t *testing.T) {
	src := rng.New(2)
	var x [][]float64
	var y []float64
	for i := 0; i < 800; i++ {
		a, b := src.Uniform(0, 10), src.Uniform(-5, 5)
		x = append(x, []float64{a, b})
		y = append(y, 3*a-2*b+1+src.Normal(0, 0.2))
	}
	spec := PaperLR(2)
	spec.Epochs = 200
	m := spec.MustNew()
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	pred := m.PredictBatch(x)
	if r2 := R2(y, pred); r2 < 0.97 {
		t.Fatalf("R2 = %v, want > 0.97", r2)
	}
}

func TestLinearHistory(t *testing.T) {
	x, y := syntheticLinear(200, 1, 0, 0.1, 3)
	m := PaperLR(1).MustNew()
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	h := m.History()
	if len(h.TrainLoss) != 100 {
		t.Fatalf("train history len %d", len(h.TrainLoss))
	}
	if len(h.ValLoss) != 100 {
		t.Fatalf("val history len %d", len(h.ValLoss))
	}
	// Training should improve substantially.
	if h.TrainLoss[99] > h.TrainLoss[0]*0.5 {
		t.Fatalf("loss did not improve: %v -> %v", h.TrainLoss[0], h.TrainLoss[99])
	}
}

func TestLinearPartialFitIncremental(t *testing.T) {
	// Two mini-batches from the same line must converge to the line.
	x1, y1 := syntheticLinear(300, 2, 5, 0.3, 4)
	x2, y2 := syntheticLinear(300, 2, 5, 0.3, 5)
	m := PaperLR(1).MustNew()
	if err := m.PartialFit(x1, y1, 60); err != nil {
		t.Fatal(err)
	}
	if err := m.PartialFit(x2, y2, 60); err != nil {
		t.Fatal(err)
	}
	got := m.Predict([]float64{10})
	if math.Abs(got-25) > 3 {
		t.Fatalf("incremental fit predicts %v at x=10, want ~25", got)
	}
}

func TestLinearErrors(t *testing.T) {
	m := PaperLR(2).MustNew()
	if err := m.Fit(nil, nil); err == nil {
		t.Fatal("fit accepted empty batch")
	}
	if err := m.Fit([][]float64{{1}}, []float64{1}); err == nil {
		t.Fatal("fit accepted wrong width")
	}
	if err := m.Fit([][]float64{{1, 2}}, []float64{1, 2}); err == nil {
		t.Fatal("fit accepted length mismatch")
	}
	if err := m.PartialFit([][]float64{{1, 2}}, []float64{1}, 0); err == nil {
		t.Fatal("partial fit accepted zero epochs")
	}
}

func TestLinearParamsRoundTrip(t *testing.T) {
	x, y := syntheticLinear(300, -1.5, 3, 0.2, 6)
	m := PaperLR(1).MustNew()
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	p := m.Params()
	fresh := PaperLR(1).MustNew()
	if err := fresh.SetParams(p); err != nil {
		t.Fatal(err)
	}
	for _, xi := range []float64{-3, 0, 12} {
		a, b := m.Predict([]float64{xi}), fresh.Predict([]float64{xi})
		if math.Abs(a-b) > 1e-9 {
			t.Fatalf("round-tripped model diverges at %v: %v vs %v", xi, a, b)
		}
	}
}

func TestLinearSetParamsIncompatible(t *testing.T) {
	m1 := PaperLR(1).MustNew()
	m2 := PaperLR(2).MustNew()
	if err := m2.SetParams(m1.Params()); err == nil {
		t.Fatal("accepted incompatible params")
	}
	nn := PaperNN(1).MustNew()
	if err := m1.SetParams(nn.Params()); err == nil {
		t.Fatal("accepted params of different kind")
	}
}

func TestLinearCloneIndependent(t *testing.T) {
	x, y := syntheticLinear(200, 1, 1, 0.1, 7)
	m := PaperLR(1).MustNew()
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	c := m.Clone()
	before := m.Predict([]float64{5})
	// Training the clone must not affect the original.
	x2, y2 := syntheticLinear(200, -10, 0, 0.1, 8)
	if err := c.PartialFit(x2, y2, 50); err != nil {
		t.Fatal(err)
	}
	if after := m.Predict([]float64{5}); after != before {
		t.Fatalf("training clone changed original: %v -> %v", before, after)
	}
}

func TestLinearDeterministicTraining(t *testing.T) {
	x, y := syntheticLinear(150, 2, 0, 0.5, 9)
	mk := func() float64 {
		spec := PaperLR(1)
		spec.Seed = 42
		m := spec.MustNew()
		if err := m.Fit(x, y); err != nil {
			t.Fatal(err)
		}
		return m.Predict([]float64{3})
	}
	if a, b := mk(), mk(); a != b {
		t.Fatalf("same-seed training differs: %v vs %v", a, b)
	}
}

func TestFitOLSExact(t *testing.T) {
	// Noiseless data: OLS must recover the coefficients exactly.
	x := [][]float64{{1, 0}, {0, 1}, {1, 1}, {2, 3}, {-1, 2}}
	var y []float64
	for _, r := range x {
		y = append(y, 4*r[0]-3*r[1]+2)
	}
	w, b, err := FitOLS(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(w[0]-4) > 1e-6 || math.Abs(w[1]+3) > 1e-6 || math.Abs(b-2) > 1e-6 {
		t.Fatalf("OLS = %v, %v", w, b)
	}
}

func TestFitOLSErrors(t *testing.T) {
	if _, _, err := FitOLS(nil, nil); err == nil {
		t.Fatal("accepted empty")
	}
	if _, _, err := FitOLS([][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Fatal("accepted mismatch")
	}
}

func TestSGDMatchesOLSOnCleanData(t *testing.T) {
	x, y := syntheticLinear(1000, 3, -2, 0.01, 10)
	w, b, err := FitOLS(x, y)
	if err != nil {
		t.Fatal(err)
	}
	spec := PaperLR(1)
	spec.Epochs = 300
	m := spec.MustNew()
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	for _, xi := range []float64{-8, 0, 20} {
		ols := w[0]*xi + b
		sgd := m.Predict([]float64{xi})
		if math.Abs(ols-sgd) > 1.0 {
			t.Fatalf("SGD %v vs OLS %v at x=%v", sgd, ols, xi)
		}
	}
}
