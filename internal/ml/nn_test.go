package ml

import (
	"math"
	"testing"

	"qens/internal/rng"
)

func TestNNLearnsLinearFunction(t *testing.T) {
	x, y := syntheticLinear(600, 2, 3, 0.2, 11)
	spec := PaperNN(1)
	spec.Epochs = 60
	m := spec.MustNew()
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	pred := m.PredictBatch(x)
	if r2 := R2(y, pred); r2 < 0.95 {
		t.Fatalf("R2 = %v, want > 0.95", r2)
	}
}

func TestNNLearnsNonlinearFunction(t *testing.T) {
	// y = x^2 — a linear model cannot fit this, a relu net can.
	src := rng.New(12)
	var x [][]float64
	var y []float64
	for i := 0; i < 800; i++ {
		xi := src.Uniform(-3, 3)
		x = append(x, []float64{xi})
		y = append(y, xi*xi+src.Normal(0, 0.05))
	}
	spec := PaperNN(1)
	spec.Epochs = 150
	m := spec.MustNew()
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	nnR2 := R2(y, m.PredictBatch(x))
	if nnR2 < 0.9 {
		t.Fatalf("NN R2 on x^2 = %v, want > 0.9", nnR2)
	}
	// Reference: the linear model must do much worse on the same data.
	lin := PaperLR(1).MustNew()
	if err := lin.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	linR2 := R2(y, lin.PredictBatch(x))
	if linR2 > nnR2-0.2 {
		t.Fatalf("linear R2 %v unexpectedly close to NN %v on x^2", linR2, nnR2)
	}
}

func TestNNMultiLayer(t *testing.T) {
	spec := Spec{Kind: KindNN, InputDim: 2, Hidden: []int{16, 8}, LearningRate: 0.005,
		Epochs: 120, ValidationSplit: 0.2, Optimizer: "adam", Seed: 13}
	src := rng.New(13)
	var x [][]float64
	var y []float64
	for i := 0; i < 600; i++ {
		a, b := src.Uniform(-2, 2), src.Uniform(-2, 2)
		x = append(x, []float64{a, b})
		y = append(y, a*b) // multiplicative interaction
	}
	m := spec.MustNew()
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if r2 := R2(y, m.PredictBatch(x)); r2 < 0.8 {
		t.Fatalf("deep net R2 on a*b = %v, want > 0.8", r2)
	}
}

func TestNNHistoryAndImprovement(t *testing.T) {
	x, y := syntheticLinear(400, 1, 0, 0.3, 14)
	spec := PaperNN(1)
	spec.Epochs = 40
	m := spec.MustNew()
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	h := m.History()
	if len(h.TrainLoss) != 40 || len(h.ValLoss) != 40 {
		t.Fatalf("history lengths %d/%d", len(h.TrainLoss), len(h.ValLoss))
	}
	if h.TrainLoss[39] > h.TrainLoss[0]*0.5 {
		t.Fatalf("NN did not improve: %v -> %v", h.TrainLoss[0], h.TrainLoss[39])
	}
}

func TestNNPartialFit(t *testing.T) {
	x1, y1 := syntheticLinear(300, 2, 5, 0.2, 15)
	x2, y2 := syntheticLinear(300, 2, 5, 0.2, 16)
	spec := PaperNN(1)
	m := spec.MustNew()
	if err := m.PartialFit(x1, y1, 30); err != nil {
		t.Fatal(err)
	}
	if err := m.PartialFit(x2, y2, 30); err != nil {
		t.Fatal(err)
	}
	got := m.Predict([]float64{10})
	if math.Abs(got-25) > 4 {
		t.Fatalf("incremental NN predicts %v at x=10, want ~25", got)
	}
}

func TestNNParamsRoundTrip(t *testing.T) {
	x, y := syntheticLinear(300, -2, 1, 0.2, 17)
	spec := PaperNN(1)
	spec.Epochs = 30
	m := spec.MustNew()
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	fresh := spec.MustNew()
	if err := fresh.SetParams(m.Params()); err != nil {
		t.Fatal(err)
	}
	for _, xi := range []float64{-5, 0, 15} {
		a, b := m.Predict([]float64{xi}), fresh.Predict([]float64{xi})
		if math.Abs(a-b) > 1e-9 {
			t.Fatalf("round-trip diverges at %v: %v vs %v", xi, a, b)
		}
	}
}

func TestNNSetParamsIncompatible(t *testing.T) {
	a := PaperNN(1).MustNew()
	bSpec := PaperNN(1)
	bSpec.Hidden = []int{32}
	b := bSpec.MustNew()
	if err := b.SetParams(a.Params()); err == nil {
		t.Fatal("accepted different hidden width")
	}
}

func TestNNCloneIndependent(t *testing.T) {
	x, y := syntheticLinear(200, 1, 1, 0.2, 18)
	spec := PaperNN(1)
	spec.Epochs = 20
	m := spec.MustNew()
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	c := m.Clone()
	before := m.Predict([]float64{5})
	x2, y2 := syntheticLinear(200, -10, 0, 0.2, 19)
	if err := c.PartialFit(x2, y2, 30); err != nil {
		t.Fatal(err)
	}
	if after := m.Predict([]float64{5}); after != before {
		t.Fatal("training clone changed original NN")
	}
}

func TestNNDeterministic(t *testing.T) {
	x, y := syntheticLinear(150, 2, 0, 0.3, 20)
	mk := func() float64 {
		spec := PaperNN(1)
		spec.Epochs = 15
		spec.Seed = 99
		m := spec.MustNew()
		if err := m.Fit(x, y); err != nil {
			t.Fatal(err)
		}
		return m.Predict([]float64{3})
	}
	if a, b := mk(), mk(); a != b {
		t.Fatalf("same-seed NN training differs: %v vs %v", a, b)
	}
}

func TestSpecValidation(t *testing.T) {
	bad := []Spec{
		{Kind: "forest", InputDim: 1},
		{Kind: KindLinear, InputDim: 0},
		{Kind: KindNN, InputDim: 1}, // no hidden layers
		{Kind: KindNN, InputDim: 1, Hidden: []int{0}},
		{Kind: KindLinear, InputDim: 1, LearningRate: -1},
		{Kind: KindLinear, InputDim: 1, ValidationSplit: 1},
		{Kind: KindLinear, InputDim: 1, Optimizer: "magic"},
		{Kind: KindLinear, InputDim: 1, BatchSize: -2},
		{Kind: KindLinear, InputDim: 1, Epochs: -1},
	}
	for i, s := range bad {
		if _, err := s.New(); err == nil {
			t.Errorf("bad spec %d accepted: %+v", i, s)
		}
	}
}

func TestPaperSpecsMatchTableIII(t *testing.T) {
	lr := PaperLR(1)
	if lr.LearningRate != 0.03 || lr.Epochs != 100 || lr.ValidationSplit != 0.2 {
		t.Fatalf("PaperLR deviates from Table III: %+v", lr)
	}
	nn := PaperNN(1)
	if nn.LearningRate != 0.001 || nn.Epochs != 100 || nn.ValidationSplit != 0.2 {
		t.Fatalf("PaperNN deviates from Table III: %+v", nn)
	}
	if len(nn.Hidden) != 1 || nn.Hidden[0] != 64 {
		t.Fatalf("PaperNN hidden = %v, want [64]", nn.Hidden)
	}
}

func TestOptimizers(t *testing.T) {
	for _, opt := range []string{"sgd", "momentum", "adam"} {
		spec := Spec{Kind: KindLinear, InputDim: 1, LearningRate: 0.05,
			Epochs: 80, Optimizer: opt, Seed: 21}
		m := spec.MustNew()
		x, y := syntheticLinear(300, 4, -1, 0.2, 22)
		if err := m.Fit(x, y); err != nil {
			t.Fatalf("%s: %v", opt, err)
		}
		if r2 := R2(y, m.PredictBatch(x)); r2 < 0.9 {
			t.Errorf("%s: R2 = %v", opt, r2)
		}
	}
}

func TestNNPredictBatchMatchesPredict(t *testing.T) {
	x, y := syntheticLinear(200, 2, 1, 0.2, 23)
	spec := PaperNN(1)
	spec.Epochs = 10
	m := spec.MustNew()
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	batch := m.PredictBatch(x)
	for i, row := range x {
		single := m.Predict(row)
		if math.Abs(batch[i]-single) > 1e-9 {
			t.Fatalf("batch[%d]=%v vs single=%v", i, batch[i], single)
		}
	}
	if m.PredictBatch(nil) != nil {
		t.Fatal("empty batch should be nil")
	}
}

func TestNNPredictBatchPanicsOnBadWidth(t *testing.T) {
	m := PaperNN(2).MustNew()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.PredictBatch([][]float64{{1}})
}
