package ml

import (
	"context"
	"fmt"
	"math"

	"qens/internal/matrix"
	"qens/internal/rng"
)

// neuralNet is the paper's NN model: a dense multi-layer perceptron
// with relu hidden activations and a linear output unit, trained with
// mini-batch gradient descent under MSE loss (Table III: one hidden
// layer of 64 units, lr 0.001, 100 epochs, validation split 0.2).
// Like the linear model it standardizes inputs/targets with streaming
// statistics.
type neuralNet struct {
	spec    Spec
	act     activation
	layers  []denseLayer
	stats   *runningStats
	opt     optimizer
	src     *rng.Source
	history History

	// scratch holds the reusable forward/backward working set: the
	// permutation, the normalized input matrix, per-layer activation
	// and delta backings, the flat gradient and parameter vectors.
	// Sized lazily to the largest batch seen; reuse across batches
	// and epochs keeps steady-state training allocation-light and is
	// what the engine's model pool recycles. Makes the model unsafe
	// for concurrent use (see Model docs).
	scratch struct {
		perm     []int
		input    []float64
		actBuf   [][]float64 // index l+1: backing for layer l's output
		deltaBuf [][]float64 // index l: backing for deltas with widths[l] cols
		target   []float64
		grad     []float64
		params   []float64
		xn       []float64
		pred     []float64
	}
}

// widths returns the layer widths including input and output.
func (m *neuralNet) widths() []int {
	out := make([]int, 0, len(m.layers)+1)
	out = append(out, m.spec.InputDim)
	for _, l := range m.layers {
		out = append(out, l.w.Cols())
	}
	return out
}

// denseLayer holds weights (in x out) and biases (out). hidden marks
// layers followed by the nonlinearity; the output layer is linear.
type denseLayer struct {
	w      *matrix.Dense
	b      []float64
	hidden bool
}

func newNeuralNet(spec Spec, src *rng.Source) *neuralNet {
	act, err := lookupActivation(spec.Activation)
	if err != nil {
		// Spec.Validate runs before construction; this is a
		// programming error, not a data condition.
		panic(err)
	}
	widths := append([]int{spec.InputDim}, spec.Hidden...)
	widths = append(widths, 1)
	layers := make([]denseLayer, len(widths)-1)
	for l := range layers {
		in, out := widths[l], widths[l+1]
		w := matrix.NewDense(in, out)
		// He initialization for relu layers.
		scale := math.Sqrt(2 / float64(in))
		for i := 0; i < in; i++ {
			for j := 0; j < out; j++ {
				w.Set(i, j, src.Normal(0, scale))
			}
		}
		layers[l] = denseLayer{w: w, b: make([]float64, out), hidden: l < len(layers)-1}
	}
	m := &neuralNet{
		spec:   spec,
		act:    act,
		layers: layers,
		stats:  newRunningStats(spec.InputDim),
		src:    src,
	}
	m.opt = newOptimizer(spec.Optimizer, spec.LearningRate, m.paramCount())
	return m
}

func (m *neuralNet) paramCount() int {
	n := 0
	for _, l := range m.layers {
		n += l.w.Rows()*l.w.Cols() + len(l.b)
	}
	return n
}

// Fit trains for the configured epochs with a validation split.
func (m *neuralNet) Fit(x [][]float64, y []float64) error {
	if err := checkXY(x, y, m.spec.InputDim); err != nil {
		return err
	}
	m.history = History{}
	tx, ty, vx, vy := splitTrainVal(x, y, m.spec.ValidationSplit, m.src)
	if len(tx) == 0 {
		tx, ty = x, y
	}
	m.stats.observe(tx, ty)
	for epoch := 0; epoch < m.spec.Epochs; epoch++ {
		if err := m.runEpoch(context.Background(), tx, nil, ty); err != nil {
			return err
		}
		m.history.TrainLoss = append(m.history.TrainLoss, MSE(ty, m.PredictBatch(tx)))
		if len(vx) > 0 {
			m.history.ValLoss = append(m.history.ValLoss, MSE(vy, m.PredictBatch(vx)))
		}
		if stopEarly(m.history.ValLoss, m.spec.Patience) {
			break
		}
		m.applyDecay()
	}
	return nil
}

// PartialFit continues training on a batch without resetting weights.
func (m *neuralNet) PartialFit(x [][]float64, y []float64, epochs int) error {
	return m.PartialFitContext(context.Background(), x, y, epochs)
}

// PartialFitContext is PartialFit with cancellation at mini-batch
// boundaries.
func (m *neuralNet) PartialFitContext(ctx context.Context, x [][]float64, y []float64, epochs int) error {
	if err := checkXY(x, y, m.spec.InputDim); err != nil {
		return err
	}
	return m.partialFit(ctx, x, nil, y, epochs)
}

// PartialFitBatch is the flat, zero-copy training path: x is
// row-major with stride InputDim. Bit-exact with PartialFit over the
// equivalent [][]float64 batch.
func (m *neuralNet) PartialFitBatch(ctx context.Context, x []float64, y []float64, epochs int) error {
	if err := checkFlatXY(x, y, m.spec.InputDim); err != nil {
		return err
	}
	return m.partialFit(ctx, nil, x, y, epochs)
}

// partialFit drives epochs over either data representation.
func (m *neuralNet) partialFit(ctx context.Context, x2 [][]float64, xf []float64, y []float64, epochs int) error {
	if epochs < 1 {
		return fmt.Errorf("ml: partial fit epochs %d < 1", epochs)
	}
	if x2 != nil {
		m.stats.observe(x2, y)
	} else {
		m.stats.observeFlat(xf, y, m.spec.InputDim)
	}
	for e := 0; e < epochs; e++ {
		if err := m.runEpoch(ctx, x2, xf, y); err != nil {
			return err
		}
		m.applyDecay()
	}
	return nil
}

// runEpoch performs one shuffled pass of mini-batch backprop,
// checking ctx before every mini-batch.
func (m *neuralNet) runEpoch(ctx context.Context, x2 [][]float64, xf []float64, y []float64) error {
	n := len(y)
	if cap(m.scratch.perm) < n {
		m.scratch.perm = make([]int, n)
	}
	nb := m.spec.BatchSize
	if n < nb {
		nb = n
	}
	m.ensureBatchScratch(nb)
	perm := m.src.PermInto(m.scratch.perm[:n])
	for start := 0; start < n; start += m.spec.BatchSize {
		if err := ctx.Err(); err != nil {
			return err
		}
		end := start + m.spec.BatchSize
		if end > n {
			end = n
		}
		m.trainBatch(x2, xf, y, perm[start:end])
	}
	return nil
}

// ensureBatchScratch grows the batch-shaped scratch (input matrix,
// activation and delta backings, targets) to hold nb rows, and the
// flat gradient/parameter vectors. Growth is monotonic, so steady
// state never reallocates.
func (m *neuralNet) ensureBatchScratch(nb int) {
	widths := m.widths()
	if cap(m.scratch.input) < nb*m.spec.InputDim {
		m.scratch.input = make([]float64, nb*m.spec.InputDim)
	}
	if m.scratch.actBuf == nil {
		m.scratch.actBuf = make([][]float64, len(m.layers)+1)
		m.scratch.deltaBuf = make([][]float64, len(m.layers)+1)
	}
	for l := 1; l <= len(m.layers); l++ {
		if cap(m.scratch.actBuf[l]) < nb*widths[l] {
			m.scratch.actBuf[l] = make([]float64, nb*widths[l])
		}
		if cap(m.scratch.deltaBuf[l]) < nb*widths[l] {
			m.scratch.deltaBuf[l] = make([]float64, nb*widths[l])
		}
	}
	if cap(m.scratch.target) < nb {
		m.scratch.target = make([]float64, nb)
	}
	if m.scratch.grad == nil {
		m.scratch.grad = make([]float64, m.paramCount())
		m.scratch.params = make([]float64, m.paramCount())
	}
}

// trainBatch runs forward + backward on one mini-batch and applies
// the optimizer step. All matrices are views over the model's scratch
// backings; the arithmetic (and therefore the result) is bit-exact
// with the historical allocate-per-batch implementation.
func (m *neuralNet) trainBatch(x2 [][]float64, xf []float64, y []float64, batch []int) {
	n := len(batch)
	d := m.spec.InputDim
	input := matrix.NewDenseData(n, d, m.scratch.input[:n*d])
	target := m.scratch.target[:n]
	for i, idx := range batch {
		m.stats.normX(input.Row(i), rowAt(x2, xf, d, idx))
		target[i] = m.stats.normY(y[idx])
	}

	// Forward pass, keeping activation outputs per layer.
	acts := make([]*matrix.Dense, len(m.layers)+1)
	acts[0] = input
	for l, layer := range m.layers {
		z := matrix.NewDenseData(n, layer.w.Cols(), m.scratch.actBuf[l+1][:n*layer.w.Cols()])
		matrix.MulInto(z, acts[l], layer.w)
		z.AddRowVector(layer.b)
		if layer.hidden {
			z.Apply(m.act.fn)
		}
		acts[l+1] = z
	}

	// Output delta: dL/dz = 2(pred - target)/n for MSE.
	out := acts[len(m.layers)]
	delta := matrix.NewDenseData(n, 1, m.scratch.deltaBuf[len(m.layers)][:n])
	invN := 1 / float64(n)
	for i := 0; i < n; i++ {
		delta.Set(i, 0, 2*(out.At(i, 0)-target[i])*invN)
	}

	// Backward pass accumulating a flat gradient. The per-layer
	// weight and bias gradients are computed directly into their
	// segments of the flat vector (the Into kernels zero their
	// destination first), so no separate zeroing pass is needed.
	grad := m.scratch.grad
	offset := len(grad)
	for l := len(m.layers) - 1; l >= 0; l-- {
		layer := m.layers[l]
		wRows, wCols := layer.w.Rows(), layer.w.Cols()
		offset -= wRows*wCols + wCols

		// Gradient wrt weights: actsᵀ · delta.
		gw := matrix.NewDenseData(wRows, wCols, grad[offset:offset+wRows*wCols])
		matrix.MulTransAInto(gw, acts[l], delta)
		// Gradient wrt biases: column sums of delta.
		delta.ColSumsInto(grad[offset+wRows*wCols : offset+wRows*wCols+wCols])

		if l > 0 {
			// Propagate: delta_prev = (delta · wᵀ) ⊙ f'(acts[l]),
			// with f' expressed in terms of the activation output.
			next := matrix.NewDenseData(n, wRows, m.scratch.deltaBuf[l][:n*wRows])
			matrix.MulTransBInto(next, delta, layer.w)
			prevAct := acts[l]
			for i := 0; i < next.Rows(); i++ {
				row := next.Row(i)
				actRow := prevAct.Row(i)
				for j := range row {
					row[j] *= m.act.dFromOutput(actRow[j])
				}
			}
			delta = next
		}
	}

	// L2 weight decay: applies to weights, not biases.
	if m.spec.L2 > 0 {
		offset := 0
		for _, layer := range m.layers {
			n := layer.w.Rows() * layer.w.Cols()
			wdata := layer.w.Data()
			for i := 0; i < n; i++ {
				grad[offset+i] += m.spec.L2 * wdata[i]
			}
			offset += n + len(layer.b)
		}
	}

	clipGradient(grad, 50)
	params := m.flattenParamsInto(m.scratch.params)
	m.opt.step(params, grad)
	m.loadParams(params)
}

// forward computes the standardized output for one input vector.
func (m *neuralNet) forward(x []float64) float64 {
	cur := make([]float64, len(x))
	m.stats.normX(cur, x)
	for _, layer := range m.layers {
		next := make([]float64, layer.w.Cols())
		for j := range next {
			sum := layer.b[j]
			for i, v := range cur {
				sum += v * layer.w.At(i, j)
			}
			if layer.hidden {
				sum = m.act.fn(sum)
			}
			next[j] = sum
		}
		cur = next
	}
	return cur[0]
}

// Predict returns the raw-scale prediction for one input.
func (m *neuralNet) Predict(x []float64) float64 {
	return m.stats.denormY(m.forward(x))
}

// PredictBatch returns raw-scale predictions for many inputs. Batches
// run through the matrix forward pass, which amortizes the layer loops
// far better than per-sample prediction.
func (m *neuralNet) PredictBatch(x [][]float64) []float64 {
	if len(x) == 0 {
		return nil
	}
	input := matrix.NewDense(len(x), m.spec.InputDim)
	for i, row := range x {
		if len(row) != m.spec.InputDim {
			panic(fmt.Sprintf("ml: input %d has %d features, want %d", i, len(row), m.spec.InputDim))
		}
		m.stats.normX(input.Row(i), row)
	}
	cur := input
	for _, layer := range m.layers {
		z := matrix.Mul(cur, layer.w)
		z.AddRowVector(layer.b)
		if layer.hidden {
			z.Apply(m.act.fn)
		}
		cur = z
	}
	out := make([]float64, len(x))
	for i := range out {
		out[i] = m.stats.denormY(cur.At(i, 0))
	}
	return out
}

// flattenParams serializes weights+biases layer by layer.
func (m *neuralNet) flattenParams() []float64 {
	return m.flattenParamsInto(make([]float64, m.paramCount()))
}

// flattenParamsInto serializes weights+biases into the given buffer
// (length paramCount) and returns it.
func (m *neuralNet) flattenParamsInto(out []float64) []float64 {
	offset := 0
	for _, l := range m.layers {
		offset += copy(out[offset:], l.w.Data())
		offset += copy(out[offset:], l.b)
	}
	return out
}

// loadParams restores weights+biases from a flat vector.
func (m *neuralNet) loadParams(v []float64) {
	offset := 0
	for _, l := range m.layers {
		n := l.w.Rows() * l.w.Cols()
		copy(l.w.Data(), v[offset:offset+n])
		offset += n
		copy(l.b, v[offset:offset+len(l.b)])
		offset += len(l.b)
	}
}

// Params exports weights, biases and normalization state.
func (m *neuralNet) Params() Params {
	dims := []int{m.spec.InputDim}
	dims = append(dims, m.spec.Hidden...)
	dims = append(dims, 1)
	values := m.flattenParams()
	values = append(values, m.stats.flatten()...)
	return Params{Kind: KindNN, Dims: dims, Values: values}
}

// SetParams loads an exported snapshot.
func (m *neuralNet) SetParams(p Params) error {
	want := m.Params()
	if !p.Compatible(want) {
		return fmt.Errorf("ml: incompatible params (kind %q dims %v) for nn dims %v", p.Kind, p.Dims, want.Dims)
	}
	n := m.paramCount()
	m.loadParams(p.Values[:n])
	m.stats.unflatten(p.Values[n:])
	m.opt.reset()
	return nil
}

// PredictFlat writes raw-scale predictions for the flat row-major
// input buffer into out via one batched forward pass over the model's
// scratch backings.
func (m *neuralNet) PredictFlat(x []float64, out []float64) {
	n := len(out)
	d := m.spec.InputDim
	if len(x) != n*d {
		panic(fmt.Sprintf("ml: flat predict length %d != %d samples x %d features", len(x), n, d))
	}
	if n == 0 {
		return
	}
	m.ensureBatchScratch(n)
	input := matrix.NewDenseData(n, d, m.scratch.input[:n*d])
	for i := 0; i < n; i++ {
		m.stats.normX(input.Row(i), x[i*d:(i+1)*d])
	}
	cur := input
	for l, layer := range m.layers {
		z := matrix.NewDenseData(n, layer.w.Cols(), m.scratch.actBuf[l+1][:n*layer.w.Cols()])
		matrix.MulInto(z, cur, layer.w)
		z.AddRowVector(layer.b)
		if layer.hidden {
			z.Apply(m.act.fn)
		}
		cur = z
	}
	for i := range out {
		out[i] = m.stats.denormY(cur.At(i, 0))
	}
}

// Reinit re-seeds and re-initializes the model in place (see Model).
// Weight matrices, bias vectors and scratch are reused; the RNG draws
// mirror newNeuralNet exactly, so the state is bit-exact with a fresh
// construction.
func (m *neuralNet) Reinit(seed uint64, params Params) error {
	m.src = rng.New(seed)
	for _, layer := range m.layers {
		in, out := layer.w.Rows(), layer.w.Cols()
		scale := math.Sqrt(2 / float64(in))
		for i := 0; i < in; i++ {
			for j := 0; j < out; j++ {
				layer.w.Set(i, j, m.src.Normal(0, scale))
			}
		}
		for j := range layer.b {
			layer.b[j] = 0
		}
	}
	m.stats.reset()
	m.opt.reset()
	m.opt.setLR(m.spec.LearningRate)
	m.history = History{}
	if len(params.Values) > 0 {
		return m.SetParams(params)
	}
	return nil
}

// Clone returns an independent copy.
func (m *neuralNet) Clone() Model {
	layers := make([]denseLayer, len(m.layers))
	for i, l := range m.layers {
		layers[i] = denseLayer{w: l.w.Clone(), b: append([]float64(nil), l.b...), hidden: l.hidden}
	}
	return &neuralNet{
		spec:   m.spec,
		act:    m.act,
		layers: layers,
		stats:  m.stats.clone(),
		opt:    m.opt.clone(),
		src:    m.src.Split(),
		history: History{
			TrainLoss: append([]float64(nil), m.history.TrainLoss...),
			ValLoss:   append([]float64(nil), m.history.ValLoss...),
		},
	}
}

// History returns the last Fit's loss curves.
func (m *neuralNet) History() History { return m.history }

// applyDecay applies the spec's per-epoch learning-rate decay.
func (m *neuralNet) applyDecay() { applyDecay(m.opt, m.spec.LRDecay) }
