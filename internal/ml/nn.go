package ml

import (
	"fmt"
	"math"

	"qens/internal/matrix"
	"qens/internal/rng"
)

// neuralNet is the paper's NN model: a dense multi-layer perceptron
// with relu hidden activations and a linear output unit, trained with
// mini-batch gradient descent under MSE loss (Table III: one hidden
// layer of 64 units, lr 0.001, 100 epochs, validation split 0.2).
// Like the linear model it standardizes inputs/targets with streaming
// statistics.
type neuralNet struct {
	spec    Spec
	act     activation
	layers  []denseLayer
	stats   *runningStats
	opt     optimizer
	src     *rng.Source
	history History
}

// denseLayer holds weights (in x out) and biases (out). hidden marks
// layers followed by the nonlinearity; the output layer is linear.
type denseLayer struct {
	w      *matrix.Dense
	b      []float64
	hidden bool
}

func newNeuralNet(spec Spec, src *rng.Source) *neuralNet {
	act, err := lookupActivation(spec.Activation)
	if err != nil {
		// Spec.Validate runs before construction; this is a
		// programming error, not a data condition.
		panic(err)
	}
	widths := append([]int{spec.InputDim}, spec.Hidden...)
	widths = append(widths, 1)
	layers := make([]denseLayer, len(widths)-1)
	for l := range layers {
		in, out := widths[l], widths[l+1]
		w := matrix.NewDense(in, out)
		// He initialization for relu layers.
		scale := math.Sqrt(2 / float64(in))
		for i := 0; i < in; i++ {
			for j := 0; j < out; j++ {
				w.Set(i, j, src.Normal(0, scale))
			}
		}
		layers[l] = denseLayer{w: w, b: make([]float64, out), hidden: l < len(layers)-1}
	}
	m := &neuralNet{
		spec:   spec,
		act:    act,
		layers: layers,
		stats:  newRunningStats(spec.InputDim),
		src:    src,
	}
	m.opt = newOptimizer(spec.Optimizer, spec.LearningRate, m.paramCount())
	return m
}

func (m *neuralNet) paramCount() int {
	n := 0
	for _, l := range m.layers {
		n += l.w.Rows()*l.w.Cols() + len(l.b)
	}
	return n
}

// Fit trains for the configured epochs with a validation split.
func (m *neuralNet) Fit(x [][]float64, y []float64) error {
	if err := checkXY(x, y, m.spec.InputDim); err != nil {
		return err
	}
	m.history = History{}
	tx, ty, vx, vy := splitTrainVal(x, y, m.spec.ValidationSplit, m.src)
	if len(tx) == 0 {
		tx, ty = x, y
	}
	m.stats.observe(tx, ty)
	for epoch := 0; epoch < m.spec.Epochs; epoch++ {
		m.runEpoch(tx, ty)
		m.history.TrainLoss = append(m.history.TrainLoss, MSE(ty, m.PredictBatch(tx)))
		if len(vx) > 0 {
			m.history.ValLoss = append(m.history.ValLoss, MSE(vy, m.PredictBatch(vx)))
		}
		if stopEarly(m.history.ValLoss, m.spec.Patience) {
			break
		}
		m.applyDecay()
	}
	return nil
}

// PartialFit continues training on a batch without resetting weights.
func (m *neuralNet) PartialFit(x [][]float64, y []float64, epochs int) error {
	if err := checkXY(x, y, m.spec.InputDim); err != nil {
		return err
	}
	if epochs < 1 {
		return fmt.Errorf("ml: partial fit epochs %d < 1", epochs)
	}
	m.stats.observe(x, y)
	for e := 0; e < epochs; e++ {
		m.runEpoch(x, y)
		m.applyDecay()
	}
	return nil
}

// runEpoch performs one shuffled pass of mini-batch backprop.
func (m *neuralNet) runEpoch(x [][]float64, y []float64) {
	perm := m.src.Perm(len(x))
	for start := 0; start < len(perm); start += m.spec.BatchSize {
		end := start + m.spec.BatchSize
		if end > len(perm) {
			end = len(perm)
		}
		m.trainBatch(x, y, perm[start:end])
	}
}

// trainBatch runs forward + backward on one mini-batch and applies the
// optimizer step.
func (m *neuralNet) trainBatch(x [][]float64, y []float64, batch []int) {
	n := len(batch)
	input := matrix.NewDense(n, m.spec.InputDim)
	target := make([]float64, n)
	for i, idx := range batch {
		m.stats.normX(input.Row(i), x[idx])
		target[i] = m.stats.normY(y[idx])
	}

	// Forward pass, keeping activation outputs per layer.
	acts := make([]*matrix.Dense, len(m.layers)+1)
	acts[0] = input
	for l, layer := range m.layers {
		z := matrix.Mul(acts[l], layer.w)
		z.AddRowVector(layer.b)
		if layer.hidden {
			z.Apply(m.act.fn)
		}
		acts[l+1] = z
	}

	// Output delta: dL/dz = 2(pred - target)/n for MSE.
	out := acts[len(m.layers)]
	delta := matrix.NewDense(n, 1)
	invN := 1 / float64(n)
	for i := 0; i < n; i++ {
		delta.Set(i, 0, 2*(out.At(i, 0)-target[i])*invN)
	}

	// Backward pass accumulating a flat gradient.
	grad := make([]float64, m.paramCount())
	offset := len(grad)
	for l := len(m.layers) - 1; l >= 0; l-- {
		layer := m.layers[l]
		wRows, wCols := layer.w.Rows(), layer.w.Cols()
		offset -= wRows*wCols + wCols

		// Gradient wrt weights: actsᵀ · delta.
		gw := matrix.MulTransA(acts[l], delta)
		copy(grad[offset:offset+wRows*wCols], gw.Data())
		// Gradient wrt biases: column sums of delta.
		gb := delta.ColSums()
		copy(grad[offset+wRows*wCols:offset+wRows*wCols+wCols], gb)

		if l > 0 {
			// Propagate: delta_prev = (delta · wᵀ) ⊙ f'(acts[l]),
			// with f' expressed in terms of the activation output.
			next := matrix.MulTransB(delta, layer.w)
			prevAct := acts[l]
			for i := 0; i < next.Rows(); i++ {
				row := next.Row(i)
				actRow := prevAct.Row(i)
				for j := range row {
					row[j] *= m.act.dFromOutput(actRow[j])
				}
			}
			delta = next
		}
	}

	// L2 weight decay: applies to weights, not biases.
	if m.spec.L2 > 0 {
		offset := 0
		for _, layer := range m.layers {
			n := layer.w.Rows() * layer.w.Cols()
			wdata := layer.w.Data()
			for i := 0; i < n; i++ {
				grad[offset+i] += m.spec.L2 * wdata[i]
			}
			offset += n + len(layer.b)
		}
	}

	clipGradient(grad, 50)
	params := m.flattenParams()
	m.opt.step(params, grad)
	m.loadParams(params)
}

// forward computes the standardized output for one input vector.
func (m *neuralNet) forward(x []float64) float64 {
	cur := make([]float64, len(x))
	m.stats.normX(cur, x)
	for _, layer := range m.layers {
		next := make([]float64, layer.w.Cols())
		for j := range next {
			sum := layer.b[j]
			for i, v := range cur {
				sum += v * layer.w.At(i, j)
			}
			if layer.hidden {
				sum = m.act.fn(sum)
			}
			next[j] = sum
		}
		cur = next
	}
	return cur[0]
}

// Predict returns the raw-scale prediction for one input.
func (m *neuralNet) Predict(x []float64) float64 {
	return m.stats.denormY(m.forward(x))
}

// PredictBatch returns raw-scale predictions for many inputs. Batches
// run through the matrix forward pass, which amortizes the layer loops
// far better than per-sample prediction.
func (m *neuralNet) PredictBatch(x [][]float64) []float64 {
	if len(x) == 0 {
		return nil
	}
	input := matrix.NewDense(len(x), m.spec.InputDim)
	for i, row := range x {
		if len(row) != m.spec.InputDim {
			panic(fmt.Sprintf("ml: input %d has %d features, want %d", i, len(row), m.spec.InputDim))
		}
		m.stats.normX(input.Row(i), row)
	}
	cur := input
	for _, layer := range m.layers {
		z := matrix.Mul(cur, layer.w)
		z.AddRowVector(layer.b)
		if layer.hidden {
			z.Apply(m.act.fn)
		}
		cur = z
	}
	out := make([]float64, len(x))
	for i := range out {
		out[i] = m.stats.denormY(cur.At(i, 0))
	}
	return out
}

// flattenParams serializes weights+biases layer by layer.
func (m *neuralNet) flattenParams() []float64 {
	out := make([]float64, 0, m.paramCount())
	for _, l := range m.layers {
		out = append(out, l.w.Data()...)
		out = append(out, l.b...)
	}
	return out
}

// loadParams restores weights+biases from a flat vector.
func (m *neuralNet) loadParams(v []float64) {
	offset := 0
	for _, l := range m.layers {
		n := l.w.Rows() * l.w.Cols()
		copy(l.w.Data(), v[offset:offset+n])
		offset += n
		copy(l.b, v[offset:offset+len(l.b)])
		offset += len(l.b)
	}
}

// Params exports weights, biases and normalization state.
func (m *neuralNet) Params() Params {
	dims := []int{m.spec.InputDim}
	dims = append(dims, m.spec.Hidden...)
	dims = append(dims, 1)
	values := m.flattenParams()
	values = append(values, m.stats.flatten()...)
	return Params{Kind: KindNN, Dims: dims, Values: values}
}

// SetParams loads an exported snapshot.
func (m *neuralNet) SetParams(p Params) error {
	want := m.Params()
	if !p.Compatible(want) {
		return fmt.Errorf("ml: incompatible params (kind %q dims %v) for nn dims %v", p.Kind, p.Dims, want.Dims)
	}
	n := m.paramCount()
	m.loadParams(p.Values[:n])
	m.stats.unflatten(p.Values[n:])
	m.opt.reset()
	return nil
}

// Clone returns an independent copy.
func (m *neuralNet) Clone() Model {
	layers := make([]denseLayer, len(m.layers))
	for i, l := range m.layers {
		layers[i] = denseLayer{w: l.w.Clone(), b: append([]float64(nil), l.b...), hidden: l.hidden}
	}
	return &neuralNet{
		spec:   m.spec,
		act:    m.act,
		layers: layers,
		stats:  m.stats.clone(),
		opt:    m.opt.clone(),
		src:    m.src.Split(),
		history: History{
			TrainLoss: append([]float64(nil), m.history.TrainLoss...),
			ValLoss:   append([]float64(nil), m.history.ValLoss...),
		},
	}
}

// History returns the last Fit's loss curves.
func (m *neuralNet) History() History { return m.history }

// applyDecay applies the spec's per-epoch learning-rate decay.
func (m *neuralNet) applyDecay() { applyDecay(m.opt, m.spec.LRDecay) }
