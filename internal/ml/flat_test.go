package ml

import (
	"context"
	"errors"
	"testing"
)

// flatSpecs returns one spec per model family, exercising the
// non-default optimizer/decay paths so Reinit has real state to reset.
func flatSpecs() []Spec {
	lr := PaperLR(3)
	lr.LRDecay = 0.97
	nn := PaperNN(3)
	nn.Hidden = []int{8, 4}
	nn.L2 = 1e-4
	return []Spec{lr, nn}
}

// flatBatch synthesizes a deterministic training batch in both
// representations.
func flatBatch(n, d int) (x2 [][]float64, xf []float64, y []float64) {
	xf = make([]float64, n*d)
	x2 = make([][]float64, n)
	y = make([]float64, n)
	for i := 0; i < n; i++ {
		row := xf[i*d : (i+1)*d]
		for j := range row {
			row[j] = float64((i*7+j*3)%13) - 6 + float64(i)/17
		}
		x2[i] = row
		y[i] = 2*row[0] - row[1] + 0.5*row[2] + float64(i%5)
	}
	return x2, xf, y
}

// TestPartialFitBatchBitExact verifies the flat zero-copy training
// path produces bit-identical parameters to the [][]float64 path for
// both model families — the contract the engine's golden equivalence
// rests on.
func TestPartialFitBatchBitExact(t *testing.T) {
	for _, spec := range flatSpecs() {
		spec.Seed = 5
		x2, xf, y := flatBatch(101, spec.InputDim)

		a := spec.MustNew()
		if err := a.PartialFit(x2, y, 3); err != nil {
			t.Fatal(err)
		}
		b := spec.MustNew()
		if err := b.PartialFitBatch(context.Background(), xf, y, 3); err != nil {
			t.Fatal(err)
		}
		pa, pb := a.Params(), b.Params()
		if len(pa.Values) != len(pb.Values) {
			t.Fatalf("%s: param lengths %d vs %d", spec.Kind, len(pa.Values), len(pb.Values))
		}
		for i := range pa.Values {
			if pa.Values[i] != pb.Values[i] {
				t.Fatalf("%s: param %d: flat %v != 2d %v", spec.Kind, i, pb.Values[i], pa.Values[i])
			}
		}
	}
}

// TestPredictFlatBitExact verifies flat prediction matches
// PredictBatch bit-exactly — the batched path the legacy evaluation
// loop used, and therefore the contract the engine's golden
// equivalence rests on. (Per-row Predict uses a different FP
// accumulation order for the NN — bias-first — so it is NOT the
// reference here.)
func TestPredictFlatBitExact(t *testing.T) {
	for _, spec := range flatSpecs() {
		spec.Seed = 9
		x2, xf, y := flatBatch(64, spec.InputDim)
		m := spec.MustNew()
		if err := m.PartialFit(x2, y, 2); err != nil {
			t.Fatal(err)
		}
		out := make([]float64, len(y))
		m.PredictFlat(xf, out)
		want := m.PredictBatch(x2)
		for i := range want {
			if out[i] != want[i] {
				t.Fatalf("%s: sample %d: flat %v != batch %v", spec.Kind, i, out[i], want[i])
			}
		}
	}
}

// TestReinitBitExactWithFresh verifies pool-style arena reuse: a used
// model Reinit'ed with a new seed must be indistinguishable — same
// params after the same training — from a freshly constructed one.
func TestReinitBitExactWithFresh(t *testing.T) {
	for _, spec := range flatSpecs() {
		x2, _, y := flatBatch(80, spec.InputDim)

		dirty := spec
		dirty.Seed = 1
		m := dirty.MustNew()
		if err := m.PartialFit(x2, y, 2); err != nil { // accumulate state
			t.Fatal(err)
		}
		if err := m.Reinit(77, Params{}); err != nil {
			t.Fatal(err)
		}
		fresh := spec
		fresh.Seed = 77
		f := fresh.MustNew()

		for round := 0; round < 2; round++ {
			if err := m.PartialFit(x2, y, 1); err != nil {
				t.Fatal(err)
			}
			if err := f.PartialFit(x2, y, 1); err != nil {
				t.Fatal(err)
			}
		}
		pm, pf := m.Params(), f.Params()
		for i := range pf.Values {
			if pm.Values[i] != pf.Values[i] {
				t.Fatalf("%s: param %d: reinit %v != fresh %v", spec.Kind, i, pm.Values[i], pf.Values[i])
			}
		}
	}
}

// TestReinitLoadsParams verifies Reinit(seed, params) equals fresh
// construction + SetParams.
func TestReinitLoadsParams(t *testing.T) {
	for _, spec := range flatSpecs() {
		spec.Seed = 3
		x2, _, y := flatBatch(60, spec.InputDim)
		donor := spec.MustNew()
		if err := donor.PartialFit(x2, y, 1); err != nil {
			t.Fatal(err)
		}
		snapshot := donor.Params()

		m := spec.MustNew()
		if err := m.PartialFit(x2, y, 3); err != nil {
			t.Fatal(err)
		}
		if err := m.Reinit(3, snapshot); err != nil {
			t.Fatal(err)
		}
		f := spec.MustNew()
		if err := f.SetParams(snapshot); err != nil {
			t.Fatal(err)
		}
		if err := m.PartialFit(x2, y, 1); err != nil {
			t.Fatal(err)
		}
		if err := f.PartialFit(x2, y, 1); err != nil {
			t.Fatal(err)
		}
		pm, pf := m.Params(), f.Params()
		for i := range pf.Values {
			if pm.Values[i] != pf.Values[i] {
				t.Fatalf("%s: param %d: reinit+params %v != fresh+set %v", spec.Kind, i, pm.Values[i], pf.Values[i])
			}
		}
	}
}

// TestPartialFitContextCancel verifies training aborts at a mini-batch
// boundary once the context is done.
func TestPartialFitContextCancel(t *testing.T) {
	for _, spec := range flatSpecs() {
		spec.Seed = 2
		x2, _, y := flatBatch(128, spec.InputDim)
		m := spec.MustNew()
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		if err := m.PartialFitContext(ctx, x2, y, 1); !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: canceled fit returned %v", spec.Kind, err)
		}
	}
}

// TestPartialFitBatchSteadyStateZeroAlloc pins the LR flat path's
// allocation contract: after a warm-up call, repeated flat fits and
// predictions on same-shaped batches allocate nothing.
func TestPartialFitBatchSteadyStateZeroAlloc(t *testing.T) {
	spec := PaperLR(3)
	spec.Seed = 4
	_, xf, y := flatBatch(256, spec.InputDim)
	m := spec.MustNew()
	ctx := context.Background()
	if err := m.PartialFitBatch(ctx, xf, y, 1); err != nil { // warm scratch
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if err := m.PartialFitBatch(ctx, xf, y, 1); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state PartialFitBatch allocates %v per run", allocs)
	}
	out := make([]float64, len(y))
	allocs = testing.AllocsPerRun(20, func() { m.PredictFlat(xf, out) })
	if allocs != 0 {
		t.Fatalf("steady-state PredictFlat allocates %v per run", allocs)
	}
}
