package ml

import (
	"encoding/json"
	"fmt"
	"math"
)

// Params serialization. JSON keeps the wire format debuggable (the
// transport layer frames JSON anyway); MarshalBinaryCompact provides a
// dense fixed-width encoding for size-sensitive contexts.

// EncodeParams serializes a snapshot to JSON.
func EncodeParams(p Params) ([]byte, error) {
	for i, v := range p.Values {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("ml: params value %d is non-finite (%v)", i, v)
		}
	}
	return json.Marshal(p)
}

// DecodeParams restores a snapshot from JSON, validating structure.
func DecodeParams(data []byte) (Params, error) {
	var p Params
	if err := json.Unmarshal(data, &p); err != nil {
		return Params{}, fmt.Errorf("ml: decode params: %w", err)
	}
	if err := p.Validate(); err != nil {
		return Params{}, err
	}
	return p, nil
}

// Validate checks structural sanity of a snapshot.
func (p Params) Validate() error {
	if p.Kind != KindLinear && p.Kind != KindNN {
		return fmt.Errorf("ml: params have unknown kind %q", p.Kind)
	}
	if len(p.Dims) < 2 {
		return fmt.Errorf("ml: params need at least input and output dims, got %v", p.Dims)
	}
	for i, d := range p.Dims {
		if d < 1 {
			return fmt.Errorf("ml: params dim %d is %d", i, d)
		}
	}
	want, err := expectedValueCount(p.Kind, p.Dims)
	if err != nil {
		return err
	}
	if len(p.Values) != want {
		return fmt.Errorf("ml: params have %d values, want %d for %s %v", len(p.Values), want, p.Kind, p.Dims)
	}
	for i, v := range p.Values {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("ml: params value %d is non-finite (%v)", i, v)
		}
	}
	return nil
}

// expectedValueCount computes the flat length implied by an
// architecture fingerprint: weights + biases per layer, plus the
// streaming-normalization state (statsFlatLen over the input dim).
func expectedValueCount(kind string, dims []int) (int, error) {
	switch kind {
	case KindLinear:
		if len(dims) != 2 || dims[1] != 1 {
			return 0, fmt.Errorf("ml: linear params must have dims [in 1], got %v", dims)
		}
		return dims[0] + 1 + statsFlatLen(dims[0]), nil
	case KindNN:
		n := 0
		for l := 0; l+1 < len(dims); l++ {
			n += dims[l]*dims[l+1] + dims[l+1]
		}
		return n + statsFlatLen(dims[0]), nil
	default:
		return 0, fmt.Errorf("ml: unknown params kind %q", kind)
	}
}

// NewFromParams reconstructs a ready-to-predict model from a snapshot
// alone, inferring the architecture from the fingerprint. The training
// hyper-parameters are not recoverable from a snapshot, so the model
// uses spec defaults; load into an explicit Spec-built model when you
// intend to keep training.
func NewFromParams(p Params) (Model, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	spec := Spec{Kind: p.Kind, InputDim: p.Dims[0]}
	if p.Kind == KindNN {
		spec.Hidden = append([]int(nil), p.Dims[1:len(p.Dims)-1]...)
	}
	m, err := spec.New()
	if err != nil {
		return nil, err
	}
	if err := m.SetParams(p); err != nil {
		return nil, err
	}
	return m, nil
}
