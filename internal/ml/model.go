// Package ml is the machine-learning substrate replacing the paper's
// Keras usage: linear regression and dense neural networks with
// mini-batch gradient training, MSE loss, relu activations, validation
// splits and the Table III hyper-parameters, plus regression metrics.
//
// Models train incrementally (PartialFit) so that a node can feed each
// supporting cluster as a mini-batch in turn, exactly the incremental
// per-cluster training loop of §IV-B, and their parameters serialize
// to flat vectors so local models can travel to the leader.
package ml

import (
	"context"
	"errors"
	"fmt"

	"qens/internal/rng"
)

// Model is a trainable regression model.
//
// A Model is not safe for concurrent use: the flat-batch methods
// reuse per-model scratch buffers (gradients, activations,
// permutations) across calls, which is what keeps the training inner
// loop allocation-free. The node-side engine (internal/engine) hands
// each in-flight request its own pooled model instance.
type Model interface {
	// Fit trains from scratch for the spec's configured number of
	// epochs, using the spec's validation split for held-out loss
	// tracking.
	Fit(x [][]float64, y []float64) error
	// PartialFit continues training on a batch for the given number
	// of local epochs without resetting parameters — the paper's
	// per-cluster incremental step (each supporting cluster is a
	// mini-batch, §IV-A Remark).
	PartialFit(x [][]float64, y []float64, epochs int) error
	// PartialFitContext is PartialFit with cancellation: ctx is
	// checked at every mini-batch boundary, so a slow fit stops
	// consuming compute shortly after its deadline expires instead
	// of outliving it.
	PartialFitContext(ctx context.Context, x [][]float64, y []float64, epochs int) error
	// PartialFitBatch is the zero-copy training path: x is a flat
	// row-major feature buffer with stride InputDim (len(x) ==
	// len(y)*InputDim), typically filled by dataset.View.XYInto into
	// a pooled buffer. Arithmetic is bit-exact with PartialFit over
	// the equivalent [][]float64 batch. ctx is checked at mini-batch
	// boundaries.
	PartialFitBatch(ctx context.Context, x []float64, y []float64, epochs int) error
	// Predict returns the model output for a single input.
	Predict(x []float64) float64
	// PredictBatch returns outputs for many inputs.
	PredictBatch(x [][]float64) []float64
	// PredictFlat writes predictions for the flat row-major input
	// buffer (stride InputDim, len(x) == len(out)*InputDim) into
	// out, reusing model scratch instead of allocating.
	PredictFlat(x []float64, out []float64)
	// Params exports the parameters for transport or aggregation.
	Params() Params
	// SetParams loads previously exported parameters.
	SetParams(Params) error
	// Reinit re-seeds and re-initializes the model in place, as if
	// freshly constructed by Spec.New with the given seed, then
	// loads params when non-empty. Weight and scratch storage is
	// reused — this is the model pool's arena-reuse hook
	// (internal/engine). The resulting state is bit-exact with a
	// fresh construction: the same RNG draws happen in the same
	// order.
	Reinit(seed uint64, params Params) error
	// Clone returns an independent copy with identical parameters.
	Clone() Model
	// History returns per-epoch losses from the most recent Fit.
	History() History
}

// Params is a flat, serializable snapshot of model parameters.
type Params struct {
	Kind   string    `json:"kind"`
	Dims   []int     `json:"dims"` // architecture fingerprint for compatibility checks
	Values []float64 `json:"values"`
}

// Compatible reports whether two parameter snapshots describe the same
// architecture.
func (p Params) Compatible(other Params) bool {
	if p.Kind != other.Kind || len(p.Dims) != len(other.Dims) || len(p.Values) != len(other.Values) {
		return false
	}
	for i, d := range p.Dims {
		if other.Dims[i] != d {
			return false
		}
	}
	return true
}

// Clone returns a deep copy of the snapshot.
func (p Params) Clone() Params {
	return Params{
		Kind:   p.Kind,
		Dims:   append([]int(nil), p.Dims...),
		Values: append([]float64(nil), p.Values...),
	}
}

// History records per-epoch training progress.
type History struct {
	TrainLoss []float64 `json:"train_loss"`
	ValLoss   []float64 `json:"val_loss"`
}

// Spec describes a model architecture and its training
// hyper-parameters; it is the factory for Model values.
type Spec struct {
	// Kind selects the model family: "linear" or "nn".
	Kind string
	// InputDim is the number of features.
	InputDim int
	// Hidden lists hidden-layer widths (nn only).
	Hidden []int
	// LearningRate for gradient descent.
	LearningRate float64
	// Epochs for a full Fit (Table III: 100).
	Epochs int
	// BatchSize for mini-batch SGD (default 32).
	BatchSize int
	// ValidationSplit holds out this fraction during Fit for
	// validation-loss tracking (Table III: 0.2).
	ValidationSplit float64
	// Optimizer selects the update rule: "sgd" (default),
	// "momentum" or "adam".
	Optimizer string
	// Activation names the hidden-layer nonlinearity for nn models:
	// "relu" (default, Table III), "tanh", "sigmoid" or "linear".
	Activation string
	// L2 is the weight-decay coefficient added to the gradient of
	// every weight (not biases); 0 disables regularization.
	L2 float64
	// LRDecay multiplies the learning rate after every epoch when
	// in (0, 1); 0 (or 1) disables decay.
	LRDecay float64
	// Patience enables early stopping during Fit: training stops
	// once the validation loss has not improved for Patience
	// consecutive epochs (requires ValidationSplit > 0; 0 disables).
	Patience int
	// Seed makes weight initialization and batch shuffling
	// deterministic.
	Seed uint64
}

// Model kinds.
const (
	KindLinear = "linear"
	KindNN     = "nn"
)

// PaperLR returns the paper's LR hyper-parameters (Table III: one
// dense unit, learning rate 0.03, 100 epochs, validation split 0.2,
// MSE loss) for the given input dimensionality.
func PaperLR(inputDim int) Spec {
	return Spec{
		Kind:            KindLinear,
		InputDim:        inputDim,
		LearningRate:    0.03,
		Epochs:          100,
		ValidationSplit: 0.2,
	}
}

// PaperNN returns the paper's NN hyper-parameters (Table III: 64 dense
// units, relu, learning rate 0.001, 100 epochs, validation split 0.2,
// MSE loss) for the given input dimensionality.
func PaperNN(inputDim int) Spec {
	return Spec{
		Kind:            KindNN,
		InputDim:        inputDim,
		Hidden:          []int{64},
		LearningRate:    0.001,
		Epochs:          100,
		ValidationSplit: 0.2,
		Optimizer:       "adam",
	}
}

func (s Spec) withDefaults() Spec {
	if s.BatchSize == 0 {
		s.BatchSize = 32
	}
	if s.Epochs == 0 {
		s.Epochs = 100
	}
	if s.LearningRate == 0 {
		s.LearningRate = 0.01
	}
	if s.Optimizer == "" {
		s.Optimizer = "sgd"
	}
	return s
}

// Validate checks the specification.
func (s Spec) Validate() error {
	s = s.withDefaults()
	if s.Kind != KindLinear && s.Kind != KindNN {
		return fmt.Errorf("ml: unknown model kind %q", s.Kind)
	}
	if s.InputDim < 1 {
		return fmt.Errorf("ml: input dim %d < 1", s.InputDim)
	}
	if s.Kind == KindNN && len(s.Hidden) == 0 {
		return errors.New("ml: nn spec needs at least one hidden layer")
	}
	for _, h := range s.Hidden {
		if h < 1 {
			return fmt.Errorf("ml: hidden width %d < 1", h)
		}
	}
	if s.LearningRate <= 0 {
		return fmt.Errorf("ml: learning rate %v <= 0", s.LearningRate)
	}
	if s.Epochs < 1 {
		return fmt.Errorf("ml: epochs %d < 1", s.Epochs)
	}
	if s.BatchSize < 1 {
		return fmt.Errorf("ml: batch size %d < 1", s.BatchSize)
	}
	if s.ValidationSplit < 0 || s.ValidationSplit >= 1 {
		return fmt.Errorf("ml: validation split %v outside [0,1)", s.ValidationSplit)
	}
	switch s.Optimizer {
	case "sgd", "momentum", "adam":
	default:
		return fmt.Errorf("ml: unknown optimizer %q", s.Optimizer)
	}
	if _, err := lookupActivation(s.Activation); err != nil {
		return err
	}
	if s.L2 < 0 {
		return fmt.Errorf("ml: negative L2 coefficient %v", s.L2)
	}
	if s.Patience < 0 {
		return fmt.Errorf("ml: negative patience %d", s.Patience)
	}
	if s.LRDecay < 0 || s.LRDecay > 1 {
		return fmt.Errorf("ml: LR decay %v outside [0,1]", s.LRDecay)
	}
	if s.Patience > 0 && s.ValidationSplit == 0 {
		return fmt.Errorf("ml: early stopping (patience %d) requires a validation split", s.Patience)
	}
	return nil
}

// stopEarly reports whether the validation-loss history justifies
// stopping: the best value is at least patience epochs old.
func stopEarly(valLoss []float64, patience int) bool {
	if patience <= 0 || len(valLoss) <= patience {
		return false
	}
	best := 0
	for i, v := range valLoss {
		if v < valLoss[best] {
			best = i
		}
	}
	return len(valLoss)-1-best >= patience
}

// New instantiates a model from the spec.
func (s Spec) New() (Model, error) {
	s = s.withDefaults()
	if err := s.Validate(); err != nil {
		return nil, err
	}
	src := rng.New(s.Seed)
	switch s.Kind {
	case KindLinear:
		return newLinear(s, src), nil
	case KindNN:
		return newNeuralNet(s, src), nil
	}
	return nil, fmt.Errorf("ml: unknown model kind %q", s.Kind)
}

// MustNew is New that panics on error, for tests and examples.
func (s Spec) MustNew() Model {
	m, err := s.New()
	if err != nil {
		panic(err)
	}
	return m
}

// Fingerprint returns a stable identity for the model architecture
// and training hyper-parameters, excluding the Seed: two specs with
// equal fingerprints produce interchangeable model instances up to
// re-seeding. The node-side model pool (internal/engine) keys its
// arenas on this.
func (s Spec) Fingerprint() string {
	s = s.withDefaults()
	return fmt.Sprintf("%s|in=%d|h=%v|lr=%g|ep=%d|bs=%d|vs=%g|opt=%s|act=%s|l2=%g|dec=%g|pat=%d",
		s.Kind, s.InputDim, s.Hidden, s.LearningRate, s.Epochs, s.BatchSize,
		s.ValidationSplit, s.Optimizer, s.Activation, s.L2, s.LRDecay, s.Patience)
}

// checkFlatXY validates a flat row-major training batch: len(x) must
// be len(y)*inputDim.
func checkFlatXY(x []float64, y []float64, inputDim int) error {
	if len(y) == 0 {
		return errors.New("ml: empty training batch")
	}
	if len(x) != len(y)*inputDim {
		return fmt.Errorf("ml: flat batch length %d != %d samples x %d features", len(x), len(y), inputDim)
	}
	return nil
}

// rowAt returns row idx of a design matrix stored either as row
// slices (x2) or as a flat row-major buffer (xf with stride d).
// Exactly one of x2/xf is non-nil.
func rowAt(x2 [][]float64, xf []float64, d, idx int) []float64 {
	if x2 != nil {
		return x2[idx]
	}
	return xf[idx*d : (idx+1)*d]
}

// checkXY validates a training batch against the expected input
// dimensionality.
func checkXY(x [][]float64, y []float64, inputDim int) error {
	if len(x) == 0 {
		return errors.New("ml: empty training batch")
	}
	if len(x) != len(y) {
		return fmt.Errorf("ml: %d inputs vs %d targets", len(x), len(y))
	}
	for i, row := range x {
		if len(row) != inputDim {
			return fmt.Errorf("ml: input %d has %d features, want %d", i, len(row), inputDim)
		}
	}
	return nil
}

// splitTrainVal carves a validation tail off a shuffled copy of the
// batch, matching Keras's validation_split semantics.
func splitTrainVal(x [][]float64, y []float64, fraction float64, src *rng.Source) (tx [][]float64, ty []float64, vx [][]float64, vy []float64) {
	n := len(x)
	perm := src.Perm(n)
	nVal := int(fraction * float64(n))
	if nVal >= n {
		nVal = n - 1
	}
	tx = make([][]float64, 0, n-nVal)
	ty = make([]float64, 0, n-nVal)
	vx = make([][]float64, 0, nVal)
	vy = make([]float64, 0, nVal)
	for i, idx := range perm {
		if i < nVal {
			vx = append(vx, x[idx])
			vy = append(vy, y[idx])
		} else {
			tx = append(tx, x[idx])
			ty = append(ty, y[idx])
		}
	}
	return tx, ty, vx, vy
}

// applyDecay is shared by both model families: multiply the
// optimizer's learning rate by the configured per-epoch decay.
func applyDecay(opt optimizer, decay float64) {
	if decay > 0 && decay < 1 {
		opt.scaleLR(decay)
	}
}
