package ml

import "math"

// runningStats tracks streaming per-feature mean/variance (Welford's
// algorithm) plus the same for the target. Models standardize inputs
// and targets with these statistics so that raw-scale data (air
// quality values span three orders of magnitude) trains stably with
// the paper's Table III learning rates, and keep updating them across
// PartialFit calls so incremental per-cluster training stays sane.
type runningStats struct {
	count float64
	mean  []float64
	m2    []float64
	yMean float64
	yM2   float64
}

func newRunningStats(dim int) *runningStats {
	return &runningStats{mean: make([]float64, dim), m2: make([]float64, dim)}
}

// observe folds a batch into the statistics.
func (s *runningStats) observe(x [][]float64, y []float64) {
	for i, row := range x {
		s.observeRow(row, y[i])
	}
}

// observeFlat folds a flat row-major batch (stride d) into the
// statistics, bit-exact with observe over the equivalent row slices.
func (s *runningStats) observeFlat(x []float64, y []float64, d int) {
	for i := range y {
		s.observeRow(x[i*d:(i+1)*d], y[i])
	}
}

// observeRow folds one sample into the statistics (Welford update).
func (s *runningStats) observeRow(row []float64, y float64) {
	s.count++
	for j, v := range row {
		delta := v - s.mean[j]
		s.mean[j] += delta / s.count
		s.m2[j] += delta * (v - s.mean[j])
	}
	dy := y - s.yMean
	s.yMean += dy / s.count
	s.yM2 += dy * (y - s.yMean)
}

// reset returns the statistics to the freshly-constructed state
// without reallocating (model pool reuse).
func (s *runningStats) reset() {
	s.count, s.yMean, s.yM2 = 0, 0, 0
	for i := range s.mean {
		s.mean[i] = 0
		s.m2[i] = 0
	}
}

// std returns the standard deviation of feature j (>= tiny floor).
func (s *runningStats) std(j int) float64 {
	if s.count < 2 {
		return 1
	}
	sd := math.Sqrt(s.m2[j] / s.count)
	if sd < 1e-9 {
		return 1
	}
	return sd
}

// yStd returns the target standard deviation (>= tiny floor).
func (s *runningStats) yStd() float64 {
	if s.count < 2 {
		return 1
	}
	sd := math.Sqrt(s.yM2 / s.count)
	if sd < 1e-9 {
		return 1
	}
	return sd
}

// normX standardizes one input vector into dst.
func (s *runningStats) normX(dst, x []float64) {
	for j, v := range x {
		dst[j] = (v - s.mean[j]) / s.std(j)
	}
}

// normY standardizes a target value.
func (s *runningStats) normY(y float64) float64 { return (y - s.yMean) / s.yStd() }

// denormY maps a standardized prediction back to the target scale.
func (s *runningStats) denormY(y float64) float64 { return y*s.yStd() + s.yMean }

// flatten serializes the statistics for Params transport.
func (s *runningStats) flatten() []float64 {
	out := make([]float64, 0, 2*len(s.mean)+3)
	out = append(out, s.count, s.yMean, s.yM2)
	out = append(out, s.mean...)
	out = append(out, s.m2...)
	return out
}

// flatLen returns the serialized length for dim features.
func statsFlatLen(dim int) int { return 2*dim + 3 }

// unflatten restores statistics from a serialized slice.
func (s *runningStats) unflatten(v []float64) {
	dim := len(s.mean)
	s.count, s.yMean, s.yM2 = v[0], v[1], v[2]
	copy(s.mean, v[3:3+dim])
	copy(s.m2, v[3+dim:3+2*dim])
}

// clone returns a deep copy.
func (s *runningStats) clone() *runningStats {
	return &runningStats{
		count: s.count,
		mean:  append([]float64(nil), s.mean...),
		m2:    append([]float64(nil), s.m2...),
		yMean: s.yMean,
		yM2:   s.yM2,
	}
}
