package ml

import (
	"context"
	"fmt"

	"qens/internal/matrix"
	"qens/internal/rng"
)

// linear is the paper's LR model: a single dense unit, y = w·x + b,
// trained with mini-batch gradient descent under MSE loss (Table III).
// Inputs and targets are standardized with streaming statistics; the
// learned weights therefore live in standardized space and predictions
// are mapped back to the raw target scale.
type linear struct {
	spec    Spec
	weights []float64 // len inputDim
	bias    float64
	stats   *runningStats
	opt     optimizer
	src     *rng.Source
	history History

	// scratch holds reusable epoch buffers (permutation, gradient,
	// flattened params, normalized input) so the steady-state
	// training loop performs zero allocations. Lazily sized; makes
	// the model unsafe for concurrent use (see Model docs).
	scratch struct {
		perm   []int
		grad   []float64
		params []float64
		xn     []float64
	}
}

func newLinear(spec Spec, src *rng.Source) *linear {
	m := &linear{
		spec:    spec,
		weights: make([]float64, spec.InputDim),
		stats:   newRunningStats(spec.InputDim),
		src:     src,
	}
	// Small symmetric init, matching a Keras Dense(1) glorot-ish start.
	for i := range m.weights {
		m.weights[i] = src.Uniform(-0.05, 0.05)
	}
	m.opt = newOptimizer(spec.Optimizer, spec.LearningRate, spec.InputDim+1)
	return m
}

// Fit trains for the configured epochs with a validation split.
func (m *linear) Fit(x [][]float64, y []float64) error {
	if err := checkXY(x, y, m.spec.InputDim); err != nil {
		return err
	}
	m.history = History{}
	tx, ty, vx, vy := splitTrainVal(x, y, m.spec.ValidationSplit, m.src)
	if len(tx) == 0 {
		tx, ty = x, y
	}
	m.stats.observe(tx, ty)
	for epoch := 0; epoch < m.spec.Epochs; epoch++ {
		if err := m.runEpoch(context.Background(), tx, nil, ty); err != nil {
			return err
		}
		m.history.TrainLoss = append(m.history.TrainLoss, MSE(ty, m.PredictBatch(tx)))
		if len(vx) > 0 {
			m.history.ValLoss = append(m.history.ValLoss, MSE(vy, m.PredictBatch(vx)))
		}
		if stopEarly(m.history.ValLoss, m.spec.Patience) {
			break
		}
		m.applyDecay()
	}
	return nil
}

// PartialFit continues training on a batch without resetting weights.
func (m *linear) PartialFit(x [][]float64, y []float64, epochs int) error {
	return m.PartialFitContext(context.Background(), x, y, epochs)
}

// PartialFitContext is PartialFit with cancellation at mini-batch
// boundaries.
func (m *linear) PartialFitContext(ctx context.Context, x [][]float64, y []float64, epochs int) error {
	if err := checkXY(x, y, m.spec.InputDim); err != nil {
		return err
	}
	return m.partialFit(ctx, x, nil, y, epochs)
}

// PartialFitBatch is the flat, zero-copy training path: x is
// row-major with stride InputDim. Bit-exact with PartialFit over the
// equivalent [][]float64 batch.
func (m *linear) PartialFitBatch(ctx context.Context, x []float64, y []float64, epochs int) error {
	if err := checkFlatXY(x, y, m.spec.InputDim); err != nil {
		return err
	}
	return m.partialFit(ctx, nil, x, y, epochs)
}

// partialFit drives epochs over either data representation.
func (m *linear) partialFit(ctx context.Context, x2 [][]float64, xf []float64, y []float64, epochs int) error {
	if epochs < 1 {
		return fmt.Errorf("ml: partial fit epochs %d < 1", epochs)
	}
	if x2 != nil {
		m.stats.observe(x2, y)
	} else {
		m.stats.observeFlat(xf, y, m.spec.InputDim)
	}
	for e := 0; e < epochs; e++ {
		if err := m.runEpoch(ctx, x2, xf, y); err != nil {
			return err
		}
		m.applyDecay()
	}
	return nil
}

// ensureScratch sizes the reusable epoch buffers for n samples.
func (m *linear) ensureScratch(n int) {
	d := m.spec.InputDim
	if cap(m.scratch.perm) < n {
		m.scratch.perm = make([]int, n)
	}
	if m.scratch.grad == nil {
		m.scratch.grad = make([]float64, d+1)
		m.scratch.params = make([]float64, d+1)
		m.scratch.xn = make([]float64, d)
	}
}

// runEpoch performs one pass of shuffled mini-batch updates, checking
// ctx before every mini-batch. All working memory comes from the
// model's scratch, so a steady-state epoch allocates nothing.
func (m *linear) runEpoch(ctx context.Context, x2 [][]float64, xf []float64, y []float64) error {
	n := len(y)
	m.ensureScratch(n)
	d := m.spec.InputDim
	perm := m.src.PermInto(m.scratch.perm[:n])
	grad, params, xn := m.scratch.grad, m.scratch.params, m.scratch.xn
	for start := 0; start < n; start += m.spec.BatchSize {
		if err := ctx.Err(); err != nil {
			return err
		}
		end := start + m.spec.BatchSize
		if end > n {
			end = n
		}
		for i := range grad {
			grad[i] = 0
		}
		batch := perm[start:end]
		invN := 1 / float64(len(batch))
		for _, idx := range batch {
			m.stats.normX(xn, rowAt(x2, xf, d, idx))
			pred := m.bias
			for j, w := range m.weights {
				pred += w * xn[j]
			}
			err := pred - m.stats.normY(y[idx])
			for j := range m.weights {
				grad[j] += 2 * err * xn[j] * invN
			}
			grad[d] += 2 * err * invN
		}
		if m.spec.L2 > 0 {
			for j, w := range m.weights {
				grad[j] += m.spec.L2 * w
			}
		}
		clipGradient(grad, 10)
		copy(params, m.weights)
		params[d] = m.bias
		m.opt.step(params, grad)
		copy(m.weights, params[:d])
		m.bias = params[d]
	}
	return nil
}

// Predict returns the raw-scale prediction for one input.
func (m *linear) Predict(x []float64) float64 {
	xn := make([]float64, m.spec.InputDim)
	m.stats.normX(xn, x)
	return m.predictNormed(xn)
}

// predictNormed scores one standardized input.
func (m *linear) predictNormed(xn []float64) float64 {
	out := m.bias
	for j, w := range m.weights {
		out += w * xn[j]
	}
	return m.stats.denormY(out)
}

// PredictBatch returns raw-scale predictions for many inputs.
func (m *linear) PredictBatch(x [][]float64) []float64 {
	out := make([]float64, len(x))
	for i, row := range x {
		out[i] = m.Predict(row)
	}
	return out
}

// PredictFlat writes raw-scale predictions for the flat row-major
// input buffer into out, allocation-free at steady state.
func (m *linear) PredictFlat(x []float64, out []float64) {
	d := m.spec.InputDim
	if len(x) != len(out)*d {
		panic(fmt.Sprintf("ml: flat predict length %d != %d samples x %d features", len(x), len(out), d))
	}
	m.ensureScratch(0)
	xn := m.scratch.xn
	for i := range out {
		m.stats.normX(xn, x[i*d:(i+1)*d])
		out[i] = m.predictNormed(xn)
	}
}

// Reinit re-seeds and re-initializes the model in place (see Model).
func (m *linear) Reinit(seed uint64, params Params) error {
	m.src = rng.New(seed)
	// Same draws, in the same order, as newLinear.
	for i := range m.weights {
		m.weights[i] = m.src.Uniform(-0.05, 0.05)
	}
	m.bias = 0
	m.stats.reset()
	m.opt.reset()
	m.opt.setLR(m.spec.LearningRate)
	m.history = History{}
	if len(params.Values) > 0 {
		return m.SetParams(params)
	}
	return nil
}

// Params exports weights, bias and normalization state.
func (m *linear) Params() Params {
	values := make([]float64, 0, len(m.weights)+1+statsFlatLen(m.spec.InputDim))
	values = append(values, m.weights...)
	values = append(values, m.bias)
	values = append(values, m.stats.flatten()...)
	return Params{Kind: KindLinear, Dims: []int{m.spec.InputDim, 1}, Values: values}
}

// SetParams loads an exported snapshot.
func (m *linear) SetParams(p Params) error {
	want := m.Params()
	if !p.Compatible(want) {
		return fmt.Errorf("ml: incompatible params (kind %q dims %v) for linear model dims %v", p.Kind, p.Dims, want.Dims)
	}
	copy(m.weights, p.Values[:m.spec.InputDim])
	m.bias = p.Values[m.spec.InputDim]
	m.stats.unflatten(p.Values[m.spec.InputDim+1:])
	m.opt.reset()
	return nil
}

// Clone returns an independent copy.
func (m *linear) Clone() Model {
	out := &linear{
		spec:    m.spec,
		weights: append([]float64(nil), m.weights...),
		bias:    m.bias,
		stats:   m.stats.clone(),
		opt:     m.opt.clone(),
		src:     m.src.Split(),
		history: History{
			TrainLoss: append([]float64(nil), m.history.TrainLoss...),
			ValLoss:   append([]float64(nil), m.history.ValLoss...),
		},
	}
	return out
}

// History returns the last Fit's loss curves.
func (m *linear) History() History { return m.history }

// FitOLS solves ordinary least squares in closed form (ridge-damped
// normal equations over an intercept-augmented design); used by tests
// as a ground-truth reference for the gradient-trained model.
func FitOLS(x [][]float64, y []float64) (w []float64, b float64, err error) {
	if len(x) == 0 || len(x) != len(y) {
		return nil, 0, fmt.Errorf("ml: bad OLS inputs (%d x, %d y)", len(x), len(y))
	}
	d := len(x[0])
	augmented := make([][]float64, len(x))
	for i, row := range x {
		augmented[i] = append(append(make([]float64, 0, d+1), row...), 1)
	}
	coef, err := matrix.SolveNormalEquations(augmented, y, 1e-9)
	if err != nil {
		return nil, 0, fmt.Errorf("ml: OLS: %w", err)
	}
	return coef[:d], coef[d], nil
}

// applyDecay applies the spec's per-epoch learning-rate decay.
func (m *linear) applyDecay() { applyDecay(m.opt, m.spec.LRDecay) }
