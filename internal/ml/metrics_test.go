package ml

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestMSE(t *testing.T) {
	y := []float64{1, 2, 3}
	pred := []float64{1, 2, 3}
	if MSE(y, pred) != 0 {
		t.Fatal("perfect prediction should have zero MSE")
	}
	pred = []float64{2, 3, 4}
	if MSE(y, pred) != 1 {
		t.Fatalf("MSE = %v", MSE(y, pred))
	}
	if MSE(nil, nil) != 0 {
		t.Fatal("empty MSE should be 0")
	}
}

func TestRMSEMAE(t *testing.T) {
	y := []float64{0, 0}
	pred := []float64{3, -4}
	if got := RMSE(y, pred); math.Abs(got-math.Sqrt(12.5)) > 1e-12 {
		t.Fatalf("RMSE = %v", got)
	}
	if got := MAE(y, pred); got != 3.5 {
		t.Fatalf("MAE = %v", got)
	}
}

func TestR2(t *testing.T) {
	y := []float64{1, 2, 3, 4}
	if got := R2(y, y); got != 1 {
		t.Fatalf("perfect R2 = %v", got)
	}
	mean := []float64{2.5, 2.5, 2.5, 2.5}
	if got := R2(y, mean); math.Abs(got) > 1e-12 {
		t.Fatalf("mean-prediction R2 = %v", got)
	}
	// Constant truth: convention 0.
	if got := R2([]float64{5, 5}, []float64{4, 6}); got != 0 {
		t.Fatalf("constant-truth R2 = %v", got)
	}
}

func TestMetricsPanicOnMismatch(t *testing.T) {
	for name, f := range map[string]func(){
		"MSE": func() { MSE([]float64{1}, []float64{1, 2}) },
		"MAE": func() { MAE([]float64{1}, []float64{1, 2}) },
		"R2":  func() { R2([]float64{1}, []float64{1, 2}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic on mismatch", name)
				}
			}()
			f()
		}()
	}
}

// Property: MSE >= MAE^2 is not generally true, but MSE >= 0 and
// RMSE^2 == MSE always hold.
func TestMetricProperties(t *testing.T) {
	f := func(raw [5][2]float64) bool {
		y := make([]float64, len(raw))
		pred := make([]float64, len(raw))
		for i, p := range raw {
			if math.IsNaN(p[0]) || math.IsNaN(p[1]) || math.Abs(p[0]) > 1e100 || math.Abs(p[1]) > 1e100 {
				return true
			}
			y[i], pred[i] = p[0], p[1]
		}
		mse := MSE(y, pred)
		rmse := RMSE(y, pred)
		return mse >= 0 && math.Abs(rmse*rmse-mse) <= 1e-9*math.Max(1, mse)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestEvaluateReport(t *testing.T) {
	x, y := syntheticLinear(300, 2, 1, 0.2, 70)
	m := PaperLR(1).MustNew()
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	rep := Evaluate(m, x, y)
	if rep.Samples != 300 {
		t.Fatalf("samples %d", rep.Samples)
	}
	if rep.MSE <= 0 || rep.R2 < 0.9 {
		t.Fatalf("report %+v", rep)
	}
	if math.Abs(rep.RMSE*rep.RMSE-rep.MSE) > 1e-9 {
		t.Fatalf("rmse^2 %v != mse %v", rep.RMSE*rep.RMSE, rep.MSE)
	}
	if rep.MAE <= 0 || rep.MAE > rep.RMSE+1e-12 {
		t.Fatalf("MAE %v vs RMSE %v violates Jensen", rep.MAE, rep.RMSE)
	}
	s := rep.String()
	if s == "" || !strings.Contains(s, "r2=") {
		t.Fatalf("rendering %q", s)
	}
}
