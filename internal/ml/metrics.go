package ml

import (
	"fmt"
	"math"
)

// Regression metrics. All take (truth, prediction) slices of equal
// length and panic on mismatch — a length mismatch is always a
// programming error in the harness, never a data condition.

func checkLens(y, pred []float64) {
	if len(y) != len(pred) {
		panic("ml: metric length mismatch")
	}
}

// MSE returns the mean squared error, the paper's loss metric.
func MSE(y, pred []float64) float64 {
	checkLens(y, pred)
	if len(y) == 0 {
		return 0
	}
	s := 0.0
	for i := range y {
		d := y[i] - pred[i]
		s += d * d
	}
	return s / float64(len(y))
}

// RMSE returns the root mean squared error.
func RMSE(y, pred []float64) float64 { return math.Sqrt(MSE(y, pred)) }

// MAE returns the mean absolute error.
func MAE(y, pred []float64) float64 {
	checkLens(y, pred)
	if len(y) == 0 {
		return 0
	}
	s := 0.0
	for i := range y {
		s += math.Abs(y[i] - pred[i])
	}
	return s / float64(len(y))
}

// R2 returns the coefficient of determination. A constant truth vector
// yields R2 = 0 by convention (undefined variance).
func R2(y, pred []float64) float64 {
	checkLens(y, pred)
	if len(y) == 0 {
		return 0
	}
	mean := 0.0
	for _, v := range y {
		mean += v
	}
	mean /= float64(len(y))
	ssRes, ssTot := 0.0, 0.0
	for i := range y {
		ssRes += (y[i] - pred[i]) * (y[i] - pred[i])
		ssTot += (y[i] - mean) * (y[i] - mean)
	}
	if ssTot == 0 {
		return 0
	}
	return 1 - ssRes/ssTot
}

// Report bundles the four regression metrics for one evaluation — the
// struct every experiment would otherwise rebuild by hand.
type Report struct {
	MSE  float64 `json:"mse"`
	RMSE float64 `json:"rmse"`
	MAE  float64 `json:"mae"`
	R2   float64 `json:"r2"`
	// Samples is the evaluation size.
	Samples int `json:"samples"`
}

// Evaluate computes all metrics of a model over a labelled set.
func Evaluate(m Model, x [][]float64, y []float64) Report {
	pred := m.PredictBatch(x)
	return Report{
		MSE:     MSE(y, pred),
		RMSE:    RMSE(y, pred),
		MAE:     MAE(y, pred),
		R2:      R2(y, pred),
		Samples: len(y),
	}
}

// String renders the report on one line.
func (r Report) String() string {
	return fmt.Sprintf("mse=%.3f rmse=%.3f mae=%.3f r2=%.3f (n=%d)", r.MSE, r.RMSE, r.MAE, r.R2, r.Samples)
}
