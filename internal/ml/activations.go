package ml

import (
	"fmt"
	"math"
)

// Activation names accepted by Spec.Activation. The paper's Table III
// uses relu for both models; tanh and sigmoid are provided for the
// extension experiments.
const (
	ActivationRelu    = "relu"
	ActivationTanh    = "tanh"
	ActivationSigmoid = "sigmoid"
	ActivationLinear  = "linear"
)

// activation bundles a function and its derivative expressed in terms
// of the *output* value (all three supported nonlinearities admit
// that form, which lets backprop avoid storing pre-activations).
type activation struct {
	name string
	fn   func(float64) float64
	// dFromOutput returns f'(z) given y = f(z).
	dFromOutput func(float64) float64
}

var activations = map[string]activation{
	ActivationRelu: {
		name: ActivationRelu,
		fn: func(v float64) float64 {
			if v < 0 {
				return 0
			}
			return v
		},
		dFromOutput: func(y float64) float64 {
			if y > 0 {
				return 1
			}
			return 0
		},
	},
	ActivationTanh: {
		name:        ActivationTanh,
		fn:          math.Tanh,
		dFromOutput: func(y float64) float64 { return 1 - y*y },
	},
	ActivationSigmoid: {
		name:        ActivationSigmoid,
		fn:          func(v float64) float64 { return 1 / (1 + math.Exp(-v)) },
		dFromOutput: func(y float64) float64 { return y * (1 - y) },
	},
	ActivationLinear: {
		name:        ActivationLinear,
		fn:          func(v float64) float64 { return v },
		dFromOutput: func(float64) float64 { return 1 },
	},
}

// lookupActivation resolves a name ("" defaults to relu, matching
// Table III).
func lookupActivation(name string) (activation, error) {
	if name == "" {
		name = ActivationRelu
	}
	a, ok := activations[name]
	if !ok {
		return activation{}, fmt.Errorf("ml: unknown activation %q", name)
	}
	return a, nil
}
