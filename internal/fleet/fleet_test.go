package fleet

import (
	"math"
	"testing"
	"time"

	"qens/internal/telemetry"
)

func newTestTracker() *Tracker {
	return NewTracker(&telemetry.Registry{})
}

func healthByID(report []NodeHealth) map[string]NodeHealth {
	m := make(map[string]NodeHealth, len(report))
	for _, h := range report {
		m[h.NodeID] = h
	}
	return m
}

func TestTrackerEWMAMath(t *testing.T) {
	tr := newTestTracker()
	tr.ObserveRound("n0", 100*time.Millisecond, "")
	tr.ObserveRound("n0", 200*time.Millisecond, "")

	h := healthByID(tr.Report(nil))["n0"]
	// First round seeds the EWMA; the second folds in with alpha=0.2:
	// 100 + 0.2*(200-100) = 120.
	if math.Abs(h.LatencyEWMAMS-120) > 1e-9 {
		t.Fatalf("latency EWMA = %v, want 120", h.LatencyEWMAMS)
	}
	if h.ErrorEWMA != 0 || h.Rounds != 2 || h.Failures != 0 {
		t.Fatalf("health = %+v", h)
	}
	if h.LastRoundAgeS < 0 || h.LastRoundAgeS > 5 {
		t.Fatalf("last round age = %v", h.LastRoundAgeS)
	}
}

func TestTrackerFailureHandling(t *testing.T) {
	tr := newTestTracker()
	tr.ObserveRound("n0", 100*time.Millisecond, "")
	// A fast failure must not improve the latency EWMA.
	tr.ObserveRound("n0", time.Millisecond, "connection refused")

	h := healthByID(tr.Report(nil))["n0"]
	if math.Abs(h.LatencyEWMAMS-100) > 1e-9 {
		t.Fatalf("failed round moved the latency EWMA to %v", h.LatencyEWMAMS)
	}
	// Error EWMA: seeded 0, then 0 + 0.2*(1-0) = 0.2.
	if math.Abs(h.ErrorEWMA-0.2) > 1e-9 {
		t.Fatalf("error EWMA = %v, want 0.2", h.ErrorEWMA)
	}
	if h.Failures != 1 || h.LastError != "connection refused" {
		t.Fatalf("health = %+v", h)
	}
	// A later success clears LastError but the EWMA decays gradually.
	tr.ObserveRound("n0", 100*time.Millisecond, "")
	h = healthByID(tr.Report(nil))["n0"]
	if h.LastError != "" {
		t.Fatalf("LastError = %q after success", h.LastError)
	}
	if math.Abs(h.ErrorEWMA-0.16) > 1e-9 {
		t.Fatalf("decayed error EWMA = %v, want 0.16", h.ErrorEWMA)
	}
}

// TestTrackerScoreOrdering: a slow node scores below the fleet median,
// a failing node scores below a healthy one, and a node at or below
// median latency with no failures scores 1.
func TestTrackerScoreOrdering(t *testing.T) {
	tr := newTestTracker()
	for i := 0; i < 5; i++ {
		tr.ObserveRound("fast", 50*time.Millisecond, "")
		tr.ObserveRound("median", 100*time.Millisecond, "")
		tr.ObserveRound("slow", 400*time.Millisecond, "")
	}
	byID := healthByID(tr.Report(nil))
	if byID["fast"].Score != 1 {
		t.Fatalf("fast score = %v, want 1 (at/below median)", byID["fast"].Score)
	}
	if byID["median"].Score != 1 {
		t.Fatalf("median score = %v, want 1", byID["median"].Score)
	}
	// slow: speed = 100/400 = 0.25.
	if math.Abs(byID["slow"].Score-0.25) > 1e-9 {
		t.Fatalf("slow score = %v, want 0.25", byID["slow"].Score)
	}

	// Make the median node fail every round: availability collapses.
	for i := 0; i < 40; i++ {
		tr.ObserveRound("median", 100*time.Millisecond, "boom")
	}
	byID = healthByID(tr.Report(nil))
	if byID["median"].Score > 0.01 {
		t.Fatalf("always-failing node scores %v", byID["median"].Score)
	}
	if byID["fast"].Score != 1 {
		t.Fatalf("fast node dragged down to %v by peer failures", byID["fast"].Score)
	}
}

// TestTrackerReportStaleness: the registry stale flag multiplies the
// score by staleFactor at report time only.
func TestTrackerReportStaleness(t *testing.T) {
	tr := newTestTracker()
	tr.ObserveRound("n0", 100*time.Millisecond, "")
	meta := map[string]Meta{
		"n0": {SummaryEpoch: 7, Stale: true},
	}
	h := healthByID(tr.Report(meta))["n0"]
	if math.Abs(h.Score-staleFactor) > 1e-9 {
		t.Fatalf("stale score = %v, want %v", h.Score, staleFactor)
	}
	if h.SummaryEpoch != 7 || !h.Stale {
		t.Fatalf("registry view not mirrored: %+v", h)
	}
	// Fresh report: back to 1.
	h = healthByID(tr.Report(map[string]Meta{"n0": {SummaryEpoch: 7}}))["n0"]
	if h.Score != 1 {
		t.Fatalf("fresh score = %v, want 1", h.Score)
	}
}

// TestTrackerReportUnion: nodes known only to the tracker and only to
// meta both appear, sorted by ID.
func TestTrackerReportUnion(t *testing.T) {
	tr := newTestTracker()
	tr.ObserveRound("b-observed", 10*time.Millisecond, "")
	wire := &WireStatus{NodeID: "a-roster", Addr: "127.0.0.1:7001", Proto: 2, BytesOut: 42}
	report := tr.Report(map[string]Meta{
		"a-roster": {SummaryEpoch: 1, Wire: wire},
	})
	if len(report) != 2 {
		t.Fatalf("report has %d nodes, want 2", len(report))
	}
	if report[0].NodeID != "a-roster" || report[1].NodeID != "b-observed" {
		t.Fatalf("report order = %s, %s", report[0].NodeID, report[1].NodeID)
	}
	// Never-observed roster node: neutral score, wire attached.
	if report[0].Score != 1 || report[0].Rounds != 0 {
		t.Fatalf("roster-only node = %+v", report[0])
	}
	if report[0].Wire == nil || report[0].Wire.BytesOut != 42 {
		t.Fatalf("wire stats lost: %+v", report[0].Wire)
	}
	// Observed node missing from meta keeps its tracked stats.
	if report[1].Rounds != 1 || report[1].SummaryEpoch != 0 {
		t.Fatalf("tracker-only node = %+v", report[1])
	}
}

// TestTrackerGauges: the tracker exports per-node gauges and refreshes
// the whole fleet's scores on every observation.
func TestTrackerGauges(t *testing.T) {
	reg := &telemetry.Registry{}
	tr := NewTracker(reg)
	tr.ObserveRound("n0", 100*time.Millisecond, "")
	tr.ObserveRound("n1", 400*time.Millisecond, "")
	tr.ObserveRound("n2", 100*time.Millisecond, "")

	lat := reg.Gauge("qens_fleet_latency_ewma_ms", telemetry.L("node", "n1")...)
	if lat.Value() != 400 {
		t.Fatalf("latency gauge = %v, want 400", lat.Value())
	}
	// Median over {100, 400, 100} is 100, so n1's speed is 0.25.
	score := reg.Gauge("qens_fleet_health_score", telemetry.L("node", "n1")...)
	if math.Abs(score.Value()-0.25) > 1e-9 {
		t.Fatalf("score gauge = %v, want 0.25", score.Value())
	}
	// Ignored: empty node IDs must not create phantom entries.
	tr.ObserveRound("", time.Millisecond, "")
	if len(tr.Report(nil)) != 3 {
		t.Fatal("empty node ID created a fleet entry")
	}
}
