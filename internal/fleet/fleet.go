// Package fleet tracks per-node health as observed by a leader: round
// latency and error-rate EWMAs fed from every training/evaluation
// round, combined at report time with summary-epoch staleness from the
// registry and wire-level transport stats into one health score per
// node. The score is the signal plane ROADMAP items 2 (multi-leader
// sharding) and 3 (adaptive allocation) consume: a cheap, always-on
// answer to "which nodes are slow, failing, or advertising stale
// summaries right now".
package fleet

import (
	"sort"
	"sync"
	"time"

	"qens/internal/telemetry"
)

// ewmaAlpha is the smoothing factor for the latency and error-rate
// EWMAs: each new round contributes ~20%, so the horizon is roughly
// the last dozen rounds per node — long enough to ride out one hiccup,
// short enough to react to a degrading node within seconds under load.
const ewmaAlpha = 0.2

// staleFactor multiplies the score of a node whose advertised summary
// epoch is newer than the registry snapshot (the leader is planning on
// stale geometry until the next refresh).
const staleFactor = 0.8

// WireStatus is the transport-level view of one node connection,
// supplied by the serving layer at report time.
type WireStatus struct {
	// NodeID keys the status into the health report (and identifies
	// the connection when the slice is served standalone in /v1/stats).
	NodeID       string `json:"node_id,omitempty"`
	Addr         string `json:"addr,omitempty"`
	Proto        int    `json:"proto,omitempty"`
	InflightRPCs int64  `json:"inflight_rpcs"`
	BytesOut     int64  `json:"bytes_out"`
	BytesIn      int64  `json:"bytes_in"`
}

// Meta is the per-node context merged into a health report: registry
// staleness plus optional wire stats.
type Meta struct {
	// SummaryEpoch is the node's advertisement epoch as recorded by
	// the leader's registry snapshot (0 when unknown).
	SummaryEpoch uint64
	// Stale reports that the node has signalled a newer epoch than
	// the snapshot the leader is currently planning against.
	Stale bool
	// Wire carries transport stats when the node is remote.
	Wire *WireStatus
}

// NodeHealth is one node's scored health report.
type NodeHealth struct {
	NodeID string `json:"node_id"`
	// Score is the composite health in [0, 1]:
	// availability × speed × freshness (see Tracker doc).
	Score float64 `json:"score"`
	// LatencyEWMAMS is the smoothed leader-observed round latency.
	LatencyEWMAMS float64 `json:"latency_ewma_ms"`
	// ErrorEWMA is the smoothed failure rate in [0, 1].
	ErrorEWMA float64 `json:"error_ewma"`
	// Rounds / Failures count observed rounds since start.
	Rounds   int64 `json:"rounds"`
	Failures int64 `json:"failures"`
	// LastRoundAgeS is seconds since the node was last observed
	// (0 when never observed).
	LastRoundAgeS float64 `json:"last_round_age_s"`
	// LastError is the most recent round failure reason ("" if the
	// latest round succeeded).
	LastError string `json:"last_error,omitempty"`
	// SummaryEpoch / Stale mirror the registry's view at report time.
	SummaryEpoch uint64 `json:"summary_epoch"`
	Stale        bool   `json:"stale"`
	// Wire carries transport stats for remote nodes.
	Wire *WireStatus `json:"wire,omitempty"`
}

// nodeState is the tracked per-node accumulator.
type nodeState struct {
	rounds   int64
	failures int64
	latEWMA  float64 // ms; 0 until the first successful round
	errEWMA  float64
	lastSeen time.Time
	lastErr  string

	// metric handles, resolved once per node
	latGauge   *telemetry.Gauge
	errGauge   *telemetry.Gauge
	scoreGauge *telemetry.Gauge
}

// Tracker accumulates per-node round outcomes into health scores.
//
// The score is availability × speed × freshness:
//
//	availability = 1 − errorEWMA
//	speed        = min(1, fleetMedianLatency / latencyEWMA)
//	freshness    = staleFactor if the registry marks the node's
//	               summaries stale, else 1
//
// A node at the fleet's median latency with no failures and fresh
// summaries scores 1.0; a node failing every round scores 0. Speed is
// relative — it ranks nodes against the fleet they are in rather than
// against an absolute latency budget, so the score stays meaningful
// across deployments whose baseline latencies differ by orders of
// magnitude.
type Tracker struct {
	mu    sync.Mutex
	nodes map[string]*nodeState
	reg   *telemetry.Registry
}

// NewTracker builds a tracker exporting qens_fleet_* gauges to reg
// (nil uses the process-default registry).
func NewTracker(reg *telemetry.Registry) *Tracker {
	if reg == nil {
		reg = telemetry.Default()
	}
	reg.SetHelp("qens_fleet_latency_ewma_ms", "Smoothed leader-observed round latency per node (ms).")
	reg.SetHelp("qens_fleet_error_ewma", "Smoothed round failure rate per node (0..1).")
	reg.SetHelp("qens_fleet_health_score", "Composite node health: availability x relative speed (0..1, staleness applied in /v1/fleet).")
	return &Tracker{nodes: map[string]*nodeState{}, reg: reg}
}

// state returns (creating) the accumulator for nodeID. Caller holds mu.
func (t *Tracker) state(nodeID string) *nodeState {
	s, ok := t.nodes[nodeID]
	if !ok {
		label := telemetry.L("node", nodeID)
		s = &nodeState{
			latGauge:   t.reg.Gauge("qens_fleet_latency_ewma_ms", label...),
			errGauge:   t.reg.Gauge("qens_fleet_error_ewma", label...),
			scoreGauge: t.reg.Gauge("qens_fleet_health_score", label...),
		}
		s.scoreGauge.Set(1)
		t.nodes[nodeID] = s
	}
	return s
}

// ObserveRound folds one leader-observed round outcome into the
// node's EWMAs and refreshes the exported gauges. errStr is "" on
// success.
func (t *Tracker) ObserveRound(nodeID string, elapsed time.Duration, errStr string) {
	if nodeID == "" {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	s := t.state(nodeID)
	s.rounds++
	s.lastSeen = time.Now()
	s.lastErr = errStr
	failed := 0.0
	if errStr != "" {
		s.failures++
		failed = 1
	}
	if s.rounds == 1 {
		s.errEWMA = failed
	} else {
		s.errEWMA += ewmaAlpha * (failed - s.errEWMA)
	}
	// Latency only counts completed work: a fast failure must not
	// make a broken node look quick.
	if errStr == "" {
		ms := float64(elapsed) / float64(time.Millisecond)
		if s.latEWMA == 0 {
			s.latEWMA = ms
		} else {
			s.latEWMA += ewmaAlpha * (ms - s.latEWMA)
		}
	}
	s.latGauge.Set(s.latEWMA)
	s.errGauge.Set(s.errEWMA)
	// Refresh every score gauge: the fleet median moved with this
	// observation. Fleets are small (10s of nodes), so the O(n log n)
	// median under the mutex is noise next to the round's RPC.
	median := t.medianLatencyLocked()
	for _, st := range t.nodes {
		st.scoreGauge.Set(st.baseScore(median))
	}
}

// medianLatencyLocked returns the fleet's median latency EWMA over
// nodes that have completed at least one round (0 when none have).
func (t *Tracker) medianLatencyLocked() float64 {
	lats := make([]float64, 0, len(t.nodes))
	for _, s := range t.nodes {
		if s.latEWMA > 0 {
			lats = append(lats, s.latEWMA)
		}
	}
	if len(lats) == 0 {
		return 0
	}
	sort.Float64s(lats)
	return lats[len(lats)/2]
}

// baseScore is availability × speed (freshness is applied at report
// time, where the registry's staleness view is available).
func (s *nodeState) baseScore(medianLat float64) float64 {
	avail := 1 - s.errEWMA
	if avail < 0 {
		avail = 0
	}
	speed := 1.0
	if s.latEWMA > 0 && medianLat > 0 && s.latEWMA > medianLat {
		speed = medianLat / s.latEWMA
	}
	return avail * speed
}

// Report renders the fleet's health. meta supplies per-node registry
// staleness and wire stats (may be nil); node IDs present only in the
// tracker (observed but unknown to meta) and only in meta (known but
// never observed) both appear, so a node that dropped out of the
// roster or never answered a round stays visible. Nodes are sorted by
// ID.
func (t *Tracker) Report(meta map[string]Meta) []NodeHealth {
	t.mu.Lock()
	defer t.mu.Unlock()
	ids := make(map[string]bool, len(t.nodes)+len(meta))
	for id := range t.nodes {
		ids[id] = true
	}
	for id := range meta {
		ids[id] = true
	}
	median := t.medianLatencyLocked()
	now := time.Now()
	out := make([]NodeHealth, 0, len(ids))
	for id := range ids {
		h := NodeHealth{NodeID: id, Score: 1}
		if s, ok := t.nodes[id]; ok {
			h.LatencyEWMAMS = s.latEWMA
			h.ErrorEWMA = s.errEWMA
			h.Rounds = s.rounds
			h.Failures = s.failures
			h.LastError = s.lastErr
			if !s.lastSeen.IsZero() {
				h.LastRoundAgeS = now.Sub(s.lastSeen).Seconds()
			}
			h.Score = s.baseScore(median)
		}
		if m, ok := meta[id]; ok {
			h.SummaryEpoch = m.SummaryEpoch
			h.Stale = m.Stale
			h.Wire = m.Wire
			if m.Stale {
				h.Score *= staleFactor
			}
		}
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].NodeID < out[j].NodeID })
	return out
}
