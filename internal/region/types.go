// Package region implements the hierarchical multi-leader federation
// tier: the fleet is partitioned into spatial shards, each owned by a
// regional leader (a federation.Leader over that shard with its own
// registry snapshot and planner), and a root coordinator (Router)
// that routes each query rectangle to the overlapping regions, fans
// the plan and training rounds out, and aggregates the cross-region
// results with the paper's Eq. 6/7 averaging.
//
// The split of responsibilities keeps the paper's mathematics exactly
// where it was: regional leaders compute the Eq. 2–4 ranking over
// their shard (the same arena kernel the single-leader path runs) and
// drive node training rounds; the root merges the per-region rankings
// into one global candidate set, applies the selection policy, draws
// the model seed, and builds the ensemble — so a sharded topology
// produces bit-identical rankings, participants and aggregated models
// to a single leader over the same fleet.
//
// Everything is epoch-fenced per shard: each region's responses carry
// its registry epoch, the root revalidates its routing topology and
// reuse cache against the latest observed epochs, and a node
// requantizing inside one shard invalidates only that region's
// snapshot and the root-side entries that touched it.
package region

import (
	"context"
	"time"

	"qens/internal/federation"
	"qens/internal/geometry"
	"qens/internal/ml"
	"qens/internal/query"
	"qens/internal/registry"
	"qens/internal/selection"

	"qens/internal/fleet"
)

// NodeInfo identifies one member node of a region together with its
// position in the global fleet roster. The root sorts merged rankings
// by RosterIndex so cross-region candidate sets preserve the exact
// node order a single leader would see — selectors that pick by roster
// position (all-nodes, random, fairness) and the order-sensitive
// ensemble summation depend on it.
type NodeInfo struct {
	NodeID      string `json:"node_id"`
	RosterIndex int    `json:"roster_index"`
}

// Info is a region's self-description: membership, covering rectangle
// (the union of every member's advertised cluster bounds — what the
// root's routing R-tree indexes) and the registry epoch it derives
// from.
type Info struct {
	RegionID string        `json:"region_id"`
	Nodes    []NodeInfo    `json:"nodes"`
	Epoch    uint64        `json:"epoch"`
	Bounds   geometry.Rect `json:"bounds"`
	Dims     int           `json:"dims"`
	// TotalSamples is the shard-wide Σ|D_i|.
	TotalSamples int `json:"total_samples"`
}

// PlanRequest asks a region to rank its shard for one query at ε.
// QueryDriven marks the ranking as feeding a stateless Eq. 2–4
// selector, which lets the region take the R-tree-pruned fast path:
// nodes whose covering rectangles provably score zero come back as
// zero-rank rows without per-dimension overlap vectors. Selectors
// that inspect Overlaps (or replay at a different ε) must leave it
// false to get full-fidelity rows.
type PlanRequest struct {
	Query       query.Query `json:"query"`
	Epsilon     float64     `json:"epsilon"`
	QueryDriven bool        `json:"query_driven,omitempty"`
}

// PlanResponse carries the shard's Eq. 2–4 ranking rows and the
// registry epoch they were computed against.
type PlanResponse struct {
	RegionID string               `json:"region_id"`
	Epoch    uint64               `json:"epoch"`
	Ranks    []selection.NodeRank `json:"ranks"`
}

// TrainRequest asks a region to run one training round for the listed
// participants (all members of its shard) with the root-supplied model
// spec — seed already drawn at the root — and initial parameters.
type TrainRequest struct {
	QueryID      string                  `json:"query_id"`
	Spec         ml.Spec                 `json:"spec"`
	Params       ml.Params               `json:"params"`
	Participants []selection.Participant `json:"participants"`
	LocalEpochs  int                     `json:"local_epochs"`
	// TraceID/SpanID attribute the round to the root query's trace;
	// node and region phase spans come back on the response for
	// re-parenting at the root.
	TraceID string `json:"trace_id,omitempty"`
	SpanID  string `json:"span_id,omitempty"`
}

// RoundResult is one participant's outcome within a region round.
type RoundResult struct {
	NodeID string    `json:"node_id"`
	Params ml.Params `json:"params"`
	// SamplesUsed / TotalSamples mirror federation.TrainResponse.
	SamplesUsed  int `json:"samples_used"`
	TotalSamples int `json:"total_samples"`
	// TrainTime is the node-reported training duration.
	TrainTime time.Duration `json:"train_time"`
	// ElapsedNS is the region-leader-observed round wall time.
	ElapsedNS int64 `json:"elapsed_ns"`
	// SummaryEpoch echoes the node's advertisement version (drift
	// signal, already folded into the region's registry).
	SummaryEpoch uint64 `json:"summary_epoch,omitempty"`
	// Err is the failure reason ("" on success).
	Err string `json:"err,omitempty"`
	// Spans are the node-side phase spans when the request carried a
	// trace context.
	Spans []federation.NodeSpan `json:"spans,omitempty"`
}

// TrainResponse carries every participant's outcome in request order.
type TrainResponse struct {
	RegionID string        `json:"region_id"`
	Results  []RoundResult `json:"results"`
	// Epoch is the region's reuse epoch after the round: when a node
	// echoed a newer advertisement version mid-round, this is already
	// advanced past the epoch the round planned against, so the root
	// fences its caches without waiting for the region to replan.
	Epoch uint64 `json:"epoch"`
	// Spans are region-leader phase spans ("region.train") when the
	// request carried a trace context.
	Spans []federation.NodeSpan `json:"spans,omitempty"`
}

// Stats is a region's introspection report, merged into the root
// gateway's /v1/stats and /v1/fleet.
type Stats struct {
	Info     Info               `json:"info"`
	Registry registry.Stats     `json:"registry"`
	Health   []fleet.NodeHealth `json:"health"`
}

// Service is the regional-leader RPC surface the root coordinator
// drives. The in-process implementation is *Leader; the cross-process
// one is transport.RegionClient over the multiplexed v2 wire.
type Service interface {
	// ID returns the region identifier without an RPC.
	ID() string
	// Info describes the region's membership and covering rectangle.
	Info(ctx context.Context) (Info, error)
	// Plan ranks the shard for one query.
	Plan(ctx context.Context, req PlanRequest) (PlanResponse, error)
	// Train runs one training round over shard members.
	Train(ctx context.Context, req TrainRequest) (TrainResponse, error)
	// Stats reports the region's registry and fleet-health state.
	Stats(ctx context.Context) (Stats, error)
}
