package region

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"qens/internal/federation"
	"qens/internal/geometry"
	"qens/internal/ml"
	"qens/internal/query"
	"qens/internal/rng"
	"qens/internal/selection"
)

// goldenWorkload generates a seeded 200-query workload over (and
// slightly beyond) the fleet's x extent, so it exercises single-region
// routes, cross-region routes, spanning rectangles and zero-overlap
// misses.
func goldenWorkload(n int) []query.Query {
	src := rng.New(777)
	out := make([]query.Query, 0, n)
	for i := 0; i < n; i++ {
		lo := src.Uniform(-20, 90)
		w := src.Uniform(2, 60)
		// The y window tracks the data's y = 2x+1 band, so queries
		// fully beyond the fleet's x extent are disjoint in BOTH
		// dimensions (Eq. 2 support 0 → true no-candidate misses) and
		// left-band queries genuinely prune right-hand regions.
		q, err := query.New(fmt.Sprintf("golden-%d", i),
			geometry.MustRect([]float64{lo, 2*lo - 10}, []float64{lo + w, 2*(lo+w) + 10}))
		if err != nil {
			panic(err)
		}
		out = append(out, q)
	}
	return out
}

func sameParticipants(t *testing.T, q string, a, b []selection.Participant) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: %d vs %d participants", q, len(a), len(b))
	}
	for i := range a {
		if a[i].NodeID != b[i].NodeID || a[i].Rank != b[i].Rank {
			t.Fatalf("%s participant %d: %+v vs %+v", q, i, a[i], b[i])
		}
		if len(a[i].Clusters) != len(b[i].Clusters) {
			t.Fatalf("%s participant %d clusters: %v vs %v", q, i, a[i].Clusters, b[i].Clusters)
		}
		for j := range a[i].Clusters {
			if a[i].Clusters[j] != b[i].Clusters[j] {
				t.Fatalf("%s participant %d clusters: %v vs %v", q, i, a[i].Clusters, b[i].Clusters)
			}
		}
	}
}

func sameParams(t *testing.T, q string, a, b []ml.Params) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: %d vs %d local params", q, len(a), len(b))
	}
	for i := range a {
		if len(a[i].Values) != len(b[i].Values) {
			t.Fatalf("%s params %d: %d vs %d values", q, i, len(a[i].Values), len(b[i].Values))
		}
		for j := range a[i].Values {
			if a[i].Values[j] != b[i].Values[j] {
				t.Fatalf("%s params %d value %d: %v vs %v (not bit-exact)",
					q, i, j, a[i].Values[j], b[i].Values[j])
			}
		}
	}
}

// TestGoldenShardedMatchesSingleLeader replays a 200-query seeded
// workload against a 2-region sharded topology and a single leader
// over the same fleet, per stateless selector, and requires bit-exact
// participants, local model parameters and aggregated-model
// predictions. Both sides are rebuilt per selector so their RNG
// streams stay in lock-step across the whole replay.
func TestGoldenShardedMatchesSingleLeader(t *testing.T) {
	queries := goldenWorkload(200)
	probes := [][]float64{{-5}, {0}, {7.5}, {21}, {33.3}, {47}, {61.2}, {74}, {100}}

	selectors := []struct {
		name string
		sel  selection.Selector
		agg  federation.Aggregation
	}{
		{"query-driven-topl", selection.QueryDriven{Epsilon: 1e-9, TopL: 2}, federation.WeightedAveraging},
		{"query-driven-psi", selection.QueryDriven{Epsilon: 1e-9, Psi: 0.4}, federation.WeightedAveraging},
		{"all-nodes", selection.AllNodes{}, federation.ModelAveraging},
		{"random", selection.Random{L: 3}, federation.ModelAveraging},
	}

	for _, tc := range selectors {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			single := singleFixture(t)
			router, _, _ := shardedFixture(t, 2, Config{})
			ctx := context.Background()
			executed, misses := 0, 0
			for _, q := range queries {
				want, wantErr := single.ExecuteContext(ctx, q, tc.sel, tc.agg)
				got, reused, gotErr := router.ExecuteQuery(ctx, q, tc.sel, tc.agg)
				if (wantErr == nil) != (gotErr == nil) {
					t.Fatalf("%s: single-leader err %v vs sharded err %v", q.ID, wantErr, gotErr)
				}
				if wantErr != nil {
					if !errors.Is(wantErr, selection.ErrNoCandidates) || !errors.Is(gotErr, selection.ErrNoCandidates) {
						t.Fatalf("%s: errs %v / %v, want ErrNoCandidates on both", q.ID, wantErr, gotErr)
					}
					misses++
					continue
				}
				if reused {
					t.Fatalf("%s: unexpected reuse with cache disabled", q.ID)
				}
				executed++
				sameParticipants(t, q.ID, want.Participants, got.Participants)
				sameParams(t, q.ID, want.LocalParams, got.LocalParams)
				if want.Stats.SamplesUsed != got.Stats.SamplesUsed ||
					want.Stats.SamplesSelectedNodes != got.Stats.SamplesSelectedNodes ||
					want.Stats.SamplesAllNodes != got.Stats.SamplesAllNodes {
					t.Fatalf("%s: stats %+v vs %+v", q.ID, want.Stats, got.Stats)
				}
				for _, p := range probes {
					a := want.Ensemble.Predict(p)
					b := got.Ensemble.Predict(p)
					if a != b {
						t.Fatalf("%s: ensemble(%v) = %v vs %v (not bit-exact)", q.ID, p, a, b)
					}
				}
			}
			if executed == 0 {
				t.Fatal("workload produced no executable queries")
			}
			// The workload deliberately includes off-space rectangles;
			// only the query-driven policy can miss.
			if _, qd := tc.sel.(selection.QueryDriven); qd && misses == 0 {
				t.Fatal("workload produced no zero-candidate queries")
			}
			t.Logf("%s: %d executed, %d no-candidate misses", tc.name, executed, misses)
		})
	}
}

// bruteService forces the fan-out back onto the brute kernel by
// clearing the QueryDriven hint before the RPC reaches the regional
// leader, exactly what an old root coordinator would send.
type bruteService struct{ Service }

func (b bruteService) Plan(ctx context.Context, req PlanRequest) (PlanResponse, error) {
	req.QueryDriven = false
	return b.Service.Plan(ctx, req)
}

// TestGoldenRouterIndexedMatchesBrute replays the golden workload
// through two identical 2-region topologies — one whose fan-out takes
// the R-tree-pruned shard rankings, one forced onto the brute kernel —
// and requires bit-exact participants, local parameters and ensemble
// predictions. This pins the acceptance contract that index pruning is
// invisible to the router's merge.
func TestGoldenRouterIndexedMatchesBrute(t *testing.T) {
	for _, tc := range []struct {
		name string
		sel  selection.Selector
	}{
		{"topl", selection.QueryDriven{Epsilon: 1e-9, TopL: 2}},
		{"psi", selection.QueryDriven{Epsilon: 1e-9, Psi: 0.4}},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			indexed, idxLeaders, _ := shardedFixture(t, 2, Config{})
			_, bruteLeaders, _ := shardedFixture(t, 2, Config{})
			services := make([]Service, len(bruteLeaders))
			for i, l := range bruteLeaders {
				services[i] = bruteService{l}
			}
			cfg := fedConfig()
			brute, err := NewRouter(Config{Spec: cfg.Spec, LocalEpochs: cfg.LocalEpochs, Seed: cfg.Seed}, services)
			if err != nil {
				t.Fatal(err)
			}

			ctx := context.Background()
			executed := 0
			for _, q := range goldenWorkload(200) {
				want, _, wantErr := brute.ExecuteQuery(ctx, q, tc.sel, federation.WeightedAveraging)
				got, _, gotErr := indexed.ExecuteQuery(ctx, q, tc.sel, federation.WeightedAveraging)
				if (wantErr == nil) != (gotErr == nil) {
					t.Fatalf("%s: brute err %v vs indexed err %v", q.ID, wantErr, gotErr)
				}
				if wantErr != nil {
					if !errors.Is(wantErr, selection.ErrNoCandidates) || !errors.Is(gotErr, selection.ErrNoCandidates) {
						t.Fatalf("%s: errs %v / %v", q.ID, wantErr, gotErr)
					}
					continue
				}
				executed++
				sameParticipants(t, q.ID, want.Participants, got.Participants)
				sameParams(t, q.ID, want.LocalParams, got.LocalParams)
				for _, p := range [][]float64{{-5}, {12}, {40.5}, {88}} {
					if a, b := want.Ensemble.Predict(p), got.Ensemble.Predict(p); a != b {
						t.Fatalf("%s: ensemble(%v) %v vs %v", q.ID, p, a, b)
					}
				}
			}
			if executed == 0 {
				t.Fatal("workload produced no executable queries")
			}

			var idxPlans, brutePlans, forcedIdx int64
			for _, l := range idxLeaders {
				st := l.fed.Registry().Stats()
				idxPlans += st.IndexedPlans
				brutePlans += st.BrutePlans
			}
			for _, l := range bruteLeaders {
				forcedIdx += l.fed.Registry().Stats().IndexedPlans
			}
			if idxPlans == 0 {
				t.Fatal("indexed topology never took the R-tree fast path")
			}
			if brutePlans != 0 {
				t.Fatalf("indexed topology fell back to brute %d times", brutePlans)
			}
			if forcedIdx != 0 {
				t.Fatalf("forced-brute topology walked the index %d times", forcedIdx)
			}
		})
	}
}

// TestGoldenRankingsMatchSingleLeader compares the full EXPLAIN-style
// rankings: the root's cross-region merged rows must be bit-identical,
// row for row, to the single leader's planner output over the same
// fleet.
func TestGoldenRankingsMatchSingleLeader(t *testing.T) {
	single := singleFixture(t)
	router, _, _ := shardedFixture(t, 2, Config{})
	ctx := context.Background()
	sel := selection.QueryDriven{Epsilon: 1e-9, TopL: 2}
	compared := 0
	for _, q := range goldenWorkload(60) {
		pl, errA := single.ExplainContext(ctx, q, sel)
		ex, errB := router.ExplainQuery(ctx, q, sel)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("%s: plan err %v vs explain err %v", q.ID, errA, errB)
		}
		if errA != nil {
			if !errors.Is(errA, selection.ErrNoCandidates) || !errors.Is(errB, selection.ErrNoCandidates) {
				t.Fatalf("%s: errs %v / %v", q.ID, errA, errB)
			}
			continue
		}
		compared++
		if len(pl.Rankings) != len(ex.Rankings) {
			t.Fatalf("%s: %d vs %d ranking rows", q.ID, len(pl.Rankings), len(ex.Rankings))
		}
		for i := range pl.Rankings {
			a, b := pl.Rankings[i], ex.Rankings[i]
			if a.NodeID != b.NodeID || a.Rank != b.Rank || a.Potential != b.Potential ||
				len(a.Supporting) != len(b.Supporting) || len(a.Overlaps) != len(b.Overlaps) {
				t.Fatalf("%s row %d: %+v vs %+v", q.ID, i, a, b)
			}
			for j := range a.Overlaps {
				if a.Overlaps[j] != b.Overlaps[j] {
					t.Fatalf("%s row %d overlap %d: %v vs %v", q.ID, i, j, a.Overlaps[j], b.Overlaps[j])
				}
			}
		}
		sameParticipants(t, q.ID, pl.Participants, ex.Participants)
	}
	if compared == 0 {
		t.Fatal("no rankings compared")
	}
}
