package region

import (
	"context"
	"fmt"
	"testing"

	"qens/internal/federation"
	"qens/internal/geometry"
	"qens/internal/query"
	"qens/internal/rng"
	"qens/internal/selection"
)

func TestRouterApproxRequiresReuseCache(t *testing.T) {
	cfg := fedConfig()
	nodes := buildNodes(t)
	clients := make([]federation.Client, len(nodes))
	roster := make(map[string]int, len(nodes))
	for i, n := range nodes {
		clients[i] = federation.LocalClient{Node: n}
		roster[n.ID()] = i
	}
	fed, err := federation.NewLeader(cfg, nil, clients)
	if err != nil {
		t.Fatal(err)
	}
	lead, err := NewLeader("r0", fed, roster)
	if err != nil {
		t.Fatal(err)
	}
	_, err = NewRouter(Config{
		Spec: cfg.Spec, LocalEpochs: cfg.LocalEpochs, Seed: cfg.Seed,
		ApproxCoverage: 0.5, // no ReuseIoU
	}, []Service{lead})
	if err == nil {
		t.Fatal("accepted approx coverage without a reuse cache")
	}
}

// TestRouterApproxTierServes: after an exact-IoU miss, a valid cached
// entry that blankets the new query serves it — reported as the approx
// tier so clients can tell a subspace answer from an exact replay.
func TestRouterApproxTierServes(t *testing.T) {
	cfg := fedConfig()
	router, _, _ := shardedFixture(t, 2, Config{
		Spec: cfg.Spec, LocalEpochs: cfg.LocalEpochs, Seed: cfg.Seed,
		ReuseIoU: 0.95, ReuseCap: 8, ApproxCoverage: 0.5,
	})
	ctx := context.Background()
	sel := selection.QueryDriven{Epsilon: 1e-9, TopL: 2}

	wide := mustQuery(t, "q-wide", 0, 34, -500, 500)
	if _, kind, err := router.ExecuteQueryKind(ctx, wide, sel, federation.ModelAveraging); err != nil || kind != federation.ServeFresh {
		t.Fatalf("first execution: kind=%v err=%v", kind, err)
	}
	// Contained query: IoU (area ratio) is well under 0.95 but the wide
	// entry covers it completely.
	inner := mustQuery(t, "q-inner", 5, 30, -400, 400)
	res, kind, err := router.ExecuteQueryKind(ctx, inner, sel, federation.ModelAveraging)
	if err != nil {
		t.Fatal(err)
	}
	if kind != federation.ServeApprox {
		t.Fatalf("contained query: kind=%v, want approx", kind)
	}
	if res == nil || !kind.Reused() {
		t.Fatal("approx serve must be a reused result")
	}
	st, err := router.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Reuse == nil || st.Reuse.ApproxHits != 1 || st.Reuse.ApproxPct != 50 {
		t.Fatalf("reuse stats %+v: want 1 approx hit at 50%%", st.Reuse)
	}

	// The two-value ExecuteQuery keeps reporting approx serves as
	// reused — existing callers see no new states.
	inner2 := mustQuery(t, "q-inner-2", 6, 29, -400, 400)
	if _, reused, err := router.ExecuteQuery(ctx, inner2, sel, federation.ModelAveraging); err != nil || !reused {
		t.Fatalf("legacy surface: reused=%v err=%v", reused, err)
	}
}

// TestRouterApproxDisabledGoldenReplay pins ApproxCoverage=0 to the
// seed semantics: a 60-query replay where the expected hit/miss
// decision is computed by an inline reference of the original root
// cache (insertion-order scan, first entry at or above the IoU
// threshold wins). Any divergence — an approx serve leaking in, a scan
// order change — fails the replay.
func TestRouterApproxDisabledGoldenReplay(t *testing.T) {
	cfg := fedConfig()
	router, _, _ := shardedFixture(t, 2, Config{
		Spec: cfg.Spec, LocalEpochs: cfg.LocalEpochs, Seed: cfg.Seed,
		ReuseIoU: 0.9, ReuseCap: 4,
	})
	ctx := context.Background()
	sel := selection.QueryDriven{Epsilon: 1e-9, TopL: 2}

	type refEntry struct {
		bounds geometry.Rect
		res    *federation.Result
	}
	var ref []refEntry
	refLookup := func(q query.Query) *federation.Result {
		for _, e := range ref {
			if geometry.IoU(e.bounds, q.Bounds) >= 0.9 {
				return e.res
			}
		}
		return nil
	}
	refStore := func(q query.Query, res *federation.Result) {
		if len(ref) == 4 {
			ref = ref[1:]
		}
		ref = append(ref, refEntry{bounds: q.Bounds.Clone(), res: res})
	}

	src := rng.New(99)
	hot := [][2]float64{{0, 22}, {12, 34}, {40, 62}}
	for i := 0; i < 60; i++ {
		var lo, hi float64
		if i%2 == 0 {
			h := hot[(i/2)%len(hot)]
			j := src.Uniform(-0.5, 0.5)
			lo, hi = h[0]+j, h[1]+j
		} else {
			lo = src.Uniform(0, 50)
			hi = lo + src.Uniform(10, 24)
		}
		q := mustQuery(t, fmt.Sprintf("r-%d", i), lo, hi, -500, 500)

		want := refLookup(q)
		res, kind, err := router.ExecuteQueryKind(ctx, q, sel, federation.ModelAveraging)
		if err != nil {
			t.Fatalf("q%d: %v", i, err)
		}
		if kind == federation.ServeApprox {
			t.Fatalf("q%d: approx serve with the tier disabled", i)
		}
		if want != nil {
			if kind != federation.ServeExact || res != want {
				t.Fatalf("q%d: want exact hit on stored entry, got kind=%v match=%v",
					i, kind, res == want)
			}
		} else {
			if kind != federation.ServeFresh {
				t.Fatalf("q%d: reference expects a fresh execution, got %v", i, kind)
			}
			refStore(q, res)
		}
	}
	st, err := router.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Reuse == nil || st.Reuse.ApproxHits != 0 || st.Reuse.ApproxPct != 0 {
		t.Fatalf("reuse stats %+v: approx tier must stay silent", st.Reuse)
	}
	if st.Reuse.Hits == 0 {
		t.Fatalf("reuse stats %+v: hot workload produced no hits", st.Reuse)
	}
}
