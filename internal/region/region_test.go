package region

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"qens/internal/cluster"
	"qens/internal/dataset"
	"qens/internal/federation"
	"qens/internal/geometry"
	"qens/internal/ml"
	"qens/internal/query"
	"qens/internal/rng"
	"qens/internal/selection"
)

// slabs lays the test fleet out as disjoint x ranges: three nodes on
// the left half of the space, three on the right, so a 2-way partition
// splits cleanly and left-only queries route to one region.
var slabs = [][2]float64{{0, 10}, {12, 22}, {24, 34}, {40, 50}, {52, 62}, {64, 74}}

func lineData(n int, slope, intercept, lo, hi float64, seed uint64) *dataset.Dataset {
	src := rng.New(seed)
	d := dataset.MustNew([]string{"x", "y"}, "y")
	for i := 0; i < n; i++ {
		x := src.Uniform(lo, hi)
		d.MustAppend([]float64{x, slope*x + intercept + src.Normal(0, 0.3)})
	}
	return d
}

func fedConfig() federation.Config {
	return federation.Config{Spec: ml.PaperLR(1), ClusterK: 3, LocalEpochs: 3, Seed: 42}
}

// buildNodes constructs the test fleet. Node i's data and RNG seeds
// depend only on i, so independently built fleets (single-leader vs
// sharded) are bit-identical.
func buildNodes(t testing.TB) []*federation.Node {
	t.Helper()
	nodes := make([]*federation.Node, len(slabs))
	for i, s := range slabs {
		d := lineData(200, 2, 1, s[0], s[1], 10+uint64(i))
		n, err := federation.NewNode(fmt.Sprintf("node-%d", i), d, 3, rng.New(1000+uint64(i)))
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
		nodes[i] = n
	}
	return nodes
}

func singleFixture(t testing.TB) *federation.Leader {
	t.Helper()
	nodes := buildNodes(t)
	clients := make([]federation.Client, len(nodes))
	for i, n := range nodes {
		clients[i] = federation.LocalClient{Node: n}
	}
	lead, err := federation.NewLeader(fedConfig(), nil, clients)
	if err != nil {
		t.Fatal(err)
	}
	return lead
}

// shardedFixture builds the same fleet split into `regions` spatial
// shards under a root Router. Returns the router, the regional leaders
// and the raw nodes (for drift injection).
func shardedFixture(t testing.TB, regions int, rcfg Config) (*Router, []*Leader, []*federation.Node) {
	t.Helper()
	nodes := buildNodes(t)
	summaries := make([]cluster.NodeSummary, len(nodes))
	rosterIndex := make(map[string]int, len(nodes))
	for i, n := range nodes {
		summaries[i] = n.Summary()
		rosterIndex[n.ID()] = i
	}
	shards, err := Partition(summaries, regions)
	if err != nil {
		t.Fatal(err)
	}
	cfg := fedConfig()
	var services []Service
	var leaders []*Leader
	for r, shard := range shards {
		clients := make([]federation.Client, 0, len(shard))
		for _, idx := range shard {
			clients = append(clients, federation.LocalClient{Node: nodes[idx]})
		}
		fed, err := federation.NewLeader(cfg, nil, clients)
		if err != nil {
			t.Fatal(err)
		}
		lead, err := NewLeader(fmt.Sprintf("region-%d", r), fed, rosterIndex)
		if err != nil {
			t.Fatal(err)
		}
		leaders = append(leaders, lead)
		services = append(services, lead)
	}
	if rcfg.Spec.Kind == "" {
		rcfg = Config{Spec: cfg.Spec, LocalEpochs: cfg.LocalEpochs, Seed: cfg.Seed}
	}
	router, err := NewRouter(rcfg, services)
	if err != nil {
		t.Fatal(err)
	}
	return router, leaders, nodes
}

// mustQuery builds a 2-D query rectangle. Eq. 2 scores support as the
// per-dimension mean, so routing and no-candidate behaviour depend on
// BOTH the x and y windows: a region is pruned only when the query is
// disjoint from its covering rect in every dimension.
func mustQuery(t testing.TB, id string, xlo, xhi, ylo, yhi float64) query.Query {
	t.Helper()
	q, err := query.New(id, geometry.MustRect([]float64{xlo, ylo}, []float64{xhi, yhi}))
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func TestPartitionSplitsBySpatialOrder(t *testing.T) {
	// Deliberately scrambled input order: partition must still cut the
	// fleet into contiguous slabs of the center-sorted order.
	order := []int{3, 0, 5, 1, 4, 2}
	summaries := make([]cluster.NodeSummary, len(order))
	for i, o := range order {
		lo := slabs[o][0]
		summaries[i] = cluster.NodeSummary{
			NodeID: fmt.Sprintf("node-%d", o),
			Clusters: []cluster.Summary{{
				Bounds:   geometry.MustRect([]float64{lo, 0}, []float64{slabs[o][1], 1}),
				Centroid: []float64{lo, 0.5},
				Size:     10,
			}},
			TotalSamples: 10,
		}
	}
	shards, err := Partition(summaries, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(shards) != 2 || len(shards[0]) != 3 || len(shards[1]) != 3 {
		t.Fatalf("shard sizes: %v", shards)
	}
	left := map[string]bool{}
	for _, idx := range shards[0] {
		left[summaries[idx].NodeID] = true
	}
	for _, want := range []string{"node-0", "node-1", "node-2"} {
		if !left[want] {
			t.Fatalf("left shard %v missing %s", shards[0], want)
		}
	}
	// Same input, same split.
	again, err := Partition(summaries, 2)
	if err != nil {
		t.Fatal(err)
	}
	for r := range shards {
		for i := range shards[r] {
			if shards[r][i] != again[r][i] {
				t.Fatalf("partition not deterministic: %v vs %v", shards, again)
			}
		}
	}
}

func TestPartitionValidation(t *testing.T) {
	summaries := []cluster.NodeSummary{{
		NodeID: "n",
		Clusters: []cluster.Summary{{
			Bounds:   geometry.MustRect([]float64{0, 0}, []float64{1, 1}),
			Centroid: []float64{0.5, 0.5},
			Size:     1,
		}},
		TotalSamples: 1,
	}}
	if _, err := Partition(summaries, 0); err == nil {
		t.Fatal("accepted 0 regions")
	}
	if _, err := Partition(summaries, 2); err == nil {
		t.Fatal("accepted more regions than nodes")
	}
	if _, err := Partition([]cluster.NodeSummary{{NodeID: "bad"}}, 1); err == nil {
		t.Fatal("accepted invalid summary")
	}
}

func TestLeaderInfo(t *testing.T) {
	_, leaders, _ := shardedFixture(t, 2, Config{})
	info, err := leaders[0].Info(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if info.RegionID != "region-0" {
		t.Fatalf("region id %q", info.RegionID)
	}
	if len(info.Nodes) != 3 {
		t.Fatalf("%d members", len(info.Nodes))
	}
	for i, n := range info.Nodes {
		want := fmt.Sprintf("node-%d", i)
		if n.NodeID != want || n.RosterIndex != i {
			t.Fatalf("member %d = %+v, want %s@%d", i, n, want, i)
		}
	}
	if info.Epoch == 0 || info.Dims != 2 || info.TotalSamples <= 0 {
		t.Fatalf("info = %+v", info)
	}
	// Covering rect spans the left slabs and excludes the right ones.
	if info.Bounds.Min[0] > slabs[0][0]+1 || info.Bounds.Max[0] < slabs[2][1]-1 {
		t.Fatalf("bounds %v do not cover left slabs", info.Bounds)
	}
	if info.Bounds.Max[0] >= slabs[3][0] {
		t.Fatalf("bounds %v bleed into the right shard", info.Bounds)
	}
}

func TestLeaderTrainValidation(t *testing.T) {
	_, leaders, _ := shardedFixture(t, 2, Config{})
	ctx := context.Background()
	spec := ml.PaperLR(1)
	spec.Seed = 7
	m, err := spec.New()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := leaders[0].Train(ctx, TrainRequest{Spec: spec, Params: m.Params()}); err == nil {
		t.Fatal("accepted empty participants")
	}
	req := TrainRequest{
		Spec:         spec,
		Params:       m.Params(),
		Participants: []selection.Participant{{NodeID: "node-5", Rank: 1}},
		LocalEpochs:  1,
	}
	if _, err := leaders[0].Train(ctx, req); err == nil {
		t.Fatal("accepted participant from another shard")
	}
	req.Participants = []selection.Participant{{NodeID: "node-0", Rank: 1}}
	resp, err := leaders[0].Train(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 1 || resp.Results[0].Err != "" || len(resp.Results[0].Params.Values) == 0 {
		t.Fatalf("round result %+v", resp.Results)
	}
	if resp.Epoch == 0 {
		t.Fatal("train response missing epoch")
	}
}

func TestRouterRoutesQueryDrivenToOverlappingRegion(t *testing.T) {
	router, _, _ := shardedFixture(t, 2, Config{})
	ctx := context.Background()
	res, reused, err := router.ExecuteQuery(ctx, mustQuery(t, "q-left", 1, 20, -500, 75),
		selection.QueryDriven{Epsilon: 1e-9, TopL: 2}, federation.ModelAveraging)
	if err != nil {
		t.Fatal(err)
	}
	if reused {
		t.Fatal("first execution reported reuse")
	}
	if len(res.Participants) != 2 || res.Ensemble == nil {
		t.Fatalf("result %+v", res)
	}
	for _, p := range res.Participants {
		if p.NodeID != "node-0" && p.NodeID != "node-1" && p.NodeID != "node-2" {
			t.Fatalf("selected %s outside the overlapping region", p.NodeID)
		}
	}
	st, err := router.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Regions[0].Routed != 1 || st.Regions[1].Routed != 0 {
		t.Fatalf("routed counts %+v", st.Regions)
	}
	if st.Queries != 1 {
		t.Fatalf("queries %d", st.Queries)
	}
}

func TestRouterZeroOverlapIsNoCandidates(t *testing.T) {
	router, _, _ := shardedFixture(t, 2, Config{})
	_, _, err := router.ExecuteQuery(context.Background(), mustQuery(t, "q-miss", 500, 600, 2000, 3000),
		selection.QueryDriven{Epsilon: 1e-9, TopL: 2}, federation.ModelAveraging)
	if !errors.Is(err, selection.ErrNoCandidates) {
		t.Fatalf("zero-overlap error = %v, want ErrNoCandidates", err)
	}
	st, err := router.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.NoRoute != 1 {
		t.Fatalf("no-route count %d", st.NoRoute)
	}
}

func TestRouterAllNodesFansOutEverywhere(t *testing.T) {
	router, _, _ := shardedFixture(t, 2, Config{})
	ctx := context.Background()
	res, _, err := router.ExecuteQuery(ctx, mustQuery(t, "q-left-all", 1, 8, -500, 75),
		selection.AllNodes{}, federation.ModelAveraging)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Participants) != len(slabs) {
		t.Fatalf("all-nodes selected %d of %d", len(res.Participants), len(slabs))
	}
	st, _ := router.Stats(ctx)
	if st.Regions[0].Routed != 1 || st.Regions[1].Routed != 1 {
		t.Fatalf("routed counts %+v", st.Regions)
	}
}

func TestRouterSpanningRectFansOutEverywhere(t *testing.T) {
	router, _, _ := shardedFixture(t, 2, Config{})
	ctx := context.Background()
	_, _, err := router.ExecuteQuery(ctx, mustQuery(t, "q-span", -100, 1000, -1000, 1000),
		selection.QueryDriven{Epsilon: 1e-9, TopL: 4}, federation.ModelAveraging)
	if err != nil {
		t.Fatal(err)
	}
	st, _ := router.Stats(ctx)
	if st.Regions[0].Routed != 1 || st.Regions[1].Routed != 1 {
		t.Fatalf("routed counts %+v", st.Regions)
	}
	if st.Spanning == 0 {
		t.Fatal("spanning fan-out not counted")
	}
}

func TestRouterStatsAndFleetReport(t *testing.T) {
	router, _, _ := shardedFixture(t, 2, Config{})
	ctx := context.Background()
	ids, err := router.NodeIDs(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != len(slabs) {
		t.Fatalf("roster %v", ids)
	}
	for i, id := range ids {
		if id != fmt.Sprintf("node-%d", i) {
			t.Fatalf("roster out of order: %v", ids)
		}
	}
	space, err := router.Space(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if space.Min[0] > 1 || space.Max[0] < slabs[len(slabs)-1][1]-1 {
		t.Fatalf("space %v", space)
	}
	st, err := router.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Generation == 0 || len(st.Regions) != 2 {
		t.Fatalf("stats %+v", st)
	}
	if st.Regions[0].Nodes != 3 || st.Regions[1].Nodes != 3 {
		t.Fatalf("shard sizes %+v", st.Regions)
	}
	reports, err := router.FleetReport(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 2 {
		t.Fatalf("%d region reports", len(reports))
	}
	for _, rep := range reports {
		if len(rep.Health) != 3 || rep.Registry.Epoch == 0 {
			t.Fatalf("region report %+v", rep)
		}
	}
}

func TestRouterRejectsBadTopologies(t *testing.T) {
	if _, err := NewRouter(Config{Spec: ml.PaperLR(1), Seed: 1}, nil); err == nil {
		t.Fatal("accepted zero regions")
	}
	_, leaders, _ := shardedFixture(t, 2, Config{})
	if _, err := NewRouter(Config{Spec: ml.PaperLR(1), Seed: 1},
		[]Service{leaders[0], leaders[0]}); err == nil {
		t.Fatal("accepted duplicate region ids")
	}
	if _, err := NewRouter(Config{Spec: ml.Spec{Kind: "nope"}, Seed: 1},
		[]Service{leaders[0]}); err == nil {
		t.Fatal("accepted invalid spec")
	}
}
