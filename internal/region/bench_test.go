package region

import (
	"context"
	"fmt"
	"testing"
	"time"

	"qens/internal/cluster"
	"qens/internal/federation"
	"qens/internal/ml"
	"qens/internal/query"
	"qens/internal/rng"
	"qens/internal/selection"
)

// benchServiceTime models the node-side cost of one training round in
// a deployed fleet: the round runs on the edge node's own CPU and
// crosses the network, so from the coordinator's side it is I/O — a
// wait, not local compute. Charging it as a fixed delay makes the
// benchmark measure what the topologies actually differ in (how much
// node service time the coordinator can overlap) independent of how
// many cores the benchmark host happens to have.
const benchServiceTime = 2 * time.Millisecond

// remoteishClient wraps an in-process node with the training service
// time of a remote one.
type remoteishClient struct {
	federation.LocalClient
}

func (c remoteishClient) Train(ctx context.Context, req federation.TrainRequest) (federation.TrainResponse, error) {
	select {
	case <-time.After(benchServiceTime):
	case <-ctx.Done():
		return federation.TrainResponse{}, ctx.Err()
	}
	return c.LocalClient.Train(ctx, req)
}

// benchSlabs is the serving-benchmark fleet layout: 8 nodes on
// adjacent x-slabs so a 2-region split puts 4 nodes in each shard.
var benchSlabs = [][2]float64{
	{0, 7}, {8, 15}, {16, 23}, {24, 31}, {32, 39}, {40, 47}, {48, 55}, {56, 63},
}

// benchNodes builds the benchmark fleet with enough local data that a
// training round dominates the coordination overhead — the regime the
// sharded topology exists for. Seeds depend only on the index, so the
// single-leader and sharded builds see bit-identical nodes.
func benchNodes(b *testing.B, samples int) []*federation.Node {
	b.Helper()
	nodes := make([]*federation.Node, len(benchSlabs))
	for i, s := range benchSlabs {
		d := lineData(samples, 2, 1, s[0], s[1], 10+uint64(i))
		n, err := federation.NewNode(fmt.Sprintf("node-%d", i), d, 3, rng.New(1000+uint64(i)))
		if err != nil {
			b.Fatalf("node %d: %v", i, err)
		}
		nodes[i] = n
	}
	return nodes
}

func benchConfig() federation.Config {
	return federation.Config{Spec: ml.PaperLR(1), ClusterK: 3, LocalEpochs: 5, Seed: 42}
}

// benchSingle wires the fleet under one leader (the gateway's
// LeaderExecutor path: plan, then one sequential round per
// participant).
func benchSingle(b *testing.B, samples int) *federation.Leader {
	b.Helper()
	nodes := benchNodes(b, samples)
	clients := make([]federation.Client, len(nodes))
	for i, n := range nodes {
		clients[i] = remoteishClient{federation.LocalClient{Node: n}}
	}
	lead, err := federation.NewLeader(benchConfig(), nil, clients)
	if err != nil {
		b.Fatal(err)
	}
	return lead
}

// benchSharded wires the same fleet as `regions` spatial shards under
// a root Router (the gateway's sharded path: route, fan plan/train
// out per region, aggregate at the root).
func benchSharded(b *testing.B, samples, regions int) *Router {
	b.Helper()
	nodes := benchNodes(b, samples)
	summaries := make([]cluster.NodeSummary, len(nodes))
	rosterIndex := make(map[string]int, len(nodes))
	for i, n := range nodes {
		summaries[i] = n.Summary()
		rosterIndex[n.ID()] = i
	}
	shards, err := Partition(summaries, regions)
	if err != nil {
		b.Fatal(err)
	}
	cfg := benchConfig()
	services := make([]Service, 0, regions)
	for r, shard := range shards {
		clients := make([]federation.Client, 0, len(shard))
		for _, idx := range shard {
			clients = append(clients, remoteishClient{federation.LocalClient{Node: nodes[idx]}})
		}
		fed, err := federation.NewLeader(cfg, nil, clients)
		if err != nil {
			b.Fatal(err)
		}
		lead, err := NewLeader(fmt.Sprintf("region-%d", r), fed, rosterIndex)
		if err != nil {
			b.Fatal(err)
		}
		services = append(services, lead)
	}
	router, err := NewRouter(Config{Spec: cfg.Spec, LocalEpochs: cfg.LocalEpochs, Seed: cfg.Seed}, services)
	if err != nil {
		b.Fatal(err)
	}
	return router
}

// BenchmarkShardServe compares the two gateway serving paths over the
// same 8-node fleet and workload: a single leader executing queries
// through the plan-then-sequential-round pipeline (what
// gateway.LeaderExecutor runs) versus the root coordinator fanning
// the same queries out to regional leaders that each train their
// shard concurrently (Router.ExecuteQuery). The workload mixes
// spanning rectangles (fan out everywhere) with half-space ones
// (routing prunes to one region), mirroring what qensload generates.
// Node rounds carry benchServiceTime of modeled remote service time,
// so the numbers reflect coordination overlap rather than the
// benchmark host's core count.
//
// scripts/bench_shard.sh gates on the ratio: the 2-region topology
// must serve at least 1.6x the single-leader throughput.
func BenchmarkShardServe(b *testing.B) {
	const samples = 400
	sel := selection.QueryDriven{Epsilon: 1e-9, TopL: 8}
	queries := []query.Query{
		mustQuery(b, "span", 1, 62, -500, 500),  // covers both shards
		mustQuery(b, "left", 1, 28, -500, 500),  // left shard only
		mustQuery(b, "span2", 5, 58, -500, 500), // covers both shards
		mustQuery(b, "right", 36, 62, -500, 500),
	}
	ctx := context.Background()

	b.Run("topology=single", func(b *testing.B) {
		lead := benchSingle(b, samples)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := lead.ExecuteContext(ctx, queries[i%len(queries)], sel, federation.WeightedAveraging); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, regions := range []int{2} {
		b.Run(fmt.Sprintf("topology=%dregion", regions), func(b *testing.B) {
			router := benchSharded(b, samples, regions)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := router.ExecuteQuery(ctx, queries[i%len(queries)], sel, federation.WeightedAveraging); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
