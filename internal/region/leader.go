package region

import (
	"context"
	"errors"
	"fmt"
	"time"

	"qens/internal/federation"
	"qens/internal/fleet"
	"qens/internal/registry"
	"qens/internal/selection"
)

// Leader is a regional leader: the Service implementation that owns
// one spatial shard of the fleet through an embedded federation.Leader
// (its own registry snapshot, planner and health tracker). It computes
// shard-local rankings and drives shard-local training rounds on
// behalf of the root coordinator; selection, model-seed draws and
// aggregation stay at the root.
type Leader struct {
	id     string
	fed    *federation.Leader
	roster map[string]int // node id -> global roster index
}

// NewLeader wraps a federation.Leader over one shard. rosterIndex maps
// every shard member to its position in the global fleet roster (see
// NodeInfo); all members must be covered.
func NewLeader(id string, fed *federation.Leader, rosterIndex map[string]int) (*Leader, error) {
	if id == "" {
		return nil, errors.New("region: empty region id")
	}
	if fed == nil {
		return nil, errors.New("region: nil federation leader")
	}
	roster := make(map[string]int, len(rosterIndex))
	for _, nodeID := range fed.NodeIDs() {
		idx, ok := rosterIndex[nodeID]
		if !ok {
			return nil, fmt.Errorf("region %s: node %s has no global roster index", id, nodeID)
		}
		roster[nodeID] = idx
	}
	return &Leader{id: id, fed: fed, roster: roster}, nil
}

// ID returns the region identifier.
func (l *Leader) ID() string { return l.id }

// Federation exposes the embedded shard leader (tests, daemons).
func (l *Leader) Federation() *federation.Leader { return l.fed }

// Info implements Service: membership with global roster indices, the
// shard covering rectangle, and the registry epoch — all derived from
// one snapshot, so a concurrent refresh can never produce a torn view.
func (l *Leader) Info(ctx context.Context) (Info, error) {
	snap, err := l.fed.Registry().Snapshot(ctx)
	if err != nil {
		return Info{}, fmt.Errorf("region %s: %w", l.id, err)
	}
	return l.infoFromSnapshot(snap), nil
}

// infoFromSnapshot derives the shard Info from one registry snapshot.
func (l *Leader) infoFromSnapshot(snap *registry.Snapshot) Info {
	info := Info{
		RegionID:     l.id,
		Epoch:        snap.Epoch,
		Dims:         snap.Dims,
		TotalSamples: snap.TotalSamples,
		Nodes:        make([]NodeInfo, 0, len(snap.Nodes)),
	}
	bound := snap.NodeBounds[0].Clone()
	for i, g := range snap.Nodes {
		info.Nodes = append(info.Nodes, NodeInfo{NodeID: g.NodeID, RosterIndex: l.roster[g.NodeID]})
		if i > 0 {
			bound = bound.Union(snap.NodeBounds[i])
		}
	}
	info.Bounds = bound
	return info
}

// OnInfoChange registers fn to receive the shard's fresh Info after
// every registry publication — refreshes and node pushes alike. This
// is the upward half of the push pipeline: the root router hangs its
// ApplyRegionInfo here so shard covering-rect movement reaches the
// routing R-tree without an Info re-fetch fan-out. The handler runs
// on the publishing goroutine (a node's reader goroutine or a refresh
// caller) and must hand off quickly; delivery may be out of order
// under rapid publications, which ApplyRegionInfo tolerates by epoch
// fencing.
func (l *Leader) OnInfoChange(fn func(Info)) {
	l.fed.Registry().OnPublish(func(uint64) {
		snap, ok := l.fed.Registry().Current()
		if !ok {
			return
		}
		fn(l.infoFromSnapshot(snap))
	})
}

// StartPush subscribes the shard leader to summary pushes from its
// push-capable members (see federation.Leader.StartPush): a member
// that detects drift re-quantizes, pushes its advertisement into the
// shard registry, and — through OnInfoChange — the movement propagates
// upward to the root in the same beat. Returns how many members
// accepted a subscription.
func (l *Leader) StartPush(ctx context.Context) (int, error) {
	return l.fed.StartPush(ctx)
}

// StopPush gates member push delivery off (daemon drain).
func (l *Leader) StopPush() { l.fed.StopPush() }

// Plan implements Service: the shard's Eq. 2–4 ranking at the
// requested ε, computed by the same planner kernel the single-leader
// path runs, with rows that own their memory (wire-safe). Requests
// flagged QueryDriven take the R-tree-pruned kernel: identical ranks,
// but provably-zero nodes skip the per-dimension overlap vectors.
func (l *Leader) Plan(ctx context.Context, req PlanRequest) (PlanResponse, error) {
	var (
		ranks []selection.NodeRank
		epoch uint64
		err   error
	)
	if req.QueryDriven {
		ranks, epoch, err = l.fed.Planner().RankQueryDriven(ctx, req.Query, req.Epsilon)
	} else {
		ranks, epoch, err = l.fed.Planner().Rank(ctx, req.Query, req.Epsilon)
	}
	if err != nil {
		return PlanResponse{}, fmt.Errorf("region %s: %w", l.id, err)
	}
	return PlanResponse{RegionID: l.id, Epoch: epoch, Ranks: ranks}, nil
}

// Train implements Service: one concurrent training round over the
// requested shard members. Failures are reported per participant; the
// root decides whether they abort the query. The response epoch is the
// region's reuse epoch after the round, so root-side caches fence
// immediately when a node's echoed advertisement version revealed
// drift mid-round.
func (l *Leader) Train(ctx context.Context, req TrainRequest) (TrainResponse, error) {
	if len(req.Participants) == 0 {
		return TrainResponse{}, fmt.Errorf("region %s: train round without participants", l.id)
	}
	for _, p := range req.Participants {
		if _, ok := l.roster[p.NodeID]; !ok {
			return TrainResponse{}, fmt.Errorf("region %s: participant %s is not a shard member", l.id, p.NodeID)
		}
	}
	start := time.Now()
	outs := l.fed.TrainRound(ctx, req.Spec, req.Params, req.Participants, req.LocalEpochs, req.TraceID, req.SpanID)
	resp := TrainResponse{
		RegionID: l.id,
		Results:  make([]RoundResult, 0, len(outs)),
		Epoch:    l.fed.Registry().ReuseEpoch(),
	}
	for _, o := range outs {
		rr := RoundResult{NodeID: o.NodeID, ElapsedNS: int64(o.Elapsed), Err: o.Err}
		if o.Err == "" {
			rr.Params = o.Resp.Params
			rr.SamplesUsed = o.Resp.SamplesUsed
			rr.TotalSamples = o.Resp.TotalSamples
			rr.TrainTime = o.Resp.TrainTime
			rr.SummaryEpoch = o.Resp.SummaryEpoch
			rr.Spans = o.Resp.Spans
		}
		resp.Results = append(resp.Results, rr)
	}
	if req.TraceID != "" {
		resp.Spans = []federation.NodeSpan{{
			Name:        "region.train",
			StartUnixNS: start.UnixNano(),
			DurationNS:  int64(time.Since(start)),
		}}
	}
	return resp, nil
}

// Stats implements Service: the region's registry counters and its
// health tracker's per-node report, with summary-epoch staleness
// merged exactly like the single-leader gateway's /v1/fleet.
func (l *Leader) Stats(ctx context.Context) (Stats, error) {
	info, err := l.Info(ctx)
	if err != nil {
		return Stats{}, err
	}
	reg := l.fed.Registry()
	st := reg.Stats()
	meta := map[string]fleet.Meta{}
	for _, id := range l.fed.NodeIDs() {
		meta[id] = fleet.Meta{}
	}
	if snap, ok := reg.Current(); ok {
		for _, n := range snap.Nodes {
			m := meta[n.NodeID]
			m.SummaryEpoch = snap.NodeSummaryEpoch(n.NodeID)
			m.Stale = st.Stale
			meta[n.NodeID] = m
		}
	}
	return Stats{Info: info, Registry: st, Health: l.fed.Health().Report(meta)}, nil
}
