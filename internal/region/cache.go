package region

import (
	"fmt"
	"sync"

	"qens/internal/federation"
	"qens/internal/geometry"
	"qens/internal/query"
)

// epochPair records which member epoch one cached result (or plan)
// derives from. An entry is valid only while every member it routed
// through still reports the epoch it was built against — so a node
// requantizing inside one shard invalidates exactly the entries that
// touched that region, and nothing else.
type epochPair struct {
	member int
	epoch  uint64
}

// ReuseStats counts root-side reuse cache activity.
type ReuseStats struct {
	Hits         int64 `json:"hits"`
	Misses       int64 `json:"misses"`
	Fenced       int64 `json:"fenced"`
	Evictions    int64 `json:"evictions"`
	Size         int   `json:"size"`
	ThresholdPct int   `json:"threshold_pct"`
	// ApproxHits counts queries served approximately: no exact-IoU
	// match, but a valid cached entry covered at least the configured
	// fraction of the query rectangle. 0 when the tier is off.
	ApproxHits int64 `json:"approx_hits"`
	// ApproxPct is the coverage threshold (percent); 0 = tier off.
	ApproxPct int `json:"approx_pct,omitempty"`
}

type reuseEntry struct {
	bounds   geometry.Rect
	selector string
	agg      string
	basis    []epochPair
	res      *federation.Result
}

// reuseCache is the root coordinator's result reuse cache: a bounded
// scan list matched by IoU over query rectangles, fenced by per-region
// epoch basis. It mirrors the gateway's single-leader reuse semantics
// but validates against the sharded topology's per-region epochs
// instead of one registry epoch.
type reuseCache struct {
	mu        sync.Mutex
	entries   []*reuseEntry // most recent last
	threshold float64
	cap       int
	// approxCoverage enables the root's approximate answering tier:
	// after an exact-IoU miss, a valid entry whose rectangle covers
	// at least this fraction of the query's volume still serves it.
	// The root sees no training rectangles (they stay leader-side),
	// so entry query bounds stand in for the trained subspace. 0
	// disables the tier, keeping lookups bit-exact with the seed.
	approxCoverage float64

	hits       int64
	misses     int64
	fenced     int64
	evictions  int64
	approxHits int64
}

func newReuseCache(threshold float64, capacity int, approxCoverage float64) (*reuseCache, error) {
	if threshold <= 0 || threshold > 1 {
		return nil, fmt.Errorf("region: reuse IoU threshold %v outside (0,1]", threshold)
	}
	if capacity < 1 {
		return nil, fmt.Errorf("region: reuse cache capacity %d < 1", capacity)
	}
	if approxCoverage < 0 || approxCoverage > 1 {
		return nil, fmt.Errorf("region: approx coverage %v outside [0,1]", approxCoverage)
	}
	return &reuseCache{threshold: threshold, cap: capacity, approxCoverage: approxCoverage}, nil
}

// lookup returns a cached result whose query rectangle matches q at or
// above the IoU threshold with an intact epoch basis; with the approx
// tier on, an exact miss falls back to the valid entry (same selector,
// aggregation and dims) with the highest query coverage above the
// configured floor. Entries whose basis drifted are dropped eagerly
// (fenced), whether or not they matched the probe. approx reports
// which tier answered.
func (c *reuseCache) lookup(q query.Query, selector, agg string, epochOf func(int) uint64) (res *federation.Result, approx bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var hit *federation.Result
	var approxHit *federation.Result
	bestCov := 0.0
	kept := c.entries[:0]
	for _, e := range c.entries {
		valid := true
		for _, p := range e.basis {
			if epochOf(p.member) != p.epoch {
				valid = false
				break
			}
		}
		if !valid {
			c.fenced++
			continue
		}
		kept = append(kept, e)
		if e.selector != selector || e.agg != agg || e.bounds.Dims() != q.Bounds.Dims() {
			continue
		}
		if hit == nil && geometry.IoU(e.bounds, q.Bounds) >= c.threshold {
			hit = e.res
		}
		if c.approxCoverage > 0 {
			// |q ∩ e| / |q|: how much of the new query the cached
			// rectangle blankets.
			if cov := geometry.CoveredFraction(e.bounds, q.Bounds); cov >= c.approxCoverage && cov > bestCov {
				approxHit, bestCov = e.res, cov
			}
		}
	}
	c.entries = kept
	if hit != nil {
		c.hits++
		return hit, false
	}
	if approxHit != nil {
		c.approxHits++
		return approxHit, true
	}
	c.misses++
	return nil, false
}

// store records a freshly executed result with its epoch basis.
func (c *reuseCache) store(q query.Query, selector, agg string, res *federation.Result, basis []epochPair) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.entries) >= c.cap {
		n := copy(c.entries, c.entries[1:])
		c.entries = c.entries[:n]
		c.evictions++
	}
	c.entries = append(c.entries, &reuseEntry{
		bounds:   q.Bounds.Clone(),
		selector: selector,
		agg:      agg,
		basis:    append([]epochPair(nil), basis...),
		res:      res,
	})
}

func (c *reuseCache) stats() ReuseStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return ReuseStats{
		Hits:         c.hits,
		Misses:       c.misses,
		Fenced:       c.fenced,
		Evictions:    c.evictions,
		Size:         len(c.entries),
		ThresholdPct: int(c.threshold * 100),
		ApproxHits:   c.approxHits,
		ApproxPct:    int(c.approxCoverage * 100),
	}
}
