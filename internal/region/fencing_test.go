package region

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"qens/internal/federation"
	"qens/internal/selection"
)

func reuseFixture(t *testing.T) (*Router, []*federation.Node) {
	t.Helper()
	cfg := fedConfig()
	router, _, nodes := shardedFixture(t, 2, Config{
		Spec:        cfg.Spec,
		LocalEpochs: cfg.LocalEpochs,
		Seed:        cfg.Seed,
		ReuseIoU:    0.99,
		ReuseCap:    8,
	})
	return router, nodes
}

// TestReuseFencedPerRegion verifies the cross-tier fencing contract: a
// node requantizing inside one shard invalidates only that region's
// snapshot and the root-side reuse entries whose epoch basis touched
// it — entries routed through other regions keep serving.
func TestReuseFencedPerRegion(t *testing.T) {
	router, nodes := reuseFixture(t)
	ctx := context.Background()
	sel := selection.QueryDriven{Epsilon: 1e-9, TopL: 2}
	// qLeft routes only to region-0, qRight only to region-1 (disjoint
	// from the other region's covering rect in both dimensions).
	qLeft := mustQuery(t, "q-left", 1, 20, -500, 75)
	qRight := mustQuery(t, "q-right", 41, 60, 85, 130)

	if _, reused, err := router.ExecuteQuery(ctx, qLeft, sel, federation.ModelAveraging); err != nil || reused {
		t.Fatalf("qLeft first: reused=%v err=%v", reused, err)
	}
	if _, reused, err := router.ExecuteQuery(ctx, qLeft, sel, federation.ModelAveraging); err != nil || !reused {
		t.Fatalf("qLeft second: reused=%v err=%v", reused, err)
	}
	if _, reused, err := router.ExecuteQuery(ctx, qRight, sel, federation.ModelAveraging); err != nil || reused {
		t.Fatalf("qRight first: reused=%v err=%v", reused, err)
	}
	if _, reused, err := router.ExecuteQuery(ctx, qRight, sel, federation.ModelAveraging); err != nil || !reused {
		t.Fatalf("qRight second: reused=%v err=%v", reused, err)
	}

	// Drift inside region-1: node-5 requantizes. The root only learns
	// when a region-1 response echoes the newer epoch, so drive one
	// uncacheable round through the full fleet (random selection is
	// never served from the reuse cache).
	if err := nodes[5].Requantize(); err != nil {
		t.Fatal(err)
	}
	if _, reused, err := router.ExecuteQuery(ctx, mustQuery(t, "q-all", -10, 80, -30, 160),
		selection.Random{L: 6}, federation.ModelAveraging); err != nil || reused {
		t.Fatalf("drift round: reused=%v err=%v", reused, err)
	}

	// Region-1's basis moved: qRight must re-execute. Region-0 was
	// untouched: qLeft keeps serving from cache.
	if _, reused, err := router.ExecuteQuery(ctx, qLeft, sel, federation.ModelAveraging); err != nil || !reused {
		t.Fatalf("qLeft after drift: reused=%v err=%v (fenced too broadly)", reused, err)
	}
	if _, reused, err := router.ExecuteQuery(ctx, qRight, sel, federation.ModelAveraging); err != nil || reused {
		t.Fatalf("qRight after drift: reused=%v err=%v (stale entry survived the fence)", reused, err)
	}
	// And the re-executed entry is valid again at the new epoch.
	if _, reused, err := router.ExecuteQuery(ctx, qRight, sel, federation.ModelAveraging); err != nil || !reused {
		t.Fatalf("qRight re-cache: reused=%v err=%v", reused, err)
	}

	st, err := router.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Reuse == nil || st.Reuse.Fenced == 0 {
		t.Fatalf("reuse stats %+v: expected fenced entries", st.Reuse)
	}
	if st.Reuse.Hits < 3 {
		t.Fatalf("reuse stats %+v: expected at least 3 hits", st.Reuse)
	}
}

// TestEpochFencingRaceStress hammers the router with concurrent
// queries, stats scrapes and mid-flight requantizations across both
// shards. Run under -race (make check does); the assertion here is
// only that every outcome is a result or a no-candidates miss, and
// that the topology converges to the post-drift epochs.
func TestEpochFencingRaceStress(t *testing.T) {
	router, nodes := reuseFixture(t)
	ctx := context.Background()
	queries := []struct {
		id       string
		xlo, xhi float64
		ylo, yhi float64
	}{
		{"left", 1, 20, -500, 75},
		{"right", 41, 60, 85, 130},
		{"span", -100, 1000, -1000, 1000},
		{"miss", 500, 600, 2000, 3000},
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 12; i++ {
				spec := queries[(w+i)%len(queries)]
				q := mustQuery(t, fmt.Sprintf("stress-%d-%d-%s", w, i, spec.id), spec.xlo, spec.xhi, spec.ylo, spec.yhi)
				_, _, err := router.ExecuteQuery(ctx, q,
					selection.QueryDriven{Epsilon: 1e-9, TopL: 2}, federation.WeightedAveraging)
				if err != nil && !errors.Is(err, selection.ErrNoCandidates) {
					t.Errorf("worker %d query %d: %v", w, i, err)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 6; i++ {
			// Alternate drift between the two shards.
			if err := nodes[(i%2)*5].Requantize(); err != nil {
				t.Errorf("requantize %d: %v", i, err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			if _, err := router.Stats(ctx); err != nil {
				t.Errorf("stats: %v", err)
				return
			}
			if _, err := router.FleetReport(ctx); err != nil {
				t.Errorf("fleet report: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	if t.Failed() {
		return
	}
	// One more full-fleet round flushes any drift still unobserved by
	// the root, then the topology must be self-consistent.
	if _, _, err := router.ExecuteQuery(ctx, mustQuery(t, "stress-flush", -10, 80, -30, 160),
		selection.AllNodes{}, federation.ModelAveraging); err != nil {
		t.Fatal(err)
	}
	st, err := router.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, reg := range st.Regions {
		if reg.Epoch == 0 {
			t.Fatalf("region %s epoch unresolved: %+v", reg.RegionID, st.Regions)
		}
	}
}
