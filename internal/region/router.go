package region

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"qens/internal/federation"
	"qens/internal/geometry"
	"qens/internal/ml"
	"qens/internal/plan"
	"qens/internal/query"
	"qens/internal/registry"
	"qens/internal/rng"
	"qens/internal/selection"
	"qens/internal/telemetry"
)

// Config parameterizes the root coordinator.
type Config struct {
	// Spec is the model architecture every participant trains; the
	// root draws the per-query model seed, exactly like a single
	// leader would.
	Spec ml.Spec
	// LocalEpochs is the paper's E (default 5).
	LocalEpochs int
	// TolerateFailures skips participants whose round failed instead
	// of aborting the query, as long as one participant succeeds.
	TolerateFailures bool
	// Seed drives the root's stochastic choices (random selection,
	// model init). With the same seed, fleet and query sequence, the
	// sharded topology reproduces the single-leader path bit-exactly.
	Seed uint64
	// ReuseIoU enables the root-side result reuse cache at this IoU
	// threshold (0 disables). Entries are fenced per region epoch: a
	// requantize inside one shard kills only the entries that routed
	// through it.
	ReuseIoU float64
	// ReuseCap bounds the reuse cache (default 32 when enabled).
	ReuseCap int
	// ApproxCoverage enables the root's approximate answering tier:
	// after an exact-IoU miss, a basis-valid cached entry covering at
	// least this fraction of the query rectangle's volume still
	// serves it — zero regional fan-out, zero training RPCs. Requires
	// ReuseIoU != 0; 0 disables (bit-exact with the plain cache).
	ApproxCoverage float64
}

func (c Config) withDefaults() Config {
	if c.LocalEpochs == 0 {
		c.LocalEpochs = 5
	}
	if c.ReuseCap == 0 {
		c.ReuseCap = 32
	}
	return c
}

// member is the router's per-region handle: the service plus the
// latest epoch observed on any response from it.
type member struct {
	svc    Service
	id     string
	epoch  atomic.Uint64 // newest epoch seen on any RPC response
	routed atomic.Int64  // queries whose fan-out included this region
}

// observe folds a response-reported epoch into the member's high-water
// mark; reports whether it moved.
func (m *member) observe(epoch uint64) bool {
	for {
		cur := m.epoch.Load()
		if epoch <= cur {
			return false
		}
		if m.epoch.CompareAndSwap(cur, epoch) {
			return true
		}
	}
}

// topology is one immutable routing view: the region covering rects
// indexed in an R-tree, the global roster assembled from per-region
// membership, and the epochs it was built from. It is revalidated
// against each member's latest observed epoch and rebuilt when any
// shard moved.
type topology struct {
	gen     uint64
	infos   []Info
	epochs  []uint64
	index   *geometry.RTree
	space   geometry.Rect
	roster  []NodeInfo
	nodeIDs []string
	byNode  map[string]int // node id -> member index
	total   int            // fleet-wide Σ|D_i|
	dims    int
}

// Router is the root coordinator of the hierarchical federation: the
// gateway-facing executor that routes each query rectangle to the
// overlapping regions, merges their shard rankings into one global
// candidate set, applies the selection policy, fans the training round
// out over the shards, and aggregates the returned local models.
type Router struct {
	cfg     Config
	members []*member
	src     *rng.Source
	tracer  *telemetry.Tracer

	topoMu sync.Mutex
	topo   atomic.Pointer[topology]
	gen    atomic.Uint64

	cache *reuseCache

	queries       atomic.Int64
	spanning      atomic.Int64 // fan-outs that hit every region
	noRoute       atomic.Int64 // queries rejected with zero overlapping regions
	regionsPruned atomic.Int64 // regions skipped by the Eq. 2 routing bound
	topoPatches   atomic.Int64 // pushed Infos folded in without a rebuild
	selectMu      sync.Mutex   // serializes selection RNG draws with the seed draw
	metricReg     *telemetry.Registry
}

// NewRouter builds a root coordinator over the regional services. No
// RPC is issued until the first query (or an explicit Space/Stats
// call) resolves the topology.
func NewRouter(cfg Config, services []Service) (*Router, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Spec.Validate(); err != nil {
		return nil, fmt.Errorf("region: %w", err)
	}
	if cfg.LocalEpochs < 1 {
		return nil, fmt.Errorf("region: local epochs %d < 1", cfg.LocalEpochs)
	}
	if len(services) == 0 {
		return nil, errors.New("region: router needs at least one region")
	}
	r := &Router{cfg: cfg, src: rng.New(cfg.Seed), metricReg: telemetry.Default()}
	seen := map[string]bool{}
	for _, svc := range services {
		if svc == nil {
			return nil, errors.New("region: nil region service")
		}
		if seen[svc.ID()] {
			return nil, fmt.Errorf("region: duplicate region id %q", svc.ID())
		}
		seen[svc.ID()] = true
		r.members = append(r.members, &member{svc: svc, id: svc.ID()})
	}
	if cfg.ReuseIoU != 0 {
		c, err := newReuseCache(cfg.ReuseIoU, cfg.ReuseCap, cfg.ApproxCoverage)
		if err != nil {
			return nil, err
		}
		r.cache = c
	} else if cfg.ApproxCoverage != 0 {
		return nil, errors.New("region: approx coverage requires the reuse cache (ReuseIoU != 0)")
	}
	r.metricReg.SetHelp("qens_region_routed_total", "Queries fanned out to each region by the root coordinator.")
	return r, nil
}

// SetTracer pins a tracer to the router (overriding the process
// default). Pass nil to fall back to telemetry.DefaultTracer.
func (r *Router) SetTracer(t *telemetry.Tracer) { r.tracer = t }

func (r *Router) activeTracer() *telemetry.Tracer {
	if r.tracer != nil {
		return r.tracer
	}
	return telemetry.DefaultTracer()
}

// Regions returns the region ids in construction order.
func (r *Router) Regions() []string {
	out := make([]string, len(r.members))
	for i, m := range r.members {
		out[i] = m.id
	}
	return out
}

// observeEpoch folds a response epoch into member i's high-water mark.
func (r *Router) observeEpoch(i int, epoch uint64) {
	if epoch == 0 {
		return
	}
	r.members[i].observe(epoch)
}

// topoValid reports whether every member's latest observed epoch still
// matches the topology's build basis.
func (r *Router) topoValid(t *topology) bool {
	for i, m := range r.members {
		if m.epoch.Load() > t.epochs[i] {
			return false
		}
	}
	return true
}

// topology resolves the current routing view, rebuilding it when any
// region reported a newer epoch since the last build. The steady-state
// path is one atomic load plus an epoch scan — no locks, no RPCs.
func (r *Router) topology(ctx context.Context) (*topology, error) {
	if t := r.topo.Load(); t != nil && r.topoValid(t) {
		return t, nil
	}
	r.topoMu.Lock()
	defer r.topoMu.Unlock()
	if t := r.topo.Load(); t != nil && r.topoValid(t) {
		return t, nil
	}

	infos := make([]Info, len(r.members))
	errs := make([]error, len(r.members))
	var wg sync.WaitGroup
	for i, m := range r.members {
		wg.Add(1)
		go func(i int, m *member) {
			defer wg.Done()
			infos[i], errs[i] = m.svc.Info(ctx)
		}(i, m)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("region: info from %s: %w", r.members[i].id, err)
		}
	}

	t := &topology{
		infos:  infos,
		epochs: make([]uint64, len(infos)),
		byNode: map[string]int{},
		dims:   -1,
	}
	entries := make([]geometry.Entry, len(infos))
	for i, info := range infos {
		if len(info.Nodes) == 0 {
			return nil, fmt.Errorf("region: %s reports no members", r.members[i].id)
		}
		if t.dims == -1 {
			t.dims = info.Dims
			t.space = info.Bounds.Clone()
		} else {
			if info.Dims != t.dims {
				return nil, fmt.Errorf("region: %s advertises %d dims, fleet has %d", r.members[i].id, info.Dims, t.dims)
			}
			t.space = t.space.Union(info.Bounds)
		}
		t.epochs[i] = info.Epoch
		t.total += info.TotalSamples
		entries[i] = geometry.Entry{Rect: info.Bounds, ID: i}
		for _, n := range info.Nodes {
			if _, dup := t.byNode[n.NodeID]; dup {
				return nil, fmt.Errorf("region: node %s claimed by two regions", n.NodeID)
			}
			t.byNode[n.NodeID] = i
			t.roster = append(t.roster, n)
		}
	}
	index, err := geometry.BuildRTree(entries, 0)
	if err != nil {
		return nil, fmt.Errorf("region: routing index: %w", err)
	}
	t.index = index
	sort.SliceStable(t.roster, func(a, b int) bool {
		if t.roster[a].RosterIndex != t.roster[b].RosterIndex {
			return t.roster[a].RosterIndex < t.roster[b].RosterIndex
		}
		return t.roster[a].NodeID < t.roster[b].NodeID
	})
	t.nodeIDs = make([]string, len(t.roster))
	for i, n := range t.roster {
		t.nodeIDs[i] = n.NodeID
	}
	t.gen = r.gen.Add(1)
	for i := range r.members {
		r.members[i].observe(t.epochs[i])
	}
	r.topo.Store(t)
	return t, nil
}

// ApplyRegionInfo folds one region's pushed Info into the routing view
// without the full Info re-fetch fan-out that a topology rebuild costs:
// the region's covering rect, epoch and sample count are patched into a
// fresh immutable topology and the region R-tree is rebuilt locally
// (over R region rects — cheap — not over the fleet). Epoch-fenced and
// idempotent: an Info no newer than the built basis is dropped, so
// out-of-order delivery from rapid shard publications cannot regress
// the view. A membership change (nodes joined/left the shard) falls
// back to invalidation — the next query re-fetches every region's Info,
// since cross-region rosters must stay consistent. Reports whether the
// routing view was patched in place.
func (r *Router) ApplyRegionInfo(info Info) bool {
	mi := -1
	for i, m := range r.members {
		if m.id == info.RegionID {
			mi = i
			break
		}
	}
	if mi == -1 || info.Epoch == 0 {
		return false
	}
	r.topoMu.Lock()
	defer r.topoMu.Unlock()
	t := r.topo.Load()
	if t == nil {
		// Nothing built yet: record the epoch so the first topology()
		// includes at least this state.
		r.members[mi].observe(info.Epoch)
		return false
	}
	if info.Epoch <= t.epochs[mi] {
		return false // stale or duplicate push
	}
	if len(info.Nodes) != len(t.infos[mi].Nodes) || info.Dims != t.dims {
		r.members[mi].observe(info.Epoch) // invalidate: full rebuild
		return false
	}
	prevNodes := t.infos[mi].Nodes
	for i, n := range info.Nodes {
		if n.NodeID != prevNodes[i].NodeID || n.RosterIndex != prevNodes[i].RosterIndex {
			r.members[mi].observe(info.Epoch)
			return false
		}
	}

	nt := &topology{
		infos:   append([]Info(nil), t.infos...),
		epochs:  append([]uint64(nil), t.epochs...),
		roster:  t.roster, // membership unchanged: share the roster
		nodeIDs: t.nodeIDs,
		byNode:  t.byNode,
		dims:    t.dims,
	}
	nt.infos[mi] = info
	nt.epochs[mi] = info.Epoch
	entries := make([]geometry.Entry, len(nt.infos))
	for i, ri := range nt.infos {
		if i == 0 {
			nt.space = ri.Bounds.Clone()
		} else {
			nt.space = nt.space.Union(ri.Bounds)
		}
		nt.total += ri.TotalSamples
		entries[i] = geometry.Entry{Rect: ri.Bounds, ID: i}
	}
	index, err := geometry.BuildRTree(entries, 0)
	if err != nil {
		// Malformed pushed bounds: invalidate instead of patching.
		r.members[mi].observe(info.Epoch)
		return false
	}
	nt.index = index
	nt.gen = r.gen.Add(1)
	r.members[mi].observe(info.Epoch)
	r.topo.Store(nt)
	r.topoPatches.Add(1)
	return true
}

// TopologyPatches reports how many pushed region Infos were folded
// into the routing view in place (vs full rebuilds).
func (r *Router) TopologyPatches() int64 { return r.topoPatches.Load() }

// NodeIDs returns the global fleet roster in roster order, resolving
// the topology if needed.
func (r *Router) NodeIDs(ctx context.Context) ([]string, error) {
	t, err := r.topology(ctx)
	if err != nil {
		return nil, err
	}
	return t.nodeIDs, nil
}

// Space returns the global data space: the union of every region's
// covering rectangle.
func (r *Router) Space(ctx context.Context) (geometry.Rect, error) {
	t, err := r.topology(ctx)
	if err != nil {
		return geometry.Rect{}, err
	}
	return t.space, nil
}

// route picks the regions that could hold supporting clusters for the
// query. Only the paper's query-driven mechanism may prune: every
// other selector picks by roster position (or warm-up loss), so its
// candidate set must span the whole fleet.
//
// Pruning must be sound against Eq. 2, which scores support as the
// per-dimension MEAN of interval overlaps — a cluster overlapping the
// query in a single dimension still earns h up to overlapDims/dims.
// So a geometric R-tree hit (full intersection) is a definite route,
// and the remaining regions are admitted whenever that Eq. 2 upper
// bound over their covering rectangle clears ε; a region is pruned
// only when the bound proves every member cluster ranks below the
// support threshold. Returns member indices in ascending order. A
// query no region can support has no supporting cluster anywhere, so
// it surfaces selection.ErrNoCandidates — the gateway's 422
// no-candidates taxonomy, not a routing failure.
func (r *Router) route(t *topology, q query.Query, sel selection.Selector, eps float64) ([]int, error) {
	_, prune := sel.(selection.QueryDriven)
	all := make([]int, len(r.members))
	for i := range all {
		all[i] = i
	}
	if !prune {
		return all, nil
	}
	// Rectangle-spanning fallback: a query covering the whole indexed
	// space fans out everywhere without walking the tree.
	if q.Bounds.Dims() == t.dims && q.Bounds.ContainsRect(t.space) {
		r.spanning.Add(1)
		return all, nil
	}
	hit := make([]bool, len(r.members))
	err := t.index.Search(q.Bounds, func(e geometry.Entry) bool {
		hit[e.ID] = true
		return true
	})
	if err != nil {
		return nil, fmt.Errorf("region: route %s: %w", q.ID, err)
	}
	var routed []int
	for i := range r.members {
		if !hit[i] && !regionCanSupport(q.Bounds, t.infos[i].Bounds, eps) {
			continue
		}
		routed = append(routed, i)
	}
	r.regionsPruned.Add(int64(len(all) - len(routed)))
	if len(routed) == 0 {
		r.noRoute.Add(1)
		return nil, selection.ErrNoCandidates
	}
	if len(routed) == len(all) {
		r.spanning.Add(1)
	}
	return routed, nil
}

// regionCanSupport is the Eq. 2 admission bound: a cluster inside the
// region covering rect can only earn per-dimension overlap in the
// dimensions where the query and the covering rect intersect at all,
// so its support h is at most overlapDims/dims. A region whose bound
// falls below ε provably holds no supporting cluster.
func regionCanSupport(q, region geometry.Rect, eps float64) bool {
	dims := q.Dims()
	if dims == 0 || dims != region.Dims() {
		return true // malformed probe: let the region-side planner decide
	}
	overlapDims := 0
	for d := 0; d < dims; d++ {
		if q.Min[d] <= region.Max[d] && q.Max[d] >= region.Min[d] {
			overlapDims++
		}
	}
	return float64(overlapDims)/float64(dims) >= eps
}

// epsilonFor mirrors plan.PlanOn's ε resolution so cross-region
// rankings thre­shold exactly like single-leader plans.
func epsilonFor(sel selection.Selector) float64 {
	if qd, ok := sel.(selection.QueryDriven); ok {
		return qd.Epsilon
	}
	eps := plan.DefaultEpsilon
	if ec, ok := sel.(selection.EpsilonCarrier); ok {
		if e := ec.SupportEpsilon(); e > 0 {
			eps = e
		}
	}
	return eps
}

// planFanout routes the query, fans Plan RPCs out to the routed
// regions, and merges their ranking rows into global roster order.
// Returns the merged rows, the routed member indices and the per-region
// epoch basis the rankings derive from.
func (r *Router) planFanout(ctx context.Context, parent *telemetry.SpanHandle, t *topology, q query.Query, sel selection.Selector, eps float64) ([]selection.NodeRank, []int, []epochPair, error) {
	routed, err := r.route(t, q, sel, eps)
	if err != nil {
		return nil, nil, nil, err
	}
	// The paper's stateless query-driven policy never reads per-node
	// overlap vectors, so its fan-out may take the regions'
	// R-tree-pruned kernel; every other selector needs full-fidelity
	// rows.
	_, queryDriven := sel.(selection.QueryDriven)
	resps := make([]PlanResponse, len(routed))
	errs := make([]error, len(routed))
	var wg sync.WaitGroup
	for k, mi := range routed {
		wg.Add(1)
		go func(k, mi int) {
			defer wg.Done()
			m := r.members[mi]
			var sp *telemetry.SpanHandle
			if parent != nil {
				sp = parent.Child("region.plan")
				sp.SetAttr("region", m.id)
			}
			resps[k], errs[k] = m.svc.Plan(ctx, PlanRequest{Query: q, Epsilon: eps, QueryDriven: queryDriven})
			if sp != nil {
				sp.End(errs[k])
			}
		}(k, mi)
	}
	wg.Wait()
	basis := make([]epochPair, len(routed))
	var merged []selection.NodeRank
	for k, mi := range routed {
		if errs[k] != nil {
			return nil, nil, nil, fmt.Errorf("region: plan on %s: %w", r.members[mi].id, errs[k])
		}
		r.observeEpoch(mi, resps[k].Epoch)
		basis[k] = epochPair{member: mi, epoch: resps[k].Epoch}
		merged = append(merged, resps[k].Ranks...)
	}
	// Canonical global order: sort by roster index (node id breaks
	// ties). Selectors that pick by position and the order-sensitive
	// ensemble summation both require the exact single-leader order.
	rosterIdx := make(map[string]int, len(t.roster))
	for i, n := range t.roster {
		rosterIdx[n.NodeID] = i
	}
	sort.SliceStable(merged, func(a, b int) bool {
		ia, ib := rosterIdx[merged[a].NodeID], rosterIdx[merged[b].NodeID]
		if ia != ib {
			return ia < ib
		}
		return merged[a].NodeID < merged[b].NodeID
	})
	return merged, routed, basis, nil
}

// selectionContext builds the selector Context: the root's RNG (kept
// in lock-step with a single leader seeded identically) and a warm-up
// evaluator stub — the §II pre-test needs leader-local data the root
// doesn't hold, so game-theory selection is served by the single-leader
// topology only.
func (r *Router) selectionContext() *selection.Context {
	return &selection.Context{
		RNG: r.src,
		Evaluate: func(string) (float64, error) {
			return 0, errors.New("region: warm-up evaluation is not available in the sharded topology")
		},
	}
}

// selectErr mirrors the single-leader error shape so gateway taxonomy
// (422 on ErrNoCandidates) keeps working unchanged.
func selectErr(sel selection.Selector, q query.Query, err error) error {
	return fmt.Errorf("federation: %s selection for %s: %w", sel.Name(), q.ID, err)
}

// ExecuteQuery implements the gateway Executor seam: plan across the
// routed regions, select globally, train across the shards, aggregate.
// reused reports a root-side reuse-cache hit.
func (r *Router) ExecuteQuery(ctx context.Context, q query.Query, sel selection.Selector, agg federation.Aggregation) (*federation.Result, bool, error) {
	res, kind, err := r.ExecuteQueryKind(ctx, q, sel, agg)
	return res, kind.Reused(), err
}

// ExecuteQueryKind is ExecuteQuery with the serving tier surfaced:
// exact root-cache hit, approximate coverage-based serve, or a fresh
// regional fan-out. The gateway's scheduler uses it to label responses
// and stats.
func (r *Router) ExecuteQueryKind(ctx context.Context, q query.Query, sel selection.Selector, agg federation.Aggregation) (*federation.Result, federation.ServeKind, error) {
	if err := ctx.Err(); err != nil {
		return nil, federation.ServeFresh, err
	}
	// Only deterministic stateless policies are reusable: a random
	// draw must stay in lock-step with the RNG stream, and stateful
	// selectors advance per invocation.
	cacheable := r.cache != nil && reusableSelector(sel)
	if cacheable {
		if res, approx := r.cache.lookup(q, sel.Name(), agg.String(), r.memberEpoch); res != nil {
			if approx {
				return res, federation.ServeApprox, nil
			}
			return res, federation.ServeExact, nil
		}
	}
	res, basis, err := r.execute(ctx, q, sel, agg)
	if err != nil {
		return nil, federation.ServeFresh, err
	}
	if cacheable {
		r.cache.store(q, sel.Name(), agg.String(), res, basis)
	}
	return res, federation.ServeFresh, nil
}

// memberEpoch is the cache's validation hook: the latest epoch
// observed from member i.
func (r *Router) memberEpoch(i int) uint64 { return r.members[i].epoch.Load() }

// reusableSelector reports whether results under sel may be served
// from the reuse cache.
func reusableSelector(sel selection.Selector) bool {
	switch sel.(type) {
	case selection.QueryDriven, selection.AllNodes:
		return true
	default:
		return false
	}
}

// execute runs one query end to end across the sharded topology.
func (r *Router) execute(ctx context.Context, q query.Query, sel selection.Selector, agg federation.Aggregation) (_ *federation.Result, _ []epochPair, retErr error) {
	start := time.Now()
	qspan := r.activeTracer().StartTrace("query")
	qspan.SetAttr("query", q.ID)
	qspan.SetAttr("selector", sel.Name())
	qspan.SetAttr("topology", "sharded")
	defer func() { qspan.End(retErr) }()
	r.queries.Add(1)

	if qd, ok := sel.(selection.QueryDriven); ok {
		if (qd.TopL > 0) == (qd.Psi > 0) {
			return nil, nil, selectErr(sel, q, fmt.Errorf("selection: query-driven needs exactly one of TopL (%d) or Psi (%v)", qd.TopL, qd.Psi))
		}
	}
	cs, ok := sel.(selection.CandidateSelector)
	if !ok {
		return nil, nil, fmt.Errorf("region: selector %s is not supported by the sharded topology", sel.Name())
	}

	t, err := r.topology(ctx)
	if err != nil {
		return nil, nil, err
	}

	// Stage 1: route + plan fan-out + global selection, under one
	// selection span like the single-leader path.
	selStart := time.Now()
	selSpan := qspan.Child("selection")
	eps := epsilonFor(sel)
	merged, routed, basis, err := r.planFanout(ctx, selSpan, t, q, sel, eps)
	var parts []selection.Participant
	var spec ml.Spec
	if err == nil {
		for _, mi := range routed {
			r.members[mi].routed.Add(1)
			r.metricReg.Counter("qens_region_routed_total", telemetry.Label{Key: "region", Value: r.members[mi].id}).Inc()
		}
		set := selection.CandidateSet{Query: q, Epsilon: eps, Ranks: merged}
		// One lock around the selection draw and the model-seed draw
		// keeps the RNG stream per-query atomic, mirroring the
		// single-leader executor's draw order under concurrency.
		r.selectMu.Lock()
		parts, err = cs.SelectFrom(&set, r.selectionContext())
		if err == nil {
			spec = r.cfg.Spec
			spec.Seed = uint64(r.src.Int63())
		}
		r.selectMu.Unlock()
	}
	selSpan.End(err)
	if err != nil {
		return nil, nil, selectErr(sel, q, err)
	}
	selectionTime := time.Since(selStart)

	// Stage 2: initial global model at the root (exactly the
	// single-leader executor's draw), then the region train fan-out.
	global, err := spec.New()
	if err != nil {
		return nil, nil, err
	}
	initial := global.Params()
	paramBytes := int64(8 * len(initial.Values))

	res := &federation.Result{
		Query:        q,
		Epoch:        t.gen,
		Selector:     sel.Name(),
		Aggregation:  agg,
		Participants: parts,
	}
	res.Stats.SamplesAllNodes = t.total

	outs, err := r.trainFanout(ctx, qspan, t, q, spec, initial, parts)
	if err != nil {
		return nil, nil, err
	}

	// Stage 3: collect in global participant order and aggregate —
	// the executor's collection loop, verbatim semantics.
	ranks := make([]float64, 0, len(parts))
	var firstErr error
	for gi, p := range parts {
		o := outs[gi]
		round := federation.NodeRound{NodeID: p.NodeID, Elapsed: time.Duration(o.ElapsedNS)}
		if o.Err != "" {
			round.Err = o.Err
			res.NodeRounds = append(res.NodeRounds, round)
			if r.cfg.TolerateFailures {
				res.Failed = append(res.Failed, p.NodeID)
				continue
			}
			if firstErr == nil {
				firstErr = fmt.Errorf("federation: training on %s: %s", p.NodeID, o.Err)
			}
			continue
		}
		res.NodeRounds = append(res.NodeRounds, round)
		res.LocalParams = append(res.LocalParams, o.Params)
		ranks = append(ranks, p.Rank)
		res.Stats.TrainTime += o.TrainTime
		res.Stats.SamplesUsed += o.SamplesUsed
		res.Stats.SamplesSelectedNodes += o.TotalSamples
		res.Stats.BytesUp += paramBytes
		res.Stats.BytesDown += int64(8 * len(o.Params.Values))
	}
	if firstErr != nil {
		return nil, nil, firstErr
	}
	if len(res.LocalParams) == 0 {
		return nil, nil, fmt.Errorf("federation: every selected participant failed for %s", q.ID)
	}

	aggSpan := qspan.Child("aggregation")
	ensemble, err := federation.NewEnsemble(r.cfg.Spec, res.LocalParams, ranks, agg)
	aggSpan.End(err)
	if err != nil {
		return nil, nil, err
	}
	res.Ensemble = ensemble
	res.Stats.SelectionTime = selectionTime
	res.Stats.WallTime = time.Since(start)
	r.metricReg.Counter("qens_queries_total", telemetry.Label{Key: "selector", Value: sel.Name()}).Inc()
	r.metricReg.Histogram("qens_selection_ms").ObserveDuration(selectionTime)
	return res, basis, nil
}

// trainFanout groups the participants by owning region (preserving
// global participant order inside each group), issues one Train RPC
// per region concurrently, and scatters the results back into global
// participant slots. Remote region and node phase spans are re-parented
// under the per-region RPC span, completing the cross-process trace.
func (r *Router) trainFanout(ctx context.Context, qspan *telemetry.SpanHandle, t *topology, q query.Query, spec ml.Spec, initial ml.Params, parts []selection.Participant) ([]RoundResult, error) {
	type group struct {
		mi    int
		parts []selection.Participant
		slots []int
	}
	byMember := map[int]*group{}
	var order []int
	for gi, p := range parts {
		mi, ok := t.byNode[p.NodeID]
		if !ok {
			return nil, fmt.Errorf("region: participant %s belongs to no region", p.NodeID)
		}
		g := byMember[mi]
		if g == nil {
			g = &group{mi: mi}
			byMember[mi] = g
			order = append(order, mi)
		}
		g.parts = append(g.parts, p)
		g.slots = append(g.slots, gi)
	}

	outs := make([]RoundResult, len(parts))
	errs := make([]error, len(order))
	var wg sync.WaitGroup
	for k, mi := range order {
		wg.Add(1)
		go func(k int, g *group) {
			defer wg.Done()
			m := r.members[g.mi]
			rspan := qspan.Child("region.train")
			rspan.SetAttr("region", m.id)
			resp, err := m.svc.Train(ctx, TrainRequest{
				QueryID:      q.ID,
				Spec:         spec,
				Params:       initial,
				Participants: g.parts,
				LocalEpochs:  r.cfg.LocalEpochs,
				TraceID:      rspan.TraceID(),
				SpanID:       rspan.SpanID(),
			})
			if err == nil && len(resp.Results) != len(g.parts) {
				err = fmt.Errorf("region: %s returned %d results for %d participants", m.id, len(resp.Results), len(g.parts))
			}
			if err != nil {
				rspan.End(err)
				errs[k] = fmt.Errorf("region: training on %s: %w", m.id, err)
				return
			}
			r.observeEpoch(g.mi, resp.Epoch)
			tr := r.activeTracer()
			federation.RecordRemoteSpans(tr, rspan, m.id, resp.Spans)
			for j, rr := range resp.Results {
				federation.RecordRemoteSpans(tr, rspan, rr.NodeID, rr.Spans)
				outs[g.slots[j]] = rr
			}
			rspan.End(nil)
		}(k, byMember[mi])
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return outs, nil
}

// PlanKey computes the coalescing/reuse fingerprint for a query
// without training: the routed regions' epoch basis plus the selected
// participant set, mirroring plan.Plan.Key. Only deterministic
// selectors (query-driven, all-nodes) should be keyed — the gateway's
// plan-ahead path enforces that.
func (r *Router) PlanKey(ctx context.Context, q query.Query, sel selection.Selector) (string, error) {
	cs, ok := sel.(selection.CandidateSelector)
	if !ok {
		return "", fmt.Errorf("region: selector %s is not supported by the sharded topology", sel.Name())
	}
	t, err := r.topology(ctx)
	if err != nil {
		return "", err
	}
	eps := epsilonFor(sel)
	merged, routed, basis, err := r.planFanout(ctx, nil, t, q, sel, eps)
	if err != nil {
		return "", selectErr(sel, q, err)
	}
	set := selection.CandidateSet{Query: q, Epsilon: eps, Ranks: merged}
	parts, err := cs.SelectFrom(&set, r.selectionContext())
	if err != nil {
		return "", selectErr(sel, q, err)
	}
	var b strings.Builder
	b.Grow(24 + 16*len(parts))
	for k, mi := range routed {
		if k > 0 {
			b.WriteByte(',')
		}
		b.WriteString(r.members[mi].id)
		b.WriteByte(':')
		b.WriteString(strconv.FormatUint(basis[k].epoch, 10))
	}
	b.WriteByte('|')
	b.WriteString(sel.Name())
	for _, p := range parts {
		b.WriteByte('|')
		b.WriteString(p.NodeID)
		if p.Clusters != nil {
			b.WriteByte(':')
			for j, c := range p.Clusters {
				if j > 0 {
					b.WriteByte(',')
				}
				b.WriteString(strconv.Itoa(c))
			}
		}
	}
	return b.String(), nil
}

// Explain is the EXPLAIN surface behind the gateway's /v1/plan in
// router mode: the full cross-region ranking (every region is planned,
// routing pruning does not apply) plus the participants the policy
// would select.
type Explain struct {
	Epsilon      float64
	Generation   uint64
	Rankings     []selection.NodeRank
	Participants []selection.Participant
	Regions      []string
}

// ExplainQuery plans the query across all regions and applies the
// selection policy without training.
func (r *Router) ExplainQuery(ctx context.Context, q query.Query, sel selection.Selector) (*Explain, error) {
	cs, ok := sel.(selection.CandidateSelector)
	if !ok {
		return nil, fmt.Errorf("region: selector %s is not supported by the sharded topology", sel.Name())
	}
	t, err := r.topology(ctx)
	if err != nil {
		return nil, err
	}
	eps := epsilonFor(sel)
	// Plan against every region — EXPLAIN output shows the complete
	// fleet ranking, including nodes routing would prune.
	all := allNodesSelector{}
	merged, _, _, err := r.planFanout(ctx, nil, t, q, all, eps)
	if err != nil {
		return nil, selectErr(sel, q, err)
	}
	set := selection.CandidateSet{Query: q, Epsilon: eps, Ranks: merged}
	r.selectMu.Lock()
	parts, err := cs.SelectFrom(&set, r.selectionContext())
	r.selectMu.Unlock()
	if err != nil {
		return nil, selectErr(sel, q, err)
	}
	return &Explain{
		Epsilon:      eps,
		Generation:   t.gen,
		Rankings:     merged,
		Participants: parts,
		Regions:      r.Regions(),
	}, nil
}

// allNodesSelector forces planFanout's route() to fan out everywhere
// (it is not QueryDriven) while keeping the caller's ε.
type allNodesSelector = selection.AllNodes

// RegionStat is one region's routing view in RouterStats. Registry
// carries the region's own registry counters (index/prune/delta
// refresh) when the region answered its Stats RPC in time; it is nil
// for regions that failed to report — routing stats stay available
// regardless.
type RegionStat struct {
	RegionID string          `json:"region_id"`
	Nodes    int             `json:"nodes"`
	Epoch    uint64          `json:"epoch"`
	Routed   int64           `json:"routed"`
	NodeIDs  []string        `json:"node_ids,omitempty"`
	Registry *registry.Stats `json:"registry,omitempty"`
}

// RouterStats is the root coordinator's introspection block served
// under /v1/stats.
type RouterStats struct {
	Generation    uint64       `json:"generation"`
	Queries       int64        `json:"queries"`
	Spanning      int64        `json:"spanning_fanouts"`
	NoRoute       int64        `json:"no_route_rejects"`
	RegionsPruned int64        `json:"regions_pruned"`
	TopoPatches   int64        `json:"topology_patches"`
	Reuse         *ReuseStats  `json:"reuse_cache,omitempty"`
	Regions       []RegionStat `json:"regions"`
}

// Stats resolves the topology and reports per-region shard membership,
// routing counts, epochs and (best-effort) registry counters.
func (r *Router) Stats(ctx context.Context) (RouterStats, error) {
	t, err := r.topology(ctx)
	if err != nil {
		return RouterStats{}, err
	}
	st := RouterStats{
		Generation:    t.gen,
		Queries:       r.queries.Load(),
		Spanning:      r.spanning.Load(),
		NoRoute:       r.noRoute.Load(),
		RegionsPruned: r.regionsPruned.Load(),
		TopoPatches:   r.topoPatches.Load(),
	}
	if r.cache != nil {
		rs := r.cache.stats()
		st.Reuse = &rs
	}
	// Best-effort per-region registry counters: a slow or failed region
	// leaves its Registry block nil instead of failing the whole report.
	regStats := make([]*registry.Stats, len(r.members))
	var wg sync.WaitGroup
	for i, m := range r.members {
		wg.Add(1)
		go func(i int, m *member) {
			defer wg.Done()
			if rs, err := m.svc.Stats(ctx); err == nil {
				cp := rs.Registry
				regStats[i] = &cp
			}
		}(i, m)
	}
	wg.Wait()
	for i, m := range r.members {
		ids := make([]string, 0, len(t.infos[i].Nodes))
		for _, n := range t.infos[i].Nodes {
			ids = append(ids, n.NodeID)
		}
		st.Regions = append(st.Regions, RegionStat{
			RegionID: m.id,
			Nodes:    len(ids),
			Epoch:    m.epoch.Load(),
			Routed:   m.routed.Load(),
			NodeIDs:  ids,
			Registry: regStats[i],
		})
	}
	return st, nil
}

// FleetReport gathers every region's Stats (registry state + per-node
// health) for the gateway's /v1/fleet.
func (r *Router) FleetReport(ctx context.Context) ([]Stats, error) {
	out := make([]Stats, len(r.members))
	errs := make([]error, len(r.members))
	var wg sync.WaitGroup
	for i, m := range r.members {
		wg.Add(1)
		go func(i int, m *member) {
			defer wg.Done()
			out[i], errs[i] = m.svc.Stats(ctx)
		}(i, m)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("region: stats from %s: %w", r.members[i].id, err)
		}
	}
	return out, nil
}
