package region

import (
	"fmt"
	"sort"

	"qens/internal/cluster"
	"qens/internal/geometry"
)

// Partition splits a fleet's advertisements into `regions` spatial
// shards, returning roster indices per shard. The split is the first
// pass of an STR pack over the per-node covering rectangles: nodes are
// ordered by covering-rect center along dimension 0 (node id breaks
// ties) and cut into contiguous runs of near-equal size, so each shard
// owns a spatially coherent slab of the data space and the routing
// R-tree over shard covering rects prunes effectively.
//
// The assignment is fully deterministic in the advertisements, so every
// process that sees the same fleet layout (e.g. each cmd/qens-region
// instance regenerating the simulated fleet from a shared seed)
// computes the same shards without coordination.
func Partition(summaries []cluster.NodeSummary, regions int) ([][]int, error) {
	if regions < 1 {
		return nil, fmt.Errorf("region: partition into %d regions", regions)
	}
	if len(summaries) < regions {
		return nil, fmt.Errorf("region: %d nodes cannot fill %d regions", len(summaries), regions)
	}
	type entry struct {
		idx    int
		center float64
		id     string
	}
	entries := make([]entry, len(summaries))
	for i, s := range summaries {
		if err := s.Validate(); err != nil {
			return nil, fmt.Errorf("region: node %s: %w", s.NodeID, err)
		}
		bound := s.Clusters[0].Bounds.Clone()
		for _, c := range s.Clusters[1:] {
			bound = bound.Union(c.Bounds)
		}
		entries[i] = entry{idx: i, center: (bound.Min[0] + bound.Max[0]) / 2, id: s.NodeID}
	}
	sort.SliceStable(entries, func(i, j int) bool {
		if entries[i].center != entries[j].center {
			return entries[i].center < entries[j].center
		}
		return entries[i].id < entries[j].id
	})
	out := make([][]int, regions)
	n := len(entries)
	for r := 0; r < regions; r++ {
		// Near-equal contiguous cuts: shard r takes [r*n/R, (r+1)*n/R).
		lo, hi := r*n/regions, (r+1)*n/regions
		shard := make([]int, 0, hi-lo)
		for _, e := range entries[lo:hi] {
			shard = append(shard, e.idx)
		}
		// Keep roster order inside the shard: the region's local roster
		// is then a subsequence of the global one.
		sort.Ints(shard)
		out[r] = shard
	}
	return out, nil
}

// CoveringRect returns the union of a summary's cluster bounds — the
// rectangle partitioning and routing reason about.
func CoveringRect(s cluster.NodeSummary) geometry.Rect {
	bound := s.Clusters[0].Bounds.Clone()
	for _, c := range s.Clusters[1:] {
		bound = bound.Union(c.Bounds)
	}
	return bound
}
