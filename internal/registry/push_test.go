package registry

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"qens/internal/cluster"
	"qens/internal/geometry"
)

// pushSummary builds a single-cluster advertisement for id at the given
// epoch with bounds [lo,lo+1]² — distinguishable by lo.
func pushSummary(id string, epoch uint64, lo float64) cluster.NodeSummary {
	return cluster.NodeSummary{
		NodeID: id,
		Clusters: []cluster.Summary{{
			Bounds:   geometry.MustRect([]float64{lo, lo}, []float64{lo + 1, lo + 1}),
			Centroid: []float64{lo + 0.5, lo + 0.5},
			Size:     10,
		}},
		TotalSamples: 10,
		Epoch:        epoch,
	}
}

// covers reports whether the snapshot's R-tree finds node id at the
// probe rectangle.
func covers(t *testing.T, s *Snapshot, id string, lo float64) bool {
	t.Helper()
	probe := geometry.MustRect([]float64{lo + 0.1, lo + 0.1}, []float64{lo + 0.2, lo + 0.2})
	hit := false
	if err := s.Index.Search(probe, func(e geometry.Entry) bool {
		hit = hit || s.Nodes[e.ID].NodeID == id
		return true
	}); err != nil {
		t.Fatal(err)
	}
	return hit
}

func TestRegistryApplyPush(t *testing.T) {
	now := time.Unix(1000, 0)
	var mu sync.Mutex
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	advance := func(d time.Duration) { mu.Lock(); now = now.Add(d); mu.Unlock() }

	fetches := 0
	r := newTestRegistry(t, Config{
		TTL: time.Minute,
		Now: clock,
		Fetch: func(ctx context.Context) ([]cluster.NodeSummary, error) {
			fetches++
			return fleet(3, 2), nil
		},
	})

	// Before any snapshot there is no roster to land on: dropped.
	if applied, err := r.ApplyPush(pushSummary("node-1", 5, 100)); err != nil || applied {
		t.Fatalf("push before snapshot: applied=%v err=%v", applied, err)
	}

	s0, err := r.Snapshot(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	// Unfenceable (epoch 0) and unknown-node pushes are dropped.
	if applied, _ := r.ApplyPush(pushSummary("node-1", 0, 100)); applied {
		t.Fatal("zero-epoch push applied")
	}
	if applied, _ := r.ApplyPush(pushSummary("node-x", 5, 100)); applied {
		t.Fatal("unknown-node push applied")
	}
	// Stale (≤ recorded epoch 2) pushes are dropped.
	if applied, _ := r.ApplyPush(pushSummary("node-1", 2, 100)); applied {
		t.Fatal("equal-epoch push applied")
	}

	var published []uint64
	r.OnPublish(func(epoch uint64) { published = append(published, epoch) })

	// A genuinely newer advertisement lands: new snapshot, patched
	// index, epoch advanced, counters moved.
	applied, err := r.ApplyPush(pushSummary("node-1", 5, 100))
	if err != nil || !applied {
		t.Fatalf("push not applied: %v", err)
	}
	s1, _ := r.Current()
	if s1 == s0 || s1.Epoch != s0.Epoch+1 {
		t.Fatalf("push did not publish: %d -> %d", s0.Epoch, s1.Epoch)
	}
	if got := s1.NodeSummaryEpoch("node-1"); got != 5 {
		t.Fatalf("node-1 epoch after push = %d", got)
	}
	if !covers(t, s1, "node-1", 100) {
		t.Fatal("index not patched to the pushed bounds")
	}
	if covers(t, s1, "node-1", 1) {
		t.Fatal("index still covers the pre-push bounds")
	}
	if len(published) != 1 || published[0] != s1.Epoch {
		t.Fatalf("OnPublish fired %v, want [%d]", published, s1.Epoch)
	}

	st := r.Stats()
	if st.PushApplied != 1 || st.PushDroppedStale != 2 || st.PushDroppedUnknown != 2 || st.PushBytes == 0 {
		t.Fatalf("push accounting: %+v", st)
	}
	if st.IndexPatches != 1 {
		t.Fatalf("push rebuilt the index instead of patching: %+v", st)
	}

	// Per-node freshness: node-1's push renewed only node-1's clock, so
	// the fleet TTL keeps running from the seed fetch — the anti-entropy
	// pull must still cover the non-push members on schedule.
	advance(45 * time.Second) // t=1045: snapshot 45s old, TTL 60s
	if _, err := r.Snapshot(context.Background()); err != nil {
		t.Fatal(err)
	}
	if fetches != 1 {
		t.Fatalf("TTL pull ran before expiry: %d fetches", fetches)
	}
	// Keep node-1 pushing furiously: that must NOT starve the TTL pull
	// that the other roster members depend on.
	if applied, err := r.ApplyPush(pushSummary("node-1", 6, 100)); err != nil || !applied {
		t.Fatalf("second push: applied=%v err=%v", applied, err)
	}
	advance(30 * time.Second) // t=1075: 75s past the seed fetch — expired
	if _, err := r.Snapshot(context.Background()); err != nil {
		t.Fatal(err)
	}
	if fetches != 2 {
		t.Fatalf("anti-entropy pull starved by a single pushing node: %d fetches", fetches)
	}

	// Only when EVERY roster member is push-fresh does the TTL clock
	// advance: after pushes from all three nodes the snapshot's age is
	// measured from the oldest push, not the last pull.
	advance(10 * time.Second) // t=1085
	for i := 0; i < 3; i++ {
		id := fmt.Sprintf("node-%d", i)
		if applied, err := r.ApplyPush(pushSummary(id, 6, 100+float64(i))); err != nil || !applied {
			t.Fatalf("fleet push %s: applied=%v err=%v", id, applied, err)
		}
	}
	advance(55 * time.Second) // t=1140: 65s past the pull, 55s past the pushes
	if _, err := r.Snapshot(context.Background()); err != nil {
		t.Fatal(err)
	}
	if fetches != 2 {
		t.Fatalf("TTL ignored an all-push-fresh fleet: %d fetches", fetches)
	}
	advance(10 * time.Second) // t=1150: 65s past the pushes — expired again
	if _, err := r.Snapshot(context.Background()); err != nil {
		t.Fatal(err)
	}
	if fetches != 3 {
		t.Fatalf("anti-entropy pull did not resume after the push TTL: %d fetches", fetches)
	}
}

// TestRegistryPushPullInterleaving is the regression test for the
// push/pull race: a push arriving around an in-flight single-flight TTL
// refresh must never regress the registry to the pull's staler body,
// and re-delivering the push must not double-apply.
func TestRegistryPushPullInterleaving(t *testing.T) {
	var mu sync.Mutex
	nodes := fleet(4, 2)
	r := newTestRegistry(t, Config{
		Fetch: func(ctx context.Context) ([]cluster.NodeSummary, error) {
			mu.Lock()
			defer mu.Unlock()
			return append([]cluster.NodeSummary(nil), nodes...), nil
		},
		FetchDelta: func(_ context.Context, known []NodeEpoch) ([]Delta, error) {
			// A slow fleet view: always ships the full (old, epoch-2)
			// body for node-1 and answers unchanged for the rest.
			mu.Lock()
			defer mu.Unlock()
			out := make([]Delta, len(nodes))
			for i, n := range nodes {
				if n.NodeID == "node-1" {
					out[i] = Delta{NodeID: n.NodeID, Summary: n}
				} else {
					out[i] = Delta{NodeID: n.NodeID, Unchanged: true}
				}
			}
			return out, nil
		},
	})
	ctx := context.Background()
	if _, err := r.Snapshot(ctx); err != nil {
		t.Fatal(err)
	}

	// Order A — push first, stale pull second: the node pushed epoch 6,
	// then a TTL refresh fetches a delta whose node-1 body is still the
	// old epoch-2 advertisement. The refresh must keep the pushed
	// summary (epoch fencing on the pull side), not regress to the
	// fetched one.
	if applied, err := r.ApplyPush(pushSummary("node-1", 6, 200)); err != nil || !applied {
		t.Fatalf("push: applied=%v err=%v", applied, err)
	}
	preEpoch := r.Epoch()
	s, err := r.Refresh(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if s.Epoch <= preEpoch {
		t.Fatalf("refresh regressed the registry epoch: %d -> %d", preEpoch, s.Epoch)
	}
	if got := s.NodeSummaryEpoch("node-1"); got != 6 {
		t.Fatalf("pull clobbered the pushed advertisement: node-1 epoch %d, want 6", got)
	}
	if !covers(t, s, "node-1", 200) {
		t.Fatal("pull reverted node-1's index rectangle to the stale bounds")
	}

	// Order B — push lands while a refresh is in flight. The single
	// flight serializes them (the push waits), so the push must still
	// win afterwards: epoch 7 > whatever the refresh republished.
	release := make(chan struct{})
	entered := make(chan struct{})
	r2 := newTestRegistry(t, Config{
		Fetch: func(ctx context.Context) ([]cluster.NodeSummary, error) {
			mu.Lock()
			defer mu.Unlock()
			return append([]cluster.NodeSummary(nil), nodes...), nil
		},
		FetchDelta: func(_ context.Context, known []NodeEpoch) ([]Delta, error) {
			close(entered)
			<-release
			mu.Lock()
			defer mu.Unlock()
			out := make([]Delta, len(nodes))
			for i, n := range nodes {
				out[i] = Delta{NodeID: n.NodeID, Summary: n}
			}
			return out, nil
		},
	})
	if _, err := r2.Snapshot(ctx); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(2)
	var refreshErr, pushErr error
	go func() {
		defer wg.Done()
		_, refreshErr = r2.Refresh(ctx)
	}()
	<-entered // the refresh is mid-fetch when the push arrives
	go func() {
		defer wg.Done()
		_, pushErr = r2.ApplyPush(pushSummary("node-1", 7, 300))
	}()
	// Give the push time to park on the single flight, then let the
	// fetch finish; the push must apply after the refresh publishes.
	time.Sleep(50 * time.Millisecond)
	close(release)
	wg.Wait()
	if refreshErr != nil || pushErr != nil {
		t.Fatalf("refresh=%v push=%v", refreshErr, pushErr)
	}
	s2, _ := r2.Current()
	if got := s2.NodeSummaryEpoch("node-1"); got != 7 {
		t.Fatalf("in-flight refresh swallowed the push: node-1 epoch %d, want 7", got)
	}
	if !covers(t, s2, "node-1", 300) {
		t.Fatal("pushed rectangle missing after in-flight refresh")
	}

	// Re-delivering the same push (duplicate frame, reconnect replay)
	// must be a no-op: fenced as stale, applied-counter unchanged,
	// snapshot pointer untouched.
	before := r2.Stats()
	if applied, err := r2.ApplyPush(pushSummary("node-1", 7, 300)); err != nil || applied {
		t.Fatalf("duplicate push re-applied: applied=%v err=%v", applied, err)
	}
	after := r2.Stats()
	if after.PushApplied != before.PushApplied || after.PushDroppedStale != before.PushDroppedStale+1 {
		t.Fatalf("duplicate push accounting: before=%+v after=%+v", before, after)
	}
	if cur, _ := r2.Current(); cur != s2 {
		t.Fatal("duplicate push published a new snapshot")
	}
}
