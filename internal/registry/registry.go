// Package registry is the leader's versioned, epoch-stamped store of
// fleet cluster advertisements. It replaces the mutex-guarded summary
// cache that used to live inside federation.Leader with a copy-on-write
// snapshot published through an atomic.Pointer, so the query planning
// hot path (internal/plan) reads advertisements lock-free while
// refreshes happen off to the side.
//
// Lifecycle: Invalidate marks the current snapshot stale; the next
// Snapshot call (or the background refresher) re-fetches the fleet,
// validates every advertisement, and publishes a fresh immutable
// Snapshot with Epoch = previous+1. Consumers that cache derived state
// (warm-up models, reuse-cache entries, plan fingerprints) key it to
// the epoch, so everything derived from a dead snapshot dies with it.
package registry

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"qens/internal/cluster"
	"qens/internal/geometry"
)

// FetchFunc collects the fleet's current advertisements. It is called
// with refreshes serialized (never concurrently with itself) and must
// return one summary per node in stable roster order.
type FetchFunc func(ctx context.Context) ([]cluster.NodeSummary, error)

// NodeEpoch pairs a roster node with the summary epoch the registry
// already holds for it. A zero Epoch demands a full summary (first
// fetch for the node, or a forced re-fetch after InvalidateNode).
type NodeEpoch struct {
	NodeID string
	Epoch  uint64
}

// Delta is one node's answer to an epoch-conditional summary fetch:
// either Unchanged (the node's advertisement still carries the known
// epoch, no summary body moved) or a full refreshed Summary.
type Delta struct {
	NodeID    string
	Unchanged bool
	Summary   cluster.NodeSummary // valid only when !Unchanged
}

// DeltaFetchFunc collects per-node summary deltas: one Delta per
// current roster node, in stable roster order. known carries the
// per-node epochs the registry holds; implementations must answer an
// entry with Epoch 0 with a full summary. Called with refreshes
// serialized, like FetchFunc.
type DeltaFetchFunc func(ctx context.Context, known []NodeEpoch) ([]Delta, error)

// NodeGeom is one node's advertisement re-packed for the batch overlap
// kernel: all cluster rectangles in flat min/max slices (rect-major,
// see geometry.FlattenRects) plus the per-cluster sizes the ranking
// needs. It is immutable after snapshot construction.
type NodeGeom struct {
	NodeID string
	// Mins, Maxs are the flattened cluster bounds, len K*Dims.
	Mins, Maxs []float64
	// Sizes holds the per-cluster member counts.
	Sizes []int
	// TotalSamples is the node's |D_i|.
	TotalSamples int
	// SummaryEpoch is the node-reported advertisement version (bumped
	// by the node on requantization); 0 when the node predates the
	// field. The executor compares it against training responses to
	// detect drift.
	SummaryEpoch uint64
}

// K returns the node's advertised cluster count.
func (g NodeGeom) K() int {
	if len(g.Sizes) > 0 {
		return len(g.Sizes)
	}
	return 0
}

// Snapshot is one immutable, epoch-stamped view of every node's
// advertisement. All slices (including the re-packed geometry) must be
// treated as read-only; planners hand out sub-slices of their own
// arenas, never of the snapshot.
type Snapshot struct {
	// Epoch is the monotonically increasing publish counter (first
	// snapshot has epoch 1).
	Epoch uint64
	// FetchedAt is when the stalest advertisement in the snapshot was
	// last verified — the TTL clock. A pull refresh verifies the whole
	// roster, so it stamps the fetch time; an applied push renews only
	// the pushing node's entry in freshByNode, so FetchedAt (the
	// roster-wide minimum) advances only once every node is push-fresh.
	// That keeps the anti-entropy TTL pull firing on schedule for
	// non-push members (v1 peers, dead subscriptions) no matter how
	// frequently one node pushes.
	FetchedAt time.Time
	// Summaries are the validated advertisements in roster order.
	Summaries []cluster.NodeSummary
	// Nodes is the flat-slice re-pack of Summaries, index-aligned.
	Nodes []NodeGeom
	// Dims is the shared feature-space dimensionality.
	Dims int
	// TotalClusters is the sum of every node's K (arena sizing).
	TotalClusters int
	// TotalSamples is the fleet-wide Σ|D_i|.
	TotalSamples int
	// NodeBounds holds each node's covering rectangle (the union of
	// its advertised cluster bounds), index-aligned with Nodes.
	NodeBounds []geometry.Rect
	// Index is an immutable R-tree over NodeBounds, built once per
	// refresh; entry IDs are roster indices into Nodes. Region routing
	// and planner pruning probe it to skip nodes whose advertised
	// space cannot intersect a query rectangle. Like every other
	// snapshot field it dies with the epoch: a refresh publishes a
	// freshly built index.
	Index *geometry.RTree

	epochByNode map[string]uint64

	// freshByNode records when each node's advertisement was last
	// verified (fetched, probed unchanged, or pushed). FetchedAt is the
	// minimum over the roster; see its comment.
	freshByNode map[string]time.Time
}

// NodeSummaryEpoch returns the node-reported advertisement version
// recorded in this snapshot (0 when unknown).
func (s *Snapshot) NodeSummaryEpoch(nodeID string) uint64 {
	return s.epochByNode[nodeID]
}

// DefaultRebuildChurn is the changed-node fraction above which a delta
// refresh rebuilds the R-tree from scratch instead of patching it in
// place (patching preserves the stale leaf layout, which degrades
// packing quality as rectangles drift).
const DefaultRebuildChurn = 0.25

// Config parameterizes a Registry.
type Config struct {
	// Fetch collects the fleet's advertisements. Required.
	Fetch FetchFunc
	// FetchDelta, when set, switches refreshes of an already-populated
	// registry to per-node epoch-conditional deltas: nodes whose
	// advertised epoch still matches the snapshot are reused without
	// moving a summary body, so refresh bytes scale with churn instead
	// of fleet size. The first refresh (and any refresh after
	// Invalidate) still goes through Fetch.
	FetchDelta DeltaFetchFunc
	// RebuildChurn overrides DefaultRebuildChurn (a value > 1 patches
	// always, < 0 rebuilds always). Ignored without FetchDelta.
	RebuildChurn float64
	// TTL expires a snapshot after this age, forcing the next
	// Snapshot call to re-fetch (0 = snapshots never expire by age;
	// only Invalidate or Refresh replace them).
	TTL time.Duration
	// Now overrides the clock (tests); defaults to time.Now.
	Now func() time.Time
}

// Registry is the versioned summary store. All read paths (Current,
// Snapshot at steady state, Epoch, ReuseEpoch) are lock-free; only
// refreshes serialize on an internal mutex.
type Registry struct {
	fetch        FetchFunc
	fetchDelta   DeltaFetchFunc
	rebuildChurn float64
	ttl          time.Duration
	now          func() time.Time

	cur   atomic.Pointer[Snapshot]
	stale atomic.Bool
	epoch atomic.Uint64 // last published epoch

	refreshMu sync.Mutex // serializes fetch+publish

	// forceMu guards the stale-delta escape hatch: nodes listed in
	// forceFull are re-fetched with a zero known-epoch on the next
	// delta refresh even when their advertised epoch looks current;
	// forceAll demotes the next refresh to a full fleet fetch.
	forceMu   sync.Mutex
	forceFull map[string]bool
	forceAll  bool

	refreshes     atomic.Int64
	invalidations atomic.Int64

	fullRefreshes  atomic.Int64
	deltaRefreshes atomic.Int64
	nodesReused    atomic.Int64
	nodesRefetched atomic.Int64
	deltaBytes     atomic.Int64
	fullBytes      atomic.Int64
	indexPatches   atomic.Int64
	indexRebuilds  atomic.Int64

	// Push-ingestion accounting (see ApplyPush in push.go).
	pushApplied        atomic.Int64
	pushDroppedStale   atomic.Int64
	pushDroppedUnknown atomic.Int64
	pushBytes          atomic.Int64

	// Planner-side index counters, accumulated through RecordPlanPrune /
	// RecordPlanBrute so index effectiveness surfaces in Stats next to
	// the refresh accounting it depends on.
	indexedPlans atomic.Int64
	brutePlans   atomic.Int64
	nodesRanked  atomic.Int64
	nodesPruned  atomic.Int64

	bgMu   sync.Mutex
	bgStop chan struct{}
	bgDone chan struct{}

	// pubMu guards the publish watcher list (see OnPublish).
	pubMu    sync.Mutex
	pubHooks []func(epoch uint64)
}

// New builds a registry over the given fetcher. No fetch happens until
// the first Snapshot (or Refresh) call.
func New(cfg Config) (*Registry, error) {
	if cfg.Fetch == nil {
		return nil, errors.New("registry: nil fetch func")
	}
	if cfg.TTL < 0 {
		return nil, fmt.Errorf("registry: negative TTL %v", cfg.TTL)
	}
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	churn := cfg.RebuildChurn
	if churn == 0 {
		churn = DefaultRebuildChurn
	}
	r := &Registry{fetch: cfg.Fetch, fetchDelta: cfg.FetchDelta, rebuildChurn: churn, ttl: cfg.TTL, now: now}
	if r.fetchDelta != nil {
		r.forceFull = make(map[string]bool)
	}
	return r, nil
}

// Current returns the latest published snapshot without fetching;
// ok is false before the first successful refresh. The snapshot may be
// stale or expired — callers that need freshness use Snapshot.
func (r *Registry) Current() (*Snapshot, bool) {
	s := r.cur.Load()
	return s, s != nil
}

// Epoch returns the latest published epoch (0 before the first
// refresh). Lock-free.
func (r *Registry) Epoch() uint64 { return r.epoch.Load() }

// ReuseEpoch is the epoch derived caches should key their entries on:
// the published epoch, advanced by one while the current snapshot is
// stale or age-expired. During that window a lookup keyed on
// ReuseEpoch misses entries derived from the dying snapshot, and
// matches entries produced by executions that (by calling Snapshot)
// already planned against the refreshed one — which will publish
// exactly that epoch. Lock-free.
func (r *Registry) ReuseEpoch() uint64 {
	e := r.epoch.Load()
	if s := r.cur.Load(); s == nil || r.stale.Load() || r.expired(s) {
		e++
	}
	return e
}

// expired reports whether the snapshot has outlived the TTL.
func (r *Registry) expired(s *Snapshot) bool {
	return r.ttl > 0 && r.now().Sub(s.FetchedAt) >= r.ttl
}

// Snapshot returns a fresh-enough snapshot, fetching the fleet when
// none exists, the current one is age-expired, or Invalidate was
// called. The steady-state path is a single atomic load — no mutex.
func (r *Registry) Snapshot(ctx context.Context) (*Snapshot, error) {
	if s := r.cur.Load(); s != nil && !r.stale.Load() && !r.expired(s) {
		return s, nil
	}
	return r.Refresh(ctx)
}

// OnPublish registers fn to run after every snapshot publication —
// refreshes and applied pushes alike. Hooks run outside the refresh
// lock on the publishing goroutine; rapid publications may deliver
// epochs out of order, so treat the epoch as a floor and re-read
// Current. Watchers cannot be removed — gate delivery with your own
// flag. This is the upward-propagation seam: a regional leader hangs
// its covering-rect notifier here so the root router learns about
// shard movement without a full Info re-fetch.
func (r *Registry) OnPublish(fn func(epoch uint64)) {
	r.pubMu.Lock()
	r.pubHooks = append(r.pubHooks, fn)
	r.pubMu.Unlock()
}

// notifyPublish invokes the publish watchers. Must be called without
// refreshMu held.
func (r *Registry) notifyPublish(epoch uint64) {
	r.pubMu.Lock()
	hooks := make([]func(uint64), len(r.pubHooks))
	copy(hooks, r.pubHooks)
	r.pubMu.Unlock()
	for _, fn := range hooks {
		fn(epoch)
	}
}

// Refresh force-fetches the fleet and publishes a new snapshot with
// the next epoch. Concurrent refreshes are serialized; a caller that
// lost the race returns the winner's snapshot instead of re-polling
// the fleet.
func (r *Registry) Refresh(ctx context.Context) (*Snapshot, error) {
	snap, published, err := r.refresh(ctx)
	if published {
		r.notifyPublish(snap.Epoch)
	}
	return snap, err
}

// refresh is Refresh's body under the refresh lock; published reports
// whether this call stored a new snapshot (vs returning a racing
// winner's).
func (r *Registry) refresh(ctx context.Context) (*Snapshot, bool, error) {
	before := r.epoch.Load()
	r.refreshMu.Lock()
	defer r.refreshMu.Unlock()
	// Someone else published while we waited for the lock: if the
	// result is fresh, use it.
	if s := r.cur.Load(); s != nil && s.Epoch > before && !r.stale.Load() && !r.expired(s) {
		return s, false, nil
	}
	prev := r.cur.Load()
	var (
		snap *Snapshot
		err  error
	)
	if r.fetchDelta != nil && prev != nil && !r.takeForceAll() {
		snap, err = r.refreshDelta(ctx, prev)
	} else {
		snap, err = r.refreshFull(ctx)
	}
	if err != nil {
		return nil, false, err
	}
	// A refresh verified every roster member (full fetch or per-node
	// delta probe), so the whole fleet's freshness restarts here.
	snap.FetchedAt = r.now()
	snap.freshByNode = make(map[string]time.Time, len(snap.Nodes))
	for i := range snap.Nodes {
		snap.freshByNode[snap.Nodes[i].NodeID] = snap.FetchedAt
	}
	snap.Epoch = r.epoch.Add(1)
	r.cur.Store(snap)
	r.stale.Store(false)
	r.refreshes.Add(1)
	return snap, true, nil
}

// refreshFull re-fetches every advertisement and rebuilds the snapshot
// (and its index) from scratch. On success the per-node force set is
// cleared — a full fetch supersedes any pending forced re-fetches.
func (r *Registry) refreshFull(ctx context.Context) (*Snapshot, error) {
	var pending []string
	if r.fetchDelta != nil {
		r.forceMu.Lock()
		for id := range r.forceFull {
			pending = append(pending, id)
		}
		r.forceMu.Unlock()
	}
	summaries, err := r.fetch(ctx)
	if err != nil {
		return nil, err
	}
	snap, err := buildSnapshot(summaries)
	if err != nil {
		return nil, err
	}
	var bytes int64
	for i := range summaries {
		bytes += summaryWireBytes(&summaries[i])
	}
	r.fullBytes.Add(bytes)
	r.fullRefreshes.Add(1)
	if r.fetchDelta != nil {
		r.indexRebuilds.Add(1)
		// The full fetch satisfied every re-fetch pending when it
		// started; signals that arrived during it stay forced.
		r.forceMu.Lock()
		for _, id := range pending {
			delete(r.forceFull, id)
		}
		r.forceMu.Unlock()
	}
	return snap, nil
}

// takeForceAll consumes the force-all flag (set by Invalidate on a
// delta-refreshed registry).
func (r *Registry) takeForceAll() bool {
	if r.fetchDelta == nil {
		return false
	}
	r.forceMu.Lock()
	defer r.forceMu.Unlock()
	all := r.forceAll
	r.forceAll = false
	return all
}

// refreshDelta refreshes via epoch-conditional per-node deltas against
// the previous snapshot: unchanged nodes reuse their validated summary
// and re-packed geometry, changed nodes are re-validated, and the
// R-tree is patched in place below the churn threshold (rebuilt above
// it, or whenever the roster itself changed).
func (r *Registry) refreshDelta(ctx context.Context, prev *Snapshot) (*Snapshot, error) {
	r.forceMu.Lock()
	forced := make(map[string]bool, len(r.forceFull))
	for id := range r.forceFull {
		forced[id] = true
	}
	r.forceMu.Unlock()

	known := make([]NodeEpoch, len(prev.Nodes))
	for i := range prev.Nodes {
		e := prev.Nodes[i].SummaryEpoch
		if forced[prev.Nodes[i].NodeID] {
			e = 0 // stale-delta escape hatch: demand a full summary
		}
		known[i] = NodeEpoch{NodeID: prev.Nodes[i].NodeID, Epoch: e}
	}
	deltas, err := r.fetchDelta(ctx, known)
	if err != nil {
		return nil, err
	}
	if len(deltas) == 0 {
		return nil, errors.New("registry: delta fetch returned no deltas")
	}

	prevIdx := make(map[string]int, len(prev.Nodes))
	for i := range prev.Nodes {
		prevIdx[prev.Nodes[i].NodeID] = i
	}
	summaries := make([]cluster.NodeSummary, len(deltas))
	changed := make([]int, 0, len(deltas))
	rosterSame := len(deltas) == len(prev.Nodes)
	var bytes int64
	for i, d := range deltas {
		if rosterSame && d.NodeID != prev.Nodes[i].NodeID {
			rosterSame = false
		}
		if d.Unchanged {
			j, ok := prevIdx[d.NodeID]
			if !ok {
				return nil, fmt.Errorf("registry: delta marks unknown node %q unchanged", d.NodeID)
			}
			if forced[d.NodeID] {
				return nil, fmt.Errorf("registry: node %q answered a forced re-fetch with unchanged", d.NodeID)
			}
			summaries[i] = prev.Summaries[j]
			bytes += deltaProbeBytes
			continue
		}
		// Epoch fencing against the push path: a delta fetch issued
		// before a push landed can deliver an advertisement older than
		// the one the snapshot already holds. Keeping the recorded
		// summary (instead of regressing to the fetched one) makes
		// push/pull interleaving commutative. Forced nodes are exempt —
		// InvalidateNode means the recorded epoch itself is suspect.
		if j, ok := prevIdx[d.NodeID]; ok && !forced[d.NodeID] &&
			d.Summary.Epoch != 0 && d.Summary.Epoch < prev.Nodes[j].SummaryEpoch {
			summaries[i] = prev.Summaries[j]
			bytes += deltaProbeBytes
			continue
		}
		summaries[i] = d.Summary
		changed = append(changed, i)
		bytes += deltaProbeBytes + summaryWireBytes(&summaries[i])
	}

	var snap *Snapshot
	churn := float64(len(changed)) / float64(len(deltas))
	if rosterSame && prev.Index != nil && churn <= r.rebuildChurn {
		snap, err = buildSnapshotPatched(prev, summaries, changed)
		if err == nil {
			r.indexPatches.Add(1)
		}
	} else {
		snap, err = buildSnapshot(summaries)
		if err == nil {
			r.indexRebuilds.Add(1)
		}
	}
	if err != nil {
		return nil, err
	}
	r.deltaBytes.Add(bytes)
	r.deltaRefreshes.Add(1)
	r.nodesReused.Add(int64(len(deltas) - len(changed)))
	r.nodesRefetched.Add(int64(len(changed)))
	// Only now that the snapshot is published-ready may the forced set
	// shrink; entries signaled during the fetch stay for the next round.
	r.forceMu.Lock()
	for id := range forced {
		delete(r.forceFull, id)
	}
	r.forceMu.Unlock()
	return snap, nil
}

// Invalidate marks the current snapshot stale: the next Snapshot call
// (or background refresh tick) re-fetches the fleet and bumps the
// epoch. On a delta-refreshed registry that next refresh is demoted to
// a full fleet fetch — an explicit invalidation means the epochs the
// conditional path would trust are themselves suspect. Idempotent.
func (r *Registry) Invalidate() {
	if r.fetchDelta != nil {
		r.forceMu.Lock()
		r.forceAll = true
		r.forceMu.Unlock()
	}
	r.stale.Store(true)
	r.invalidations.Add(1)
}

// InvalidateNode marks one node's advertisement suspect: the current
// snapshot goes stale and — on a delta-refreshed registry — the next
// refresh re-fetches that node with a zero known-epoch, bypassing the
// "unchanged" fast path even when the node's advertised epoch looks
// current. This is the stale-delta escape hatch: a node that changed
// content without (visibly) bumping its epoch would otherwise be
// served from the reused summary forever.
func (r *Registry) InvalidateNode(nodeID string) {
	if r.fetchDelta != nil {
		r.forceMu.Lock()
		r.forceFull[nodeID] = true
		r.forceMu.Unlock()
	}
	r.stale.Store(true)
	r.invalidations.Add(1)
}

// SignalNodeEpoch reports a node-side advertisement version observed
// out-of-band (e.g. echoed on a training response). When it is newer
// than what the current snapshot recorded for that node, that node is
// invalidated (see InvalidateNode) so the next query re-fetches it in
// full. It returns true when drift was detected.
func (r *Registry) SignalNodeEpoch(nodeID string, epoch uint64) bool {
	if epoch == 0 {
		return false
	}
	s := r.cur.Load()
	if s == nil {
		return false
	}
	known, ok := s.epochByNode[nodeID]
	if !ok || epoch <= known {
		return false
	}
	r.InvalidateNode(nodeID)
	return true
}

// Stats is a point-in-time account of registry activity. The refresh
// byte counters are wire-size estimates (see summaryWireBytes), kept
// here rather than in transport so simulated fleets report them too.
type Stats struct {
	Epoch         uint64    `json:"epoch"`
	Stale         bool      `json:"stale"`
	Refreshes     int64     `json:"refreshes"`
	Invalidations int64     `json:"invalidations"`
	FetchedAt     time.Time `json:"fetched_at"`
	Nodes         int       `json:"nodes"`

	// Delta-refresh accounting (all zero on a full-fetch registry).
	FullRefreshes  int64 `json:"full_refreshes"`
	DeltaRefreshes int64 `json:"delta_refreshes"`
	NodesReused    int64 `json:"delta_nodes_reused"`
	NodesRefetched int64 `json:"delta_nodes_refetched"`
	DeltaBytes     int64 `json:"delta_refresh_bytes"`
	FullBytes      int64 `json:"full_refresh_bytes"`
	IndexPatches   int64 `json:"index_patches"`
	IndexRebuilds  int64 `json:"index_rebuilds"`

	// Push-ingestion accounting (all zero on a pull-only registry).
	PushApplied        int64 `json:"push_applied"`
	PushDroppedStale   int64 `json:"push_dropped_stale"`
	PushDroppedUnknown int64 `json:"push_dropped_unknown"`
	PushBytes          int64 `json:"push_bytes"`

	// Planner index accounting (see RecordPlanPrune): how many
	// query-driven plans walked the R-tree and how many roster rows the
	// walk spared the Eq. 2–4 kernel.
	IndexedPlans int64 `json:"indexed_plans"`
	BrutePlans   int64 `json:"brute_plans"`
	NodesRanked  int64 `json:"nodes_ranked"`
	NodesPruned  int64 `json:"nodes_pruned"`
}

// Stats snapshots the registry counters.
func (r *Registry) Stats() Stats {
	st := Stats{
		Epoch:          r.epoch.Load(),
		Stale:          r.stale.Load(),
		Refreshes:      r.refreshes.Load(),
		Invalidations:  r.invalidations.Load(),
		FullRefreshes:  r.fullRefreshes.Load(),
		DeltaRefreshes: r.deltaRefreshes.Load(),
		NodesReused:    r.nodesReused.Load(),
		NodesRefetched: r.nodesRefetched.Load(),
		DeltaBytes:     r.deltaBytes.Load(),
		FullBytes:      r.fullBytes.Load(),
		IndexPatches:   r.indexPatches.Load(),
		IndexRebuilds:  r.indexRebuilds.Load(),

		PushApplied:        r.pushApplied.Load(),
		PushDroppedStale:   r.pushDroppedStale.Load(),
		PushDroppedUnknown: r.pushDroppedUnknown.Load(),
		PushBytes:          r.pushBytes.Load(),
		IndexedPlans:       r.indexedPlans.Load(),
		BrutePlans:         r.brutePlans.Load(),
		NodesRanked:        r.nodesRanked.Load(),
		NodesPruned:        r.nodesPruned.Load(),
	}
	if s := r.cur.Load(); s != nil {
		st.FetchedAt = s.FetchedAt
		st.Nodes = len(s.Nodes)
	}
	return st
}

// RecordPlanPrune accumulates one indexed plan's pruning outcome:
// total roster rows considered and how many the index walk excluded
// before the overlap kernel. Atomics only — safe on the planner's
// allocation-free fast path.
func (r *Registry) RecordPlanPrune(total, pruned int) {
	r.indexedPlans.Add(1)
	r.nodesRanked.Add(int64(total))
	r.nodesPruned.Add(int64(pruned))
}

// RecordPlanBrute counts one query-driven plan that fell back to the
// brute kernel (snapshot without an index).
func (r *Registry) RecordPlanBrute() {
	r.brutePlans.Add(1)
}

// StartRefresh launches a background goroutine that re-fetches the
// fleet every interval (and immediately when Invalidate was called in
// between ticks). Stop (or a second StartRefresh) terminates it.
// Refresh errors are swallowed: the previous snapshot keeps serving
// and the next tick retries.
func (r *Registry) StartRefresh(interval time.Duration) {
	if interval <= 0 {
		return
	}
	r.bgMu.Lock()
	defer r.bgMu.Unlock()
	r.stopLocked()
	stop := make(chan struct{})
	done := make(chan struct{})
	r.bgStop, r.bgDone = stop, done
	go func() {
		defer close(done)
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				ctx, cancel := context.WithTimeout(context.Background(), interval)
				_, _ = r.Refresh(ctx)
				cancel()
			}
		}
	}()
}

// Stop terminates the background refresher (no-op when none runs).
func (r *Registry) Stop() {
	r.bgMu.Lock()
	defer r.bgMu.Unlock()
	r.stopLocked()
}

func (r *Registry) stopLocked() {
	if r.bgStop != nil {
		close(r.bgStop)
		<-r.bgDone
		r.bgStop, r.bgDone = nil, nil
	}
}

// buildSnapshot validates the advertisements and re-packs them for the
// batch kernel.
func buildSnapshot(summaries []cluster.NodeSummary) (*Snapshot, error) {
	if len(summaries) == 0 {
		return nil, errors.New("registry: fetch returned no summaries")
	}
	snap := &Snapshot{
		Summaries:   summaries,
		Nodes:       make([]NodeGeom, 0, len(summaries)),
		Dims:        -1,
		epochByNode: make(map[string]uint64, len(summaries)),
	}
	seen := make(map[string]bool, len(summaries))
	for _, s := range summaries {
		if err := s.Validate(); err != nil {
			return nil, fmt.Errorf("registry: node %s: %w", s.NodeID, err)
		}
		if seen[s.NodeID] {
			return nil, fmt.Errorf("registry: duplicate node id %q", s.NodeID)
		}
		seen[s.NodeID] = true
		dims := s.Clusters[0].Bounds.Dims()
		if snap.Dims == -1 {
			snap.Dims = dims
		} else if dims != snap.Dims {
			return nil, fmt.Errorf("registry: node %s advertises %d dims, fleet has %d", s.NodeID, dims, snap.Dims)
		}
		g, bound := buildNodeGeom(s)
		snap.Nodes = append(snap.Nodes, g)
		snap.NodeBounds = append(snap.NodeBounds, bound)
		snap.TotalClusters += len(s.Clusters)
		snap.TotalSamples += s.TotalSamples
		snap.epochByNode[s.NodeID] = s.Epoch
	}
	entries := make([]geometry.Entry, len(snap.NodeBounds))
	for i, b := range snap.NodeBounds {
		entries[i] = geometry.Entry{Rect: b, ID: i}
	}
	index, err := geometry.BuildRTree(entries, 0)
	if err != nil {
		return nil, fmt.Errorf("registry: node index: %w", err)
	}
	snap.Index = index
	return snap, nil
}

// buildNodeGeom re-packs one validated advertisement into the flat
// kernel layout and its covering rectangle.
func buildNodeGeom(s cluster.NodeSummary) (NodeGeom, geometry.Rect) {
	dims := s.Clusters[0].Bounds.Dims()
	g := NodeGeom{
		NodeID:       s.NodeID,
		Mins:         make([]float64, 0, len(s.Clusters)*dims),
		Maxs:         make([]float64, 0, len(s.Clusters)*dims),
		Sizes:        make([]int, 0, len(s.Clusters)),
		TotalSamples: s.TotalSamples,
		SummaryEpoch: s.Epoch,
	}
	rects := make([]geometry.Rect, len(s.Clusters))
	bound := s.Clusters[0].Bounds.Clone()
	for i, c := range s.Clusters {
		rects[i] = c.Bounds
		g.Sizes = append(g.Sizes, c.Size)
		if i > 0 {
			bound = bound.Union(c.Bounds)
		}
	}
	g.Mins, g.Maxs = geometry.FlattenRects(g.Mins, g.Maxs, rects)
	return g, bound
}

// buildSnapshotPatched builds a snapshot sharing the previous one's
// re-packed geometry for every unchanged node: only the roster indices
// listed in changed are re-validated and re-packed, and the R-tree is
// patched (path-copied) rather than rebuilt. The caller guarantees the
// roster (ids and order) matches prev.
func buildSnapshotPatched(prev *Snapshot, summaries []cluster.NodeSummary, changed []int) (*Snapshot, error) {
	snap := &Snapshot{
		Summaries:   summaries,
		Nodes:       append([]NodeGeom(nil), prev.Nodes...),
		Dims:        prev.Dims,
		NodeBounds:  append([]geometry.Rect(nil), prev.NodeBounds...),
		epochByNode: make(map[string]uint64, len(summaries)),
	}
	updates := make(map[int]geometry.Rect, len(changed))
	for _, i := range changed {
		s := summaries[i]
		if err := s.Validate(); err != nil {
			return nil, fmt.Errorf("registry: node %s: %w", s.NodeID, err)
		}
		if s.NodeID != prev.Nodes[i].NodeID {
			return nil, fmt.Errorf("registry: delta %d renamed node %q to %q", i, prev.Nodes[i].NodeID, s.NodeID)
		}
		if dims := s.Clusters[0].Bounds.Dims(); dims != prev.Dims {
			return nil, fmt.Errorf("registry: node %s advertises %d dims, fleet has %d", s.NodeID, dims, prev.Dims)
		}
		g, bound := buildNodeGeom(s)
		snap.Nodes[i] = g
		snap.NodeBounds[i] = bound
		updates[i] = bound
	}
	for i := range snap.Nodes {
		snap.TotalClusters += snap.Nodes[i].K()
		snap.TotalSamples += snap.Nodes[i].TotalSamples
		snap.epochByNode[snap.Nodes[i].NodeID] = snap.Nodes[i].SummaryEpoch
	}
	index, err := prev.Index.Patch(updates)
	if err != nil {
		return nil, fmt.Errorf("registry: node index patch: %w", err)
	}
	snap.Index = index
	return snap, nil
}

// deltaProbeBytes approximates the wire cost of one epoch-conditional
// exchange answered "unchanged": the request's known-epoch entry plus
// the response's envelope epoch stamp.
const deltaProbeBytes = 24

// summaryWireBytes approximates one advertisement's v2 wire size: id
// and counters plus, per cluster, the bounds rectangle, centroid and
// size. Used for the delta-vs-full refresh accounting in Stats.
func summaryWireBytes(s *cluster.NodeSummary) int64 {
	n := int64(len(s.NodeID)) + 16
	for i := range s.Clusters {
		c := &s.Clusters[i]
		n += int64(8*(2*c.Bounds.Dims()+len(c.Centroid))) + 8
	}
	return n
}
