// Package registry is the leader's versioned, epoch-stamped store of
// fleet cluster advertisements. It replaces the mutex-guarded summary
// cache that used to live inside federation.Leader with a copy-on-write
// snapshot published through an atomic.Pointer, so the query planning
// hot path (internal/plan) reads advertisements lock-free while
// refreshes happen off to the side.
//
// Lifecycle: Invalidate marks the current snapshot stale; the next
// Snapshot call (or the background refresher) re-fetches the fleet,
// validates every advertisement, and publishes a fresh immutable
// Snapshot with Epoch = previous+1. Consumers that cache derived state
// (warm-up models, reuse-cache entries, plan fingerprints) key it to
// the epoch, so everything derived from a dead snapshot dies with it.
package registry

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"qens/internal/cluster"
	"qens/internal/geometry"
)

// FetchFunc collects the fleet's current advertisements. It is called
// with refreshes serialized (never concurrently with itself) and must
// return one summary per node in stable roster order.
type FetchFunc func(ctx context.Context) ([]cluster.NodeSummary, error)

// NodeGeom is one node's advertisement re-packed for the batch overlap
// kernel: all cluster rectangles in flat min/max slices (rect-major,
// see geometry.FlattenRects) plus the per-cluster sizes the ranking
// needs. It is immutable after snapshot construction.
type NodeGeom struct {
	NodeID string
	// Mins, Maxs are the flattened cluster bounds, len K*Dims.
	Mins, Maxs []float64
	// Sizes holds the per-cluster member counts.
	Sizes []int
	// TotalSamples is the node's |D_i|.
	TotalSamples int
	// SummaryEpoch is the node-reported advertisement version (bumped
	// by the node on requantization); 0 when the node predates the
	// field. The executor compares it against training responses to
	// detect drift.
	SummaryEpoch uint64
}

// K returns the node's advertised cluster count.
func (g NodeGeom) K() int {
	if len(g.Sizes) > 0 {
		return len(g.Sizes)
	}
	return 0
}

// Snapshot is one immutable, epoch-stamped view of every node's
// advertisement. All slices (including the re-packed geometry) must be
// treated as read-only; planners hand out sub-slices of their own
// arenas, never of the snapshot.
type Snapshot struct {
	// Epoch is the monotonically increasing publish counter (first
	// snapshot has epoch 1).
	Epoch uint64
	// FetchedAt is when the advertisements were collected.
	FetchedAt time.Time
	// Summaries are the validated advertisements in roster order.
	Summaries []cluster.NodeSummary
	// Nodes is the flat-slice re-pack of Summaries, index-aligned.
	Nodes []NodeGeom
	// Dims is the shared feature-space dimensionality.
	Dims int
	// TotalClusters is the sum of every node's K (arena sizing).
	TotalClusters int
	// TotalSamples is the fleet-wide Σ|D_i|.
	TotalSamples int
	// NodeBounds holds each node's covering rectangle (the union of
	// its advertised cluster bounds), index-aligned with Nodes.
	NodeBounds []geometry.Rect
	// Index is an immutable R-tree over NodeBounds, built once per
	// refresh; entry IDs are roster indices into Nodes. Region routing
	// and planner pruning probe it to skip nodes whose advertised
	// space cannot intersect a query rectangle. Like every other
	// snapshot field it dies with the epoch: a refresh publishes a
	// freshly built index.
	Index *geometry.RTree

	epochByNode map[string]uint64
}

// NodeSummaryEpoch returns the node-reported advertisement version
// recorded in this snapshot (0 when unknown).
func (s *Snapshot) NodeSummaryEpoch(nodeID string) uint64 {
	return s.epochByNode[nodeID]
}

// Config parameterizes a Registry.
type Config struct {
	// Fetch collects the fleet's advertisements. Required.
	Fetch FetchFunc
	// TTL expires a snapshot after this age, forcing the next
	// Snapshot call to re-fetch (0 = snapshots never expire by age;
	// only Invalidate or Refresh replace them).
	TTL time.Duration
	// Now overrides the clock (tests); defaults to time.Now.
	Now func() time.Time
}

// Registry is the versioned summary store. All read paths (Current,
// Snapshot at steady state, Epoch, ReuseEpoch) are lock-free; only
// refreshes serialize on an internal mutex.
type Registry struct {
	fetch FetchFunc
	ttl   time.Duration
	now   func() time.Time

	cur   atomic.Pointer[Snapshot]
	stale atomic.Bool
	epoch atomic.Uint64 // last published epoch

	refreshMu sync.Mutex // serializes fetch+publish

	refreshes     atomic.Int64
	invalidations atomic.Int64

	bgMu   sync.Mutex
	bgStop chan struct{}
	bgDone chan struct{}
}

// New builds a registry over the given fetcher. No fetch happens until
// the first Snapshot (or Refresh) call.
func New(cfg Config) (*Registry, error) {
	if cfg.Fetch == nil {
		return nil, errors.New("registry: nil fetch func")
	}
	if cfg.TTL < 0 {
		return nil, fmt.Errorf("registry: negative TTL %v", cfg.TTL)
	}
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	return &Registry{fetch: cfg.Fetch, ttl: cfg.TTL, now: now}, nil
}

// Current returns the latest published snapshot without fetching;
// ok is false before the first successful refresh. The snapshot may be
// stale or expired — callers that need freshness use Snapshot.
func (r *Registry) Current() (*Snapshot, bool) {
	s := r.cur.Load()
	return s, s != nil
}

// Epoch returns the latest published epoch (0 before the first
// refresh). Lock-free.
func (r *Registry) Epoch() uint64 { return r.epoch.Load() }

// ReuseEpoch is the epoch derived caches should key their entries on:
// the published epoch, advanced by one while the current snapshot is
// stale or age-expired. During that window a lookup keyed on
// ReuseEpoch misses entries derived from the dying snapshot, and
// matches entries produced by executions that (by calling Snapshot)
// already planned against the refreshed one — which will publish
// exactly that epoch. Lock-free.
func (r *Registry) ReuseEpoch() uint64 {
	e := r.epoch.Load()
	if s := r.cur.Load(); s == nil || r.stale.Load() || r.expired(s) {
		e++
	}
	return e
}

// expired reports whether the snapshot has outlived the TTL.
func (r *Registry) expired(s *Snapshot) bool {
	return r.ttl > 0 && r.now().Sub(s.FetchedAt) >= r.ttl
}

// Snapshot returns a fresh-enough snapshot, fetching the fleet when
// none exists, the current one is age-expired, or Invalidate was
// called. The steady-state path is a single atomic load — no mutex.
func (r *Registry) Snapshot(ctx context.Context) (*Snapshot, error) {
	if s := r.cur.Load(); s != nil && !r.stale.Load() && !r.expired(s) {
		return s, nil
	}
	return r.Refresh(ctx)
}

// Refresh force-fetches the fleet and publishes a new snapshot with
// the next epoch. Concurrent refreshes are serialized; a caller that
// lost the race returns the winner's snapshot instead of re-polling
// the fleet.
func (r *Registry) Refresh(ctx context.Context) (*Snapshot, error) {
	before := r.epoch.Load()
	r.refreshMu.Lock()
	defer r.refreshMu.Unlock()
	// Someone else published while we waited for the lock: if the
	// result is fresh, use it.
	if s := r.cur.Load(); s != nil && s.Epoch > before && !r.stale.Load() && !r.expired(s) {
		return s, nil
	}
	summaries, err := r.fetch(ctx)
	if err != nil {
		return nil, err
	}
	snap, err := buildSnapshot(summaries)
	if err != nil {
		return nil, err
	}
	snap.FetchedAt = r.now()
	snap.Epoch = r.epoch.Add(1)
	r.cur.Store(snap)
	r.stale.Store(false)
	r.refreshes.Add(1)
	return snap, nil
}

// Invalidate marks the current snapshot stale: the next Snapshot call
// (or background refresh tick) re-fetches the fleet and bumps the
// epoch. Idempotent and lock-free.
func (r *Registry) Invalidate() {
	r.stale.Store(true)
	r.invalidations.Add(1)
}

// SignalNodeEpoch reports a node-side advertisement version observed
// out-of-band (e.g. echoed on a training response). When it is newer
// than what the current snapshot recorded for that node, the registry
// is invalidated so the next query re-fetches. It returns true when
// drift was detected.
func (r *Registry) SignalNodeEpoch(nodeID string, epoch uint64) bool {
	if epoch == 0 {
		return false
	}
	s := r.cur.Load()
	if s == nil {
		return false
	}
	known, ok := s.epochByNode[nodeID]
	if !ok || epoch <= known {
		return false
	}
	r.Invalidate()
	return true
}

// Stats is a point-in-time account of registry activity.
type Stats struct {
	Epoch         uint64    `json:"epoch"`
	Stale         bool      `json:"stale"`
	Refreshes     int64     `json:"refreshes"`
	Invalidations int64     `json:"invalidations"`
	FetchedAt     time.Time `json:"fetched_at"`
	Nodes         int       `json:"nodes"`
}

// Stats snapshots the registry counters.
func (r *Registry) Stats() Stats {
	st := Stats{
		Epoch:         r.epoch.Load(),
		Stale:         r.stale.Load(),
		Refreshes:     r.refreshes.Load(),
		Invalidations: r.invalidations.Load(),
	}
	if s := r.cur.Load(); s != nil {
		st.FetchedAt = s.FetchedAt
		st.Nodes = len(s.Nodes)
	}
	return st
}

// StartRefresh launches a background goroutine that re-fetches the
// fleet every interval (and immediately when Invalidate was called in
// between ticks). Stop (or a second StartRefresh) terminates it.
// Refresh errors are swallowed: the previous snapshot keeps serving
// and the next tick retries.
func (r *Registry) StartRefresh(interval time.Duration) {
	if interval <= 0 {
		return
	}
	r.bgMu.Lock()
	defer r.bgMu.Unlock()
	r.stopLocked()
	stop := make(chan struct{})
	done := make(chan struct{})
	r.bgStop, r.bgDone = stop, done
	go func() {
		defer close(done)
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				ctx, cancel := context.WithTimeout(context.Background(), interval)
				_, _ = r.Refresh(ctx)
				cancel()
			}
		}
	}()
}

// Stop terminates the background refresher (no-op when none runs).
func (r *Registry) Stop() {
	r.bgMu.Lock()
	defer r.bgMu.Unlock()
	r.stopLocked()
}

func (r *Registry) stopLocked() {
	if r.bgStop != nil {
		close(r.bgStop)
		<-r.bgDone
		r.bgStop, r.bgDone = nil, nil
	}
}

// buildSnapshot validates the advertisements and re-packs them for the
// batch kernel.
func buildSnapshot(summaries []cluster.NodeSummary) (*Snapshot, error) {
	if len(summaries) == 0 {
		return nil, errors.New("registry: fetch returned no summaries")
	}
	snap := &Snapshot{
		Summaries:   summaries,
		Nodes:       make([]NodeGeom, 0, len(summaries)),
		Dims:        -1,
		epochByNode: make(map[string]uint64, len(summaries)),
	}
	seen := make(map[string]bool, len(summaries))
	for _, s := range summaries {
		if err := s.Validate(); err != nil {
			return nil, fmt.Errorf("registry: node %s: %w", s.NodeID, err)
		}
		if seen[s.NodeID] {
			return nil, fmt.Errorf("registry: duplicate node id %q", s.NodeID)
		}
		seen[s.NodeID] = true
		dims := s.Clusters[0].Bounds.Dims()
		if snap.Dims == -1 {
			snap.Dims = dims
		} else if dims != snap.Dims {
			return nil, fmt.Errorf("registry: node %s advertises %d dims, fleet has %d", s.NodeID, dims, snap.Dims)
		}
		g := NodeGeom{
			NodeID:       s.NodeID,
			Mins:         make([]float64, 0, len(s.Clusters)*dims),
			Maxs:         make([]float64, 0, len(s.Clusters)*dims),
			Sizes:        make([]int, 0, len(s.Clusters)),
			TotalSamples: s.TotalSamples,
			SummaryEpoch: s.Epoch,
		}
		rects := make([]geometry.Rect, len(s.Clusters))
		bound := s.Clusters[0].Bounds.Clone()
		for i, c := range s.Clusters {
			rects[i] = c.Bounds
			g.Sizes = append(g.Sizes, c.Size)
			if i > 0 {
				bound = bound.Union(c.Bounds)
			}
		}
		g.Mins, g.Maxs = geometry.FlattenRects(g.Mins, g.Maxs, rects)
		snap.Nodes = append(snap.Nodes, g)
		snap.NodeBounds = append(snap.NodeBounds, bound)
		snap.TotalClusters += len(s.Clusters)
		snap.TotalSamples += s.TotalSamples
		snap.epochByNode[s.NodeID] = s.Epoch
	}
	entries := make([]geometry.Entry, len(snap.NodeBounds))
	for i, b := range snap.NodeBounds {
		entries[i] = geometry.Entry{Rect: b, ID: i}
	}
	index, err := geometry.BuildRTree(entries, 0)
	if err != nil {
		return nil, fmt.Errorf("registry: node index: %w", err)
	}
	snap.Index = index
	return snap, nil
}
