package registry

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"

	"qens/internal/cluster"
	"qens/internal/geometry"
)

// deltaFleet is an in-memory fleet answering both the full-fetch and
// the epoch-conditional delta protocols, with mutable per-node state.
type deltaFleet struct {
	mu         sync.Mutex
	nodes      []cluster.NodeSummary
	fullCalls  int
	deltaCalls int
	// fullShipped counts, per node, the full summaries moved over the
	// delta path (the stale-delta regression asserts on it).
	fullShipped map[string]int
}

func newDeltaFleet(n int) *deltaFleet {
	f := &deltaFleet{fullShipped: make(map[string]int)}
	for i := 0; i < n; i++ {
		lo := float64(i)
		f.nodes = append(f.nodes, cluster.NodeSummary{
			NodeID: fmt.Sprintf("node-%d", i),
			Clusters: []cluster.Summary{{
				Bounds:   geometry.MustRect([]float64{lo, lo}, []float64{lo + 1, lo + 1}),
				Centroid: []float64{lo + 0.5, lo + 0.5},
				Size:     10,
			}},
			TotalSamples: 10,
			Epoch:        1,
		})
	}
	return f
}

// bump re-quantizes node i: new bounds (same dimensionality) and an
// advertised epoch bump.
func (f *deltaFleet) bump(i int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	dims := f.nodes[i].Clusters[0].Bounds.Dims()
	lo := float64(i%100) + 100
	min := make([]float64, dims)
	max := make([]float64, dims)
	cen := make([]float64, dims)
	for d := 0; d < dims; d++ {
		min[d], max[d], cen[d] = lo, lo+2, lo+1
	}
	f.nodes[i].Clusters = []cluster.Summary{{
		Bounds:   geometry.MustRect(min, max),
		Centroid: cen,
		Size:     12,
	}}
	f.nodes[i].TotalSamples = 12
	f.nodes[i].Epoch++
}

// mutateSilently changes node i's advertisement WITHOUT bumping the
// epoch — the failure mode the escape hatch exists for.
func (f *deltaFleet) mutateSilently(i int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	lo := float64(i) + 500
	f.nodes[i].Clusters = []cluster.Summary{{
		Bounds:   geometry.MustRect([]float64{lo, lo}, []float64{lo + 1, lo + 1}),
		Centroid: []float64{lo + 0.5, lo + 0.5},
		Size:     10,
	}}
}

func (f *deltaFleet) fetch(context.Context) ([]cluster.NodeSummary, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.fullCalls++
	return append([]cluster.NodeSummary(nil), f.nodes...), nil
}

func (f *deltaFleet) fetchDelta(_ context.Context, known []NodeEpoch) ([]Delta, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.deltaCalls++
	byID := make(map[string]uint64, len(known))
	for _, k := range known {
		byID[k.NodeID] = k.Epoch
	}
	out := make([]Delta, len(f.nodes))
	for i, n := range f.nodes {
		if e, ok := byID[n.NodeID]; ok && e != 0 && e == n.Epoch {
			out[i] = Delta{NodeID: n.NodeID, Unchanged: true}
			continue
		}
		f.fullShipped[n.NodeID]++
		out[i] = Delta{NodeID: n.NodeID, Summary: n}
	}
	return out, nil
}

func (f *deltaFleet) registry(t *testing.T, churn float64) *Registry {
	t.Helper()
	return newTestRegistry(t, Config{
		Fetch:        f.fetch,
		FetchDelta:   f.fetchDelta,
		RebuildChurn: churn,
	})
}

func TestRegistryDeltaLifecycle(t *testing.T) {
	f := newDeltaFleet(8)
	r := f.registry(t, 0) // DefaultRebuildChurn

	ctx := context.Background()
	s1, err := r.Snapshot(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st := r.Stats(); st.FullRefreshes != 1 || st.DeltaRefreshes != 0 || f.fullCalls != 1 {
		t.Fatalf("first refresh not full: %+v (%d full calls)", st, f.fullCalls)
	}

	// No churn: every node answers unchanged, summaries are reused, the
	// index is patched (trivially) rather than rebuilt.
	s2, err := r.Refresh(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if s2 == s1 || s2.Epoch != s1.Epoch+1 {
		t.Fatalf("refresh did not publish a new epoch: %d -> %d", s1.Epoch, s2.Epoch)
	}
	st := r.Stats()
	if st.DeltaRefreshes != 1 || st.NodesReused != 8 || st.NodesRefetched != 0 {
		t.Fatalf("zero-churn delta accounting: %+v", st)
	}
	if st.IndexPatches != 1 {
		t.Fatalf("zero-churn refresh rebuilt the index: %+v", st)
	}
	if f.fullCalls != 1 || f.deltaCalls != 1 {
		t.Fatalf("calls: %d full, %d delta", f.fullCalls, f.deltaCalls)
	}

	// One node re-quantizes (12.5% churn, below the 25% threshold): its
	// summary is re-fetched, the rest reuse, and the index is patched —
	// searches must see the moved rectangle.
	f.bump(3)
	s3, err := r.Refresh(ctx)
	if err != nil {
		t.Fatal(err)
	}
	st = r.Stats()
	if st.DeltaRefreshes != 2 || st.NodesReused != 15 || st.NodesRefetched != 1 || st.IndexPatches != 2 {
		t.Fatalf("low-churn delta accounting: %+v", st)
	}
	if s3.NodeSummaryEpoch("node-3") != 2 {
		t.Fatalf("node-3 epoch %d after bump", s3.NodeSummaryEpoch("node-3"))
	}
	probe := geometry.MustRect([]float64{103, 103}, []float64{104, 104})
	hit := false
	if err := s3.Index.Search(probe, func(e geometry.Entry) bool {
		hit = hit || s3.Nodes[e.ID].NodeID == "node-3"
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Fatal("patched index does not cover node-3's new bounds")
	}

	// Heavy churn (4/8 = 50% > 25%): delta refresh still moves only the
	// changed bodies but rebuilds the index from scratch.
	for _, i := range []int{0, 1, 2, 4} {
		f.bump(i)
	}
	if _, err := r.Refresh(ctx); err != nil {
		t.Fatal(err)
	}
	st = r.Stats()
	if st.DeltaRefreshes != 3 || st.NodesRefetched != 5 || st.IndexPatches != 2 || st.IndexRebuilds != 2 {
		t.Fatalf("high-churn delta accounting: %+v", st)
	}

	// Invalidate demotes the next refresh to a full fleet fetch.
	r.Invalidate()
	if _, err := r.Snapshot(ctx); err != nil {
		t.Fatal(err)
	}
	st = r.Stats()
	if st.FullRefreshes != 2 || f.fullCalls != 2 {
		t.Fatalf("invalidate did not force a full fetch: %+v (%d full calls)", st, f.fullCalls)
	}
}

// TestRegistryDeltaRosterChange: a node joining the fleet changes the
// roster, which must force an index rebuild (patching assumes stable
// entry IDs) while still reusing unchanged bodies.
func TestRegistryDeltaRosterChange(t *testing.T) {
	f := newDeltaFleet(4)
	r := f.registry(t, 0)
	ctx := context.Background()
	if _, err := r.Snapshot(ctx); err != nil {
		t.Fatal(err)
	}

	f.mu.Lock()
	lo := 42.0
	f.nodes = append(f.nodes, cluster.NodeSummary{
		NodeID: "node-late",
		Clusters: []cluster.Summary{{
			Bounds:   geometry.MustRect([]float64{lo, lo}, []float64{lo + 1, lo + 1}),
			Centroid: []float64{lo + 0.5, lo + 0.5},
			Size:     10,
		}},
		TotalSamples: 10,
		Epoch:        1,
	})
	f.mu.Unlock()

	s, err := r.Refresh(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Nodes) != 5 || s.NodeSummaryEpoch("node-late") != 1 {
		t.Fatalf("roster change not reflected: %d nodes", len(s.Nodes))
	}
	st := r.Stats()
	if st.DeltaRefreshes != 1 || st.NodesReused != 4 || st.NodesRefetched != 1 {
		t.Fatalf("roster-change delta accounting: %+v", st)
	}
	if st.IndexPatches != 0 || st.IndexRebuilds != 2 { // initial build + roster rebuild
		t.Fatalf("roster change must rebuild the index: %+v", st)
	}
}

// TestRegistryDeltaStaleEscapeHatch is the regression test for the
// stale-delta failure mode: a node whose content changed while its
// advertised epoch stayed put is served from the reused summary until
// InvalidateNode (or SignalNodeEpoch drift detection) forces a
// zero-epoch re-fetch for that node — and only that node.
func TestRegistryDeltaStaleEscapeHatch(t *testing.T) {
	f := newDeltaFleet(6)
	r := f.registry(t, 0)
	ctx := context.Background()
	if _, err := r.Snapshot(ctx); err != nil {
		t.Fatal(err)
	}

	// The node mutates without bumping its epoch: the conditional path
	// has no way to notice, so the stale rectangle survives the refresh.
	f.mutateSilently(2)
	s, err := r.Refresh(ctx)
	if err != nil {
		t.Fatal(err)
	}
	stale := geometry.MustRect([]float64{2, 2}, []float64{3, 3})
	if got := s.Summaries[2].Clusters[0].Bounds; got.Min[0] != stale.Min[0] {
		t.Fatalf("expected the stale summary to be reused, got bounds %v", got)
	}
	if f.fullShipped["node-2"] != 0 { // the delta path never moved its body
		t.Fatalf("node-2 full summaries over delta path: %d", f.fullShipped["node-2"])
	}

	// Escape hatch: force that one node. The next refresh must send a
	// zero known-epoch for it, pull the full body, and keep reusing the
	// other five.
	r.InvalidateNode("node-2")
	s, err = r.Snapshot(ctx) // stale → refresh
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Summaries[2].Clusters[0].Bounds.Min[0]; got != 502 {
		t.Fatalf("forced re-fetch did not pull the mutated summary: min %v", got)
	}
	st := r.Stats()
	if st.NodesRefetched != 1 || st.NodesReused != 11 {
		t.Fatalf("escape hatch re-fetched more than one node: %+v", st)
	}
	if f.fullShipped["node-2"] != 1 {
		t.Fatalf("node-2 full summaries over delta path after escape hatch: %d", f.fullShipped["node-2"])
	}

	// SignalNodeEpoch: drift observed out-of-band (a training response
	// echoing a newer epoch) trips the same per-node hatch.
	f.mutateSilently(4)
	if r.SignalNodeEpoch("node-4", 1) {
		t.Fatal("equal epoch misreported as drift")
	}
	if !r.SignalNodeEpoch("node-4", 9) {
		t.Fatal("newer epoch not detected as drift")
	}
	s, err = r.Snapshot(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Summaries[4].Clusters[0].Bounds.Min[0]; got != 504 {
		t.Fatalf("signal-driven re-fetch did not pull the mutated summary: min %v", got)
	}

	// A fleet answering a forced re-fetch with "unchanged" is broken;
	// the registry must refuse the refresh rather than trust it.
	r.InvalidateNode("node-1")
	bad := func(_ context.Context, known []NodeEpoch) ([]Delta, error) {
		out := make([]Delta, len(known))
		for i, k := range known {
			out[i] = Delta{NodeID: k.NodeID, Unchanged: true}
		}
		return out, nil
	}
	r2 := newTestRegistry(t, Config{Fetch: f.fetch, FetchDelta: bad})
	if _, err := r2.Snapshot(ctx); err != nil {
		t.Fatal(err)
	}
	r2.InvalidateNode("node-1")
	if _, err := r2.Snapshot(ctx); err == nil || !strings.Contains(err.Error(), "forced re-fetch") {
		t.Fatalf("unchanged answer to a forced re-fetch accepted: %v", err)
	}
}

// TestRegistryDeltaBytesAtScale pins the acceptance number: at
// N=10 000 paper-shaped advertisements (K=5 clusters, 16 dims) and 1%
// churn, a delta refresh moves less than 5% of a full refresh's bytes.
func TestRegistryDeltaBytesAtScale(t *testing.T) {
	const n = 10000
	f := &deltaFleet{fullShipped: make(map[string]int)}
	for i := 0; i < n; i++ {
		s := cluster.NodeSummary{NodeID: fmt.Sprintf("node-%05d", i), Epoch: 1, TotalSamples: 50}
		for c := 0; c < 5; c++ {
			min := make([]float64, 16)
			max := make([]float64, 16)
			cen := make([]float64, 16)
			for d := 0; d < 16; d++ {
				lo := float64((i*31+c*7+d)%90) + float64(d)*0.01
				min[d], max[d] = lo, lo+1
				cen[d] = lo + 0.5
			}
			s.Clusters = append(s.Clusters, cluster.Summary{
				Bounds: geometry.MustRect(min, max), Centroid: cen, Size: 10,
			})
		}
		f.nodes = append(f.nodes, s)
	}
	r := f.registry(t, 0)
	ctx := context.Background()
	if _, err := r.Snapshot(ctx); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < n; i += 100 { // 1% churn
		f.bump(i)
	}
	if _, err := r.Refresh(ctx); err != nil {
		t.Fatal(err)
	}
	st := r.Stats()
	if st.FullRefreshes != 1 || st.DeltaRefreshes != 1 || st.NodesRefetched != 100 {
		t.Fatalf("scale scenario accounting: %+v", st)
	}
	if st.FullBytes == 0 || st.DeltaBytes == 0 {
		t.Fatalf("byte counters empty: %+v", st)
	}
	if ratio := float64(st.DeltaBytes) / float64(st.FullBytes); ratio >= 0.05 {
		t.Fatalf("delta refresh moved %.2f%% of full-refresh bytes (delta=%d full=%d), want < 5%%",
			100*ratio, st.DeltaBytes, st.FullBytes)
	}
}
