package registry

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"qens/internal/cluster"
	"qens/internal/geometry"
)

// fleet builds n synthetic single-cluster advertisements with the given
// per-node epoch.
func fleet(n int, epoch uint64) []cluster.NodeSummary {
	out := make([]cluster.NodeSummary, n)
	for i := range out {
		lo := float64(i)
		out[i] = cluster.NodeSummary{
			NodeID: fmt.Sprintf("node-%d", i),
			Clusters: []cluster.Summary{{
				Bounds:   geometry.MustRect([]float64{lo, lo}, []float64{lo + 1, lo + 1}),
				Centroid: []float64{lo + 0.5, lo + 0.5},
				Size:     10,
			}},
			TotalSamples: 10,
			Epoch:        epoch,
		}
	}
	return out
}

func newTestRegistry(t *testing.T, cfg Config) *Registry {
	t.Helper()
	r, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return r
}

func TestRegistryLifecycle(t *testing.T) {
	var fetches atomic.Int64
	r := newTestRegistry(t, Config{Fetch: func(ctx context.Context) ([]cluster.NodeSummary, error) {
		fetches.Add(1)
		return fleet(3, 7), nil
	}})

	if _, ok := r.Current(); ok {
		t.Fatal("Current reported a snapshot before any refresh")
	}
	if got := r.Epoch(); got != 0 {
		t.Fatalf("Epoch before refresh = %d", got)
	}
	if got := r.ReuseEpoch(); got != 1 {
		t.Fatalf("ReuseEpoch before refresh = %d, want 1", got)
	}

	s, err := r.Snapshot(context.Background())
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	if s.Epoch != 1 || len(s.Nodes) != 3 || s.Dims != 2 || s.TotalClusters != 3 || s.TotalSamples != 30 {
		t.Fatalf("bad first snapshot: %+v", s)
	}
	if got := s.NodeSummaryEpoch("node-1"); got != 7 {
		t.Fatalf("NodeSummaryEpoch = %d, want 7", got)
	}
	if got := s.NodeSummaryEpoch("nope"); got != 0 {
		t.Fatalf("NodeSummaryEpoch(unknown) = %d", got)
	}

	// Steady state: no re-fetch, same pointer, ReuseEpoch == Epoch.
	s2, err := r.Snapshot(context.Background())
	if err != nil || s2 != s {
		t.Fatalf("steady-state Snapshot refetched: %v %p %p", err, s, s2)
	}
	if fetches.Load() != 1 {
		t.Fatalf("fetches = %d, want 1", fetches.Load())
	}
	if r.ReuseEpoch() != 1 {
		t.Fatalf("steady ReuseEpoch = %d", r.ReuseEpoch())
	}

	// Invalidate → ReuseEpoch advances, next Snapshot bumps epoch.
	r.Invalidate()
	if r.ReuseEpoch() != 2 {
		t.Fatalf("stale ReuseEpoch = %d, want 2", r.ReuseEpoch())
	}
	s3, err := r.Snapshot(context.Background())
	if err != nil {
		t.Fatalf("Snapshot after Invalidate: %v", err)
	}
	if s3.Epoch != 2 || fetches.Load() != 2 {
		t.Fatalf("epoch %d fetches %d after invalidate", s3.Epoch, fetches.Load())
	}
	if r.ReuseEpoch() != 2 {
		t.Fatalf("post-refresh ReuseEpoch = %d", r.ReuseEpoch())
	}

	st := r.Stats()
	if st.Epoch != 2 || st.Stale || st.Refreshes != 2 || st.Invalidations != 1 || st.Nodes != 3 {
		t.Fatalf("bad stats: %+v", st)
	}
}

func TestRegistryTTLExpiry(t *testing.T) {
	now := time.Unix(1000, 0)
	var mu sync.Mutex
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	advance := func(d time.Duration) { mu.Lock(); now = now.Add(d); mu.Unlock() }

	var fetches atomic.Int64
	r := newTestRegistry(t, Config{
		TTL: time.Minute,
		Now: clock,
		Fetch: func(ctx context.Context) ([]cluster.NodeSummary, error) {
			fetches.Add(1)
			return fleet(2, 0), nil
		},
	})

	s, err := r.Snapshot(context.Background())
	if err != nil || s.Epoch != 1 {
		t.Fatalf("first snapshot: %v %+v", err, s)
	}
	advance(30 * time.Second)
	if s2, _ := r.Snapshot(context.Background()); s2 != s {
		t.Fatal("snapshot replaced before TTL")
	}
	advance(31 * time.Second)
	if r.ReuseEpoch() != 2 {
		t.Fatalf("expired ReuseEpoch = %d, want 2", r.ReuseEpoch())
	}
	s3, err := r.Snapshot(context.Background())
	if err != nil || s3.Epoch != 2 || fetches.Load() != 2 {
		t.Fatalf("expiry refetch: %v epoch=%d fetches=%d", err, s3.Epoch, fetches.Load())
	}
}

func TestRegistryFetchErrorKeepsOldSnapshot(t *testing.T) {
	fail := atomic.Bool{}
	sentinel := errors.New("fleet down")
	r := newTestRegistry(t, Config{Fetch: func(ctx context.Context) ([]cluster.NodeSummary, error) {
		if fail.Load() {
			return nil, sentinel
		}
		return fleet(1, 0), nil
	}})
	s, err := r.Snapshot(context.Background())
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	fail.Store(true)
	r.Invalidate()
	if _, err := r.Snapshot(context.Background()); !errors.Is(err, sentinel) {
		t.Fatalf("expected fetch error, got %v", err)
	}
	// The old snapshot is still readable (Current) even though stale.
	if cur, ok := r.Current(); !ok || cur != s {
		t.Fatal("Current lost the last good snapshot after a failed refresh")
	}
	// Recovery: fetch works again, epoch bumps.
	fail.Store(false)
	s2, err := r.Snapshot(context.Background())
	if err != nil || s2.Epoch != 2 {
		t.Fatalf("recovery snapshot: %v %+v", err, s2)
	}
}

func TestRegistrySignalNodeEpoch(t *testing.T) {
	r := newTestRegistry(t, Config{Fetch: func(ctx context.Context) ([]cluster.NodeSummary, error) {
		return fleet(2, 5), nil
	}})
	if r.SignalNodeEpoch("node-0", 9) {
		t.Fatal("drift detected before any snapshot")
	}
	if _, err := r.Snapshot(context.Background()); err != nil {
		t.Fatal(err)
	}
	if r.SignalNodeEpoch("node-0", 0) {
		t.Fatal("epoch 0 must never signal drift")
	}
	if r.SignalNodeEpoch("node-0", 5) {
		t.Fatal("equal epoch is not drift")
	}
	if r.SignalNodeEpoch("unknown", 9) {
		t.Fatal("unknown node is not drift")
	}
	if !r.SignalNodeEpoch("node-0", 6) {
		t.Fatal("newer node epoch must signal drift")
	}
	if got := r.Stats(); !got.Stale || got.Invalidations != 1 {
		t.Fatalf("drift did not invalidate: %+v", got)
	}
}

func TestRegistryValidation(t *testing.T) {
	cases := []struct {
		name      string
		summaries []cluster.NodeSummary
	}{
		{"empty", nil},
		{"duplicate", append(fleet(1, 0), fleet(1, 0)...)},
		{"invalid", []cluster.NodeSummary{{NodeID: "x"}}},
		{"dims", []cluster.NodeSummary{
			fleet(1, 0)[0],
			{
				NodeID: "odd",
				Clusters: []cluster.Summary{{
					Bounds: geometry.MustRect([]float64{0}, []float64{1}),
					Size:   1,
				}},
				TotalSamples: 1,
			},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := newTestRegistry(t, Config{Fetch: func(ctx context.Context) ([]cluster.NodeSummary, error) {
				return tc.summaries, nil
			}})
			if _, err := r.Snapshot(context.Background()); err == nil {
				t.Fatal("expected validation error")
			}
			if r.Epoch() != 0 {
				t.Fatal("epoch advanced on failed publish")
			}
		})
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("nil fetch accepted")
	}
	if _, err := New(Config{Fetch: func(context.Context) ([]cluster.NodeSummary, error) { return nil, nil }, TTL: -time.Second}); err == nil {
		t.Fatal("negative TTL accepted")
	}
}

// TestRegistryConcurrency races parallel readers (Snapshot/Current/
// ReuseEpoch) against invalidations, drift signals and an aggressive
// background refresher. Run under -race; the invariants checked are
// epoch monotonicity per goroutine and snapshot immutability.
func TestRegistryConcurrency(t *testing.T) {
	var fetchEpoch atomic.Uint64
	r := newTestRegistry(t, Config{Fetch: func(ctx context.Context) ([]cluster.NodeSummary, error) {
		return fleet(4, fetchEpoch.Add(1)), nil
	}})
	r.StartRefresh(100 * time.Microsecond)
	defer r.Stop()

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Readers: plan-like loop over snapshots.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lastEpoch uint64
			for {
				select {
				case <-stop:
					return
				default:
				}
				s, err := r.Snapshot(context.Background())
				if err != nil {
					t.Errorf("Snapshot: %v", err)
					return
				}
				if s.Epoch < lastEpoch {
					t.Errorf("epoch went backwards: %d -> %d", lastEpoch, s.Epoch)
					return
				}
				lastEpoch = s.Epoch
				// Touch the geometry like the planner does.
				for _, n := range s.Nodes {
					if len(n.Mins) != len(n.Maxs) || len(n.Mins) != s.Dims*len(n.Sizes) {
						t.Errorf("corrupt snapshot geometry for %s", n.NodeID)
						return
					}
				}
				_ = r.ReuseEpoch()
				if cur, ok := r.Current(); ok && cur.Epoch < s.Epoch {
					// Current may trail our refreshed snapshot only if
					// another publisher won; it must never be behind
					// what was already published when we loaded it.
					_ = cur
				}
			}
		}()
	}
	// Invalidators and drift signalers.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			i := uint64(seed)
			for {
				select {
				case <-stop:
					return
				default:
				}
				if i%2 == 0 {
					r.Invalidate()
				} else {
					r.SignalNodeEpoch("node-1", i)
				}
				i++
			}
		}(g)
	}

	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
	if r.Epoch() == 0 {
		t.Fatal("no refresh ever published")
	}
}

func TestStartRefreshRestartAndStop(t *testing.T) {
	r := newTestRegistry(t, Config{Fetch: func(ctx context.Context) ([]cluster.NodeSummary, error) {
		return fleet(1, 0), nil
	}})
	r.StartRefresh(time.Millisecond)
	r.StartRefresh(time.Millisecond) // restart must not leak or deadlock
	time.Sleep(5 * time.Millisecond)
	r.Stop()
	r.Stop() // idempotent
	if r.Epoch() == 0 {
		t.Fatal("background refresher never published")
	}
}
