package registry

import (
	"fmt"
	"time"

	"qens/internal/cluster"
)

// ApplyPush ingests one node-pushed advertisement: the node detected
// material drift (or re-quantized) and sent its fresh summary instead
// of waiting to be pulled. The summary goes through the same
// validation and R-tree patch machinery as a delta refresh. Freshness
// is tracked per node: a successful apply renews only the pushing
// node's entry, and the snapshot's TTL clock (FetchedAt) is the
// roster-wide minimum — so one frequently-pushing node can never
// starve the anti-entropy pull that covers non-push members, and the
// TTL demotes to pure fallback only when every roster node pushes.
//
// Epoch fencing makes the path safe against reordering and replay: a
// push whose node epoch is not strictly newer than what the current
// snapshot records for that node is dropped (idempotent — a duplicate
// or out-of-order push cannot regress the registry), and pushes
// serialize with refreshes on the same mutex, so a push landing during
// an in-flight TTL refresh waits and is then fenced against the
// refreshed snapshot. Unknown nodes are dropped too: roster changes go
// through the pull path, which sees the whole fleet.
//
// The returned bool reports whether the push was applied (false =
// fenced off or unknown node, with the reason counted in Stats); an
// error means the summary failed validation.
func (r *Registry) ApplyPush(sum cluster.NodeSummary) (bool, error) {
	if sum.Epoch == 0 {
		// An un-versioned advertisement cannot be fenced; the pull
		// path (which trusts roster order, not epochs) must carry it.
		r.pushDroppedStale.Add(1)
		return false, nil
	}
	epoch, applied, err := r.applyPush(sum)
	if applied {
		r.notifyPublish(epoch)
	}
	return applied, err
}

// applyPush is ApplyPush's body under the refresh lock.
func (r *Registry) applyPush(sum cluster.NodeSummary) (uint64, bool, error) {
	r.refreshMu.Lock()
	defer r.refreshMu.Unlock()

	prev := r.cur.Load()
	if prev == nil {
		// No snapshot to patch yet — the first pull establishes the
		// roster; pushing ahead of it would invent a one-node fleet.
		r.pushDroppedUnknown.Add(1)
		return 0, false, nil
	}
	idx := -1
	for i := range prev.Nodes {
		if prev.Nodes[i].NodeID == sum.NodeID {
			idx = i
			break
		}
	}
	if idx == -1 {
		r.pushDroppedUnknown.Add(1)
		return 0, false, nil
	}
	if sum.Epoch <= prev.epochByNode[sum.NodeID] {
		r.pushDroppedStale.Add(1)
		return 0, false, nil
	}

	summaries := append([]cluster.NodeSummary(nil), prev.Summaries...)
	summaries[idx] = sum
	var (
		snap *Snapshot
		err  error
	)
	if prev.Index != nil {
		snap, err = buildSnapshotPatched(prev, summaries, []int{idx})
		if err == nil {
			r.indexPatches.Add(1)
		}
	} else {
		snap, err = buildSnapshot(summaries)
		if err == nil {
			r.indexRebuilds.Add(1)
		}
	}
	if err != nil {
		return 0, false, fmt.Errorf("registry: push from %s: %w", sum.NodeID, err)
	}
	// Per-node freshness: only the pushing node's clock renews; every
	// other member keeps its last verified time (prev.FetchedAt when a
	// pre-freshness snapshot has no entry). FetchedAt becomes the
	// roster minimum, so the TTL pull still fires for the stalest
	// non-push member. The stale flag is deliberately left alone: an
	// Invalidate pending when the push lands still forces the full
	// re-fetch it asked for.
	now := r.now()
	fresh := make(map[string]time.Time, len(snap.Nodes))
	oldest := now
	for i := range snap.Nodes {
		id := snap.Nodes[i].NodeID
		ft, ok := prev.freshByNode[id]
		if !ok {
			ft = prev.FetchedAt
		}
		if id == sum.NodeID {
			ft = now
		}
		fresh[id] = ft
		if ft.Before(oldest) {
			oldest = ft
		}
	}
	snap.freshByNode = fresh
	snap.FetchedAt = oldest
	snap.Epoch = r.epoch.Add(1)
	r.cur.Store(snap)
	r.pushApplied.Add(1)
	r.pushBytes.Add(summaryWireBytes(&sum))
	return snap.Epoch, true, nil
}
