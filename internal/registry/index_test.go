package registry

import (
	"context"
	"testing"

	"qens/internal/cluster"
	"qens/internal/geometry"
)

// collectIndex probes the snapshot index and returns the matched roster
// indices.
func collectIndex(t *testing.T, s *Snapshot, probe geometry.Rect) map[int]bool {
	t.Helper()
	got := map[int]bool{}
	err := s.Index.Search(probe, func(e geometry.Entry) bool {
		got[e.ID] = true
		return true
	})
	if err != nil {
		t.Fatalf("Index.Search: %v", err)
	}
	return got
}

func TestSnapshotIndex(t *testing.T) {
	r := newTestRegistry(t, Config{Fetch: func(ctx context.Context) ([]cluster.NodeSummary, error) {
		return fleet(8, 1), nil
	}})
	s, err := r.Snapshot(context.Background())
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	if s.Index == nil {
		t.Fatal("snapshot has no node index")
	}
	if got := s.Index.Len(); got != 8 {
		t.Fatalf("Index.Len = %d, want 8", got)
	}
	if got := s.Index.Dims(); got != 2 {
		t.Fatalf("Index.Dims = %d, want 2", got)
	}
	if len(s.NodeBounds) != len(s.Nodes) {
		t.Fatalf("NodeBounds has %d rects for %d nodes", len(s.NodeBounds), len(s.Nodes))
	}

	// The fleet helper places node i's single cluster at [i, i+1]^2, so
	// a probe over [2.5, 4.5]^2 must match exactly nodes 2, 3 and 4.
	got := collectIndex(t, s, geometry.MustRect([]float64{2.5, 2.5}, []float64{4.5, 4.5}))
	want := map[int]bool{2: true, 3: true, 4: true}
	if len(got) != len(want) {
		t.Fatalf("probe matched %v, want %v", got, want)
	}
	for id := range want {
		if !got[id] {
			t.Fatalf("probe missed roster index %d (got %v)", id, got)
		}
	}

	// A disjoint probe matches nothing.
	if got := collectIndex(t, s, geometry.MustRect([]float64{100, 100}, []float64{101, 101})); len(got) != 0 {
		t.Fatalf("disjoint probe matched %v", got)
	}
}

// TestSnapshotIndexCoversAllClusters checks the indexed rectangle is the
// union of a node's cluster bounds, not just its first cluster.
func TestSnapshotIndexCoversAllClusters(t *testing.T) {
	summary := cluster.NodeSummary{
		NodeID: "node-0",
		Clusters: []cluster.Summary{
			{Bounds: geometry.MustRect([]float64{0, 0}, []float64{1, 1}), Centroid: []float64{0.5, 0.5}, Size: 5},
			{Bounds: geometry.MustRect([]float64{9, 9}, []float64{10, 10}), Centroid: []float64{9.5, 9.5}, Size: 5},
		},
		TotalSamples: 10,
	}
	r := newTestRegistry(t, Config{Fetch: func(ctx context.Context) ([]cluster.NodeSummary, error) {
		return []cluster.NodeSummary{summary}, nil
	}})
	s, err := r.Snapshot(context.Background())
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	// The second cluster sits at [9,10]^2; a probe there must match the
	// node through its covering rect.
	if got := collectIndex(t, s, geometry.MustRect([]float64{9.2, 9.2}, []float64{9.8, 9.8})); !got[0] {
		t.Fatalf("probe over second cluster missed the node: %v", got)
	}
	want := geometry.MustRect([]float64{0, 0}, []float64{10, 10})
	if !s.NodeBounds[0].ContainsRect(want) || !want.ContainsRect(s.NodeBounds[0]) {
		t.Fatalf("NodeBounds[0] = %v, want %v", s.NodeBounds[0], want)
	}
}

// TestSnapshotIndexRebuildOnEpoch checks a refresh publishes a freshly
// built index reflecting the new advertisements.
func TestSnapshotIndexRebuildOnEpoch(t *testing.T) {
	shift := 0.0
	r := newTestRegistry(t, Config{Fetch: func(ctx context.Context) ([]cluster.NodeSummary, error) {
		out := fleet(3, 1)
		for i := range out {
			b := &out[i].Clusters[0].Bounds
			for d := range b.Min {
				b.Min[d] += shift
				b.Max[d] += shift
			}
		}
		return out, nil
	}})
	s1, err := r.Snapshot(context.Background())
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	probe := geometry.MustRect([]float64{0.1, 0.1}, []float64{0.9, 0.9})
	if got := collectIndex(t, s1, probe); !got[0] {
		t.Fatalf("epoch-1 index missed node 0: %v", got)
	}

	// Move the whole fleet far away and invalidate: the next snapshot
	// must carry a new index over the shifted geometry.
	shift = 50
	r.Invalidate()
	s2, err := r.Snapshot(context.Background())
	if err != nil {
		t.Fatalf("Snapshot after invalidate: %v", err)
	}
	if s2.Epoch <= s1.Epoch {
		t.Fatalf("epoch did not advance: %d -> %d", s1.Epoch, s2.Epoch)
	}
	if s2.Index == s1.Index {
		t.Fatal("refresh reused the previous snapshot's index")
	}
	if got := collectIndex(t, s2, probe); len(got) != 0 {
		t.Fatalf("epoch-%d index still matches the old geometry: %v", s2.Epoch, got)
	}
	if got := collectIndex(t, s2, geometry.MustRect([]float64{50.1, 50.1}, []float64{50.9, 50.9})); !got[0] {
		t.Fatalf("epoch-%d index missed the shifted node 0: %v", s2.Epoch, got)
	}
}
