// Package geometry implements d-dimensional hyper-rectangles and the
// paper's five-case per-dimension query/cluster overlap rate (§III-C,
// Fig. 3 and Fig. 4, Eq. 2). Both analytics queries and cluster
// boundaries are represented as Rect values; the selection mechanism
// is built entirely on the OverlapRate defined here.
package geometry

import (
	"errors"
	"fmt"
	"math"
)

// Rect is an axis-aligned hyper-rectangle: Min[i] <= Max[i] per
// dimension i. The paper writes it as the vector
// [x1min, x1max, ..., xdmin, xdmax].
type Rect struct {
	Min []float64 `json:"min"`
	Max []float64 `json:"max"`
}

// ErrInvalidRect reports a malformed rectangle.
var ErrInvalidRect = errors.New("geometry: invalid rectangle")

// NewRect builds a rectangle from min/max corner vectors, copying both.
func NewRect(min, max []float64) (Rect, error) {
	if len(min) != len(max) {
		return Rect{}, fmt.Errorf("%w: min has %d dims, max has %d", ErrInvalidRect, len(min), len(max))
	}
	for i := range min {
		if math.IsNaN(min[i]) || math.IsNaN(max[i]) {
			return Rect{}, fmt.Errorf("%w: NaN bound in dimension %d", ErrInvalidRect, i)
		}
		if min[i] > max[i] {
			return Rect{}, fmt.Errorf("%w: min %g > max %g in dimension %d", ErrInvalidRect, min[i], max[i], i)
		}
	}
	r := Rect{Min: make([]float64, len(min)), Max: make([]float64, len(max))}
	copy(r.Min, min)
	copy(r.Max, max)
	return r, nil
}

// MustRect is NewRect that panics on error; for literals in tests and
// examples.
func MustRect(min, max []float64) Rect {
	r, err := NewRect(min, max)
	if err != nil {
		panic(err)
	}
	return r
}

// Dims returns the dimensionality of the rectangle.
func (r Rect) Dims() int { return len(r.Min) }

// Validate checks the rectangle invariants.
func (r Rect) Validate() error {
	_, err := NewRect(r.Min, r.Max)
	return err
}

// Clone returns a deep copy of r.
func (r Rect) Clone() Rect {
	return Rect{Min: append([]float64(nil), r.Min...), Max: append([]float64(nil), r.Max...)}
}

// Width returns the extent of dimension d.
func (r Rect) Width(d int) float64 { return r.Max[d] - r.Min[d] }

// Volume returns the product of all widths. Degenerate dimensions
// contribute zero, so the volume of a point is zero.
func (r Rect) Volume() float64 {
	v := 1.0
	for d := range r.Min {
		v *= r.Width(d)
	}
	return v
}

// Center returns the midpoint of the rectangle.
func (r Rect) Center() []float64 {
	c := make([]float64, r.Dims())
	for d := range c {
		c[d] = (r.Min[d] + r.Max[d]) / 2
	}
	return c
}

// Contains reports whether point p lies inside r (inclusive bounds).
func (r Rect) Contains(p []float64) bool {
	if len(p) != r.Dims() {
		return false
	}
	for d, x := range p {
		if x < r.Min[d] || x > r.Max[d] {
			return false
		}
	}
	return true
}

// ContainsRect reports whether other lies entirely inside r.
func (r Rect) ContainsRect(other Rect) bool {
	if other.Dims() != r.Dims() {
		return false
	}
	for d := range r.Min {
		if other.Min[d] < r.Min[d] || other.Max[d] > r.Max[d] {
			return false
		}
	}
	return true
}

// Intersects reports whether r and other share any point.
func (r Rect) Intersects(other Rect) bool {
	if other.Dims() != r.Dims() {
		return false
	}
	for d := range r.Min {
		if other.Max[d] < r.Min[d] || other.Min[d] > r.Max[d] {
			return false
		}
	}
	return true
}

// Intersection returns the overlapping region of r and other and
// whether it is non-empty.
func (r Rect) Intersection(other Rect) (Rect, bool) {
	if !r.Intersects(other) {
		return Rect{}, false
	}
	out := Rect{Min: make([]float64, r.Dims()), Max: make([]float64, r.Dims())}
	for d := range r.Min {
		out.Min[d] = math.Max(r.Min[d], other.Min[d])
		out.Max[d] = math.Min(r.Max[d], other.Max[d])
	}
	return out, true
}

// Union returns the smallest rectangle covering both r and other.
func (r Rect) Union(other Rect) Rect {
	if other.Dims() != r.Dims() {
		panic(ErrInvalidRect)
	}
	out := Rect{Min: make([]float64, r.Dims()), Max: make([]float64, r.Dims())}
	for d := range r.Min {
		out.Min[d] = math.Min(r.Min[d], other.Min[d])
		out.Max[d] = math.Max(r.Max[d], other.Max[d])
	}
	return out
}

// ExpandToInclude grows r in place so that it contains point p.
func (r *Rect) ExpandToInclude(p []float64) {
	if len(p) != r.Dims() {
		panic(ErrInvalidRect)
	}
	for d, x := range p {
		if x < r.Min[d] {
			r.Min[d] = x
		}
		if x > r.Max[d] {
			r.Max[d] = x
		}
	}
}

// BoundingRect returns the tight bounding box of the given points.
// ok is false when points is empty.
func BoundingRect(points [][]float64) (r Rect, ok bool) {
	if len(points) == 0 {
		return Rect{}, false
	}
	r = Rect{
		Min: append([]float64(nil), points[0]...),
		Max: append([]float64(nil), points[0]...),
	}
	for _, p := range points[1:] {
		r.ExpandToInclude(p)
	}
	return r, true
}

// String renders the rectangle as [min,max] pairs per dimension.
func (r Rect) String() string {
	s := "Rect{"
	for d := range r.Min {
		if d > 0 {
			s += ", "
		}
		s += fmt.Sprintf("[%.4g,%.4g]", r.Min[d], r.Max[d])
	}
	return s + "}"
}
