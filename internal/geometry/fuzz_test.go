package geometry

import (
	"math"
	"testing"
)

// Fuzz targets complement the property tests: Go's mutation engine
// explores the numeric edge cases (denormals, signed zeros, huge
// magnitudes) that quick.Check's generator rarely emits. Seeds run as
// part of the normal test suite.

func FuzzIntervalOverlap(f *testing.F) {
	f.Add(0.0, 10.0, 2.0, 4.0)
	f.Add(5.0, 15.0, 0.0, 10.0)
	f.Add(-5.0, 5.0, 0.0, 10.0)
	f.Add(11.0, 20.0, 0.0, 10.0)
	f.Add(0.0, 0.0, 0.0, 0.0)
	f.Add(math.SmallestNonzeroFloat64, 1.0, 0.0, math.MaxFloat64/4)
	f.Fuzz(func(t *testing.T, a, b, c, d float64) {
		for _, v := range []float64{a, b, c, d} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Skip()
			}
		}
		qmin, qmax := math.Min(a, b), math.Max(a, b)
		kmin, kmax := math.Min(c, d), math.Max(c, d)
		h, oc := IntervalOverlap(qmin, qmax, kmin, kmax)
		if h < 0 || h > 1 || math.IsNaN(h) {
			t.Fatalf("overlap %v outside [0,1] for q=[%v,%v] k=[%v,%v]", h, qmin, qmax, kmin, kmax)
		}
		// Zero cases must coincide with disjointness.
		disjoint := qmin > kmax || qmax < kmin
		if disjoint && h != 0 {
			t.Fatalf("disjoint intervals scored %v", h)
		}
		if (oc == CaseZeroLeft || oc == CaseZeroRight) != disjoint {
			t.Fatalf("case %v inconsistent with disjoint=%v", oc, disjoint)
		}
	})
}

func FuzzIoU(f *testing.F) {
	f.Add(0.0, 0.0, 10.0, 10.0, 5.0, 5.0, 15.0, 15.0)
	f.Add(0.0, 0.0, 1.0, 1.0, 2.0, 2.0, 3.0, 3.0)
	f.Fuzz(func(t *testing.T, ax, ay, bx, by, cx, cy, dx, dy float64) {
		for _, v := range []float64{ax, ay, bx, by, cx, cy, dx, dy} {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e150 {
				t.Skip()
			}
		}
		a := MustRect(
			[]float64{math.Min(ax, bx), math.Min(ay, by)},
			[]float64{math.Max(ax, bx), math.Max(ay, by)})
		b := MustRect(
			[]float64{math.Min(cx, dx), math.Min(cy, dy)},
			[]float64{math.Max(cx, dx), math.Max(cy, dy)})
		iou := IoU(a, b)
		if iou < 0 || iou > 1 || math.IsNaN(iou) {
			t.Fatalf("IoU %v outside [0,1]", iou)
		}
		// Symmetry.
		if rev := IoU(b, a); math.Abs(rev-iou) > 1e-12 {
			t.Fatalf("IoU asymmetric: %v vs %v", iou, rev)
		}
		if !a.Intersects(b) && iou != 0 {
			t.Fatalf("disjoint rects IoU %v", iou)
		}
	})
}
