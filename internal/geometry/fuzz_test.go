package geometry

import (
	"math"
	"testing"
)

// Fuzz targets complement the property tests: Go's mutation engine
// explores the numeric edge cases (denormals, signed zeros, huge
// magnitudes) that quick.Check's generator rarely emits. Seeds run as
// part of the normal test suite.

func FuzzIntervalOverlap(f *testing.F) {
	f.Add(0.0, 10.0, 2.0, 4.0)
	f.Add(5.0, 15.0, 0.0, 10.0)
	f.Add(-5.0, 5.0, 0.0, 10.0)
	f.Add(11.0, 20.0, 0.0, 10.0)
	f.Add(0.0, 0.0, 0.0, 0.0)
	f.Add(math.SmallestNonzeroFloat64, 1.0, 0.0, math.MaxFloat64/4)
	f.Fuzz(func(t *testing.T, a, b, c, d float64) {
		for _, v := range []float64{a, b, c, d} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Skip()
			}
		}
		qmin, qmax := math.Min(a, b), math.Max(a, b)
		kmin, kmax := math.Min(c, d), math.Max(c, d)
		h, oc := IntervalOverlap(qmin, qmax, kmin, kmax)
		if h < 0 || h > 1 || math.IsNaN(h) {
			t.Fatalf("overlap %v outside [0,1] for q=[%v,%v] k=[%v,%v]", h, qmin, qmax, kmin, kmax)
		}
		// Zero cases must coincide with disjointness.
		disjoint := qmin > kmax || qmax < kmin
		if disjoint && h != 0 {
			t.Fatalf("disjoint intervals scored %v", h)
		}
		if (oc == CaseZeroLeft || oc == CaseZeroRight) != disjoint {
			t.Fatalf("case %v inconsistent with disjoint=%v", oc, disjoint)
		}
	})
}

// FuzzRTreePrune drives random fleets and probes through the pruned
// candidate walk and checks the planner's soundness contract: the
// candidate set is exactly the brute-force predicate set, and in
// particular a superset of every entry whose Eq. 2 mean-overlap rate
// clears ε — so pruning can never change a query-driven ranking.
func FuzzRTreePrune(f *testing.F) {
	f.Add(uint64(1), 2, 50, 10.0, 20.0, 0.5)
	f.Add(uint64(7), 4, 200, -5.0, 3.0, 0.25)
	f.Add(uint64(42), 1, 10, 0.0, 0.1, 1.0)
	f.Fuzz(func(t *testing.T, seed uint64, dims, n int, origin, width, eps float64) {
		if dims < 1 || dims > 8 || n < 1 || n > 512 {
			t.Skip()
		}
		for _, v := range []float64{origin, width, eps} {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e9 {
				t.Skip()
			}
		}
		entries := randomEntries(n, dims, seed)
		tree, err := BuildRTree(entries, 0)
		if err != nil {
			t.Fatal(err)
		}
		min := make([]float64, dims)
		max := make([]float64, dims)
		for d := 0; d < dims; d++ {
			min[d] = origin + float64(d)
			max[d] = min[d] + math.Abs(width)
		}
		probe := MustRect(min, max)

		got, err := tree.AppendOverlapCandidates(probe, eps, nil)
		if err != nil {
			t.Fatal(err)
		}
		in := make(map[int]bool, len(got))
		for _, id := range got {
			if in[id] {
				t.Fatalf("candidate %d emitted twice", id)
			}
			in[id] = true
		}
		want := brutePruneCandidates(entries, probe, eps)
		if len(want) != len(got) {
			t.Fatalf("%d candidates vs %d brute", len(got), len(want))
		}
		for _, id := range want {
			if !in[id] {
				t.Fatalf("brute candidate %d missing from tree walk", id)
			}
		}
		for _, e := range entries {
			if rate := OverlapRate(probe, e.Rect); rate >= eps && !in[e.ID] {
				t.Fatalf("entry %d scores %v >= eps %v but was pruned", e.ID, rate, eps)
			}
		}
	})
}

func FuzzIoU(f *testing.F) {
	f.Add(0.0, 0.0, 10.0, 10.0, 5.0, 5.0, 15.0, 15.0)
	f.Add(0.0, 0.0, 1.0, 1.0, 2.0, 2.0, 3.0, 3.0)
	f.Fuzz(func(t *testing.T, ax, ay, bx, by, cx, cy, dx, dy float64) {
		for _, v := range []float64{ax, ay, bx, by, cx, cy, dx, dy} {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e150 {
				t.Skip()
			}
		}
		a := MustRect(
			[]float64{math.Min(ax, bx), math.Min(ay, by)},
			[]float64{math.Max(ax, bx), math.Max(ay, by)})
		b := MustRect(
			[]float64{math.Min(cx, dx), math.Min(cy, dy)},
			[]float64{math.Max(cx, dx), math.Max(cy, dy)})
		iou := IoU(a, b)
		if iou < 0 || iou > 1 || math.IsNaN(iou) {
			t.Fatalf("IoU %v outside [0,1]", iou)
		}
		// Symmetry.
		if rev := IoU(b, a); math.Abs(rev-iou) > 1e-12 {
			t.Fatalf("IoU asymmetric: %v vs %v", iou, rev)
		}
		if !a.Intersects(b) && iou != 0 {
			t.Fatalf("disjoint rects IoU %v", iou)
		}
	})
}
