package geometry

import (
	"fmt"
	"math"
)

// OverlapCase identifies which of the paper's five per-dimension
// query/cluster configurations applies (§III-C, Figs. 3-4), plus the
// cluster-inside-query configuration the paper leaves implicit.
type OverlapCase int

const (
	// CaseQueryInside: both query bounds lie inside the cluster
	// bounds (Fig. 3a). h = (qmax-qmin)/(kmax-kmin).
	CaseQueryInside OverlapCase = iota
	// CaseMinInside: only the query minimum lies inside the cluster
	// (Fig. 3b). h = (kmax-qmin)/(qmax-kmin).
	CaseMinInside
	// CaseMaxInside: only the query maximum lies inside the cluster
	// (Fig. 3c). h = (qmax-kmin)/(kmax-qmin).
	CaseMaxInside
	// CaseZeroRight: the query lies entirely above the cluster
	// (Fig. 4a, qmin > kmax). h = 0.
	CaseZeroRight
	// CaseZeroLeft: the query lies entirely below the cluster
	// (Fig. 4b, qmax < kmin). h = 0.
	CaseZeroLeft
	// CaseClusterInside: the cluster lies entirely inside the query.
	// The paper's five cases do not name this configuration; every
	// cluster point is requested, so we take h = 1 (the whole
	// cluster supports the query). See DESIGN.md.
	CaseClusterInside
)

// String implements fmt.Stringer for diagnostics.
func (c OverlapCase) String() string {
	switch c {
	case CaseQueryInside:
		return "query-inside-cluster"
	case CaseMinInside:
		return "query-min-inside"
	case CaseMaxInside:
		return "query-max-inside"
	case CaseZeroRight:
		return "zero-overlap-right"
	case CaseZeroLeft:
		return "zero-overlap-left"
	case CaseClusterInside:
		return "cluster-inside-query"
	default:
		return fmt.Sprintf("OverlapCase(%d)", int(c))
	}
}

// IntervalOverlap classifies and scores the overlap between the query
// interval [qmin,qmax] and the cluster interval [kmin,kmax] along one
// dimension, following the paper exactly:
//
//	Fig. 3a  kmin < qmin && qmax < kmax   h = (qmax-qmin)/(kmax-kmin)
//	Fig. 3b  kmin <= qmin <= kmax <= qmax h = (kmax-qmin)/(qmax-kmin)
//	Fig. 3c  qmin <= kmin <= qmax <= kmax h = (qmax-kmin)/(kmax-qmin)
//	Fig. 4a  qmin > kmax                  h = 0
//	Fig. 4b  qmax < kmin                  h = 0
//
// plus the cluster-inside-query configuration scored h = 1. Degenerate
// intervals (zero width) are handled by treating a touching pair as
// fully overlapping (h = 1) and a disjoint pair as h = 0, and the
// result is always clamped to [0, 1] so that a ratio whose denominator
// is a wider span can never exceed full support.
func IntervalOverlap(qmin, qmax, kmin, kmax float64) (h float64, c OverlapCase) {
	switch {
	case qmin > kmax:
		return 0, CaseZeroRight
	case qmax < kmin:
		return 0, CaseZeroLeft
	case qmin >= kmin && qmax <= kmax:
		// Query inside cluster (Fig. 3a, with touching bounds folded in).
		h = safeRatio(qmax-qmin, kmax-kmin)
		return clamp01(h), CaseQueryInside
	case kmin >= qmin && kmax <= qmax:
		// Cluster inside query: every cluster point is requested.
		return 1, CaseClusterInside
	case qmin >= kmin: // then qmax > kmax: only the query min is inside.
		h = safeRatio(kmax-qmin, qmax-kmin)
		return clamp01(h), CaseMinInside
	default: // qmin < kmin && qmax <= kmax: only the query max is inside.
		h = safeRatio(qmax-kmin, kmax-qmin)
		return clamp01(h), CaseMaxInside
	}
}

// safeRatio returns num/den, treating a zero or negative denominator
// as full overlap of a degenerate interval.
func safeRatio(num, den float64) float64 {
	if den <= 0 {
		return 1
	}
	return num / den
}

func clamp01(x float64) float64 {
	if x < 0 || math.IsNaN(x) {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// OverlapRate computes the paper's Eq. 2: the mean of the
// per-dimension overlap rates between query rectangle q and cluster
// rectangle k. It panics if dimensionalities differ (a programming
// error: all nodes share the feature schema by assumption, §III-B).
func OverlapRate(q, k Rect) float64 {
	if q.Dims() != k.Dims() {
		panic(fmt.Sprintf("geometry: query has %d dims, cluster has %d", q.Dims(), k.Dims()))
	}
	if q.Dims() == 0 {
		return 0
	}
	sum := 0.0
	for d := range q.Min {
		h, _ := IntervalOverlap(q.Min[d], q.Max[d], k.Min[d], k.Max[d])
		sum += h
	}
	return sum / float64(q.Dims())
}

// OverlapProfile returns the per-dimension overlap rates and cases, for
// diagnostics and the Fig. 6 visualization.
func OverlapProfile(q, k Rect) (rates []float64, cases []OverlapCase) {
	if q.Dims() != k.Dims() {
		panic("geometry: dimension mismatch")
	}
	rates = make([]float64, q.Dims())
	cases = make([]OverlapCase, q.Dims())
	for d := range q.Min {
		rates[d], cases[d] = IntervalOverlap(q.Min[d], q.Max[d], k.Min[d], k.Max[d])
	}
	return rates, cases
}

// IoU returns the intersection-over-union of two rectangles by volume:
// 1 for identical rectangles, 0 for disjoint ones. Degenerate
// rectangles (zero volume) score 1 against themselves-by-containment
// and 0 otherwise. Used by the query-reuse cache to judge whether a
// cached model answers a new query.
func IoU(a, b Rect) float64 {
	inter, ok := a.Intersection(b)
	if !ok {
		return 0
	}
	iv := inter.Volume()
	union := a.Volume() + b.Volume() - iv
	if union <= 0 {
		// Both degenerate: equal iff they intersect at all.
		return 1
	}
	return clamp01(iv / union)
}

// CoveredFraction returns |q ∩ k| / |k| by volume: the fraction of the
// cluster's region the query requests. It is used by the data
// selectivity accounting (Fig. 9) and differs from OverlapRate, which
// is the paper's per-dimension average ratio.
func CoveredFraction(q, k Rect) float64 {
	inter, ok := q.Intersection(k)
	if !ok {
		return 0
	}
	kv := k.Volume()
	if kv <= 0 {
		// Degenerate cluster rectangle: it is covered iff it
		// intersects the query at all.
		return 1
	}
	return clamp01(inter.Volume() / kv)
}
