package geometry

import (
	"math"
	"testing"
	"testing/quick"
)

func TestIntervalOverlapQueryInside(t *testing.T) {
	// Fig. 3a: query [2,4] inside cluster [0,10] -> 2/10.
	h, c := IntervalOverlap(2, 4, 0, 10)
	if c != CaseQueryInside {
		t.Fatalf("case = %v", c)
	}
	if math.Abs(h-0.2) > 1e-12 {
		t.Fatalf("h = %v, want 0.2", h)
	}
}

func TestIntervalOverlapMinInside(t *testing.T) {
	// Fig. 3b: query [5,15], cluster [0,10]: only qmin inside.
	// h = (kmax-qmin)/(qmax-kmin) = (10-5)/(15-0) = 1/3.
	h, c := IntervalOverlap(5, 15, 0, 10)
	if c != CaseMinInside {
		t.Fatalf("case = %v", c)
	}
	if math.Abs(h-1.0/3.0) > 1e-12 {
		t.Fatalf("h = %v, want 1/3", h)
	}
}

func TestIntervalOverlapMaxInside(t *testing.T) {
	// Fig. 3c: query [-5,5], cluster [0,10]: only qmax inside.
	// h = (qmax-kmin)/(kmax-qmin) = (5-0)/(10-(-5)) = 1/3.
	h, c := IntervalOverlap(-5, 5, 0, 10)
	if c != CaseMaxInside {
		t.Fatalf("case = %v", c)
	}
	if math.Abs(h-1.0/3.0) > 1e-12 {
		t.Fatalf("h = %v, want 1/3", h)
	}
}

func TestIntervalOverlapZeroCases(t *testing.T) {
	// Fig. 4a: query entirely above cluster.
	if h, c := IntervalOverlap(11, 20, 0, 10); h != 0 || c != CaseZeroRight {
		t.Fatalf("above: h=%v case=%v", h, c)
	}
	// Fig. 4b: query entirely below cluster.
	if h, c := IntervalOverlap(-20, -11, 0, 10); h != 0 || c != CaseZeroLeft {
		t.Fatalf("below: h=%v case=%v", h, c)
	}
}

func TestIntervalOverlapClusterInside(t *testing.T) {
	h, c := IntervalOverlap(-10, 20, 0, 10)
	if c != CaseClusterInside {
		t.Fatalf("case = %v", c)
	}
	if h != 1 {
		t.Fatalf("h = %v, want 1", h)
	}
}

func TestIntervalOverlapIdentical(t *testing.T) {
	h, _ := IntervalOverlap(0, 10, 0, 10)
	if h != 1 {
		t.Fatalf("identical intervals h = %v, want 1", h)
	}
}

func TestIntervalOverlapTouching(t *testing.T) {
	// Query just touches the cluster's upper bound at a point.
	h, _ := IntervalOverlap(10, 20, 0, 10)
	if h < 0 || h > 1 {
		t.Fatalf("touching overlap out of range: %v", h)
	}
	// Disjoint by epsilon -> exactly zero.
	h2, _ := IntervalOverlap(10.0001, 20, 0, 10)
	if h2 != 0 {
		t.Fatalf("disjoint overlap = %v", h2)
	}
}

func TestIntervalOverlapDegenerateCluster(t *testing.T) {
	// Point cluster inside query: fully requested.
	h, c := IntervalOverlap(0, 10, 5, 5)
	if h != 1 || c != CaseClusterInside {
		t.Fatalf("point cluster: h=%v case=%v", h, c)
	}
	// Point cluster outside query.
	h, _ = IntervalOverlap(0, 10, 11, 11)
	if h != 0 {
		t.Fatalf("outside point cluster h = %v", h)
	}
}

func TestIntervalOverlapDegenerateQuery(t *testing.T) {
	// Point query inside cluster: ratio 0/10 = 0 area share, but it is
	// a legal query-inside case.
	h, c := IntervalOverlap(5, 5, 0, 10)
	if c != CaseQueryInside {
		t.Fatalf("case = %v", c)
	}
	if h != 0 {
		t.Fatalf("point query h = %v, want 0", h)
	}
	// Point query on point cluster: identical degenerate -> 1.
	h, _ = IntervalOverlap(5, 5, 5, 5)
	if h != 1 {
		t.Fatalf("point-on-point h = %v, want 1", h)
	}
}

// Property: overlap is always within [0, 1] regardless of interval
// configuration.
func TestIntervalOverlapBounded(t *testing.T) {
	f := func(a, b, c, d float64) bool {
		for _, x := range []float64{a, b, c, d} {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return true
			}
		}
		qmin, qmax := math.Min(a, b), math.Max(a, b)
		kmin, kmax := math.Min(c, d), math.Max(c, d)
		h, _ := IntervalOverlap(qmin, qmax, kmin, kmax)
		return h >= 0 && h <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: zero overlap iff the intervals are disjoint... one way:
// disjoint intervals always score zero.
func TestDisjointAlwaysZero(t *testing.T) {
	f := func(a, w1, gap, w2 float64) bool {
		a = math.Mod(math.Abs(a), 1000)
		w1 = math.Mod(math.Abs(w1), 100) + 0.001
		gap = math.Mod(math.Abs(gap), 100) + 0.001
		w2 = math.Mod(math.Abs(w2), 100) + 0.001
		kmin, kmax := a, a+w1
		qmin, qmax := kmax+gap, kmax+gap+w2
		h, _ := IntervalOverlap(qmin, qmax, kmin, kmax)
		h2, _ := IntervalOverlap(kmin-gap-w2, kmin-gap, kmin, kmax)
		return h == 0 && h2 == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestOverlapRateEquation2(t *testing.T) {
	// 2-D: dim 0 query-inside with h=0.5, dim 1 zero overlap.
	// Eq. 2: mean = 0.25.
	q := MustRect([]float64{0, 100}, []float64{5, 110})
	k := MustRect([]float64{0, 0}, []float64{10, 10})
	got := OverlapRate(q, k)
	if math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("OverlapRate = %v, want 0.25", got)
	}
}

func TestOverlapRateIdenticalRects(t *testing.T) {
	r := MustRect([]float64{1, 2, 3}, []float64{4, 5, 6})
	if got := OverlapRate(r, r); got != 1 {
		t.Fatalf("self overlap = %v", got)
	}
}

func TestOverlapRateDisjoint(t *testing.T) {
	q := MustRect([]float64{100, 100}, []float64{110, 110})
	k := MustRect([]float64{0, 0}, []float64{10, 10})
	if got := OverlapRate(q, k); got != 0 {
		t.Fatalf("disjoint overlap = %v", got)
	}
}

func TestOverlapRateDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	OverlapRate(MustRect([]float64{0}, []float64{1}), MustRect([]float64{0, 0}, []float64{1, 1}))
}

// Property: OverlapRate stays within [0, 1] for random rectangles.
func TestOverlapRateBounded(t *testing.T) {
	f := func(raw [8]float64) bool {
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return true
			}
		}
		q := MustRect(
			[]float64{math.Min(raw[0], raw[1]), math.Min(raw[2], raw[3])},
			[]float64{math.Max(raw[0], raw[1]), math.Max(raw[2], raw[3])},
		)
		k := MustRect(
			[]float64{math.Min(raw[4], raw[5]), math.Min(raw[6], raw[7])},
			[]float64{math.Max(raw[4], raw[5]), math.Max(raw[6], raw[7])},
		)
		h := OverlapRate(q, k)
		return h >= 0 && h <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestOverlapProfile(t *testing.T) {
	q := MustRect([]float64{2, 100}, []float64{4, 110})
	k := MustRect([]float64{0, 0}, []float64{10, 10})
	rates, cases := OverlapProfile(q, k)
	if len(rates) != 2 || len(cases) != 2 {
		t.Fatalf("profile lengths %d/%d", len(rates), len(cases))
	}
	if cases[0] != CaseQueryInside || cases[1] != CaseZeroRight {
		t.Fatalf("cases = %v", cases)
	}
	if math.Abs(rates[0]-0.2) > 1e-12 || rates[1] != 0 {
		t.Fatalf("rates = %v", rates)
	}
}

func TestCoveredFraction(t *testing.T) {
	k := MustRect([]float64{0, 0}, []float64{10, 10})
	// Query covering the left half of the cluster.
	q := MustRect([]float64{-5, 0}, []float64{5, 10})
	if got := CoveredFraction(q, k); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("CoveredFraction = %v, want 0.5", got)
	}
	// Disjoint.
	if got := CoveredFraction(MustRect([]float64{50, 50}, []float64{60, 60}), k); got != 0 {
		t.Fatalf("disjoint fraction = %v", got)
	}
	// Query containing the whole cluster.
	if got := CoveredFraction(MustRect([]float64{-1, -1}, []float64{11, 11}), k); got != 1 {
		t.Fatalf("containing fraction = %v", got)
	}
	// Degenerate cluster intersecting the query.
	point := MustRect([]float64{5, 5}, []float64{5, 5})
	if got := CoveredFraction(q, point); got != 1 {
		t.Fatalf("degenerate cluster fraction = %v", got)
	}
}

func TestOverlapCaseString(t *testing.T) {
	for c := CaseQueryInside; c <= CaseClusterInside; c++ {
		if c.String() == "" {
			t.Fatalf("empty string for case %d", int(c))
		}
	}
	if OverlapCase(99).String() != "OverlapCase(99)" {
		t.Fatal("unknown case formatting")
	}
}
