package geometry

import (
	"math"
	"testing"
)

func approxEq(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

func TestQueryCoverageFullCover(t *testing.T) {
	q := MustRect([]float64{0, 0}, []float64{10, 10})
	rects := []Rect{MustRect([]float64{-5, -5}, []float64{15, 15})}
	if got := QueryCoverage(q, rects); !approxEq(got, 1) {
		t.Fatalf("enclosing rect coverage = %v, want 1", got)
	}
}

func TestQueryCoverageDisjoint(t *testing.T) {
	q := MustRect([]float64{0, 0}, []float64{10, 10})
	rects := []Rect{MustRect([]float64{20, 20}, []float64{30, 30})}
	if got := QueryCoverage(q, rects); !approxEq(got, 0) {
		t.Fatalf("disjoint rect coverage = %v, want 0", got)
	}
}

func TestQueryCoveragePartial(t *testing.T) {
	// Covers [0,5] of [0,10] on x and all of y: mean(0.5, 1) = 0.75.
	q := MustRect([]float64{0, 0}, []float64{10, 10})
	rects := []Rect{MustRect([]float64{-1, -1}, []float64{5, 11})}
	if got := QueryCoverage(q, rects); !approxEq(got, 0.75) {
		t.Fatalf("partial coverage = %v, want 0.75", got)
	}
}

func TestQueryCoverageUnionNoDoubleCount(t *testing.T) {
	// Two overlapping rects covering [0,6] and [4,10] on x: union is
	// the full interval even though lengths sum to 1.2x.
	q := MustRect([]float64{0}, []float64{10})
	rects := []Rect{
		MustRect([]float64{0}, []float64{6}),
		MustRect([]float64{4}, []float64{10}),
	}
	if got := QueryCoverage(q, rects); !approxEq(got, 1) {
		t.Fatalf("overlapping union coverage = %v, want 1", got)
	}
	// Disjoint pieces [0,2] and [8,10]: 0.4 of the interval.
	rects = []Rect{
		MustRect([]float64{0}, []float64{2}),
		MustRect([]float64{8}, []float64{10}),
	}
	if got := QueryCoverage(q, rects); !approxEq(got, 0.4) {
		t.Fatalf("gapped union coverage = %v, want 0.4", got)
	}
}

func TestQueryCoverageUnsortedInput(t *testing.T) {
	// Spans arrive in arbitrary order; the merge must sort first.
	q := MustRect([]float64{0}, []float64{10})
	rects := []Rect{
		MustRect([]float64{7}, []float64{9}),
		MustRect([]float64{0}, []float64{3}),
		MustRect([]float64{2}, []float64{5}),
	}
	if got := QueryCoverage(q, rects); !approxEq(got, 0.7) {
		t.Fatalf("unsorted coverage = %v, want 0.7", got)
	}
}

func TestQueryCoverageDegenerateDim(t *testing.T) {
	// Zero-width query interval on x counts as covered when a rect
	// interval contains the point.
	q := MustRect([]float64{5, 0}, []float64{5, 10})
	hit := []Rect{MustRect([]float64{0, 0}, []float64{10, 10})}
	if got := QueryCoverage(q, hit); !approxEq(got, 1) {
		t.Fatalf("degenerate covered = %v, want 1", got)
	}
	miss := []Rect{MustRect([]float64{6, 0}, []float64{10, 10})}
	if got := QueryCoverage(q, miss); !approxEq(got, 0.5) {
		t.Fatalf("degenerate uncovered = %v, want 0.5", got)
	}
}

func TestQueryCoverageEmptyRects(t *testing.T) {
	q := MustRect([]float64{0}, []float64{1})
	if got := QueryCoverage(q, nil); got != 0 {
		t.Fatalf("no rects coverage = %v, want 0", got)
	}
}

func TestQueryCoverageFlatPanicsOnDimMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on ragged flat pack")
		}
	}()
	QueryCoverageFlat([]float64{0, 0}, []float64{1, 1}, []float64{0, 0, 0}, []float64{1, 1, 1})
}
