package geometry

import (
	"sort"
	"testing"
	"testing/quick"

	"qens/internal/rng"
)

// randomEntries generates n random rectangles in [0,100]^dims.
func randomEntries(n, dims int, seed uint64) []Entry {
	src := rng.New(seed)
	out := make([]Entry, n)
	for i := range out {
		min := make([]float64, dims)
		max := make([]float64, dims)
		for d := 0; d < dims; d++ {
			a := src.Uniform(0, 95)
			min[d] = a
			max[d] = a + src.Uniform(0.1, 10)
		}
		out[i] = Entry{Rect: MustRect(min, max), ID: i}
	}
	return out
}

// bruteIntersecting returns the IDs of entries intersecting the probe.
func bruteIntersecting(entries []Entry, probe Rect) []int {
	var ids []int
	for _, e := range entries {
		if e.Rect.Intersects(probe) {
			ids = append(ids, e.ID)
		}
	}
	sort.Ints(ids)
	return ids
}

func treeIntersecting(t *testing.T, tree *RTree, probe Rect) []int {
	t.Helper()
	var ids []int
	if err := tree.Search(probe, func(e Entry) bool {
		ids = append(ids, e.ID)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	sort.Ints(ids)
	return ids
}

func TestBuildRTreeValidation(t *testing.T) {
	if _, err := BuildRTree(nil, 0); err == nil {
		t.Fatal("accepted empty entries")
	}
	if _, err := BuildRTree(randomEntries(5, 2, 1), 1); err == nil {
		t.Fatal("accepted fill < 2")
	}
	mixed := []Entry{
		{Rect: MustRect([]float64{0}, []float64{1}), ID: 0},
		{Rect: MustRect([]float64{0, 0}, []float64{1, 1}), ID: 1},
	}
	if _, err := BuildRTree(mixed, 0); err == nil {
		t.Fatal("accepted mixed dimensionalities")
	}
	bad := []Entry{{Rect: Rect{Min: []float64{1}, Max: []float64{0}}, ID: 0}}
	if _, err := BuildRTree(bad, 0); err == nil {
		t.Fatal("accepted invalid rectangle")
	}
}

func TestRTreeMatchesBruteForce(t *testing.T) {
	entries := randomEntries(500, 2, 2)
	tree, err := BuildRTree(entries, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Len() != 500 || tree.Dims() != 2 {
		t.Fatalf("tree meta %d/%d", tree.Len(), tree.Dims())
	}
	src := rng.New(3)
	for trial := 0; trial < 50; trial++ {
		a, b := src.Uniform(0, 80), src.Uniform(0, 80)
		probe := MustRect([]float64{a, b}, []float64{a + src.Uniform(1, 30), b + src.Uniform(1, 30)})
		want := bruteIntersecting(entries, probe)
		got := treeIntersecting(t, tree, probe)
		if len(want) != len(got) {
			t.Fatalf("trial %d: %d vs %d results", trial, len(got), len(want))
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("trial %d: result mismatch", trial)
			}
		}
	}
}

func TestRTreeHighDimensional(t *testing.T) {
	entries := randomEntries(200, 5, 4)
	tree, err := BuildRTree(entries, 8)
	if err != nil {
		t.Fatal(err)
	}
	probe := MustRect(
		[]float64{10, 10, 10, 10, 10},
		[]float64{60, 60, 60, 60, 60},
	)
	want := bruteIntersecting(entries, probe)
	got := treeIntersecting(t, tree, probe)
	if len(want) != len(got) {
		t.Fatalf("%d vs %d results", len(got), len(want))
	}
}

func TestRTreeSingleEntry(t *testing.T) {
	entries := []Entry{{Rect: MustRect([]float64{0, 0}, []float64{1, 1}), ID: 7}}
	tree, err := BuildRTree(entries, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Depth() != 1 {
		t.Fatalf("depth %d", tree.Depth())
	}
	got := treeIntersecting(t, tree, MustRect([]float64{0.5, 0.5}, []float64{2, 2}))
	if len(got) != 1 || got[0] != 7 {
		t.Fatalf("got %v", got)
	}
	if got := treeIntersecting(t, tree, MustRect([]float64{5, 5}, []float64{6, 6})); len(got) != 0 {
		t.Fatalf("disjoint probe returned %v", got)
	}
}

func TestRTreeEarlyStop(t *testing.T) {
	entries := randomEntries(300, 2, 5)
	tree, _ := BuildRTree(entries, 0)
	visits := 0
	probe := MustRect([]float64{0, 0}, []float64{100, 100}) // hits everything
	if err := tree.Search(probe, func(Entry) bool {
		visits++
		return visits < 10
	}); err != nil {
		t.Fatal(err)
	}
	if visits != 10 {
		t.Fatalf("early stop visited %d", visits)
	}
}

func TestRTreeDimMismatch(t *testing.T) {
	tree, _ := BuildRTree(randomEntries(10, 2, 6), 0)
	if err := tree.Search(MustRect([]float64{0}, []float64{1}), func(Entry) bool { return true }); err == nil {
		t.Fatal("accepted probe with wrong dims")
	}
}

func TestRTreeDepthGrows(t *testing.T) {
	small, _ := BuildRTree(randomEntries(10, 2, 7), 4)
	big, _ := BuildRTree(randomEntries(2000, 2, 8), 4)
	if big.Depth() <= small.Depth() {
		t.Fatalf("depths %d vs %d", small.Depth(), big.Depth())
	}
}

// Property: the tree search result always equals brute force, across
// random entry sets and probes.
func TestRTreeEquivalenceProperty(t *testing.T) {
	f := func(seed uint64) bool {
		entries := randomEntries(int(seed%150)+20, 2, seed)
		tree, err := BuildRTree(entries, int(seed%13)+3)
		if err != nil {
			return false
		}
		src := rng.New(seed + 1)
		a, b := src.Uniform(0, 90), src.Uniform(0, 90)
		probe := MustRect([]float64{a, b}, []float64{a + 15, b + 15})
		want := bruteIntersecting(entries, probe)
		var got []int
		if err := tree.Search(probe, func(e Entry) bool {
			got = append(got, e.ID)
			return true
		}); err != nil {
			return false
		}
		sort.Ints(got)
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
