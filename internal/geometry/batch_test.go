package geometry

import (
	"math/rand"
	"testing"
)

// randomRect draws a rectangle with occasional degenerate dimensions
// so the kernel is exercised across every IntervalOverlap case.
func randomRect(r *rand.Rand, dims int) Rect {
	min := make([]float64, dims)
	max := make([]float64, dims)
	for d := 0; d < dims; d++ {
		a := r.Float64()*20 - 10
		b := r.Float64()*20 - 10
		if r.Intn(10) == 0 {
			b = a // degenerate interval
		}
		if a > b {
			a, b = b, a
		}
		min[d], max[d] = a, b
	}
	return MustRect(min, max)
}

// TestOverlapRatesFlatMatchesOverlapRate is the kernel's equivalence
// contract: the flat-slice batch path must produce bit-identical
// values to the per-Rect OverlapRate for arbitrary geometry.
func TestOverlapRatesFlatMatchesOverlapRate(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for _, dims := range []int{1, 2, 4, 16} {
		q := randomRect(r, dims)
		rects := make([]Rect, 64)
		want := make([]float64, len(rects))
		for i := range rects {
			rects[i] = randomRect(r, dims)
			want[i] = OverlapRate(q, rects[i])
		}
		mins, maxs := FlattenRects(nil, nil, rects)
		if len(mins) != len(rects)*dims || len(maxs) != len(rects)*dims {
			t.Fatalf("dims=%d: flatten produced %d/%d values, want %d", dims, len(mins), len(maxs), len(rects)*dims)
		}
		got := OverlapRatesFlat(nil, q.Min, q.Max, mins, maxs)
		if len(got) != len(want) {
			t.Fatalf("dims=%d: got %d rates, want %d", dims, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("dims=%d rect=%d: flat rate %v != OverlapRate %v", dims, i, got[i], want[i])
			}
		}
	}
}

func TestOverlapRatesFlatAppends(t *testing.T) {
	q := MustRect([]float64{0, 0}, []float64{1, 1})
	k := MustRect([]float64{0, 0}, []float64{1, 1})
	mins, maxs := FlattenRects(nil, nil, []Rect{k})
	dst := make([]float64, 0, 4)
	dst = append(dst, -1)
	dst = OverlapRatesFlat(dst, q.Min, q.Max, mins, maxs)
	if len(dst) != 2 || dst[0] != -1 || dst[1] != 1 {
		t.Fatalf("append semantics broken: %v", dst)
	}
}

func TestOverlapRatesFlatPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on mismatched flat bounds")
		}
	}()
	OverlapRatesFlat(nil, []float64{0, 0}, []float64{1, 1}, []float64{0, 0, 0}, []float64{1, 1, 1})
}

func BenchmarkOverlapRatesFlat(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	const dims, n = 4, 5000
	q := randomRect(r, dims)
	rects := make([]Rect, n)
	for i := range rects {
		rects[i] = randomRect(r, dims)
	}
	mins, maxs := FlattenRects(nil, nil, rects)
	dst := make([]float64, 0, n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = OverlapRatesFlat(dst[:0], q.Min, q.Max, mins, maxs)
	}
}
