package geometry

import (
	"fmt"
	"sort"
)

// QueryCoverageFlat measures how much of the query rectangle
// [qmin,qmax] is covered by the union of a set of rectangles packed
// rect-major into mins/maxs (rect k occupies [k*d, (k+1)*d), the same
// layout registry.NodeGeom and OverlapRatesFlat use). The score is the
// mean over dimensions of the fraction of the query interval covered
// by the union of the rectangles' intervals along that dimension —
// overlapping rectangles are merged, never double-counted, so the
// result is always in [0,1].
//
// The model-answer cache uses this as its error predictor: a cached
// ensemble whose training rectangles blanket the query rectangle is
// expected to extrapolate little, so 1-coverage bounds the surprise.
// A per-dimension union is deliberately optimistic relative to the
// d-dimensional union volume (which is exponential to compute); the
// online residual estimate learned from probe rounds absorbs the gap.
//
// Degenerate query intervals (width 0) count as covered when any
// rectangle's interval contains the point. Panics if the slices
// disagree on dimensionality, mirroring OverlapRatesFlat.
func QueryCoverageFlat(qmin, qmax, mins, maxs []float64) float64 {
	d := len(qmin)
	if len(qmax) != d {
		panic(fmt.Sprintf("geometry: query min/max dims %d vs %d", d, len(qmax)))
	}
	if len(mins) != len(maxs) {
		panic(fmt.Sprintf("geometry: mins/maxs length %d vs %d", len(mins), len(maxs)))
	}
	if d == 0 || len(mins) == 0 {
		return 0
	}
	if len(mins)%d != 0 {
		panic(fmt.Sprintf("geometry: flat rects length %d not a multiple of dims %d", len(mins), d))
	}
	n := len(mins) / d

	// Scratch for one dimension's clamped intervals; n is the number
	// of training rectangles backing one cache entry, so it is small.
	spans := make([]span1d, 0, n)

	total := 0.0
	for dim := 0; dim < d; dim++ {
		qlo, qhi := qmin[dim], qmax[dim]
		spans = spans[:0]
		for k := 0; k < n; k++ {
			lo, hi := mins[k*d+dim], maxs[k*d+dim]
			if hi < qlo || lo > qhi {
				continue
			}
			if lo < qlo {
				lo = qlo
			}
			if hi > qhi {
				hi = qhi
			}
			spans = append(spans, span1d{lo, hi})
		}
		if qhi <= qlo {
			// Point (or inverted) query interval: covered iff any
			// rectangle interval touches it.
			if len(spans) > 0 {
				total += 1
			}
			continue
		}
		if len(spans) == 0 {
			continue
		}
		sort.Slice(spans, func(i, j int) bool { return spans[i].lo < spans[j].lo })
		covered := 0.0
		curLo, curHi := spans[0].lo, spans[0].hi
		for _, s := range spans[1:] {
			if s.lo <= curHi {
				if s.hi > curHi {
					curHi = s.hi
				}
				continue
			}
			covered += curHi - curLo
			curLo, curHi = s.lo, s.hi
		}
		covered += curHi - curLo
		total += clamp01(covered / (qhi - qlo))
	}
	return total / float64(d)
}

type span1d struct{ lo, hi float64 }

// QueryCoverage is the Rect convenience wrapper over QueryCoverageFlat.
func QueryCoverage(q Rect, rects []Rect) float64 {
	if len(rects) == 0 {
		return 0
	}
	mins, maxs := FlattenRects(nil, nil, rects)
	return QueryCoverageFlat(q.Min, q.Max, mins, maxs)
}
