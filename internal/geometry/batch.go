package geometry

// Batched overlap kernel for the planning hot path. The leader ranks
// every advertised cluster rectangle against each query (Eq. 2); doing
// that through Rect values costs two slice headers and a bounds check
// per rectangle. The planner (internal/plan) instead keeps every
// node's cluster bounds in two flat slices — mins[k*dims+d],
// maxs[k*dims+d] — packed once per registry snapshot, and scores a
// whole node with a single pass here. The kernel is allocation-free:
// results are appended into a caller-owned buffer (the planner pools
// them), and it computes bit-identical values to OverlapRate so the
// plan path is provably equivalent to the legacy per-Rect path.

// FlattenRects packs rectangles into flat min/max slices, appending to
// mins/maxs (pass nil to allocate fresh). All rects must share dims.
// The returned slices satisfy len == n*dims and are laid out
// rect-major: bounds of rect i occupy [i*dims, (i+1)*dims).
func FlattenRects(mins, maxs []float64, rects []Rect) ([]float64, []float64) {
	for _, r := range rects {
		mins = append(mins, r.Min...)
		maxs = append(maxs, r.Max...)
	}
	return mins, maxs
}

// OverlapRatesFlat scores the query box [qmin,qmax] against every
// rectangle in the flat (mins, maxs) pack, appending one Eq. 2 overlap
// rate per rectangle to dst and returning the extended slice. dims is
// len(qmin); len(mins) must be a multiple of dims. The per-dimension
// cases and the final mean match OverlapRate exactly (same operations,
// same order), so callers can swap between the two representations
// without changing a single ranking.
func OverlapRatesFlat(dst []float64, qmin, qmax, mins, maxs []float64) []float64 {
	dims := len(qmin)
	if dims == 0 || len(qmax) != dims {
		panic("geometry: query bounds empty or mismatched")
	}
	if len(mins) != len(maxs) || len(mins)%dims != 0 {
		panic("geometry: flat bounds not a multiple of query dims")
	}
	for off := 0; off < len(mins); off += dims {
		sum := 0.0
		for d := 0; d < dims; d++ {
			h, _ := IntervalOverlap(qmin[d], qmax[d], mins[off+d], maxs[off+d])
			sum += h
		}
		dst = append(dst, sum/float64(dims))
	}
	return dst
}
