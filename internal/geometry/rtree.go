package geometry

import (
	"errors"
	"fmt"
	"sort"
)

// A bulk-loaded R-tree over rectangles, used by the leader to index
// cluster advertisements when federations grow to hundreds or
// thousands of nodes: intersection search prunes the disjoint clusters
// without scanning every advertisement. Loading uses the
// Sort-Tile-Recursive (STR) algorithm (Leutenegger et al., 1997),
// which packs static entry sets into near-minimal trees — the right
// trade-off here because advertisements change rarely (only on node
// requantization) while queries arrive continuously.

// Entry pairs a rectangle with an opaque payload identifier.
type Entry struct {
	Rect Rect
	ID   int
}

// RTree is an immutable, bulk-loaded R-tree.
type RTree struct {
	root *rtreeNode
	size int
	dims int
}

type rtreeNode struct {
	bounds   Rect
	children []*rtreeNode // nil for leaves
	entries  []Entry      // nil for internal nodes
}

// DefaultRTreeFill is the default node fan-out.
const DefaultRTreeFill = 16

// BuildRTree bulk-loads the entries. maxFill is the node fan-out
// (0 uses DefaultRTreeFill). All rectangles must share a
// dimensionality.
func BuildRTree(entries []Entry, maxFill int) (*RTree, error) {
	if maxFill == 0 {
		maxFill = DefaultRTreeFill
	}
	if maxFill < 2 {
		return nil, fmt.Errorf("geometry: rtree fill %d < 2", maxFill)
	}
	if len(entries) == 0 {
		return nil, errors.New("geometry: rtree needs at least one entry")
	}
	dims := entries[0].Rect.Dims()
	for i, e := range entries {
		if err := e.Rect.Validate(); err != nil {
			return nil, fmt.Errorf("geometry: rtree entry %d: %w", i, err)
		}
		if e.Rect.Dims() != dims {
			return nil, fmt.Errorf("geometry: rtree entry %d has %d dims, want %d", i, e.Rect.Dims(), dims)
		}
	}
	own := append([]Entry(nil), entries...)
	leaves := strPack(own, maxFill, 0, dims)
	root := buildUpward(leaves, maxFill, dims)
	return &RTree{root: root, size: len(entries), dims: dims}, nil
}

// strPack recursively sort-tiles entries into leaf nodes.
func strPack(entries []Entry, maxFill, dim, dims int) []*rtreeNode {
	if len(entries) <= maxFill || dim >= dims {
		// Emit leaves of at most maxFill entries in current order.
		var leaves []*rtreeNode
		for start := 0; start < len(entries); start += maxFill {
			end := start + maxFill
			if end > len(entries) {
				end = len(entries)
			}
			chunk := entries[start:end]
			leaf := &rtreeNode{entries: chunk, bounds: boundsOfEntries(chunk)}
			leaves = append(leaves, leaf)
		}
		return leaves
	}
	sort.SliceStable(entries, func(i, j int) bool {
		ci := (entries[i].Rect.Min[dim] + entries[i].Rect.Max[dim]) / 2
		cj := (entries[j].Rect.Min[dim] + entries[j].Rect.Max[dim]) / 2
		return ci < cj
	})
	// Number of vertical slabs: ceil((n/maxFill)^(1/(dims-dim))) is
	// the textbook choice; a simple square-ish split works well at
	// our scales.
	slabCount := intSqrtCeil((len(entries) + maxFill - 1) / maxFill)
	if slabCount < 1 {
		slabCount = 1
	}
	slabSize := (len(entries) + slabCount - 1) / slabCount
	var leaves []*rtreeNode
	for start := 0; start < len(entries); start += slabSize {
		end := start + slabSize
		if end > len(entries) {
			end = len(entries)
		}
		leaves = append(leaves, strPack(entries[start:end], maxFill, dim+1, dims)...)
	}
	return leaves
}

// buildUpward groups nodes level by level until one root remains.
func buildUpward(nodes []*rtreeNode, maxFill, dims int) *rtreeNode {
	for len(nodes) > 1 {
		var next []*rtreeNode
		for start := 0; start < len(nodes); start += maxFill {
			end := start + maxFill
			if end > len(nodes) {
				end = len(nodes)
			}
			children := append([]*rtreeNode(nil), nodes[start:end]...)
			parent := &rtreeNode{children: children, bounds: boundsOfNodes(children)}
			next = append(next, parent)
		}
		nodes = next
	}
	return nodes[0]
}

func boundsOfEntries(entries []Entry) Rect {
	b := entries[0].Rect.Clone()
	for _, e := range entries[1:] {
		b = b.Union(e.Rect)
	}
	return b
}

func boundsOfNodes(nodes []*rtreeNode) Rect {
	b := nodes[0].bounds.Clone()
	for _, n := range nodes[1:] {
		b = b.Union(n.bounds)
	}
	return b
}

func intSqrtCeil(n int) int {
	if n <= 1 {
		return n
	}
	r := 1
	for r*r < n {
		r++
	}
	return r
}

// Len returns the number of indexed entries.
func (t *RTree) Len() int { return t.size }

// Dims returns the indexed dimensionality.
func (t *RTree) Dims() int { return t.dims }

// Search visits every entry whose rectangle intersects probe; fn
// returning false stops the walk early. The probe must match the
// tree's dimensionality.
func (t *RTree) Search(probe Rect, fn func(Entry) bool) error {
	if probe.Dims() != t.dims {
		return fmt.Errorf("geometry: probe has %d dims, tree has %d", probe.Dims(), t.dims)
	}
	t.search(t.root, probe, fn)
	return nil
}

// search returns false when the walk was stopped.
func (t *RTree) search(n *rtreeNode, probe Rect, fn func(Entry) bool) bool {
	if !n.bounds.Intersects(probe) {
		return true
	}
	if n.entries != nil {
		for _, e := range n.entries {
			if e.Rect.Intersects(probe) {
				if !fn(e) {
					return false
				}
			}
		}
		return true
	}
	for _, c := range n.children {
		if !t.search(c, probe, fn) {
			return false
		}
	}
	return true
}

// Depth returns the tree height (1 for a single leaf), a diagnostics
// aid for the packing tests.
func (t *RTree) Depth() int {
	d := 1
	for n := t.root; n.children != nil; n = n.children[0] {
		d++
	}
	return d
}
