package geometry

import (
	"errors"
	"fmt"
	"sort"
)

// A bulk-loaded R-tree over rectangles, used by the leader to index
// cluster advertisements when federations grow to hundreds or
// thousands of nodes: intersection search prunes the disjoint clusters
// without scanning every advertisement. Loading uses the
// Sort-Tile-Recursive (STR) algorithm (Leutenegger et al., 1997),
// which packs static entry sets into near-minimal trees — the right
// trade-off here because advertisements change rarely (only on node
// requantization) while queries arrive continuously.

// Entry pairs a rectangle with an opaque payload identifier.
type Entry struct {
	Rect Rect
	ID   int
}

// RTree is an immutable, bulk-loaded R-tree.
type RTree struct {
	root *rtreeNode
	size int
	dims int
}

type rtreeNode struct {
	bounds   Rect
	children []*rtreeNode // nil for leaves
	entries  []Entry      // nil for internal nodes
	// flatMins/flatMaxs mirror the leaf entries' rectangles in one
	// contiguous dim-major block (flatMins[d*len(entries)+i] is entry
	// i's min in dimension d). The candidate walk scans these instead
	// of chasing each entry's two slice headers — at fleet scale the
	// scan is memory- and branch-bound, and the columnar layout is what
	// lets the per-dimension pass run branchless over whole cache
	// lines.
	flatMins, flatMaxs []float64
}

// newLeaf builds a leaf node over the given entries, computing its
// covering bounds and the columnar rectangle mirror.
func newLeaf(entries []Entry) *rtreeNode {
	dims := entries[0].Rect.Dims()
	cnt := len(entries)
	mins := make([]float64, dims*cnt)
	maxs := make([]float64, dims*cnt)
	for i := range entries {
		for d := 0; d < dims; d++ {
			mins[d*cnt+i] = entries[i].Rect.Min[d]
			maxs[d*cnt+i] = entries[i].Rect.Max[d]
		}
	}
	return &rtreeNode{
		entries: entries, bounds: boundsOfEntries(entries),
		flatMins: mins, flatMaxs: maxs,
	}
}

// DefaultRTreeFill is the default node fan-out.
const DefaultRTreeFill = 16

// leafScanBlock bounds the stack-resident miss-count block of the
// columnar candidate scan; leaves larger than this (custom fills) fall
// back to the entry-major walk.
const leafScanBlock = 64

// BuildRTree bulk-loads the entries. maxFill is the node fan-out
// (0 uses DefaultRTreeFill). All rectangles must share a
// dimensionality.
func BuildRTree(entries []Entry, maxFill int) (*RTree, error) {
	if maxFill == 0 {
		maxFill = DefaultRTreeFill
	}
	if maxFill < 2 {
		return nil, fmt.Errorf("geometry: rtree fill %d < 2", maxFill)
	}
	if len(entries) == 0 {
		return nil, errors.New("geometry: rtree needs at least one entry")
	}
	dims := entries[0].Rect.Dims()
	for i, e := range entries {
		if err := e.Rect.Validate(); err != nil {
			return nil, fmt.Errorf("geometry: rtree entry %d: %w", i, err)
		}
		if e.Rect.Dims() != dims {
			return nil, fmt.Errorf("geometry: rtree entry %d has %d dims, want %d", i, e.Rect.Dims(), dims)
		}
	}
	own := append([]Entry(nil), entries...)
	leaves := strPack(own, maxFill, 0, dims)
	root := buildUpward(leaves, maxFill, dims)
	return &RTree{root: root, size: len(entries), dims: dims}, nil
}

// strPack recursively sort-tiles entries into leaf nodes.
func strPack(entries []Entry, maxFill, dim, dims int) []*rtreeNode {
	if len(entries) <= maxFill || dim >= dims {
		// Emit leaves of at most maxFill entries in current order.
		var leaves []*rtreeNode
		for start := 0; start < len(entries); start += maxFill {
			end := start + maxFill
			if end > len(entries) {
				end = len(entries)
			}
			leaves = append(leaves, newLeaf(entries[start:end]))
		}
		return leaves
	}
	sort.SliceStable(entries, func(i, j int) bool {
		ci := (entries[i].Rect.Min[dim] + entries[i].Rect.Max[dim]) / 2
		cj := (entries[j].Rect.Min[dim] + entries[j].Rect.Max[dim]) / 2
		return ci < cj
	})
	// Number of vertical slabs: ceil((n/maxFill)^(1/(dims-dim))) is
	// the textbook choice; a simple square-ish split works well at
	// our scales.
	slabCount := intSqrtCeil((len(entries) + maxFill - 1) / maxFill)
	if slabCount < 1 {
		slabCount = 1
	}
	slabSize := (len(entries) + slabCount - 1) / slabCount
	var leaves []*rtreeNode
	for start := 0; start < len(entries); start += slabSize {
		end := start + slabSize
		if end > len(entries) {
			end = len(entries)
		}
		leaves = append(leaves, strPack(entries[start:end], maxFill, dim+1, dims)...)
	}
	return leaves
}

// buildUpward groups nodes level by level until one root remains.
func buildUpward(nodes []*rtreeNode, maxFill, dims int) *rtreeNode {
	for len(nodes) > 1 {
		var next []*rtreeNode
		for start := 0; start < len(nodes); start += maxFill {
			end := start + maxFill
			if end > len(nodes) {
				end = len(nodes)
			}
			children := append([]*rtreeNode(nil), nodes[start:end]...)
			parent := &rtreeNode{children: children, bounds: boundsOfNodes(children)}
			next = append(next, parent)
		}
		nodes = next
	}
	return nodes[0]
}

func boundsOfEntries(entries []Entry) Rect {
	b := entries[0].Rect.Clone()
	for _, e := range entries[1:] {
		b = b.Union(e.Rect)
	}
	return b
}

func boundsOfNodes(nodes []*rtreeNode) Rect {
	b := nodes[0].bounds.Clone()
	for _, n := range nodes[1:] {
		b = b.Union(n.bounds)
	}
	return b
}

func intSqrtCeil(n int) int {
	if n <= 1 {
		return n
	}
	r := 1
	for r*r < n {
		r++
	}
	return r
}

// Len returns the number of indexed entries.
func (t *RTree) Len() int { return t.size }

// Dims returns the indexed dimensionality.
func (t *RTree) Dims() int { return t.dims }

// Search visits every entry whose rectangle intersects probe; fn
// returning false stops the walk early. The probe must match the
// tree's dimensionality.
func (t *RTree) Search(probe Rect, fn func(Entry) bool) error {
	if probe.Dims() != t.dims {
		return fmt.Errorf("geometry: probe has %d dims, tree has %d", probe.Dims(), t.dims)
	}
	t.search(t.root, probe, fn)
	return nil
}

// search returns false when the walk was stopped.
func (t *RTree) search(n *rtreeNode, probe Rect, fn func(Entry) bool) bool {
	if !n.bounds.Intersects(probe) {
		return true
	}
	if n.entries != nil {
		for _, e := range n.entries {
			if e.Rect.Intersects(probe) {
				if !fn(e) {
					return false
				}
			}
		}
		return true
	}
	for _, c := range n.children {
		if !t.search(c, probe, fn) {
			return false
		}
	}
	return true
}

// Depth returns the tree height (1 for a single leaf), a diagnostics
// aid for the packing tests.
func (t *RTree) Depth() int {
	d := 1
	for n := t.root; n.children != nil; n = n.children[0] {
		d++
	}
	return d
}

// AppendOverlapCandidates appends to dst the IDs of every entry whose
// rectangle overlaps the probe in at least a minFrac fraction of its
// dimensions, and returns the extended slice (append semantics: a dst
// with spare capacity makes the walk allocation-free).
//
// This is the sound pruning bound for the paper's Eq. 2 score: the
// per-cluster overlap rate is the MEAN of per-dimension interval
// overlaps, each of which is zero exactly when the intervals are
// disjoint in that dimension and positive otherwise. A covering
// rectangle that overlaps the probe in fewer than ⌈minFrac·dims⌉
// dimensions therefore bounds every contained cluster's rate strictly
// below minFrac — with minFrac = ε, such entries provably rank zero
// and can be skipped before the kernel. The predicate is monotone down
// the tree (child bounds nest inside parent bounds), so whole subtrees
// prune in one comparison. Entry IDs are emitted in tree order, not
// insertion order.
func (t *RTree) AppendOverlapCandidates(probe Rect, minFrac float64, dst []int) ([]int, error) {
	if probe.Dims() != t.dims {
		return dst, fmt.Errorf("geometry: probe has %d dims, tree has %d", probe.Dims(), t.dims)
	}
	// Smallest integer dimension count whose fraction clears minFrac,
	// computed with the exact float division the kernel's callers use
	// (float64(k)/float64(dims) >= minFrac) so the bound never drifts
	// from the brute comparison.
	minDims := 0
	for minDims <= t.dims && float64(minDims)/float64(t.dims) < minFrac {
		minDims++
	}
	if minDims > t.dims {
		// minFrac > 1: no entry can qualify.
		return dst, nil
	}
	return appendCandidates(t.root, probe, minDims, dst), nil
}

func appendCandidates(n *rtreeNode, probe Rect, minDims int, dst []int) []int {
	if overlapDimCount(probe, n.bounds) < minDims {
		return dst
	}
	if n.entries != nil {
		// Scan the leaf's flattened rectangles. The dimension loop exits
		// in both directions: as soon as the count clears minDims the
		// entry is a candidate, and as soon as the remaining dimensions
		// cannot lift the count to minDims the entry is pruned — at high
		// d almost every cold entry dies within the first few
		// dimensions.
		if minDims <= 0 { // minFrac <= 0: every entry qualifies
			for i := range n.entries {
				dst = append(dst, n.entries[i].ID)
			}
			return dst
		}
		dims := len(probe.Min)
		cnt := len(n.entries)
		if cnt <= leafScanBlock && dims < 256 {
			// Columnar pass: one dimension at a time across the whole
			// leaf, accumulating per-entry disjoint-dimension counts in a
			// stack block. The two comparisons cannot both be true
			// (lo > cmax[i] and hi < cmin[i] would order lo above hi), so
			// their sum is exactly "disjoint in this dimension" — and
			// materializing them as 0/1 keeps the loop free of
			// data-dependent branches, which is what the entry-major walk
			// stalls on at high d.
			var miss [leafScanBlock]uint8
			for i := 0; i < cnt; i++ {
				miss[i] = 0
			}
			for d := 0; d < dims; d++ {
				lo, hi := probe.Min[d], probe.Max[d]
				cmin := n.flatMins[d*cnt : d*cnt+cnt : d*cnt+cnt]
				cmax := n.flatMaxs[d*cnt : d*cnt+cnt : d*cnt+cnt]
				for i := 0; i < cnt; i++ {
					var a, b uint8
					if lo > cmax[i] {
						a = 1
					}
					if hi < cmin[i] {
						b = 1
					}
					miss[i] += a + b
				}
			}
			budget := uint8(dims - minDims)
			for i := 0; i < cnt; i++ {
				if miss[i] <= budget {
					dst = append(dst, n.entries[i].ID)
				}
			}
			return dst
		}
		for i := range n.entries {
			if overlapDimCount(probe, n.entries[i].Rect) >= minDims {
				dst = append(dst, n.entries[i].ID)
			}
		}
		return dst
	}
	for _, c := range n.children {
		dst = appendCandidates(c, probe, minDims, dst)
	}
	return dst
}

// overlapDimCount counts the dimensions in which the two rectangles'
// intervals overlap (touching counts — IntervalOverlap is positive at
// zero-width contact).
func overlapDimCount(q, r Rect) int {
	n := 0
	for d := range q.Min {
		if q.Min[d] <= r.Max[d] && q.Max[d] >= r.Min[d] {
			n++
		}
	}
	return n
}

// Patch returns a new tree in which each entry listed in updates has
// its rectangle replaced, sharing every untouched subtree with the
// receiver (both trees stay immutable). The tree keeps its STR leaf
// layout — entries are matched by ID in place, no re-sorting — so a
// patch is O(N) ID checks plus O(changed·depth) node copies, versus
// the O(N log N) sort of a full rebuild. Packing quality degrades as
// patched rectangles drift from their original tiles; callers rebuild
// past a churn threshold. Every update ID must exist in the tree.
func (t *RTree) Patch(updates map[int]Rect) (*RTree, error) {
	if len(updates) == 0 {
		return t, nil
	}
	for id, r := range updates {
		if err := r.Validate(); err != nil {
			return nil, fmt.Errorf("geometry: rtree patch entry %d: %w", id, err)
		}
		if r.Dims() != t.dims {
			return nil, fmt.Errorf("geometry: rtree patch entry %d has %d dims, want %d", id, r.Dims(), t.dims)
		}
	}
	root, _, patched := patchNode(t.root, updates)
	if patched != len(updates) {
		return nil, fmt.Errorf("geometry: rtree patch matched %d of %d entry ids", patched, len(updates))
	}
	return &RTree{root: root, size: t.size, dims: t.dims}, nil
}

// patchNode rewrites the subtree rooted at n, returning the (possibly
// shared) replacement, whether anything under it changed, and how many
// updates it applied.
func patchNode(n *rtreeNode, updates map[int]Rect) (*rtreeNode, bool, int) {
	if n.entries != nil {
		touched := 0
		for i := range n.entries {
			if _, ok := updates[n.entries[i].ID]; ok {
				touched++
			}
		}
		if touched == 0 {
			return n, false, 0
		}
		ents := append([]Entry(nil), n.entries...)
		for i := range ents {
			if r, ok := updates[ents[i].ID]; ok {
				ents[i].Rect = r
			}
		}
		return newLeaf(ents), true, touched
	}
	changed := false
	patched := 0
	children := n.children
	for i, c := range n.children {
		nc, ch, p := patchNode(c, updates)
		patched += p
		if ch {
			if !changed {
				children = append([]*rtreeNode(nil), n.children...)
				changed = true
			}
			children[i] = nc
		}
	}
	if !changed {
		return n, false, 0
	}
	return &rtreeNode{children: children, bounds: boundsOfNodes(children)}, true, patched
}
