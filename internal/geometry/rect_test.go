package geometry

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewRectValidation(t *testing.T) {
	if _, err := NewRect([]float64{0, 0}, []float64{1, 1}); err != nil {
		t.Fatalf("valid rect rejected: %v", err)
	}
	if _, err := NewRect([]float64{0}, []float64{1, 1}); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
	if _, err := NewRect([]float64{2}, []float64{1}); err == nil {
		t.Fatal("min > max accepted")
	}
	if _, err := NewRect([]float64{math.NaN()}, []float64{1}); err == nil {
		t.Fatal("NaN bound accepted")
	}
}

func TestNewRectCopies(t *testing.T) {
	min := []float64{0, 0}
	r := MustRect(min, []float64{1, 1})
	min[0] = 99
	if r.Min[0] != 0 {
		t.Fatal("NewRect aliases input slice")
	}
}

func TestMustRectPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustRect([]float64{1}, []float64{0})
}

func TestWidthVolumeCenter(t *testing.T) {
	r := MustRect([]float64{0, 2}, []float64{4, 8})
	if r.Width(0) != 4 || r.Width(1) != 6 {
		t.Fatalf("widths %v %v", r.Width(0), r.Width(1))
	}
	if r.Volume() != 24 {
		t.Fatalf("volume %v", r.Volume())
	}
	c := r.Center()
	if c[0] != 2 || c[1] != 5 {
		t.Fatalf("center %v", c)
	}
}

func TestDegeneratePointRect(t *testing.T) {
	p := MustRect([]float64{3, 3}, []float64{3, 3})
	if p.Volume() != 0 {
		t.Fatalf("point volume %v", p.Volume())
	}
	if !p.Contains([]float64{3, 3}) {
		t.Fatal("point rect should contain its point")
	}
}

func TestContains(t *testing.T) {
	r := MustRect([]float64{0, 0}, []float64{10, 10})
	cases := []struct {
		p  []float64
		in bool
	}{
		{[]float64{5, 5}, true},
		{[]float64{0, 0}, true},   // inclusive lower
		{[]float64{10, 10}, true}, // inclusive upper
		{[]float64{-0.1, 5}, false},
		{[]float64{5, 10.1}, false},
		{[]float64{5}, false}, // wrong dims
	}
	for _, c := range cases {
		if got := r.Contains(c.p); got != c.in {
			t.Errorf("Contains(%v) = %v, want %v", c.p, got, c.in)
		}
	}
}

func TestContainsRectIntersects(t *testing.T) {
	outer := MustRect([]float64{0, 0}, []float64{10, 10})
	inner := MustRect([]float64{2, 2}, []float64{5, 5})
	partial := MustRect([]float64{8, 8}, []float64{12, 12})
	outside := MustRect([]float64{20, 20}, []float64{30, 30})

	if !outer.ContainsRect(inner) {
		t.Fatal("outer should contain inner")
	}
	if outer.ContainsRect(partial) {
		t.Fatal("outer should not contain partial")
	}
	if !outer.Intersects(partial) {
		t.Fatal("outer should intersect partial")
	}
	if outer.Intersects(outside) {
		t.Fatal("outer should not intersect outside")
	}
	// Touching edges intersect (closed rectangles).
	touch := MustRect([]float64{10, 0}, []float64{20, 10})
	if !outer.Intersects(touch) {
		t.Fatal("touching rectangles should intersect")
	}
}

func TestIntersection(t *testing.T) {
	a := MustRect([]float64{0, 0}, []float64{10, 10})
	b := MustRect([]float64{5, -5}, []float64{15, 5})
	got, ok := a.Intersection(b)
	if !ok {
		t.Fatal("expected intersection")
	}
	want := MustRect([]float64{5, 0}, []float64{10, 5})
	if !rectEqual(got, want) {
		t.Fatalf("intersection %v, want %v", got, want)
	}
	if _, ok := a.Intersection(MustRect([]float64{20, 20}, []float64{21, 21})); ok {
		t.Fatal("disjoint rects should not intersect")
	}
}

func TestUnion(t *testing.T) {
	a := MustRect([]float64{0, 5}, []float64{2, 6})
	b := MustRect([]float64{-1, 7}, []float64{1, 9})
	got := a.Union(b)
	want := MustRect([]float64{-1, 5}, []float64{2, 9})
	if !rectEqual(got, want) {
		t.Fatalf("union %v, want %v", got, want)
	}
}

func TestExpandToInclude(t *testing.T) {
	r := MustRect([]float64{0, 0}, []float64{1, 1})
	r.ExpandToInclude([]float64{-2, 3})
	if r.Min[0] != -2 || r.Max[1] != 3 || r.Max[0] != 1 || r.Min[1] != 0 {
		t.Fatalf("expanded rect %v", r)
	}
}

func TestBoundingRect(t *testing.T) {
	pts := [][]float64{{1, 5}, {-2, 3}, {4, 4}}
	r, ok := BoundingRect(pts)
	if !ok {
		t.Fatal("expected bounding rect")
	}
	want := MustRect([]float64{-2, 3}, []float64{4, 5})
	if !rectEqual(r, want) {
		t.Fatalf("bounding %v, want %v", r, want)
	}
	if _, ok := BoundingRect(nil); ok {
		t.Fatal("empty points should not produce a rect")
	}
}

func TestBoundingRectContainsAllPoints(t *testing.T) {
	f := func(raw [6][2]float64) bool {
		pts := make([][]float64, len(raw))
		for i, p := range raw {
			if math.IsNaN(p[0]) || math.IsNaN(p[1]) {
				return true
			}
			pts[i] = []float64{p[0], p[1]}
		}
		r, ok := BoundingRect(pts)
		if !ok {
			return false
		}
		for _, p := range pts {
			if !r.Contains(p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCloneIndependence(t *testing.T) {
	a := MustRect([]float64{0}, []float64{1})
	b := a.Clone()
	b.Min[0] = -9
	if a.Min[0] != 0 {
		t.Fatal("Clone aliases storage")
	}
}

func rectEqual(a, b Rect) bool {
	if a.Dims() != b.Dims() {
		return false
	}
	for d := range a.Min {
		if a.Min[d] != b.Min[d] || a.Max[d] != b.Max[d] {
			return false
		}
	}
	return true
}
