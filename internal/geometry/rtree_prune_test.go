package geometry

import (
	"sort"
	"testing"

	"qens/internal/rng"
)

// brutePruneCandidates applies AppendOverlapCandidates' predicate
// entry by entry: at least minDims-of-dims per-dimension overlap,
// with minDims derived from minFrac by the exact float comparison the
// kernel's callers use.
func brutePruneCandidates(entries []Entry, probe Rect, minFrac float64) []int {
	dims := probe.Dims()
	minDims := 0
	for minDims <= dims && float64(minDims)/float64(dims) < minFrac {
		minDims++
	}
	if minDims > dims {
		return nil
	}
	var ids []int
	for _, e := range entries {
		if overlapDimCount(probe, e.Rect) >= minDims {
			ids = append(ids, e.ID)
		}
	}
	sort.Ints(ids)
	return ids
}

func TestAppendOverlapCandidatesMatchesBrute(t *testing.T) {
	for _, dims := range []int{1, 2, 5} {
		entries := randomEntries(400, dims, uint64(10+dims))
		tree, err := BuildRTree(entries, 0)
		if err != nil {
			t.Fatal(err)
		}
		src := rng.New(uint64(20 + dims))
		for trial := 0; trial < 40; trial++ {
			min := make([]float64, dims)
			max := make([]float64, dims)
			for d := 0; d < dims; d++ {
				a := src.Uniform(-10, 90)
				min[d] = a
				max[d] = a + src.Uniform(0.5, 40)
			}
			probe := MustRect(min, max)
			for _, frac := range []float64{0.1, 0.5, 0.9, 1.0, 1.5} {
				want := brutePruneCandidates(entries, probe, frac)
				got, err := tree.AppendOverlapCandidates(probe, frac, nil)
				if err != nil {
					t.Fatal(err)
				}
				sort.Ints(got)
				if len(got) != len(want) {
					t.Fatalf("dims=%d trial=%d frac=%v: %d vs %d candidates", dims, trial, frac, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("dims=%d trial=%d frac=%v: candidate mismatch at %d", dims, trial, frac, i)
					}
				}
			}
		}
	}
}

// The pruning bound must be sound against Eq. 2: every entry whose
// overlap rate (mean of per-dimension interval overlaps) clears ε must
// be in the candidate set, and every pruned entry must provably score
// below ε.
func TestAppendOverlapCandidatesEq2Sound(t *testing.T) {
	entries := randomEntries(300, 3, 33)
	tree, err := BuildRTree(entries, 0)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(34)
	for trial := 0; trial < 60; trial++ {
		a, b, c := src.Uniform(0, 80), src.Uniform(0, 80), src.Uniform(0, 80)
		probe := MustRect([]float64{a, b, c}, []float64{a + 20, b + 20, c + 20})
		for _, eps := range []float64{0.05, 1.0 / 3, 0.5, 0.67, 1} {
			got, err := tree.AppendOverlapCandidates(probe, eps, nil)
			if err != nil {
				t.Fatal(err)
			}
			in := map[int]bool{}
			for _, id := range got {
				in[id] = true
			}
			for _, e := range entries {
				rate := OverlapRate(probe, e.Rect)
				if rate >= eps && !in[e.ID] {
					t.Fatalf("trial=%d eps=%v: entry %d rate %v pruned", trial, eps, e.ID, rate)
				}
				if !in[e.ID] && rate >= eps {
					t.Fatalf("trial=%d eps=%v: pruned entry %d scores %v >= eps", trial, eps, e.ID, rate)
				}
			}
		}
	}
}

func TestAppendOverlapCandidatesAppendSemantics(t *testing.T) {
	entries := randomEntries(64, 2, 44)
	tree, _ := BuildRTree(entries, 0)
	probe := MustRect([]float64{0, 0}, []float64{100, 100})

	dst := append(make([]int, 0, 128), -1)
	got, err := tree.AppendOverlapCandidates(probe, 0.5, dst)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != -1 {
		t.Fatal("append clobbered existing prefix")
	}
	if len(got) != 65 {
		t.Fatalf("spanning probe matched %d of 64", len(got)-1)
	}

	// With pre-grown capacity the walk is allocation-free — the planner
	// fast path's 0 allocs/op depends on it.
	buf := make([]int, 0, 128)
	if allocs := testing.AllocsPerRun(100, func() {
		buf = buf[:0]
		buf, _ = tree.AppendOverlapCandidates(probe, 0.5, buf)
	}); allocs != 0 {
		t.Fatalf("pre-grown candidate walk allocates %.1f/op", allocs)
	}

	if _, err := tree.AppendOverlapCandidates(MustRect([]float64{0}, []float64{1}), 0.5, nil); err == nil {
		t.Fatal("accepted probe with wrong dims")
	}
}

func TestRTreePatch(t *testing.T) {
	entries := randomEntries(200, 2, 55)
	tree, err := BuildRTree(entries, 0)
	if err != nil {
		t.Fatal(err)
	}

	// Move a handful of rectangles and patch.
	updates := map[int]Rect{}
	patched := append([]Entry(nil), entries...)
	src := rng.New(56)
	for _, id := range []int{3, 17, 42, 99, 180} {
		a, b := src.Uniform(0, 80), src.Uniform(0, 80)
		r := MustRect([]float64{a, b}, []float64{a + 5, b + 5})
		updates[id] = r
		patched[id].Rect = r
	}
	pt, err := tree.Patch(updates)
	if err != nil {
		t.Fatal(err)
	}
	if pt.Len() != tree.Len() || pt.Dims() != tree.Dims() {
		t.Fatalf("patched tree meta %d/%d", pt.Len(), pt.Dims())
	}

	for trial := 0; trial < 40; trial++ {
		a, b := src.Uniform(0, 80), src.Uniform(0, 80)
		probe := MustRect([]float64{a, b}, []float64{a + src.Uniform(1, 30), b + src.Uniform(1, 30)})
		want := bruteIntersecting(patched, probe)
		got := treeIntersecting(t, pt, probe)
		if len(want) != len(got) {
			t.Fatalf("trial %d: %d vs %d results after patch", trial, len(got), len(want))
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("trial %d: result mismatch after patch", trial)
			}
		}
		// The receiver stays immutable: searches still see the original
		// rectangles.
		wantOld := bruteIntersecting(entries, probe)
		gotOld := treeIntersecting(t, tree, probe)
		if len(wantOld) != len(gotOld) {
			t.Fatalf("trial %d: patch mutated the receiver", trial)
		}
	}
}

func TestRTreePatchErrors(t *testing.T) {
	tree, _ := BuildRTree(randomEntries(20, 2, 66), 0)

	if pt, err := tree.Patch(nil); err != nil || pt != tree {
		t.Fatalf("empty patch: %v %p vs %p", err, pt, tree)
	}
	if _, err := tree.Patch(map[int]Rect{999: MustRect([]float64{0, 0}, []float64{1, 1})}); err == nil {
		t.Fatal("accepted unknown entry id")
	}
	if _, err := tree.Patch(map[int]Rect{0: MustRect([]float64{0}, []float64{1})}); err == nil {
		t.Fatal("accepted dim mismatch")
	}
	if _, err := tree.Patch(map[int]Rect{0: {Min: []float64{1, 1}, Max: []float64{0, 0}}}); err == nil {
		t.Fatal("accepted invalid rectangle")
	}
}
