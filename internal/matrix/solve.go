package matrix

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular reports a (numerically) singular linear system.
var ErrSingular = errors.New("matrix: singular system")

// SolveLinear solves A·x = b by Gaussian elimination with partial
// pivoting, for a square matrix A. A and b are not modified.
func SolveLinear(a *Dense, b []float64) ([]float64, error) {
	n := a.Rows()
	if a.Cols() != n {
		return nil, fmt.Errorf("%w: %dx%d not square", ErrShape, a.Rows(), a.Cols())
	}
	if len(b) != n {
		return nil, fmt.Errorf("%w: rhs length %d for %dx%d system", ErrShape, len(b), n, n)
	}
	// Augmented working copy.
	work := make([][]float64, n)
	for i := 0; i < n; i++ {
		row := make([]float64, n+1)
		copy(row, a.Row(i))
		row[n] = b[i]
		work[i] = row
	}
	for col := 0; col < n; col++ {
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(work[r][col]) > math.Abs(work[pivot][col]) {
				pivot = r
			}
		}
		work[col], work[pivot] = work[pivot], work[col]
		if math.Abs(work[col][col]) < 1e-14 {
			return nil, ErrSingular
		}
		inv := 1 / work[col][col]
		for c := col; c <= n; c++ {
			work[col][c] *= inv
		}
		for r := 0; r < n; r++ {
			if r == col || work[r][col] == 0 {
				continue
			}
			f := work[r][col]
			for c := col; c <= n; c++ {
				work[r][c] -= f * work[col][c]
			}
		}
	}
	x := make([]float64, n)
	for i := range x {
		x[i] = work[i][n]
	}
	return x, nil
}

// SolveNormalEquations solves the least-squares problem min ||X·w - y||
// via the ridge-damped normal equations (XᵀX + λI)·w = Xᵀy, where each
// row of x is one observation. lambda >= 0 stabilizes near-singular
// designs (pass 0 for plain OLS).
func SolveNormalEquations(x [][]float64, y []float64, lambda float64) ([]float64, error) {
	if len(x) == 0 || len(x) != len(y) {
		return nil, fmt.Errorf("%w: %d observations for %d targets", ErrShape, len(x), len(y))
	}
	if lambda < 0 {
		return nil, fmt.Errorf("matrix: negative ridge %v", lambda)
	}
	d := len(x[0])
	ata := NewDense(d, d)
	atb := make([]float64, d)
	for i, row := range x {
		if len(row) != d {
			return nil, fmt.Errorf("%w: observation %d has %d features, want %d", ErrShape, i, len(row), d)
		}
		for r := 0; r < d; r++ {
			for c := 0; c < d; c++ {
				ata.Set(r, c, ata.At(r, c)+row[r]*row[c])
			}
			atb[r] += row[r] * y[i]
		}
	}
	for r := 0; r < d; r++ {
		ata.Set(r, r, ata.At(r, r)+lambda)
	}
	return SolveLinear(ata, atb)
}
