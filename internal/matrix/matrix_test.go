package matrix

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewDenseZero(t *testing.T) {
	m := NewDense(3, 4)
	if m.Rows() != 3 || m.Cols() != 4 {
		t.Fatalf("shape %dx%d", m.Rows(), m.Cols())
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if m.At(i, j) != 0 {
				t.Fatalf("non-zero element at (%d,%d)", i, j)
			}
		}
	}
}

func TestSetAt(t *testing.T) {
	m := NewDense(2, 2)
	m.Set(0, 1, 3.5)
	m.Set(1, 0, -1)
	if m.At(0, 1) != 3.5 || m.At(1, 0) != -1 {
		t.Fatal("Set/At mismatch")
	}
}

func TestAtPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewDense(2, 2).At(2, 0)
}

func TestFromRows(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if m.Rows() != 3 || m.Cols() != 2 || m.At(2, 1) != 6 {
		t.Fatalf("FromRows produced %v", m)
	}
}

func TestFromRowsEmpty(t *testing.T) {
	m := FromRows(nil)
	if m.Rows() != 0 || m.Cols() != 0 {
		t.Fatal("empty FromRows should be 0x0")
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on ragged rows")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestMul(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	got := Mul(a, b)
	want := FromRows([][]float64{{19, 22}, {43, 50}})
	if !Equal(got, want, 1e-12) {
		t.Fatalf("Mul = %v, want %v", got, want)
	}
}

func TestMulIdentity(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	id := FromRows([][]float64{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}})
	if !Equal(Mul(a, id), a, 0) {
		t.Fatal("a * I != a")
	}
}

func TestMulShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected shape panic")
		}
	}()
	Mul(NewDense(2, 3), NewDense(2, 3))
}

func TestMulInto(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{0, 1}, {1, 0}})
	dst := NewDense(2, 2)
	dst.Fill(99) // must be overwritten
	MulInto(dst, a, b)
	want := FromRows([][]float64{{2, 1}, {4, 3}})
	if !Equal(dst, want, 1e-12) {
		t.Fatalf("MulInto = %v, want %v", dst, want)
	}
}

func TestTranspose(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	at := a.T()
	if at.Rows() != 3 || at.Cols() != 2 || at.At(2, 0) != 3 || at.At(0, 1) != 4 {
		t.Fatalf("transpose wrong: %v", at)
	}
	if !Equal(at.T(), a, 0) {
		t.Fatal("double transpose != original")
	}
}

func TestMulTransA(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	b := FromRows([][]float64{{1, 0}, {0, 1}, {1, 1}})
	got := MulTransA(a, b)
	want := Mul(a.T(), b)
	if !Equal(got, want, 1e-12) {
		t.Fatalf("MulTransA = %v, want %v", got, want)
	}
}

func TestMulTransB(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	b := FromRows([][]float64{{1, 1, 1}, {2, 0, 2}})
	got := MulTransB(a, b)
	want := Mul(a, b.T())
	if !Equal(got, want, 1e-12) {
		t.Fatalf("MulTransB = %v, want %v", got, want)
	}
}

func TestAddSub(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{10, 20}, {30, 40}})
	if got := Add(a, b); !Equal(got, FromRows([][]float64{{11, 22}, {33, 44}}), 0) {
		t.Fatalf("Add = %v", got)
	}
	if got := Sub(b, a); !Equal(got, FromRows([][]float64{{9, 18}, {27, 36}}), 0) {
		t.Fatalf("Sub = %v", got)
	}
}

func TestInPlaceOps(t *testing.T) {
	a := FromRows([][]float64{{1, 1}})
	b := FromRows([][]float64{{2, 3}})
	AddInPlace(a, b)
	if a.At(0, 0) != 3 || a.At(0, 1) != 4 {
		t.Fatalf("AddInPlace = %v", a)
	}
	SubInPlace(a, b)
	if a.At(0, 0) != 1 || a.At(0, 1) != 1 {
		t.Fatalf("SubInPlace = %v", a)
	}
	AxpyInPlace(a, 2, b)
	if a.At(0, 0) != 5 || a.At(0, 1) != 7 {
		t.Fatalf("AxpyInPlace = %v", a)
	}
}

func TestScaleApplyHadamard(t *testing.T) {
	a := FromRows([][]float64{{1, -2}, {3, -4}})
	a.Scale(2)
	if a.At(1, 1) != -8 {
		t.Fatalf("Scale: %v", a)
	}
	a.Apply(math.Abs)
	if a.At(1, 1) != 8 || a.At(0, 1) != 4 {
		t.Fatalf("Apply: %v", a)
	}
	h := Hadamard(a, a)
	if h.At(1, 1) != 64 {
		t.Fatalf("Hadamard: %v", h)
	}
}

func TestAddRowVectorColSums(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	m.AddRowVector([]float64{10, 20})
	want := FromRows([][]float64{{11, 22}, {13, 24}})
	if !Equal(m, want, 0) {
		t.Fatalf("AddRowVector: %v", m)
	}
	sums := m.ColSums()
	if sums[0] != 24 || sums[1] != 46 {
		t.Fatalf("ColSums: %v", sums)
	}
}

func TestNormMaxAbs(t *testing.T) {
	m := FromRows([][]float64{{3, 4}})
	if m.Norm() != 5 {
		t.Fatalf("Norm = %v", m.Norm())
	}
	if m.MaxAbs() != 4 {
		t.Fatalf("MaxAbs = %v", m.MaxAbs())
	}
}

func TestCloneIndependent(t *testing.T) {
	a := FromRows([][]float64{{1, 2}})
	b := a.Clone()
	b.Set(0, 0, 99)
	if a.At(0, 0) != 1 {
		t.Fatal("Clone aliases original")
	}
}

func TestRowAliases(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	r := m.Row(1)
	r[0] = 30
	if m.At(1, 0) != 30 {
		t.Fatal("Row should alias storage")
	}
}

// Property: matrix multiplication distributes over addition,
// A*(B+C) == A*B + A*C.
func TestMulDistributesOverAdd(t *testing.T) {
	f := func(seed int64) bool {
		a := randomMatrix(seed, 3, 4)
		b := randomMatrix(seed+1, 4, 2)
		c := randomMatrix(seed+2, 4, 2)
		left := Mul(a, Add(b, c))
		right := Add(Mul(a, b), Mul(a, c))
		return Equal(left, right, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: (A*B)ᵀ == Bᵀ*Aᵀ.
func TestMulTransposeIdentity(t *testing.T) {
	f := func(seed int64) bool {
		a := randomMatrix(seed, 3, 5)
		b := randomMatrix(seed+7, 5, 2)
		return Equal(Mul(a, b).T(), Mul(b.T(), a.T()), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func randomMatrix(seed int64, rows, cols int) *Dense {
	m := NewDense(rows, cols)
	x := uint64(seed)*2862933555777941757 + 3037000493
	for i := range m.data {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		m.data[i] = float64(int64(x%2000)-1000) / 100
	}
	return m
}
