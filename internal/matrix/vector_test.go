package matrix

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDot(t *testing.T) {
	if got := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); got != 32 {
		t.Fatalf("Dot = %v", got)
	}
}

func TestDotShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestDistances(t *testing.T) {
	a, b := []float64{0, 0}, []float64{3, 4}
	if SqDist(a, b) != 25 {
		t.Fatalf("SqDist = %v", SqDist(a, b))
	}
	if Dist(a, b) != 5 {
		t.Fatalf("Dist = %v", Dist(a, b))
	}
	if Dist(a, a) != 0 {
		t.Fatal("self distance should be zero")
	}
}

func TestAxpyScale(t *testing.T) {
	y := []float64{1, 1}
	AxpyVec(y, 3, []float64{2, -1})
	if y[0] != 7 || y[1] != -2 {
		t.Fatalf("AxpyVec = %v", y)
	}
	ScaleVec(y, 0.5)
	if y[0] != 3.5 || y[1] != -1 {
		t.Fatalf("ScaleVec = %v", y)
	}
}

func TestStats(t *testing.T) {
	v := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if MeanVec(v) != 5 {
		t.Fatalf("Mean = %v", MeanVec(v))
	}
	if VarianceVec(v) != 4 {
		t.Fatalf("Variance = %v", VarianceVec(v))
	}
	if StdDevVec(v) != 2 {
		t.Fatalf("StdDev = %v", StdDevVec(v))
	}
}

func TestStatsDegenerate(t *testing.T) {
	if MeanVec(nil) != 0 || VarianceVec(nil) != 0 || VarianceVec([]float64{5}) != 0 {
		t.Fatal("degenerate stats should be zero")
	}
}

func TestMinMax(t *testing.T) {
	lo, hi := MinMaxVec([]float64{3, -1, 7, 2})
	if lo != -1 || hi != 7 {
		t.Fatalf("MinMax = %v,%v", lo, hi)
	}
}

func TestMinMaxPanicsEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MinMaxVec(nil)
}

func TestArgMinMax(t *testing.T) {
	v := []float64{3, -1, 7, 2}
	if ArgMin(v) != 1 || ArgMax(v) != 2 {
		t.Fatalf("ArgMin/ArgMax = %d/%d", ArgMin(v), ArgMax(v))
	}
	if ArgMin(nil) != -1 || ArgMax(nil) != -1 {
		t.Fatal("empty arg ops should return -1")
	}
}

func TestCloneVec(t *testing.T) {
	a := []float64{1, 2}
	b := CloneVec(a)
	b[0] = 9
	if a[0] != 1 {
		t.Fatal("CloneVec aliases input")
	}
}

// Property: Cauchy-Schwarz |a·b| <= |a||b|.
func TestCauchySchwarz(t *testing.T) {
	f := func(a, b [4]float64) bool {
		av, bv := a[:], b[:]
		for _, s := range [][]float64{av, bv} {
			for _, x := range s {
				if math.IsNaN(x) || math.Abs(x) > 1e150 {
					return true // skip inputs that overflow float64
				}
			}
		}
		lhs := math.Abs(Dot(av, bv))
		rhs := math.Sqrt(Dot(av, av)) * math.Sqrt(Dot(bv, bv))
		return lhs <= rhs*(1+1e-12)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: triangle inequality for Dist.
func TestTriangleInequality(t *testing.T) {
	f := func(a, b, c [3]float64) bool {
		av, bv, cv := a[:], b[:], c[:]
		for _, s := range [][]float64{av, bv, cv} {
			for _, x := range s {
				if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e150 {
					return true // skip pathological inputs
				}
			}
		}
		return Dist(av, cv) <= Dist(av, bv)+Dist(bv, cv)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
