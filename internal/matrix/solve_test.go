package matrix

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestSolveLinearExact(t *testing.T) {
	a := FromRows([][]float64{{2, 1}, {1, 3}})
	// x = (1, 2): b = (4, 7).
	x, err := SolveLinear(a, []float64{4, 7})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-1) > 1e-12 || math.Abs(x[1]-2) > 1e-12 {
		t.Fatalf("x = %v", x)
	}
}

func TestSolveLinearNeedsPivoting(t *testing.T) {
	// Zero on the initial diagonal: only solvable with pivoting.
	a := FromRows([][]float64{{0, 1}, {1, 0}})
	x, err := SolveLinear(a, []float64{5, 7})
	if err != nil {
		t.Fatal(err)
	}
	if x[0] != 7 || x[1] != 5 {
		t.Fatalf("x = %v", x)
	}
}

func TestSolveLinearSingular(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := SolveLinear(a, []float64{1, 2}); !errors.Is(err, ErrSingular) {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
}

func TestSolveLinearShapeErrors(t *testing.T) {
	if _, err := SolveLinear(NewDense(2, 3), []float64{1, 2}); err == nil {
		t.Fatal("accepted non-square")
	}
	if _, err := SolveLinear(NewDense(2, 2), []float64{1}); err == nil {
		t.Fatal("accepted rhs mismatch")
	}
}

func TestSolveLinearDoesNotMutate(t *testing.T) {
	a := FromRows([][]float64{{3, 1}, {1, 2}})
	b := []float64{5, 5}
	orig := a.Clone()
	if _, err := SolveLinear(a, b); err != nil {
		t.Fatal(err)
	}
	if !Equal(a, orig, 0) || b[0] != 5 || b[1] != 5 {
		t.Fatal("inputs mutated")
	}
}

func TestSolveNormalEquations(t *testing.T) {
	// Exact line through points: y = 2a - b.
	x := [][]float64{{1, 0}, {0, 1}, {1, 1}, {2, 1}}
	var y []float64
	for _, r := range x {
		y = append(y, 2*r[0]-r[1])
	}
	w, err := SolveNormalEquations(x, y, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(w[0]-2) > 1e-9 || math.Abs(w[1]+1) > 1e-9 {
		t.Fatalf("w = %v", w)
	}
}

func TestSolveNormalEquationsRidge(t *testing.T) {
	// Collinear design: OLS is singular, ridge is not.
	x := [][]float64{{1, 2}, {2, 4}, {3, 6}}
	y := []float64{1, 2, 3}
	if _, err := SolveNormalEquations(x, y, 0); !errors.Is(err, ErrSingular) {
		t.Fatalf("expected singular at λ=0, got %v", err)
	}
	w, err := SolveNormalEquations(x, y, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	// Ridge solution must still fit the data well.
	for i, r := range x {
		pred := w[0]*r[0] + w[1]*r[1]
		if math.Abs(pred-y[i]) > 1e-3 {
			t.Fatalf("ridge fit off at %d: %v vs %v", i, pred, y[i])
		}
	}
}

func TestSolveNormalEquationsErrors(t *testing.T) {
	if _, err := SolveNormalEquations(nil, nil, 0); err == nil {
		t.Fatal("accepted empty")
	}
	if _, err := SolveNormalEquations([][]float64{{1}}, []float64{1, 2}, 0); err == nil {
		t.Fatal("accepted length mismatch")
	}
	if _, err := SolveNormalEquations([][]float64{{1}, {1, 2}}, []float64{1, 2}, 0); err == nil {
		t.Fatal("accepted ragged rows")
	}
	if _, err := SolveNormalEquations([][]float64{{1}}, []float64{1}, -1); err == nil {
		t.Fatal("accepted negative ridge")
	}
}

// Property: for random well-conditioned systems, A·x ≈ b.
func TestSolveLinearResidualProperty(t *testing.T) {
	f := func(seed int64) bool {
		a := randomMatrix(seed, 4, 4)
		// Diagonal dominance guarantees conditioning.
		for i := 0; i < 4; i++ {
			a.Set(i, i, a.At(i, i)+50)
		}
		b := randomMatrix(seed+3, 4, 1).Data()
		x, err := SolveLinear(a, b)
		if err != nil {
			return false
		}
		for i := 0; i < 4; i++ {
			sum := 0.0
			for j := 0; j < 4; j++ {
				sum += a.At(i, j) * x[j]
			}
			if math.Abs(sum-b[i]) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
