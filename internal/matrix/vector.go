package matrix

import "math"

// Vector helpers operating on plain []float64, used by clustering and
// the geometry package where full matrices would be overkill.

// Dot returns the inner product of a and b.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(ErrShape)
	}
	s := 0.0
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// SqDist returns the squared Euclidean distance between a and b.
func SqDist(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(ErrShape)
	}
	s := 0.0
	for i, v := range a {
		d := v - b[i]
		s += d * d
	}
	return s
}

// Dist returns the Euclidean distance between a and b.
func Dist(a, b []float64) float64 { return math.Sqrt(SqDist(a, b)) }

// AxpyVec computes y += alpha * x.
func AxpyVec(y []float64, alpha float64, x []float64) {
	if len(y) != len(x) {
		panic(ErrShape)
	}
	for i, v := range x {
		y[i] += alpha * v
	}
}

// ScaleVec multiplies every element of v by alpha in place.
func ScaleVec(v []float64, alpha float64) {
	for i := range v {
		v[i] *= alpha
	}
}

// SumVec returns the sum of the elements of v.
func SumVec(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x
	}
	return s
}

// MeanVec returns the arithmetic mean of v, or 0 for an empty slice.
func MeanVec(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	return SumVec(v) / float64(len(v))
}

// VarianceVec returns the population variance of v, or 0 when it has
// fewer than two elements.
func VarianceVec(v []float64) float64 {
	if len(v) < 2 {
		return 0
	}
	m := MeanVec(v)
	s := 0.0
	for _, x := range v {
		d := x - m
		s += d * d
	}
	return s / float64(len(v))
}

// StdDevVec returns the population standard deviation of v.
func StdDevVec(v []float64) float64 { return math.Sqrt(VarianceVec(v)) }

// MinMaxVec returns the minimum and maximum of v. It panics on an
// empty slice.
func MinMaxVec(v []float64) (lo, hi float64) {
	if len(v) == 0 {
		panic("matrix: MinMaxVec of empty slice")
	}
	lo, hi = v[0], v[0]
	for _, x := range v[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

// ArgMin returns the index of the smallest element of v, or -1 for an
// empty slice.
func ArgMin(v []float64) int {
	if len(v) == 0 {
		return -1
	}
	best := 0
	for i, x := range v[1:] {
		if x < v[best] {
			best = i + 1
		}
	}
	return best
}

// ArgMax returns the index of the largest element of v, or -1 for an
// empty slice.
func ArgMax(v []float64) int {
	if len(v) == 0 {
		return -1
	}
	best := 0
	for i, x := range v[1:] {
		if x > v[best] {
			best = i + 1
		}
	}
	return best
}

// CloneVec returns a copy of v.
func CloneVec(v []float64) []float64 {
	out := make([]float64, len(v))
	copy(out, v)
	return out
}
