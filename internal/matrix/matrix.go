// Package matrix implements the small dense linear-algebra kernel used
// by the ML and clustering substrates: row-major dense matrices,
// vectors, and the handful of BLAS-like operations back-propagation and
// Lloyd's algorithm need. The package is dependency-free and favours
// clarity plus bounds-checked correctness over vectorized throughput;
// hot loops still avoid per-element interface dispatch and allocation.
package matrix

import (
	"errors"
	"fmt"
	"math"
)

// ErrShape reports an operation on incompatibly shaped operands.
var ErrShape = errors.New("matrix: incompatible shapes")

// Dense is a row-major dense matrix.
type Dense struct {
	rows, cols int
	data       []float64
}

// NewDense returns a rows x cols zero matrix.
func NewDense(rows, cols int) *Dense {
	if rows < 0 || cols < 0 {
		panic("matrix: negative dimension")
	}
	return &Dense{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// NewDenseData wraps data (length rows*cols, row-major) without copying.
func NewDenseData(rows, cols int, data []float64) *Dense {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("matrix: data length %d != %d x %d", len(data), rows, cols))
	}
	return &Dense{rows: rows, cols: cols, data: data}
}

// FromRows builds a matrix from row slices, which must share a length.
func FromRows(rows [][]float64) *Dense {
	if len(rows) == 0 {
		return NewDense(0, 0)
	}
	cols := len(rows[0])
	m := NewDense(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			panic("matrix: ragged rows")
		}
		copy(m.data[i*cols:(i+1)*cols], r)
	}
	return m
}

// Rows returns the row count.
func (m *Dense) Rows() int { return m.rows }

// Cols returns the column count.
func (m *Dense) Cols() int { return m.cols }

// At returns the element at (i, j).
func (m *Dense) At(i, j int) float64 {
	m.check(i, j)
	return m.data[i*m.cols+j]
}

// Set assigns the element at (i, j).
func (m *Dense) Set(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] = v
}

func (m *Dense) check(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("matrix: index (%d,%d) out of range %dx%d", i, j, m.rows, m.cols))
	}
}

// Row returns row i as a slice aliasing the matrix storage.
func (m *Dense) Row(i int) []float64 {
	if i < 0 || i >= m.rows {
		panic("matrix: row out of range")
	}
	return m.data[i*m.cols : (i+1)*m.cols]
}

// Data returns the backing slice (row-major). Mutating it mutates m.
func (m *Dense) Data() []float64 { return m.data }

// Clone returns a deep copy of m.
func (m *Dense) Clone() *Dense {
	out := NewDense(m.rows, m.cols)
	copy(out.data, m.data)
	return out
}

// Fill sets every element to v.
func (m *Dense) Fill(v float64) {
	for i := range m.data {
		m.data[i] = v
	}
}

// Zero sets every element to 0.
func (m *Dense) Zero() { m.Fill(0) }

// T returns the transpose of m as a new matrix.
func (m *Dense) T() *Dense {
	out := NewDense(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		ri := m.data[i*m.cols : (i+1)*m.cols]
		for j, v := range ri {
			out.data[j*m.rows+i] = v
		}
	}
	return out
}

// Mul returns a * b. It panics with ErrShape on dimension mismatch.
func Mul(a, b *Dense) *Dense {
	if a.cols != b.rows {
		panic(ErrShape)
	}
	out := NewDense(a.rows, b.cols)
	for i := 0; i < a.rows; i++ {
		arow := a.data[i*a.cols : (i+1)*a.cols]
		orow := out.data[i*out.cols : (i+1)*out.cols]
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.data[k*b.cols : (k+1)*b.cols]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// MulInto computes dst = a * b, reusing dst's storage. dst must be
// a.rows x b.cols and must not alias a or b.
func MulInto(dst, a, b *Dense) {
	if a.cols != b.rows || dst.rows != a.rows || dst.cols != b.cols {
		panic(ErrShape)
	}
	dst.Zero()
	for i := 0; i < a.rows; i++ {
		arow := a.data[i*a.cols : (i+1)*a.cols]
		orow := dst.data[i*dst.cols : (i+1)*dst.cols]
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.data[k*b.cols : (k+1)*b.cols]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
}

// MulTransA returns aᵀ * b without materializing the transpose.
func MulTransA(a, b *Dense) *Dense {
	out := NewDense(a.cols, b.cols)
	MulTransAInto(out, a, b)
	return out
}

// MulTransAInto computes dst = aᵀ * b, reusing dst's storage. dst must
// be a.cols x b.cols and must not alias a or b. The accumulation order
// is identical to MulTransA, so results are bit-exact across the two.
func MulTransAInto(dst, a, b *Dense) {
	if a.rows != b.rows || dst.rows != a.cols || dst.cols != b.cols {
		panic(ErrShape)
	}
	dst.Zero()
	for r := 0; r < a.rows; r++ {
		arow := a.data[r*a.cols : (r+1)*a.cols]
		brow := b.data[r*b.cols : (r+1)*b.cols]
		for i, av := range arow {
			if av == 0 {
				continue
			}
			orow := dst.data[i*dst.cols : (i+1)*dst.cols]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
}

// MulTransB returns a * bᵀ without materializing the transpose.
func MulTransB(a, b *Dense) *Dense {
	out := NewDense(a.rows, b.rows)
	MulTransBInto(out, a, b)
	return out
}

// MulTransBInto computes dst = a * bᵀ, reusing dst's storage. dst must
// be a.rows x b.rows and must not alias a or b. The accumulation order
// is identical to MulTransB, so results are bit-exact across the two.
func MulTransBInto(dst, a, b *Dense) {
	if a.cols != b.cols || dst.rows != a.rows || dst.cols != b.rows {
		panic(ErrShape)
	}
	for i := 0; i < a.rows; i++ {
		arow := a.data[i*a.cols : (i+1)*a.cols]
		orow := dst.data[i*dst.cols : (i+1)*dst.cols]
		for j := 0; j < b.rows; j++ {
			brow := b.data[j*b.cols : (j+1)*b.cols]
			sum := 0.0
			for k, av := range arow {
				sum += av * brow[k]
			}
			orow[j] = sum
		}
	}
}

// Add returns a + b element-wise.
func Add(a, b *Dense) *Dense {
	sameShape(a, b)
	out := a.Clone()
	for i, v := range b.data {
		out.data[i] += v
	}
	return out
}

// Sub returns a - b element-wise.
func Sub(a, b *Dense) *Dense {
	sameShape(a, b)
	out := a.Clone()
	for i, v := range b.data {
		out.data[i] -= v
	}
	return out
}

// AddInPlace adds b into a.
func AddInPlace(a, b *Dense) {
	sameShape(a, b)
	for i, v := range b.data {
		a.data[i] += v
	}
}

// SubInPlace subtracts b from a.
func SubInPlace(a, b *Dense) {
	sameShape(a, b)
	for i, v := range b.data {
		a.data[i] -= v
	}
}

// AxpyInPlace computes a += alpha * b.
func AxpyInPlace(a *Dense, alpha float64, b *Dense) {
	sameShape(a, b)
	for i, v := range b.data {
		a.data[i] += alpha * v
	}
}

// Scale multiplies every element of m by alpha in place.
func (m *Dense) Scale(alpha float64) {
	for i := range m.data {
		m.data[i] *= alpha
	}
}

// Apply replaces every element x with f(x) in place.
func (m *Dense) Apply(f func(float64) float64) {
	for i, v := range m.data {
		m.data[i] = f(v)
	}
}

// Hadamard returns the element-wise product a ⊙ b.
func Hadamard(a, b *Dense) *Dense {
	sameShape(a, b)
	out := a.Clone()
	for i, v := range b.data {
		out.data[i] *= v
	}
	return out
}

// AddRowVector adds vector v (length cols) to every row of m in place.
func (m *Dense) AddRowVector(v []float64) {
	if len(v) != m.cols {
		panic(ErrShape)
	}
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		for j := range row {
			row[j] += v[j]
		}
	}
}

// ColSums returns the per-column sum of m.
func (m *Dense) ColSums() []float64 {
	out := make([]float64, m.cols)
	m.ColSumsInto(out)
	return out
}

// ColSumsInto writes the per-column sum of m into out, which must have
// length Cols(). Summation order matches ColSums bit-exactly.
func (m *Dense) ColSumsInto(out []float64) {
	if len(out) != m.cols {
		panic(ErrShape)
	}
	for j := range out {
		out[j] = 0
	}
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		for j, v := range row {
			out[j] += v
		}
	}
}

// Norm returns the Frobenius norm of m.
func (m *Dense) Norm() float64 {
	s := 0.0
	for _, v := range m.data {
		s += v * v
	}
	return math.Sqrt(s)
}

// MaxAbs returns the largest absolute element value, or 0 if empty.
func (m *Dense) MaxAbs() float64 {
	mx := 0.0
	for _, v := range m.data {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// Equal reports whether a and b have identical shape and all elements
// within tol of each other.
func Equal(a, b *Dense, tol float64) bool {
	if a.rows != b.rows || a.cols != b.cols {
		return false
	}
	for i, v := range a.data {
		if math.Abs(v-b.data[i]) > tol {
			return false
		}
	}
	return true
}

func sameShape(a, b *Dense) {
	if a.rows != b.rows || a.cols != b.cols {
		panic(ErrShape)
	}
}

// String renders the matrix for debugging.
func (m *Dense) String() string {
	s := fmt.Sprintf("Dense(%dx%d)[", m.rows, m.cols)
	for i := 0; i < m.rows; i++ {
		if i > 0 {
			s += "; "
		}
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				s += " "
			}
			s += fmt.Sprintf("%.4g", m.At(i, j))
		}
	}
	return s + "]"
}
