package telemetry

import (
	"bytes"
	"errors"
	"strings"
	"sync"
	"testing"
)

func TestTracerSpans(t *testing.T) {
	tr := NewTracer(nil)
	root := tr.StartTrace("query")
	root.SetAttr("query", "q-1")
	child := root.Child("selection")
	child.End(nil)
	failing := root.Child("train")
	failing.SetAttr("node", "node-2")
	failing.End(errors.New("boom"))
	root.End(nil)

	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("%d spans, want 3", len(spans))
	}
	traceID := spans[0].TraceID
	if traceID == "" {
		t.Fatal("empty trace id")
	}
	for _, s := range spans {
		if s.TraceID != traceID {
			t.Fatalf("span %s has trace %s, want %s", s.Name, s.TraceID, traceID)
		}
		if s.SpanID == "" {
			t.Fatalf("span %s has no span id", s.Name)
		}
		if s.End.Before(s.Start) {
			t.Fatalf("span %s ends before it starts", s.Name)
		}
	}
	// Children finish first; root is last.
	if spans[2].Name != "query" || spans[2].ParentID != "" {
		t.Fatalf("root span = %+v", spans[2])
	}
	if spans[0].ParentID != spans[2].SpanID || spans[1].ParentID != spans[2].SpanID {
		t.Fatal("children do not point at the root span")
	}
	if spans[1].Error != "boom" || spans[1].Attrs["node"] != "node-2" {
		t.Fatalf("failing span = %+v", spans[1])
	}
}

func TestTracerNilSafe(t *testing.T) {
	var tr *Tracer
	sp := tr.StartTrace("noop")
	if sp != nil {
		t.Fatal("nil tracer returned a span")
	}
	// Every method on a nil handle must be safe.
	sp.SetAttr("k", "v")
	child := sp.Child("x")
	child.End(nil)
	sp.End(errors.New("ignored"))
	if sp.TraceID() != "" || sp.SpanID() != "" {
		t.Fatal("nil span has ids")
	}
	if tr.Spans() != nil {
		t.Fatal("nil tracer has spans")
	}
	tr.Reset()
	tr.SetRetention(5)
}

func TestTracerJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	root := tr.StartTrace("query")
	root.Child("selection").End(nil)
	root.End(nil)

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("JSONL has %d lines, want 2", len(lines))
	}
	spans, err := ReadJSONL(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 2 || spans[0].Name != "selection" || spans[1].Name != "query" {
		t.Fatalf("parsed spans %+v", spans)
	}
	if spans[0].TraceID != spans[1].TraceID {
		t.Fatal("JSONL round trip lost the shared trace id")
	}

	// WriteJSONL re-export matches the streamed form.
	var again bytes.Buffer
	if err := tr.WriteJSONL(&again); err != nil {
		t.Fatal(err)
	}
	reparsed, err := ReadJSONL(&again)
	if err != nil || len(reparsed) != 2 {
		t.Fatalf("re-export parse: %v (%d spans)", err, len(reparsed))
	}
}

func TestTracerEndIdempotent(t *testing.T) {
	tr := NewTracer(nil)
	sp := tr.StartTrace("once")
	sp.End(nil)
	sp.End(nil)
	if n := len(tr.Spans()); n != 1 {
		t.Fatalf("%d spans after double End", n)
	}
}

func TestTracerRetention(t *testing.T) {
	tr := NewTracer(nil)
	tr.SetRetention(3)
	for i := 0; i < 10; i++ {
		tr.StartTrace("t").End(nil)
	}
	if n := len(tr.Spans()); n != 3 {
		t.Fatalf("retained %d spans, want 3", n)
	}
}

func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer(nil)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				root := tr.StartTrace("q")
				c := root.Child("work")
				c.SetAttr("i", "x")
				c.End(nil)
				root.End(nil)
			}
		}()
	}
	wg.Wait()
	if n := len(tr.Spans()); n != 8*200*2 {
		t.Fatalf("%d spans, want %d", n, 8*200*2)
	}
}

func TestDefaultTracerInstall(t *testing.T) {
	old := DefaultTracer()
	defer SetDefaultTracer(old)
	tr := NewTracer(nil)
	SetDefaultTracer(tr)
	if DefaultTracer() != tr {
		t.Fatal("default tracer not installed")
	}
}

func TestNewIDUnique(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 1000; i++ {
		id := newID()
		if len(id) != 16 {
			t.Fatalf("id %q has length %d", id, len(id))
		}
		if seen[id] {
			t.Fatalf("duplicate id %q", id)
		}
		seen[id] = true
	}
}

func TestFormatKV(t *testing.T) {
	got := FormatKV("event", "rpc", "type", "train", "err", "bad thing", "n", 3)
	want := `event=rpc type=train err="bad thing" n=3`
	if got != want {
		t.Fatalf("FormatKV = %q, want %q", got, want)
	}
	if got := FormatKV("event", "x", "orphan"); got != `event=x msg=orphan` {
		t.Fatalf("odd-arity FormatKV = %q", got)
	}
}
