package telemetry

import (
	"bytes"
	"errors"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTracerSpans(t *testing.T) {
	tr := NewTracer(nil)
	root := tr.StartTrace("query")
	root.SetAttr("query", "q-1")
	child := root.Child("selection")
	child.End(nil)
	failing := root.Child("train")
	failing.SetAttr("node", "node-2")
	failing.End(errors.New("boom"))
	root.End(nil)

	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("%d spans, want 3", len(spans))
	}
	traceID := spans[0].TraceID
	if traceID == "" {
		t.Fatal("empty trace id")
	}
	for _, s := range spans {
		if s.TraceID != traceID {
			t.Fatalf("span %s has trace %s, want %s", s.Name, s.TraceID, traceID)
		}
		if s.SpanID == "" {
			t.Fatalf("span %s has no span id", s.Name)
		}
		if s.End.Before(s.Start) {
			t.Fatalf("span %s ends before it starts", s.Name)
		}
	}
	// Children finish first; root is last.
	if spans[2].Name != "query" || spans[2].ParentID != "" {
		t.Fatalf("root span = %+v", spans[2])
	}
	if spans[0].ParentID != spans[2].SpanID || spans[1].ParentID != spans[2].SpanID {
		t.Fatal("children do not point at the root span")
	}
	if spans[1].Error != "boom" || spans[1].Attrs["node"] != "node-2" {
		t.Fatalf("failing span = %+v", spans[1])
	}
}

func TestTracerNilSafe(t *testing.T) {
	var tr *Tracer
	sp := tr.StartTrace("noop")
	if sp != nil {
		t.Fatal("nil tracer returned a span")
	}
	// Every method on a nil handle must be safe.
	sp.SetAttr("k", "v")
	child := sp.Child("x")
	child.End(nil)
	sp.End(errors.New("ignored"))
	if sp.TraceID() != "" || sp.SpanID() != "" {
		t.Fatal("nil span has ids")
	}
	if tr.Spans() != nil {
		t.Fatal("nil tracer has spans")
	}
	tr.Reset()
	tr.SetRetention(5)
}

func TestTracerJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	root := tr.StartTrace("query")
	root.Child("selection").End(nil)
	root.End(nil)
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("JSONL has %d lines, want 2", len(lines))
	}
	spans, err := ReadJSONL(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 2 || spans[0].Name != "selection" || spans[1].Name != "query" {
		t.Fatalf("parsed spans %+v", spans)
	}
	if spans[0].TraceID != spans[1].TraceID {
		t.Fatal("JSONL round trip lost the shared trace id")
	}

	// WriteJSONL re-export matches the streamed form.
	var again bytes.Buffer
	if err := tr.WriteJSONL(&again); err != nil {
		t.Fatal(err)
	}
	reparsed, err := ReadJSONL(&again)
	if err != nil || len(reparsed) != 2 {
		t.Fatalf("re-export parse: %v (%d spans)", err, len(reparsed))
	}
}

func TestTracerEndIdempotent(t *testing.T) {
	tr := NewTracer(nil)
	sp := tr.StartTrace("once")
	sp.End(nil)
	sp.End(nil)
	if n := len(tr.Spans()); n != 1 {
		t.Fatalf("%d spans after double End", n)
	}
}

func TestTracerRetention(t *testing.T) {
	tr := NewTracer(nil)
	tr.SetRetention(3)
	for i := 0; i < 10; i++ {
		tr.StartTrace("t").End(nil)
	}
	if n := len(tr.Spans()); n != 3 {
		t.Fatalf("retained %d spans, want 3", n)
	}
}

// TestTracerRetentionDropsOldestConcurrent verifies the retention trim
// keeps a suffix of the record order even when spans End concurrently:
// per goroutine, the retained indices must be a contiguous run ending
// at that goroutine's last span (an earlier span surviving a later one
// would mean the trim dropped from the middle).
func TestTracerRetentionDropsOldestConcurrent(t *testing.T) {
	const (
		workers = 8
		each    = 200
		keep    = 50
	)
	tr := NewTracer(nil)
	tr.SetRetention(keep)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				sp := tr.StartTrace("t")
				sp.SetAttr("worker", strconv.Itoa(w))
				sp.SetAttr("seq", strconv.Itoa(i))
				sp.End(nil)
			}
		}(w)
	}
	wg.Wait()

	spans := tr.Spans()
	if len(spans) != keep {
		t.Fatalf("retained %d spans, want %d", len(spans), keep)
	}
	perWorker := map[string][]int{}
	for _, s := range spans {
		seq, err := strconv.Atoi(s.Attrs["seq"])
		if err != nil {
			t.Fatalf("span missing seq attr: %+v", s)
		}
		perWorker[s.Attrs["worker"]] = append(perWorker[s.Attrs["worker"]], seq)
	}
	for w, seqs := range perWorker {
		for i := 1; i < len(seqs); i++ {
			if seqs[i] != seqs[i-1]+1 {
				t.Fatalf("worker %s retained non-contiguous seqs %v", w, seqs)
			}
		}
		if last := seqs[len(seqs)-1]; last != each-1 {
			t.Fatalf("worker %s's retained run ends at %d, want %d (oldest-first drop)", w, last, each-1)
		}
	}
}

func TestTracerRecordSpan(t *testing.T) {
	tr := NewTracer(nil)
	start := time.Now().Add(-10 * time.Millisecond)
	tr.RecordSpan(Span{TraceID: "t", Name: "node.fit", Start: start, End: start.Add(4 * time.Millisecond)})
	spans := tr.Spans()
	if len(spans) != 1 {
		t.Fatalf("%d spans", len(spans))
	}
	if spans[0].SpanID == "" {
		t.Fatal("RecordSpan did not mint a span id")
	}
	if d := spans[0].DurationMS; d < 3.9 || d > 4.1 {
		t.Fatalf("derived duration %v, want ~4ms", d)
	}
	var nilTr *Tracer
	nilTr.RecordSpan(Span{TraceID: "x", Name: "noop"}) // must not panic
}

func TestTracerTraceSpans(t *testing.T) {
	tr := NewTracer(nil)
	a := tr.StartTrace("qa")
	a.Child("selection").End(nil)
	a.End(nil)
	b := tr.StartTrace("qb")
	b.End(nil)

	got := tr.TraceSpans(a.TraceID())
	if len(got) != 2 {
		t.Fatalf("trace %s has %d spans, want 2", a.TraceID(), len(got))
	}
	if got[0].Name != "selection" || got[1].Name != "qa" {
		t.Fatalf("completion order lost: %v, %v", got[0].Name, got[1].Name)
	}
	if tr.TraceSpans("") != nil || tr.TraceSpans("missing") != nil {
		t.Fatal("unknown trace returned spans")
	}
}

// TestTracerFlushBuffering: the JSONL sink is buffered, so spans are
// not visible downstream until Flush.
func TestTracerFlushBuffering(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	tr.StartTrace("q").End(nil)
	if buf.Len() != 0 {
		t.Fatalf("sink has %d bytes before Flush (unbuffered write?)", buf.Len())
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("sink empty after Flush")
	}
	spans, err := ReadJSONL(&buf)
	if err != nil || len(spans) != 1 {
		t.Fatalf("flushed stream parse: %v (%d spans)", err, len(spans))
	}
}

func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer(nil)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				root := tr.StartTrace("q")
				c := root.Child("work")
				c.SetAttr("i", "x")
				c.End(nil)
				root.End(nil)
			}
		}()
	}
	wg.Wait()
	if n := len(tr.Spans()); n != 8*200*2 {
		t.Fatalf("%d spans, want %d", n, 8*200*2)
	}
}

func TestDefaultTracerInstall(t *testing.T) {
	old := DefaultTracer()
	defer SetDefaultTracer(old)
	tr := NewTracer(nil)
	SetDefaultTracer(tr)
	if DefaultTracer() != tr {
		t.Fatal("default tracer not installed")
	}
}

func TestNewIDUnique(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 1000; i++ {
		id := newID()
		if len(id) != 16 {
			t.Fatalf("id %q has length %d", id, len(id))
		}
		if seen[id] {
			t.Fatalf("duplicate id %q", id)
		}
		seen[id] = true
	}
}

func TestFormatKV(t *testing.T) {
	got := FormatKV("event", "rpc", "type", "train", "err", "bad thing", "n", 3)
	want := `event=rpc type=train err="bad thing" n=3`
	if got != want {
		t.Fatalf("FormatKV = %q, want %q", got, want)
	}
	if got := FormatKV("event", "x", "orphan"); got != `event=x msg=orphan` {
		t.Fatalf("odd-arity FormatKV = %q", got)
	}
}
