package telemetry

import (
	"bufio"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Per-query tracing. The leader mints one trace ID per query and opens
// spans for the phases of its execution (selection, per-node train
// rounds, aggregation). Span contexts propagate across the transport
// wire envelope so a qensd daemon's logs are attributable to the
// originating query, and finished spans export as JSONL — one JSON
// object per line — for the experiment harness to consume.

// Span is one finished timed operation within a trace.
type Span struct {
	TraceID  string    `json:"trace_id"`
	SpanID   string    `json:"span_id"`
	ParentID string    `json:"parent_id,omitempty"`
	Name     string    `json:"name"`
	Start    time.Time `json:"start"`
	End      time.Time `json:"end"`
	// DurationMS duplicates End-Start in milliseconds for direct
	// consumption by plotting/report tooling.
	DurationMS float64           `json:"duration_ms"`
	Attrs      map[string]string `json:"attrs,omitempty"`
	Error      string            `json:"error,omitempty"`
}

// Tracer collects finished spans and optionally streams them as JSONL
// to a writer. A nil *Tracer is a valid no-op tracer: every method on
// it (and on the span handles it returns) is safe to call, so
// instrumented code never branches on "is tracing on".
type Tracer struct {
	mu    sync.Mutex
	bw    *bufio.Writer // buffers the JSONL sink; nil when w is nil
	enc   *json.Encoder // persistent encoder over bw (one per tracer, not per span)
	spans []Span        // finished spans retained in memory
	max   int           // retention cap (0 = unlimited)
}

// NewTracer returns a tracer streaming finished spans to w as JSONL
// (w may be nil to only retain them in memory). The sink is buffered:
// call Flush (or WriteJSONL, which flushes) before handing the
// underlying writer to a reader or closing it.
func NewTracer(w io.Writer) *Tracer {
	t := &Tracer{}
	if w != nil {
		t.bw = bufio.NewWriter(w)
		t.enc = json.NewEncoder(t.bw)
	}
	return t
}

// SetRetention caps the number of finished spans kept in memory
// (oldest dropped first). JSONL streaming is unaffected.
func (t *Tracer) SetRetention(n int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.max = n
}

// defaultTracer is the process-wide tracer; nil (no-op) until a main
// installs one via SetDefaultTracer.
var (
	defaultTracerMu sync.RWMutex
	defaultTracer   *Tracer
)

// DefaultTracer returns the process-wide tracer (possibly nil, which
// is a valid no-op tracer).
func DefaultTracer() *Tracer {
	defaultTracerMu.RLock()
	defer defaultTracerMu.RUnlock()
	return defaultTracer
}

// SetDefaultTracer installs the process-wide tracer.
func SetDefaultTracer(t *Tracer) {
	defaultTracerMu.Lock()
	defer defaultTracerMu.Unlock()
	defaultTracer = t
}

// newID returns a 16-hex-char random identifier.
func newID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failure is effectively impossible; fall back
		// to a timestamp so tracing degrades instead of panicking.
		return hex.EncodeToString([]byte(time.Now().Format("150405.000")))[:16]
	}
	return hex.EncodeToString(b[:])
}

// SpanHandle is an open span. End finishes it; Child opens a sub-span
// sharing the trace ID. A nil handle is a valid no-op.
type SpanHandle struct {
	tracer  *Tracer
	traceID string
	spanID  string
	parent  string
	name    string
	start   time.Time

	mu    sync.Mutex
	attrs map[string]string
	done  bool
}

// StartTrace mints a fresh trace ID and opens its root span.
func (t *Tracer) StartTrace(name string) *SpanHandle {
	if t == nil {
		return nil
	}
	return &SpanHandle{
		tracer:  t,
		traceID: newID(),
		spanID:  newID(),
		name:    name,
		start:   time.Now(),
	}
}

// Child opens a sub-span under sp sharing its trace ID.
func (sp *SpanHandle) Child(name string) *SpanHandle {
	if sp == nil {
		return nil
	}
	return &SpanHandle{
		tracer:  sp.tracer,
		traceID: sp.traceID,
		spanID:  newID(),
		parent:  sp.spanID,
		name:    name,
		start:   time.Now(),
	}
}

// TraceID returns the span's trace identifier ("" on a nil handle).
func (sp *SpanHandle) TraceID() string {
	if sp == nil {
		return ""
	}
	return sp.traceID
}

// SpanID returns the span's own identifier ("" on a nil handle).
func (sp *SpanHandle) SpanID() string {
	if sp == nil {
		return ""
	}
	return sp.spanID
}

// SetAttr attaches a key=value attribute to the span.
func (sp *SpanHandle) SetAttr(key, value string) {
	if sp == nil {
		return
	}
	sp.mu.Lock()
	defer sp.mu.Unlock()
	if sp.attrs == nil {
		sp.attrs = map[string]string{}
	}
	sp.attrs[key] = value
}

// End finishes the span, recording err (may be nil) and handing the
// finished span to the tracer. End is idempotent.
func (sp *SpanHandle) End(err error) {
	if sp == nil {
		return
	}
	sp.mu.Lock()
	if sp.done {
		sp.mu.Unlock()
		return
	}
	sp.done = true
	end := time.Now()
	span := Span{
		TraceID:    sp.traceID,
		SpanID:     sp.spanID,
		ParentID:   sp.parent,
		Name:       sp.name,
		Start:      sp.start,
		End:        end,
		DurationMS: float64(end.Sub(sp.start)) / float64(time.Millisecond),
		Attrs:      sp.attrs,
	}
	if err != nil {
		span.Error = err.Error()
	}
	sp.mu.Unlock()
	sp.tracer.record(span)
}

// record stores (and optionally streams) one finished span.
func (t *Tracer) record(span Span) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.spans = append(t.spans, span)
	if t.max > 0 && len(t.spans) > t.max {
		t.spans = t.spans[len(t.spans)-t.max:]
	}
	if t.enc != nil {
		_ = t.enc.Encode(span) // best effort: a broken sink must not fail queries
	}
}

// RecordSpan records an externally finished span — typically one
// shipped back from a remote process so the leader's tracer holds the
// complete cross-process tree. A missing SpanID is minted, and a zero
// DurationMS is derived from End-Start. No-op on a nil tracer.
func (t *Tracer) RecordSpan(span Span) {
	if t == nil {
		return
	}
	if span.SpanID == "" {
		span.SpanID = newID()
	}
	if span.DurationMS == 0 && span.End.After(span.Start) {
		span.DurationMS = float64(span.End.Sub(span.Start)) / float64(time.Millisecond)
	}
	t.record(span)
}

// Flush forces buffered JSONL output through to the underlying sink.
// Call before closing the sink or handing it to a reader; spans
// recorded afterwards buffer again. No-op on a nil tracer or a
// memory-only one.
func (t *Tracer) Flush() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.bw == nil {
		return nil
	}
	return t.bw.Flush()
}

// Spans returns a copy of the finished spans (nil on a nil tracer).
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, len(t.spans))
	copy(out, t.spans)
	return out
}

// TraceSpans returns the retained spans belonging to one trace, in
// completion order (nil on a nil tracer or an unknown trace).
func (t *Tracer) TraceSpans(traceID string) []Span {
	if t == nil || traceID == "" {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []Span
	for _, s := range t.spans {
		if s.TraceID == traceID {
			out = append(out, s)
		}
	}
	return out
}

// Reset drops the retained spans (the JSONL sink is untouched).
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.spans = nil
}

// WriteJSONL exports every retained span to w, one JSON object per
// line — the same schema the streaming sink emits. It also flushes the
// tracer's own buffered sink, so a drain that exports retained spans
// leaves the streaming file complete too.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	if err := t.Flush(); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	for _, span := range t.Spans() {
		if err := enc.Encode(span); err != nil {
			return err
		}
	}
	return nil
}

// ReadJSONL parses a JSONL span stream (blank lines skipped).
func ReadJSONL(r io.Reader) ([]Span, error) {
	dec := json.NewDecoder(r)
	var out []Span
	for {
		var s Span
		if err := dec.Decode(&s); err != nil {
			if err == io.EOF {
				return out, nil
			}
			return nil, err
		}
		out = append(out, s)
	}
}
