package telemetry

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Per-query tracing. The leader mints one trace ID per query and opens
// spans for the phases of its execution (selection, per-node train
// rounds, aggregation). Span contexts propagate across the transport
// wire envelope so a qensd daemon's logs are attributable to the
// originating query, and finished spans export as JSONL — one JSON
// object per line — for the experiment harness to consume.

// Span is one finished timed operation within a trace.
type Span struct {
	TraceID  string    `json:"trace_id"`
	SpanID   string    `json:"span_id"`
	ParentID string    `json:"parent_id,omitempty"`
	Name     string    `json:"name"`
	Start    time.Time `json:"start"`
	End      time.Time `json:"end"`
	// DurationMS duplicates End-Start in milliseconds for direct
	// consumption by plotting/report tooling.
	DurationMS float64           `json:"duration_ms"`
	Attrs      map[string]string `json:"attrs,omitempty"`
	Error      string            `json:"error,omitempty"`
}

// Tracer collects finished spans and optionally streams them as JSONL
// to a writer. A nil *Tracer is a valid no-op tracer: every method on
// it (and on the span handles it returns) is safe to call, so
// instrumented code never branches on "is tracing on".
type Tracer struct {
	mu    sync.Mutex
	w     io.Writer // optional JSONL sink; may be nil
	spans []Span    // finished spans retained in memory
	max   int       // retention cap (0 = unlimited)
}

// NewTracer returns a tracer streaming finished spans to w as JSONL
// (w may be nil to only retain them in memory).
func NewTracer(w io.Writer) *Tracer { return &Tracer{w: w} }

// SetRetention caps the number of finished spans kept in memory
// (oldest dropped first). JSONL streaming is unaffected.
func (t *Tracer) SetRetention(n int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.max = n
}

// defaultTracer is the process-wide tracer; nil (no-op) until a main
// installs one via SetDefaultTracer.
var (
	defaultTracerMu sync.RWMutex
	defaultTracer   *Tracer
)

// DefaultTracer returns the process-wide tracer (possibly nil, which
// is a valid no-op tracer).
func DefaultTracer() *Tracer {
	defaultTracerMu.RLock()
	defer defaultTracerMu.RUnlock()
	return defaultTracer
}

// SetDefaultTracer installs the process-wide tracer.
func SetDefaultTracer(t *Tracer) {
	defaultTracerMu.Lock()
	defer defaultTracerMu.Unlock()
	defaultTracer = t
}

// newID returns a 16-hex-char random identifier.
func newID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failure is effectively impossible; fall back
		// to a timestamp so tracing degrades instead of panicking.
		return hex.EncodeToString([]byte(time.Now().Format("150405.000")))[:16]
	}
	return hex.EncodeToString(b[:])
}

// SpanHandle is an open span. End finishes it; Child opens a sub-span
// sharing the trace ID. A nil handle is a valid no-op.
type SpanHandle struct {
	tracer  *Tracer
	traceID string
	spanID  string
	parent  string
	name    string
	start   time.Time

	mu    sync.Mutex
	attrs map[string]string
	done  bool
}

// StartTrace mints a fresh trace ID and opens its root span.
func (t *Tracer) StartTrace(name string) *SpanHandle {
	if t == nil {
		return nil
	}
	return &SpanHandle{
		tracer:  t,
		traceID: newID(),
		spanID:  newID(),
		name:    name,
		start:   time.Now(),
	}
}

// Child opens a sub-span under sp sharing its trace ID.
func (sp *SpanHandle) Child(name string) *SpanHandle {
	if sp == nil {
		return nil
	}
	return &SpanHandle{
		tracer:  sp.tracer,
		traceID: sp.traceID,
		spanID:  newID(),
		parent:  sp.spanID,
		name:    name,
		start:   time.Now(),
	}
}

// TraceID returns the span's trace identifier ("" on a nil handle).
func (sp *SpanHandle) TraceID() string {
	if sp == nil {
		return ""
	}
	return sp.traceID
}

// SpanID returns the span's own identifier ("" on a nil handle).
func (sp *SpanHandle) SpanID() string {
	if sp == nil {
		return ""
	}
	return sp.spanID
}

// SetAttr attaches a key=value attribute to the span.
func (sp *SpanHandle) SetAttr(key, value string) {
	if sp == nil {
		return
	}
	sp.mu.Lock()
	defer sp.mu.Unlock()
	if sp.attrs == nil {
		sp.attrs = map[string]string{}
	}
	sp.attrs[key] = value
}

// End finishes the span, recording err (may be nil) and handing the
// finished span to the tracer. End is idempotent.
func (sp *SpanHandle) End(err error) {
	if sp == nil {
		return
	}
	sp.mu.Lock()
	if sp.done {
		sp.mu.Unlock()
		return
	}
	sp.done = true
	end := time.Now()
	span := Span{
		TraceID:    sp.traceID,
		SpanID:     sp.spanID,
		ParentID:   sp.parent,
		Name:       sp.name,
		Start:      sp.start,
		End:        end,
		DurationMS: float64(end.Sub(sp.start)) / float64(time.Millisecond),
		Attrs:      sp.attrs,
	}
	if err != nil {
		span.Error = err.Error()
	}
	sp.mu.Unlock()
	sp.tracer.record(span)
}

// record stores (and optionally streams) one finished span.
func (t *Tracer) record(span Span) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.spans = append(t.spans, span)
	if t.max > 0 && len(t.spans) > t.max {
		t.spans = t.spans[len(t.spans)-t.max:]
	}
	if t.w != nil {
		enc := json.NewEncoder(t.w)
		_ = enc.Encode(span) // best effort: a broken sink must not fail queries
	}
}

// Spans returns a copy of the finished spans (nil on a nil tracer).
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, len(t.spans))
	copy(out, t.spans)
	return out
}

// Reset drops the retained spans (the JSONL sink is untouched).
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.spans = nil
}

// WriteJSONL exports every retained span to w, one JSON object per
// line — the same schema the streaming sink emits.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	for _, span := range t.Spans() {
		if err := json.NewEncoder(w).Encode(span); err != nil {
			return err
		}
	}
	return nil
}

// ReadJSONL parses a JSONL span stream (blank lines skipped).
func ReadJSONL(r io.Reader) ([]Span, error) {
	dec := json.NewDecoder(r)
	var out []Span
	for {
		var s Span
		if err := dec.Decode(&s); err != nil {
			if err == io.EOF {
				return out, nil
			}
			return nil, err
		}
		out = append(out, s)
	}
}
