// Package telemetry provides the lightweight counters and timers the
// experiment harness uses to account for training time, data volumes
// and bytes moved — the quantities behind the paper's Figs. 8 and 9.
package telemetry

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Collector accumulates named counters and durations. It is safe for
// concurrent use; the zero value is ready.
type Collector struct {
	mu        sync.Mutex
	counters  map[string]int64
	durations map[string]time.Duration
}

// Add increments a counter.
func (c *Collector) Add(name string, delta int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.counters == nil {
		c.counters = map[string]int64{}
	}
	c.counters[name] += delta
}

// AddDuration accumulates elapsed time under a name.
func (c *Collector) AddDuration(name string, d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.durations == nil {
		c.durations = map[string]time.Duration{}
	}
	c.durations[name] += d
}

// Time starts a timer; calling the returned stop function accumulates
// the elapsed time under name.
func (c *Collector) Time(name string) (stop func()) {
	start := time.Now()
	return func() { c.AddDuration(name, time.Since(start)) }
}

// Counter returns the current value of a counter.
func (c *Collector) Counter(name string) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.counters[name]
}

// Duration returns the accumulated duration under a name.
func (c *Collector) Duration(name string) time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.durations[name]
}

// Reset clears all accumulated values.
func (c *Collector) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.counters = nil
	c.durations = nil
}

// Snapshot returns copies of both maps.
func (c *Collector) Snapshot() (counters map[string]int64, durations map[string]time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	counters = make(map[string]int64, len(c.counters))
	for k, v := range c.counters {
		counters[k] = v
	}
	durations = make(map[string]time.Duration, len(c.durations))
	for k, v := range c.durations {
		durations[k] = v
	}
	return counters, durations
}

// String renders a sorted, human-readable summary.
func (c *Collector) String() string {
	counters, durations := c.Snapshot()
	var b strings.Builder
	keys := make([]string, 0, len(counters))
	for k := range counters {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%d ", k, counters[k])
	}
	keys = keys[:0]
	for k := range durations {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%s ", k, durations[k])
	}
	return strings.TrimSpace(b.String())
}
