package telemetry

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// HTTP observability sidecar: an opt-in stdlib net/http server
// exposing the process's metrics, health and profiling surface.
//
//	/metrics       Prometheus text exposition of a Registry
//	/healthz       JSON health document (uptime plus caller fields)
//	/debug/pprof/  the standard net/http/pprof handlers
//
// Both cmd/qensd (-metrics-addr) and cmd/qens (-metrics-addr) mount
// it; it binds its own listener so the federation's TCP protocol port
// stays untouched.

// HealthFunc supplies the dynamic portion of the /healthz document
// (e.g. last-round age, shard size, K). It may be nil.
type HealthFunc func() map[string]any

// HTTPServer is a running observability sidecar.
type HTTPServer struct {
	ln    net.Listener
	srv   *http.Server
	start time.Time
}

// NewHTTPHandler builds the sidecar's mux without binding a listener
// (tests drive it through httptest).
func NewHTTPHandler(reg *Registry, health HealthFunc, start time.Time) http.Handler {
	if reg == nil {
		reg = Default()
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := reg.WritePrometheus(w); err != nil {
			// Headers already sent; nothing recoverable.
			return
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		doc := map[string]any{
			"status":   "ok",
			"uptime_s": time.Since(start).Seconds(),
		}
		if health != nil {
			for k, v := range health() {
				doc[k] = v
			}
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(doc)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// ServeHTTP starts the observability sidecar on addr (e.g. ":9090").
// reg may be nil for the process default registry; health may be nil.
func ServeHTTP(addr string, reg *Registry, health HealthFunc) (*HTTPServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	start := time.Now()
	s := &HTTPServer{
		ln:    ln,
		start: start,
		srv: &http.Server{
			Handler:           NewHTTPHandler(reg, health, start),
			ReadHeaderTimeout: 5 * time.Second,
		},
	}
	go func() { _ = s.srv.Serve(ln) }() // Serve returns ErrServerClosed on Close
	return s, nil
}

// Addr returns the sidecar's bound address.
func (s *HTTPServer) Addr() string { return s.ln.Addr().String() }

// Close stops the sidecar.
func (s *HTTPServer) Close() error { return s.srv.Close() }
