package telemetry

import (
	"math"
	"reflect"
	"testing"
	"time"
)

var asmBase = time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)

// mkspan builds a test span on the shared base clock; bounds are
// offsets in milliseconds.
func mkspan(trace, id, parent, name string, startMS, endMS int, attrs map[string]string) Span {
	start := asmBase.Add(time.Duration(startMS) * time.Millisecond)
	end := asmBase.Add(time.Duration(endMS) * time.Millisecond)
	return Span{
		TraceID: trace, SpanID: id, ParentID: parent, Name: name,
		Start: start, End: end,
		DurationMS: float64(endMS - startMS),
		Attrs:      attrs,
	}
}

// queryTrace is the canonical shape: a leader query with selection,
// one traced RPC carrying node phase spans, and aggregation.
func queryTrace() []Span {
	node := map[string]string{"proc": "node-0", "node": "node-0"}
	return []Span{
		mkspan("t1", "root", "", "query", 0, 100, nil),
		mkspan("t1", "sel", "root", "selection", 0, 10, nil),
		mkspan("t1", "rpc", "root", "train", 10, 80, nil),
		mkspan("t1", "fit", "rpc", "node.fit", 20, 70, node),
		mkspan("t1", "agg", "root", "aggregation", 80, 95, nil),
		// A second trace in the stream must be ignored.
		mkspan("t2", "other", "", "query", 0, 5, nil),
	}
}

func TestAssembleTrace(t *testing.T) {
	tree, err := AssembleTrace(queryTrace(), "t1")
	if err != nil {
		t.Fatal(err)
	}
	if tree.TraceID != "t1" || tree.Spans != 5 {
		t.Fatalf("tree = %s with %d spans, want t1 with 5", tree.TraceID, tree.Spans)
	}
	if tree.Root == nil || tree.Root.Name != "query" {
		t.Fatalf("root = %+v", tree.Root)
	}
	if len(tree.Orphans) != 0 {
		t.Fatalf("orphans = %d, want 0", len(tree.Orphans))
	}
	if !reflect.DeepEqual(tree.Procs, []string{"leader", "node-0"}) {
		t.Fatalf("procs = %v", tree.Procs)
	}
	// Children sorted by start: selection, train, aggregation.
	var names []string
	for _, c := range tree.Root.Children {
		names = append(names, c.Name)
	}
	if !reflect.DeepEqual(names, []string{"selection", "train", "aggregation"}) {
		t.Fatalf("root children = %v", names)
	}
	rpc := tree.Root.Children[1]
	if len(rpc.Children) != 1 || rpc.Children[0].Name != "node.fit" {
		t.Fatalf("rpc children = %+v", rpc.Children)
	}
}

func TestAssembleTraceErrors(t *testing.T) {
	if _, err := AssembleTrace(nil, "missing"); err == nil {
		t.Fatal("empty stream assembled")
	}
	// All spans have parents: no root.
	rootless := []Span{mkspan("t", "a", "gone", "train", 0, 5, nil)}
	if _, err := AssembleTrace(rootless, "t"); err == nil {
		t.Fatal("rootless trace assembled")
	}
}

func TestAssembleTraceOrphans(t *testing.T) {
	spans := []Span{
		mkspan("t", "root", "", "query", 0, 10, nil),
		mkspan("t", "lost", "dropped-by-retention", "node.fit", 2, 8,
			map[string]string{"proc": "node-3"}),
	}
	tree, err := AssembleTrace(spans, "t")
	if err != nil {
		t.Fatal(err)
	}
	if len(tree.Orphans) != 1 || tree.Orphans[0].SpanID != "lost" {
		t.Fatalf("orphans = %+v", tree.Orphans)
	}
	if tree.Spans != 2 {
		t.Fatalf("span count %d excludes the orphan", tree.Spans)
	}
	if !reflect.DeepEqual(tree.Procs, []string{"leader", "node-3"}) {
		t.Fatalf("procs = %v", tree.Procs)
	}
}

// TestAssembleTraceLaterSpanWins: re-recording a span ID replaces the
// earlier version in place.
func TestAssembleTraceLaterSpanWins(t *testing.T) {
	spans := []Span{
		mkspan("t", "root", "", "query", 0, 10, nil),
		mkspan("t", "dup", "root", "train", 0, 3, nil),
		mkspan("t", "dup", "root", "train", 0, 7, nil), // corrected duration
	}
	tree, err := AssembleTrace(spans, "t")
	if err != nil {
		t.Fatal(err)
	}
	if tree.Spans != 2 {
		t.Fatalf("spans = %d, want 2 (duplicate collapsed)", tree.Spans)
	}
	if got := tree.Root.Children[0].DurationMS; got != 7 {
		t.Fatalf("duplicate span duration = %v, want the later 7", got)
	}
}

func TestSpanCategory(t *testing.T) {
	for _, tc := range []struct {
		name     string
		children bool
		want     string
	}{
		{"selection", false, "plan"},
		{"train", false, "rpc"},
		{"train", true, "wire"},
		{"evaluate", false, "rpc"},
		{"evaluate", true, "wire"},
		{"aggregation", false, "aggregate"},
		{"node.queue", false, "queue"},
		{"node.stage", false, "train"},
		{"node.fit", false, "train"},
		{"node.eval", false, "train"},
		{"query", true, "other"},
	} {
		if got := SpanCategory(tc.name, tc.children); got != tc.want {
			t.Errorf("SpanCategory(%q, %v) = %q, want %q", tc.name, tc.children, got, tc.want)
		}
	}
}

// TestCriticalPathExactSum checks the core invariant: the category
// attribution partitions the root window exactly.
func TestCriticalPathExactSum(t *testing.T) {
	tree, err := AssembleTrace(queryTrace(), "t1")
	if err != nil {
		t.Fatal(err)
	}
	cp := tree.CriticalPath()
	want := map[string]float64{
		"plan":      10, // selection [0,10)
		"wire":      20, // rpc self [10,20) + [70,80)
		"train":     50, // node.fit [20,70)
		"aggregate": 15, // aggregation [80,95)
		"other":     5,  // root tail [95,100)
	}
	for cat, ms := range want {
		if math.Abs(cp.ByCategory[cat]-ms) > 1e-9 {
			t.Errorf("ByCategory[%q] = %v, want %v", cat, cp.ByCategory[cat], ms)
		}
	}
	if math.Abs(cp.TotalMS-100) > 1e-9 {
		t.Fatalf("TotalMS = %v, want 100", cp.TotalMS)
	}
	sum := 0.0
	for _, v := range cp.ByCategory {
		sum += v
	}
	if math.Abs(sum-cp.TotalMS) > 1e-9 {
		t.Fatalf("categories sum to %v, total %v", sum, cp.TotalMS)
	}
	if s := cp.Share("train"); math.Abs(s-0.5) > 1e-9 {
		t.Fatalf("train share = %v, want 0.5", s)
	}
	if (CriticalPathReport{}).Share("train") != 0 {
		t.Fatal("empty report share != 0")
	}
}

// TestCriticalPathBlockingChild: when children overlap, time descends
// into the one that ends last — the one actually gating progress.
func TestCriticalPathBlockingChild(t *testing.T) {
	spans := []Span{
		mkspan("t", "root", "", "query", 0, 100, nil),
		mkspan("t", "a", "root", "train", 10, 60, nil),       // rpc, ends last
		mkspan("t", "b", "root", "aggregation", 10, 40, nil), // shadowed
	}
	tree, err := AssembleTrace(spans, "t")
	if err != nil {
		t.Fatal(err)
	}
	cp := tree.CriticalPath()
	if math.Abs(cp.ByCategory["rpc"]-50) > 1e-9 {
		t.Fatalf("rpc = %v, want 50 (blocking child owns the overlap)", cp.ByCategory["rpc"])
	}
	if cp.ByCategory["aggregate"] != 0 {
		t.Fatalf("aggregate = %v, want 0 (fully shadowed)", cp.ByCategory["aggregate"])
	}
	if math.Abs(cp.ByCategory["other"]-50) > 1e-9 {
		t.Fatalf("other = %v, want 50 (root head+tail)", cp.ByCategory["other"])
	}
}

// TestCriticalPathClipsChildren: a child overrunning its parent (clock
// skew, late flush) is clipped to the parent window so the sum
// invariant survives.
func TestCriticalPathClipsChildren(t *testing.T) {
	spans := []Span{
		mkspan("t", "root", "", "query", 0, 50, nil),
		mkspan("t", "late", "root", "train", 40, 80, nil),
	}
	tree, err := AssembleTrace(spans, "t")
	if err != nil {
		t.Fatal(err)
	}
	cp := tree.CriticalPath()
	if math.Abs(cp.TotalMS-50) > 1e-9 {
		t.Fatalf("TotalMS = %v, want the root's 50", cp.TotalMS)
	}
	if math.Abs(cp.ByCategory["rpc"]-10) > 1e-9 {
		t.Fatalf("rpc = %v, want clipped 10", cp.ByCategory["rpc"])
	}
}
