package telemetry

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Min() != 0 || h.Max() != 0 || h.Mean() != 0 {
		t.Fatal("zero-value histogram not empty")
	}
	for _, v := range []float64{1, 2, 3, 4} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Sum() != 10 {
		t.Fatalf("sum = %v", h.Sum())
	}
	if h.Min() != 1 || h.Max() != 4 {
		t.Fatalf("min/max = %v/%v", h.Min(), h.Max())
	}
	if h.Mean() != 2.5 {
		t.Fatalf("mean = %v", h.Mean())
	}
}

func TestHistogramEdgeValues(t *testing.T) {
	var h Histogram
	h.Observe(math.NaN()) // ignored
	if h.Count() != 0 {
		t.Fatal("NaN was recorded")
	}
	h.Observe(-5) // clamps to 0
	if h.Min() != 0 || h.Max() != 0 {
		t.Fatalf("negative clamp: min=%v max=%v", h.Min(), h.Max())
	}
	h.Observe(0)
	h.Observe(1e12) // overflow bucket
	if h.Count() != 3 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Max() != 1e12 {
		t.Fatalf("max = %v", h.Max())
	}
	// Quantiles stay within the observed range even for the
	// overflow bucket.
	if p := h.Quantile(0.99); p > 1e12 || p < 0 {
		t.Fatalf("p99 = %v outside observed range", p)
	}
}

func TestHistogramZeroThenLarger(t *testing.T) {
	// A genuine 0 observation must pin the minimum at 0 even when
	// larger values follow (regression test for the unset-sentinel
	// encoding).
	var h Histogram
	h.Observe(0)
	h.Observe(5)
	if h.Min() != 0 {
		t.Fatalf("min = %v, want 0", h.Min())
	}
	if h.Max() != 5 {
		t.Fatalf("max = %v, want 5", h.Max())
	}
}

// TestHistogramQuantileAccuracy checks the quantile estimates against
// a known uniform distribution: with 2^(1/4) bucket growth the
// relative error must stay under ~20%.
func TestHistogramQuantileAccuracy(t *testing.T) {
	var h Histogram
	const n = 100000
	for i := 1; i <= n; i++ {
		h.Observe(float64(i) / 100) // uniform on (0, 1000]
	}
	for _, tc := range []struct {
		q    float64
		want float64
	}{
		{0.50, 500},
		{0.95, 950},
		{0.99, 990},
	} {
		got := h.Quantile(tc.q)
		if rel := math.Abs(got-tc.want) / tc.want; rel > 0.20 {
			t.Errorf("p%.0f = %.1f, want %.1f ± 20%% (rel err %.1f%%)", 100*tc.q, got, tc.want, 100*rel)
		}
	}
	if p0 := h.Quantile(0); p0 != h.Min() {
		t.Errorf("q=0 -> %v, want min %v", p0, h.Min())
	}
	if p1 := h.Quantile(1); p1 != h.Max() {
		t.Errorf("q=1 -> %v, want max %v", p1, h.Max())
	}
}

// TestHistogramLogNormalQuantiles exercises a skewed distribution —
// the shape real latencies have.
func TestHistogramLogNormalQuantiles(t *testing.T) {
	var h Histogram
	// Deterministic pseudo-lognormal: exp of a triangular ramp.
	for i := 0; i < 50000; i++ {
		u := float64(i%1000)/1000 + 0.0005
		h.Observe(math.Exp(2 * u)) // values in [e^0.001, e^2]
	}
	p50 := h.Quantile(0.5)
	want := math.Exp(1.0) // median of exp(2u), u uniform(0,1)
	if rel := math.Abs(p50-want) / want; rel > 0.20 {
		t.Fatalf("lognormal p50 = %.3f, want %.3f ± 20%%", p50, want)
	}
}

// TestHistogramConcurrent hammers one histogram from many goroutines;
// run under -race this validates the lock-free implementation.
func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	const (
		workers = 8
		perW    = 10000
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				h.Observe(float64(w*perW+i) / 1000)
			}
		}(w)
	}
	wg.Wait()
	if h.Count() != workers*perW {
		t.Fatalf("count = %d, want %d", h.Count(), workers*perW)
	}
	wantSum := 0.0
	for i := 0; i < workers*perW; i++ {
		wantSum += float64(i) / 1000
	}
	if math.Abs(h.Sum()-wantSum) > 1e-6*wantSum {
		t.Fatalf("sum = %v, want %v", h.Sum(), wantSum)
	}
	if h.Min() != 0 {
		t.Fatalf("min = %v", h.Min())
	}
	if want := float64(workers*perW-1) / 1000; h.Max() != want {
		t.Fatalf("max = %v, want %v", h.Max(), want)
	}
}

func TestHistogramSnapshotCumulative(t *testing.T) {
	var h Histogram
	for _, v := range []float64{0.5, 5, 50, 500} {
		h.Observe(v)
	}
	snap := h.Snapshot()
	if snap.Count != 4 {
		t.Fatalf("snapshot count = %d", snap.Count)
	}
	last := int64(0)
	prevBound := math.Inf(-1)
	for _, b := range snap.Buckets {
		if b.UpperBound <= prevBound {
			t.Fatalf("bucket bounds not increasing: %v after %v", b.UpperBound, prevBound)
		}
		if b.Cumulative < last {
			t.Fatalf("cumulative counts decreasing: %d after %d", b.Cumulative, last)
		}
		last = b.Cumulative
		prevBound = b.UpperBound
	}
	if last != 4 {
		t.Fatalf("final cumulative = %d, want 4", last)
	}
}

// TestHistogramSnapshotSelfConsistentConcurrent takes snapshots while
// writers hammer Observe: because Count and the cumulative buckets are
// derived from one pass over the same loads, every snapshot must agree
// with itself — the final cumulative equals Count and the quantiles
// stay inside [Min, Max] — no matter where the writers are.
func TestHistogramSnapshotSelfConsistentConcurrent(t *testing.T) {
	var h Histogram
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				h.Observe(float64((w*7919 + i) % 1000))
			}
		}(w)
	}
	for i := 0; i < 500; i++ {
		snap := h.Snapshot()
		if snap.Count == 0 {
			continue
		}
		cum := int64(0)
		if n := len(snap.Buckets); n > 0 {
			cum = snap.Buckets[n-1].Cumulative
		}
		if cum != snap.Count {
			t.Fatalf("snapshot %d: cumulative %d != count %d", i, cum, snap.Count)
		}
		for _, q := range []float64{snap.P50, snap.P95, snap.P99} {
			if q < snap.Min || q > snap.Max {
				t.Fatalf("snapshot %d: quantile %v outside [%v, %v]", i, q, snap.Min, snap.Max)
			}
		}
	}
	close(stop)
	wg.Wait()
}

func TestHistogramObserveDurationAndReset(t *testing.T) {
	var h Histogram
	h.ObserveDuration(1500 * time.Microsecond)
	if got := h.Sum(); math.Abs(got-1.5) > 1e-9 {
		t.Fatalf("ObserveDuration sum = %v ms, want 1.5", got)
	}
	h.Reset()
	if h.Count() != 0 || h.Sum() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatal("reset did not clear the histogram")
	}
	h.Observe(2)
	if h.Min() != 2 || h.Max() != 2 {
		t.Fatalf("post-reset min/max = %v/%v", h.Min(), h.Max())
	}
}

func TestBucketIndexMonotonic(t *testing.T) {
	prev := -1
	for v := 1e-4; v < 1e12; v *= 1.07 {
		idx := bucketIndex(v)
		if idx < prev {
			t.Fatalf("bucketIndex(%v) = %d < previous %d", v, idx, prev)
		}
		lo, hi := bucketBounds(idx)
		if v <= lo || v > hi {
			if !(idx == 0 && v <= hi) && !(idx == histBuckets && v > lo) {
				t.Fatalf("value %v outside its bucket %d bounds (%v, %v]", v, idx, lo, hi)
			}
		}
		prev = idx
	}
}
