package telemetry

import (
	"math"
	"sync/atomic"
	"time"
)

// Rolling-window histograms: a ring of interval shards over the
// lock-free Histogram, merged on read. Cumulative-since-start
// histograms answer "how has the service behaved overall"; a soak test
// or a live dashboard needs "how is it behaving right now". Each shard
// owns one wall-clock interval; Observe indexes the ring by coarse
// time, recycling the shard that has aged out of the window, so the
// write path stays a handful of atomic ops with zero allocation and
// no lock. Reads merge the shards still inside the window.
//
// The view is deliberately approximate at interval boundaries: a shard
// being recycled can lose an observation racing the wipe, and the
// merged window covers between (shards-1) and shards intervals of
// history depending on where "now" falls inside the current interval.
// Both are harmless for monitoring and are the price of a wait-free
// write path.

const (
	// defaultWindow is the rolling span EnableWindow-style callers
	// get when they pass a non-positive window.
	defaultWindow = 60 * time.Second
	// defaultWindowShards is the ring size when the caller passes
	// fewer than 2 shards.
	defaultWindowShards = 6
)

// rollingShard is one ring slot: the interval it currently covers plus
// the observations made during that interval.
type rollingShard struct {
	// epoch is the absolute interval index (unixnano / interval) the
	// shard's counts belong to. A shard whose epoch has fallen out of
	// the window is expired: excluded from merges, recycled by the
	// next Observe that lands on its slot.
	epoch atomic.Int64
	hist  Histogram
}

// RollingHistogram tracks the distribution of the last `window` of
// observations. The zero value is NOT ready; use NewRollingHistogram
// or Histogram.EnableWindow. All methods are safe for concurrent use.
type RollingHistogram struct {
	shards   []rollingShard
	interval int64 // shard width in nanoseconds
	span     time.Duration

	// cacheTTL bounds how stale a merged Stats result may be served;
	// within the TTL repeated readers cost two atomic loads instead of
	// a full ring merge. A new observation invalidates immediately (see
	// gen), so the TTL only covers time-driven change: shards silently
	// expiring out of the window.
	cacheTTL int64
	cache    atomic.Pointer[windowCache]
	// gen counts observations; a cached Stats result is only served
	// while the generation it was computed under is still current.
	gen atomic.Int64

	// now returns wall-clock nanoseconds; swapped in tests for
	// deterministic shard advancement.
	now func() int64
}

// NewRollingHistogram builds a rolling histogram covering roughly the
// last `window`, split into `shards` ring slots. Non-positive window
// and shards < 2 select the defaults (60s over 6 shards).
func NewRollingHistogram(window time.Duration, shards int) *RollingHistogram {
	if window <= 0 {
		window = defaultWindow
	}
	if shards < 2 {
		shards = defaultWindowShards
	}
	interval := int64(window) / int64(shards)
	if interval < int64(time.Millisecond) {
		interval = int64(time.Millisecond)
	}
	return &RollingHistogram{
		shards:   make([]rollingShard, shards),
		interval: interval,
		span:     time.Duration(interval * int64(shards)),
		cacheTTL: interval / 16,
		now:      func() int64 { return time.Now().UnixNano() },
	}
}

// Span returns the nominal window the histogram covers.
func (r *RollingHistogram) Span() time.Duration { return r.span }

// Observe records one value into the shard owning the current
// interval. Wait-free and allocation-free: one clock read, one ring
// index, and the underlying Histogram's atomic updates.
func (r *RollingHistogram) Observe(v float64) {
	e := r.now() / r.interval
	s := &r.shards[int(e%int64(len(r.shards)))]
	if old := s.epoch.Load(); old != e {
		// Claim the slot for the new interval; the CAS winner wipes
		// the counts left over from the interval being recycled.
		if s.epoch.CompareAndSwap(old, e) {
			s.hist.Reset()
		}
	}
	s.hist.Observe(v)
	r.gen.Add(1)
}

// ObserveDuration records a latency in float milliseconds, matching
// Histogram.ObserveDuration.
func (r *RollingHistogram) ObserveDuration(d time.Duration) {
	r.Observe(float64(d) / float64(time.Millisecond))
}

// WindowStats is the merged summary of the observations inside the
// rolling window.
type WindowStats struct {
	Window time.Duration
	Count  int64
	Sum    float64
	Min    float64
	Max    float64
	P50    float64
	P95    float64
	P99    float64
}

// Mean returns the window's arithmetic mean (0 when empty).
func (s WindowStats) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// windowCache memoizes one merged read.
type windowCache struct {
	at    int64
	gen   int64
	stats WindowStats
}

// Stats returns the merged last-window summary. Results are memoized:
// repeated reads with no intervening writes cost two atomic loads, a
// new observation invalidates the cache immediately, and the TTL (a
// small fraction of the shard interval) re-merges even an idle window
// so expiring shards age out of the summary.
func (r *RollingHistogram) Stats() WindowStats {
	now := r.now()
	// Load gen before merging: an Observe racing the merge leaves a
	// cache entry tagged with the older generation, so the next read
	// conservatively re-merges.
	gen := r.gen.Load()
	if c := r.cache.Load(); c != nil && c.gen == gen && now-c.at <= r.cacheTTL {
		return c.stats
	}
	st := r.merge(now)
	r.cache.Store(&windowCache{at: now, gen: gen, stats: st})
	return st
}

// merge folds every live shard into one bucket array and derives the
// window summary from that single pass.
func (r *RollingHistogram) merge(now int64) WindowStats {
	cur := now / r.interval
	n := int64(len(r.shards))
	var counts [histBuckets + 1]int64
	st := WindowStats{Window: r.span, Min: math.Inf(1)}
	total := int64(0)
	for i := range r.shards {
		s := &r.shards[i]
		e := s.epoch.Load()
		if e > cur || cur-e >= n {
			continue // expired, or never claimed since startup
		}
		shardTotal := int64(0)
		for j := range s.hist.buckets {
			c := s.hist.buckets[j].Load()
			counts[j] += c
			shardTotal += c
		}
		if shardTotal == 0 {
			continue
		}
		total += shardTotal
		st.Sum += s.hist.Sum()
		if s.hist.Count() > 0 {
			if mn := s.hist.Min(); mn < st.Min {
				st.Min = mn
			}
			if mx := s.hist.Max(); mx > st.Max {
				st.Max = mx
			}
		}
	}
	st.Count = total
	if total == 0 {
		st.Min = 0
		return st
	}
	if math.IsInf(st.Min, 1) {
		st.Min = 0
	}
	st.P50 = quantileFromCounts(&counts, total, 0.50, st.Min, st.Max)
	st.P95 = quantileFromCounts(&counts, total, 0.95, st.Min, st.Max)
	st.P99 = quantileFromCounts(&counts, total, 0.99, st.Min, st.Max)
	return st
}
