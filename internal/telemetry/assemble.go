package telemetry

import (
	"fmt"
	"sort"
	"time"
)

// Cross-process trace assembly. Node-side spans piggyback on RPC
// responses (internal/transport) and are recorded into the leader's
// tracer with their original trace ID, so the flat retained span list
// holds pieces of one query's execution from several processes.
// AssembleTrace rebuilds the tree, and CriticalPath attributes every
// instant of the root span's wall time to exactly one phase category —
// queue, plan, rpc, wire, train, aggregate, or other — so "where did
// this query's latency go" has a machine-checkable answer (the
// categories sum to the root duration by construction).

// TraceNode is one span plus its children, sorted by start time.
type TraceNode struct {
	Span
	Children []*TraceNode `json:"children,omitempty"`
}

// TraceTree is one query's assembled cross-process trace.
type TraceTree struct {
	TraceID string     `json:"trace_id"`
	Root    *TraceNode `json:"root"`
	// Spans counts every span in the trace, orphans included.
	Spans int `json:"spans"`
	// Procs lists the distinct "proc" attribute values seen across
	// the trace ("" entries are reported as "leader"), sorted — the
	// quick "how many processes contributed" signal.
	Procs []string `json:"procs"`
	// Orphans holds spans whose parent never arrived (e.g. a node
	// span whose RPC span was dropped by retention). They are kept
	// out of the tree but remain visible.
	Orphans []*TraceNode `json:"orphans,omitempty"`
}

// AssembleTrace rebuilds the span tree for traceID from a flat span
// list (extra traces in the input are ignored). It fails when the
// trace has no spans or no root (a span without a parent ID).
func AssembleTrace(spans []Span, traceID string) (*TraceTree, error) {
	nodes := map[string]*TraceNode{}
	var ordered []*TraceNode
	procs := map[string]bool{}
	for _, s := range spans {
		if s.TraceID != traceID {
			continue
		}
		n := &TraceNode{Span: s}
		// Later spans win on span-ID collision (idempotent re-record).
		if old, ok := nodes[s.SpanID]; ok {
			*old = *n
			continue
		}
		nodes[s.SpanID] = n
		ordered = append(ordered, n)
		if p := s.Attrs["proc"]; p != "" {
			procs[p] = true
		} else {
			procs["leader"] = true
		}
	}
	if len(ordered) == 0 {
		return nil, fmt.Errorf("telemetry: no spans for trace %s", traceID)
	}
	tree := &TraceTree{TraceID: traceID, Spans: len(ordered)}
	for _, n := range ordered {
		switch {
		case n.ParentID == "":
			if tree.Root == nil || n.Start.Before(tree.Root.Start) {
				tree.Root = n
			}
		default:
			if parent, ok := nodes[n.ParentID]; ok && parent != n {
				parent.Children = append(parent.Children, n)
			} else {
				tree.Orphans = append(tree.Orphans, n)
			}
		}
	}
	if tree.Root == nil {
		return nil, fmt.Errorf("telemetry: trace %s has no root span", traceID)
	}
	for _, n := range ordered {
		sort.Slice(n.Children, func(i, j int) bool {
			return n.Children[i].Start.Before(n.Children[j].Start)
		})
	}
	for p := range procs {
		tree.Procs = append(tree.Procs, p)
	}
	sort.Strings(tree.Procs)
	return tree, nil
}

// CriticalPathReport attributes the root span's wall time to phase
// categories. ByCategory sums exactly to TotalMS (every instant of the
// root window lands in one bucket).
type CriticalPathReport struct {
	TotalMS    float64            `json:"total_ms"`
	ByCategory map[string]float64 `json:"by_category_ms"`
}

// Share returns category's fraction of the total (0 when empty).
func (r CriticalPathReport) Share(category string) float64 {
	if r.TotalMS <= 0 {
		return 0
	}
	return r.ByCategory[category] / r.TotalMS
}

// SpanCategory maps a span name to its critical-path category.
// hasChildren distinguishes an RPC span whose node reported phase
// spans (self time = wire/codec/network residue) from one that did not
// (self time = the whole opaque RPC).
func SpanCategory(name string, hasChildren bool) string {
	switch name {
	case "selection":
		return "plan"
	case "train", "evaluate":
		if hasChildren {
			return "wire"
		}
		return "rpc"
	case "aggregation":
		return "aggregate"
	case "node.queue":
		return "queue"
	case "node.stage", "node.fit", "node.eval":
		return "train"
	default:
		return "other"
	}
}

// CriticalPath decomposes the root span's duration. The sweep walks
// the root window instant by instant (segment by segment): time not
// covered by any child is the span's own category; time covered by
// children descends into the covering child that ends last — the one
// actually blocking progress when children overlap (parallel train
// fan-out) — and recurses. Children are clipped to the parent window,
// which also absorbs small cross-process clock skew.
func (t *TraceTree) CriticalPath() CriticalPathReport {
	rep := CriticalPathReport{
		TotalMS:    t.Root.DurationMS,
		ByCategory: map[string]float64{},
	}
	attribute(t.Root, t.Root.Start, t.Root.End, rep.ByCategory)
	// The sweep measures real timestamps; DurationMS is the span's own
	// claim. Keep TotalMS as the sweep total so the invariant
	// "categories sum to total" holds even if the two disagree.
	total := 0.0
	for _, v := range rep.ByCategory {
		total += v
	}
	rep.TotalMS = total
	return rep
}

// attribute assigns every instant of [lo, hi) within n to a category.
func attribute(n *TraceNode, lo, hi time.Time, acc map[string]float64) {
	self := SpanCategory(n.Name, len(n.Children) > 0)
	cur := lo
	for cur.Before(hi) {
		// Find the child covering cur that ends last (the blocking
		// one), and the next child start after cur for gap sizing.
		var blocking *TraceNode
		nextStart := hi
		for _, c := range n.Children {
			if !c.End.After(cur) {
				continue // already finished
			}
			if c.Start.After(cur) {
				if c.Start.Before(nextStart) {
					nextStart = c.Start
				}
				continue
			}
			if blocking == nil || c.End.After(blocking.End) {
				blocking = c
			}
		}
		if blocking == nil {
			end := nextStart
			if end.After(hi) {
				end = hi
			}
			acc[self] += durMS(cur, end)
			cur = end
			continue
		}
		end := blocking.End
		if end.After(hi) {
			end = hi
		}
		if !end.After(cur) { // defensive: zero-width child
			break
		}
		attribute(blocking, cur, end, acc)
		cur = end
	}
}

// durMS returns the [a, b) width in float milliseconds (never negative).
func durMS(a, b time.Time) float64 {
	if !b.After(a) {
		return 0
	}
	return float64(b.Sub(a)) / float64(time.Millisecond)
}
