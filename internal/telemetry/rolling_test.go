package telemetry

import (
	"sync"
	"testing"
	"time"
)

// fakeClock drives a RollingHistogram deterministically: tests advance
// it past shard intervals instead of sleeping.
type fakeClock struct {
	mu sync.Mutex
	ns int64
}

func (c *fakeClock) now() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ns
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ns += int64(d)
}

// testRolling builds a 6-shard 60s rolling histogram on a fake clock
// started well away from zero (epoch 0 is a real interval index).
func testRolling() (*RollingHistogram, *fakeClock) {
	r := NewRollingHistogram(60*time.Second, 6)
	c := &fakeClock{ns: int64(100 * time.Hour)}
	r.now = c.now
	return r, c
}

func TestRollingDefaults(t *testing.T) {
	r := NewRollingHistogram(0, 0)
	if r.Span() != 60*time.Second {
		t.Fatalf("default span = %v, want 60s", r.Span())
	}
	if len(r.shards) != 6 {
		t.Fatalf("default shards = %d, want 6", len(r.shards))
	}
}

func TestRollingObserveAndStats(t *testing.T) {
	r, _ := testRolling()
	for i := 1; i <= 100; i++ {
		r.Observe(float64(i))
	}
	st := r.Stats()
	if st.Count != 100 {
		t.Fatalf("count = %d, want 100", st.Count)
	}
	if st.Min != 1 || st.Max != 100 {
		t.Fatalf("min/max = %v/%v, want 1/100", st.Min, st.Max)
	}
	if st.Sum != 5050 {
		t.Fatalf("sum = %v, want 5050", st.Sum)
	}
	if m := st.Mean(); m != 50.5 {
		t.Fatalf("mean = %v, want 50.5", m)
	}
	// The log-bucket quantile estimate has ~19% relative error.
	for _, q := range []struct {
		got, want float64
	}{{st.P50, 50}, {st.P95, 95}, {st.P99, 99}} {
		if q.got < q.want*0.8 || q.got > q.want*1.2 {
			t.Fatalf("quantile %v outside 20%% of %v", q.got, q.want)
		}
	}
	if (WindowStats{}).Mean() != 0 {
		t.Fatal("empty Mean() != 0")
	}
}

// TestRollingShardExpiry verifies observations age out once the clock
// moves a full window past them, and that a partial advance keeps the
// still-covered shards.
func TestRollingShardExpiry(t *testing.T) {
	r, c := testRolling()
	r.Observe(5)
	r.Observe(7)
	if st := r.Stats(); st.Count != 2 {
		t.Fatalf("count = %d, want 2", st.Count)
	}

	// Half a window later the old shard is still live.
	c.advance(30 * time.Second)
	r.Observe(9)
	if st := r.merge(c.now()); st.Count != 3 {
		t.Fatalf("count after 30s = %d, want 3", st.Count)
	}

	// A full window past the first observations, only the recent one
	// remains.
	c.advance(40 * time.Second)
	st := r.merge(c.now())
	if st.Count != 1 || st.Min != 9 || st.Max != 9 {
		t.Fatalf("after expiry: %+v, want single observation 9", st)
	}

	// A full window past everything: empty.
	c.advance(2 * time.Minute)
	if st := r.merge(c.now()); st.Count != 0 || st.Min != 0 {
		t.Fatalf("after full expiry: %+v, want empty", st)
	}
}

// TestRollingShardRecycle verifies a ring slot reused for a new
// interval wipes the counts of the interval it replaces.
func TestRollingShardRecycle(t *testing.T) {
	r, c := testRolling()
	interval := time.Duration(r.interval)
	r.Observe(100)
	// Advance exactly one full ring: the next observation lands on the
	// same slot as the first and must reset it.
	c.advance(interval * time.Duration(len(r.shards)))
	r.Observe(1)
	st := r.merge(c.now())
	if st.Count != 1 || st.Max != 1 {
		t.Fatalf("recycled shard kept stale counts: %+v", st)
	}
}

// TestRollingStatsCached verifies the merged read is memoized across
// write-free reads, invalidated immediately by a new observation, and
// re-merged after the TTL even when idle (shards can expire silently).
func TestRollingStatsCached(t *testing.T) {
	r, c := testRolling()
	r.Observe(1)
	if st := r.Stats(); st.Count != 1 {
		t.Fatalf("count = %d, want 1", st.Count)
	}
	// No writes: repeated reads serve the same cache entry.
	entry := r.cache.Load()
	if r.Stats(); r.cache.Load() != entry {
		t.Fatal("write-free read within TTL re-merged instead of serving the cache")
	}
	// A new observation is visible immediately, TTL notwithstanding.
	r.Observe(2)
	if st := r.Stats(); st.Count != 2 {
		t.Fatalf("post-write count = %d, want 2 (stale cache served)", st.Count)
	}
	// Idle past the TTL: the re-merge notices time-driven change (here,
	// everything expiring out of the window).
	c.advance(2 * r.Span())
	if st := r.Stats(); st.Count != 0 {
		t.Fatalf("after expiry count = %d, want 0", st.Count)
	}
}

func TestRollingObserveDuration(t *testing.T) {
	r, _ := testRolling()
	r.ObserveDuration(1500 * time.Millisecond)
	st := r.Stats()
	if st.Count != 1 || st.Max != 1500 {
		t.Fatalf("ObserveDuration recorded %+v, want max 1500ms", st)
	}
}

// TestHistogramWindowFeed verifies EnableWindow wires the cumulative
// histogram's Observe into the rolling view, and that re-enabling
// replaces it.
func TestHistogramWindowFeed(t *testing.T) {
	var h Histogram
	h.Observe(1) // before the window exists: cumulative only
	w := h.EnableWindow(time.Minute, 6)
	if h.Window() != w {
		t.Fatal("Window() did not return the attached view")
	}
	h.Observe(2)
	h.Observe(3)
	if st := w.Stats(); st.Count != 2 {
		t.Fatalf("window count = %d, want 2 (pre-window observation leaked in?)", st.Count)
	}
	if h.Count() != 3 {
		t.Fatalf("cumulative count = %d, want 3", h.Count())
	}
	w2 := h.EnableWindow(time.Minute, 6)
	h.Observe(4)
	if st := w2.Stats(); st.Count != 1 {
		t.Fatalf("replacement window count = %d, want 1", st.Count)
	}
}

// TestRollingConcurrent hammers Observe while readers merge; run with
// -race this is the wait-free write path proof.
func TestRollingConcurrent(t *testing.T) {
	r, c := testRolling()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				r.Observe(float64(i % 50))
				if i%100 == 0 {
					c.advance(time.Millisecond)
				}
			}
		}(g)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			st := r.Stats()
			if st.Count < 0 {
				t.Error("negative merged count")
				return
			}
		}
	}()
	wg.Wait()
	<-done
	// All observations land within the window (the fake clock advanced
	// ~80ms total, far less than 60s), so nothing expired.
	if st := r.merge(c.now()); st.Count != 8000 {
		t.Fatalf("final count = %d, want 8000", st.Count)
	}
}

// BenchmarkRollingObserve gates the hot write path: it must not
// allocate (see scripts/bench_telemetry.sh).
func BenchmarkRollingObserve(b *testing.B) {
	r := NewRollingHistogram(60*time.Second, 6)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Observe(float64(i % 1000))
	}
}

// BenchmarkRollingStats measures the memoized merged read — the cost
// every /metrics scrape and /v1/stats request pays.
func BenchmarkRollingStats(b *testing.B) {
	r := NewRollingHistogram(60*time.Second, 6)
	for i := 0; i < 10_000; i++ {
		r.Observe(float64(i % 1000))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.Stats()
	}
}
