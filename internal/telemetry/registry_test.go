package telemetry

import (
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRegistryCounterFamilies(t *testing.T) {
	var r Registry
	r.Counter("requests_total").Add(2)
	r.Counter("requests_total").Inc() // same series
	r.Counter("requests_total", Label{"node", "a"}).Add(5)
	r.Counter("requests_total", Label{"node", "b"}).Add(7)

	if got := r.Counter("requests_total").Value(); got != 3 {
		t.Fatalf("unlabeled series = %d", got)
	}
	if got := r.Counter("requests_total", Label{"node", "a"}).Value(); got != 5 {
		t.Fatalf("node=a series = %d", got)
	}
	snap := r.Snapshot()
	if len(snap.Counters) != 3 {
		t.Fatalf("snapshot has %d counter series, want 3", len(snap.Counters))
	}
}

func TestRegistryLabelOrderCanonical(t *testing.T) {
	var r Registry
	r.Counter("m", Label{"a", "1"}, Label{"b", "2"}).Inc()
	r.Counter("m", Label{"b", "2"}, Label{"a", "1"}).Inc() // same series, reordered
	if got := r.Counter("m", Label{"a", "1"}, Label{"b", "2"}).Value(); got != 2 {
		t.Fatalf("label order produced distinct series: %d", got)
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	var r Registry
	r.Counter("metric_x").Inc()
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on kind mismatch")
		}
	}()
	r.Histogram("metric_x")
}

func TestRegistryGauge(t *testing.T) {
	var r Registry
	g := r.Gauge("shard_size")
	g.Set(1234)
	if g.Value() != 1234 {
		t.Fatalf("gauge = %v", g.Value())
	}
	g.Set(10)
	if got := r.Gauge("shard_size").Value(); got != 10 {
		t.Fatalf("gauge after reset lookup = %v", got)
	}
}

func TestRegistryConcurrent(t *testing.T) {
	var r Registry
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			node := []Label{{"node", string(rune('a' + w%4))}}
			for i := 0; i < 2000; i++ {
				r.Counter("ops_total", node...).Inc()
				r.Histogram("op_ms", node...).Observe(float64(i))
			}
		}(w)
	}
	wg.Wait()
	total := int64(0)
	for _, c := range r.Snapshot().Counters {
		total += int64(c.Value)
	}
	if total != 8*2000 {
		t.Fatalf("total ops = %d, want %d", total, 8*2000)
	}
}

func TestWritePrometheus(t *testing.T) {
	var r Registry
	r.Counter("qens_train_rounds_total", Label{"node", "node-3"}).Add(12)
	r.SetHelp("qens_train_rounds_total", "Training rounds executed.")
	r.Gauge("qens_uptime_s").Set(42.5)
	h := r.Histogram("qens_train_round_ms", Label{"node", "node-3"})
	for _, v := range []float64{1, 2, 4, 8, 1000} {
		h.Observe(v)
	}

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP qens_train_rounds_total Training rounds executed.",
		"# TYPE qens_train_rounds_total counter",
		`qens_train_rounds_total{node="node-3"} 12`,
		"# TYPE qens_train_round_ms histogram",
		`qens_train_round_ms_bucket{node="node-3",le="+Inf"} 5`,
		`qens_train_round_ms_sum{node="node-3"} 1015`,
		`qens_train_round_ms_count{node="node-3"} 5`,
		`qens_train_round_ms_p50{node="node-3"}`,
		"# TYPE qens_uptime_s gauge",
		"qens_uptime_s 42.5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n---\n%s", want, out)
		}
	}
	// Cumulative le buckets must be non-decreasing in rendered order.
	prev := int64(-1)
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "qens_train_round_ms_bucket") {
			continue
		}
		n, err := strconv.ParseInt(line[strings.LastIndexByte(line, ' ')+1:], 10, 64)
		if err != nil {
			t.Fatalf("parse %q: %v", line, err)
		}
		if n < prev {
			t.Fatalf("bucket counts decreasing at %q", line)
		}
		prev = n
	}
}

func TestRegistryReset(t *testing.T) {
	var r Registry
	r.Counter("a").Inc()
	r.Reset()
	if snap := r.Snapshot(); len(snap.Counters) != 0 {
		t.Fatal("reset left counters behind")
	}
}

func TestHTTPEndpoints(t *testing.T) {
	var r Registry
	r.Counter("qens_train_rounds_total", Label{"node", "n0"}).Add(3)
	handler := NewHTTPHandler(&r, func() map[string]any {
		return map[string]any{"shard_size": 500, "k": 5}
	}, time.Now().Add(-3*time.Second))
	srv := httptest.NewServer(handler)
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var sb strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := resp.Body.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return resp.StatusCode, sb.String()
	}

	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, `qens_train_rounds_total{node="n0"} 3`) {
		t.Fatalf("/metrics -> %d\n%s", code, body)
	}
	code, body := get("/healthz")
	if code != 200 {
		t.Fatalf("/healthz -> %d", code)
	}
	for _, want := range []string{`"status":"ok"`, `"shard_size":500`, `"k":5`, `"uptime_s":`} {
		if !strings.Contains(body, want) {
			t.Errorf("/healthz missing %s in %s", want, body)
		}
	}
	if code, body := get("/debug/pprof/"); code != 200 || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ -> %d", code)
	}
}
