package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing int64 metric. The zero value
// is ready; Add is a single atomic instruction.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by delta.
func (c *Counter) Add(delta int64) { c.v.Add(delta) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a settable float64 metric (e.g. shard size, last-round
// timestamp). The zero value is ready.
type Gauge struct{ bits atomic.Uint64 }

// Set stores the gauge's current value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the gauge's current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Label is one name=value metric dimension.
type Label struct {
	Key   string
	Value string
}

// metricKind tags a family for rendering.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

// series is one labeled instance inside a family.
type series struct {
	labels  []Label
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
}

// family groups every labeled series sharing a metric name.
type family struct {
	name   string
	kind   metricKind
	help   string
	series map[string]*series // keyed by canonical label string
}

// Registry holds named metric families. Lookup (Counter/Histogram/
// Gauge) takes a short RWMutex critical section and returns the live
// metric, so hot paths should hold on to the returned pointer; the
// metrics themselves are lock-free. The zero value is ready.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// defaultRegistry is the process-wide registry every component
// instruments unless explicitly given another one.
var defaultRegistry = &Registry{}

// Default returns the process-wide registry.
func Default() *Registry { return defaultRegistry }

// labelKey canonicalizes labels: sorted by key, rendered k="v".
func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	sorted := make([]Label, len(labels))
	copy(sorted, labels)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
	var b strings.Builder
	for i, l := range sorted {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Value)
	}
	return b.String()
}

// L builds labels from alternating key, value strings: L("node",
// "node-3") — a convenience for call sites.
func L(kv ...string) []Label {
	if len(kv)%2 != 0 {
		panic("telemetry: L needs alternating key, value pairs")
	}
	out := make([]Label, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		out = append(out, Label{Key: kv[i], Value: kv[i+1]})
	}
	return out
}

// lookup returns (creating on demand) the series for name+labels,
// enforcing kind consistency within a family.
func (r *Registry) lookup(name string, kind metricKind, labels []Label) *series {
	key := labelKey(labels)
	r.mu.RLock()
	if f, ok := r.families[name]; ok && f.kind == kind {
		if s, ok := f.series[key]; ok {
			r.mu.RUnlock()
			return s
		}
	}
	r.mu.RUnlock()

	r.mu.Lock()
	defer r.mu.Unlock()
	if r.families == nil {
		r.families = map[string]*family{}
	}
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, kind: kind, series: map[string]*series{}}
		r.families[name] = f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("telemetry: metric %q registered twice with different kinds", name))
	}
	s, ok := f.series[key]
	if !ok {
		sorted := make([]Label, len(labels))
		copy(sorted, labels)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
		s = &series{labels: sorted}
		switch kind {
		case kindCounter:
			s.counter = &Counter{}
		case kindGauge:
			s.gauge = &Gauge{}
		case kindHistogram:
			s.hist = &Histogram{}
		}
		f.series[key] = s
	}
	return s
}

// Counter returns the counter for name with the given labels, creating
// it on first use: Counter("qens_train_rounds_total", L("node", id)...).
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	return r.lookup(name, kindCounter, labels).counter
}

// Gauge returns the gauge for name with the given labels.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	return r.lookup(name, kindGauge, labels).gauge
}

// Histogram returns the histogram for name with the given labels.
func (r *Registry) Histogram(name string, labels ...Label) *Histogram {
	return r.lookup(name, kindHistogram, labels).hist
}

// SetHelp attaches a HELP string rendered above the family in the
// Prometheus exposition.
func (r *Registry) SetHelp(name, help string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		f.help = help
	}
}

// MetricValue is one scalar series in a Snapshot.
type MetricValue struct {
	Name   string
	Labels []Label
	Value  float64
}

// HistogramValue is one histogram series in a Snapshot.
type HistogramValue struct {
	Name   string
	Labels []Label
	HistogramSnapshot
}

// RegistrySnapshot is a point-in-time copy of every series.
type RegistrySnapshot struct {
	Counters   []MetricValue
	Gauges     []MetricValue
	Histograms []HistogramValue
}

// Snapshot copies the registry's current state (sorted by name then
// label key) — the experiment harness reads results through this.
func (r *Registry) Snapshot() RegistrySnapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var snap RegistrySnapshot
	for _, f := range r.sortedFamiliesLocked() {
		for _, key := range sortedSeriesKeys(f) {
			s := f.series[key]
			switch f.kind {
			case kindCounter:
				snap.Counters = append(snap.Counters, MetricValue{f.name, s.labels, float64(s.counter.Value())})
			case kindGauge:
				snap.Gauges = append(snap.Gauges, MetricValue{f.name, s.labels, s.gauge.Value()})
			case kindHistogram:
				snap.Histograms = append(snap.Histograms, HistogramValue{f.name, s.labels, s.hist.Snapshot()})
			}
		}
	}
	return snap
}

// Reset drops every registered family. Metric pointers held by callers
// keep working but are no longer rendered — experiment boundaries
// should re-look-up after Reset.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.families = nil
}

func (r *Registry) sortedFamiliesLocked() []*family {
	out := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

func sortedSeriesKeys(f *family) []string {
	keys := make([]string, 0, len(f.series))
	for k := range f.series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// WritePrometheus renders the registry in the Prometheus text
// exposition format (version 0.0.4): counters and gauges as single
// samples, histograms as cumulative le-bucket series plus _sum and
// _count, with quantile estimates exported as companion gauges
// (<name>_p50 etc.) since the native histogram type carries no
// quantiles.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	families := r.sortedFamiliesLocked()
	// Capture the per-family series lists under the lock; the metric
	// values themselves are atomics read afterwards.
	type famView struct {
		f    *family
		keys []string
	}
	views := make([]famView, len(families))
	for i, f := range families {
		views[i] = famView{f, sortedSeriesKeys(f)}
	}
	r.mu.RUnlock()

	for _, v := range views {
		f := v.f
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, typeString(f.kind)); err != nil {
			return err
		}
		for _, key := range v.keys {
			s := f.series[key]
			switch f.kind {
			case kindCounter:
				if _, err := fmt.Fprintf(w, "%s%s %d\n", f.name, renderLabels(s.labels, nil), s.counter.Value()); err != nil {
					return err
				}
			case kindGauge:
				if _, err := fmt.Fprintf(w, "%s%s %s\n", f.name, renderLabels(s.labels, nil), formatFloat(s.gauge.Value())); err != nil {
					return err
				}
			case kindHistogram:
				if err := writeHistogram(w, f.name, s); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

func writeHistogram(w io.Writer, name string, s *series) error {
	snap := s.hist.Snapshot()
	for _, b := range snap.Buckets {
		le := "+Inf"
		if !math.IsInf(b.UpperBound, 1) {
			le = formatFloat(b.UpperBound)
		}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
			name, renderLabels(s.labels, &Label{"le", le}), b.Cumulative); err != nil {
			return err
		}
	}
	// Prometheus requires the +Inf bucket even when empty up top.
	if len(snap.Buckets) == 0 || !math.IsInf(snap.Buckets[len(snap.Buckets)-1].UpperBound, 1) {
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
			name, renderLabels(s.labels, &Label{"le", "+Inf"}), snap.Count); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, renderLabels(s.labels, nil), formatFloat(snap.Sum)); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_count%s %d\n", name, renderLabels(s.labels, nil), snap.Count); err != nil {
		return err
	}
	for _, q := range []struct {
		suffix string
		v      float64
	}{{"p50", snap.P50}, {"p95", snap.P95}, {"p99", snap.P99}} {
		if _, err := fmt.Fprintf(w, "%s_%s%s %s\n", name, q.suffix, renderLabels(s.labels, nil), formatFloat(q.v)); err != nil {
			return err
		}
	}
	// Histograms with a rolling window attached additionally export
	// last-window companions (window seconds as a label), so dashboards
	// can plot "now" next to "since start".
	if win := s.hist.Window(); win != nil {
		st := win.Stats()
		winLabel := &Label{"window", formatFloat(st.Window.Seconds()) + "s"}
		if _, err := fmt.Fprintf(w, "%s_win_count%s %d\n", name, renderLabels(s.labels, winLabel), st.Count); err != nil {
			return err
		}
		for _, q := range []struct {
			suffix string
			v      float64
		}{{"win_p50", st.P50}, {"win_p95", st.P95}, {"win_p99", st.P99}} {
			if _, err := fmt.Fprintf(w, "%s_%s%s %s\n", name, q.suffix, renderLabels(s.labels, winLabel), formatFloat(q.v)); err != nil {
				return err
			}
		}
	}
	return nil
}

// renderLabels renders {k="v",...}; extra (e.g. le) is appended last.
func renderLabels(labels []Label, extra *Label) string {
	if len(labels) == 0 && extra == nil {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, escapeLabelValue(l.Value))
	}
	if extra != nil {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", extra.Key, escapeLabelValue(extra.Value))
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabelValue strips characters that would corrupt the text
// exposition (the %q quoting handles backslash and double-quote).
func escapeLabelValue(v string) string {
	return strings.Map(func(r rune) rune {
		if r == '\n' {
			return ' '
		}
		return r
	}, v)
}

func typeString(k metricKind) string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// formatFloat renders a float compactly (integers without the trailing
// .0 Prometheus tolerates either way).
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
