package telemetry

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounters(t *testing.T) {
	var c Collector
	c.Add("queries", 1)
	c.Add("queries", 2)
	c.Add("bytes", 100)
	if c.Counter("queries") != 3 || c.Counter("bytes") != 100 {
		t.Fatalf("counters %d/%d", c.Counter("queries"), c.Counter("bytes"))
	}
	if c.Counter("missing") != 0 {
		t.Fatal("missing counter should be zero")
	}
}

func TestDurations(t *testing.T) {
	var c Collector
	c.AddDuration("train", 2*time.Second)
	c.AddDuration("train", 3*time.Second)
	if c.Duration("train") != 5*time.Second {
		t.Fatalf("duration %v", c.Duration("train"))
	}
}

func TestTime(t *testing.T) {
	var c Collector
	stop := c.Time("op")
	time.Sleep(5 * time.Millisecond)
	stop()
	if d := c.Duration("op"); d < 5*time.Millisecond {
		t.Fatalf("timed %v, want >= 5ms", d)
	}
}

func TestReset(t *testing.T) {
	var c Collector
	c.Add("x", 1)
	c.AddDuration("y", time.Second)
	c.Reset()
	if c.Counter("x") != 0 || c.Duration("y") != 0 {
		t.Fatal("reset did not clear")
	}
}

func TestSnapshotIsCopy(t *testing.T) {
	var c Collector
	c.Add("x", 1)
	counters, _ := c.Snapshot()
	counters["x"] = 99
	if c.Counter("x") != 1 {
		t.Fatal("snapshot aliases internal map")
	}
}

func TestString(t *testing.T) {
	var c Collector
	c.Add("b", 2)
	c.Add("a", 1)
	c.AddDuration("t", time.Second)
	s := c.String()
	if !strings.Contains(s, "a=1") || !strings.Contains(s, "b=2") || !strings.Contains(s, "t=1s") {
		t.Fatalf("String() = %q", s)
	}
	// Sorted: a before b.
	if strings.Index(s, "a=1") > strings.Index(s, "b=2") {
		t.Fatalf("String() not sorted: %q", s)
	}
}

func TestConcurrentUse(t *testing.T) {
	var c Collector
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Add("n", 1)
				c.AddDuration("d", time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if c.Counter("n") != 8000 {
		t.Fatalf("concurrent count %d", c.Counter("n"))
	}
	if c.Duration("d") != 8000*time.Microsecond {
		t.Fatalf("concurrent duration %v", c.Duration("d"))
	}
}
