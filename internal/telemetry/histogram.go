package telemetry

import (
	"math"
	"sync/atomic"
	"time"
)

// Histogram geometry: fixed log-spaced buckets covering [histMin, ∞).
// With growth 2^(1/4) per bucket the relative quantile error is bounded
// by ~19% — tight enough for p50/p95/p99 latency work — while keeping
// Observe a single atomic increment with no allocation and no lock.
const (
	// histBuckets is the number of finite buckets.
	histBuckets = 128
	// histMin is the upper bound of the first bucket. Observations
	// below it land in bucket 0.
	histMin = 1e-3
	// histGrowthLog2 is log2 of the per-bucket growth factor
	// (2^(1/4) ≈ 1.189).
	histGrowthLog2 = 0.25
)

// histUpperBounds holds the precomputed inclusive upper bound of every
// finite bucket; observations above the last bound land in the
// overflow bucket.
var histUpperBounds = func() [histBuckets]float64 {
	var b [histBuckets]float64
	for i := range b {
		b[i] = histMin * math.Pow(2, histGrowthLog2*float64(i))
	}
	return b
}()

// Histogram is a lock-free fixed-bucket log-spaced histogram. The zero
// value is ready. Observe is wait-free (one atomic add plus three CAS
// loops that almost never retry) and safe for concurrent use, which
// keeps it cheap enough for per-RPC instrumentation on the hot path.
//
// Units are the caller's choice; the federation layer records
// milliseconds (metric names carry a _ms suffix).
type Histogram struct {
	buckets [histBuckets + 1]atomic.Int64 // +1 overflow bucket
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits of the running sum
	// minBits/maxBits hold float64 bits of the observed extremes.
	// Values are non-negative by construction (Observe clamps), so
	// all-zero bits mean "no observation yet" for min — a genuine
	// zero observation is stored as -0.0 bits to stay distinguishable
	// — and a valid starting point (0.0) for max.
	minBits atomic.Uint64
	maxBits atomic.Uint64
	// window, when set, receives a copy of every observation so the
	// last-W seconds are queryable alongside the cumulative totals.
	window atomic.Pointer[RollingHistogram]
}

// bucketIndex maps a value to its bucket (histBuckets = overflow).
func bucketIndex(v float64) int {
	if v <= histMin {
		return 0
	}
	idx := int(math.Ceil(math.Log2(v/histMin) / histGrowthLog2))
	if idx >= histBuckets {
		return histBuckets
	}
	return idx
}

// Observe records one value. NaN is ignored; negative values clamp to
// zero (the histogram tracks magnitudes: latencies, sizes, counts).
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	if v < 0 {
		v = 0
	}
	h.buckets[bucketIndex(v)].Add(1)
	h.count.Add(1)
	addFloat(&h.sumBits, v)
	casMin(&h.minBits, v)
	casMax(&h.maxBits, v)
	if w := h.window.Load(); w != nil {
		w.Observe(v)
	}
}

// EnableWindow attaches a rolling last-`window` view fed by every
// subsequent Observe (see RollingHistogram). Shards controls the
// ring granularity; values < 2 pick the default. Returns the attached
// rolling histogram; calling EnableWindow again replaces it.
func (h *Histogram) EnableWindow(window time.Duration, shards int) *RollingHistogram {
	r := NewRollingHistogram(window, shards)
	h.window.Store(r)
	return r
}

// Window returns the attached rolling view (nil unless EnableWindow
// was called).
func (h *Histogram) Window() *RollingHistogram { return h.window.Load() }

// ObserveDuration records a latency in float milliseconds — the unit
// every *_ms metric family in this repo uses.
func (h *Histogram) ObserveDuration(d time.Duration) {
	h.Observe(float64(d) / float64(time.Millisecond))
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the running sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Min returns the smallest observation (0 when empty).
func (h *Histogram) Min() float64 {
	if h.count.Load() == 0 {
		return 0
	}
	v := math.Float64frombits(h.minBits.Load())
	if v == 0 { // -0.0 encodes an observed zero; normalize the sign
		return 0
	}
	return v
}

// Max returns the largest observation (0 when empty).
func (h *Histogram) Max() float64 {
	if h.count.Load() == 0 {
		return 0
	}
	return math.Float64frombits(h.maxBits.Load())
}

// Mean returns the arithmetic mean (0 when empty).
func (h *Histogram) Mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return h.Sum() / float64(n)
}

// Quantile estimates the q-quantile (0 < q < 1) from the bucket
// counts, interpolating geometrically inside the winning bucket. The
// estimate's relative error is bounded by the bucket growth factor
// (~19%). Returns 0 when the histogram is empty.
func (h *Histogram) Quantile(q float64) float64 {
	var counts [histBuckets + 1]int64
	total := h.loadBuckets(&counts)
	return quantileFromCounts(&counts, total, q, h.Min(), h.Max())
}

// loadBuckets copies the live bucket counts into counts in one pass
// and returns their sum. Deriving totals from the same loads that fill
// the array is what makes snapshots self-consistent: the count can
// never disagree with the buckets it was summed from, even under
// concurrent Observe.
func (h *Histogram) loadBuckets(counts *[histBuckets + 1]int64) int64 {
	total := int64(0)
	for i := range h.buckets {
		n := h.buckets[i].Load()
		counts[i] = n
		total += n
	}
	return total
}

// quantileFromCounts estimates the q-quantile from an immutable bucket
// count array, interpolating geometrically inside the winning bucket
// and clamping to the [min, max] observed range.
func quantileFromCounts(counts *[histBuckets + 1]int64, total int64, q, min, max float64) float64 {
	if total == 0 || q <= 0 {
		return min
	}
	if q >= 1 {
		return max
	}
	rank := q * float64(total)
	cum := 0.0
	for i := 0; i <= histBuckets; i++ {
		n := float64(counts[i])
		if n == 0 {
			continue
		}
		if cum+n >= rank {
			lo, hi := bucketBounds(i)
			// Clamp the interpolation to the observed extremes so
			// the estimate never leaves the data's range.
			if lo < min {
				lo = min
			}
			if hi > max || i == histBuckets {
				hi = max
			}
			if lo <= 0 {
				lo = math.SmallestNonzeroFloat64
			}
			if hi < lo {
				hi = lo
			}
			frac := (rank - cum) / n
			return lo * math.Pow(hi/lo, frac)
		}
		cum += n
	}
	return max
}

// Snapshot captures a self-consistent view for rendering: the bucket
// counts are loaded exactly once, and Count, the quantiles, and the
// cumulative Buckets are all derived from that single pass, so a
// snapshot taken under concurrent Observe can never report a Count
// that disagrees with its own buckets. Buckets with zero observations
// are skipped (upper bounds remain strictly increasing).
type HistogramSnapshot struct {
	Count    int64
	Sum      float64
	Min, Max float64
	P50      float64
	P95      float64
	P99      float64
	// Buckets holds (upper bound, cumulative count) pairs for every
	// non-empty bucket, in increasing bound order.
	Buckets []BucketCount
}

// BucketCount is one cumulative histogram bucket.
type BucketCount struct {
	UpperBound float64 // +Inf for the overflow bucket
	Cumulative int64
}

// Snapshot renders the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var counts [histBuckets + 1]int64
	total := h.loadBuckets(&counts)
	s := HistogramSnapshot{Count: total, Sum: h.Sum()}
	if total == 0 {
		return s
	}
	// math.Abs folds both the unset sentinel (+0.0 bits) and the
	// observed-zero sentinel (-0.0 bits) to plain zero.
	min := math.Abs(math.Float64frombits(h.minBits.Load()))
	max := math.Float64frombits(h.maxBits.Load())
	s.Min, s.Max = min, max
	s.P50 = quantileFromCounts(&counts, total, 0.50, min, max)
	s.P95 = quantileFromCounts(&counts, total, 0.95, min, max)
	s.P99 = quantileFromCounts(&counts, total, 0.99, min, max)
	cum := int64(0)
	for i, n := range counts {
		if n == 0 {
			continue
		}
		cum += n
		_, hi := bucketBounds(i)
		if i == histBuckets {
			hi = math.Inf(1)
		}
		s.Buckets = append(s.Buckets, BucketCount{UpperBound: hi, Cumulative: cum})
	}
	return s
}

// Reset zeroes every bucket and summary (not linearizable against
// concurrent Observe; intended for experiment-harness boundaries).
func (h *Histogram) Reset() {
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
	h.count.Store(0)
	h.sumBits.Store(0)
	h.minBits.Store(0)
	h.maxBits.Store(0)
}

// bucketBounds returns the (exclusive lower, inclusive upper) value
// range of bucket i.
func bucketBounds(i int) (lo, hi float64) {
	switch {
	case i == 0:
		return 0, histUpperBounds[0]
	case i >= histBuckets:
		return histUpperBounds[histBuckets-1], math.Inf(1)
	default:
		return histUpperBounds[i-1], histUpperBounds[i]
	}
}

// addFloat atomically adds v to the float64 stored as bits in addr.
func addFloat(addr *atomic.Uint64, v float64) {
	for {
		old := addr.Load()
		new := math.Float64bits(math.Float64frombits(old) + v)
		if addr.CompareAndSwap(old, new) {
			return
		}
	}
}

// negZeroBits encodes an observed value of exactly zero without
// colliding with the all-zero "unset" sentinel (v is non-negative).
var negZeroBits = math.Float64bits(math.Copysign(0, -1))

// casMin lowers the stored minimum to v (non-negative). All-zero bits
// mean the minimum is unset.
func casMin(addr *atomic.Uint64, v float64) {
	bits := math.Float64bits(v)
	if bits == 0 {
		bits = negZeroBits
	}
	for {
		old := addr.Load()
		if old != 0 && math.Float64frombits(old) <= v {
			return
		}
		if addr.CompareAndSwap(old, bits) {
			return
		}
	}
}

// casMax raises the stored maximum to v (non-negative; the zero value
// 0.0 is a valid floor).
func casMax(addr *atomic.Uint64, v float64) {
	for {
		old := addr.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if addr.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}
