package telemetry

import (
	"fmt"
	"strings"
)

// FormatKV renders a structured key=value log line:
//
//	component=transport event=rpc type=train trace=ab12 dur_ms=3.2
//
// Values containing spaces or quotes are %q-quoted. Inputs are
// alternating key, value pairs; a trailing odd value is rendered under
// the key "msg".
func FormatKV(kvs ...any) string {
	var b strings.Builder
	for i := 0; i < len(kvs); i += 2 {
		if i > 0 {
			b.WriteByte(' ')
		}
		if i+1 >= len(kvs) {
			fmt.Fprintf(&b, "msg=%s", quoteIfNeeded(fmt.Sprint(kvs[i])))
			break
		}
		fmt.Fprintf(&b, "%s=%s", fmt.Sprint(kvs[i]), quoteIfNeeded(fmt.Sprint(kvs[i+1])))
	}
	return b.String()
}

func quoteIfNeeded(v string) string {
	if v == "" || strings.ContainsAny(v, " \t\n\"=") {
		return fmt.Sprintf("%q", v)
	}
	return v
}
