package gateway

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"qens/internal/federation"
	"qens/internal/geometry"
	"qens/internal/query"
	"qens/internal/selection"
	"qens/internal/telemetry"
)

// stubExecutor is a controllable Executor: it blocks while gate is
// held (gate may be nil for instant completion), counts executions,
// and honors context cancellation — exactly the contract
// LeaderExecutor provides.
type stubExecutor struct {
	gate    chan struct{} // when non-nil, execution blocks until the gate closes
	started chan struct{} // when non-nil, receives one token per execution start
	calls   atomic.Int64
	err     error
}

func (e *stubExecutor) ExecuteQuery(ctx context.Context, q query.Query, sel selection.Selector, agg federation.Aggregation) (*federation.Result, bool, error) {
	e.calls.Add(1)
	if e.started != nil {
		e.started <- struct{}{}
	}
	if e.gate != nil {
		select {
		case <-e.gate:
		case <-ctx.Done():
			return nil, false, ctx.Err()
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, false, err
	}
	if e.err != nil {
		return nil, false, e.err
	}
	return &federation.Result{
		Query:    q,
		Selector: sel.Name(),
		Ensemble: &federation.Ensemble{},
	}, false, nil
}

func testQuery(t *testing.T, id string, lo float64) query.Query {
	t.Helper()
	q, err := query.New(id, geometry.MustRect([]float64{lo, 0}, []float64{lo + 10, 10}))
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func newTestScheduler(t *testing.T, cfg Config) *Scheduler {
	t.Helper()
	if cfg.Registry == nil {
		cfg.Registry = &telemetry.Registry{}
	}
	s, err := NewScheduler(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func TestSchedulerSubmitWait(t *testing.T) {
	exec := &stubExecutor{}
	s := newTestScheduler(t, Config{Workers: 2, QueueDepth: 4, Executor: exec})
	tk, err := s.Submit(context.Background(), Request{
		Query: testQuery(t, "q1", 0), Selector: selection.AllNodes{},
	})
	if err != nil {
		t.Fatal(err)
	}
	out, err := tk.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if out.Result.Query.ID != "q1" || out.Coalesced || out.Reused {
		t.Fatalf("unexpected outcome %+v", out)
	}
	st := s.SchedStats()
	if st.Admitted != 1 || st.CompletedOK != 1 {
		t.Fatalf("stats %+v", st)
	}
}

// TestSchedulerQueueFull fills the single worker and the queue, then
// expects ErrQueueFull — deterministically, because the gate blocks
// the worker.
func TestSchedulerQueueFull(t *testing.T) {
	gate := make(chan struct{})
	started := make(chan struct{}, 8)
	exec := &stubExecutor{gate: gate, started: started}
	s := newTestScheduler(t, Config{Workers: 1, QueueDepth: 2, Executor: exec})

	var tickets []*Ticket
	// Occupy the single worker...
	tk0, err := s.Submit(context.Background(), Request{
		Query: testQuery(t, "q0", 0), Selector: selection.AllNodes{},
	})
	if err != nil {
		t.Fatal(err)
	}
	tickets = append(tickets, tk0)
	<-started // the worker is now blocked inside the executor
	// ...then fill the queue to capacity.
	for i := 1; i <= 2; i++ {
		tk, err := s.Submit(context.Background(), Request{
			Query: testQuery(t, fmt.Sprintf("q%d", i), float64(100*i)), Selector: selection.AllNodes{},
		})
		if err != nil {
			t.Fatalf("submission %d: %v", i, err)
		}
		tickets = append(tickets, tk)
	}
	// Worker busy + queue full: the next submission must be shed.
	if _, err := s.Submit(context.Background(), Request{
		Query: testQuery(t, "overflow", 999), Selector: selection.AllNodes{},
	}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	if s.SchedStats().RejectedFull == 0 {
		t.Fatal("rejection not counted")
	}
	close(gate)
	for _, tk := range tickets {
		if _, err := tk.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
}

// TestSchedulerCoalesce: identical concurrent queries share one
// execution.
func TestSchedulerCoalesce(t *testing.T) {
	gate := make(chan struct{})
	exec := &stubExecutor{gate: gate}
	s := newTestScheduler(t, Config{Workers: 1, QueueDepth: 4, CoalesceIoU: 0.95, Executor: exec})

	q := testQuery(t, "orig", 0)
	tk1, err := s.Submit(context.Background(), Request{Query: q, Selector: selection.AllNodes{}})
	if err != nil {
		t.Fatal(err)
	}
	// Same bounds, different id: must attach to the live task.
	tk2, err := s.Submit(context.Background(), Request{
		Query: testQuery(t, "dup", 0), Selector: selection.AllNodes{},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !tk2.Coalesced {
		t.Fatal("identical concurrent query not coalesced")
	}
	// Different selector must NOT coalesce.
	tk3, err := s.Submit(context.Background(), Request{
		Query: testQuery(t, "othersel", 0), Selector: selection.Random{L: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if tk3.Coalesced {
		t.Fatal("different selector coalesced")
	}
	// Disjoint bounds must NOT coalesce.
	tk4, err := s.Submit(context.Background(), Request{
		Query: testQuery(t, "far", 500), Selector: selection.AllNodes{},
	})
	if err != nil {
		t.Fatal(err)
	}
	if tk4.Coalesced {
		t.Fatal("disjoint query coalesced")
	}
	close(gate)
	out1, err := tk1.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	out2, err := tk2.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if out1.Result != out2.Result {
		t.Fatal("coalesced waiters saw different results")
	}
	if _, err := tk3.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := tk4.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := exec.calls.Load(); got != 3 {
		t.Fatalf("executor ran %d times, want 3 (dup coalesced)", got)
	}
	if s.SchedStats().Coalesced != 1 {
		t.Fatalf("coalesced counter %d, want 1", s.SchedStats().Coalesced)
	}
}

// TestSchedulerExpiredSubmit: a dead context is rejected before
// touching the queue.
func TestSchedulerExpiredSubmit(t *testing.T) {
	exec := &stubExecutor{}
	s := newTestScheduler(t, Config{Workers: 1, QueueDepth: 1, Executor: exec})
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	start := time.Now()
	_, err := s.Submit(ctx, Request{Query: testQuery(t, "late", 0), Selector: selection.AllNodes{}})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("expired submission did not return promptly")
	}
	if exec.calls.Load() != 0 {
		t.Fatal("expired submission reached the executor")
	}
	if s.SchedStats().RejectedExp != 1 {
		t.Fatal("expired rejection not counted")
	}
}

// TestSchedulerExecutionTimeout: the per-request budget cancels a
// stuck execution and surfaces DeadlineExceeded.
func TestSchedulerExecutionTimeout(t *testing.T) {
	gate := make(chan struct{}) // never closed: execution hangs
	exec := &stubExecutor{gate: gate}
	s := newTestScheduler(t, Config{Workers: 1, QueueDepth: 1, Executor: exec})
	tk, err := s.Submit(context.Background(), Request{
		Query: testQuery(t, "slow", 0), Selector: selection.AllNodes{},
		Timeout: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tk.Wait(context.Background()); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if s.SchedStats().CompletedTime != 1 {
		t.Fatal("timeout not counted")
	}
}

// TestSchedulerWaiterAbandons: a waiter's context expiring does not
// cancel the shared task.
func TestSchedulerWaiterAbandons(t *testing.T) {
	gate := make(chan struct{})
	exec := &stubExecutor{gate: gate}
	s := newTestScheduler(t, Config{Workers: 1, QueueDepth: 1, Executor: exec})
	tk, err := s.Submit(context.Background(), Request{
		Query: testQuery(t, "q", 0), Selector: selection.AllNodes{},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := tk.Wait(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want waiter deadline", err)
	}
	close(gate)
	// The task itself still completes successfully.
	if _, err := tk.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestSchedulerDrain: draining rejects new work, finishes queued work,
// and releases the workers.
func TestSchedulerDrain(t *testing.T) {
	gate := make(chan struct{})
	exec := &stubExecutor{gate: gate}
	s := newTestScheduler(t, Config{Workers: 1, QueueDepth: 4, Executor: exec})
	var tickets []*Ticket
	for i := 0; i < 3; i++ {
		tk, err := s.Submit(context.Background(), Request{
			Query: testQuery(t, fmt.Sprintf("q%d", i), float64(100*i)), Selector: selection.AllNodes{},
		})
		if err != nil {
			t.Fatal(err)
		}
		tickets = append(tickets, tk)
	}

	drained := make(chan error, 1)
	go func() { drained <- s.Drain(context.Background()) }()

	// Drain must flip admission off promptly even while work is
	// blocked on the gate.
	deadline := time.Now().Add(2 * time.Second)
	for !s.Draining() {
		if time.Now().After(deadline) {
			t.Fatal("scheduler never started draining")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := s.Submit(context.Background(), Request{
		Query: testQuery(t, "late", 900), Selector: selection.AllNodes{},
	}); !errors.Is(err, ErrDraining) {
		t.Fatalf("err = %v, want ErrDraining", err)
	}

	close(gate)
	if err := <-drained; err != nil {
		t.Fatal(err)
	}
	for _, tk := range tickets {
		if _, err := tk.Wait(context.Background()); err != nil {
			t.Fatalf("queued work dropped during drain: %v", err)
		}
	}
	if s.SchedStats().CompletedOK != 3 {
		t.Fatalf("completed %d, want 3", s.SchedStats().CompletedOK)
	}
}

// TestSchedulerDrainTimeout: a drain deadline cancels stuck work
// instead of hanging forever.
func TestSchedulerDrainTimeout(t *testing.T) {
	gate := make(chan struct{}) // never closed
	exec := &stubExecutor{gate: gate}
	s := newTestScheduler(t, Config{Workers: 1, QueueDepth: 1, Executor: exec})
	tk, err := s.Submit(context.Background(), Request{
		Query: testQuery(t, "stuck", 0), Selector: selection.AllNodes{},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := s.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("drain err = %v, want deadline", err)
	}
	if _, err := tk.Wait(context.Background()); !errors.Is(err, context.Canceled) {
		t.Fatalf("stuck task err = %v, want context.Canceled", err)
	}
}

// TestSchedulerConcurrentSubmit hammers Submit/Wait from many
// goroutines (run under -race by make check).
func TestSchedulerConcurrentSubmit(t *testing.T) {
	exec := &stubExecutor{}
	s := newTestScheduler(t, Config{Workers: 4, QueueDepth: 64, CoalesceIoU: 0.95, Executor: exec})
	var wg sync.WaitGroup
	errs := make(chan error, 128)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				tk, err := s.Submit(context.Background(), Request{
					Query:    testQuery(t, fmt.Sprintf("g%d-i%d", g, i), float64(20*(i%4))),
					Selector: selection.AllNodes{},
				})
				if errors.Is(err, ErrQueueFull) {
					continue // legitimate shed under burst
				}
				if err != nil {
					errs <- err
					return
				}
				if _, err := tk.Wait(context.Background()); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	st := s.SchedStats()
	if st.CompletedOK != st.Admitted {
		t.Fatalf("admitted %d but completed %d", st.Admitted, st.CompletedOK)
	}
}
