package gateway

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"qens/internal/cluster"
	"qens/internal/federation"
	"qens/internal/ml"
	"qens/internal/region"
	"qens/internal/rng"
	"qens/internal/telemetry"
)

// routerFixture builds a 4-node fleet split into two spatial shards
// under a root region router. The left shard covers x∈[0,22], the
// right x∈[40,62]; data follows y = 2x+1, so a query disjoint from the
// fleet in both dimensions is a genuine no-candidates miss.
func routerFixture(t *testing.T) *region.Router {
	t.Helper()
	slabs := [][2]float64{{0, 10}, {12, 22}, {40, 50}, {52, 62}}
	cfg := federation.Config{Spec: ml.PaperLR(1), ClusterK: 3, LocalEpochs: 2, Seed: 42}
	summaries := make([]cluster.NodeSummary, len(slabs))
	nodes := make([]*federation.Node, len(slabs))
	rosterIndex := make(map[string]int, len(slabs))
	for i, s := range slabs {
		n, err := federation.NewNode(fmt.Sprintf("node-%d", i),
			lineDataset(150, 2, 1, s[0], s[1], 10+uint64(i)), 3, rng.New(1000+uint64(i)))
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = n
		summaries[i] = n.Summary()
		rosterIndex[n.ID()] = i
	}
	shards, err := region.Partition(summaries, 2)
	if err != nil {
		t.Fatal(err)
	}
	services := make([]region.Service, 0, len(shards))
	for r, shard := range shards {
		clients := make([]federation.Client, 0, len(shard))
		for _, idx := range shard {
			clients = append(clients, federation.LocalClient{Node: nodes[idx]})
		}
		fed, err := federation.NewLeader(cfg, nil, clients)
		if err != nil {
			t.Fatal(err)
		}
		lead, err := region.NewLeader(fmt.Sprintf("region-%d", r), fed, rosterIndex)
		if err != nil {
			t.Fatal(err)
		}
		services = append(services, lead)
	}
	router, err := region.NewRouter(region.Config{
		Spec: cfg.Spec, LocalEpochs: cfg.LocalEpochs, Seed: cfg.Seed,
	}, services)
	if err != nil {
		t.Fatal(err)
	}
	return router
}

func getJSONDoc(t *testing.T, url string) map[string]any {
	t.Helper()
	var doc map[string]any
	if code := getJSON(t, url, &doc); code != http.StatusOK {
		t.Fatalf("GET %s: %d: %v", url, code, doc)
	}
	return doc
}

// TestRouterModeEndToEnd drives the full HTTP surface against a
// sharded topology: query execution, EXPLAIN, per-region stats and the
// per-region fleet report.
func TestRouterModeEndToEnd(t *testing.T) {
	_, ts := newGatewayServer(t, ServerConfig{
		Router: routerFixture(t), Workers: 2, QueueDepth: 8,
	})

	// A left-band query (x and y windows both over the left shard).
	code, doc, _, err := doPost(ts.URL,
		`{"id":"left","bounds":{"min":[1,-500],"max":[20,75]},"selector":"query-driven","epsilon":1e-9,"top_l":2}`)
	if err != nil {
		t.Fatal(err)
	}
	if code != http.StatusOK {
		t.Fatalf("left query: %d: %v", code, doc)
	}
	parts, _ := doc["participants"].([]any)
	if len(parts) == 0 {
		t.Fatalf("left query selected no participants: %v", doc)
	}

	// EXPLAIN reports the cross-region merged ranking and the regions.
	resp, err := http.Post(ts.URL+"/v1/plan", "application/json",
		strings.NewReader(`{"bounds":{"min":[1,-500],"max":[60,500]},"selector":"query-driven","epsilon":1e-9,"top_l":2}`))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("plan: %d: %s", resp.StatusCode, raw)
	}
	var plan map[string]any
	if err := json.Unmarshal(raw, &plan); err != nil {
		t.Fatal(err)
	}
	if regions, _ := plan["regions"].([]any); len(regions) != 2 {
		t.Fatalf("plan regions = %v, want 2 entries", plan["regions"])
	}
	if ranks, _ := plan["rankings"].([]any); len(ranks) != 4 {
		t.Fatalf("plan rankings = %d rows, want full fleet (4)", len(plan["rankings"].([]any)))
	}

	// /v1/stats carries the router block with per-region membership,
	// epochs and routing counts.
	stats := getJSONDoc(t, ts.URL+"/v1/stats")
	router, ok := stats["router"].(map[string]any)
	if !ok {
		t.Fatalf("stats has no router block: %v", stats)
	}
	regions, _ := router["regions"].([]any)
	if len(regions) != 2 {
		t.Fatalf("router stats regions = %v, want 2", router["regions"])
	}
	var routedTotal float64
	for _, r := range regions {
		reg := r.(map[string]any)
		if reg["region_id"] == "" || reg["nodes"].(float64) != 2 || reg["epoch"].(float64) == 0 {
			t.Fatalf("region stat incomplete: %v", reg)
		}
		routedTotal += reg["routed"].(float64)
	}
	if routedTotal == 0 {
		t.Fatal("no routed queries recorded in region stats")
	}
	if nodes, _ := stats["nodes"].([]any); len(nodes) != 4 {
		t.Fatalf("stats nodes = %v, want the 4-node global roster", stats["nodes"])
	}
	if stats["space"] == nil {
		t.Fatal("stats missing the global space rect")
	}

	// /v1/fleet reports per-region health blocks.
	fleetDoc := getJSONDoc(t, ts.URL+"/v1/fleet")
	fleetRegions, _ := fleetDoc["regions"].([]any)
	if len(fleetRegions) != 2 {
		t.Fatalf("fleet regions = %v, want 2", fleetDoc["regions"])
	}
	for _, r := range fleetRegions {
		reg := r.(map[string]any)
		if ids, _ := reg["node_ids"].([]any); len(ids) != 2 {
			t.Fatalf("fleet region %v: want 2 node ids", reg)
		}
		if reg["registry_epoch"].(float64) == 0 {
			t.Fatalf("fleet region %v: unresolved registry epoch", reg)
		}
	}
	if nodes, _ := fleetDoc["nodes"].([]any); len(nodes) != 4 {
		t.Fatalf("fleet nodes = %d entries, want 4", len(fleetDoc["nodes"].([]any)))
	}
}

// TestRouterModeZeroOverlapRejected422: a query rectangle disjoint
// from every region in every dimension is a property of the query, not
// a server fault — the gateway rejects it with the no-candidates
// taxonomy (422) at admission, before it can occupy a queue slot.
func TestRouterModeZeroOverlapRejected422(t *testing.T) {
	_, ts := newGatewayServer(t, ServerConfig{
		Router: routerFixture(t), Workers: 1, QueueDepth: 2,
	})
	code, doc, _, err := doPost(ts.URL,
		`{"id":"miss","bounds":{"min":[500,2000],"max":[600,3000]},"selector":"query-driven","epsilon":1e-9,"top_l":2}`)
	if err != nil {
		t.Fatal(err)
	}
	if code != http.StatusUnprocessableEntity {
		t.Fatalf("zero-overlap query: status %d (%v), want 422", code, doc)
	}
	msg, _ := doc["error"].(string)
	if !strings.Contains(msg, "no node supports the query") {
		t.Fatalf("zero-overlap query error %q lacks the no-candidates taxonomy", msg)
	}
}

// TestRouterModeConfigValidation: the topology backends are mutually
// exclusive and the single-leader cache cannot front a router.
func TestRouterModeConfigValidation(t *testing.T) {
	if _, err := NewServer(ServerConfig{}); err == nil {
		t.Fatal("no backend accepted")
	}
	router := routerFixture(t)
	fleet := testFleet(t)
	if _, err := NewServer(ServerConfig{Leader: fleet.Leader, Router: router}); err == nil {
		t.Fatal("both backends accepted")
	}
	cache, err := federation.NewReuseCache(0.9, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewServer(ServerConfig{Router: router, Cache: cache}); err == nil {
		t.Fatal("router + leader cache accepted")
	}
	srv, err := NewServer(ServerConfig{Router: router, Workers: 1, QueueDepth: 1, Registry: &telemetry.Registry{}})
	if err != nil {
		t.Fatal(err)
	}
	srv.Close()
}
