package gateway

import (
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"qens/internal/federation"
	"qens/internal/selection"
)

// TestGatewayApproxAnswerBefore422: a query that selection cannot
// place (psi above any achievable rank — no supporting candidates) is
// served from the model cache instead of being rejected, first exact
// then approx.
func TestGatewayApproxAnswerBefore422(t *testing.T) {
	fleet := testFleet(t)
	cache, err := federation.NewAdaptiveCache(0.9, 8, federation.ApproxConfig{
		MaxPredictedError: 0.9, MinCoverage: 0.05, ProbeEvery: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newGatewayServer(t, ServerConfig{Leader: fleet.Leader, Cache: cache})

	// Warm the cache with a plannable query.
	code, doc, _ := postQuery(t, ts.URL,
		`{"bounds":{"min":[10,-50],"max":[40,150]},"selector":"query-driven","epsilon":0.6,"top_l":2}`)
	if code != http.StatusOK {
		t.Fatalf("warm query: status %d (%v)", code, doc)
	}

	// Identical bounds at an unsatisfiable psi threshold: planning
	// fails with no-candidates, but the exact tier answers.
	code, doc, _ = postQuery(t, ts.URL,
		`{"bounds":{"min":[10,-50],"max":[40,150]},"selector":"query-driven","epsilon":0.6,"psi":100}`)
	if code != http.StatusOK {
		t.Fatalf("unplannable exact query: status %d (%v), want 200 from cache", code, doc)
	}
	if reused, _ := doc["reused"].(bool); !reused {
		t.Fatalf("cache-served response not marked reused: %v", doc)
	}
	if approx, _ := doc["approx"].(bool); approx {
		t.Fatalf("exact-tier serve marked approx: %v", doc)
	}

	// Shifted bounds: exact IoU misses, training-rectangle coverage
	// carries it through the approximate tier.
	code, doc, _ = postQuery(t, ts.URL,
		`{"bounds":{"min":[15,-50],"max":[35,150]},"selector":"query-driven","epsilon":0.6,"psi":100}`)
	if code != http.StatusOK {
		t.Fatalf("unplannable covered query: status %d (%v), want 200 from approx tier", code, doc)
	}
	if approx, _ := doc["approx"].(bool); !approx {
		t.Fatalf("approx-tier serve not marked approx: %v", doc)
	}

	// A query the cache cannot cover still gets the 422.
	code, doc, _ = postQuery(t, ts.URL,
		`{"bounds":{"min":[1000,1000],"max":[1001,1001]},"selector":"query-driven","epsilon":0.6,"top_l":2}`)
	if code != http.StatusUnprocessableEntity {
		t.Fatalf("uncoverable query: status %d (%v), want 422", code, doc)
	}

	// The stats surface carries the full cache scorecard — and the
	// scheduler admitted only the warm query: the cache-served answers
	// never occupied a queue slot.
	var stats struct {
		Scheduler Stats                       `json:"scheduler"`
		Reuse     *federation.ReuseCacheStats `json:"reuse_cache"`
	}
	getJSON(t, ts.URL+"/v1/stats", &stats)
	if stats.Reuse == nil || !stats.Reuse.ApproxEnabled || stats.Reuse.ApproxHits < 1 {
		t.Fatalf("stats reuse block %+v: want approx tier visible", stats.Reuse)
	}
	if stats.Scheduler.Admitted != 1 {
		t.Fatalf("scheduler admitted %d queries, want 1 (cache answers bypass admission)", stats.Scheduler.Admitted)
	}
}

// TestGatewayBanditAutoSelector drives selector "auto" end to end: the
// bandit picks arms, finished queries feed rewards back, EXPLAIN uses
// the side-effect-free greedy arm, and /v1/stats shows the scoreboard.
func TestGatewayBanditAutoSelector(t *testing.T) {
	fleet := testFleet(t)
	bandit, err := selection.NewConfigBandit(selection.DefaultConfigArms(0.6), selection.BanditConfig{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newGatewayServer(t, ServerConfig{Leader: fleet.Leader, Bandit: bandit})

	const n = 6
	for i := 0; i < n; i++ {
		code, doc, _ := postQuery(t, ts.URL, fmt.Sprintf(
			`{"id":"auto-%d","bounds":{"min":[10,-50],"max":[40,150]},"selector":"auto"}`, i))
		if code != http.StatusOK {
			t.Fatalf("auto query %d: status %d (%v)", i, code, doc)
		}
	}

	// Rewards land in a detached tracker goroutine; poll briefly.
	deadline := time.Now().Add(5 * time.Second)
	for {
		var total int64
		for _, s := range bandit.Stats() {
			total += s.Plays
		}
		if total == n {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("bandit observed %d plays, want %d", total, n)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// EXPLAIN with "auto" resolves the greedy arm without playing it.
	resp, err := http.Post(ts.URL+"/v1/plan", "application/json",
		strings.NewReader(`{"bounds":{"min":[10,-50],"max":[40,150]},"selector":"auto"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("plan auto: status %d", resp.StatusCode)
	}
	var total int64
	for _, s := range bandit.Stats() {
		total += s.Plays
	}
	if total != n {
		t.Fatalf("EXPLAIN advanced the bandit: %d plays, want %d", total, n)
	}

	var stats struct {
		Bandit []selection.ArmStats `json:"bandit"`
	}
	getJSON(t, ts.URL+"/v1/stats", &stats)
	if len(stats.Bandit) != len(selection.DefaultConfigArms(0.6)) {
		t.Fatalf("stats bandit block has %d arms", len(stats.Bandit))
	}
}

// TestGatewayAutoSelectorWithoutBandit: "auto" without the bandit
// configured is a client error, not a crash.
func TestGatewayAutoSelectorWithoutBandit(t *testing.T) {
	fleet := testFleet(t)
	_, ts := newGatewayServer(t, ServerConfig{Leader: fleet.Leader})
	code, doc, _ := postQuery(t, ts.URL,
		`{"bounds":{"min":[10,-50],"max":[40,150]},"selector":"auto"}`)
	if code != http.StatusBadRequest {
		t.Fatalf("status %d (%v), want 400", code, doc)
	}
}
