// Package gateway turns the batch-oriented federation leader into an
// online query-serving system: an HTTP/JSON API backed by a bounded
// worker-pool scheduler with admission control, singleflight-style
// coalescing of overlapping in-flight queries, and per-query deadlines
// propagated as context.Context all the way to the transport layer.
//
// The serving pipeline is
//
//	HTTP handler -> Scheduler.Submit (admission) -> worker pool
//	            -> Executor (federation.Leader) -> edge nodes
//
// Admission is a fixed-depth queue: when it is full the gateway sheds
// load immediately (HTTP 429 + Retry-After) instead of building an
// unbounded backlog — the fleet's training capacity, not the leader's
// memory, is the bottleneck worth protecting.
package gateway

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"qens/internal/federation"
	"qens/internal/geometry"
	"qens/internal/query"
	"qens/internal/selection"
	"qens/internal/telemetry"
)

// Sentinel errors surfaced by Submit; the HTTP layer maps them to
// status codes (429, 503).
var (
	// ErrQueueFull reports that the admission queue is at capacity.
	ErrQueueFull = errors.New("gateway: admission queue full")
	// ErrDraining reports that the scheduler is shutting down and no
	// longer accepts queries.
	ErrDraining = errors.New("gateway: draining, not accepting queries")
)

// Executor runs one admitted query. The production implementation is
// LeaderExecutor; tests substitute controllable stubs. reused reports
// that the result came from a reuse cache rather than fresh training.
type Executor interface {
	ExecuteQuery(ctx context.Context, q query.Query, sel selection.Selector, agg federation.Aggregation) (res *federation.Result, reused bool, err error)
}

// KindExecutor is the optional richer seam: executors that can say
// WHICH serving tier answered (fresh training, exact reuse,
// approximate model-answer, ground-truth probe) implement it alongside
// Executor. The scheduler type-asserts for it so third-party Executor
// stubs keep working unchanged. LeaderExecutor and *region.Router both
// implement it.
type KindExecutor interface {
	ExecuteQueryKind(ctx context.Context, q query.Query, sel selection.Selector, agg federation.Aggregation) (*federation.Result, federation.ServeKind, error)
}

// Request is one unit of work offered to the scheduler.
type Request struct {
	Query       query.Query
	Selector    selection.Selector
	Aggregation federation.Aggregation
	// Timeout bounds the query's execution once a worker picks it up
	// (0 uses the scheduler default). Queue wait does not consume the
	// budget; admission control bounds that separately.
	Timeout time.Duration
	// PlanKey, when non-empty, is the plan.Plan.Key() fingerprint the
	// submitter computed for this query (participants + training
	// directives at one advertisement epoch). Two live requests with
	// equal keys would execute identical work, so they coalesce
	// exactly — regardless of rectangle IoU.
	PlanKey string
}

// Config parameterizes a Scheduler.
type Config struct {
	// Workers is the worker-pool size (default 4). It caps how many
	// queries train on the fleet concurrently.
	Workers int
	// QueueDepth is the admission queue capacity (default 64).
	// Submissions beyond Workers in-flight plus QueueDepth queued
	// are rejected with ErrQueueFull.
	QueueDepth int
	// DefaultTimeout is the per-query execution budget applied when a
	// Request carries none (default 30s).
	DefaultTimeout time.Duration
	// CoalesceIoU enables request coalescing: a submission whose
	// rectangle has IoU >= CoalesceIoU with a live (queued or
	// executing) query under the same selector and aggregation
	// attaches to that query instead of enqueueing. 0 disables;
	// 1 coalesces only identical rectangles.
	CoalesceIoU float64
	// Executor runs admitted queries. Required.
	Executor Executor
	// Registry receives the scheduler's metrics (default
	// telemetry.Default()).
	Registry *telemetry.Registry
}

func (c Config) withDefaults() Config {
	if c.Workers == 0 {
		c.Workers = 4
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 64
	}
	if c.DefaultTimeout == 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.Registry == nil {
		c.Registry = telemetry.Default()
	}
	return c
}

// task is one admitted query plus its completion state. Coalesced
// submissions share a task; everything written before close(done) is
// visible to every waiter.
type task struct {
	req      Request
	enqueued time.Time

	done      chan struct{}
	res       *federation.Result
	reused    bool
	kind      federation.ServeKind
	err       error
	queueWait time.Duration
	elapsed   time.Duration
}

// Ticket is a caller's handle on an admitted (possibly shared) task.
type Ticket struct {
	// Coalesced reports that this submission attached to an already
	// live query instead of enqueueing its own.
	Coalesced bool
	t         *task
}

// Outcome is a completed query as seen by one waiter.
type Outcome struct {
	Result *federation.Result
	// Reused reports a reuse-cache hit inside the executor.
	Reused bool
	// Kind is the serving tier that answered (fresh/exact/approx/
	// probe) when the executor implements KindExecutor; ServeFresh
	// otherwise.
	Kind federation.ServeKind
	// Coalesced reports that the waiter shared another query's task.
	Coalesced bool
	// QueueWait is the time the task spent in the admission queue.
	QueueWait time.Duration
	// Elapsed is admission-to-completion wall time.
	Elapsed time.Duration
}

// Wait blocks until the task completes or ctx is done. Abandoning a
// wait does not cancel the task: coalesced peers may still depend on
// it, and its result warms the reuse cache either way.
func (tk *Ticket) Wait(ctx context.Context) (*Outcome, error) {
	select {
	case <-tk.t.done:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	if tk.t.err != nil {
		return nil, tk.t.err
	}
	return &Outcome{
		Result:    tk.t.res,
		Reused:    tk.t.reused,
		Kind:      tk.t.kind,
		Coalesced: tk.Coalesced,
		QueueWait: tk.t.queueWait,
		Elapsed:   tk.t.elapsed,
	}, nil
}

// Done returns a channel closed when the task completes.
func (tk *Ticket) Done() <-chan struct{} { return tk.t.done }

// schedMetrics holds the metric handles, resolved once at construction
// so the hot path is pure atomics.
type schedMetrics struct {
	queueDepth    *telemetry.Gauge
	inflight      *telemetry.Gauge
	admitted      *telemetry.Counter
	rejectedFull  *telemetry.Counter
	rejectedDrain *telemetry.Counter
	rejectedExp   *telemetry.Counter
	coalesced     *telemetry.Counter
	completedOK   *telemetry.Counter
	completedErr  *telemetry.Counter
	completedTime *telemetry.Counter
	e2eMS         *telemetry.Histogram
	e2eWin        *telemetry.RollingHistogram
	queueWaitMS   *telemetry.Histogram
}

func newSchedMetrics(reg *telemetry.Registry) *schedMetrics {
	reg.SetHelp("qens_gateway_queue_depth", "Queries waiting in the admission queue.")
	reg.SetHelp("qens_gateway_inflight", "Queries currently executing on the fleet.")
	reg.SetHelp("qens_gateway_admitted_total", "Queries admitted into the queue.")
	reg.SetHelp("qens_gateway_rejected_total", "Queries rejected at admission, by reason.")
	reg.SetHelp("qens_gateway_coalesced_total", "Submissions attached to an already in-flight query.")
	reg.SetHelp("qens_gateway_completed_total", "Finished queries, by status.")
	reg.SetHelp("qens_gateway_e2e_ms", "Admission-to-completion latency (ms).")
	reg.SetHelp("qens_gateway_queue_wait_ms", "Time spent queued before a worker picked the query up (ms).")
	e2e := reg.Histogram("qens_gateway_e2e_ms")
	win := e2e.Window()
	if win == nil {
		// The rolling view answers "how is the gateway behaving right
		// now" next to the cumulative series; /metrics renders it as
		// *_win_* companions and /v1/stats embeds it under latency.
		win = e2e.EnableWindow(defaultLatencyWindow, 6)
	}
	return &schedMetrics{
		queueDepth:    reg.Gauge("qens_gateway_queue_depth"),
		inflight:      reg.Gauge("qens_gateway_inflight"),
		admitted:      reg.Counter("qens_gateway_admitted_total"),
		rejectedFull:  reg.Counter("qens_gateway_rejected_total", telemetry.L("reason", "queue_full")...),
		rejectedDrain: reg.Counter("qens_gateway_rejected_total", telemetry.L("reason", "draining")...),
		rejectedExp:   reg.Counter("qens_gateway_rejected_total", telemetry.L("reason", "expired")...),
		coalesced:     reg.Counter("qens_gateway_coalesced_total"),
		completedOK:   reg.Counter("qens_gateway_completed_total", telemetry.L("status", "ok")...),
		completedErr:  reg.Counter("qens_gateway_completed_total", telemetry.L("status", "error")...),
		completedTime: reg.Counter("qens_gateway_completed_total", telemetry.L("status", "timeout")...),
		e2eMS:         e2e,
		e2eWin:        win,
		queueWaitMS:   reg.Histogram("qens_gateway_queue_wait_ms"),
	}
}

// defaultLatencyWindow is the rolling span of the "last minute" view
// on the gateway's end-to-end latency.
const defaultLatencyWindow = 60 * time.Second

// Scheduler is the gateway's admission-controlled worker pool.
type Scheduler struct {
	cfg Config

	queue      chan *task
	rootCtx    context.Context
	rootCancel context.CancelFunc
	wg         sync.WaitGroup

	mu       sync.Mutex
	draining bool
	live     []*task // queued or executing; the coalescing scan set

	inflight atomic.Int64
	m        *schedMetrics
}

// NewScheduler builds and starts a scheduler; callers must Drain (or
// Close) it to release the workers.
func NewScheduler(cfg Config) (*Scheduler, error) {
	cfg = cfg.withDefaults()
	if cfg.Executor == nil {
		return nil, errors.New("gateway: scheduler needs an executor")
	}
	if cfg.Workers < 1 {
		return nil, fmt.Errorf("gateway: workers %d < 1", cfg.Workers)
	}
	if cfg.QueueDepth < 1 {
		return nil, fmt.Errorf("gateway: queue depth %d < 1", cfg.QueueDepth)
	}
	if cfg.CoalesceIoU < 0 || cfg.CoalesceIoU > 1 {
		return nil, fmt.Errorf("gateway: coalesce IoU %v outside [0,1]", cfg.CoalesceIoU)
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Scheduler{
		cfg:        cfg,
		queue:      make(chan *task, cfg.QueueDepth),
		rootCtx:    ctx,
		rootCancel: cancel,
		m:          newSchedMetrics(cfg.Registry),
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// coalesceMatch reports whether a live task can serve req: same
// selector mechanism, same aggregation, and either an exact plan-key
// match (the two queries would train the same participants on the same
// clusters at the same advertisement epoch) or rectangle IoU at or
// above the threshold.
func coalesceMatch(live, incoming Request, minIoU float64) bool {
	if live.Selector.Name() != incoming.Selector.Name() {
		return false
	}
	if live.Aggregation != incoming.Aggregation {
		return false
	}
	if live.PlanKey != "" && live.PlanKey == incoming.PlanKey {
		return true
	}
	if minIoU <= 0 {
		return false
	}
	if live.Query.Dims() != incoming.Query.Dims() {
		return false
	}
	return geometry.IoU(live.Query.Bounds, incoming.Query.Bounds) >= minIoU
}

// Submit offers a query for execution. It never blocks: the request is
// either coalesced onto a live task, enqueued, or rejected
// (ErrQueueFull / ErrDraining). A ctx that is already done is rejected
// with its error before touching the queue — an expired deadline must
// not consume fleet capacity.
func (s *Scheduler) Submit(ctx context.Context, req Request) (*Ticket, error) {
	if err := ctx.Err(); err != nil {
		s.m.rejectedExp.Inc()
		return nil, err
	}
	if req.Selector == nil {
		return nil, errors.New("gateway: nil selector")
	}
	if req.Query.Dims() == 0 {
		return nil, errors.New("gateway: query has no dimensions")
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.m.rejectedDrain.Inc()
		return nil, ErrDraining
	}
	if s.cfg.CoalesceIoU > 0 || req.PlanKey != "" {
		for _, t := range s.live {
			if coalesceMatch(t.req, req, s.cfg.CoalesceIoU) {
				s.mu.Unlock()
				s.m.coalesced.Inc()
				return &Ticket{t: t, Coalesced: true}, nil
			}
		}
	}
	t := &task{req: req, enqueued: time.Now(), done: make(chan struct{})}
	select {
	case s.queue <- t:
		s.live = append(s.live, t)
		s.mu.Unlock()
		s.m.admitted.Inc()
		s.m.queueDepth.Set(float64(len(s.queue)))
		return &Ticket{t: t}, nil
	default:
		s.mu.Unlock()
		s.m.rejectedFull.Inc()
		return nil, ErrQueueFull
	}
}

func (s *Scheduler) worker() {
	defer s.wg.Done()
	for t := range s.queue {
		s.run(t)
	}
}

// run executes one task and publishes its outcome.
func (s *Scheduler) run(t *task) {
	t.queueWait = time.Since(t.enqueued)
	s.m.queueWaitMS.Observe(float64(t.queueWait) / float64(time.Millisecond))
	s.m.queueDepth.Set(float64(len(s.queue)))
	s.m.inflight.Set(float64(s.inflight.Add(1)))

	timeout := t.req.Timeout
	if timeout <= 0 {
		timeout = s.cfg.DefaultTimeout
	}
	// The execution context hangs off the scheduler root, not any
	// individual submitter: coalesced peers (and the reuse cache)
	// depend on the task even when its originator walks away.
	ctx, cancel := context.WithTimeout(s.rootCtx, timeout)
	if ke, ok := s.cfg.Executor.(KindExecutor); ok {
		t.res, t.kind, t.err = ke.ExecuteQueryKind(ctx, t.req.Query, t.req.Selector, t.req.Aggregation)
		t.reused = t.kind.Reused()
	} else {
		t.res, t.reused, t.err = s.cfg.Executor.ExecuteQuery(ctx, t.req.Query, t.req.Selector, t.req.Aggregation)
		if t.reused {
			t.kind = federation.ServeExact
		}
	}
	cancel()
	t.elapsed = time.Since(t.enqueued)

	s.mu.Lock()
	for i, lt := range s.live {
		if lt == t {
			s.live = append(s.live[:i], s.live[i+1:]...)
			break
		}
	}
	s.mu.Unlock()
	close(t.done)

	s.m.inflight.Set(float64(s.inflight.Add(-1)))
	s.m.e2eMS.Observe(float64(t.elapsed) / float64(time.Millisecond))
	switch {
	case t.err == nil:
		s.m.completedOK.Inc()
	case errors.Is(t.err, context.DeadlineExceeded):
		s.m.completedTime.Inc()
	default:
		s.m.completedErr.Inc()
	}
}

// Draining reports whether the scheduler has begun shutting down.
func (s *Scheduler) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Drain stops admission (new Submits return ErrDraining), lets queued
// and in-flight queries finish, and releases the workers. If ctx
// expires first, the remaining executions are canceled and Drain
// returns ctx.Err() once the workers exit. Drain is idempotent.
func (s *Scheduler) Drain(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		// Submit holds mu across its send, so closing under mu
		// cannot race a send on the closed channel.
		close(s.queue)
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.rootCancel()
		<-done
		return ctx.Err()
	}
}

// Close force-drains: in-flight executions are canceled immediately.
// Intended for tests and fatal shutdown paths.
func (s *Scheduler) Close() {
	s.rootCancel()
	_ = s.Drain(context.Background())
}

// Stats is a point-in-time scheduler snapshot, surfaced by /v1/stats.
type Stats struct {
	Workers       int   `json:"workers"`
	QueueCapacity int   `json:"queue_capacity"`
	QueueDepth    int   `json:"queue_depth"`
	InFlight      int   `json:"inflight"`
	Draining      bool  `json:"draining"`
	Admitted      int64 `json:"admitted"`
	RejectedFull  int64 `json:"rejected_queue_full"`
	RejectedDrain int64 `json:"rejected_draining"`
	RejectedExp   int64 `json:"rejected_expired"`
	Coalesced     int64 `json:"coalesced"`
	CompletedOK   int64 `json:"completed_ok"`
	CompletedErr  int64 `json:"completed_error"`
	CompletedTime int64 `json:"completed_timeout"`
}

// SchedStats snapshots the scheduler counters.
func (s *Scheduler) SchedStats() Stats {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	return Stats{
		Workers:       s.cfg.Workers,
		QueueCapacity: s.cfg.QueueDepth,
		QueueDepth:    len(s.queue),
		InFlight:      int(s.inflight.Load()),
		Draining:      draining,
		Admitted:      s.m.admitted.Value(),
		RejectedFull:  s.m.rejectedFull.Value(),
		RejectedDrain: s.m.rejectedDrain.Value(),
		RejectedExp:   s.m.rejectedExp.Value(),
		Coalesced:     s.m.coalesced.Value(),
		CompletedOK:   s.m.completedOK.Value(),
		CompletedErr:  s.m.completedErr.Value(),
		CompletedTime: s.m.completedTime.Value(),
	}
}

// LatencySnapshot returns the end-to-end latency histogram snapshot
// (admission to completion, milliseconds).
func (s *Scheduler) LatencySnapshot() telemetry.HistogramSnapshot {
	return s.m.e2eMS.Snapshot()
}

// LatencyWindow returns the rolling last-window view of the same
// end-to-end latency (see telemetry.RollingHistogram).
func (s *Scheduler) LatencyWindow() telemetry.WindowStats {
	return s.m.e2eWin.Stats()
}

// LeaderExecutor adapts a federation.Leader (optionally fronted by a
// ReuseCache) to the Executor interface.
type LeaderExecutor struct {
	Leader *federation.Leader
	// Cache, when non-nil, serves high-IoU repeats without training.
	Cache *federation.ReuseCache
}

// ExecuteQuery implements Executor.
func (e LeaderExecutor) ExecuteQuery(ctx context.Context, q query.Query, sel selection.Selector, agg federation.Aggregation) (*federation.Result, bool, error) {
	res, kind, err := e.ExecuteQueryKind(ctx, q, sel, agg)
	return res, kind.Reused(), err
}

// ExecuteQueryKind implements KindExecutor: the full adaptive pipeline
// (exact reuse → approximate model-answer → probe → fresh training)
// when a cache is installed, plain execution otherwise.
func (e LeaderExecutor) ExecuteQueryKind(ctx context.Context, q query.Query, sel selection.Selector, agg federation.Aggregation) (*federation.Result, federation.ServeKind, error) {
	if e.Cache != nil {
		return e.Leader.ExecuteAdaptiveContext(ctx, e.Cache, q, sel, agg)
	}
	res, err := e.Leader.ExecuteContext(ctx, q, sel, agg)
	return res, federation.ServeFresh, err
}
