package gateway

import (
	"context"
	"testing"
	"time"
)

// TestGatewayDrainStopsPush is the gateway half of the push-drain
// satellite: Drain gates summary-push delivery off before the
// scheduler drains, so frames from still-connected participants cannot
// mutate the registry mid-teardown.
func TestGatewayDrainStopsPush(t *testing.T) {
	fleet := testFleet(t)
	leader := fleet.Leader
	if _, err := leader.Summaries(); err != nil {
		t.Fatal(err)
	}
	n, err := leader.StartPush(context.Background())
	if err != nil || n != 3 {
		t.Fatalf("StartPush: n=%d err=%v", n, err)
	}

	gw, ts := newGatewayServer(t, ServerConfig{
		Leader: leader, Workers: 2, QueueDepth: 8,
	})

	// Push mode live: a node-side requantization lands in the registry
	// with no pull involved. Delivery is asynchronous (the handler hands
	// off to the leader's applier goroutine), so wait bounded.
	if err := fleet.Nodes[1].Requantize(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for leader.Registry().Stats().PushApplied == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("requantize did not push: %+v", leader.Registry().Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}

	// /healthz surfaces the freshness mode and push accounting.
	var doc map[string]any
	if code := getJSON(t, ts.URL+"/healthz", &doc); code != 200 {
		t.Fatalf("healthz status %d", code)
	}
	if doc["summary_mode"] != "push" {
		t.Fatalf("summary_mode = %v", doc["summary_mode"])
	}
	if got, _ := doc["push_subscribed"].(float64); int(got) != 3 {
		t.Fatalf("push_subscribed = %v", doc["push_subscribed"])
	}
	if got, _ := doc["push_applied"].(float64); got < 1 {
		t.Fatalf("push_applied = %v", doc["push_applied"])
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := gw.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}

	// Post-drain pushes are dropped at the leader, not applied.
	before := leader.Registry().Stats().PushApplied
	if err := fleet.Nodes[1].Requantize(); err != nil {
		t.Fatal(err)
	}
	if after := leader.Registry().Stats().PushApplied; after != before {
		t.Fatalf("push applied during drain: %d -> %d", before, after)
	}
}
