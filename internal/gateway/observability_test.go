package gateway

import (
	"net/http"
	"testing"

	"qens/internal/telemetry"
)

// queryBody is a rectangle every node in testFleet supports.
const queryBody = `{"bounds":{"min":[5,-50],"max":[35,150]},"selector":"query-driven","epsilon":0.6,"top_l":2}`

// traceDoc mirrors the GET /v1/trace/{id} response shape.
type traceDoc struct {
	TraceID string `json:"trace_id"`
	Spans   int    `json:"spans"`
	Procs   []string
	Root    *struct {
		Name       string `json:"name"`
		DurationMS float64
		Children   []struct {
			Name string `json:"name"`
		} `json:"children"`
	} `json:"root"`
	CriticalPath struct {
		TotalMS    float64            `json:"total_ms"`
		ByCategory map[string]float64 `json:"by_category_ms"`
	} `json:"critical_path"`
}

func TestGatewayTraceEndpoints(t *testing.T) {
	fl := testFleet(t)
	tracer := telemetry.NewTracer(nil)
	tracer.SetRetention(1024)
	_, ts := newGatewayServer(t, ServerConfig{Leader: fl.Leader, Tracer: tracer})

	if code, doc, _ := postQuery(t, ts.URL, queryBody); code != http.StatusOK {
		t.Fatalf("query status %d (%v)", code, doc)
	}

	// The listing indexes the retained roots, newest first.
	var list struct {
		Traces []struct {
			TraceID    string  `json:"trace_id"`
			Name       string  `json:"name"`
			DurationMS float64 `json:"duration_ms"`
		} `json:"traces"`
	}
	if code := getJSON(t, ts.URL+"/v1/traces", &list); code != http.StatusOK {
		t.Fatalf("/v1/traces status %d", code)
	}
	if len(list.Traces) != 1 {
		t.Fatalf("%d traces listed, want 1", len(list.Traces))
	}
	root := list.Traces[0]
	if root.Name != "query" || root.TraceID == "" {
		t.Fatalf("listed root = %+v", root)
	}

	// The per-trace document carries the assembled tree and a
	// critical-path decomposition that sums to its own total.
	var doc traceDoc
	if code := getJSON(t, ts.URL+"/v1/trace/"+root.TraceID, &doc); code != http.StatusOK {
		t.Fatalf("/v1/trace status %d", code)
	}
	if doc.TraceID != root.TraceID || doc.Root == nil || doc.Root.Name != "query" {
		t.Fatalf("trace doc = %+v", doc)
	}
	if doc.Spans < 3 { // at least selection + one train + aggregation under the root
		t.Fatalf("assembled %d spans, want >= 3", doc.Spans)
	}
	if doc.CriticalPath.TotalMS <= 0 {
		t.Fatalf("critical path total = %v", doc.CriticalPath.TotalMS)
	}
	sum := 0.0
	for _, ms := range doc.CriticalPath.ByCategory {
		sum += ms
	}
	if diff := sum - doc.CriticalPath.TotalMS; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("categories sum to %v, total %v", sum, doc.CriticalPath.TotalMS)
	}

	// Unknown trace: 404 with an error body.
	var errDoc map[string]any
	if code := getJSON(t, ts.URL+"/v1/trace/no-such-trace", &errDoc); code != http.StatusNotFound {
		t.Fatalf("unknown trace status %d, want 404", code)
	}
}

func TestGatewayTraceDisabled404(t *testing.T) {
	// No config tracer and no process default: the endpoints 404
	// instead of serving empty documents.
	old := telemetry.DefaultTracer()
	telemetry.SetDefaultTracer(nil)
	defer telemetry.SetDefaultTracer(old)

	fl := testFleet(t)
	_, ts := newGatewayServer(t, ServerConfig{Leader: fl.Leader})
	var doc map[string]any
	if code := getJSON(t, ts.URL+"/v1/traces", &doc); code != http.StatusNotFound {
		t.Fatalf("/v1/traces status %d, want 404", code)
	}
	if code := getJSON(t, ts.URL+"/v1/trace/x", &doc); code != http.StatusNotFound {
		t.Fatalf("/v1/trace status %d, want 404", code)
	}
}

func TestGatewayFleetEndpoint(t *testing.T) {
	fl := testFleet(t)
	_, ts := newGatewayServer(t, ServerConfig{Leader: fl.Leader})
	if code, doc, _ := postQuery(t, ts.URL, queryBody); code != http.StatusOK {
		t.Fatalf("query status %d (%v)", code, doc)
	}

	var resp struct {
		Nodes []struct {
			NodeID    string  `json:"node_id"`
			Score     float64 `json:"score"`
			Rounds    int64   `json:"rounds"`
			LatencyMS float64 `json:"latency_ewma_ms"`
		} `json:"nodes"`
	}
	if code := getJSON(t, ts.URL+"/v1/fleet", &resp); code != http.StatusOK {
		t.Fatalf("/v1/fleet status %d", code)
	}
	// The full roster appears, observed or not.
	if len(resp.Nodes) != 3 {
		t.Fatalf("%d fleet nodes, want 3", len(resp.Nodes))
	}
	observed := 0
	for _, n := range resp.Nodes {
		if n.Score < 0 || n.Score > 1 {
			t.Fatalf("node %s score %v outside [0,1]", n.NodeID, n.Score)
		}
		if n.Rounds > 0 {
			observed++
			if n.LatencyMS <= 0 {
				t.Fatalf("observed node %s has no latency EWMA", n.NodeID)
			}
		}
	}
	// top_l=2 selects two participants for the query.
	if observed == 0 {
		t.Fatal("no node recorded a training round")
	}
}

func TestGatewayStatsWindow(t *testing.T) {
	fl := testFleet(t)
	_, ts := newGatewayServer(t, ServerConfig{Leader: fl.Leader})
	if code, doc, _ := postQuery(t, ts.URL, queryBody); code != http.StatusOK {
		t.Fatalf("query status %d (%v)", code, doc)
	}

	var stats struct {
		Latency struct {
			Count  int64 `json:"count"`
			Window struct {
				WindowS float64 `json:"window_s"`
				Count   int64   `json:"count"`
				P95MS   float64 `json:"p95_ms"`
				MaxMS   float64 `json:"max_ms"`
			} `json:"window"`
		} `json:"latency"`
	}
	if code := getJSON(t, ts.URL+"/v1/stats", &stats); code != http.StatusOK {
		t.Fatalf("/v1/stats status %d", code)
	}
	w := stats.Latency.Window
	if w.WindowS != defaultLatencyWindow.Seconds() {
		t.Fatalf("window_s = %v, want %v", w.WindowS, defaultLatencyWindow.Seconds())
	}
	// The query just ran, so it is inside the rolling window and the
	// cumulative count agrees.
	if w.Count != 1 || stats.Latency.Count != 1 {
		t.Fatalf("window count %d / cumulative %d, want 1/1", w.Count, stats.Latency.Count)
	}
	if w.MaxMS <= 0 || w.P95MS <= 0 {
		t.Fatalf("window quantiles empty: %+v", w)
	}
}
