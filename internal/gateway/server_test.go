package gateway

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"qens/internal/dataset"
	"qens/internal/federation"
	"qens/internal/ml"
	"qens/internal/rng"
	"qens/internal/telemetry"
)

func lineDataset(n int, slope, intercept, lo, hi float64, seed uint64) *dataset.Dataset {
	src := rng.New(seed)
	d := dataset.MustNew([]string{"x", "y"}, "y")
	for i := 0; i < n; i++ {
		x := src.Uniform(lo, hi)
		d.MustAppend([]float64{x, slope*x + intercept + src.Normal(0, 0.3)})
	}
	return d
}

// testFleet builds a small in-process fleet matching the federation
// package's test topology.
func testFleet(t *testing.T) *federation.Fleet {
	t.Helper()
	data := []*dataset.Dataset{
		lineDataset(300, 2, 1, 0, 30, 10),
		lineDataset(300, 2, 1, 20, 60, 11),
		lineDataset(300, 2, 1, 50, 90, 12),
	}
	cfg := federation.Config{Spec: ml.PaperLR(1), ClusterK: 4, LocalEpochs: 8, Seed: 1}
	fleet, err := federation.NewSimulatedFleet(data, cfg, federation.FleetOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return fleet
}

// gatedClient delays Train until the gate opens — it makes queue
// overflow, coalescing and deadline behavior deterministic over real
// HTTP.
type gatedClient struct {
	federation.Client
	gate <-chan struct{}
}

func (g gatedClient) Train(ctx context.Context, req federation.TrainRequest) (federation.TrainResponse, error) {
	select {
	case <-g.gate:
	case <-ctx.Done():
		return federation.TrainResponse{}, ctx.Err()
	}
	return g.Client.Train(ctx, req)
}

// gatedLeader wires a leader whose every training round blocks on
// gate.
func gatedLeader(t *testing.T, gate <-chan struct{}) *federation.Leader {
	t.Helper()
	data := []*dataset.Dataset{
		lineDataset(200, 2, 1, 0, 40, 20),
		lineDataset(200, 2, 1, 10, 50, 21),
	}
	var clients []federation.Client
	for i, d := range data {
		n, err := federation.NewNode(fmt.Sprintf("node-%d", i), d, 3, rng.New(uint64(30+i)))
		if err != nil {
			t.Fatal(err)
		}
		clients = append(clients, gatedClient{Client: federation.LocalClient{Node: n}, gate: gate})
	}
	leader, err := federation.NewLeader(federation.Config{
		Spec: ml.PaperLR(1), ClusterK: 3, LocalEpochs: 5, Seed: 2,
	}, data[0], clients)
	if err != nil {
		t.Fatal(err)
	}
	return leader
}

func newGatewayServer(t *testing.T, cfg ServerConfig) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Registry == nil {
		cfg.Registry = &telemetry.Registry{}
	}
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

// doPost submits one query; goroutine-safe (no testing.T).
func doPost(url string, body string) (int, map[string]any, http.Header, error) {
	resp, err := http.Post(url+"/v1/query", "application/json", strings.NewReader(body))
	if err != nil {
		return 0, nil, nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, nil, err
	}
	var doc map[string]any
	if err := json.Unmarshal(raw, &doc); err != nil {
		return resp.StatusCode, nil, resp.Header, fmt.Errorf("status %d: non-JSON body %q", resp.StatusCode, raw)
	}
	return resp.StatusCode, doc, resp.Header, nil
}

func postQuery(t *testing.T, url string, body string) (int, map[string]any, http.Header) {
	t.Helper()
	code, doc, hdr, err := doPost(url, body)
	if err != nil {
		t.Fatal(err)
	}
	return code, doc, hdr
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("decode %s: %v", url, err)
	}
	return resp.StatusCode
}

// TestGatewayE2EConcurrentClients is the acceptance scenario: 32
// concurrent clients against a simulated fleet; every admitted query
// succeeds and the accounting adds up.
func TestGatewayE2EConcurrentClients(t *testing.T) {
	fleet := testFleet(t)
	cache, err := federation.NewReuseCache(0.9, 16)
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newGatewayServer(t, ServerConfig{
		Leader: fleet.Leader, Cache: cache,
		Workers: 4, QueueDepth: 64, CoalesceIoU: 0.95,
	})

	const clients = 32
	bodies := make([]string, 4)
	for i := range bodies {
		lo := float64(5 * i)
		bodies[i] = fmt.Sprintf(
			`{"bounds":{"min":[%g,-50],"max":[%g,150]},"selector":"query-driven","epsilon":0.6,"top_l":2}`,
			lo, lo+30)
	}

	start := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			<-start
			code, doc, _, err := doPost(ts.URL, bodies[c%len(bodies)])
			if err != nil {
				errs <- fmt.Errorf("client %d: %w", c, err)
				return
			}
			if code != http.StatusOK {
				errs <- fmt.Errorf("client %d: status %d (%v)", c, code, doc["error"])
				return
			}
			parts, _ := doc["participants"].([]any)
			if len(parts) == 0 {
				errs <- fmt.Errorf("client %d: no participants in %v", c, doc)
			}
		}(c)
	}
	close(start)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	var stats statsResponse
	if code := getJSON(t, ts.URL+"/v1/stats", &stats); code != http.StatusOK {
		t.Fatalf("/v1/stats status %d", code)
	}
	total := stats.Scheduler.Admitted + stats.Scheduler.Coalesced + stats.Scheduler.RejectedFull
	if total != clients {
		t.Fatalf("admitted %d + coalesced %d + rejected %d != %d clients",
			stats.Scheduler.Admitted, stats.Scheduler.Coalesced, stats.Scheduler.RejectedFull, clients)
	}
	if stats.Scheduler.RejectedFull != 0 {
		t.Fatalf("queue depth 64 rejected %d of %d", stats.Scheduler.RejectedFull, clients)
	}
	if stats.Scheduler.CompletedOK != stats.Scheduler.Admitted {
		t.Fatalf("admitted %d, completed ok %d", stats.Scheduler.Admitted, stats.Scheduler.CompletedOK)
	}
	if stats.Latency.Count == 0 || stats.Latency.MaxMS <= 0 {
		t.Fatalf("latency histogram empty: %+v", stats.Latency)
	}
	if stats.Space == nil || stats.Space.Dims() != 2 {
		t.Fatalf("stats space missing: %+v", stats.Space)
	}
	if stats.Reuse == nil || stats.Reuse.Hits+stats.Reuse.Misses == 0 {
		t.Fatalf("reuse cache stats missing: %+v", stats.Reuse)
	}
	// Identical concurrent queries (4 distinct bodies, 32 clients)
	// must have shared work somewhere: either coalesced in-flight or
	// served from the reuse cache.
	if stats.Scheduler.Coalesced+int64(stats.Reuse.Hits) == 0 {
		t.Fatal("32 clients over 4 distinct queries shared no work")
	}
}

// TestGatewayCoalesceDeterministic pins coalescing down with a gated
// fleet: the duplicate of a blocked in-flight query must attach to it.
func TestGatewayCoalesceDeterministic(t *testing.T) {
	gate := make(chan struct{})
	leader := gatedLeader(t, gate)
	_, ts := newGatewayServer(t, ServerConfig{
		Leader: leader, Workers: 2, QueueDepth: 8, CoalesceIoU: 0.95,
	})

	body := `{"id":"orig","bounds":{"min":[5,-50],"max":[35,150]},"selector":"query-driven","epsilon":0.6,"top_l":2,"async":true}`
	if code, doc, _ := postQuery(t, ts.URL, body); code != http.StatusAccepted {
		t.Fatalf("async submit: status %d (%v)", code, doc)
	}
	// Identical bounds, new id: must coalesce while orig is gated.
	dup := strings.Replace(body, `"orig"`, `"dup"`, 1)
	if code, doc, _ := postQuery(t, ts.URL, dup); code != http.StatusAccepted {
		t.Fatalf("dup submit: status %d (%v)", code, doc)
	}

	var stats statsResponse
	getJSON(t, ts.URL+"/v1/stats", &stats)
	if stats.Scheduler.Coalesced != 1 {
		t.Fatalf("coalesced = %d, want 1", stats.Scheduler.Coalesced)
	}
	close(gate)

	// Both records converge to done, sharing one execution.
	for _, id := range []string{"orig", "dup"} {
		deadline := time.Now().Add(10 * time.Second)
		for {
			var rec record
			if code := getJSON(t, ts.URL+"/v1/query/"+id, &rec); code != http.StatusOK {
				t.Fatalf("GET %s: status %d", id, code)
			}
			if rec.Status == recordDone {
				if rec.Result == nil || len(rec.Result.Participants) == 0 {
					t.Fatalf("record %s done without result", id)
				}
				if id == "dup" && !rec.Result.Coalesced {
					t.Fatal("dup record not marked coalesced")
				}
				break
			}
			if rec.Status == recordError {
				t.Fatalf("record %s failed: %s", id, rec.Error)
			}
			if time.Now().After(deadline) {
				t.Fatalf("record %s stuck at %s", id, rec.Status)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	getJSON(t, ts.URL+"/v1/stats", &stats)
	if stats.Scheduler.Admitted != 1 || stats.Scheduler.CompletedOK != 1 {
		t.Fatalf("want one shared execution, got %+v", stats.Scheduler)
	}
}

// TestGatewayQueueOverflow429: with the worker wedged and the queue
// full, the gateway sheds load with 429 + Retry-After.
func TestGatewayQueueOverflow429(t *testing.T) {
	gate := make(chan struct{})
	defer close(gate)
	leader := gatedLeader(t, gate)
	_, ts := newGatewayServer(t, ServerConfig{
		Leader: leader, Workers: 1, QueueDepth: 1, CoalesceIoU: -1, // coalescing off
	})

	// Occupy the worker, then wait until the query is actually
	// executing (inflight = 1).
	if code, doc, _ := postQuery(t, ts.URL,
		`{"bounds":{"min":[0,-50],"max":[20,150]},"selector":"all-nodes","async":true}`); code != http.StatusAccepted {
		t.Fatalf("status %d (%v)", code, doc)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		var stats statsResponse
		getJSON(t, ts.URL+"/v1/stats", &stats)
		if stats.Scheduler.InFlight == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("first query never started executing")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Fill the queue.
	if code, doc, _ := postQuery(t, ts.URL,
		`{"bounds":{"min":[10,-50],"max":[30,150]},"selector":"all-nodes","async":true}`); code != http.StatusAccepted {
		t.Fatalf("status %d (%v)", code, doc)
	}
	// Overflow.
	code, doc, hdr := postQuery(t, ts.URL,
		`{"bounds":{"min":[20,-50],"max":[40,150]},"selector":"all-nodes","async":true}`)
	if code != http.StatusTooManyRequests {
		t.Fatalf("status %d (%v), want 429", code, doc)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
}

// TestGatewayExpiredDeadline: a deadline already in the past returns
// promptly with the context error, without occupying the fleet.
func TestGatewayExpiredDeadline(t *testing.T) {
	gate := make(chan struct{})
	defer close(gate)
	leader := gatedLeader(t, gate)
	_, ts := newGatewayServer(t, ServerConfig{Leader: leader, Workers: 1, QueueDepth: 4})

	past := time.Now().Add(-time.Minute).Format(time.RFC3339)
	start := time.Now()
	code, doc, _ := postQuery(t, ts.URL, fmt.Sprintf(
		`{"bounds":{"min":[0,-50],"max":[20,150]},"deadline":%q}`, past))
	if code != http.StatusGatewayTimeout {
		t.Fatalf("status %d (%v), want 504", code, doc)
	}
	if msg, _ := doc["error"].(string); !strings.Contains(msg, context.DeadlineExceeded.Error()) {
		t.Fatalf("error %q does not name the context error", msg)
	}
	if time.Since(start) > time.Second {
		t.Fatal("expired deadline did not return promptly")
	}
	var stats statsResponse
	getJSON(t, ts.URL+"/v1/stats", &stats)
	if stats.Scheduler.Admitted != 0 {
		t.Fatal("expired query was admitted")
	}
}

// TestGatewayExecutionTimeout504: a tiny budget on a wedged fleet
// times the query out with 504.
func TestGatewayExecutionTimeout504(t *testing.T) {
	gate := make(chan struct{})
	defer close(gate)
	leader := gatedLeader(t, gate)
	_, ts := newGatewayServer(t, ServerConfig{Leader: leader, Workers: 1, QueueDepth: 4})

	code, doc, _ := postQuery(t, ts.URL,
		`{"bounds":{"min":[0,-50],"max":[20,150]},"timeout_ms":60}`)
	if code != http.StatusGatewayTimeout {
		t.Fatalf("status %d (%v), want 504", code, doc)
	}
}

// TestGatewayDraining503: once draining, new queries get 503 +
// Retry-After and /healthz reports the state.
func TestGatewayDraining503(t *testing.T) {
	fleet := testFleet(t)
	s, ts := newGatewayServer(t, ServerConfig{Leader: fleet.Leader, Workers: 1, QueueDepth: 4})
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	code, doc, hdr := postQuery(t, ts.URL,
		`{"bounds":{"min":[0,-50],"max":[20,150]}}`)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("status %d (%v), want 503", code, doc)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
	var health map[string]any
	getJSON(t, ts.URL+"/healthz", &health)
	if draining, _ := health["draining"].(bool); !draining {
		t.Fatalf("healthz %v does not report draining", health)
	}
}

// TestGatewayBadRequests covers the 400/404 surface.
func TestGatewayBadRequests(t *testing.T) {
	fleet := testFleet(t)
	_, ts := newGatewayServer(t, ServerConfig{Leader: fleet.Leader})

	cases := []struct {
		name string
		body string
	}{
		{"malformed json", `{"bounds":`},
		{"unknown field", `{"boundz":{"min":[0],"max":[1]}}`},
		{"invalid bounds", `{"bounds":{"min":[10,0],"max":[0,10]}}`},
		{"unknown selector", `{"bounds":{"min":[0,-50],"max":[20,150]},"selector":"psychic"}`},
		{"bad aggregation", `{"bounds":{"min":[0,-50],"max":[20,150]},"aggregation":"median"}`},
		{"negative timeout", `{"bounds":{"min":[0,-50],"max":[20,150]},"timeout_ms":-5}`},
		{"bad deadline", `{"bounds":{"min":[0,-50],"max":[20,150]},"deadline":"yesterday"}`},
	}
	for _, tc := range cases {
		if code, doc, _ := postQuery(t, ts.URL, tc.body); code != http.StatusBadRequest {
			t.Errorf("%s: status %d (%v), want 400", tc.name, code, doc)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/query/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown record: status %d, want 404", resp.StatusCode)
	}
}

// TestGatewayUnsupportedQuery422: a rectangle no edge node's cluster
// space supports is the client's problem, not a gateway fault.
func TestGatewayUnsupportedQuery422(t *testing.T) {
	fleet := testFleet(t)
	_, ts := newGatewayServer(t, ServerConfig{Leader: fleet.Leader})
	code, doc, _ := postQuery(t, ts.URL,
		`{"bounds":{"min":[1000,1000],"max":[1001,1001]},"selector":"query-driven","epsilon":0.6,"top_l":2}`)
	if code != http.StatusUnprocessableEntity {
		t.Fatalf("status %d (%v), want 422", code, doc)
	}
	if msg, _ := doc["error"].(string); !strings.Contains(msg, "no node supports") {
		t.Fatalf("error %q does not name the unsupported query", msg)
	}
}

// TestGatewayMetricsExposition: the Prometheus surface carries the
// gateway families after traffic.
func TestGatewayMetricsExposition(t *testing.T) {
	fleet := testFleet(t)
	reg := &telemetry.Registry{}
	_, ts := newGatewayServer(t, ServerConfig{Leader: fleet.Leader, Registry: reg})
	if code, doc, _ := postQuery(t, ts.URL,
		`{"bounds":{"min":[5,-50],"max":[35,150]},"selector":"query-driven","epsilon":0.6,"top_l":2}`); code != http.StatusOK {
		t.Fatalf("status %d (%v)", code, doc)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := io.Copy(&buf, resp.Body); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"qens_gateway_admitted_total 1",
		"qens_gateway_e2e_ms_count 1",
		"qens_gateway_queue_depth",
		"qens_gateway_completed_total",
	} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestGatewayRecordEviction: the record store stays bounded.
func TestRecordStoreEviction(t *testing.T) {
	rs := newRecordStore(2)
	for i := 0; i < 3; i++ {
		id := fmt.Sprintf("q%d", i)
		rs.put(id, &record{ID: id, Status: recordPending})
	}
	if _, ok := rs.get("q0"); ok {
		t.Fatal("oldest record not evicted")
	}
	for _, id := range []string{"q1", "q2"} {
		if _, ok := rs.get(id); !ok {
			t.Fatalf("record %s missing", id)
		}
	}
	rs.update("q2", func(r *record) { r.Status = recordDone })
	rec, _ := rs.get("q2")
	if rec.Status != recordDone {
		t.Fatal("update lost")
	}
}

// TestGatewayPlanExplain: POST /v1/plan returns the selection and the
// full ranking without executing a single training round.
func TestGatewayPlanExplain(t *testing.T) {
	gate := make(chan struct{}) // never opened: any training RPC would hang
	defer close(gate)
	leader := gatedLeader(t, gate)
	_, ts := newGatewayServer(t, ServerConfig{Leader: leader})

	resp, err := http.Post(ts.URL+"/v1/plan", "application/json", strings.NewReader(
		`{"bounds":{"min":[5,-50],"max":[35,150]},"selector":"query-driven","epsilon":0.6,"top_l":2}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc planResponse
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
	if doc.Epoch == 0 {
		t.Fatal("plan has no advertisement epoch")
	}
	if doc.Selector != "query-driven" {
		t.Fatalf("selector %q", doc.Selector)
	}
	if len(doc.Participants) == 0 || len(doc.Participants) > 2 {
		t.Fatalf("participants %v, want 1..2", doc.Participants)
	}
	if doc.Candidates != 2 || len(doc.Rankings) != 2 {
		t.Fatalf("candidates %d rankings %d, want 2 each", doc.Candidates, len(doc.Rankings))
	}
	if doc.Key == "" {
		t.Fatal("plan has no key")
	}
	for _, p := range doc.Participants {
		if len(p.Clusters) == 0 {
			t.Fatalf("participant %s has no supporting clusters", p.NodeID)
		}
	}

	// Stateful selectors are not EXPLAINable (planning would advance
	// their state); unsupported bounds are the query's fault (422).
	resp2, err := http.Post(ts.URL+"/v1/plan", "application/json", strings.NewReader(
		`{"bounds":{"min":[5,-50],"max":[35,150]},"selector":"fairness"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("stateful plan: status %d, want 400", resp2.StatusCode)
	}
	resp3, err := http.Post(ts.URL+"/v1/plan", "application/json", strings.NewReader(
		`{"bounds":{"min":[1000,1000],"max":[1001,1001]},"selector":"query-driven"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("unsupported plan: status %d, want 422", resp3.StatusCode)
	}
}

// TestGatewayStatefulSelectors: fairness and contribution are served
// through persistent per-(mechanism,L) instances, so the fairness
// rotation advances across requests instead of resetting.
func TestGatewayStatefulSelectors(t *testing.T) {
	fleet := testFleet(t)
	_, ts := newGatewayServer(t, ServerConfig{Leader: fleet.Leader, CoalesceIoU: -1})

	first := func(doc map[string]any) string {
		parts, _ := doc["participants"].([]any)
		if len(parts) == 0 {
			t.Fatalf("no participants in %v", doc)
		}
		p, _ := parts[0].(map[string]any)
		id, _ := p["node_id"].(string)
		return id
	}
	body := `{"bounds":{"min":[0,-50],"max":[90,200]},"selector":"fairness","l":1}`
	code, doc1, _ := postQuery(t, ts.URL, body)
	if code != http.StatusOK {
		t.Fatalf("status %d (%v)", code, doc1)
	}
	code, doc2, _ := postQuery(t, ts.URL, body)
	if code != http.StatusOK {
		t.Fatalf("status %d (%v)", code, doc2)
	}
	if first(doc1) == first(doc2) {
		t.Fatalf("fairness rotation did not advance: %s twice", first(doc1))
	}

	code, doc, _ := postQuery(t, ts.URL,
		`{"bounds":{"min":[0,-50],"max":[90,200]},"selector":"contribution","l":2}`)
	if code != http.StatusOK {
		t.Fatalf("contribution: status %d (%v)", code, doc)
	}
}

// TestGatewayStatsRegistry: /v1/stats surfaces the summary registry's
// epoch once a query has forced a snapshot.
func TestGatewayStatsRegistry(t *testing.T) {
	fleet := testFleet(t)
	_, ts := newGatewayServer(t, ServerConfig{Leader: fleet.Leader})
	if code, doc, _ := postQuery(t, ts.URL,
		`{"bounds":{"min":[0,-50],"max":[90,200]},"selector":"all-nodes"}`); code != http.StatusOK {
		t.Fatalf("status %d (%v)", code, doc)
	}
	var stats statsResponse
	getJSON(t, ts.URL+"/v1/stats", &stats)
	if stats.Registry == nil {
		t.Fatal("/v1/stats has no registry section")
	}
	if stats.Registry.Epoch == 0 {
		t.Fatalf("registry epoch 0 after a served query: %+v", stats.Registry)
	}
	if stats.Registry.Nodes != 3 {
		t.Fatalf("registry nodes %d, want 3", stats.Registry.Nodes)
	}
}
