package gateway

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"qens/internal/federation"
	"qens/internal/fleet"
	"qens/internal/geometry"
	"qens/internal/plan"
	"qens/internal/query"
	"qens/internal/region"
	"qens/internal/registry"
	"qens/internal/selection"
	"qens/internal/telemetry"
)

// ServerConfig parameterizes the HTTP serving layer.
type ServerConfig struct {
	// Leader executes queries against a single-leader fleet. Exactly
	// one of Leader and Router must be set.
	Leader *federation.Leader
	// Router executes queries against a spatially sharded multi-leader
	// topology (see internal/region): every endpoint — submit, plan,
	// stats, fleet — routes through the root coordinator instead of a
	// single leader. Exactly one of Leader and Router must be set.
	Router *region.Router
	// Cache, when non-nil, fronts the leader with result reuse. Only
	// valid with Leader: the router carries its own epoch-fenced reuse
	// cache (region.Config.ReuseIoU).
	Cache *federation.ReuseCache

	// Workers, QueueDepth, DefaultTimeout and CoalesceIoU configure
	// the scheduler (see Config). CoalesceIoU defaults to 0.95 here —
	// the serving layer wants near-identical concurrent queries to
	// share one training run; pass a negative value to disable
	// coalescing entirely.
	Workers        int
	QueueDepth     int
	DefaultTimeout time.Duration
	CoalesceIoU    float64
	// MaxTimeout caps client-supplied per-query budgets (default 5m).
	MaxTimeout time.Duration

	// DefaultEpsilon and DefaultTopL parameterize the query-driven
	// selector when the request omits them (defaults 0.6 and 3, the
	// paper's operating point).
	DefaultEpsilon float64
	DefaultTopL    int

	// Bandit, when non-nil, serves selector "auto": each auto query
	// plays one (ℓ, ψ, selector) arm, and the realized reward —
	// success fraction and data coverage discounted by the slowest
	// node round — is folded back into that arm once the query
	// finishes fresh (reused and coalesced outcomes trained nothing,
	// so they teach the bandit nothing). EXPLAIN uses the side-effect
	// free greedy arm.
	Bandit *selection.ConfigBandit

	// RecordCapacity bounds the finished-query store backing
	// GET /v1/query/{id} (default 256; oldest evicted).
	RecordCapacity int

	// Registry receives gateway metrics (default telemetry.Default()).
	Registry *telemetry.Registry

	// TransportStats, when non-nil, is invoked per GET /v1/stats and
	// its result embedded under "transport" — the gateway layer stays
	// agnostic of the fleet wiring (in-process vs TCP) while remote
	// deployments surface per-node wire-protocol state (negotiated
	// version, in-flight RPCs, byte counters).
	TransportStats func() any

	// Tracer backs GET /v1/trace/{id} and /v1/traces; when nil the
	// process-default tracer (telemetry.DefaultTracer) serves them. The
	// endpoints 404 when neither is installed. NewServer pins a non-nil
	// Tracer to the leader, so query spans land in the same store the
	// endpoints serve.
	Tracer *telemetry.Tracer
	// WireStatus, when non-nil, supplies typed per-node transport state
	// merged into GET /v1/fleet for remote fleets.
	WireStatus func() []fleet.WireStatus
}

func (c ServerConfig) withDefaults() ServerConfig {
	if c.CoalesceIoU == 0 {
		c.CoalesceIoU = 0.95
	}
	if c.MaxTimeout == 0 {
		c.MaxTimeout = 5 * time.Minute
	}
	if c.DefaultEpsilon == 0 {
		c.DefaultEpsilon = 0.6
	}
	if c.DefaultTopL == 0 {
		c.DefaultTopL = 3
	}
	if c.RecordCapacity == 0 {
		c.RecordCapacity = 256
	}
	if c.Registry == nil {
		c.Registry = telemetry.Default()
	}
	return c
}

// Server is the gateway's HTTP serving layer: request parsing,
// admission, response shaping, and the stats/metrics surface.
type Server struct {
	cfg     ServerConfig
	sched   *Scheduler
	records *recordStore
	start   time.Time
	nextID  atomic.Int64
	handler http.Handler

	// statefulSels holds one persistent instance per stateful selector
	// configuration — fairness rotation cursors and contribution
	// histories must survive across requests, and the selectors guard
	// their own state, so concurrent queries share them safely.
	selMu        sync.Mutex
	statefulSels map[string]selection.Selector
}

// NewServer builds a gateway server (and its scheduler) over a leader
// or a region router.
func NewServer(cfg ServerConfig) (*Server, error) {
	cfg = cfg.withDefaults()
	if (cfg.Leader == nil) == (cfg.Router == nil) {
		return nil, errors.New("gateway: server needs exactly one of Leader and Router")
	}
	if cfg.Router != nil && cfg.Cache != nil {
		return nil, errors.New("gateway: Cache is a single-leader option; the router has its own reuse cache")
	}
	coalesce := cfg.CoalesceIoU
	if coalesce < 0 {
		coalesce = 0 // explicit opt-out
	}
	var exec Executor = cfg.Router
	if cfg.Leader != nil {
		exec = LeaderExecutor{Leader: cfg.Leader, Cache: cfg.Cache}
	}
	sched, err := NewScheduler(Config{
		Workers:        cfg.Workers,
		QueueDepth:     cfg.QueueDepth,
		DefaultTimeout: cfg.DefaultTimeout,
		CoalesceIoU:    coalesce,
		Executor:       exec,
		Registry:       cfg.Registry,
	})
	if err != nil {
		return nil, err
	}
	if cfg.Tracer != nil {
		if cfg.Leader != nil {
			cfg.Leader.SetTracer(cfg.Tracer)
		} else {
			cfg.Router.SetTracer(cfg.Tracer)
		}
	}
	s := &Server{
		cfg:          cfg,
		sched:        sched,
		records:      newRecordStore(cfg.RecordCapacity),
		start:        time.Now(),
		statefulSels: make(map[string]selection.Selector),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/query", s.handleSubmit)
	mux.HandleFunc("POST /v1/plan", s.handlePlan)
	mux.HandleFunc("GET /v1/query/{id}", s.handleGet)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /v1/trace/{id}", s.handleTrace)
	mux.HandleFunc("GET /v1/traces", s.handleTraces)
	mux.HandleFunc("GET /v1/fleet", s.handleFleet)
	obs := telemetry.NewHTTPHandler(cfg.Registry, s.health, s.start)
	mux.Handle("/metrics", obs)
	mux.Handle("/healthz", obs)
	mux.Handle("/debug/pprof/", obs)
	s.handler = mux
	return s, nil
}

// Handler returns the gateway's HTTP handler.
func (s *Server) Handler() http.Handler { return s.handler }

// Scheduler exposes the underlying scheduler (stats, tests).
func (s *Server) Scheduler() *Scheduler { return s.sched }

// Drain stops admission and waits for in-flight queries (bounded by
// ctx). Call before shutting the HTTP listener down so waiting
// handlers can still deliver their responses. Summary push delivery is
// gated off first, so late frames from the fleet cannot mutate the
// registry mid-teardown.
func (s *Server) Drain(ctx context.Context) error {
	if s.cfg.Leader != nil {
		s.cfg.Leader.StopPush()
	}
	return s.sched.Drain(ctx)
}

// Close force-drains the scheduler.
func (s *Server) Close() {
	if s.cfg.Leader != nil {
		s.cfg.Leader.StopPush()
	}
	s.sched.Close()
}

// health feeds the /healthz document.
func (s *Server) health() map[string]any {
	st := s.sched.SchedStats()
	doc := map[string]any{
		"draining":    st.Draining,
		"queue_depth": st.QueueDepth,
		"inflight":    st.InFlight,
	}
	if s.cfg.Leader != nil {
		doc["nodes"] = len(s.cfg.Leader.NodeIDs())
		// Summary freshness mode: how many participants push their
		// advertisements (vs being pulled on the TTL), with the
		// registry's applied/dropped push accounting alongside.
		subscribed := s.cfg.Leader.PushSubscribed()
		doc["push_subscribed"] = subscribed
		if subscribed > 0 {
			doc["summary_mode"] = "push"
		} else {
			doc["summary_mode"] = "pull"
		}
		if reg := s.cfg.Leader.Registry(); reg != nil {
			st := reg.Stats()
			doc["push_applied"] = st.PushApplied
			doc["push_dropped_stale"] = st.PushDroppedStale
		}
	} else {
		nodes, _ := s.cfg.Router.NodeIDs(context.Background())
		doc["nodes"] = len(nodes)
		doc["regions"] = len(s.cfg.Router.Regions())
	}
	return doc
}

// nodeIDs resolves the global roster from whichever topology backs the
// gateway.
func (s *Server) nodeIDs(ctx context.Context) []string {
	if s.cfg.Leader != nil {
		return s.cfg.Leader.NodeIDs()
	}
	ids, err := s.cfg.Router.NodeIDs(ctx)
	if err != nil {
		return nil
	}
	return ids
}

// queryRequest is the POST /v1/query body.
type queryRequest struct {
	// ID names the query (generated when empty; must be unique among
	// retained records).
	ID string `json:"id"`
	// Bounds is the query hyper-rectangle.
	Bounds geometry.Rect `json:"bounds"`
	// Selector picks the mechanism: "query-driven" (default),
	// "random", "all-nodes" or "game-theory".
	Selector string `json:"selector"`
	// Epsilon, TopL, Psi parameterize query-driven selection; L
	// parameterizes random / game-theory.
	Epsilon float64 `json:"epsilon"`
	TopL    int     `json:"top_l"`
	Psi     float64 `json:"psi"`
	L       int     `json:"l"`
	// Aggregation is "weighted" (default) or "averaging".
	Aggregation string `json:"aggregation"`
	// TimeoutMS bounds execution; Deadline (RFC3339) is the absolute
	// alternative. When both are set the earlier wins.
	TimeoutMS int64  `json:"timeout_ms"`
	Deadline  string `json:"deadline"`
	// Async returns 202 immediately; poll GET /v1/query/{id}.
	Async bool `json:"async"`
	// IncludeParams embeds the local model parameter vectors in the
	// response (large; off by default).
	IncludeParams bool `json:"include_params"`
}

// participantJSON is one selected node in a response.
type participantJSON struct {
	NodeID   string  `json:"node_id"`
	Rank     float64 `json:"rank"`
	Clusters []int   `json:"clusters,omitempty"`
}

// queryResponse is the POST /v1/query (and record) result body.
type queryResponse struct {
	ID           string            `json:"id"`
	Selector     string            `json:"selector"`
	Aggregation  string            `json:"aggregation"`
	Participants []participantJSON `json:"participants"`
	Failed       []string          `json:"failed,omitempty"`
	Reused       bool              `json:"reused"`
	// Approx reports the answer came from the model cache under the
	// predicted-error bound rather than an exact-IoU match: the
	// ensemble was trained on a nearby subspace, not this query's.
	Approx      bool          `json:"approx,omitempty"`
	Coalesced   bool          `json:"coalesced"`
	QueueWaitMS float64       `json:"queue_wait_ms"`
	ElapsedMS   float64       `json:"elapsed_ms"`
	Stats       execStatsJSON `json:"stats"`
	LocalParams [][]float64   `json:"local_params,omitempty"`
}

// execStatsJSON mirrors federation.Stats for the wire.
type execStatsJSON struct {
	SelectionMS   float64 `json:"selection_ms"`
	TrainMS       float64 `json:"train_ms"`
	WallMS        float64 `json:"wall_ms"`
	SamplesUsed   int     `json:"samples_used"`
	SamplesAll    int     `json:"samples_all_nodes"`
	DataFraction  float64 `json:"data_fraction"`
	BytesUp       int64   `json:"bytes_up"`
	BytesDown     int64   `json:"bytes_down"`
	EnsembleSize  int     `json:"ensemble_size"`
	FailedRounds  int     `json:"failed_rounds"`
	Participating int     `json:"participating"`
}

// errorJSON is every non-2xx body.
type errorJSON struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, errorJSON{Error: fmt.Sprintf(format, args...)})
}

// buildSelector maps the request's selector spec to a
// selection.Selector. Stateful mechanisms (fairness, contribution)
// resolve to one persistent, internally locked instance per
// (mechanism, L) so their cursors/histories carry across requests —
// concurrent queries advance them under the selector's own mutex.
func (s *Server) buildSelector(req queryRequest) (selection.Selector, error) {
	eps := req.Epsilon
	if eps == 0 {
		eps = s.cfg.DefaultEpsilon
	}
	l := req.L
	if l == 0 {
		l = s.cfg.DefaultTopL
	}
	switch strings.ToLower(req.Selector) {
	case "auto", "bandit":
		return nil, fmt.Errorf("selector %q needs the gateway bandit enabled", req.Selector)
	case "", "query-driven":
		if req.Psi > 0 {
			return selection.QueryDriven{Epsilon: eps, Psi: req.Psi}, nil
		}
		topL := req.TopL
		if topL == 0 {
			topL = s.cfg.DefaultTopL
		}
		return selection.QueryDriven{Epsilon: eps, TopL: topL}, nil
	case "random":
		return selection.Random{L: l}, nil
	case "all-nodes":
		return selection.AllNodes{}, nil
	case "game-theory":
		return selection.GameTheory{L: l}, nil
	case "fairness":
		return s.statefulSelector(fmt.Sprintf("fairness/%d", l), func() selection.Selector {
			return &selection.Fairness{L: l}
		}), nil
	case "contribution":
		return s.statefulSelector(fmt.Sprintf("contribution/%d", l), func() selection.Selector {
			return &selection.Contribution{L: l}
		}), nil
	default:
		return nil, fmt.Errorf("unknown selector %q", req.Selector)
	}
}

// resolveSelector maps the request to a selector, routing "auto" /
// "bandit" through the config bandit. It returns the bandit arm index
// played (-1 when the bandit was not involved) so the submit path can
// credit the arm with the realized reward. EXPLAIN passes explain=true
// to use the side-effect-free greedy arm — planning must not advance
// the bandit's RNG or play counts.
func (s *Server) resolveSelector(req queryRequest, explain bool) (selection.Selector, int, error) {
	switch strings.ToLower(req.Selector) {
	case "auto", "bandit":
		if s.cfg.Bandit == nil {
			return nil, -1, fmt.Errorf("selector %q needs the gateway bandit enabled", req.Selector)
		}
		if explain {
			arm, sel := s.cfg.Bandit.Best()
			return sel, arm, nil
		}
		arm, sel := s.cfg.Bandit.Pick()
		return sel, arm, nil
	}
	sel, err := s.buildSelector(req)
	return sel, -1, err
}

// statefulSelector returns the server's persistent selector instance
// under key, creating it on first use.
func (s *Server) statefulSelector(key string, mk func() selection.Selector) selection.Selector {
	s.selMu.Lock()
	defer s.selMu.Unlock()
	if sel, ok := s.statefulSels[key]; ok {
		return sel
	}
	sel := mk()
	s.statefulSels[key] = sel
	return sel
}

// planAheadKey runs the pure-CPU planning stage at admission time for
// deterministic mechanisms and returns the plan's identity fingerprint
// — the scheduler coalesces exact-key matches without an IoU
// approximation. Nondeterministic (random draws) and stateful
// (rotation, history) selectors return "" so admission does not
// consume their state; they fall back to IoU coalescing. A query no
// advertised cluster supports fails here with
// selection.ErrNoCandidates before it can occupy a queue slot; any
// other planning error is advisory (execution replans and surfaces
// it).
func (s *Server) planAheadKey(ctx context.Context, q query.Query, sel selection.Selector) (string, error) {
	switch sel.(type) {
	case selection.QueryDriven, selection.AllNodes:
	default:
		return "", nil
	}
	if s.cfg.Router != nil {
		key, err := s.cfg.Router.PlanKey(ctx, q, sel)
		if err != nil {
			if errors.Is(err, selection.ErrNoCandidates) {
				return "", err
			}
			return "", nil
		}
		return key, nil
	}
	pl, err := s.cfg.Leader.PlanContext(ctx, q, sel)
	if err != nil {
		if errors.Is(err, selection.ErrNoCandidates) {
			return "", err
		}
		return "", nil
	}
	key := pl.Key()
	pl.Release()
	return key, nil
}

func buildAggregation(name string) (federation.Aggregation, error) {
	switch strings.ToLower(name) {
	case "", "weighted":
		return federation.WeightedAveraging, nil
	case "averaging", "model":
		return federation.ModelAveraging, nil
	default:
		return 0, fmt.Errorf("unknown aggregation %q", name)
	}
}

// timeoutFor resolves the request's execution budget: timeout_ms
// and/or an absolute RFC3339 deadline, capped at MaxTimeout. ok=false
// with a zero duration means the deadline already passed.
func (s *Server) timeoutFor(req queryRequest, now time.Time) (time.Duration, bool, error) {
	timeout := s.cfg.DefaultTimeout
	if timeout == 0 {
		timeout = 30 * time.Second
	}
	if req.TimeoutMS != 0 {
		if req.TimeoutMS < 0 {
			return 0, false, fmt.Errorf("timeout_ms %d is negative", req.TimeoutMS)
		}
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	if req.Deadline != "" {
		abs, err := time.Parse(time.RFC3339, req.Deadline)
		if err != nil {
			return 0, false, fmt.Errorf("bad deadline %q: %v", req.Deadline, err)
		}
		if until := abs.Sub(now); until < timeout {
			timeout = until
		}
	}
	if timeout <= 0 {
		return 0, false, nil
	}
	if timeout > s.cfg.MaxTimeout {
		timeout = s.cfg.MaxTimeout
	}
	return timeout, true, nil
}

// handleSubmit serves POST /v1/query.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}

	id := req.ID
	if id == "" {
		id = fmt.Sprintf("gw-%d", s.nextID.Add(1))
	}
	q, err := query.New(id, req.Bounds)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	sel, banditArm, err := s.resolveSelector(req, false)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	agg, err := buildAggregation(req.Aggregation)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	timeout, alive, err := s.timeoutFor(req, time.Now())
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if !alive {
		// The deadline expired before admission: fail promptly with
		// the context error, exactly as a late cancellation would.
		writeError(w, http.StatusGatewayTimeout, "query %s: %v", id, context.DeadlineExceeded)
		return
	}

	planKey, err := s.planAheadKey(r.Context(), q, sel)
	if err != nil {
		// No edge node's cluster space supports the requested bounds.
		// Before rejecting, ask the model cache: an ensemble trained on
		// a nearby subspace can still answer within the predicted-error
		// bound even when nobody can train this exact rectangle.
		if resp, ok := s.answerFromCache(id, q); ok {
			now := time.Now()
			s.records.put(id, &record{ID: id, Status: recordDone, Submitted: now, Finished: &now, Result: resp})
			if req.Async {
				writeJSON(w, http.StatusAccepted, map[string]string{"id": id, "status": string(recordDone)})
				return
			}
			writeJSON(w, http.StatusOK, *resp)
			return
		}
		// A property of the query, not a server fault — rejected before
		// it can occupy a queue slot.
		writeError(w, http.StatusUnprocessableEntity, "query %s: %v", id, err)
		return
	}
	if s.cfg.CoalesceIoU < 0 {
		planKey = "" // coalescing explicitly disabled
	}

	// The submitter's context carries the query deadline so an
	// already-expired budget is rejected inside Submit too.
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()
	tk, err := s.sched.Submit(ctx, Request{Query: q, Selector: sel, Aggregation: agg, Timeout: timeout, PlanKey: planKey})
	if err != nil {
		switch {
		case errors.Is(err, ErrQueueFull):
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, "%v", err)
		case errors.Is(err, ErrDraining):
			w.Header().Set("Retry-After", "5")
			writeError(w, http.StatusServiceUnavailable, "%v", err)
		case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
			writeError(w, http.StatusGatewayTimeout, "query %s: %v", id, err)
		default:
			writeError(w, http.StatusBadRequest, "%v", err)
		}
		return
	}

	s.records.put(id, &record{ID: id, Status: recordPending, Submitted: time.Now()})
	// The record tracker outlives the HTTP request: async clients and
	// sync clients whose connection died both find the outcome under
	// GET /v1/query/{id}.
	go s.trackRecord(id, req.IncludeParams, banditArm, tk)

	if req.Async {
		writeJSON(w, http.StatusAccepted, map[string]string{"id": id, "status": string(recordPending)})
		return
	}

	out, err := tk.Wait(ctx)
	if err != nil {
		switch {
		case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
			writeError(w, http.StatusGatewayTimeout, "query %s: %v", id, err)
		case errors.Is(err, selection.ErrNoCandidates):
			// A property of the query, not a server fault: no edge
			// node's cluster space supports the requested bounds.
			writeError(w, http.StatusUnprocessableEntity, "query %s: %v", id, err)
		default:
			writeError(w, http.StatusBadGateway, "query %s: %v", id, err)
		}
		return
	}
	writeJSON(w, http.StatusOK, buildResponse(id, out, req.IncludeParams))
}

// trackRecord waits for the task (detached from any HTTP context) and
// finalizes the stored record. It is also where a bandit-played arm is
// credited: the tracker runs exactly once per admitted query, whether
// or not the submitting client stayed connected.
func (s *Server) trackRecord(id string, includeParams bool, banditArm int, tk *Ticket) {
	out, err := tk.Wait(context.Background())
	now := time.Now()
	if err != nil {
		s.records.update(id, func(rec *record) {
			rec.Status = recordError
			rec.Error = err.Error()
			rec.Finished = &now
		})
		return
	}
	if banditArm >= 0 && s.cfg.Bandit != nil && !out.Reused && !out.Coalesced {
		// Only fresh executions carry a signal about the arm's config —
		// cache hits and coalesced waits trained nothing.
		s.cfg.Bandit.Observe(banditArm, banditReward(out))
	}
	resp := buildResponse(id, out, includeParams)
	s.records.update(id, func(rec *record) {
		rec.Status = recordDone
		rec.Result = &resp
		rec.Finished = &now
	})
}

// answerFromCache tries to serve a query that cannot be planned (no
// supporting candidates) straight from the model cache: exact-IoU
// match first, then the approximate tier under its predicted-error
// bound. Single-leader gateways with a cache only.
func (s *Server) answerFromCache(id string, q query.Query) (*queryResponse, bool) {
	if s.cfg.Cache == nil || s.cfg.Leader == nil {
		return nil, false
	}
	var epoch uint64
	if reg := s.cfg.Leader.Registry(); reg != nil {
		epoch = reg.ReuseEpoch()
	}
	res, kind, ok := s.cfg.Cache.Answer(q, epoch)
	if !ok {
		return nil, false
	}
	resp := buildResponse(id, &Outcome{Result: res, Reused: true, Kind: kind}, false)
	return &resp, true
}

// banditReward scores one fresh execution for the config bandit:
// round success fraction times a data-coverage quality proxy (the
// Fig. 9 selectivity — how much of the fleet's relevant data the arm's
// config actually trained on), discounted by the slowest node round's
// wall time so expensive configs must earn their latency.
func banditReward(out *Outcome) float64 {
	res := out.Result
	var worst time.Duration
	failed := 0
	for _, nr := range res.NodeRounds {
		if nr.Failed() {
			failed++
		}
		if nr.Elapsed > worst {
			worst = nr.Elapsed
		}
	}
	success := 1.0
	if n := len(res.NodeRounds); n > 0 {
		success = 1 - float64(failed)/float64(n)
	}
	quality := 0.3 + 0.7*res.Stats.DataFraction()
	return success * quality / (1 + worst.Seconds())
}

// buildResponse shapes one outcome for the wire.
func buildResponse(id string, out *Outcome, includeParams bool) queryResponse {
	res := out.Result
	resp := queryResponse{
		ID:          id,
		Selector:    res.Selector,
		Aggregation: res.Aggregation.String(),
		Reused:      out.Reused,
		Approx:      out.Kind == federation.ServeApprox,
		Coalesced:   out.Coalesced,
		QueueWaitMS: float64(out.QueueWait) / float64(time.Millisecond),
		ElapsedMS:   float64(out.Elapsed) / float64(time.Millisecond),
		Failed:      res.Failed,
		Stats: execStatsJSON{
			SelectionMS:   float64(res.Stats.SelectionTime) / float64(time.Millisecond),
			TrainMS:       float64(res.Stats.TrainTime) / float64(time.Millisecond),
			WallMS:        float64(res.Stats.WallTime) / float64(time.Millisecond),
			SamplesUsed:   res.Stats.SamplesUsed,
			SamplesAll:    res.Stats.SamplesAllNodes,
			DataFraction:  res.Stats.DataFraction(),
			BytesUp:       res.Stats.BytesUp,
			BytesDown:     res.Stats.BytesDown,
			EnsembleSize:  res.Ensemble.Size(),
			FailedRounds:  len(res.Failed),
			Participating: len(res.Participants),
		},
	}
	for _, p := range res.Participants {
		resp.Participants = append(resp.Participants, participantJSON{
			NodeID: p.NodeID, Rank: p.Rank, Clusters: p.Clusters,
		})
	}
	if includeParams {
		for _, p := range res.LocalParams {
			resp.LocalParams = append(resp.LocalParams, p.Values)
		}
	}
	return resp
}

// planResponse is the POST /v1/plan (EXPLAIN) body: the selection the
// leader would execute for the query, plus the full per-node ranking
// behind it, produced without a single training RPC.
type planResponse struct {
	ID         string  `json:"id"`
	Epoch      uint64  `json:"epoch"`
	Selector   string  `json:"selector"`
	Epsilon    float64 `json:"epsilon"`
	Key        string  `json:"key,omitempty"`
	Candidates int     `json:"candidates"`
	// Regions lists the sharded topology's regions (router mode only);
	// Epoch is then the routing-topology generation, not a registry
	// epoch.
	Regions      []string          `json:"regions,omitempty"`
	Participants []participantJSON `json:"participants"`
	Rankings     []rankJSON        `json:"rankings,omitempty"`
}

// rankJSON is one node's EXPLAIN row (Eqs. 2–4 of the paper).
type rankJSON struct {
	NodeID            string  `json:"node_id"`
	Rank              float64 `json:"rank"`
	Potential         float64 `json:"potential"`
	Supporting        []int   `json:"supporting,omitempty"`
	SupportingSamples int     `json:"supporting_samples"`
	TotalSamples      int     `json:"total_samples"`
}

// handlePlan serves POST /v1/plan — EXPLAIN for a query: it runs only
// the pure-CPU planning stage (registry snapshot, candidate ranking,
// selection) and reports what the leader would train, without touching
// a node. Stateful selectors are rejected: explaining a fairness or
// contribution query would advance its cursor/history.
func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	id := req.ID
	if id == "" {
		id = fmt.Sprintf("plan-%d", s.nextID.Add(1))
	}
	q, err := query.New(id, req.Bounds)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	sel, _, err := s.resolveSelector(req, true)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if _, stateful := sel.(selection.Stateful); stateful {
		writeError(w, http.StatusBadRequest, "selector %q is stateful; planning it would advance its state", sel.Name())
		return
	}
	if s.cfg.Router != nil {
		ex, err := s.cfg.Router.ExplainQuery(r.Context(), q, sel)
		if err != nil {
			writePlanError(w, id, err)
			return
		}
		writeJSON(w, http.StatusOK, buildExplainResponse(id, sel.Name(), ex))
		return
	}
	pl, err := s.cfg.Leader.ExplainContext(r.Context(), q, sel)
	if err != nil {
		writePlanError(w, id, err)
		return
	}
	resp := buildPlanResponse(id, pl)
	pl.Release()
	writeJSON(w, http.StatusOK, resp)
}

func writePlanError(w http.ResponseWriter, id string, err error) {
	switch {
	case errors.Is(err, selection.ErrNoCandidates):
		writeError(w, http.StatusUnprocessableEntity, "query %s: %v", id, err)
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		writeError(w, http.StatusGatewayTimeout, "query %s: %v", id, err)
	default:
		writeError(w, http.StatusBadGateway, "query %s: %v", id, err)
	}
}

// buildExplainResponse shapes a router-mode EXPLAIN: the cross-region
// merged ranking over the whole fleet (routing pruning does not apply
// to EXPLAIN) and the participants the policy would select.
func buildExplainResponse(id, selector string, ex *region.Explain) planResponse {
	resp := planResponse{
		ID:         id,
		Epoch:      ex.Generation,
		Selector:   selector,
		Epsilon:    ex.Epsilon,
		Candidates: len(ex.Rankings),
		Regions:    ex.Regions,
	}
	for _, p := range ex.Participants {
		resp.Participants = append(resp.Participants, participantJSON{
			NodeID: p.NodeID, Rank: p.Rank, Clusters: append([]int(nil), p.Clusters...),
		})
	}
	for _, nr := range ex.Rankings {
		resp.Rankings = append(resp.Rankings, rankJSON{
			NodeID:            nr.NodeID,
			Rank:              nr.Rank,
			Potential:         nr.Potential,
			Supporting:        append([]int(nil), nr.Supporting...),
			SupportingSamples: nr.SupportingSamples,
			TotalSamples:      nr.TotalSamples,
		})
	}
	return resp
}

// buildPlanResponse shapes a plan for the wire. Every slice is deep-
// copied: the plan's slices are arena-backed and die at Release.
func buildPlanResponse(id string, pl *plan.Plan) planResponse {
	resp := planResponse{
		ID:         id,
		Epoch:      pl.Epoch,
		Selector:   pl.Selector,
		Epsilon:    pl.Epsilon,
		Key:        pl.Key(),
		Candidates: pl.NumCandidates(),
	}
	for _, p := range pl.Participants {
		resp.Participants = append(resp.Participants, participantJSON{
			NodeID: p.NodeID, Rank: p.Rank, Clusters: append([]int(nil), p.Clusters...),
		})
	}
	for _, nr := range pl.Rankings {
		resp.Rankings = append(resp.Rankings, rankJSON{
			NodeID:            nr.NodeID,
			Rank:              nr.Rank,
			Potential:         nr.Potential,
			Supporting:        append([]int(nil), nr.Supporting...),
			SupportingSamples: nr.SupportingSamples,
			TotalSamples:      nr.TotalSamples,
		})
	}
	return resp
}

// handleGet serves GET /v1/query/{id}.
func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	rec, ok := s.records.get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no record of query %q", id)
		return
	}
	writeJSON(w, http.StatusOK, rec)
}

// windowJSON is a rolling-window latency summary on the wire.
type windowJSON struct {
	WindowS float64 `json:"window_s"`
	Count   int64   `json:"count"`
	MeanMS  float64 `json:"mean_ms"`
	P50MS   float64 `json:"p50_ms"`
	P95MS   float64 `json:"p95_ms"`
	P99MS   float64 `json:"p99_ms"`
	MaxMS   float64 `json:"max_ms"`
}

// statsResponse is the GET /v1/stats document.
type statsResponse struct {
	UptimeS   float64 `json:"uptime_s"`
	Scheduler Stats   `json:"scheduler"`
	// Reuse is the single-leader cache's full scoreboard: exact-tier
	// hit/miss/eviction counts plus the approximate tier's hits,
	// ground-truth probes and fallbacks when it is enabled.
	Reuse *federation.ReuseCacheStats `json:"reuse_cache,omitempty"`
	// Bandit is the config bandit's per-arm scoreboard (selector
	// "auto" enabled only).
	Bandit  []selection.ArmStats `json:"bandit,omitempty"`
	Latency struct {
		Count  int64   `json:"count"`
		MeanMS float64 `json:"mean_ms"`
		P50MS  float64 `json:"p50_ms"`
		P95MS  float64 `json:"p95_ms"`
		P99MS  float64 `json:"p99_ms"`
		MaxMS  float64 `json:"max_ms"`
		// Window summarizes only the last rolling window (see
		// Scheduler.LatencyWindow) next to the cumulative numbers.
		Window windowJSON `json:"window"`
	} `json:"latency"`
	Nodes    []string        `json:"nodes"`
	Space    *geometry.Rect  `json:"space,omitempty"`
	Registry *registry.Stats `json:"registry,omitempty"`
	// Router carries the sharded topology's routing view — per-region
	// shard membership, routed-query counts and epochs (router mode
	// only).
	Router    *region.RouterStats `json:"router,omitempty"`
	Transport any                 `json:"transport,omitempty"`
}

// handleStats serves GET /v1/stats: scheduler counters, reuse-cache
// effectiveness, latency percentiles, the node roster and the global
// data space (load generators draw workloads from it).
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	var resp statsResponse
	resp.UptimeS = time.Since(s.start).Seconds()
	resp.Scheduler = s.sched.SchedStats()
	resp.Nodes = s.nodeIDs(r.Context())
	if s.cfg.Cache != nil {
		st := s.cfg.Cache.CacheStats()
		resp.Reuse = &st
	}
	if s.cfg.Bandit != nil {
		resp.Bandit = s.cfg.Bandit.Stats()
	}
	snap := s.sched.LatencySnapshot()
	resp.Latency.Count = snap.Count
	if snap.Count > 0 {
		resp.Latency.MeanMS = snap.Sum / float64(snap.Count)
	}
	resp.Latency.P50MS = snap.P50
	resp.Latency.P95MS = snap.P95
	resp.Latency.P99MS = snap.P99
	resp.Latency.MaxMS = snap.Max
	win := s.sched.LatencyWindow()
	resp.Latency.Window = windowJSON{
		WindowS: win.Window.Seconds(),
		Count:   win.Count,
		MeanMS:  win.Mean(),
		P50MS:   win.P50,
		P95MS:   win.P95,
		P99MS:   win.P99,
		MaxMS:   win.Max,
	}
	if space, err := s.space(r.Context()); err == nil {
		resp.Space = &space
	}
	if s.cfg.Leader != nil {
		if reg := s.cfg.Leader.Registry(); reg != nil {
			st := reg.Stats()
			resp.Registry = &st
		}
	} else if rs, err := s.cfg.Router.Stats(r.Context()); err == nil {
		resp.Router = &rs
	}
	if s.cfg.TransportStats != nil {
		resp.Transport = s.cfg.TransportStats()
	}
	writeJSON(w, http.StatusOK, resp)
}

// space computes the union of every advertised cluster rectangle — the
// global data space queries are drawn over.
func (s *Server) space(ctx context.Context) (geometry.Rect, error) {
	if s.cfg.Router != nil {
		return s.cfg.Router.Space(ctx)
	}
	summaries, err := s.cfg.Leader.SummariesContext(ctx)
	if err != nil {
		return geometry.Rect{}, err
	}
	bounds := make([]geometry.Rect, 0, len(summaries))
	for _, sum := range summaries {
		if len(sum.Clusters) == 0 {
			continue
		}
		node := sum.Clusters[0].Bounds.Clone()
		for _, c := range sum.Clusters[1:] {
			node = node.Union(c.Bounds)
		}
		bounds = append(bounds, node)
	}
	return query.GlobalSpace(bounds)
}

// tracer resolves the tracer backing the trace endpoints: the
// configured one, else the process default (possibly nil).
func (s *Server) tracer() *telemetry.Tracer {
	if s.cfg.Tracer != nil {
		return s.cfg.Tracer
	}
	return telemetry.DefaultTracer()
}

// traceResponse is the GET /v1/trace/{id} document: the assembled
// cross-process span tree plus its critical-path decomposition.
type traceResponse struct {
	*telemetry.TraceTree
	CriticalPath telemetry.CriticalPathReport `json:"critical_path"`
}

// handleTrace serves GET /v1/trace/{id}: the assembled tree for one
// query's trace — leader spans plus the node-side spans piggybacked on
// RPC responses — with wall time attributed per phase category.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	tr := s.tracer()
	if tr == nil {
		writeError(w, http.StatusNotFound, "tracing is not enabled on this gateway")
		return
	}
	id := r.PathValue("id")
	spans := tr.TraceSpans(id)
	if len(spans) == 0 {
		writeError(w, http.StatusNotFound, "no retained spans for trace %q", id)
		return
	}
	tree, err := telemetry.AssembleTrace(spans, id)
	if err != nil {
		writeError(w, http.StatusNotFound, "trace %q: %v", id, err)
		return
	}
	writeJSON(w, http.StatusOK, traceResponse{TraceTree: tree, CriticalPath: tree.CriticalPath()})
}

// traceListEntry is one retained trace root in GET /v1/traces.
type traceListEntry struct {
	TraceID    string    `json:"trace_id"`
	Name       string    `json:"name"`
	Start      time.Time `json:"start"`
	DurationMS float64   `json:"duration_ms"`
	Query      string    `json:"query,omitempty"`
	Error      string    `json:"error,omitempty"`
}

// handleTraces serves GET /v1/traces: the most recent retained trace
// roots, newest first — the index for /v1/trace/{id}.
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	tr := s.tracer()
	if tr == nil {
		writeError(w, http.StatusNotFound, "tracing is not enabled on this gateway")
		return
	}
	const maxList = 64
	spans := tr.Spans()
	out := make([]traceListEntry, 0, maxList)
	for i := len(spans) - 1; i >= 0 && len(out) < maxList; i-- {
		sp := spans[i]
		if sp.ParentID != "" {
			continue
		}
		out = append(out, traceListEntry{
			TraceID:    sp.TraceID,
			Name:       sp.Name,
			Start:      sp.Start,
			DurationMS: sp.DurationMS,
			Query:      sp.Attrs["query"],
			Error:      sp.Error,
		})
	}
	writeJSON(w, http.StatusOK, map[string]any{"traces": out})
}

// fleetResponse is the GET /v1/fleet document.
type fleetResponse struct {
	Nodes []fleet.NodeHealth `json:"nodes"`
	// RegistryEpoch/RegistryStale mirror the summary registry's state
	// at report time (single-leader mode).
	RegistryEpoch uint64 `json:"registry_epoch"`
	RegistryStale bool   `json:"registry_stale"`
	// Regions carries per-region shard membership and health in router
	// mode; Nodes is then the concatenation across regions.
	Regions []regionFleetJSON `json:"regions,omitempty"`
}

// regionFleetJSON is one region's block in a router-mode /v1/fleet.
type regionFleetJSON struct {
	RegionID      string             `json:"region_id"`
	Nodes         []fleet.NodeHealth `json:"nodes"`
	NodeIDs       []string           `json:"node_ids"`
	RegistryEpoch uint64             `json:"registry_epoch"`
	RegistryStale bool               `json:"registry_stale"`
	TotalSamples  int                `json:"total_samples"`
}

// handleFleet serves GET /v1/fleet: per-node health scores from the
// leader's round observations, merged with summary-epoch staleness
// from the registry and (for remote fleets) wire-level transport
// state. In router mode the report is assembled per region from each
// regional leader's own registry and health tracker.
func (s *Server) handleFleet(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Router != nil {
		s.handleRegionFleet(w, r)
		return
	}
	var resp fleetResponse
	meta := map[string]fleet.Meta{}
	// Seed the roster so nodes that never answered a round still
	// appear.
	for _, id := range s.cfg.Leader.NodeIDs() {
		meta[id] = fleet.Meta{}
	}
	if reg := s.cfg.Leader.Registry(); reg != nil {
		st := reg.Stats()
		resp.RegistryEpoch = st.Epoch
		resp.RegistryStale = st.Stale
		if snap, ok := reg.Current(); ok {
			for _, n := range snap.Nodes {
				m := meta[n.NodeID]
				m.SummaryEpoch = snap.NodeSummaryEpoch(n.NodeID)
				// The registry invalidates as a whole when any node
				// signals drift; until the refresh lands every node is
				// planned against potentially stale geometry.
				m.Stale = st.Stale
				meta[n.NodeID] = m
			}
		}
	}
	if s.cfg.WireStatus != nil {
		for _, ws := range s.cfg.WireStatus() {
			ws := ws
			m := meta[ws.NodeID]
			m.Wire = &ws
			meta[ws.NodeID] = m
		}
	}
	resp.Nodes = s.cfg.Leader.Health().Report(meta)
	writeJSON(w, http.StatusOK, resp)
}

// handleRegionFleet assembles the router-mode /v1/fleet document from
// every region's Stats report.
func (s *Server) handleRegionFleet(w http.ResponseWriter, r *http.Request) {
	reports, err := s.cfg.Router.FleetReport(r.Context())
	if err != nil {
		writeError(w, http.StatusBadGateway, "fleet report: %v", err)
		return
	}
	var resp fleetResponse
	for _, rep := range reports {
		ids := make([]string, 0, len(rep.Info.Nodes))
		for _, n := range rep.Info.Nodes {
			ids = append(ids, n.NodeID)
		}
		resp.Regions = append(resp.Regions, regionFleetJSON{
			RegionID:      rep.Info.RegionID,
			Nodes:         rep.Health,
			NodeIDs:       ids,
			RegistryEpoch: rep.Registry.Epoch,
			RegistryStale: rep.Registry.Stale,
			TotalSamples:  rep.Info.TotalSamples,
		})
		resp.Nodes = append(resp.Nodes, rep.Health...)
	}
	writeJSON(w, http.StatusOK, resp)
}

// recordStatus is a stored query's lifecycle phase.
type recordStatus string

const (
	recordPending recordStatus = "pending"
	recordDone    recordStatus = "done"
	recordError   recordStatus = "error"
)

// record is one retained query outcome.
type record struct {
	ID        string         `json:"id"`
	Status    recordStatus   `json:"status"`
	Submitted time.Time      `json:"submitted_at"`
	Finished  *time.Time     `json:"finished_at,omitempty"`
	Result    *queryResponse `json:"result,omitempty"`
	Error     string         `json:"error,omitempty"`
}

// recordStore is a bounded id-keyed store with FIFO eviction.
type recordStore struct {
	mu    sync.Mutex
	cap   int
	byID  map[string]*record
	order []string
}

func newRecordStore(capacity int) *recordStore {
	return &recordStore{cap: capacity, byID: make(map[string]*record)}
}

func (rs *recordStore) put(id string, rec *record) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if _, exists := rs.byID[id]; !exists {
		if len(rs.order) == rs.cap {
			delete(rs.byID, rs.order[0])
			rs.order = rs.order[1:]
		}
		rs.order = append(rs.order, id)
	}
	rs.byID[id] = rec
}

func (rs *recordStore) update(id string, fn func(*record)) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if rec, ok := rs.byID[id]; ok {
		fn(rec)
	}
}

// get returns a copy so callers can serialize it without holding the
// lock.
func (rs *recordStore) get(id string) (record, bool) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	rec, ok := rs.byID[id]
	if !ok {
		return record{}, false
	}
	return *rec, true
}
