package selection

import (
	"fmt"
	"testing"
)

func TestPreTestHomogeneous(t *testing.T) {
	losses := map[string]float64{"a": 24.45, "b": 24.70, "c": 24.1}
	res, err := PreTest([]string{"a", "b", "c"}, func(id string) (float64, error) {
		return losses[id], nil
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Regime != RegimeHomogeneous {
		t.Fatalf("regime = %v, want homogeneous (the Table I case)", res.Regime)
	}
	if res.Losses["b"] != 24.70 {
		t.Fatalf("losses not recorded: %v", res.Losses)
	}
}

func TestPreTestHeterogeneous(t *testing.T) {
	// The Table II case: 9.70 vs 178.10.
	losses := map[string]float64{"a": 9.70, "b": 178.10}
	res, err := PreTest([]string{"a", "b"}, func(id string) (float64, error) {
		return losses[id], nil
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Regime != RegimeHeterogeneous {
		t.Fatalf("regime = %v, want heterogeneous (the Table II case)", res.Regime)
	}
	if res.Dispersion < 10 {
		t.Fatalf("dispersion = %v, want > 10", res.Dispersion)
	}
}

func TestPreTestCustomThreshold(t *testing.T) {
	losses := map[string]float64{"a": 1, "b": 2.5}
	// Ratio 2.5: homogeneous at default threshold 3...
	res, _ := PreTest([]string{"a", "b"}, func(id string) (float64, error) { return losses[id], nil }, 0)
	if res.Regime != RegimeHomogeneous {
		t.Fatal("expected homogeneous at default threshold")
	}
	// ...heterogeneous with a strict threshold of 2.
	res, _ = PreTest([]string{"a", "b"}, func(id string) (float64, error) { return losses[id], nil }, 2)
	if res.Regime != RegimeHeterogeneous {
		t.Fatal("expected heterogeneous at threshold 2")
	}
}

func TestPreTestErrors(t *testing.T) {
	eval := func(string) (float64, error) { return 1, nil }
	if _, err := PreTest(nil, eval, 0); err == nil {
		t.Fatal("accepted no nodes")
	}
	if _, err := PreTest([]string{"a"}, nil, 0); err == nil {
		t.Fatal("accepted nil evaluator")
	}
	if _, err := PreTest([]string{"a"}, func(string) (float64, error) { return 0, fmt.Errorf("down") }, 0); err == nil {
		t.Fatal("ignored evaluator failure")
	}
	if _, err := PreTest([]string{"a"}, func(string) (float64, error) { return -1, nil }, 0); err == nil {
		t.Fatal("accepted negative loss")
	}
}

func TestPreTestZeroLosses(t *testing.T) {
	// All-zero losses (perfect models) must classify as homogeneous,
	// not divide by zero.
	res, err := PreTest([]string{"a", "b"}, func(string) (float64, error) { return 0, nil }, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Regime != RegimeHomogeneous {
		t.Fatalf("regime = %v", res.Regime)
	}
}

func TestRegimeString(t *testing.T) {
	if RegimeHomogeneous.String() != "homogeneous" || RegimeHeterogeneous.String() != "heterogeneous" {
		t.Fatal("regime strings wrong")
	}
}
