package selection

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"qens/internal/cluster"
	"qens/internal/geometry"
	"qens/internal/query"
	"qens/internal/rng"
)

// mkSummary builds a 1-D node summary with the given cluster intervals.
func mkSummary(id string, intervals [][2]float64, sizes []int) cluster.NodeSummary {
	s := cluster.NodeSummary{NodeID: id}
	total := 0
	for i, iv := range intervals {
		size := 10
		if sizes != nil {
			size = sizes[i]
		}
		s.Clusters = append(s.Clusters, cluster.Summary{
			Bounds: geometry.MustRect([]float64{iv[0]}, []float64{iv[1]}),
			Size:   size,
		})
		total += size
	}
	s.TotalSamples = total
	return s
}

func mkQuery(t *testing.T, lo, hi float64) query.Query {
	t.Helper()
	q, err := query.New("q", geometry.MustRect([]float64{lo}, []float64{hi}))
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func TestRankNodesEquations(t *testing.T) {
	// Node with K=2 clusters: [0,10] fully containing the query
	// [2,4] (h = 0.2), and [100,110] disjoint (h = 0).
	// With ε=0.1: K'=1, p = 0.2, r = 0.2 * 1/2 = 0.1.
	sums := []cluster.NodeSummary{mkSummary("n1", [][2]float64{{0, 10}, {100, 110}}, []int{30, 50})}
	q := mkQuery(t, 2, 4)
	ranks, err := RankNodes(q, sums, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	r := ranks[0]
	if len(r.Supporting) != 1 || r.Supporting[0] != 0 {
		t.Fatalf("supporting = %v", r.Supporting)
	}
	if math.Abs(r.Potential-0.2) > 1e-12 {
		t.Fatalf("potential = %v, want 0.2 (Eq. 3)", r.Potential)
	}
	if math.Abs(r.Rank-0.1) > 1e-12 {
		t.Fatalf("rank = %v, want 0.1 (Eq. 4)", r.Rank)
	}
	if r.SupportingSamples != 30 || r.TotalSamples != 80 {
		t.Fatalf("samples %d/%d", r.SupportingSamples, r.TotalSamples)
	}
}

func TestRankNodesEpsilonFilters(t *testing.T) {
	// Cluster [0,100] with query [2,4]: h = 0.02 < ε=0.1 -> no support.
	sums := []cluster.NodeSummary{mkSummary("n1", [][2]float64{{0, 100}}, nil)}
	ranks, err := RankNodes(mkQuery(t, 2, 4), sums, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ranks[0].Supporting) != 0 || ranks[0].Rank != 0 {
		t.Fatalf("tiny overlap should not support: %+v", ranks[0])
	}
	// With a lower ε it does support.
	ranks, _ = RankNodes(mkQuery(t, 2, 4), sums, 0.01)
	if len(ranks[0].Supporting) != 1 {
		t.Fatal("expected support at ε=0.01")
	}
}

func TestRankNodesValidation(t *testing.T) {
	sums := []cluster.NodeSummary{mkSummary("n1", [][2]float64{{0, 10}}, nil)}
	if _, err := RankNodes(mkQuery(t, 0, 1), sums, 0); err == nil {
		t.Fatal("accepted ε=0")
	}
	if _, err := RankNodes(mkQuery(t, 0, 1), []cluster.NodeSummary{{}}, 0.1); err == nil {
		t.Fatal("accepted invalid summary")
	}
	// Dimension mismatch.
	q2, _ := query.New("q", geometry.MustRect([]float64{0, 0}, []float64{1, 1}))
	if _, err := RankNodes(q2, sums, 0.1); err == nil {
		t.Fatal("accepted dimension mismatch")
	}
}

func TestRankOrderingMatchesOverlap(t *testing.T) {
	// Three nodes: full overlap, partial overlap, none.
	sums := []cluster.NodeSummary{
		mkSummary("full", [][2]float64{{0, 10}, {10, 20}}, nil),
		mkSummary("partial", [][2]float64{{8, 30}, {200, 300}}, nil),
		mkSummary("none", [][2]float64{{500, 600}, {700, 800}}, nil),
	}
	q := mkQuery(t, 2, 12)
	ranks, err := RankNodes(q, sums, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	SortByRank(ranks)
	if ranks[0].NodeID != "full" || ranks[2].NodeID != "none" {
		t.Fatalf("order = %s,%s,%s", ranks[0].NodeID, ranks[1].NodeID, ranks[2].NodeID)
	}
	if ranks[2].Rank != 0 {
		t.Fatalf("disjoint node rank = %v", ranks[2].Rank)
	}
}

func TestSortByRankDeterministicTies(t *testing.T) {
	ranks := []NodeRank{{NodeID: "b", Rank: 1}, {NodeID: "a", Rank: 1}, {NodeID: "c", Rank: 2}}
	SortByRank(ranks)
	if ranks[0].NodeID != "c" || ranks[1].NodeID != "a" || ranks[2].NodeID != "b" {
		t.Fatalf("tie-break order: %v %v %v", ranks[0].NodeID, ranks[1].NodeID, ranks[2].NodeID)
	}
}

func TestTopL(t *testing.T) {
	ranks := []NodeRank{
		{NodeID: "a", Rank: 0.5},
		{NodeID: "b", Rank: 0.9},
		{NodeID: "c", Rank: 0},
		{NodeID: "d", Rank: 0.1},
	}
	top := TopL(ranks, 2)
	if len(top) != 2 || top[0].NodeID != "b" || top[1].NodeID != "a" {
		t.Fatalf("TopL = %+v", top)
	}
	// Zero-rank nodes are never selected even if ℓ is large.
	top = TopL(ranks, 10)
	if len(top) != 3 {
		t.Fatalf("TopL(10) returned %d nodes, want 3 positive-rank", len(top))
	}
	if TopL(ranks, 0) != nil {
		t.Fatal("TopL(0) should be nil")
	}
}

func TestAboveThreshold(t *testing.T) {
	ranks := []NodeRank{
		{NodeID: "a", Rank: 0.5},
		{NodeID: "b", Rank: 0.9},
		{NodeID: "c", Rank: 0.05},
	}
	got := AboveThreshold(ranks, 0.4)
	if len(got) != 2 || got[0].NodeID != "b" {
		t.Fatalf("AboveThreshold = %+v", got)
	}
	// Non-positive ψ keeps every positive-rank node.
	got = AboveThreshold(ranks, 0)
	if len(got) != 3 {
		t.Fatalf("ψ=0 kept %d", len(got))
	}
}

// Property: ranking invariants hold for random summaries and queries —
// rank <= potential (since K'/K <= 1), supporting ⊆ clusters, and
// potential equals the sum of supporting overlaps.
func TestRankInvariantsProperty(t *testing.T) {
	f := func(seed uint64) bool {
		src := rng.New(seed)
		n := int(seed%8) + 2
		sums := make([]cluster.NodeSummary, n)
		for i := range sums {
			s := cluster.NodeSummary{NodeID: fmt.Sprintf("n%02d", i)}
			k := int(seed%4) + 2
			for c := 0; c < k; c++ {
				lo := src.Uniform(0, 80)
				s.Clusters = append(s.Clusters, cluster.Summary{
					Bounds: geometry.MustRect([]float64{lo}, []float64{lo + src.Uniform(0.5, 20)}),
					Size:   int(src.Uniform(1, 100)),
				})
				s.TotalSamples += s.Clusters[c].Size
			}
			sums[i] = s
		}
		a := src.Uniform(0, 80)
		q, err := query.New("q", geometry.MustRect([]float64{a}, []float64{a + src.Uniform(1, 30)}))
		if err != nil {
			return false
		}
		eps := src.Uniform(0.05, 0.9)
		ranks, err := RankNodes(q, sums, eps)
		if err != nil {
			return false
		}
		for i, r := range ranks {
			if r.Rank > r.Potential+1e-12 || r.Rank < 0 {
				return false
			}
			if len(r.Supporting) > len(r.Overlaps) {
				return false
			}
			sum := 0.0
			for _, k := range r.Supporting {
				if r.Overlaps[k] < eps {
					return false
				}
				sum += r.Overlaps[k]
			}
			if sum != r.Potential {
				return false
			}
			if r.TotalSamples != sums[i].TotalSamples {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
