package selection

import (
	"errors"
	"fmt"
	"testing"

	"qens/internal/cluster"
	"qens/internal/rng"
)

func fourNodes() []cluster.NodeSummary {
	return []cluster.NodeSummary{
		mkSummary("n0", [][2]float64{{0, 10}, {10, 20}}, nil),
		mkSummary("n1", [][2]float64{{5, 15}, {15, 25}}, nil),
		mkSummary("n2", [][2]float64{{100, 110}, {110, 120}}, nil),
		mkSummary("n3", [][2]float64{{-10, 0}, {0, 5}}, nil),
	}
}

func TestQueryDrivenTopL(t *testing.T) {
	sel := QueryDriven{Epsilon: 0.05, TopL: 2}
	q := mkQuery(t, 2, 12)
	parts, err := sel.Select(q, fourNodes(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 2 {
		t.Fatalf("%d participants", len(parts))
	}
	// n2 is disjoint from the query and must never be selected.
	for _, p := range parts {
		if p.NodeID == "n2" {
			t.Fatal("selected disjoint node")
		}
		if p.Rank <= 0 {
			t.Fatalf("participant %s has rank %v", p.NodeID, p.Rank)
		}
		if len(p.Clusters) == 0 {
			t.Fatalf("participant %s has no supporting clusters", p.NodeID)
		}
	}
}

func TestQueryDrivenPsi(t *testing.T) {
	sel := QueryDriven{Epsilon: 0.05, Psi: 0.01}
	parts, err := sel.Select(mkQuery(t, 2, 12), fourNodes(), nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range parts {
		if p.Rank < 0.01 {
			t.Fatalf("ψ violated: %v", p.Rank)
		}
	}
}

func TestQueryDrivenConfigErrors(t *testing.T) {
	q := mkQuery(t, 0, 1)
	if _, err := (QueryDriven{Epsilon: 0.1}).Select(q, fourNodes(), nil); err == nil {
		t.Fatal("accepted neither TopL nor Psi")
	}
	if _, err := (QueryDriven{Epsilon: 0.1, TopL: 2, Psi: 0.5}).Select(q, fourNodes(), nil); err == nil {
		t.Fatal("accepted both TopL and Psi")
	}
	if _, err := (QueryDriven{TopL: 2}).Select(q, fourNodes(), nil); err == nil {
		t.Fatal("accepted ε=0")
	}
}

func TestQueryDrivenNoCandidates(t *testing.T) {
	sel := QueryDriven{Epsilon: 0.1, TopL: 3}
	_, err := sel.Select(mkQuery(t, 5000, 6000), fourNodes(), nil)
	if !errors.Is(err, ErrNoCandidates) {
		t.Fatalf("err = %v, want ErrNoCandidates", err)
	}
}

func TestRandomSelector(t *testing.T) {
	sel := Random{L: 2}
	ctx := &Context{RNG: rng.New(1)}
	parts, err := sel.Select(mkQuery(t, 0, 1), fourNodes(), ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 2 {
		t.Fatalf("%d participants", len(parts))
	}
	if parts[0].NodeID == parts[1].NodeID {
		t.Fatal("duplicate selection")
	}
	// Whole-dataset training: no cluster directives.
	for _, p := range parts {
		if p.Clusters != nil {
			t.Fatal("random selection should not restrict clusters")
		}
	}
	// Oversized L clamps.
	parts, err = (Random{L: 99}).Select(mkQuery(t, 0, 1), fourNodes(), ctx)
	if err != nil || len(parts) != 4 {
		t.Fatalf("oversized L: %v, %d", err, len(parts))
	}
}

func TestRandomSelectorErrors(t *testing.T) {
	if _, err := (Random{}).Select(mkQuery(t, 0, 1), fourNodes(), &Context{RNG: rng.New(1)}); err == nil {
		t.Fatal("accepted L=0")
	}
	if _, err := (Random{L: 1}).Select(mkQuery(t, 0, 1), fourNodes(), nil); err == nil {
		t.Fatal("accepted nil context")
	}
	if _, err := (Random{L: 1}).Select(mkQuery(t, 0, 1), nil, &Context{RNG: rng.New(1)}); !errors.Is(err, ErrNoCandidates) {
		t.Fatal("empty summaries should be ErrNoCandidates")
	}
}

func TestRandomSelectorUniform(t *testing.T) {
	ctx := &Context{RNG: rng.New(7)}
	counts := map[string]int{}
	for i := 0; i < 4000; i++ {
		parts, err := (Random{L: 1}).Select(mkQuery(t, 0, 1), fourNodes(), ctx)
		if err != nil {
			t.Fatal(err)
		}
		counts[parts[0].NodeID]++
	}
	for id, c := range counts {
		if c < 800 || c > 1200 {
			t.Fatalf("node %s drawn %d/4000 times, want ~1000", id, c)
		}
	}
}

func TestAllNodesSelector(t *testing.T) {
	parts, err := (AllNodes{}).Select(mkQuery(t, 0, 1), fourNodes(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 4 {
		t.Fatalf("%d participants", len(parts))
	}
	if _, err := (AllNodes{}).Select(mkQuery(t, 0, 1), nil, nil); !errors.Is(err, ErrNoCandidates) {
		t.Fatal("empty summaries should error")
	}
}

func TestGameTheorySelectsWorstLoss(t *testing.T) {
	losses := map[string]float64{"n0": 1, "n1": 50, "n2": 10, "n3": 2}
	ctx := &Context{Evaluate: func(id string) (float64, error) { return losses[id], nil }}
	parts, err := (GameTheory{L: 2}).Select(mkQuery(t, 0, 1), fourNodes(), ctx)
	if err != nil {
		t.Fatal(err)
	}
	if parts[0].NodeID != "n1" || parts[1].NodeID != "n2" {
		t.Fatalf("GT picked %s,%s", parts[0].NodeID, parts[1].NodeID)
	}
}

func TestGameTheoryErrors(t *testing.T) {
	ctx := &Context{Evaluate: func(string) (float64, error) { return 0, nil }}
	if _, err := (GameTheory{}).Select(mkQuery(t, 0, 1), fourNodes(), ctx); err == nil {
		t.Fatal("accepted L=0")
	}
	if _, err := (GameTheory{L: 1}).Select(mkQuery(t, 0, 1), fourNodes(), nil); err == nil {
		t.Fatal("accepted nil evaluator")
	}
	failing := &Context{Evaluate: func(string) (float64, error) { return 0, fmt.Errorf("down") }}
	if _, err := (GameTheory{L: 1}).Select(mkQuery(t, 0, 1), fourNodes(), failing); err == nil {
		t.Fatal("ignored evaluator failure")
	}
}

func TestFairnessRotation(t *testing.T) {
	sel := &Fairness{L: 2}
	seen := map[string]int{}
	for i := 0; i < 6; i++ { // 6 rounds * 2 = 12 slots over 4 nodes
		parts, err := sel.Select(mkQuery(t, 0, 1), fourNodes(), nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range parts {
			seen[p.NodeID]++
		}
	}
	for id, c := range seen {
		if c != 3 {
			t.Fatalf("fairness gave node %s %d slots, want exactly 3", id, c)
		}
	}
}

func TestContributionSelector(t *testing.T) {
	sel := &Contribution{L: 2}
	// First round: all unseen, optimistic — selects first two by id.
	parts, err := sel.Select(mkQuery(t, 0, 1), fourNodes(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 2 {
		t.Fatalf("%d participants", len(parts))
	}
	// Report n3 as a star contributor, n0/n1 as poor.
	sel.Report("n0", 0.1)
	sel.Report("n1", 0.1)
	sel.Report("n2", 0.2)
	sel.Report("n3", 5.0)
	parts, err = sel.Select(mkQuery(t, 0, 1), fourNodes(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if parts[0].NodeID != "n3" {
		t.Fatalf("top contributor not selected first: %s", parts[0].NodeID)
	}
	// Running average: repeated reports converge.
	sel.Report("n3", 1.0)
	if s := sel.scores["n3"]; s != 3.0 {
		t.Fatalf("running average = %v, want 3.0", s)
	}
}

func TestSelectorNames(t *testing.T) {
	names := map[string]bool{}
	for _, s := range []Selector{QueryDriven{}, Random{}, AllNodes{}, GameTheory{}, &Fairness{}, &Contribution{}} {
		n := s.Name()
		if n == "" || names[n] {
			t.Fatalf("bad or duplicate selector name %q", n)
		}
		names[n] = true
	}
}
