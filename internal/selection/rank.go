// Package selection implements the paper's core contribution — the
// query-driven edge node selection mechanism of §III-C — together with
// the baselines it is evaluated against (§V-C): Random selection [6],
// Game-Theory selection [7], all-node selection, and two additional
// literature-style baselines (fairness rotation [12] and
// contribution-based scoring [11]) used by the ablation benches.
//
// The leader only ever sees cluster.NodeSummary advertisements — the
// cluster bounding rectangles and counts — never raw node data, which
// is what keeps the mechanism's communication O(1) per node.
package selection

import (
	"errors"
	"fmt"
	"sort"

	"qens/internal/cluster"
	"qens/internal/geometry"
	"qens/internal/query"
)

// NodeRank carries everything the ranking computed about a node for
// one query.
type NodeRank struct {
	NodeID string
	// Overlaps holds h_ik (Eq. 2) for every advertised cluster k.
	Overlaps []float64
	// Supporting lists the indices of clusters with h_ik >= ε
	// (the K' supporting clusters).
	Supporting []int
	// Potential is p_i = Σ_k h_ik over supporting clusters (Eq. 3).
	Potential float64
	// Rank is r_i = p_i * K'/K (Eq. 4).
	Rank float64
	// SupportingSamples is the number of raw samples inside the
	// supporting clusters, used by the Fig. 9 data accounting.
	SupportingSamples int
	// TotalSamples is the node's |D_i|.
	TotalSamples int
	// Sizes holds the advertised member count of every cluster,
	// index-aligned with Overlaps. Candidate-set consumers use it to
	// re-threshold the ranking at a different ε without going back to
	// the raw summaries.
	Sizes []int
}

// RankNodes computes the paper's ranking for every advertised node:
// per-cluster overlap rates (Eq. 2), the supporting-cluster potential
// (Eq. 3) and the final rank (Eq. 4). epsilon is the paper's ε
// support threshold (> 0).
func RankNodes(q query.Query, summaries []cluster.NodeSummary, epsilon float64) ([]NodeRank, error) {
	if epsilon <= 0 {
		return nil, fmt.Errorf("selection: epsilon %v must be > 0", epsilon)
	}
	ranks := make([]NodeRank, 0, len(summaries))
	for _, s := range summaries {
		if err := s.Validate(); err != nil {
			return nil, fmt.Errorf("selection: node %s: %w", s.NodeID, err)
		}
		r := NodeRank{NodeID: s.NodeID, TotalSamples: s.TotalSamples}
		k := len(s.Clusters)
		r.Overlaps = make([]float64, k)
		r.Sizes = make([]int, k)
		for i, c := range s.Clusters {
			r.Sizes[i] = c.Size
			if c.Bounds.Dims() != q.Dims() {
				return nil, fmt.Errorf("selection: node %s cluster %d has %d dims, query has %d",
					s.NodeID, i, c.Bounds.Dims(), q.Dims())
			}
			h := geometry.OverlapRate(q.Bounds, c.Bounds)
			r.Overlaps[i] = h
			if h >= epsilon {
				r.Supporting = append(r.Supporting, i)
				r.Potential += h
				r.SupportingSamples += c.Size
			}
		}
		r.Rank = r.Potential * float64(len(r.Supporting)) / float64(k)
		ranks = append(ranks, r)
	}
	return ranks, nil
}

// SortByRank orders ranks descending by Rank, breaking ties by node id
// for determinism.
func SortByRank(ranks []NodeRank) {
	sort.SliceStable(ranks, func(i, j int) bool {
		if ranks[i].Rank != ranks[j].Rank {
			return ranks[i].Rank > ranks[j].Rank
		}
		return ranks[i].NodeID < ranks[j].NodeID
	})
}

// TopL returns the ℓ highest-ranked nodes with positive rank. Fewer
// may be returned when not enough nodes have any supporting cluster.
func TopL(ranks []NodeRank, l int) []NodeRank {
	if l < 1 {
		return nil
	}
	sorted := append([]NodeRank(nil), ranks...)
	SortByRank(sorted)
	out := make([]NodeRank, 0, l)
	for _, r := range sorted {
		if len(out) == l {
			break
		}
		if r.Rank <= 0 {
			break // sorted descending: nothing useful follows
		}
		out = append(out, r)
	}
	return out
}

// AboveThreshold implements Eq. 5: every node with r_i >= ψ.
func AboveThreshold(ranks []NodeRank, psi float64) []NodeRank {
	if psi <= 0 {
		psi = 1e-12 // a non-positive ψ degrades to "any support at all"
	}
	sorted := append([]NodeRank(nil), ranks...)
	SortByRank(sorted)
	out := make([]NodeRank, 0, len(sorted))
	for _, r := range sorted {
		if r.Rank >= psi {
			out = append(out, r)
		}
	}
	return out
}

// ErrNoCandidates reports that no node satisfied the selection policy
// for a query.
var ErrNoCandidates = errors.New("selection: no node supports the query")
