package selection

import (
	"fmt"
	"sort"

	"qens/internal/cluster"
	"qens/internal/geometry"
	"qens/internal/query"
)

// Index accelerates leader-side ranking for large federations: all
// advertised cluster rectangles are packed into an R-tree once (per
// advertisement epoch), and per query only the clusters intersecting
// the query rectangle are scored.
//
// Correctness precondition: under Eq. 2 a cluster disjoint from the
// query can still have a positive overlap rate (it may overlap in some
// dimensions but not all), so intersection pruning is exact only when
// ε is large enough that support *requires* overlap in every
// dimension: ε > (d-1)/d. RankNodes on an Index checks this and falls
// back to the exhaustive scan otherwise, so results always equal the
// unindexed path.
type Index struct {
	summaries []cluster.NodeSummary
	tree      *geometry.RTree
	// flat maps tree entry id -> (node index, cluster index).
	flat []entryRef
	dims int
}

type entryRef struct {
	node, cluster int
}

// BuildIndex packs the advertisements. All summaries must be valid and
// share a dimensionality.
func BuildIndex(summaries []cluster.NodeSummary) (*Index, error) {
	if len(summaries) == 0 {
		return nil, ErrNoCandidates
	}
	var entries []geometry.Entry
	var flat []entryRef
	dims := -1
	for ni, s := range summaries {
		if err := s.Validate(); err != nil {
			return nil, fmt.Errorf("selection: index: node %s: %w", s.NodeID, err)
		}
		for ci, c := range s.Clusters {
			if dims == -1 {
				dims = c.Bounds.Dims()
			} else if c.Bounds.Dims() != dims {
				return nil, fmt.Errorf("selection: index: node %s cluster %d dims %d != %d",
					s.NodeID, ci, c.Bounds.Dims(), dims)
			}
			entries = append(entries, geometry.Entry{Rect: c.Bounds, ID: len(flat)})
			flat = append(flat, entryRef{node: ni, cluster: ci})
		}
	}
	tree, err := geometry.BuildRTree(entries, 0)
	if err != nil {
		return nil, fmt.Errorf("selection: index: %w", err)
	}
	return &Index{summaries: summaries, tree: tree, flat: flat, dims: dims}, nil
}

// Dims returns the indexed dimensionality.
func (ix *Index) Dims() int { return ix.dims }

// Clusters returns the number of indexed cluster rectangles.
func (ix *Index) Clusters() int { return len(ix.flat) }

// PruningExact reports whether intersection pruning is exact for the
// given ε at this dimensionality (ε > (d-1)/d).
func (ix *Index) PruningExact(epsilon float64) bool {
	return epsilon > float64(ix.dims-1)/float64(ix.dims)
}

// IndexedQueryDriven is the query-driven selector backed by a
// pre-built Index — the drop-in for large federations. Behaviour is
// identical to QueryDriven (the index falls back to the exhaustive
// scan whenever ε pruning would be inexact).
type IndexedQueryDriven struct {
	Index   *Index
	Epsilon float64
	TopL    int
	Psi     float64
}

// Name implements Selector.
func (s IndexedQueryDriven) Name() string { return "query-driven-indexed" }

// Select implements Selector. The summaries argument is ignored — the
// index already holds the advertisements it was built from.
func (s IndexedQueryDriven) Select(q query.Query, _ []cluster.NodeSummary, _ *Context) ([]Participant, error) {
	if s.Index == nil {
		return nil, fmt.Errorf("selection: indexed selector needs an Index")
	}
	if (s.TopL > 0) == (s.Psi > 0) {
		return nil, fmt.Errorf("selection: indexed query-driven needs exactly one of TopL (%d) or Psi (%v)", s.TopL, s.Psi)
	}
	ranks, err := s.Index.RankNodes(q, s.Epsilon)
	if err != nil {
		return nil, err
	}
	var chosen []NodeRank
	if s.TopL > 0 {
		chosen = TopL(ranks, s.TopL)
	} else {
		chosen = AboveThreshold(ranks, s.Psi)
	}
	if len(chosen) == 0 {
		return nil, ErrNoCandidates
	}
	out := make([]Participant, len(chosen))
	for i, r := range chosen {
		out[i] = Participant{
			NodeID:   r.NodeID,
			Rank:     r.Rank,
			Clusters: append([]int(nil), r.Supporting...),
		}
	}
	return out, nil
}

// RankNodes computes the paper's node ranking using the index when the
// ε precondition holds, and the exhaustive scan otherwise. In the
// indexed path, Overlaps of pruned (non-intersecting) clusters are
// reported as 0 — their exact Eq. 2 value cannot reach ε, so
// Supporting, Potential and Rank are identical to the unindexed path.
func (ix *Index) RankNodes(q query.Query, epsilon float64) ([]NodeRank, error) {
	if epsilon <= 0 {
		return nil, fmt.Errorf("selection: epsilon %v must be > 0", epsilon)
	}
	if q.Dims() != ix.dims {
		return nil, fmt.Errorf("selection: query has %d dims, index has %d", q.Dims(), ix.dims)
	}
	if !ix.PruningExact(epsilon) {
		return RankNodes(q, ix.summaries, epsilon)
	}
	ranks := make([]NodeRank, len(ix.summaries))
	for i, s := range ix.summaries {
		sizes := make([]int, len(s.Clusters))
		for ci, c := range s.Clusters {
			sizes[ci] = c.Size
		}
		ranks[i] = NodeRank{
			NodeID:       s.NodeID,
			TotalSamples: s.TotalSamples,
			Overlaps:     make([]float64, len(s.Clusters)),
			Sizes:        sizes,
		}
	}
	err := ix.tree.Search(q.Bounds, func(e geometry.Entry) bool {
		ref := ix.flat[e.ID]
		s := ix.summaries[ref.node]
		h := geometry.OverlapRate(q.Bounds, s.Clusters[ref.cluster].Bounds)
		r := &ranks[ref.node]
		r.Overlaps[ref.cluster] = h
		if h >= epsilon {
			r.Supporting = append(r.Supporting, ref.cluster)
			r.Potential += h
			r.SupportingSamples += s.Clusters[ref.cluster].Size
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	for i := range ranks {
		// The R-tree visits clusters in packing order; normalize to
		// the ascending order the exhaustive scan produces.
		sort.Ints(ranks[i].Supporting)
		k := len(ix.summaries[i].Clusters)
		ranks[i].Rank = ranks[i].Potential * float64(len(ranks[i].Supporting)) / float64(k)
	}
	return ranks, nil
}
