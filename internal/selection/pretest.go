package selection

import (
	"fmt"
	"math"
)

// The §II pre-test: before committing to a selection mechanism, the
// leader trains a warm-up model on its own local data and evaluates it
// against every participant. If the per-node losses are all similar,
// the participants hold similar data (the Table I regime) and cheap
// random selection suffices; if the losses diverge wildly, the
// environment is heterogeneous (the Table II regime) and the
// query-driven mechanism is required.

// Regime classifies the federation's data landscape.
type Regime int

const (
	// RegimeHomogeneous: node losses are mutually similar, any node
	// subset trains an equivalent model.
	RegimeHomogeneous Regime = iota
	// RegimeHeterogeneous: node losses diverge, node selection
	// matters.
	RegimeHeterogeneous
)

// String implements fmt.Stringer.
func (r Regime) String() string {
	if r == RegimeHomogeneous {
		return "homogeneous"
	}
	return "heterogeneous"
}

// PreTestResult reports the heterogeneity pre-test outcome.
type PreTestResult struct {
	Regime Regime
	// Losses maps node id to the leader-model loss on that node.
	Losses map[string]float64
	// Dispersion is the robust relative spread of the losses
	// (max/min ratio in log terms); the classifier threshold is
	// applied to it.
	Dispersion float64
}

// PreTest evaluates the leader's warm-up model on every node (via
// evaluate) and classifies the regime. ratioThreshold is the max/min
// loss ratio above which the environment counts as heterogeneous; the
// paper's Table II shows a ~18x ratio for its heterogeneous setting
// while Table I shows ~1x, so a default of 3 separates them cleanly
// (pass 0 to use the default).
func PreTest(nodeIDs []string, evaluate func(nodeID string) (float64, error), ratioThreshold float64) (*PreTestResult, error) {
	if len(nodeIDs) == 0 {
		return nil, fmt.Errorf("selection: pre-test needs at least one node")
	}
	if evaluate == nil {
		return nil, fmt.Errorf("selection: pre-test needs an evaluator")
	}
	if ratioThreshold <= 0 {
		ratioThreshold = 3
	}
	losses := make(map[string]float64, len(nodeIDs))
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, id := range nodeIDs {
		loss, err := evaluate(id)
		if err != nil {
			return nil, fmt.Errorf("selection: pre-test on %s: %w", id, err)
		}
		if math.IsNaN(loss) || loss < 0 {
			return nil, fmt.Errorf("selection: pre-test on %s returned invalid loss %v", id, loss)
		}
		losses[id] = loss
		lo = math.Min(lo, loss)
		hi = math.Max(hi, loss)
	}
	const floor = 1e-12
	dispersion := (hi + floor) / (lo + floor)
	res := &PreTestResult{Losses: losses, Dispersion: dispersion}
	if dispersion > ratioThreshold {
		res.Regime = RegimeHeterogeneous
	} else {
		res.Regime = RegimeHomogeneous
	}
	return res, nil
}
