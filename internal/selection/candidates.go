package selection

import (
	"fmt"

	"qens/internal/cluster"
	"qens/internal/query"
)

// CandidateSet is the precomputed, query-specific ranking that
// candidate-aware selectors draw from. The planner (internal/plan)
// builds one per query from a registry snapshot — every node's Eq. 2
// overlaps, supporting set, potential and Eq. 4 rank at the set's ε —
// so selectors can decide without ever re-walking cluster rectangles.
// Ranks are in roster (advertisement) order, unsorted; selectors that
// need rank order sort a copy, exactly like the legacy Select path.
type CandidateSet struct {
	// Query is the workload rectangle the set was ranked against.
	Query query.Query
	// Epsilon is the ε support threshold the Ranks were computed at.
	Epsilon float64
	// Ranks holds one entry per advertised node, roster order.
	Ranks []NodeRank
}

// NewCandidateSet ranks the advertisements for one query. It is the
// reference constructor; the planner builds equivalent sets from its
// flat-slice snapshot without allocation.
func NewCandidateSet(q query.Query, summaries []cluster.NodeSummary, epsilon float64) (*CandidateSet, error) {
	ranks, err := RankNodes(q, summaries, epsilon)
	if err != nil {
		return nil, err
	}
	return &CandidateSet{Query: q, Epsilon: epsilon, Ranks: ranks}, nil
}

// AtEpsilon returns the ranking re-thresholded at a different ε. When
// epsilon matches the set's own, the stored ranks are returned as-is
// (callers must treat them as read-only); otherwise the supporting
// sets, potentials and ranks are recomputed from the stored per-cluster
// overlaps — bit-identical to a fresh RankNodes at that ε, because the
// accumulation order (ascending cluster index) and the final Eq. 4
// expression are the same.
func (cs *CandidateSet) AtEpsilon(epsilon float64) ([]NodeRank, error) {
	if epsilon <= 0 {
		return nil, fmt.Errorf("selection: epsilon %v must be > 0", epsilon)
	}
	if epsilon == cs.Epsilon {
		return cs.Ranks, nil
	}
	out := make([]NodeRank, len(cs.Ranks))
	for i, r := range cs.Ranks {
		nr := NodeRank{
			NodeID:       r.NodeID,
			Overlaps:     r.Overlaps,
			Sizes:        r.Sizes,
			TotalSamples: r.TotalSamples,
		}
		for k, h := range r.Overlaps {
			if h >= epsilon {
				nr.Supporting = append(nr.Supporting, k)
				nr.Potential += h
				if k < len(r.Sizes) {
					nr.SupportingSamples += r.Sizes[k]
				}
			}
		}
		nr.Rank = nr.Potential * float64(len(nr.Supporting)) / float64(len(r.Overlaps))
		out[i] = nr
	}
	return out, nil
}

// CandidateSelector is a Selector that can decide from a precomputed
// CandidateSet instead of raw summaries. All built-in selectors
// implement it; the planner prefers this path so overlap rates are
// computed exactly once per (query, snapshot).
type CandidateSelector interface {
	Selector
	// SelectFrom returns the chosen participants in priority order,
	// equivalent to Select over the summaries the set was built from.
	SelectFrom(cs *CandidateSet, ctx *Context) ([]Participant, error)
}

// EpsilonCarrier is implemented by selectors with an intrinsic support
// threshold. The planner builds the CandidateSet at that ε so the
// selector's SelectFrom hits the precomputed ranking without a
// re-threshold pass.
type EpsilonCarrier interface {
	// SupportEpsilon returns the ε the selector ranks at.
	SupportEpsilon() float64
}

// Stateful marks selectors whose Select/SelectFrom mutates internal
// state (rotation cursors, contribution histories, cached pre-tests).
// Planning ahead — dry-running selection for cache keys or EXPLAIN —
// must be skipped for these, because every invocation advances state.
type Stateful interface {
	// StatefulSelection is a marker; it has no behaviour.
	StatefulSelection()
}

// participantsFromRanks materializes chosen ranks in order, copying the
// supporting sets so callers own them.
func participantsFromRanks(chosen []NodeRank) []Participant {
	out := make([]Participant, len(chosen))
	for i, r := range chosen {
		out[i] = Participant{
			NodeID:   r.NodeID,
			Rank:     r.Rank,
			Clusters: append([]int(nil), r.Supporting...),
		}
	}
	return out
}
