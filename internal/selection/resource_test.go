package selection

import (
	"errors"
	"strings"
	"testing"
)

func TestCapabilitiesValidate(t *testing.T) {
	good := Capabilities{Compute: 1, Bandwidth: 1, Battery: 0.5}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Capabilities{
		{Compute: 0, Bandwidth: 1, Battery: 1},
		{Compute: 1, Bandwidth: -1, Battery: 1},
		{Compute: 1, Bandwidth: 1, Battery: 2},
		{Compute: 1, Bandwidth: 1, Battery: -0.1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad capabilities %d accepted", i)
		}
	}
}

func TestDataCentricPrefersOverlapAndCompute(t *testing.T) {
	// n0 overlaps the query; n2 is disjoint but has huge compute.
	caps := map[string]Capabilities{
		"n0": {Compute: 1, Bandwidth: 1, Battery: 1},
		"n2": {Compute: 10, Bandwidth: 10, Battery: 1},
	}
	q := mkQuery(t, 2, 12)
	// Data-dominated weighting: overlap wins.
	sel := DataCentric{L: 1, Capabilities: caps, DataWeight: 1, ComputeWeight: 0.01, CommWeight: 0.01}
	parts, err := sel.Select(q, fourNodes(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if parts[0].NodeID == "n2" {
		t.Fatal("data-dominated weighting picked the disjoint node")
	}
	// Compute-dominated weighting: the fat node wins despite no data.
	sel = DataCentric{L: 1, Capabilities: caps, DataWeight: 0.01, ComputeWeight: 1, CommWeight: 1}
	parts, err = sel.Select(q, fourNodes(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if parts[0].NodeID != "n2" {
		t.Fatalf("compute-dominated weighting picked %s, want n2", parts[0].NodeID)
	}
}

func TestDataCentricDefaults(t *testing.T) {
	// No capabilities registry: neutral resources, selection still works.
	parts, err := DataCentric{L: 2}.Select(mkQuery(t, 2, 12), fourNodes(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 2 {
		t.Fatalf("%d participants", len(parts))
	}
}

func TestDataCentricErrors(t *testing.T) {
	if _, err := (DataCentric{}).Select(mkQuery(t, 0, 1), fourNodes(), nil); err == nil {
		t.Fatal("accepted L=0")
	}
	if _, err := (DataCentric{L: 1}).Select(mkQuery(t, 0, 1), nil, nil); !errors.Is(err, ErrNoCandidates) {
		t.Fatal("empty summaries should be ErrNoCandidates")
	}
	bad := DataCentric{L: 1, Capabilities: map[string]Capabilities{"n0": {Compute: -1, Bandwidth: 1}}}
	if _, err := bad.Select(mkQuery(t, 0, 1), fourNodes(), nil); err == nil {
		t.Fatal("accepted invalid capabilities")
	}
}

func TestRewardSelector(t *testing.T) {
	caps := map[string]Capabilities{
		"n0": {Compute: 1, Bandwidth: 1, Battery: 0.1},
		"n1": {Compute: 5, Bandwidth: 5, Battery: 1},
		"n2": {Compute: 1, Bandwidth: 1, Battery: 0.9},
		"n3": {Compute: 2, Bandwidth: 1, Battery: 0.5},
	}
	parts, err := Reward{L: 2, Capabilities: caps}.Select(mkQuery(t, 0, 1), fourNodes(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if parts[0].NodeID != "n1" {
		t.Fatalf("highest-reward node not first: %s", parts[0].NodeID)
	}
	// Query-obliviousness: a far-away query changes nothing.
	parts2, err := Reward{L: 2, Capabilities: caps}.Select(mkQuery(t, 5000, 6000), fourNodes(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if parts2[0].NodeID != parts[0].NodeID || parts2[1].NodeID != parts[1].NodeID {
		t.Fatal("reward selection depended on the query")
	}
}

func TestRewardErrors(t *testing.T) {
	if _, err := (Reward{}).Select(mkQuery(t, 0, 1), fourNodes(), nil); err == nil {
		t.Fatal("accepted L=0")
	}
	if _, err := (Reward{L: 1}).Select(mkQuery(t, 0, 1), nil, nil); !errors.Is(err, ErrNoCandidates) {
		t.Fatal("empty summaries should be ErrNoCandidates")
	}
}

func TestExplain(t *testing.T) {
	out, err := Explain(mkQuery(t, 2, 12), fourNodes(), 0.3)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"q:", "n0", "n2", "cluster 0", "rank="} {
		if !strings.Contains(out, want) {
			t.Fatalf("explain output missing %q:\n%s", want, out)
		}
	}
	// Supporting clusters are starred.
	if !strings.Contains(out, "* cluster") {
		t.Fatal("no supporting cluster starred")
	}
	if _, err := Explain(mkQuery(t, 0, 1), fourNodes(), 0); err == nil {
		t.Fatal("accepted ε=0")
	}
}

func TestResourceSelectorNames(t *testing.T) {
	if (DataCentric{}).Name() != "data-centric" || (Reward{}).Name() != "reward" {
		t.Fatal("selector names wrong")
	}
}
