package selection

import (
	"fmt"
	"math"
	"sync"

	"qens/internal/rng"
)

// ConfigBandit learns which selector configuration — the (ℓ, ψ,
// selector) tuple — pays off for the live workload, instead of pinning
// one static config per deployment. It is a stochastic multi-armed
// bandit: each arm is a concrete selector configuration; after a query
// executes, the caller folds the realized reward (an accuracy-vs-cost
// score derived from the result's node rounds) back into the arm that
// chose it. Arm choice is epsilon-greedy over UCB1 values, so the
// bandit keeps exploring arms whose confidence intervals still overlap
// the leader while exploiting the best known config. This follows the
// edge-centric query-allocation line of work in PAPERS.md (predict
// per-query utility from history rather than using one fixed policy).
//
// The bandit never mutates selection state itself — Pick returns a
// stateless selector value, so the plan/execute pipeline (coalescing,
// reuse keys, zero-alloc fast path) is untouched.

// ConfigArm is one selector configuration the bandit can play.
// Exactly one of TopL/Psi must be set for query-driven arms; AllNodes
// arms ignore both.
type ConfigArm struct {
	// Selector names the mechanism: "query-driven" (default) or
	// "all-nodes" (the train-everyone reference arm).
	Selector string `json:"selector"`
	// Epsilon is the support threshold for query-driven arms.
	Epsilon float64 `json:"epsilon,omitempty"`
	// TopL caps the participant count (policy ℓ).
	TopL int `json:"top_l,omitempty"`
	// Psi is the mean-rank threshold (policy ψ).
	Psi float64 `json:"psi,omitempty"`
}

// Build returns the concrete stateless selector for this arm.
func (a ConfigArm) Build() (Selector, error) {
	switch a.Selector {
	case "", "query-driven":
		if (a.TopL > 0) == (a.Psi > 0) {
			return nil, fmt.Errorf("selection: bandit arm needs exactly one of top-l/psi, got l=%d psi=%v", a.TopL, a.Psi)
		}
		return QueryDriven{Epsilon: a.Epsilon, TopL: a.TopL, Psi: a.Psi}, nil
	case "all-nodes":
		return AllNodes{}, nil
	default:
		return nil, fmt.Errorf("selection: bandit arm selector %q not bandit-playable", a.Selector)
	}
}

// String renders the arm for stats and logs, e.g. "query-driven/l=2".
func (a ConfigArm) String() string {
	switch a.Selector {
	case "", "query-driven":
		if a.TopL > 0 {
			return fmt.Sprintf("query-driven/l=%d", a.TopL)
		}
		return fmt.Sprintf("query-driven/psi=%g", a.Psi)
	default:
		return a.Selector
	}
}

// BanditConfig tunes the explore/exploit balance.
type BanditConfig struct {
	// Explore is the epsilon-greedy exploration rate: the fraction of
	// picks routed to a uniformly random arm. Default 0.1.
	Explore float64
	// UCBWeight scales the UCB1 confidence bonus added to each arm's
	// mean reward during greedy picks. Default 0.5; 0 keeps it.
	UCBWeight float64
	// Seed drives the bandit's private RNG stream.
	Seed uint64
}

// ConfigBandit is safe for concurrent use.
type ConfigBandit struct {
	mu      sync.Mutex
	arms    []ConfigArm
	built   []Selector
	counts  []int64
	means   []float64
	plays   int64
	explore float64
	ucbW    float64
	src     *rng.Source
}

// DefaultConfigArms is the stock arm set: query-driven with a range of
// participant budgets ℓ and one rank-threshold ψ policy, plus the
// all-nodes reference arm, all at the given support epsilon.
func DefaultConfigArms(epsilon float64) []ConfigArm {
	return []ConfigArm{
		{Selector: "query-driven", Epsilon: epsilon, TopL: 1},
		{Selector: "query-driven", Epsilon: epsilon, TopL: 2},
		{Selector: "query-driven", Epsilon: epsilon, TopL: 3},
		{Selector: "query-driven", Epsilon: epsilon, Psi: 1},
		{Selector: "all-nodes"},
	}
}

// NewConfigBandit validates and builds every arm up front so Pick can
// never fail at serving time.
func NewConfigBandit(arms []ConfigArm, cfg BanditConfig) (*ConfigBandit, error) {
	if len(arms) == 0 {
		return nil, fmt.Errorf("selection: bandit needs at least one arm")
	}
	if cfg.Explore < 0 || cfg.Explore > 1 {
		return nil, fmt.Errorf("selection: bandit explore rate %v outside [0,1]", cfg.Explore)
	}
	if cfg.Explore == 0 {
		cfg.Explore = 0.1
	}
	if cfg.UCBWeight == 0 {
		cfg.UCBWeight = 0.5
	}
	if cfg.UCBWeight < 0 {
		return nil, fmt.Errorf("selection: bandit ucb weight %v < 0", cfg.UCBWeight)
	}
	built := make([]Selector, len(arms))
	for i, a := range arms {
		sel, err := a.Build()
		if err != nil {
			return nil, fmt.Errorf("arm %d: %w", i, err)
		}
		built[i] = sel
	}
	return &ConfigBandit{
		arms:    append([]ConfigArm(nil), arms...),
		built:   built,
		counts:  make([]int64, len(arms)),
		means:   make([]float64, len(arms)),
		explore: cfg.Explore,
		ucbW:    cfg.UCBWeight,
		src:     rng.New(cfg.Seed),
	}, nil
}

// Pick chooses the arm to play next: unplayed arms first (round-robin
// initialization), then epsilon-greedy over UCB1 scores. It returns
// the arm index (for Observe) and the ready-built selector.
func (b *ConfigBandit) Pick() (int, Selector) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for i, n := range b.counts {
		if n == 0 {
			return i, b.built[i]
		}
	}
	if b.src.Float64() < b.explore {
		i := b.src.Intn(len(b.arms))
		return i, b.built[i]
	}
	return b.bestLocked(true)
}

// Best returns the current greedy choice without advancing the RNG or
// any other bandit state — the side-effect-free view EXPLAIN uses.
func (b *ConfigBandit) Best() (int, Selector) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.bestLocked(false)
}

func (b *ConfigBandit) bestLocked(ucb bool) (int, Selector) {
	best, bestScore := 0, math.Inf(-1)
	logN := math.Log(float64(b.plays + 1))
	for i := range b.arms {
		score := b.means[i]
		if ucb && b.counts[i] > 0 {
			score += b.ucbW * math.Sqrt(logN/float64(b.counts[i]))
		}
		if score > bestScore {
			best, bestScore = i, score
		}
	}
	return best, b.built[best]
}

// Observe folds one realized reward into the played arm's running
// mean. Rewards should be roughly in [0,1]; the scale only matters
// relative to the UCB weight.
func (b *ConfigBandit) Observe(arm int, reward float64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if arm < 0 || arm >= len(b.arms) {
		return
	}
	b.counts[arm]++
	b.plays++
	b.means[arm] += (reward - b.means[arm]) / float64(b.counts[arm])
}

// ArmStats is one row of the bandit scoreboard.
type ArmStats struct {
	Arm        ConfigArm `json:"arm"`
	Label      string    `json:"label"`
	Plays      int64     `json:"plays"`
	MeanReward float64   `json:"mean_reward"`
}

// Stats snapshots every arm's play count and mean reward.
func (b *ConfigBandit) Stats() []ArmStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]ArmStats, len(b.arms))
	for i, a := range b.arms {
		out[i] = ArmStats{Arm: a, Label: a.String(), Plays: b.counts[i], MeanReward: b.means[i]}
	}
	return out
}
