package selection

import (
	"fmt"

	"qens/internal/cluster"
	"qens/internal/query"
)

// Adaptive implements the complete §II decision procedure as a single
// selector: on first use it runs the heterogeneity pre-test (the
// leader's warm-up model evaluated on every node, via Context.Evaluate)
// and commits to a mechanism — cheap Random selection when the
// participants are homogeneous ("selecting participants at random may
// be faster and produce the same results"), the full query-driven
// mechanism otherwise. The pre-test runs once per federation, not per
// query, so the steady-state cost is that of the chosen mechanism.
type Adaptive struct {
	// Epsilon and TopL configure the query-driven branch; TopL also
	// sizes the random branch.
	Epsilon float64
	TopL    int
	// RatioThreshold is the pre-test max/min loss ratio separating
	// the regimes (0 uses the PreTest default).
	RatioThreshold float64

	regime *Regime // cached pre-test outcome
}

// Name implements Selector.
func (s *Adaptive) Name() string { return "adaptive" }

// Regime returns the cached pre-test classification, or ok=false if no
// selection has run yet.
func (s *Adaptive) Regime() (Regime, bool) {
	if s.regime == nil {
		return 0, false
	}
	return *s.regime, true
}

// Select implements Selector.
func (s *Adaptive) Select(q query.Query, summaries []cluster.NodeSummary, ctx *Context) ([]Participant, error) {
	if s.TopL < 1 {
		return nil, fmt.Errorf("selection: adaptive selector needs TopL >= 1, got %d", s.TopL)
	}
	if s.Epsilon <= 0 {
		return nil, fmt.Errorf("selection: adaptive selector needs Epsilon > 0, got %v", s.Epsilon)
	}
	if s.regime == nil {
		if ctx == nil || ctx.Evaluate == nil {
			return nil, fmt.Errorf("selection: adaptive selector needs a Context evaluator for the pre-test")
		}
		ids := make([]string, len(summaries))
		for i, sum := range summaries {
			ids[i] = sum.NodeID
		}
		res, err := PreTest(ids, ctx.Evaluate, s.RatioThreshold)
		if err != nil {
			return nil, fmt.Errorf("selection: adaptive pre-test: %w", err)
		}
		s.regime = &res.Regime
	}
	if *s.regime == RegimeHomogeneous {
		return Random{L: s.TopL}.Select(q, summaries, ctx)
	}
	return QueryDriven{Epsilon: s.Epsilon, TopL: s.TopL}.Select(q, summaries, ctx)
}
