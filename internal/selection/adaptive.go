package selection

import (
	"fmt"
	"sync"

	"qens/internal/cluster"
	"qens/internal/query"
)

// Adaptive implements the complete §II decision procedure as a single
// selector: on first use it runs the heterogeneity pre-test (the
// leader's warm-up model evaluated on every node, via Context.Evaluate)
// and commits to a mechanism — cheap Random selection when the
// participants are homogeneous ("selecting participants at random may
// be faster and produce the same results"), the full query-driven
// mechanism otherwise. The pre-test runs once per federation, not per
// query, so the steady-state cost is that of the chosen mechanism.
// The cached outcome is mutex-guarded, so one instance can serve
// concurrent queries.
type Adaptive struct {
	// Epsilon and TopL configure the query-driven branch; TopL also
	// sizes the random branch.
	Epsilon float64
	TopL    int
	// RatioThreshold is the pre-test max/min loss ratio separating
	// the regimes (0 uses the PreTest default).
	RatioThreshold float64

	mu     sync.Mutex
	regime *Regime // cached pre-test outcome
}

// Name implements Selector.
func (s *Adaptive) Name() string { return "adaptive" }

// StatefulSelection implements Stateful: the first call runs and
// caches the pre-test, and the homogeneous branch consumes Context
// RNG state.
func (s *Adaptive) StatefulSelection() {}

// Regime returns the cached pre-test classification, or ok=false if no
// selection has run yet.
func (s *Adaptive) Regime() (Regime, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.regime == nil {
		return 0, false
	}
	return *s.regime, true
}

// validate checks the static configuration.
func (s *Adaptive) validate() error {
	if s.TopL < 1 {
		return fmt.Errorf("selection: adaptive selector needs TopL >= 1, got %d", s.TopL)
	}
	if s.Epsilon <= 0 {
		return fmt.Errorf("selection: adaptive selector needs Epsilon > 0, got %v", s.Epsilon)
	}
	return nil
}

// regimeFor returns the committed regime, running the pre-test over
// the given node ids on first use.
func (s *Adaptive) regimeFor(n int, id func(int) string, ctx *Context) (Regime, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.regime != nil {
		return *s.regime, nil
	}
	if ctx == nil || ctx.Evaluate == nil {
		return 0, fmt.Errorf("selection: adaptive selector needs a Context evaluator for the pre-test")
	}
	ids := make([]string, n)
	for i := range ids {
		ids[i] = id(i)
	}
	res, err := PreTest(ids, ctx.Evaluate, s.RatioThreshold)
	if err != nil {
		return 0, fmt.Errorf("selection: adaptive pre-test: %w", err)
	}
	s.regime = &res.Regime
	return *s.regime, nil
}

// Select implements Selector.
func (s *Adaptive) Select(q query.Query, summaries []cluster.NodeSummary, ctx *Context) ([]Participant, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	regime, err := s.regimeFor(len(summaries), func(i int) string { return summaries[i].NodeID }, ctx)
	if err != nil {
		return nil, err
	}
	if regime == RegimeHomogeneous {
		return Random{L: s.TopL}.Select(q, summaries, ctx)
	}
	return QueryDriven{Epsilon: s.Epsilon, TopL: s.TopL}.Select(q, summaries, ctx)
}

// SelectFrom implements CandidateSelector.
func (s *Adaptive) SelectFrom(cs *CandidateSet, ctx *Context) ([]Participant, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	regime, err := s.regimeFor(len(cs.Ranks), func(i int) string { return cs.Ranks[i].NodeID }, ctx)
	if err != nil {
		return nil, err
	}
	if regime == RegimeHomogeneous {
		return Random{L: s.TopL}.SelectFrom(cs, ctx)
	}
	return QueryDriven{Epsilon: s.Epsilon, TopL: s.TopL}.SelectFrom(cs, ctx)
}

// SupportEpsilon implements EpsilonCarrier for the query-driven
// branch; the random branch ignores the candidate ranking entirely, so
// building the set at this ε is correct for both regimes.
func (s *Adaptive) SupportEpsilon() float64 { return s.Epsilon }
