package selection

import (
	"fmt"
	"math"
	"testing"

	"qens/internal/cluster"
	"qens/internal/geometry"
	"qens/internal/query"
	"qens/internal/rng"
)

// randomSummaries builds n nodes with k random 2-D clusters each.
func randomSummaries(n, k int, seed uint64) []cluster.NodeSummary {
	src := rng.New(seed)
	out := make([]cluster.NodeSummary, n)
	for i := range out {
		s := cluster.NodeSummary{NodeID: fmt.Sprintf("node-%03d", i)}
		for c := 0; c < k; c++ {
			a, b := src.Uniform(0, 90), src.Uniform(0, 90)
			s.Clusters = append(s.Clusters, cluster.Summary{
				Bounds: geometry.MustRect(
					[]float64{a, b},
					[]float64{a + src.Uniform(1, 10), b + src.Uniform(1, 10)},
				),
				Size: 50,
			})
		}
		s.TotalSamples = 50 * k
		out[i] = s
	}
	return out
}

func TestBuildIndexValidation(t *testing.T) {
	if _, err := BuildIndex(nil); err == nil {
		t.Fatal("accepted empty summaries")
	}
	if _, err := BuildIndex([]cluster.NodeSummary{{}}); err == nil {
		t.Fatal("accepted invalid summary")
	}
	mixed := randomSummaries(1, 2, 1)
	mixed = append(mixed, cluster.NodeSummary{
		NodeID: "odd",
		Clusters: []cluster.Summary{{
			Bounds: geometry.MustRect([]float64{0}, []float64{1}),
			Size:   1,
		}},
		TotalSamples: 1,
	})
	if _, err := BuildIndex(mixed); err == nil {
		t.Fatal("accepted mixed dims")
	}
}

func TestIndexMeta(t *testing.T) {
	sums := randomSummaries(10, 5, 2)
	ix, err := BuildIndex(sums)
	if err != nil {
		t.Fatal(err)
	}
	if ix.Dims() != 2 || ix.Clusters() != 50 {
		t.Fatalf("meta %d/%d", ix.Dims(), ix.Clusters())
	}
	if !ix.PruningExact(0.6) {
		t.Fatal("ε=0.6 should be exact at d=2")
	}
	if ix.PruningExact(0.5) {
		t.Fatal("ε=0.5 must not claim exactness at d=2")
	}
}

// The core equivalence: for ε above the pruning bound, indexed ranking
// equals the exhaustive scan in every field that drives selection.
func TestIndexedRankingMatchesLinear(t *testing.T) {
	sums := randomSummaries(50, 5, 3)
	ix, err := BuildIndex(sums)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(4)
	for trial := 0; trial < 30; trial++ {
		a, b := src.Uniform(0, 70), src.Uniform(0, 70)
		q, err := query.New("q", geometry.MustRect(
			[]float64{a, b}, []float64{a + 25, b + 25}))
		if err != nil {
			t.Fatal(err)
		}
		want, err := RankNodes(q, sums, 0.6)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ix.RankNodes(q, 0.6)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i].NodeID != want[i].NodeID {
				t.Fatalf("trial %d: node order differs", trial)
			}
			if math.Abs(got[i].Rank-want[i].Rank) > 1e-12 ||
				math.Abs(got[i].Potential-want[i].Potential) > 1e-12 {
				t.Fatalf("trial %d node %s: rank %v vs %v", trial, want[i].NodeID, got[i].Rank, want[i].Rank)
			}
			if len(got[i].Supporting) != len(want[i].Supporting) {
				t.Fatalf("trial %d node %s: supporting %v vs %v", trial, want[i].NodeID, got[i].Supporting, want[i].Supporting)
			}
			for j := range want[i].Supporting {
				if got[i].Supporting[j] != want[i].Supporting[j] {
					t.Fatalf("trial %d node %s: supporting %v vs %v", trial, want[i].NodeID, got[i].Supporting, want[i].Supporting)
				}
			}
			if got[i].SupportingSamples != want[i].SupportingSamples {
				t.Fatalf("trial %d node %s: samples %d vs %d", trial, want[i].NodeID, got[i].SupportingSamples, want[i].SupportingSamples)
			}
		}
	}
}

// Below the pruning bound the index must silently fall back to the
// exhaustive scan — including exact Overlaps for disjoint clusters.
func TestIndexedRankingFallsBack(t *testing.T) {
	sums := randomSummaries(20, 4, 5)
	ix, err := BuildIndex(sums)
	if err != nil {
		t.Fatal(err)
	}
	q, _ := query.New("q", geometry.MustRect([]float64{10, 10}, []float64{40, 40}))
	want, err := RankNodes(q, sums, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ix.RankNodes(q, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		for c := range want[i].Overlaps {
			if got[i].Overlaps[c] != want[i].Overlaps[c] {
				t.Fatalf("fallback overlaps differ at node %d cluster %d", i, c)
			}
		}
	}
}

func TestIndexedRankingErrors(t *testing.T) {
	ix, _ := BuildIndex(randomSummaries(5, 3, 6))
	q, _ := query.New("q", geometry.MustRect([]float64{0, 0}, []float64{1, 1}))
	if _, err := ix.RankNodes(q, 0); err == nil {
		t.Fatal("accepted ε=0")
	}
	q1, _ := query.New("q", geometry.MustRect([]float64{0}, []float64{1}))
	if _, err := ix.RankNodes(q1, 0.6); err == nil {
		t.Fatal("accepted dim mismatch")
	}
}

func TestIndexedQueryDrivenMatchesPlain(t *testing.T) {
	sums := randomSummaries(40, 5, 10)
	ix, err := BuildIndex(sums)
	if err != nil {
		t.Fatal(err)
	}
	q, _ := query.New("q", geometry.MustRect([]float64{20, 20}, []float64{55, 55}))
	plain, err := (QueryDriven{Epsilon: 0.6, TopL: 3}).Select(q, sums, nil)
	if err != nil {
		t.Fatal(err)
	}
	indexed, err := (IndexedQueryDriven{Index: ix, Epsilon: 0.6, TopL: 3}).Select(q, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(indexed) != len(plain) {
		t.Fatalf("%d vs %d participants", len(indexed), len(plain))
	}
	for i := range plain {
		if indexed[i].NodeID != plain[i].NodeID || indexed[i].Rank != plain[i].Rank {
			t.Fatalf("participant %d differs: %+v vs %+v", i, indexed[i], plain[i])
		}
		if len(indexed[i].Clusters) != len(plain[i].Clusters) {
			t.Fatalf("participant %d cluster sets differ", i)
		}
	}
}

func TestIndexedQueryDrivenErrors(t *testing.T) {
	ix, _ := BuildIndex(randomSummaries(5, 3, 11))
	q, _ := query.New("q", geometry.MustRect([]float64{0, 0}, []float64{1, 1}))
	if _, err := (IndexedQueryDriven{Epsilon: 0.6, TopL: 1}).Select(q, nil, nil); err == nil {
		t.Fatal("accepted nil index")
	}
	if _, err := (IndexedQueryDriven{Index: ix, Epsilon: 0.6}).Select(q, nil, nil); err == nil {
		t.Fatal("accepted neither TopL nor Psi")
	}
	if _, err := (IndexedQueryDriven{Index: ix, Epsilon: 0.6, TopL: 1, Psi: 0.5}).Select(q, nil, nil); err == nil {
		t.Fatal("accepted both TopL and Psi")
	}
	// Far query: no candidates.
	far, _ := query.New("far", geometry.MustRect([]float64{5e5, 5e5}, []float64{6e5, 6e5}))
	if _, err := (IndexedQueryDriven{Index: ix, Epsilon: 0.6, TopL: 1}).Select(far, nil, nil); err == nil {
		t.Fatal("expected no candidates for a far query")
	}
}
