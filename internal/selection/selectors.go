package selection

import (
	"fmt"
	"sort"
	"sync"

	"qens/internal/cluster"
	"qens/internal/query"
	"qens/internal/rng"
)

// Participant is one selected node plus the training directives
// attached to it.
type Participant struct {
	NodeID string
	// Rank is the selector's score (0 for selectors that do not
	// rank). Weighted Averaging (Eq. 7) uses these as λ weights.
	Rank float64
	// Clusters lists the cluster indices the node should train on;
	// nil means "train on the whole local dataset" (what the
	// baselines do — they have no notion of supporting clusters).
	Clusters []int
}

// Context supplies selector dependencies.
type Context struct {
	// RNG drives stochastic selectors (Random); required by them.
	RNG *rng.Source
	// Evaluate lets pre-test selectors (GameTheory) score the
	// leader's warm-up model on a node's local data; it returns the
	// node-local loss. Wired up by the federation package.
	Evaluate func(nodeID string) (loss float64, err error)
}

// Selector chooses participants for a query from the advertised node
// summaries.
type Selector interface {
	// Name identifies the mechanism in experiment output.
	Name() string
	// Select returns the chosen participants in priority order.
	Select(q query.Query, summaries []cluster.NodeSummary, ctx *Context) ([]Participant, error)
}

// QueryDriven is the paper's mechanism: rank nodes by Eq. 4 and keep
// either the top ℓ (TopL > 0) or everyone above ψ (Psi > 0); exactly
// one of the two must be set. Selected nodes train only on their
// supporting clusters (the §IV-A data selectivity).
type QueryDriven struct {
	// Epsilon is the ε support threshold of §III-C.
	Epsilon float64
	// TopL selects the ℓ best-ranked nodes when positive.
	TopL int
	// Psi selects every node with r_i >= ψ (Eq. 5) when positive.
	Psi float64
}

// Name implements Selector.
func (s QueryDriven) Name() string { return "query-driven" }

// SupportEpsilon implements EpsilonCarrier.
func (s QueryDriven) SupportEpsilon() float64 { return s.Epsilon }

// validate checks the TopL/Psi exclusivity contract.
func (s QueryDriven) validate() error {
	if (s.TopL > 0) == (s.Psi > 0) {
		return fmt.Errorf("selection: query-driven needs exactly one of TopL (%d) or Psi (%v)", s.TopL, s.Psi)
	}
	return nil
}

// choose applies the TopL/ψ policy to an already-computed ranking.
func (s QueryDriven) choose(ranks []NodeRank) ([]Participant, error) {
	var chosen []NodeRank
	if s.TopL > 0 {
		chosen = TopL(ranks, s.TopL)
	} else {
		chosen = AboveThreshold(ranks, s.Psi)
	}
	if len(chosen) == 0 {
		return nil, ErrNoCandidates
	}
	return participantsFromRanks(chosen), nil
}

// Select implements Selector.
func (s QueryDriven) Select(q query.Query, summaries []cluster.NodeSummary, _ *Context) ([]Participant, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	ranks, err := RankNodes(q, summaries, s.Epsilon)
	if err != nil {
		return nil, err
	}
	return s.choose(ranks)
}

// SelectFrom implements CandidateSelector over a precomputed set.
func (s QueryDriven) SelectFrom(cs *CandidateSet, _ *Context) ([]Participant, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	ranks, err := cs.AtEpsilon(s.Epsilon)
	if err != nil {
		return nil, err
	}
	return s.choose(ranks)
}

// Random is the baseline of [6]: ℓ nodes drawn uniformly, training on
// their whole datasets.
type Random struct {
	// L is the number of nodes to draw.
	L int
}

// Name implements Selector.
func (s Random) Name() string { return "random" }

// draw samples l of n node ids uniformly without replacement.
func (s Random) draw(n int, id func(int) string, ctx *Context) ([]Participant, error) {
	if s.L < 1 {
		return nil, fmt.Errorf("selection: random selector needs L >= 1, got %d", s.L)
	}
	if ctx == nil || ctx.RNG == nil {
		return nil, fmt.Errorf("selection: random selector needs a Context RNG")
	}
	if n == 0 {
		return nil, ErrNoCandidates
	}
	l := s.L
	if l > n {
		l = n
	}
	idx := ctx.RNG.SampleWithoutReplacement(n, l)
	out := make([]Participant, len(idx))
	for i, j := range idx {
		out[i] = Participant{NodeID: id(j), Rank: 1}
	}
	return out, nil
}

// Select implements Selector.
func (s Random) Select(_ query.Query, summaries []cluster.NodeSummary, ctx *Context) ([]Participant, error) {
	return s.draw(len(summaries), func(i int) string { return summaries[i].NodeID }, ctx)
}

// SelectFrom implements CandidateSelector. It consumes the Context RNG
// exactly like Select, so mirrored sources stay in lock-step.
func (s Random) SelectFrom(cs *CandidateSet, ctx *Context) ([]Participant, error) {
	return s.draw(len(cs.Ranks), func(i int) string { return cs.Ranks[i].NodeID }, ctx)
}

// AllNodes selects every advertised node, training on whole datasets —
// the "all-node selection mechanism" of Tables I/II.
type AllNodes struct{}

// Name implements Selector.
func (AllNodes) Name() string { return "all-nodes" }

func allNodes(n int, id func(int) string) ([]Participant, error) {
	if n == 0 {
		return nil, ErrNoCandidates
	}
	out := make([]Participant, n)
	for i := range out {
		out[i] = Participant{NodeID: id(i), Rank: 1}
	}
	return out, nil
}

// Select implements Selector.
func (AllNodes) Select(_ query.Query, summaries []cluster.NodeSummary, _ *Context) ([]Participant, error) {
	return allNodes(len(summaries), func(i int) string { return summaries[i].NodeID })
}

// SelectFrom implements CandidateSelector.
func (AllNodes) SelectFrom(cs *CandidateSet, _ *Context) ([]Participant, error) {
	return allNodes(len(cs.Ranks), func(i int) string { return cs.Ranks[i].NodeID })
}

// GameTheory is the pre-test baseline of [7]: the leader first trains
// a warm-up model on its own local data, every node evaluates that
// model against its local dataset, and the leader selects the nodes
// where the model performs *worst* — the rationale being that those
// nodes hold data the model has not seen, making it more general.
// This requires one full evaluation round before selection, which is
// why the paper finds GT the slowest mechanism.
type GameTheory struct {
	// L is the number of worst-loss nodes to select.
	L int
}

// Name implements Selector.
func (s GameTheory) Name() string { return "game-theory" }

func (s GameTheory) preTest(n int, id func(int) string, ctx *Context) ([]Participant, error) {
	if s.L < 1 {
		return nil, fmt.Errorf("selection: game-theory selector needs L >= 1, got %d", s.L)
	}
	if ctx == nil || ctx.Evaluate == nil {
		return nil, fmt.Errorf("selection: game-theory selector needs a Context evaluator")
	}
	if n == 0 {
		return nil, ErrNoCandidates
	}
	type scored struct {
		id   string
		loss float64
	}
	scores := make([]scored, 0, n)
	for i := 0; i < n; i++ {
		nodeID := id(i)
		loss, err := ctx.Evaluate(nodeID)
		if err != nil {
			return nil, fmt.Errorf("selection: game-theory pre-test on %s: %w", nodeID, err)
		}
		scores = append(scores, scored{id: nodeID, loss: loss})
	}
	sort.SliceStable(scores, func(i, j int) bool {
		if scores[i].loss != scores[j].loss {
			return scores[i].loss > scores[j].loss // worst first
		}
		return scores[i].id < scores[j].id
	})
	l := s.L
	if l > len(scores) {
		l = len(scores)
	}
	out := make([]Participant, l)
	for i := 0; i < l; i++ {
		out[i] = Participant{NodeID: scores[i].id, Rank: 1}
	}
	return out, nil
}

// Select implements Selector.
func (s GameTheory) Select(_ query.Query, summaries []cluster.NodeSummary, ctx *Context) ([]Participant, error) {
	return s.preTest(len(summaries), func(i int) string { return summaries[i].NodeID }, ctx)
}

// SelectFrom implements CandidateSelector.
func (s GameTheory) SelectFrom(cs *CandidateSet, ctx *Context) ([]Participant, error) {
	return s.preTest(len(cs.Ranks), func(i int) string { return cs.Ranks[i].NodeID }, ctx)
}

// Fairness is a rotation baseline in the spirit of [12]: every node
// gets the same long-run chance of participating. It keeps a cursor
// and hands out the next ℓ nodes round-robin. The cursor is guarded by
// an internal mutex, so one instance can serve concurrent queries
// (each Select advances the rotation atomically); ordering between
// racing queries is whatever the lock arrivals produce.
type Fairness struct {
	// L is the number of nodes per query.
	L int

	mu     sync.Mutex
	cursor int
}

// Name implements Selector.
func (s *Fairness) Name() string { return "fairness" }

// StatefulSelection implements Stateful: every call moves the cursor.
func (s *Fairness) StatefulSelection() {}

// Cursor returns the current rotation position (tests/ops).
func (s *Fairness) Cursor() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cursor
}

func (s *Fairness) rotate(n int, id func(int) string) ([]Participant, error) {
	if s.L < 1 {
		return nil, fmt.Errorf("selection: fairness selector needs L >= 1, got %d", s.L)
	}
	if n == 0 {
		return nil, ErrNoCandidates
	}
	l := s.L
	if l > n {
		l = n
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Participant, l)
	for i := 0; i < l; i++ {
		out[i] = Participant{NodeID: id((s.cursor + i) % n), Rank: 1}
	}
	s.cursor = (s.cursor + l) % n
	return out, nil
}

// Select implements Selector.
func (s *Fairness) Select(_ query.Query, summaries []cluster.NodeSummary, _ *Context) ([]Participant, error) {
	return s.rotate(len(summaries), func(i int) string { return summaries[i].NodeID })
}

// SelectFrom implements CandidateSelector.
func (s *Fairness) SelectFrom(cs *CandidateSet, _ *Context) ([]Participant, error) {
	return s.rotate(len(cs.Ranks), func(i int) string { return cs.Ranks[i].NodeID })
}

// Contribution is a history-based baseline in the spirit of [11]: the
// leader remembers how much each node improved the global model in
// past rounds (reported via Report) and prefers high contributors.
// Unknown nodes get an optimistic default so they are explored. The
// score table is guarded by an internal mutex, so Report and Select
// may race from concurrent queries.
type Contribution struct {
	// L is the number of nodes per query.
	L int

	mu sync.Mutex
	// scores maps node id -> running average contribution.
	scores map[string]float64
	counts map[string]int
}

// Name implements Selector.
func (s *Contribution) Name() string { return "contribution" }

// StatefulSelection implements Stateful: selection reads a history
// that Report mutates between queries.
func (s *Contribution) StatefulSelection() {}

// Report records the observed contribution of a node in a finished
// round — the paper's [11] defines it as the global-model accuracy
// delta attributable to the node.
func (s *Contribution) Report(nodeID string, contribution float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.scores == nil {
		s.scores = map[string]float64{}
		s.counts = map[string]int{}
	}
	s.counts[nodeID]++
	n := float64(s.counts[nodeID])
	s.scores[nodeID] += (contribution - s.scores[nodeID]) / n
}

func (s *Contribution) rank(n int, id func(int) string) ([]Participant, error) {
	if s.L < 1 {
		return nil, fmt.Errorf("selection: contribution selector needs L >= 1, got %d", s.L)
	}
	if n == 0 {
		return nil, ErrNoCandidates
	}
	type scored struct {
		id    string
		score float64
	}
	const optimism = 1e6 // unseen nodes first
	all := make([]scored, 0, n)
	s.mu.Lock()
	for i := 0; i < n; i++ {
		nodeID := id(i)
		sc := optimism
		if s.counts[nodeID] > 0 {
			sc = s.scores[nodeID]
		}
		all = append(all, scored{id: nodeID, score: sc})
	}
	s.mu.Unlock()
	sort.SliceStable(all, func(i, j int) bool {
		if all[i].score != all[j].score {
			return all[i].score > all[j].score
		}
		return all[i].id < all[j].id
	})
	l := s.L
	if l > len(all) {
		l = len(all)
	}
	out := make([]Participant, l)
	for i := 0; i < l; i++ {
		out[i] = Participant{NodeID: all[i].id, Rank: 1}
	}
	return out, nil
}

// Select implements Selector.
func (s *Contribution) Select(_ query.Query, summaries []cluster.NodeSummary, _ *Context) ([]Participant, error) {
	return s.rank(len(summaries), func(i int) string { return summaries[i].NodeID })
}

// SelectFrom implements CandidateSelector.
func (s *Contribution) SelectFrom(cs *CandidateSet, _ *Context) ([]Participant, error) {
	return s.rank(len(cs.Ranks), func(i int) string { return cs.Ranks[i].NodeID })
}
