package selection

import (
	"testing"
)

func TestConfigArmBuild(t *testing.T) {
	if _, err := (ConfigArm{Selector: "query-driven", Epsilon: 0.1, TopL: 2}).Build(); err != nil {
		t.Fatal(err)
	}
	if _, err := (ConfigArm{Selector: "query-driven", Epsilon: 0.1, Psi: 1}).Build(); err != nil {
		t.Fatal(err)
	}
	if _, err := (ConfigArm{Selector: "all-nodes"}).Build(); err != nil {
		t.Fatal(err)
	}
	if _, err := (ConfigArm{Selector: "query-driven", Epsilon: 0.1}).Build(); err == nil {
		t.Fatal("accepted arm with neither top-l nor psi")
	}
	if _, err := (ConfigArm{Selector: "query-driven", Epsilon: 0.1, TopL: 2, Psi: 1}).Build(); err == nil {
		t.Fatal("accepted arm with both top-l and psi")
	}
	if _, err := (ConfigArm{Selector: "fairness"}).Build(); err == nil {
		t.Fatal("accepted stateful selector as bandit arm")
	}
}

func TestConfigBanditValidation(t *testing.T) {
	if _, err := NewConfigBandit(nil, BanditConfig{}); err == nil {
		t.Fatal("accepted empty arm set")
	}
	bad := []ConfigArm{{Selector: "query-driven"}}
	if _, err := NewConfigBandit(bad, BanditConfig{}); err == nil {
		t.Fatal("accepted unbuildable arm")
	}
	arms := DefaultConfigArms(0.1)
	if _, err := NewConfigBandit(arms, BanditConfig{Explore: 2}); err == nil {
		t.Fatal("accepted explore rate > 1")
	}
}

func TestConfigBanditPlaysEveryArmFirst(t *testing.T) {
	arms := DefaultConfigArms(0.1)
	b, err := NewConfigBandit(arms, BanditConfig{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for range arms {
		i, sel := b.Pick()
		if sel == nil {
			t.Fatal("nil selector from Pick")
		}
		if seen[i] {
			t.Fatalf("arm %d replayed before all arms initialized", i)
		}
		seen[i] = true
		b.Observe(i, 0.5)
	}
	if len(seen) != len(arms) {
		t.Fatalf("initialized %d arms, want %d", len(seen), len(arms))
	}
}

func TestConfigBanditConvergesToBestArm(t *testing.T) {
	arms := DefaultConfigArms(0.1)
	b, err := NewConfigBandit(arms, BanditConfig{Seed: 7, Explore: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	// Arm 2 pays double everyone else; after enough plays the greedy
	// choice must settle on it.
	reward := func(i int) float64 {
		if i == 2 {
			return 0.9
		}
		return 0.4
	}
	for n := 0; n < 500; n++ {
		i, _ := b.Pick()
		b.Observe(i, reward(i))
	}
	best, _ := b.Best()
	if best != 2 {
		t.Fatalf("converged to arm %d, want 2; stats: %+v", best, b.Stats())
	}
	stats := b.Stats()
	var total int64
	for _, s := range stats {
		total += s.Plays
	}
	if total != 500+int64(0) {
		t.Fatalf("plays %d, want 500", total)
	}
	if stats[2].Plays < total/2 {
		t.Fatalf("best arm only played %d/%d times", stats[2].Plays, total)
	}
}

func TestConfigBanditBestIsSideEffectFree(t *testing.T) {
	arms := DefaultConfigArms(0.1)
	b, err := NewConfigBandit(arms, BanditConfig{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := range arms {
		b.Observe(i, float64(i)*0.1)
	}
	i1, _ := b.Best()
	i2, _ := b.Best()
	if i1 != i2 {
		t.Fatalf("Best changed across calls: %d then %d", i1, i2)
	}
	// A Pick after Bests must behave as if Bests never happened: same
	// seed, fresh bandit, same observations → same pick sequence.
	fresh, _ := NewConfigBandit(arms, BanditConfig{Seed: 3})
	for i := range arms {
		fresh.Observe(i, float64(i)*0.1)
	}
	p1, _ := b.Pick()
	p2, _ := fresh.Pick()
	if p1 != p2 {
		t.Fatalf("Best leaked state into Pick: %d vs %d", p1, p2)
	}
}
