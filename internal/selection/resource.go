package selection

import (
	"fmt"
	"sort"
	"strings"

	"qens/internal/cluster"
	"qens/internal/query"
)

// Resource-aware baselines from the related work (§II): the
// data-centric client selection of Saha et al. [8] (data quality +
// computation + communication scores) and the reward-based selection
// of Lee [9] (battery + computation + communication + data size).
// Both consult static node capabilities the query-driven mechanism
// deliberately ignores, which is exactly what the ablation benches
// contrast.

// Capabilities describes a node's static resources (the paper's
// computing capacity c_k, §III-B, extended with the link and battery
// attributes [8] and [9] score).
type Capabilities struct {
	// Compute is relative processing power (> 0).
	Compute float64
	// Bandwidth is relative link capacity (> 0).
	Bandwidth float64
	// Battery is the remaining energy fraction in [0, 1].
	Battery float64
}

// Validate checks the capability ranges.
func (c Capabilities) Validate() error {
	if c.Compute <= 0 || c.Bandwidth <= 0 {
		return fmt.Errorf("selection: capabilities need positive compute/bandwidth, got %+v", c)
	}
	if c.Battery < 0 || c.Battery > 1 {
		return fmt.Errorf("selection: battery %v outside [0,1]", c.Battery)
	}
	return nil
}

// DataCentric is the [8]-style selector: score = w_d·dataQuality +
// w_c·compute + w_m·communication, take the top ℓ. Data quality here
// is the query-overlap-weighted sample mass, so the baseline is given
// the benefit of query awareness; compute/communication come from the
// capability registry (nodes without an entry get neutral 1s).
type DataCentric struct {
	L            int
	Capabilities map[string]Capabilities
	// DataWeight, ComputeWeight, CommWeight default to 0.6/0.2/0.2.
	DataWeight    float64
	ComputeWeight float64
	CommWeight    float64
}

// Name implements Selector.
func (s DataCentric) Name() string { return "data-centric" }

// dataCentricEpsilon is the permissive support threshold the data
// quality term ranks at: any overlap counts.
const dataCentricEpsilon = 1e-9

// SupportEpsilon implements EpsilonCarrier.
func (s DataCentric) SupportEpsilon() float64 { return dataCentricEpsilon }

// score turns a permissive-ε ranking into the [8] weighted score.
func (s DataCentric) score(ranks []NodeRank) ([]Participant, error) {
	if s.L < 1 {
		return nil, fmt.Errorf("selection: data-centric selector needs L >= 1, got %d", s.L)
	}
	if len(ranks) == 0 {
		return nil, ErrNoCandidates
	}
	wd, wc, wm := s.DataWeight, s.ComputeWeight, s.CommWeight
	if wd == 0 && wc == 0 && wm == 0 {
		wd, wc, wm = 0.6, 0.2, 0.2
	}
	type scored struct {
		id    string
		score float64
	}
	all := make([]scored, 0, len(ranks))
	for i := range ranks {
		r := &ranks[i]
		caps, ok := s.Capabilities[r.NodeID]
		if !ok {
			caps = Capabilities{Compute: 1, Bandwidth: 1, Battery: 1}
		}
		if err := caps.Validate(); err != nil {
			return nil, fmt.Errorf("selection: node %s: %w", r.NodeID, err)
		}
		dataQ := 0.0
		if r.TotalSamples > 0 {
			dataQ = r.Potential * float64(r.SupportingSamples) / float64(r.TotalSamples)
		}
		all = append(all, scored{
			id:    r.NodeID,
			score: wd*dataQ + wc*caps.Compute + wm*caps.Bandwidth,
		})
	}
	sort.SliceStable(all, func(i, j int) bool {
		if all[i].score != all[j].score {
			return all[i].score > all[j].score
		}
		return all[i].id < all[j].id
	})
	l := s.L
	if l > len(all) {
		l = len(all)
	}
	out := make([]Participant, l)
	for i := 0; i < l; i++ {
		out[i] = Participant{NodeID: all[i].id, Rank: all[i].score}
	}
	return out, nil
}

// Select implements Selector.
func (s DataCentric) Select(q query.Query, summaries []cluster.NodeSummary, _ *Context) ([]Participant, error) {
	if s.L < 1 {
		return nil, fmt.Errorf("selection: data-centric selector needs L >= 1, got %d", s.L)
	}
	if len(summaries) == 0 {
		return nil, ErrNoCandidates
	}
	// Data quality: overlap-weighted sample fraction, via the same
	// ranking machinery (ε chosen permissively: any overlap counts).
	ranks, err := RankNodes(q, summaries, dataCentricEpsilon)
	if err != nil {
		return nil, err
	}
	return s.score(ranks)
}

// SelectFrom implements CandidateSelector.
func (s DataCentric) SelectFrom(cs *CandidateSet, _ *Context) ([]Participant, error) {
	ranks, err := cs.AtEpsilon(dataCentricEpsilon)
	if err != nil {
		return nil, err
	}
	return s.score(ranks)
}

// Reward is the [9]-style selector: reward = battery + compute +
// communication + normalized data size, take the top ℓ. It is fully
// query-oblivious.
type Reward struct {
	L            int
	Capabilities map[string]Capabilities
}

// Name implements Selector.
func (s Reward) Name() string { return "reward" }

// score computes the [9] reward over (id, samples) pairs.
func (s Reward) score(n int, at func(int) (string, int)) ([]Participant, error) {
	if s.L < 1 {
		return nil, fmt.Errorf("selection: reward selector needs L >= 1, got %d", s.L)
	}
	if n == 0 {
		return nil, ErrNoCandidates
	}
	maxSamples := 1
	for i := 0; i < n; i++ {
		if _, samples := at(i); samples > maxSamples {
			maxSamples = samples
		}
	}
	type scored struct {
		id     string
		reward float64
	}
	all := make([]scored, 0, n)
	for i := 0; i < n; i++ {
		id, samples := at(i)
		caps, ok := s.Capabilities[id]
		if !ok {
			caps = Capabilities{Compute: 1, Bandwidth: 1, Battery: 1}
		}
		if err := caps.Validate(); err != nil {
			return nil, fmt.Errorf("selection: node %s: %w", id, err)
		}
		all = append(all, scored{
			id:     id,
			reward: caps.Battery + caps.Compute + caps.Bandwidth + float64(samples)/float64(maxSamples),
		})
	}
	sort.SliceStable(all, func(i, j int) bool {
		if all[i].reward != all[j].reward {
			return all[i].reward > all[j].reward
		}
		return all[i].id < all[j].id
	})
	l := s.L
	if l > len(all) {
		l = len(all)
	}
	out := make([]Participant, l)
	for i := 0; i < l; i++ {
		out[i] = Participant{NodeID: all[i].id, Rank: all[i].reward}
	}
	return out, nil
}

// Select implements Selector.
func (s Reward) Select(_ query.Query, summaries []cluster.NodeSummary, _ *Context) ([]Participant, error) {
	return s.score(len(summaries), func(i int) (string, int) {
		return summaries[i].NodeID, summaries[i].TotalSamples
	})
}

// SelectFrom implements CandidateSelector.
func (s Reward) SelectFrom(cs *CandidateSet, _ *Context) ([]Participant, error) {
	return s.score(len(cs.Ranks), func(i int) (string, int) {
		return cs.Ranks[i].NodeID, cs.Ranks[i].TotalSamples
	})
}

// Explain renders a human-readable account of the query-driven ranking
// for one query: every node's per-cluster overlaps, supporting set,
// potential and rank — the leader-side view behind a selection
// decision.
func Explain(q query.Query, summaries []cluster.NodeSummary, epsilon float64) (string, error) {
	ranks, err := RankNodes(q, summaries, epsilon)
	if err != nil {
		return "", err
	}
	SortByRank(ranks)
	var b strings.Builder
	fmt.Fprintf(&b, "query %s: %v (ε=%.2f)\n", q.ID, q.Bounds, epsilon)
	for _, r := range ranks {
		fmt.Fprintf(&b, "%-10s rank=%.4f potential=%.4f supporting=%d/%d samples=%d/%d\n",
			r.NodeID, r.Rank, r.Potential, len(r.Supporting), len(r.Overlaps),
			r.SupportingSamples, r.TotalSamples)
		for k, h := range r.Overlaps {
			marker := " "
			for _, sk := range r.Supporting {
				if sk == k {
					marker = "*"
					break
				}
			}
			fmt.Fprintf(&b, "  %s cluster %d h=%.4f\n", marker, k, h)
		}
	}
	return b.String(), nil
}
