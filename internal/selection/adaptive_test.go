package selection

import (
	"fmt"
	"testing"

	"qens/internal/rng"
)

func homogeneousCtx() *Context {
	return &Context{
		RNG:      rng.New(1),
		Evaluate: func(string) (float64, error) { return 10, nil },
	}
}

func heterogeneousCtx() *Context {
	losses := map[string]float64{"n0": 5, "n1": 6, "n2": 500, "n3": 7}
	return &Context{
		RNG:      rng.New(1),
		Evaluate: func(id string) (float64, error) { return losses[id], nil },
	}
}

func TestAdaptiveHomogeneousUsesRandom(t *testing.T) {
	sel := &Adaptive{Epsilon: 0.3, TopL: 2}
	parts, err := sel.Select(mkQuery(t, 2, 12), fourNodes(), homogeneousCtx())
	if err != nil {
		t.Fatal(err)
	}
	regime, ok := sel.Regime()
	if !ok || regime != RegimeHomogeneous {
		t.Fatalf("regime %v ok=%v", regime, ok)
	}
	// Random branch: whole-dataset training, no cluster directives.
	for _, p := range parts {
		if p.Clusters != nil {
			t.Fatal("homogeneous branch should not restrict clusters")
		}
	}
}

func TestAdaptiveHeterogeneousUsesQueryDriven(t *testing.T) {
	sel := &Adaptive{Epsilon: 0.3, TopL: 2}
	parts, err := sel.Select(mkQuery(t, 2, 12), fourNodes(), heterogeneousCtx())
	if err != nil {
		t.Fatal(err)
	}
	regime, ok := sel.Regime()
	if !ok || regime != RegimeHeterogeneous {
		t.Fatalf("regime %v ok=%v", regime, ok)
	}
	// Query-driven branch: supporting clusters attached, disjoint
	// node excluded.
	for _, p := range parts {
		if p.NodeID == "n2" {
			t.Fatal("query-driven branch selected the disjoint node")
		}
		if len(p.Clusters) == 0 {
			t.Fatal("query-driven branch missing cluster directives")
		}
	}
}

func TestAdaptivePreTestRunsOnce(t *testing.T) {
	calls := 0
	ctx := &Context{
		RNG: rng.New(1),
		Evaluate: func(string) (float64, error) {
			calls++
			return 10, nil
		},
	}
	sel := &Adaptive{Epsilon: 0.3, TopL: 1}
	for i := 0; i < 3; i++ {
		if _, err := sel.Select(mkQuery(t, 2, 12), fourNodes(), ctx); err != nil {
			t.Fatal(err)
		}
	}
	if calls != 4 { // one evaluation per node, once
		t.Fatalf("pre-test evaluated %d times, want 4 (once per node)", calls)
	}
}

func TestAdaptiveValidation(t *testing.T) {
	if _, err := (&Adaptive{Epsilon: 0.3}).Select(mkQuery(t, 0, 1), fourNodes(), homogeneousCtx()); err == nil {
		t.Fatal("accepted TopL=0")
	}
	if _, err := (&Adaptive{TopL: 1}).Select(mkQuery(t, 0, 1), fourNodes(), homogeneousCtx()); err == nil {
		t.Fatal("accepted Epsilon=0")
	}
	if _, err := (&Adaptive{Epsilon: 0.3, TopL: 1}).Select(mkQuery(t, 0, 1), fourNodes(), nil); err == nil {
		t.Fatal("accepted nil context")
	}
	failing := &Context{Evaluate: func(string) (float64, error) { return 0, fmt.Errorf("down") }}
	if _, err := (&Adaptive{Epsilon: 0.3, TopL: 1}).Select(mkQuery(t, 0, 1), fourNodes(), failing); err == nil {
		t.Fatal("ignored pre-test failure")
	}
	// Regime before any select.
	if _, ok := (&Adaptive{}).Regime(); ok {
		t.Fatal("regime reported before pre-test")
	}
}
