package rng

import (
	"math"
	"sync"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatalf("streams with equal seed diverged at draw %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams with different seeds agreed on %d/100 draws", same)
	}
}

func TestSplitDeterminism(t *testing.T) {
	mk := func() []float64 {
		s := New(7)
		c1, c2 := s.Split(), s.Split()
		return []float64{c1.Float64(), c2.Float64(), c1.Float64(), c2.Float64()}
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("split streams not reproducible at %d: %v vs %v", i, a, b)
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	s := New(9)
	c1, c2 := s.Split(), s.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if c1.Float64() == c2.Float64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("sibling split streams agreed on %d/100 draws", same)
	}
}

func TestSplitN(t *testing.T) {
	s := New(11)
	kids := s.SplitN(5)
	if len(kids) != 5 {
		t.Fatalf("SplitN returned %d streams", len(kids))
	}
	seen := map[float64]bool{}
	for _, k := range kids {
		v := k.Float64()
		if seen[v] {
			t.Fatalf("duplicate first draw %v across split streams", v)
		}
		seen[v] = true
	}
}

func TestUniformRange(t *testing.T) {
	s := New(3)
	for i := 0; i < 1000; i++ {
		v := s.Uniform(-2, 5)
		if v < -2 || v >= 5 {
			t.Fatalf("Uniform(-2,5) returned %v", v)
		}
	}
}

func TestNormalMoments(t *testing.T) {
	s := New(4)
	n := 20000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := s.Normal(3, 2)
		sum += v
		sumSq += v * v
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if math.Abs(mean-3) > 0.1 {
		t.Errorf("sample mean %v, want ~3", mean)
	}
	if math.Abs(variance-4) > 0.3 {
		t.Errorf("sample variance %v, want ~4", variance)
	}
}

func TestExponentialMean(t *testing.T) {
	s := New(5)
	n := 20000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := s.Exponential(2)
		if v < 0 {
			t.Fatalf("negative exponential variate %v", v)
		}
		sum += v
	}
	if mean := sum / float64(n); math.Abs(mean-0.5) > 0.05 {
		t.Errorf("exponential(2) mean %v, want ~0.5", mean)
	}
}

func TestChoiceWeighted(t *testing.T) {
	s := New(6)
	counts := make([]int, 3)
	for i := 0; i < 30000; i++ {
		counts[s.Choice([]float64{1, 2, 7})]++
	}
	if !(counts[2] > counts[1] && counts[1] > counts[0]) {
		t.Fatalf("weighted choice counts not ordered: %v", counts)
	}
	frac := float64(counts[2]) / 30000
	if math.Abs(frac-0.7) > 0.03 {
		t.Errorf("weight-7 option drawn %.3f of the time, want ~0.7", frac)
	}
}

func TestChoiceDegenerateWeights(t *testing.T) {
	s := New(8)
	for _, weights := range [][]float64{{0, 0, 0}, {-1, -2, -3}} {
		counts := make([]int, 3)
		for i := 0; i < 3000; i++ {
			idx := s.Choice(weights)
			if idx < 0 || idx >= 3 {
				t.Fatalf("Choice out of range: %d", idx)
			}
			counts[idx]++
		}
		for i, c := range counts {
			if c == 0 {
				t.Errorf("degenerate weights %v: option %d never drawn", weights, i)
			}
		}
	}
}

func TestChoiceIgnoresNegative(t *testing.T) {
	s := New(12)
	for i := 0; i < 1000; i++ {
		if idx := s.Choice([]float64{-5, 1, 0}); idx != 1 {
			t.Fatalf("Choice with single positive weight returned %d", idx)
		}
	}
}

func TestSampleWithoutReplacement(t *testing.T) {
	s := New(10)
	got := s.SampleWithoutReplacement(10, 4)
	if len(got) != 4 {
		t.Fatalf("got %d samples, want 4", len(got))
	}
	seen := map[int]bool{}
	for _, v := range got {
		if v < 0 || v >= 10 {
			t.Fatalf("sample %d out of range", v)
		}
		if seen[v] {
			t.Fatalf("duplicate sample %d", v)
		}
		seen[v] = true
	}
}

func TestSampleWithoutReplacementPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for k > n")
		}
	}()
	New(1).SampleWithoutReplacement(3, 4)
}

func TestBoolProbability(t *testing.T) {
	s := New(13)
	hits := 0
	for i := 0; i < 10000; i++ {
		if s.Bool(0.25) {
			hits++
		}
	}
	if frac := float64(hits) / 10000; math.Abs(frac-0.25) > 0.02 {
		t.Errorf("Bool(0.25) hit rate %v", frac)
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(14)
	p := s.Perm(20)
	seen := make([]bool, 20)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("invalid permutation %v", p)
		}
		seen[v] = true
	}
}

// TestConcurrentDraws exercises every draw kind plus Split from many
// goroutines; under -race this verifies the Source's internal locking
// (the gateway serves parallel queries over one seeded stream).
func TestConcurrentDraws(t *testing.T) {
	s := New(99)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				_ = s.Float64()
				_ = s.Intn(10)
				_ = s.Int63()
				_ = s.Normal(0, 1)
				_ = s.Perm(4)
				_ = s.Bool(0.5)
				_ = s.Split().Float64()
				_ = s.Choice([]float64{1, 2, 3})
			}
		}()
	}
	wg.Wait()
}

// TestDeterminismWithLocking pins the sequential draw sequence: adding
// the internal mutex must not change what a single-threaded caller
// observes for a given seed.
func TestDeterminismWithLocking(t *testing.T) {
	a, b := New(7), New(7)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() || a.Int63() != b.Int63() {
			t.Fatal("same-seed sources diverged")
		}
	}
	if a.Split().Int63() != b.Split().Int63() {
		t.Fatal("split children diverged")
	}
}

// TestPermIntoMatchesPerm verifies the allocation-free permutation is
// draw-for-draw identical to Perm — the property the flat training
// path's bit-exactness rests on — and leaves the stream in the same
// state.
func TestPermIntoMatchesPerm(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 33, 256} {
		a, b := New(11), New(11)
		want := a.Perm(n)
		buf := make([]int, n)
		got := b.PermInto(buf)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=%d: PermInto[%d] = %d, Perm = %d", n, i, got[i], want[i])
			}
		}
		if a.Int63() != b.Int63() {
			t.Fatalf("n=%d: stream state diverged after permutation", n)
		}
	}
}

// TestPermIntoZeroAlloc pins the allocation-free contract.
func TestPermIntoZeroAlloc(t *testing.T) {
	src := New(3)
	buf := make([]int, 128)
	allocs := testing.AllocsPerRun(100, func() { src.PermInto(buf) })
	if allocs != 0 {
		t.Fatalf("PermInto allocates %v per run", allocs)
	}
}
