// Package rng provides deterministic, splittable pseudo-random number
// streams used throughout the repository.
//
// Every experiment, dataset generator and stochastic algorithm in this
// reproduction takes an explicit *rng.Source so that a run is fully
// determined by its seed. Streams can be split hierarchically
// (dataset -> node -> feature), which keeps results stable when one
// component draws a different number of variates than before.
package rng

import (
	"math"
	"math/rand"
	"sync"
)

// Source is a deterministic random stream. It wraps math/rand with a
// fixed 64-bit state seeded via SplitMix64 so that derived streams are
// decorrelated even for adjacent seeds.
//
// A Source is safe for concurrent use: every draw and split takes a
// short internal mutex. Sequential programs observe exactly the same
// variate sequence as before the lock existed; concurrent callers
// interleave draws nondeterministically but never race. This is what
// lets one leader serve parallel queries (internal/gateway) over the
// same seeded stream without a data race.
type Source struct {
	mu sync.Mutex
	r  *rand.Rand
	// seed is the original seed, retained so the stream can be split.
	seed uint64
	// splits counts how many child streams have been derived.
	splits uint64
}

// New returns a Source seeded with seed.
func New(seed uint64) *Source {
	mixed := splitMix64(seed)
	return &Source{r: rand.New(rand.NewSource(int64(mixed))), seed: seed}
}

// splitMix64 is the finalizer of the SplitMix64 generator; it is used
// to decorrelate nearby seeds before handing them to math/rand.
func splitMix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Split derives an independent child stream. Children derived from the
// same parent in the same order are identical across runs.
func (s *Source) Split() *Source {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.splits++
	child := splitMix64(s.seed ^ splitMix64(s.splits*0x2545f4914f6cdd1d+1))
	return New(child)
}

// SplitN derives n independent child streams.
func (s *Source) SplitN(n int) []*Source {
	out := make([]*Source, n)
	for i := range out {
		out[i] = s.Split()
	}
	return out
}

// Float64 returns a uniform variate in [0, 1).
func (s *Source) Float64() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.r.Float64()
}

// Uniform returns a uniform variate in [lo, hi).
func (s *Source) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*s.Float64()
}

// Intn returns a uniform int in [0, n). It panics if n <= 0, matching
// math/rand semantics.
func (s *Source) Intn(n int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.r.Intn(n)
}

// Int63 returns a non-negative 63-bit integer.
func (s *Source) Int63() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.r.Int63()
}

// Normal returns a normal variate with the given mean and standard
// deviation.
func (s *Source) Normal(mean, stddev float64) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return mean + stddev*s.r.NormFloat64()
}

// Exponential returns an exponential variate with the given rate
// parameter lambda (> 0).
func (s *Source) Exponential(lambda float64) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.r.ExpFloat64() / lambda
}

// Perm returns a random permutation of [0, n).
func (s *Source) Perm(n int) []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.r.Perm(n)
}

// PermInto writes a random permutation of [0, len(buf)) into buf and
// returns it, drawing exactly the same variates as Perm(len(buf)) —
// a caller that switches between the two observes identical
// permutations and leaves the stream in an identical state. This is
// the allocation-free variant used by the training hot path
// (internal/ml flat-batch epochs).
func (s *Source) PermInto(buf []int) []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	// Mirror math/rand's Perm: an inside-out Fisher–Yates that calls
	// Intn(i+1) once per element.
	for i := range buf {
		j := s.r.Intn(i + 1)
		buf[i] = buf[j]
		buf[j] = i
	}
	return buf
}

// Shuffle pseudo-randomizes the order of n elements using swap.
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.r.Shuffle(n, swap)
}

// Bool returns true with probability p.
func (s *Source) Bool(p float64) bool { return s.Float64() < p }

// Choice returns a uniformly chosen index weighted by weights, which
// must be non-negative and not all zero; it falls back to uniform
// choice if they are.
func (s *Source) Choice(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 || math.IsNaN(total) {
		return s.Intn(len(weights))
	}
	t := s.Float64() * total
	acc := 0.0
	for i, w := range weights {
		if w > 0 {
			acc += w
		}
		if t < acc {
			return i
		}
	}
	return len(weights) - 1
}

// SampleWithoutReplacement returns k distinct indices drawn uniformly
// from [0, n). It panics if k > n.
func (s *Source) SampleWithoutReplacement(n, k int) []int {
	if k > n {
		panic("rng: sample size exceeds population")
	}
	perm := s.Perm(n)
	out := make([]int, k)
	copy(out, perm[:k])
	return out
}
