package transport

import (
	"context"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"qens/internal/cluster"
	"qens/internal/federation"
	"qens/internal/rng"
)

// startPushServer boots a daemon with its node handle exposed so tests
// can force advertisement-epoch bumps.
func startPushServer(t *testing.T, serverMax, clientMax int) (*federation.Node, *Server, *Client) {
	t.Helper()
	node, err := federation.NewNode("node-A", lineDataset(300, 2, 1, 0, 50, 3), 5, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	srv, err := Serve(node, "127.0.0.1:0", WithMaxWireProto(serverMax))
	if err != nil {
		t.Fatal(err)
	}
	srv.SetLogger(silent)
	t.Cleanup(func() { srv.Close() })
	client, err := Dial(srv.Addr(), DialOptions{Timeout: 30 * time.Second, MaxProto: clientMax})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })
	return node, srv, client
}

func TestPushEndToEnd(t *testing.T) {
	node, srv, client := startPushServer(t, WireProtoV2, WireProtoV2)

	got := make(chan cluster.NodeSummary, 8)
	ok, err := client.SubscribeSummaries(context.Background(), func(s cluster.NodeSummary) { got <- s })
	if err != nil || !ok {
		t.Fatalf("subscribe: ok=%v err=%v", ok, err)
	}
	// The subscription primes with the current advertisement so the
	// subscriber converges immediately.
	first := waitPush(t, got)
	if first.NodeID != "node-A" || first.Epoch != 1 {
		t.Fatalf("primed push %+v", first)
	}
	if srv.PushSubscribers() != 1 {
		t.Fatalf("subscribers = %d", srv.PushSubscribers())
	}

	// An epoch bump on the node flows to the subscriber unsolicited.
	if err := node.Requantize(); err != nil {
		t.Fatal(err)
	}
	next := waitPush(t, got)
	if next.Epoch != 2 {
		t.Fatalf("pushed epoch %d, want 2", next.Epoch)
	}
	if err := next.Validate(); err != nil {
		t.Fatalf("pushed summary invalid: %v", err)
	}
	if srv.PushesSent() < 2 || client.PushesReceived() < 2 {
		t.Fatalf("push counters: sent=%d received=%d", srv.PushesSent(), client.PushesReceived())
	}

	// Push frames must not disturb the request/response path sharing
	// the connection.
	sum, err := client.Summary(context.Background())
	if err != nil || sum.Epoch != 2 {
		t.Fatalf("pull alongside push: %v epoch=%d", err, sum.Epoch)
	}
}

// TestPushPairings pins the four wire pairings: push works only when
// both ends speak v2 AND the client subscribed; every other pairing
// transparently stays on pull with zero push frames on the wire.
func TestPushPairings(t *testing.T) {
	cases := []struct {
		name                 string
		serverMax, clientMax int
		wantPush             bool
	}{
		{"v2-server_v2-client", WireProtoV2, WireProtoV2, true},
		{"v2-server_v1-client", WireProtoV2, WireProtoV1, false},
		{"v1-server_v2-client", WireProtoV1, WireProtoV2, false},
		{"v1-server_v1-client", WireProtoV1, WireProtoV1, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			node, srv, client := startPushServer(t, tc.serverMax, tc.clientMax)
			var pushes sync.WaitGroup
			if tc.wantPush {
				pushes.Add(2) // prime + bump
			}
			ok, err := client.SubscribeSummaries(context.Background(), func(cluster.NodeSummary) { pushes.Done() })
			if err != nil {
				t.Fatalf("subscribe must degrade, not error: %v", err)
			}
			if ok != tc.wantPush {
				t.Fatalf("subscribe ok=%v, want %v", ok, tc.wantPush)
			}

			// Pull must work on every pairing, before and after a bump.
			if sum, err := client.Summary(context.Background()); err != nil || sum.Epoch != 1 {
				t.Fatalf("pull: %v", err)
			}
			if err := node.Requantize(); err != nil {
				t.Fatal(err)
			}
			if sum, err := client.Summary(context.Background()); err != nil || sum.Epoch != 2 {
				t.Fatalf("pull after bump: %v", err)
			}

			pushes.Wait()
			if !tc.wantPush {
				if srv.PushSubscribers() != 0 || srv.PushesSent() != 0 || client.PushesReceived() != 0 {
					t.Fatalf("pull-only pairing moved push frames: subs=%d sent=%d recv=%d",
						srv.PushSubscribers(), srv.PushesSent(), client.PushesReceived())
				}
			}
		})
	}
}

// TestPushSurvivesReconnect: the client re-arms its subscription on a
// fresh connection, so a server-side connection drop only pauses the
// stream.
func TestPushSurvivesReconnect(t *testing.T) {
	node, _, client := startPushServer(t, WireProtoV2, WireProtoV2)
	got := make(chan cluster.NodeSummary, 8)
	if ok, err := client.SubscribeSummaries(context.Background(), func(s cluster.NodeSummary) { got <- s }); err != nil || !ok {
		t.Fatalf("subscribe: ok=%v err=%v", ok, err)
	}
	waitPush(t, got) // primed

	// Force-close the client's connection (same as a server-side drop:
	// the reader goroutine dies and the next RPC redials).
	client.mu.Lock()
	client.conn.Close()
	client.mu.Unlock()

	// The next RPC redials; ensureConn re-arms the subscription, which
	// primes again with the current summary.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err := client.Summary(context.Background()); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("client never reconnected")
		}
		time.Sleep(10 * time.Millisecond)
	}
	waitPush(t, got)
	if err := node.Requantize(); err != nil {
		t.Fatal(err)
	}
	if next := waitPush(t, got); next.Epoch != 2 {
		t.Fatalf("post-reconnect push epoch %d, want 2", next.Epoch)
	}
}

// TestServerShutdownDrainsPushers is the satellite leak check: a
// graceful Shutdown with live push subscriptions must terminate every
// pusher goroutine before returning.
func TestServerShutdownDrainsPushers(t *testing.T) {
	node, srv, _ := startPushServer(t, WireProtoV2, WireProtoV2)
	// Several subscribed clients, each with in-flight push traffic.
	for i := 0; i < 3; i++ {
		c, err := Dial(srv.Addr(), DialOptions{Timeout: 10 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { c.Close() })
		if ok, err := c.SubscribeSummaries(context.Background(), func(cluster.NodeSummary) {}); err != nil || !ok {
			t.Fatalf("subscribe: ok=%v err=%v", ok, err)
		}
	}
	for i := 0; i < 3; i++ {
		if err := node.Requantize(); err != nil {
			t.Fatal(err)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	// Shutdown awaits the serve WaitGroup, which owns every pusher; no
	// runPusher frame may survive it.
	deadline := time.Now().Add(5 * time.Second)
	for {
		buf := make([]byte, 1<<20)
		stacks := string(buf[:runtime.Stack(buf, true)])
		if !strings.Contains(stacks, "runPusher") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("pusher goroutines leaked past Shutdown:\n%s", stacks)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if n := srv.PushSubscribers(); n != 0 {
		t.Fatalf("%d subscriptions survive Shutdown", n)
	}
}

func waitPush(t *testing.T, ch <-chan cluster.NodeSummary) cluster.NodeSummary {
	t.Helper()
	select {
	case s := <-ch:
		return s
	case <-time.After(10 * time.Second):
		t.Fatal("no push frame within 10s")
		panic("unreachable")
	}
}
