// Package transport runs the federation protocol over real TCP
// sockets: a participant daemon (Server) wrapping a federation.Node,
// and a Client implementing federation.Client so the leader can drive
// remote participants exactly like in-process ones.
//
// Two codecs share one outer framing — a 4-byte big-endian length
// prefix with a hard size cap. Wire protocol v1 frames a JSON body:
// deliberately simple and debuggable, and what any pre-v2 peer
// speaks. Wire protocol v2 (see wire.go) frames a hand-rolled binary
// body with raw little-endian float payloads and per-frame request
// ids, negotiated on the ping handshake and multiplexed by the
// client. Only summaries, model parameters and scalar losses cross
// the wire in either codec — never raw samples — preserving the
// paper's privacy model and its O(1)-per-node communication story.
package transport

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sync"
)

// MaxFrameSize caps a single message (16 MiB fits any realistic model
// parameter vector while bounding a misbehaving peer).
const MaxFrameSize = 16 << 20

// ErrFrameTooLarge reports an over-sized frame.
var ErrFrameTooLarge = errors.New("transport: frame exceeds size limit")

// jsonBufPool recycles the scratch buffers writeFrame encodes into,
// so the v1 codec allocates no fresh body buffer per frame either.
var jsonBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// writeFrame encodes v as JSON and writes one length-prefixed frame.
// The header and body go out in a single Write through a pooled
// buffer (one syscall, no per-frame buffer allocation).
func writeFrame(w io.Writer, v any) error {
	buf := jsonBufPool.Get().(*bytes.Buffer)
	defer func() {
		if buf.Cap() <= poolMaxRetain {
			buf.Reset()
			jsonBufPool.Put(buf)
		}
	}()
	buf.Reset()
	buf.Write([]byte{0, 0, 0, 0}) // length placeholder
	if err := json.NewEncoder(buf).Encode(v); err != nil {
		return fmt.Errorf("transport: encode: %w", err)
	}
	b := buf.Bytes()
	if len(b)-4 > MaxFrameSize {
		return ErrFrameTooLarge
	}
	binary.BigEndian.PutUint32(b[:4], uint32(len(b)-4))
	if _, err := w.Write(b); err != nil {
		return fmt.Errorf("transport: write frame: %w", err)
	}
	return nil
}

// readFrameBody reads one length-prefixed frame into a pooled buffer.
// The caller must release the returned buffer with putFrameBuf once
// done with the body bytes. A clean EOF on the header is surfaced as
// io.EOF so connection loops can distinguish peer departure.
func readFrameBody(r io.Reader) (*[]byte, error) {
	var header [4]byte
	if _, err := io.ReadFull(r, header[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("transport: read header: %w", err)
	}
	size := binary.BigEndian.Uint32(header[:])
	if size > MaxFrameSize {
		return nil, ErrFrameTooLarge
	}
	buf := getFrameBuf()
	if cap(*buf) < int(size) {
		*buf = make([]byte, size)
	} else {
		*buf = (*buf)[:size]
	}
	if _, err := io.ReadFull(r, *buf); err != nil {
		putFrameBuf(buf)
		return nil, fmt.Errorf("transport: read body: %w", err)
	}
	return buf, nil
}

// readFrame reads one length-prefixed frame and decodes its JSON body
// into v (wire protocol v1). The body transits a pooled buffer.
func readFrame(r io.Reader, v any) error {
	buf, err := readFrameBody(r)
	if err != nil {
		return err
	}
	defer putFrameBuf(buf)
	if err := json.Unmarshal(*buf, v); err != nil {
		return fmt.Errorf("transport: decode: %w", err)
	}
	return nil
}

// Message types. The region.* family is served only by regional-leader
// daemons (ServeRegion); a participant daemon answers them with
// CodeUnknownType, which DialRegion surfaces as a topology mismatch.
const (
	typePing        = "ping"
	typeSummary     = "summary"
	typeTrain       = "train"
	typeEvaluate    = "evaluate"
	typeRegionInfo  = "region.info"
	typeRegionPlan  = "region.plan"
	typeRegionTrain = "region.train"
	typeRegionStats = "region.stats"
	// typeSubscribe registers the connection for server-push summary
	// deltas (v2 connections against push-capable daemons only; see
	// server.go). Pre-push servers answer CodeUnknownType and the
	// client degrades to pull.
	typeSubscribe = "summary.subscribe"
)

// Structured error codes carried in the response envelope so clients
// can react to protocol-level failures without parsing error strings.
const (
	// CodeUnknownType reports a request whose Type the server does
	// not implement (version skew or a misbehaving peer).
	CodeUnknownType = "unknown_type"
	// CodeBadRequest reports a request missing its typed body.
	CodeBadRequest = "bad_request"
)

// ErrUnknownType is returned by the client when the server rejects a
// request type (wrapped with the offending type's name).
var ErrUnknownType = errors.New("transport: unknown request type")
