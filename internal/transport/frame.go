// Package transport runs the federation protocol over real TCP
// sockets: a participant daemon (Server) wrapping a federation.Node,
// and a Client implementing federation.Client so the leader can drive
// remote participants exactly like in-process ones.
//
// The wire format is deliberately simple and debuggable: each message
// is a 4-byte big-endian length prefix followed by a JSON body, with a
// hard size cap. Only summaries, model parameters and scalar losses
// cross the wire — never raw samples — preserving the paper's privacy
// model and its O(1)-per-node communication story.
package transport

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// MaxFrameSize caps a single message (16 MiB fits any realistic model
// parameter vector while bounding a misbehaving peer).
const MaxFrameSize = 16 << 20

// ErrFrameTooLarge reports an over-sized frame.
var ErrFrameTooLarge = errors.New("transport: frame exceeds size limit")

// writeFrame encodes v as JSON and writes one length-prefixed frame.
func writeFrame(w io.Writer, v any) error {
	body, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("transport: encode: %w", err)
	}
	if len(body) > MaxFrameSize {
		return ErrFrameTooLarge
	}
	var header [4]byte
	binary.BigEndian.PutUint32(header[:], uint32(len(body)))
	if _, err := w.Write(header[:]); err != nil {
		return fmt.Errorf("transport: write header: %w", err)
	}
	if _, err := w.Write(body); err != nil {
		return fmt.Errorf("transport: write body: %w", err)
	}
	return nil
}

// readFrame reads one length-prefixed frame and decodes it into v.
func readFrame(r io.Reader, v any) error {
	var header [4]byte
	if _, err := io.ReadFull(r, header[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return io.EOF
		}
		return fmt.Errorf("transport: read header: %w", err)
	}
	size := binary.BigEndian.Uint32(header[:])
	if size > MaxFrameSize {
		return ErrFrameTooLarge
	}
	body := make([]byte, size)
	if _, err := io.ReadFull(r, body); err != nil {
		return fmt.Errorf("transport: read body: %w", err)
	}
	if err := json.Unmarshal(body, v); err != nil {
		return fmt.Errorf("transport: decode: %w", err)
	}
	return nil
}

// Message types.
const (
	typePing     = "ping"
	typeSummary  = "summary"
	typeTrain    = "train"
	typeEvaluate = "evaluate"
)

// Structured error codes carried in the response envelope so clients
// can react to protocol-level failures without parsing error strings.
const (
	// CodeUnknownType reports a request whose Type the server does
	// not implement (version skew or a misbehaving peer).
	CodeUnknownType = "unknown_type"
	// CodeBadRequest reports a request missing its typed body.
	CodeBadRequest = "bad_request"
)

// ErrUnknownType is returned by the client when the server rejects a
// request type (wrapped with the offending type's name).
var ErrUnknownType = errors.New("transport: unknown request type")
